package drrgossip

import (
	"math"
	"testing"
)

// ft1AsyncScenarios mirrors the FT1 fault catalog (see
// internal/experiments ft1Scenarios): baseline, churn at increasing
// rates, correlated crashes, a rack failure, a healed partition, a loss
// burst and a flaky region.
func ft1AsyncScenarios() []string {
	return []string{
		"none",
		"churn:0.1:50",
		"churn:0.3:50",
		"churn:0.6:50",
		"crash:0.1@0.5",
		"crash:0.3@0.5",
		"rack:0.2@0.4..0.8",
		"part:2@0.3..0.7",
		"loss:0.3@0.3..0.7",
		"flaky:0.2:0.5@0.2..0.8",
	}
}

// lossOnly reports whether the scenario leaves membership untouched —
// the scenarios whose failures drop messages but never nodes.
func lossOnly(spec string) bool {
	switch spec {
	case "none", "part:2@0.3..0.7", "loss:0.3@0.3..0.7", "flaky:0.2:0.5@0.2..0.8":
		return true
	}
	return false
}

// The async engine must survive the entire FT1 catalog the sync engine
// is tested under: every scenario terminates within the event cap with
// a finite value inside the input range, a finite non-negative residual
// and a consistent bill. No hangs, no NaN, no escape from the hull.
func TestAsyncTerminatesUnderFT1Scenarios(t *testing.T) {
	const n = 128
	values := uniformValues(n, 91)
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, v := range values {
		lo, hi = math.Min(lo, v), math.Max(hi, v)
	}
	for _, spec := range ft1AsyncScenarios() {
		t.Run(spec, func(t *testing.T) {
			plan, err := ParseFaultPlan(spec)
			if err != nil {
				t.Fatal(err)
			}
			nw, err := New(Config{N: n, Seed: 92, Mode: Async, Faults: plan})
			if err != nil {
				t.Fatal(err)
			}
			ans, err := nw.Run(AverageOf(values))
			if err != nil {
				t.Fatalf("async run failed: %v", err)
			}
			if math.IsNaN(ans.Value) || math.IsInf(ans.Value, 0) {
				t.Fatalf("value not finite: %v", ans.Value)
			}
			if ans.Value < lo-1e-6 || ans.Value > hi+1e-6 {
				t.Fatalf("value %v escaped the input hull [%v, %v]", ans.Value, lo, hi)
			}
			if math.IsNaN(ans.Quality.Residual) || ans.Quality.Residual < 0 {
				t.Fatalf("residual invalid: %v", ans.Quality.Residual)
			}
			if ans.Quality.Partial {
				t.Fatalf("run wedged: %+v", ans.Quality)
			}
			if ans.Cost.Rounds <= 0 || ans.Alive <= 0 || ans.Alive > n {
				t.Fatalf("bill inconsistent: rounds %d, alive %d", ans.Cost.Rounds, ans.Alive)
			}
		})
	}
}

// Pairwise exchanges are sum-conserving and only commit when both
// messages survive, so as long as membership is fixed the population
// mean is invariant no matter how many transmissions the fault schedule
// eats: the answer must equal the exact mean even when the run is far
// from consensus.
func TestAsyncMeanInvariantUnderLoss(t *testing.T) {
	const n = 192
	values := uniformValues(n, 93)
	mean := 0.0
	for _, v := range values {
		mean += v
	}
	mean /= n
	for _, spec := range ft1AsyncScenarios() {
		if !lossOnly(spec) {
			continue
		}
		t.Run(spec, func(t *testing.T) {
			plan, err := ParseFaultPlan(spec)
			if err != nil {
				t.Fatal(err)
			}
			// Baseline link loss on top of the scenario stresses the
			// commit protocol harder.
			nw, err := New(Config{N: n, Seed: 94, Mode: Async, Loss: 0.2, Faults: plan})
			if err != nil {
				t.Fatal(err)
			}
			ans, err := nw.Run(AverageOf(values))
			if err != nil {
				t.Fatal(err)
			}
			if d := math.Abs(ans.Value - mean); d > 1e-6*math.Abs(mean) {
				t.Fatalf("mean not preserved: %v vs exact %v (diff %g)", ans.Value, mean, d)
			}
			if ans.Alive != n {
				t.Fatalf("loss-only scenario changed membership: alive %d", ans.Alive)
			}
		})
	}
}

// Both engines bind the same symbolic plan, so the fault transitions it
// applies must agree wherever the plan is deterministic: for the
// non-churn scenarios the crash counts, revive counts and final
// populations of a sync run and an async run are equal. (Poisson churn
// is excluded — its expansion depends on the engine's measured horizon.)
func TestAsyncFaultTransitionParityWithSync(t *testing.T) {
	const n = 128
	values := uniformValues(n, 95)
	for _, spec := range ft1AsyncScenarios() {
		if spec == "none" || spec[:5] == "churn" {
			continue
		}
		t.Run(spec, func(t *testing.T) {
			plan, err := ParseFaultPlan(spec)
			if err != nil {
				t.Fatal(err)
			}
			base := Config{N: n, Seed: 96, Faults: plan}
			sync, err := New(base)
			if err != nil {
				t.Fatal(err)
			}
			sans, err := sync.Run(AverageOf(values))
			if err != nil {
				t.Fatal(err)
			}
			asyncCfg := base
			asyncCfg.Mode = Async
			anw, err := New(asyncCfg)
			if err != nil {
				t.Fatal(err)
			}
			aans, err := anw.Run(AverageOf(values))
			if err != nil {
				t.Fatal(err)
			}
			if sans.FaultCrashes != aans.FaultCrashes {
				t.Errorf("crash parity broken: sync %d, async %d", sans.FaultCrashes, aans.FaultCrashes)
			}
			if sans.FaultRevives != aans.FaultRevives {
				t.Errorf("revive parity broken: sync %d, async %d", sans.FaultRevives, aans.FaultRevives)
			}
			if sans.Alive != aans.Alive {
				t.Errorf("population parity broken: sync alive %d, async alive %d", sans.Alive, aans.Alive)
			}
		})
	}
}
