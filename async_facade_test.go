package drrgossip

import (
	"math"
	"strings"
	"testing"

	"drrgossip/internal/telemetry"
)

// Async-mode configuration errors must be loud and specific.
func TestAsyncConfigValidation(t *testing.T) {
	base := Config{N: 64, Seed: 1}
	for name, mutate := range map[string]func(*Config){
		"peer-in-sync-mode": func(c *Config) { c.AsyncPeer = "uniform" },
		"unknown-peer":      func(c *Config) { c.Mode = Async; c.AsyncPeer = "psychic" },
		"gge-on-complete":   func(c *Config) { c.Mode = Async; c.AsyncPeer = "gge" },
		"negative-eps":      func(c *Config) { c.Mode = Async; c.AsyncEps = -1 },
		"mode-out-of-range": func(c *Config) { c.Mode = Mode(9) },
	} {
		t.Run(name, func(t *testing.T) {
			cfg := base
			mutate(&cfg)
			if _, err := New(cfg); err == nil {
				t.Fatalf("config accepted: %+v", cfg)
			}
		})
	}
	for name, mutate := range map[string]func(*Config){
		"default-async":    func(c *Config) { c.Mode = Async },
		"gge-on-chord":     func(c *Config) { c.Mode = Async; c.AsyncPeer = "gge"; c.Topology = Chord },
		"explicit-uniform": func(c *Config) { c.Mode = Async; c.AsyncPeer = "uniform"; c.AsyncEps = 1e-4 },
	} {
		t.Run(name, func(t *testing.T) {
			cfg := base
			mutate(&cfg)
			if _, err := New(cfg); err != nil {
				t.Fatalf("valid config rejected: %v", err)
			}
		})
	}
}

// Async mode computes averages only; every other operation reports an
// error naming the restriction instead of running the wrong protocol.
func TestAsyncRejectsNonAverage(t *testing.T) {
	const n = 64
	values := uniformValues(n, 81)
	nw, err := New(Config{N: n, Seed: 82, Mode: Async})
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range []Query{
		MaxOf(values), MinOf(values), SumOf(values), CountOf(values),
		RankOf(values, 500), MomentsOf(values),
		QuantileOf(values, 0.5, 1), HistogramOf(values, []float64{500}),
	} {
		if _, err := nw.Run(q); err == nil {
			t.Fatalf("%s ran in Async mode", q.Op)
		} else if !strings.Contains(err.Error(), "Async") {
			t.Fatalf("%s: error does not name the mode: %v", q.Op, err)
		}
	}
	if _, err := nw.Run(AverageOf(values)); err != nil {
		t.Fatalf("AverageOf rejected: %v", err)
	}
}

// The async answer's bill must be internally consistent: convergence to
// the ε-ball around the exact mean, 2 messages per committed exchange
// (lossless), Rounds carrying the event count, and a positive clock.
func TestAsyncAnswerShape(t *testing.T) {
	const n = 256
	values := uniformValues(n, 83)
	nw, err := New(Config{N: n, Seed: 84, Mode: Async, SampleNodes: AllNodes})
	if err != nil {
		t.Fatal(err)
	}
	ans, err := nw.Run(AverageOf(values))
	if err != nil {
		t.Fatal(err)
	}
	exact, err := nw.Exact(AverageOf(values))
	if err != nil {
		t.Fatal(err)
	}
	if !ans.Converged {
		t.Fatalf("lossless complete-graph run did not converge: %+v", ans.Cost)
	}
	if math.Abs(ans.Value-exact) > 1e-5 {
		t.Fatalf("value %v strayed from exact %v", ans.Value, exact)
	}
	if ans.Exchanges <= 0 || ans.Cost.Messages != 2*ans.Exchanges {
		t.Fatalf("lossless bill inconsistent: %d exchanges, %d messages", ans.Exchanges, ans.Cost.Messages)
	}
	if ans.Cost.Clock <= 0 || ans.Cost.Rounds <= 0 || ans.Cost.Runs != 1 {
		t.Fatalf("cost incomplete: %+v", ans.Cost)
	}
	if ans.Alive != n || len(ans.PerNode) != n {
		t.Fatalf("population accounting off: alive %d, perNode %d", ans.Alive, len(ans.PerNode))
	}
	spread := 0.0
	for _, v := range ans.PerNode {
		if d := math.Abs(v - ans.Value); d > spread {
			spread = d
		}
	}
	if spread > 1e-6 {
		t.Fatalf("estimates not in the ε-ball: max deviation %v", spread)
	}
}

// Observers and telemetry are read-only taps in Async mode exactly as in
// Sync: the event stream carries run/phase/round/fault/run-end events
// with monotone counters, and attaching them changes no answer bit.
func TestAsyncObserversAndTelemetry(t *testing.T) {
	const n = 128
	values := uniformValues(n, 85)
	plan, err := ParseFaultPlan("crash:0.1@0.5")
	if err != nil {
		t.Fatal(err)
	}
	bare, err := New(Config{N: n, Seed: 86, Mode: Async, Faults: plan, SampleNodes: AllNodes})
	if err != nil {
		t.Fatal(err)
	}
	want, err := bare.Run(AverageOf(values))
	if err != nil {
		t.Fatal(err)
	}

	var buf telemetry.Buffer
	var rounds []RoundInfo
	tapped, err := New(Config{N: n, Seed: 86, Mode: Async, Faults: plan, SampleNodes: AllNodes,
		Telemetry: &telemetry.Options{Sink: &buf, RoundEvery: 64}})
	if err != nil {
		t.Fatal(err)
	}
	tapped.Observe(ObserverFunc(func(ri RoundInfo) { rounds = append(rounds, ri) }))
	got, err := tapped.Run(AverageOf(values))
	if err != nil {
		t.Fatal(err)
	}
	answersEqual(t, "telemetry+observer tap", want, got)

	kinds := map[telemetry.Kind]int{}
	for _, ev := range buf.Events() {
		kinds[ev.Kind]++
	}
	if kinds[telemetry.KindRunStart] == 0 || kinds[telemetry.KindRunEnd] == 0 {
		t.Fatalf("run events missing: %v", kinds)
	}
	if kinds[telemetry.KindRound] == 0 {
		t.Fatalf("no round samples at stride 64 over %d events: %v", got.Cost.Rounds, kinds)
	}
	if kinds[telemetry.KindFault] == 0 {
		t.Fatalf("no fault events from the crash plan: %v", kinds)
	}
	if len(rounds) == 0 {
		t.Fatal("observer saw no events")
	}
	// The stream covers two runs (the horizon pre-run, then the faulted
	// run); counters are monotone within each run and reset between them.
	last := RoundInfo{}
	for i, ri := range rounds {
		if ri.Run != last.Run {
			last = RoundInfo{Run: ri.Run}
		}
		if ri.Round <= last.Round || ri.Messages < last.Messages {
			t.Fatalf("observer stream not monotone at %d: %+v after %+v", i, ri, last)
		}
		last = ri
	}
	if last.FaultEvents == 0 {
		t.Fatal("observer never saw the fault count")
	}
}

// A fault plan with fractional timings exercises the wall-clock horizon
// binding: one pre-run, one bind, crashes actually applied, and the
// session reuses the binding across queries.
func TestAsyncFaultHorizonBinding(t *testing.T) {
	const n = 256
	values := uniformValues(n, 87)
	plan, err := ParseFaultPlan("crash:0.25@0.5")
	if err != nil {
		t.Fatal(err)
	}
	nw, err := New(Config{N: n, Seed: 88, Mode: Async, Faults: plan})
	if err != nil {
		t.Fatal(err)
	}
	first, err := nw.Run(AverageOf(values))
	if err != nil {
		t.Fatal(err)
	}
	if first.FaultCrashes == 0 || first.Alive != n-first.FaultCrashes {
		t.Fatalf("plan did not bite: %+v", first)
	}
	second, err := nw.Run(AverageOf(values))
	if err != nil {
		t.Fatal(err)
	}
	answersEqual(t, "bound reuse", first, second)
	st := nw.Stats()
	if st.HorizonRuns != 1 || st.PlanBinds != 1 || st.ProtocolRuns != 3 {
		t.Fatalf("amortization off: %+v", st)
	}
}

// RunAll with Parallelism must reproduce sequential answers in Async
// mode (worker sessions clone the one async fault binding).
func TestAsyncRunAllParallel(t *testing.T) {
	const n = 128
	plan, err := ParseFaultPlan("crash:0.2@0.5;rejoin@0.9")
	if err != nil {
		t.Fatal(err)
	}
	queries := []Query{
		AverageOf(uniformValues(n, 91)),
		AverageOf(uniformValues(n, 92)),
		AverageOf(uniformValues(n, 93)),
		AverageOf(uniformValues(n, 94)),
	}
	for _, cfg := range []Config{
		{N: n, Seed: 95, Mode: Async, Loss: 0.02},
		{N: n, Seed: 96, Mode: Async, Faults: plan},
	} {
		seqNW, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		seq, seqBill, err := seqNW.RunAll(queries)
		if err != nil {
			t.Fatal(err)
		}
		parNW, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		par, parBill, err := parNW.RunAll(queries, BatchOptions{Parallelism: 4})
		if err != nil {
			t.Fatal(err)
		}
		if seqBill != parBill {
			t.Fatalf("bills diverged: %+v vs %+v", seqBill, parBill)
		}
		for i := range seq {
			answersEqual(t, queries[i].Op.String(), seq[i], par[i])
		}
		ss, ps := seqNW.Stats(), parNW.Stats()
		if ss.HorizonRuns != ps.HorizonRuns || ss.PlanBinds != ps.PlanBinds {
			t.Fatalf("session stats diverged: %+v vs %+v", ss, ps)
		}
	}
}
