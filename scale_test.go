package drrgossip

import (
	"errors"
	"strings"
	"testing"
)

// Config.Workers shards a single run's delivery step inside the engine;
// the scale-mode contract is that answers are bit-identical for any
// worker count, on dense and sparse topologies, with and without a
// dynamic fault plan.
func TestWorkersBitIdenticalAnswers(t *testing.T) {
	const n = 512
	values := uniformValues(n, 101)
	plans := map[string]string{"static": "", "churn": "churn:0.25:30;loss:0.2@0.4..0.8"}
	for _, topo := range []Topology{Complete, Chord} {
		for planName, spec := range plans {
			base := Config{N: n, Seed: 103, Loss: 0.02, Topology: topo, SampleNodes: AllNodes}
			if spec != "" {
				base.Faults = mustPlan(t, spec)
			}
			run := func(workers int) (*Answer, *Answer) {
				cfg := base
				cfg.Workers = workers
				nw, err := New(cfg)
				if err != nil {
					t.Fatalf("%s/%s workers=%d: %v", topo, planName, workers, err)
				}
				ave, err := nw.Average(values)
				if err != nil {
					t.Fatalf("%s/%s workers=%d ave: %v", topo, planName, workers, err)
				}
				sum, err := nw.Sum(values)
				if err != nil {
					t.Fatalf("%s/%s workers=%d sum: %v", topo, planName, workers, err)
				}
				return ave, sum
			}
			seqAve, seqSum := run(1)
			for _, workers := range []int{0, 4, 8} {
				ave, sum := run(workers)
				label := topo.String() + "/" + planName
				answersEqual(t, label+"/ave", seqAve, ave)
				answersEqual(t, label+"/sum", seqSum, sum)
			}
		}
	}
}

// Config.SampleNodes edge cases: 0 materializes nothing, k > N clamps,
// AllNodes keeps the historical full vector, and a sample is a pure
// function of (Seed, N, k) — identical across sessions and Workers.
func TestSampleNodesEdgeCases(t *testing.T) {
	const n = 256
	values := uniformValues(n, 105)

	run := func(sample, workers int) *Answer {
		nw, err := New(Config{N: n, Seed: 107, SampleNodes: sample, Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		a, err := nw.Average(values)
		if err != nil {
			t.Fatal(err)
		}
		return a
	}

	// Default (0): no per-node copy at all.
	if a := run(0, 1); a.PerNode != nil || a.SampleIDs != nil {
		t.Fatalf("SampleNodes=0 materialized state: PerNode %d, SampleIDs %d", len(a.PerNode), len(a.SampleIDs))
	}

	// AllNodes: the full vector, no sample ids.
	full := run(AllNodes, 1)
	if len(full.PerNode) != n || full.SampleIDs != nil {
		t.Fatalf("AllNodes: PerNode %d, SampleIDs %v", len(full.PerNode), full.SampleIDs)
	}

	// k > 0: k sorted distinct ids whose values agree with the full run.
	k := 17
	sampled := run(k, 1)
	if len(sampled.PerNode) != k || len(sampled.SampleIDs) != k {
		t.Fatalf("SampleNodes=%d: PerNode %d, SampleIDs %d", k, len(sampled.PerNode), len(sampled.SampleIDs))
	}
	for i, id := range sampled.SampleIDs {
		if id < 0 || id >= n {
			t.Fatalf("sample id %d out of range", id)
		}
		if i > 0 && id <= sampled.SampleIDs[i-1] {
			t.Fatal("sample ids not strictly increasing")
		}
		if sampled.PerNode[i] != full.PerNode[id] {
			t.Fatalf("sampled value for node %d = %v, full run has %v", id, sampled.PerNode[i], full.PerNode[id])
		}
	}

	// Deterministic across workers and across sessions.
	for _, workers := range []int{4, 8} {
		again := run(k, workers)
		if len(again.SampleIDs) != k {
			t.Fatalf("workers=%d: sample size %d", workers, len(again.SampleIDs))
		}
		for i := range again.SampleIDs {
			if again.SampleIDs[i] != sampled.SampleIDs[i] || again.PerNode[i] != sampled.PerNode[i] {
				t.Fatalf("workers=%d: sample drifted at %d", workers, i)
			}
		}
	}

	// k > N clamps to N (every node, still sorted ids).
	clamped := run(10*n, 1)
	if len(clamped.PerNode) != n || len(clamped.SampleIDs) != n {
		t.Fatalf("SampleNodes>n: PerNode %d, SampleIDs %d", len(clamped.PerNode), len(clamped.SampleIDs))
	}
	for i, id := range clamped.SampleIDs {
		if id != i {
			t.Fatalf("clamped sample must cover every node: ids[%d] = %d", i, id)
		}
		if clamped.PerNode[i] != full.PerNode[i] {
			t.Fatalf("clamped value %d drifted", i)
		}
	}

	// Validation: below AllNodes is rejected, as is a negative Workers.
	if _, err := New(Config{N: n, Seed: 1, SampleNodes: -2}); !errors.Is(err, ErrBadConfig) {
		t.Fatalf("SampleNodes=-2 accepted: %v", err)
	}
	if _, err := New(Config{N: n, Seed: 1, Workers: -1}); !errors.Is(err, ErrBadConfig) {
		t.Fatalf("Workers=-1 accepted: %v", err)
	}

	// The legacy one-shot helpers keep their full-PerNode contract…
	legacy, err := Average(Config{N: n, Seed: 107}, values)
	if err != nil {
		t.Fatal(err)
	}
	if len(legacy.PerNode) != n || legacy.SampleIDs != nil {
		t.Fatalf("legacy helper PerNode %d (SampleIDs %v), want full vector", len(legacy.PerNode), legacy.SampleIDs)
	}
	// …and an explicit SampleNodes on a one-shot call carries the sample
	// ids through to the legacy Result, so callers can map values to
	// nodes.
	legacySampled, err := Average(Config{N: n, Seed: 107, SampleNodes: k}, values)
	if err != nil {
		t.Fatal(err)
	}
	if len(legacySampled.PerNode) != k || len(legacySampled.SampleIDs) != k {
		t.Fatalf("legacy sampled helper: PerNode %d, SampleIDs %d", len(legacySampled.PerNode), len(legacySampled.SampleIDs))
	}
	for i := range legacySampled.SampleIDs {
		if legacySampled.SampleIDs[i] != sampled.SampleIDs[i] {
			t.Fatalf("legacy sample ids drifted at %d", i)
		}
	}

	// Answers own their SampleIDs: mutating one answer's slice must not
	// skew another answer from the same session.
	nw, err := New(Config{N: n, Seed: 107, SampleNodes: k})
	if err != nil {
		t.Fatal(err)
	}
	a1, err := nw.Average(values)
	if err != nil {
		t.Fatal(err)
	}
	a2, err := nw.Sum(values)
	if err != nil {
		t.Fatal(err)
	}
	a1.SampleIDs[0] = -999
	if a2.SampleIDs[0] == -999 {
		t.Fatal("answers share one SampleIDs backing array")
	}
	a3, err := nw.Count(values)
	if err != nil {
		t.Fatal(err)
	}
	if a3.SampleIDs[0] == -999 {
		t.Fatal("session sample cache was corrupted through an answer")
	}
}

// Moments on a sparse overlay is a descriptive query-validation error on
// every path, including the parallel batch's direct fault-binding path —
// it must never silently run the dense protocol.
func TestMomentsSparseTopologyError(t *testing.T) {
	const n = 128
	values := uniformValues(n, 109)
	cfg := Config{N: n, Seed: 111, Topology: Chord}

	nw, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	_, err = nw.Moments(values)
	if !errors.Is(err, ErrBadConfig) {
		t.Fatalf("session moments on chord: %v, want ErrBadConfig", err)
	}
	for _, want := range []string{"Moments", "Complete", "chord"} {
		if !strings.Contains(err.Error(), want) {
			t.Fatalf("error not descriptive (missing %q): %v", want, err)
		}
	}

	if _, err := Moments(cfg, values); !errors.Is(err, ErrBadConfig) {
		t.Fatalf("legacy moments on chord: %v, want ErrBadConfig", err)
	}

	// The concurrent batch path binds fault plans through dispatch
	// directly; with a plan attached it must surface the same error
	// instead of silently running the dense pipeline on a sparse config.
	faulted := cfg
	faulted.Faults = mustPlan(t, "crash:0.1@0.5")
	nw2, err := New(faulted)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := nw2.RunAll([]Query{MomentsOf(values)}, BatchOptions{Parallelism: 2}); !errors.Is(err, ErrBadConfig) {
		t.Fatalf("parallel batch moments on chord: %v, want ErrBadConfig", err)
	}
}
