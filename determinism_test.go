package drrgossip

import (
	"fmt"
	"runtime"
	"testing"

	core "drrgossip/internal/drrgossip"
	"drrgossip/internal/faults"
	"drrgossip/internal/sim"
)

// Determinism regression: identical Seed ⇒ bit-identical Counters and
// results, with and without an active fault plan, across ParallelFor
// scheduling (GOMAXPROCS 1 serialises the per-node stepping; a high
// value exercises the chunked goroutine path — n is kept >= 256 so the
// parallel branch actually engages).
func TestDeterminismAcrossParallelForScheduling(t *testing.T) {
	const n = 2048
	values := uniformValues(n, 61)
	plans := map[string]*faults.Plan{"static": nil}
	churn, err := faults.Parse("churn:0.25:30;loss:0.2@100r..200r;part:2@220r..300r")
	if err != nil {
		t.Fatal(err)
	}
	plans["faulty"] = churn

	type outcome struct {
		value   float64
		stats   sim.Counters
		perNode []float64
	}
	run := func(procs int, plan *faults.Plan) outcome {
		old := runtime.GOMAXPROCS(procs)
		defer runtime.GOMAXPROCS(old)
		eng := sim.NewEngine(n, sim.Options{Seed: 63, Loss: 0.02})
		if plan != nil {
			// A fixed 400-round horizon for the churn expansion; events
			// past the run's actual end simply never fire.
			b, err := plan.Bind(n, 63, 400)
			if err != nil {
				t.Fatal(err)
			}
			b.Attach(eng)
		}
		res, err := core.Ave(eng, values, core.Options{})
		if err != nil {
			t.Fatal(err)
		}
		return outcome{value: res.Value, stats: eng.Stats(), perNode: res.PerNode}
	}

	for name, plan := range plans {
		t.Run(name, func(t *testing.T) {
			serial := run(1, plan)
			for _, procs := range []int{2, 8} {
				parallel := run(procs, plan)
				if parallel.stats != serial.stats {
					t.Fatalf("GOMAXPROCS=%d: counters drifted: %+v vs %+v",
						procs, parallel.stats, serial.stats)
				}
				if parallel.value != serial.value {
					t.Fatalf("GOMAXPROCS=%d: value %v vs %v", procs, parallel.value, serial.value)
				}
				for i := range serial.perNode {
					// NaN-safe bit comparison: NaN != NaN, so compare the
					// "both NaN" case explicitly.
					a, b := parallel.perNode[i], serial.perNode[i]
					if a != b && !(a != a && b != b) {
						t.Fatalf("GOMAXPROCS=%d: perNode[%d] = %v vs %v", procs, i, a, b)
					}
				}
			}
		})
	}
}

// RunAll's opt-in concurrency must return answers bit-identical to
// sequential execution — for any worker count, any GOMAXPROCS, with and
// without a fault plan, on dense and sparse topologies, including
// composite queries (Quantile bisection, Histogram edges) whose fault
// bindings are resolved up front and cloned per worker.
func TestRunAllParallelMatchesSequential(t *testing.T) {
	const n = 256
	values := uniformValues(n, 91)
	churn, err := ParseFaultPlan("crash:0.2@0.5;rejoin@0.9")
	if err != nil {
		t.Fatal(err)
	}
	queries := []Query{
		MaxOf(values), MinOf(values), SumOf(values), CountOf(values),
		AverageOf(values), RankOf(values, 500),
		QuantileOf(values, 0.9, 5), HistogramOf(values, []float64{250, 500, 750}),
	}
	for _, tc := range []struct {
		name string
		cfg  Config
	}{
		{"complete-static", Config{N: n, Seed: 92, Loss: 0.02}},
		{"complete-faulty", Config{N: n, Seed: 93, Loss: 0.02, Faults: churn}},
		{"chord-faulty", Config{N: n, Seed: 94, Topology: Chord, Faults: churn}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			runBatch := func(procs, workers int) ([]*Answer, Cost) {
				old := runtime.GOMAXPROCS(procs)
				defer runtime.GOMAXPROCS(old)
				nw, err := New(tc.cfg)
				if err != nil {
					t.Fatal(err)
				}
				answers, bill, err := nw.RunAll(queries, BatchOptions{Parallelism: workers})
				if err != nil {
					t.Fatal(err)
				}
				return answers, bill
			}
			seqAnswers, seqBill := runBatch(1, 1)
			for _, procs := range []int{1, 2, 8} {
				for _, workers := range []int{2, 4, len(queries) + 3} {
					parAnswers, parBill := runBatch(procs, workers)
					if parBill != seqBill {
						t.Fatalf("GOMAXPROCS=%d workers=%d: bill %+v vs sequential %+v",
							procs, workers, parBill, seqBill)
					}
					for i := range seqAnswers {
						answersEqual(t, fmt.Sprintf("procs=%d workers=%d query %d (%s)",
							procs, workers, i, queries[i].Op), seqAnswers[i], parAnswers[i])
					}
				}
			}
			// SessionStats parity: the parallel batch resolves the same
			// bindings and pre-runs the sequential batch would.
			seqNW, _ := New(tc.cfg)
			if _, _, err := seqNW.RunAll(queries); err != nil {
				t.Fatal(err)
			}
			parNW, _ := New(tc.cfg)
			if _, _, err := parNW.RunAll(queries, BatchOptions{Parallelism: 4}); err != nil {
				t.Fatal(err)
			}
			ss, ps := seqNW.Stats(), parNW.Stats()
			if ss.HorizonRuns != ps.HorizonRuns || ss.PlanBinds != ps.PlanBinds ||
				ss.Queries != ps.Queries || ss.ProtocolRuns != ps.ProtocolRuns {
				t.Fatalf("session stats diverged: sequential %+v parallel %+v", ss, ps)
			}
		})
	}
}

// Async-mode determinism: the event-driven engine is strictly
// sequential, so GOMAXPROCS-independence is structural — pinned here
// end to end through the facade anyway (the contract outlives the
// implementation), across repeated runs on one session (fresh engine
// per run must not leak state), with loss, with an initial crash set,
// with a fractional-timing fault plan (horizon pre-run + wall-clock
// binding), and for every peer-selection policy.
func TestAsyncDeterminism(t *testing.T) {
	const n = 512
	values := uniformValues(n, 71)
	churn, err := ParseFaultPlan("crash:0.2@0.5;rejoin@0.9")
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		name string
		cfg  Config
	}{
		{"complete-uniform", Config{N: n, Seed: 72, Mode: Async, Loss: 0.05, SampleNodes: AllNodes}},
		{"complete-samplegreedy", Config{N: n, Seed: 73, Mode: Async, AsyncPeer: "samplegreedy",
			CrashFraction: 0.1, SampleNodes: AllNodes}},
		{"smallworld-gge", Config{N: n, Seed: 74, Mode: Async, AsyncPeer: "gge",
			Topology: SmallWorld, SampleNodes: AllNodes}},
		{"complete-faulty", Config{N: n, Seed: 75, Mode: Async, Loss: 0.02,
			Faults: churn, SampleNodes: AllNodes}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			run := func(procs int) *Answer {
				old := runtime.GOMAXPROCS(procs)
				defer runtime.GOMAXPROCS(old)
				nw, err := New(tc.cfg)
				if err != nil {
					t.Fatal(err)
				}
				first, err := nw.Run(AverageOf(values))
				if err != nil {
					t.Fatal(err)
				}
				// Session repeat: the second run reuses the session (and its
				// cached fault binding) and must reproduce the first bitwise.
				second, err := nw.Run(AverageOf(values))
				if err != nil {
					t.Fatal(err)
				}
				answersEqual(t, fmt.Sprintf("procs=%d session repeat", procs), first, second)
				return first
			}
			serial := run(1)
			for _, procs := range []int{2, 8} {
				answersEqual(t, fmt.Sprintf("GOMAXPROCS=%d", procs), serial, run(procs))
			}
			if serial.Cost.Clock <= 0 || serial.Cost.Rounds == 0 {
				t.Fatalf("async run reported no progress: %+v", serial.Cost)
			}
		})
	}
}

// The same property through the public facade, where the fault plan's
// horizon-measurement pre-run doubles the engine executions.
func TestFacadeDeterminismUnderFaults(t *testing.T) {
	plan, err := ParseFaultPlan("crash:0.2@0.5;rejoin@0.9")
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{N: 1024, Seed: 65, Loss: 0.03, Faults: plan}
	values := uniformValues(1024, 66)
	run := func(procs int) *Result {
		old := runtime.GOMAXPROCS(procs)
		defer runtime.GOMAXPROCS(old)
		res, err := Average(cfg, values)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	serial := run(1)
	parallel := run(8)
	if serial.Value != parallel.Value || serial.Messages != parallel.Messages ||
		serial.Rounds != parallel.Rounds || serial.Drops != parallel.Drops ||
		serial.FaultEvents != parallel.FaultEvents {
		t.Fatalf("facade drifted across schedulers:\n serial   %+v\n parallel %+v", serial, parallel)
	}
}
