// Typed aggregate queries and their uniform answers — the request/response
// vocabulary of the session API (see Network in network.go). A Query is a
// plain value describing *what* to compute; the Network decides *how*
// (topology, faults, horizon) and answers every query with the same
// Answer shape, replacing the three divergent result structs of the
// pre-session facade (Result, QuantileResult, HistogramResult — all of
// which remain as thin legacy views).

package drrgossip

import (
	"fmt"

	"drrgossip/internal/agg"
)

// Op enumerates the aggregate operations a Query can request.
type Op uint8

const (
	// OpMax is the exact maximum (DRR-gossip-max, Algorithm 7).
	OpMax Op = iota + 1
	// OpMin is the exact minimum (Gossip-max on negated values).
	OpMin
	// OpSum is the global sum (distinguished-root push-sum).
	OpSum
	// OpCount is the surviving-node count (distinguished-root push-sum
	// over tree sizes).
	OpCount
	// OpAverage is DRR-gossip-ave (Algorithm 8).
	OpAverage
	// OpRank is Rank(q) = |{alive i : values[i] <= q}|.
	OpRank
	// OpMoments computes mean and variance in one run (Complete only).
	OpMoments
	// OpQuantile computes a φ-quantile (composite). The protocol is
	// selected by Config.QuantileMethod: Rank bisection (the default —
	// one Min, Max and Count run plus one Rank run per bisection step)
	// or the Haeupler–Mohapatra–Su sampling protocol (one Count run, a
	// gossip-sampling session, and a few certifying Rank probes).
	OpQuantile
	// OpHistogram computes bucket counts with one Rank run per edge
	// (composite).
	OpHistogram
)

var opNames = map[Op]string{
	OpMax: "max", OpMin: "min", OpSum: "sum", OpCount: "count",
	OpAverage: "average", OpRank: "rank", OpMoments: "moments",
	OpQuantile: "quantile", OpHistogram: "histogram",
}

// String renders the operation's lower-case name ("max", "quantile", …).
func (op Op) String() string {
	if s, ok := opNames[op]; ok {
		return s
	}
	return fmt.Sprintf("Op(%d)", uint8(op))
}

// Query is a typed aggregate request: the operation, the per-node input
// values, and the operation's parameters. Build queries with the XxxOf
// constructors; a zero Query is invalid. Queries are plain values — they
// carry no network state and can be reused across Networks.
type Query struct {
	// Op is the requested aggregate operation.
	Op Op
	// Values holds one input value per node (len(Values) must equal
	// Config.N of the Network the query runs on).
	Values []float64
	// Arg is the operation parameter: the Rank threshold q, or the
	// Quantile target φ. Unused otherwise.
	Arg float64
	// Tol is the Quantile bisection tolerance (<= 0 picks range/2^20).
	Tol float64
	// Edges are the Histogram bucket edges (strictly increasing).
	Edges []float64
}

// MaxOf requests the global maximum of values.
func MaxOf(values []float64) Query { return Query{Op: OpMax, Values: values} }

// MinOf requests the global minimum of values.
func MinOf(values []float64) Query { return Query{Op: OpMin, Values: values} }

// SumOf requests the global sum of values.
func SumOf(values []float64) Query { return Query{Op: OpSum, Values: values} }

// CountOf requests the number of surviving nodes. The values are carried
// for population consistency with the other queries of a batch.
func CountOf(values []float64) Query { return Query{Op: OpCount, Values: values} }

// AverageOf requests the global average of values.
func AverageOf(values []float64) Query { return Query{Op: OpAverage, Values: values} }

// RankOf requests Rank(q) = |{alive i : values[i] <= q}|.
func RankOf(values []float64, q float64) Query { return Query{Op: OpRank, Values: values, Arg: q} }

// MomentsOf requests mean and variance in a single protocol run
// (Complete topology only).
func MomentsOf(values []float64) Query { return Query{Op: OpMoments, Values: values} }

// QuantileOf requests the φ-quantile (0 < φ <= 1) within tol of the
// value range; tol <= 0 picks range/2^20. The executing protocol is the
// session's Config.QuantileMethod (bisection by default; the HMS method
// certifies the exact quantile on healthy sessions, in which case tol
// only bounds its fallback path).
func QuantileOf(values []float64, phi, tol float64) Query {
	return Query{Op: OpQuantile, Values: values, Arg: phi, Tol: tol}
}

// HistogramOf requests len(edges)+1 bucket counts: bucket i covers
// (edges[i-1], edges[i]], with open first and last buckets.
func HistogramOf(values []float64, edges []float64) Query {
	return Query{Op: OpHistogram, Values: values, Edges: edges}
}

// validate rejects structurally invalid queries up front — before any
// protocol run and before RunAll's concurrent path resolves fault
// bindings for the batch. The φ check is deliberately written as a
// negated in-range test so NaN (for which every comparison is false)
// is rejected too; it used to slip through the bisection loop's
// `phi <= 0 || phi > 1` guard and surface as a silently wrong answer.
func (q Query) validate() error {
	if q.Op == OpQuantile && !(q.Arg > 0 && q.Arg <= 1) {
		return fmt.Errorf("%w: Quantile phi must be in (0,1], got %v", ErrBadConfig, q.Arg)
	}
	return nil
}

// baseOps lists the single-run operation kinds a query dispatches:
// composites expand to their constituent runs (Quantile bisects with
// Min, Max, Count and Rank; a Histogram runs one Rank per edge, plus —
// under a fault plan — the population Count). RunAll's concurrent path
// uses this to resolve every fault binding before fanning out.
func (q Query) baseOps(faulted bool) []Op {
	switch q.Op {
	case OpQuantile:
		return []Op{OpMin, OpMax, OpCount, OpRank}
	case OpHistogram:
		if faulted {
			return []Op{OpRank, OpCount}
		}
		return []Op{OpRank}
	default:
		return []Op{q.Op}
	}
}

// Cost is the shared accounting every Answer carries: how many full
// aggregate protocol runs the query spent (composite queries run many)
// and their accumulated round, message and drop bill. Horizon-measurement
// pre-runs (see Network) are session bookkeeping and are reported by
// SessionStats, not billed to query Cost — matching the pre-session
// facade's accounting.
type Cost struct {
	// Runs is the number of aggregate protocol runs billed to the query
	// (1 for simple queries; Min+Max+Count+bisection steps for Quantile;
	// one Rank per edge for Histogram).
	Runs int
	// Rounds, Messages and Drops accumulate over those runs. In Async
	// mode Rounds counts dispatched clock-tick events — the asynchronous
	// model has no synchronous rounds — while Messages keeps the exact
	// same unit as Sync (one per transmission attempt; a pairwise
	// exchange bills 2), which is what makes the two modes' message
	// bills directly comparable.
	Rounds   int
	Messages int64
	Drops    int64
	// Clock is the simulated wall-clock time the run(s) spanned: the
	// async engine's event time at termination, in units of mean
	// per-node clock periods (accumulated over runs). Always 0 in Sync
	// mode, whose cost is measured in rounds.
	Clock float64
}

// Add returns the element-wise total of two bills.
func (c Cost) Add(o Cost) Cost {
	return Cost{
		Runs:     c.Runs + o.Runs,
		Rounds:   c.Rounds + o.Rounds,
		Messages: c.Messages + o.Messages,
		Drops:    c.Drops + o.Drops,
		Clock:    c.Clock + o.Clock,
	}
}

// PhaseCost attributes a slice of an Answer's Cost to one protocol
// phase. The paper's optimality claims are per-phase (the Section 4
// pipeline alternates local-DRR, convergecast and gossip stages, and
// Theorem 14's chord bound is the sum of the stage costs), so the
// facade bills each phase separately instead of only the aggregate.
type PhaseCost struct {
	// Phase is the pipeline phase label ("drr", "aggregate", "gossip",
	// "broadcast").
	Phase string
	// Rounds, Messages, Drops and Calls are the phase's share of the
	// bill. Summed over a query's PhaseCosts they reproduce Cost.Rounds,
	// Cost.Messages and Cost.Drops exactly (Calls is extra per-phase
	// detail the aggregate Cost does not carry).
	Rounds   int
	Messages int64
	Drops    int64
	Calls    int64
}

// mergePhaseCosts folds src into dst by phase name, appending unseen
// phases in first-seen order. Every pipeline reports its phases in the
// same execution order (drr, aggregate, gossip, broadcast), so
// composite queries accumulate into a stable four-entry slice.
func mergePhaseCosts(dst, src []PhaseCost) []PhaseCost {
	for _, pc := range src {
		merged := false
		for i := range dst {
			if dst[i].Phase == pc.Phase {
				dst[i].Rounds += pc.Rounds
				dst[i].Messages += pc.Messages
				dst[i].Drops += pc.Drops
				dst[i].Calls += pc.Calls
				merged = true
				break
			}
		}
		if !merged {
			dst = append(dst, pc)
		}
	}
	return dst
}

// Answer is the uniform response to any Query. Every answer carries the
// consensus Value and the Cost bill; the remaining fields are filled
// when the operation produces them:
//
//   - single-run aggregates (Max..Rank, Moments) fill PerNode, Consensus,
//     Trees and the fault counters;
//   - OpMoments additionally fills Mean/Variance/Std (Value = Mean and
//     PerNode holds the per-node means);
//   - OpQuantile fills Converged (false when the bisection hit its run
//     cap before reaching Tol) and leaves PerNode nil;
//   - OpHistogram fills Counts and leaves Value NaN.
type Answer struct {
	// Op echoes the operation the answer responds to.
	Op Op
	// Value is the network's consensus value (NaN for OpHistogram).
	Value float64
	// PerNode holds final node values for single-run queries, as selected
	// by Config.SampleNodes: nil by default (no O(N) copy per answer),
	// min(SampleNodes, N) deterministically sampled values (their ids in
	// SampleIDs), or the full N-entry vector with AllNodes. Crashed nodes
	// report NaN. Nil for composite queries.
	PerNode []float64
	// SampleIDs lists the node ids PerNode covers when Config.SampleNodes
	// requested a sample (sorted ascending; nil for AllNodes and for the
	// default of no materialization). The sample is a pure function of
	// (Seed, N, SampleNodes) — identical across runs and Workers values.
	SampleIDs []int
	// Consensus reports whether all surviving nodes agree exactly
	// (single-run queries only).
	Consensus bool
	// Cost is the query's accumulated protocol bill.
	Cost Cost
	// PhaseCosts attributes Cost to the protocol phases in execution
	// order (drr, aggregate, gossip, broadcast), accumulated across all
	// of a composite query's runs. The entries sum exactly to
	// Cost.Rounds, Cost.Messages and Cost.Drops.
	PhaseCosts []PhaseCost
	// Trees is the number of DRR trees built in Phase I (last run).
	Trees int
	// Alive is the number of nodes alive when the (last) run ended; with
	// an active fault plan this reflects mid-run crashes and rejoins.
	Alive int
	// FaultEvents/FaultCrashes/FaultRevives count the fault-plan actions
	// applied during the (last) run; 0 without a plan.
	FaultEvents  int
	FaultCrashes int
	FaultRevives int
	// Mean, Variance and Std are filled by OpMoments.
	Mean, Variance, Std float64
	// Exchanges counts the committed pairwise exchanges of an Async-mode
	// run (each billed 2 messages in Cost.Messages; failed handshakes
	// bill their transmissions but commit nothing). Always 0 in Sync
	// mode.
	Exchanges int64
	// Counts are the OpHistogram bucket counts (len(Edges)+1 buckets),
	// measured over the population the protocol itself counted: the
	// engine's surviving nodes in the static model, a dedicated Count run
	// under a fault plan (consistent with the per-edge Rank counts even
	// when membership changes mid-run, so buckets stay non-negative).
	Counts []float64
	// Converged is true when the answer met its tolerance; OpQuantile
	// reports false when the bisection hit its run cap first, and an
	// Async-mode OpAverage reports false when the estimate spread did
	// not reach Config.AsyncEps within the event cap (slow-mixing
	// overlays, isolated nodes). Aborted (partial) answers always report
	// false.
	Converged bool
	// Quality reports how trustworthy the answer is: whether the query
	// ran to completion and what degradation the fault schedule could
	// have introduced. It is populated on every answer — Partial is
	// false and Reason empty on a normal completion — so callers gate on
	// degradation uniformly instead of guessing from NaNs. See
	// docs/ROBUSTNESS.md for the degradation contract.
	Quality Quality
}

// Quality.Reason values: what cut a partial answer's run short.
const (
	// ReasonDeadline marks a run aborted by Config.Deadline.
	ReasonDeadline = "deadline"
	// ReasonRoundBudget marks a run aborted by Config.RoundBudget.
	ReasonRoundBudget = "round-budget"
	// ReasonCancelled marks a run aborted by context cancellation.
	ReasonCancelled = "cancelled"
)

// Quality is the bounded-degradation block every Answer carries (see
// Answer.Quality and docs/ROBUSTNESS.md). All fields are plain values
// (never NaN), so answers stay comparable with reflect.DeepEqual.
type Quality struct {
	// Partial is true when the query did not run to completion: the
	// watchdog aborted it (Config.Deadline or Config.RoundBudget) or the
	// context was cancelled mid-run. A partial answer's Value is what
	// the run could salvage (NaN for aborted synchronous pipelines, the
	// current estimate mean for async averaging) and its Cost bills the
	// work actually performed.
	Partial bool
	// Reason says what cut the run short: ReasonDeadline,
	// ReasonRoundBudget or ReasonCancelled. Empty for complete runs.
	Reason string
	// AliveFraction is the surviving fraction of the population when the
	// (last) run ended: Answer.Alive / Config.N.
	AliveFraction float64
	// Converged mirrors Answer.Converged, so the quality block is
	// self-contained for logging.
	Converged bool
	// Residual is the final convergence residual where the execution
	// model defines one: in Async mode the closing spread (max − min) of
	// the alive nodes' estimates — 0 at exact consensus. The synchronous
	// pipelines are exact rather than iterative and always report -1
	// ("no residual"); their per-round gossip residual streams live in
	// telemetry, not here.
	Residual float64
	// SurvivorBound estimates the worst-case input mass the fault
	// schedule removed: FaultCrashes / N, the fraction of nodes the plan
	// crashed during the (last) run. For mass-style aggregates (Sum,
	// Count) the exact all-nodes value lies within roughly this relative
	// distance below the answer; 0 without crashes.
	SurvivorBound float64
	// Retries counts the epoch-restart re-runs the answer consumed under
	// Config.Retry (0 without a policy or when the first attempt
	// converged).
	Retries int
}

// result renders the answer as a legacy Result (the pre-session shape
// the one-shot helpers return).
func (a *Answer) result() *Result {
	return &Result{
		Value:        a.Value,
		PerNode:      a.PerNode,
		SampleIDs:    a.SampleIDs,
		Consensus:    a.Consensus,
		Rounds:       a.Cost.Rounds,
		Messages:     a.Cost.Messages,
		Drops:        a.Cost.Drops,
		PhaseCosts:   a.PhaseCosts,
		Trees:        a.Trees,
		Alive:        a.Alive,
		FaultEvents:  a.FaultEvents,
		FaultCrashes: a.FaultCrashes,
		FaultRevives: a.FaultRevives,
	}
}

// ExactOf returns the reference value a Query should converge to: the
// aggregate computed directly over the values that survive cfg's static
// crash model. It supports every scalar operation (OpMax..OpRank and
// OpQuantile, for which it returns the exact φ-quantile of the surviving
// values); OpMoments and OpHistogram have no single reference value and
// return an error, as do unknown operations. Unlike the deprecated
// Exact, bad input yields an error instead of a panic.
func ExactOf(cfg Config, q Query) (float64, error) {
	if cfg.N < 2 {
		return 0, fmt.Errorf("%w: N must be >= 2, got %d", ErrBadConfig, cfg.N)
	}
	if len(q.Values) != cfg.N {
		return 0, fmt.Errorf("%w: %d values for N=%d", ErrBadConfig, len(q.Values), cfg.N)
	}
	alive := agg.Subset(q.Values, cfg.engine().AliveIDs())
	switch q.Op {
	case OpMin:
		return agg.Exact(agg.Min, alive, 0), nil
	case OpMax:
		return agg.Exact(agg.Max, alive, 0), nil
	case OpSum:
		return agg.Exact(agg.Sum, alive, 0), nil
	case OpCount:
		return agg.Exact(agg.Count, alive, 0), nil
	case OpAverage:
		return agg.Exact(agg.Average, alive, 0), nil
	case OpRank:
		return agg.Exact(agg.Rank, alive, q.Arg), nil
	case OpQuantile:
		if q.Arg <= 0 || q.Arg > 1 {
			return 0, fmt.Errorf("%w: phi must be in (0,1]", ErrBadConfig)
		}
		return agg.Quantile(alive, q.Arg), nil
	default:
		return 0, fmt.Errorf("%w: no scalar reference value for %s", ErrBadConfig, q.Op)
	}
}
