package drrgossip

import (
	"math"
	"testing"

	"drrgossip/internal/agg"
	"drrgossip/internal/chord"
	core "drrgossip/internal/drrgossip"
	"drrgossip/internal/kashyap"
	"drrgossip/internal/kempe"
	"drrgossip/internal/pietro"
	"drrgossip/internal/sim"
)

// Integration tests: the three Table 1 algorithms (plus the clusterhead
// heuristic) must agree with each other and with the exact aggregate on
// identical inputs, across failure configurations and topologies.

func TestAllAlgorithmsAgreeOnMax(t *testing.T) {
	n := 2048
	values := agg.GenUniform(n, -1000, 1000, 61)
	want := agg.Exact(agg.Max, values, 0)

	dres, err := core.Max(sim.NewEngine(n, sim.Options{Seed: 62}), values, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	kres, err := kashyap.Max(sim.NewEngine(n, sim.Options{Seed: 63}), values, kashyap.Options{})
	if err != nil {
		t.Fatal(err)
	}
	mres, err := kempe.PushMax(sim.NewEngine(n, sim.Options{Seed: 64}), values, kempe.Options{})
	if err != nil {
		t.Fatal(err)
	}
	pres, err := pietro.Max(sim.NewEngine(n, sim.Options{Seed: 65}), values, pietro.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if dres.Value != want || kres.Value != want || pres.Value != want {
		t.Fatalf("disagreement: drr %v, kashyap %v, pietro %v, want %v",
			dres.Value, kres.Value, pres.Value, want)
	}
	for i, v := range mres.Estimates {
		if v != want {
			t.Fatalf("kempe node %d has %v, want %v", i, v, want)
		}
	}
}

func TestAllAlgorithmsAgreeOnAverage(t *testing.T) {
	n := 2048
	values := agg.GenSigned(n, 500, 66)
	want := agg.Exact(agg.Average, values, 0)
	tol := 1e-5

	dres, err := core.Ave(sim.NewEngine(n, sim.Options{Seed: 67}), values, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	kres, err := kashyap.Ave(sim.NewEngine(n, sim.Options{Seed: 68}), values, kashyap.Options{})
	if err != nil {
		t.Fatal(err)
	}
	mres, err := kempe.PushSum(sim.NewEngine(n, sim.Options{Seed: 69}), values, kempe.Options{})
	if err != nil {
		t.Fatal(err)
	}
	for name, got := range map[string]float64{
		"drr": dres.Value, "kashyap": kres.Value, "kempe": mres.Estimates[0],
	} {
		if math.Abs(got-want) > tol*math.Max(math.Abs(want), 1) {
			t.Fatalf("%s average %v, want %v", name, got, want)
		}
	}
}

func TestMessageOrderingAtScale(t *testing.T) {
	// The Table 1 ordering must hold head-to-head on one seed at a size
	// where the asymptotics have separated: kempe spends more messages
	// than drr; drr and kempe finish faster than kashyap.
	n := 16384
	values := agg.GenUniform(n, 0, 1, 70)

	dres, err := core.Ave(sim.NewEngine(n, sim.Options{Seed: 71}), values, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	kres, err := kashyap.Ave(sim.NewEngine(n, sim.Options{Seed: 72}), values, kashyap.Options{})
	if err != nil {
		t.Fatal(err)
	}
	mres, err := kempe.PushSum(sim.NewEngine(n, sim.Options{Seed: 73}), values, kempe.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if mres.Stats.Messages <= dres.Stats.Messages {
		t.Fatalf("kempe messages %d <= drr %d at n=%d",
			mres.Stats.Messages, dres.Stats.Messages, n)
	}
	if dres.Stats.Rounds >= kres.Stats.Rounds {
		t.Fatalf("drr rounds %d >= kashyap %d", dres.Stats.Rounds, kres.Stats.Rounds)
	}
	if mres.Stats.Rounds >= kres.Stats.Rounds {
		t.Fatalf("kempe rounds %d >= kashyap %d", mres.Stats.Rounds, kres.Stats.Rounds)
	}
}

func TestCompleteAndChordAgree(t *testing.T) {
	// The same aggregate through both topologies of the public API.
	n := 512
	values := agg.GenUniform(n, 0, 100, 74)
	complete, err := Average(Config{N: n, Seed: 75}, values)
	if err != nil {
		t.Fatal(err)
	}
	chordRes, err := Average(Config{N: n, Seed: 76, Topology: Chord}, values)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(complete.Value-chordRes.Value) > 1e-3 {
		t.Fatalf("topologies disagree: complete %v, chord %v", complete.Value, chordRes.Value)
	}
	// Chord pays more rounds (routing) but its correctness matches.
	if chordRes.Rounds <= complete.Rounds {
		t.Fatalf("chord rounds %d <= complete rounds %d", chordRes.Rounds, complete.Rounds)
	}
}

func TestChordDRRBeatsChordUniformOnMessages(t *testing.T) {
	n := 1024
	ring, err := chord.New(n, chord.Options{Bits: 40})
	if err != nil {
		t.Fatal(err)
	}
	values := agg.GenUniform(n, 0, 100, 77)
	dres, err := core.MaxOnChord(sim.NewEngine(n, sim.Options{Seed: 78}), ring, values, core.SparseOptions{})
	if err != nil {
		t.Fatal(err)
	}
	ures, err := kempe.PushMaxOnChord(sim.NewEngine(n, sim.Options{Seed: 79}), ring, values, kempe.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if ures.Stats.Messages <= 2*dres.Stats.Messages {
		t.Fatalf("uniform-on-chord %d messages vs drr-on-chord %d: expected a clear gap",
			ures.Stats.Messages, dres.Stats.Messages)
	}
}

func TestMomentsFacade(t *testing.T) {
	n := 1024
	values := agg.GenUniform(n, 0, 100, 80)
	res, err := Moments(Config{N: n, Seed: 81}, values)
	if err != nil {
		t.Fatal(err)
	}
	wantMean := agg.Exact(agg.Average, values, 0)
	s2 := 0.0
	for _, v := range values {
		s2 += v * v
	}
	wantVar := s2/float64(n) - wantMean*wantMean
	if agg.RelError(res.Mean, wantMean) > 1e-6 {
		t.Fatalf("Mean = %v, want %v", res.Mean, wantMean)
	}
	if agg.RelError(res.Variance, wantVar) > 1e-6 {
		t.Fatalf("Variance = %v, want %v", res.Variance, wantVar)
	}
	if !res.Consensus || res.Messages == 0 {
		t.Fatalf("result incomplete: %+v", res)
	}
	if _, err := Moments(Config{N: n, Seed: 81, Topology: Chord}, values); err == nil {
		t.Fatal("chord Moments should be rejected")
	}
}

func TestFullStackUnderAdversity(t *testing.T) {
	// Everything at once: loss at the paper's bound, 20% initial crashes,
	// every facade aggregate, one seed.
	n := 4096
	cfg := Config{N: n, Seed: 82, Loss: 0.125, CrashFraction: 0.2}
	values := agg.GenUniform(n, -50, 150, 83)

	mx, err := Max(cfg, values)
	if err != nil {
		t.Fatal(err)
	}
	if mx.Value != Exact(cfg, "max", values) || !mx.Consensus {
		t.Fatalf("Max = %v (consensus %v)", mx.Value, mx.Consensus)
	}
	mn, err := Min(cfg, values)
	if err != nil {
		t.Fatal(err)
	}
	if mn.Value != Exact(cfg, "min", values) {
		t.Fatalf("Min = %v", mn.Value)
	}
	av, err := Average(cfg, values)
	if err != nil {
		t.Fatal(err)
	}
	if agg.RelError(av.Value, Exact(cfg, "average", values)) > 0.05 {
		t.Fatalf("Average = %v, want %v", av.Value, Exact(cfg, "average", values))
	}
	ct, err := Count(cfg, values)
	if err != nil {
		t.Fatal(err)
	}
	if agg.RelError(ct.Value, Exact(cfg, "count", values)) > 0.02 {
		t.Fatalf("Count = %v, want %v", ct.Value, Exact(cfg, "count", values))
	}
}
