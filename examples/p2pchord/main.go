// P2PChord: the paper's peer-to-peer motivation on its Section 4 sparse
// topology. Peers in a Chord overlay store files; the system designer
// wants the average and maximum files-per-peer without all-to-all
// connectivity. DRR-gossip runs Local-DRR over finger links and routes
// root gossip through the overlay (Theorem 14: O(log^2 n) time,
// O(n log n) messages — a log n factor fewer messages than uniform
// gossip on the same overlay).
//
//	go run ./examples/p2pchord
package main

import (
	"fmt"
	"log"
	"math"

	"drrgossip"
	"drrgossip/internal/agg"
	"drrgossip/internal/xrand"
)

func main() {
	const peers = 2048
	// File counts: a Zipf-ish long tail — most peers store little, a few
	// store a lot.
	rng := xrand.New(512)
	files := make([]float64, peers)
	for i := range files {
		u := rng.Float64()
		files[i] = math.Floor(5 / (0.02 + u*u)) // heavy tail, max ~250
	}

	cfg := drrgossip.Config{N: peers, Seed: 77, Topology: drrgossip.Chord}
	fmt.Printf("chord overlay: %d peers, finger-table degree O(log n)\n\n", peers)

	ave, err := drrgossip.Average(cfg, files)
	if err != nil {
		log.Fatal(err)
	}
	exactAve := drrgossip.Exact(cfg, "average", files)
	fmt.Printf("avg files/peer: %8.2f  (exact %8.2f, rel.err %.2g)\n",
		ave.Value, exactAve, agg.RelError(ave.Value, exactAve))

	max, err := drrgossip.Max(cfg, files)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("max files/peer: %8.0f  (exact %8.0f) — consensus: %v\n",
		max.Value, drrgossip.Exact(cfg, "max", files), max.Consensus)

	logn := math.Log2(peers)
	fmt.Printf("\ncost on the overlay (Theorem 14):\n")
	fmt.Printf("  average: %5d rounds (%4.1f·log² n), %7d messages (%4.1f·n·log n)\n",
		ave.Rounds, float64(ave.Rounds)/(logn*logn), ave.Messages,
		float64(ave.Messages)/(float64(peers)*logn))
	fmt.Printf("  max:     %5d rounds (%4.1f·log² n), %7d messages (%4.1f·n·log n)\n",
		max.Rounds, float64(max.Rounds)/(logn*logn), max.Messages,
		float64(max.Messages)/(float64(peers)*logn))
	fmt.Printf("  (uniform gossip on the same overlay needs Θ(n·log² n) messages;\n")
	fmt.Printf("   run `go run ./cmd/benchtab -experiment F11` for the side-by-side sweep)\n")
}
