// Queries: the session API end to end — one reusable drrgossip.Network
// answers a dashboard-style batch of typed queries (extrema, average,
// two quantiles, a histogram) over a Chord overlay while a fault plan
// churns the membership, with a per-round Observer streaming live
// progress. The point of the session: the overlay is built once and the
// fault plan is measured/bound once per operation kind, no matter how
// many Rank steps the quantiles and the histogram spend.
//
//	go run ./examples/queries
package main

import (
	"fmt"
	"log"
	"math"

	"drrgossip"
	"drrgossip/internal/agg"
)

func main() {
	const n = 1024
	plan, err := drrgossip.ParseFaultPlan("crash:0.1@0.5;rejoin@0.9")
	if err != nil {
		log.Fatal(err)
	}
	cfg := drrgossip.Config{N: n, Seed: 7, Topology: drrgossip.Chord, Faults: plan}

	// Per-node metric: request latencies, uniform in [0, 500) ms.
	latency := agg.GenUniform(n, 0, 500, 11)

	net, err := drrgossip.New(cfg)
	if err != nil {
		log.Fatal(err)
	}

	// Live progress: one line every 2000 simulated rounds. Observers are
	// read-only — results are bit-identical with or without them.
	net.Observe(drrgossip.ObserverFunc(func(ri drrgossip.RoundInfo) {
		if ri.Round%2000 == 0 {
			fmt.Printf("  … run %2d round %6d [%-9s] alive %4d, %7d msgs, %d fault events\n",
				ri.Run, ri.Round, ri.Phase, ri.Alive, ri.Messages, ri.FaultEvents)
		}
	}))

	fmt.Printf("latency dashboard over %d nodes (chord overlay, faults %s)\n\n", n, plan)
	batch := []drrgossip.Query{
		drrgossip.MaxOf(latency),
		drrgossip.MinOf(latency),
		drrgossip.AverageOf(latency),
		drrgossip.QuantileOf(latency, 0.50, 1.0),
		drrgossip.QuantileOf(latency, 0.99, 1.0),
		drrgossip.HistogramOf(latency, []float64{100, 200, 300, 400}),
	}
	answers, bill, err := net.RunAll(batch)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("\nquery           answer                                     runs  rounds  msgs/node")
	fmt.Println("---------------------------------------------------------------------------------")
	for i, a := range answers {
		var rendered string
		switch a.Op {
		case drrgossip.OpQuantile:
			rendered = fmt.Sprintf("p%02.0f ≈ %.1f ms (converged %v)", batch[i].Arg*100, a.Value, a.Converged)
		case drrgossip.OpHistogram:
			rendered = fmt.Sprintf("buckets %v", trim(a.Counts))
		default:
			rendered = fmt.Sprintf("%.2f ms (consensus %v)", a.Value, a.Consensus)
		}
		fmt.Printf("%-15s %-42s %4d  %6d  %9.1f\n",
			a.Op, rendered, a.Cost.Runs, a.Cost.Rounds, float64(a.Cost.Messages)/n)
	}

	st := net.Stats()
	fmt.Printf("\nbatch bill: %d protocol runs, %d rounds, %.1f msgs/node, %d drops\n",
		bill.Runs, bill.Rounds, float64(bill.Messages)/n, bill.Drops)
	fmt.Printf("session:    %d queries, %d protocol runs total, %d horizon pre-runs, %d plan binds, overlay built once: %v\n",
		st.Queries, st.ProtocolRuns, st.HorizonRuns, st.PlanBinds, st.OverlayBuilt)
	fmt.Printf("exact p99 for reference: %.1f ms\n", agg.Quantile(latency, 0.99))
}

// trim rounds bucket counts for display.
func trim(xs []float64) []int {
	out := make([]int, len(xs))
	for i, x := range xs {
		out[i] = int(math.Round(x))
	}
	return out
}
