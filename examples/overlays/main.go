// Example overlays walks through the pluggable-topology facade: the same
// aggregate computations run unchanged on the paper's complete network,
// on Chord (Section 4's case study), and on any registered sparse
// overlay — torus, hypercube, random regular, small world. It prints a
// per-topology cost table showing the price of sparseness: routed
// root-level gossip pays graph hops for every virtual "call", so rounds
// and messages grow with the overlay's routing diameter while the
// computed values stay identical.
//
// Usage:
//
//	go run ./examples/overlays
package main

import (
	"fmt"
	"os"

	"drrgossip"
)

func main() {
	const n = 1024 // power of two (hypercube), 32×32 (torus), 4-regular OK
	topologies := []drrgossip.Topology{
		drrgossip.Complete,
		drrgossip.Chord,
		drrgossip.Torus,
		drrgossip.Hypercube,
		drrgossip.RandomRegular(4),
		drrgossip.SmallWorld,
	}

	// A synthetic per-node metric: node i reports 50 + (i mod 100).
	values := make([]float64, n)
	for i := range values {
		values[i] = 50 + float64(i%100)
	}
	cfg := drrgossip.Config{N: n, Seed: 42}
	exactAve := drrgossip.Exact(cfg, "average", values)
	exactMax := drrgossip.Exact(cfg, "max", values)
	exactSum := drrgossip.Exact(cfg, "sum", values)

	fmt.Printf("DRR-gossip over %d nodes — exact: max=%.0f ave=%.2f sum=%.0f\n\n", n, exactMax, exactAve, exactSum)
	fmt.Printf("%-12s %10s %10s %12s %10s %10s %12s\n",
		"topology", "max", "ave", "sum", "trees", "rounds", "msgs/node")

	for _, topo := range topologies {
		cfg := drrgossip.Config{N: n, Seed: 42, Topology: topo}
		mx, err := drrgossip.Max(cfg, values)
		fail(err)
		av, err := drrgossip.Average(cfg, values)
		fail(err)
		sm, err := drrgossip.Sum(cfg, values)
		fail(err)
		totalRounds := mx.Rounds + av.Rounds + sm.Rounds
		perNode := float64(mx.Messages+av.Messages+sm.Messages) / float64(n)
		fmt.Printf("%-12s %10.0f %10.2f %12.0f %10d %10d %12.1f\n",
			topo, mx.Value, av.Value, sm.Value, mx.Trees, totalRounds, perNode)
		if !mx.Consensus || !av.Consensus || !sm.Consensus {
			fmt.Fprintf(os.Stderr, "overlays: %s failed to reach consensus\n", topo)
			os.Exit(1)
		}
	}

	fmt.Println("\nEvery topology agrees on the aggregates; sparse overlays pay")
	fmt.Println("routed hops per root-gossip exchange (the rounds/messages gap).")
	fmt.Println("Topology catalog:", drrgossip.TopologyNames())

	// Parameterised specs parse from text, e.g. for CLI flags:
	topo, err := drrgossip.ParseTopology("regular:6")
	fail(err)
	res, err := drrgossip.Average(drrgossip.Config{N: 512, Seed: 7, Topology: topo}, values[:512])
	fail(err)
	fmt.Printf("\nregular:6 average over 512 nodes = %.2f (%d trees, %d rounds)\n",
		res.Value, res.Trees, res.Rounds)
}

func fail(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "overlays:", err)
		os.Exit(1)
	}
}
