// Sensorfleet: the paper's sensor-network motivation. A fleet of sensors
// reports battery charge; the operator needs the minimum (when does the
// first sensor die?), the average (fleet health) and how many sensors are
// below a replacement threshold — all computed in-network with
// DRR-gossip, under realistic lossy radio links and a fraction of sensors
// dead on arrival.
//
//	go run ./examples/sensorfleet
package main

import (
	"fmt"
	"log"

	"drrgossip"
	"drrgossip/internal/agg"
	"drrgossip/internal/xrand"
)

const (
	fleet     = 8192 // deployed sensors
	doa       = 0.08 // dead-on-arrival fraction (initial crashes)
	radioLoss = 0.10 // per-message radio loss
	threshold = 20.0 // replacement threshold, percent charge
)

func main() {
	// Battery model: most sensors 40-100%, a weak batch near the bottom.
	rng := xrand.New(99)
	charge := make([]float64, fleet)
	for i := range charge {
		if rng.Bool(0.15) {
			charge[i] = 5 + 25*rng.Float64() // weak batch
		} else {
			charge[i] = 40 + 60*rng.Float64()
		}
	}

	cfg := drrgossip.Config{N: fleet, Seed: 31, Loss: radioLoss, CrashFraction: doa}
	fmt.Printf("sensor fleet: %d deployed, ~%.0f%% dead on arrival, δ=%.2f radio loss\n\n",
		fleet, doa*100, radioLoss)

	minRes, err := drrgossip.Min(cfg, charge)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("weakest live sensor:  %5.1f%% charge (exact %5.1f%%) — consensus: %v\n",
		minRes.Value, drrgossip.Exact(cfg, "min", charge), minRes.Consensus)

	aveRes, err := drrgossip.Average(cfg, charge)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("fleet average:        %5.1f%% charge (exact %5.1f%%, rel.err %.2g)\n",
		aveRes.Value, drrgossip.Exact(cfg, "average", charge),
		agg.RelError(aveRes.Value, drrgossip.Exact(cfg, "average", charge)))

	countRes, err := drrgossip.Count(cfg, charge)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("live sensors:         %5.0f (engine says %d)\n", countRes.Value, countRes.Alive)

	lowRes, err := drrgossip.Rank(cfg, charge, threshold)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("below %2.0f%% threshold: %5.0f sensors need replacement\n", threshold, lowRes.Value)

	// The point of DRR-gossip for sensor networks: the message bill.
	total := minRes.Messages + aveRes.Messages + countRes.Messages + lowRes.Messages
	fmt.Printf("\nradio budget: %d messages total (%.1f per sensor per aggregate)\n",
		total, float64(total)/float64(fleet)/4)
	fmt.Printf("time: min %d / ave %d / count %d / rank %d rounds\n",
		minRes.Rounds, aveRes.Rounds, countRes.Rounds, lowRes.Rounds)
}
