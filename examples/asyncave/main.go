// Asyncave: the two execution models side by side. The same population
// computes its average twice — once with the paper's synchronous
// DRR-gossip pipeline (Mode: Sync, the default), once with classical
// asynchronous pairwise averaging on Poisson clocks (Mode: Async) — and
// the example prints the bills in the shared accounting unit (one
// transmission = one message) plus a convergence-residual table streamed
// live from the async runs through a session observer. The async legs
// sweep the three peer-selection policies on a Chord overlay,
// showing why greedy selection (GGE, sample-greedy) earns its place in
// the literature: fewer exchanges to the same ε.
//
//	go run ./examples/asyncave
package main

import (
	"fmt"
	"log"
	"math"

	"drrgossip"
)

const (
	n    = 1024
	seed = 17
	eps  = 1e-6
)

// residualTap records the convergence residual (the spread of the alive
// estimates) at fixed event strides, building the walkthrough's table.
type residualTap struct {
	every int
	rows  map[int]float64 // events -> residual
}

func (rt *residualTap) OnRound(ri drrgossip.RoundInfo) {
	if ri.Round%rt.every == 0 && !math.IsNaN(ri.Residual) {
		rt.rows[ri.Round] = ri.Residual
	}
}

func main() {
	// A bimodal population: half the values near 0, half near 1000 —
	// averaging has real work to do.
	values := make([]float64, n)
	for i := range values {
		if i%2 == 0 {
			values[i] = float64(i % 7)
		} else {
			values[i] = 1000 - float64(i%11)
		}
	}
	exact := 0.0
	for _, v := range values {
		exact += v
	}
	exact /= n

	// Leg 1: the synchronous DRR-gossip pipeline on the Chord overlay
	// (the Section 4 sparse pipeline).
	syncNet, err := drrgossip.New(drrgossip.Config{N: n, Seed: seed, Topology: drrgossip.Chord})
	if err != nil {
		log.Fatal(err)
	}
	syncAns, err := syncNet.Run(drrgossip.AverageOf(values))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("population of %d on a Chord overlay, exact mean %.3f\n\n", n, exact)
	fmt.Printf("%-22s %10s %12s %10s %12s\n", "protocol", "exchanges", "messages", "clock", "value err")
	fmt.Printf("%-22s %10s %12d %10s %12.2e\n",
		"drr-gossip (sync)", "-", syncAns.Cost.Messages, fmt.Sprintf("%d rounds", syncAns.Cost.Rounds),
		math.Abs(syncAns.Value-exact))

	// Legs 2-4: asynchronous pairwise averaging, one session per
	// peer-selection policy, each streaming its residual trajectory.
	taps := map[string]*residualTap{}
	for _, peer := range []string{"uniform", "gge", "samplegreedy"} {
		net, err := drrgossip.New(drrgossip.Config{
			N: n, Seed: seed, Topology: drrgossip.Chord,
			Mode: drrgossip.Async, AsyncPeer: peer, AsyncEps: eps,
		})
		if err != nil {
			log.Fatal(err)
		}
		tap := &residualTap{every: 4 * n, rows: map[int]float64{}}
		taps[peer] = tap
		net.Observe(tap)
		ans, err := net.Run(drrgossip.AverageOf(values))
		if err != nil {
			log.Fatal(err)
		}
		conv := fmt.Sprintf("%.1f", ans.Cost.Clock)
		if !ans.Converged {
			conv += " (cap)"
		}
		fmt.Printf("%-22s %10d %12d %10s %12.2e\n",
			"pairwise/"+peer, ans.Exchanges, ans.Cost.Messages, conv, math.Abs(ans.Value-exact))
	}

	// The residual table: how fast each policy closes the spread. Rows
	// are event counts (n events ≈ one expected tick per node).
	fmt.Printf("\nconvergence residual (spread of estimates) by dispatched events:\n")
	fmt.Printf("%10s %14s %14s %14s\n", "events", "uniform", "gge", "samplegreedy")
	for ev := 4 * n; ev <= 64*n; ev *= 2 {
		fmt.Printf("%10d", ev)
		for _, peer := range []string{"uniform", "gge", "samplegreedy"} {
			if r, ok := taps[peer].rows[ev]; ok {
				fmt.Printf(" %14.3e", r)
			} else {
				fmt.Printf(" %14s", "converged")
			}
		}
		fmt.Println()
	}
	fmt.Printf("\nevery protocol pays per transmission; the async exchanges bill 2 messages each.\n")
	fmt.Printf("greedy eavesdropping spends each exchange where the gap is largest — fewer\n")
	fmt.Printf("exchanges to ε=%.0e than uniform selection on the same overlay.\n", eps)
}
