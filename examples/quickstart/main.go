// Quickstart: compute every supported aggregate over a simulated 4096-node
// network with the public API and print the cost next to the paper's
// bounds.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"math"

	"drrgossip"
	"drrgossip/internal/agg"
)

func main() {
	const n = 4096
	cfg := drrgossip.Config{N: n, Seed: 2024}

	// Every node holds one value; here: uniform in [0, 100).
	values := agg.GenUniform(n, 0, 100, 7)

	fmt.Printf("DRR-gossip on %d nodes (complete topology, no failures)\n\n", n)
	type runner struct {
		name  string
		run   func() (*drrgossip.Result, error)
		exact float64
	}
	runs := []runner{
		{"Max", func() (*drrgossip.Result, error) { return drrgossip.Max(cfg, values) },
			drrgossip.Exact(cfg, "max", values)},
		{"Min", func() (*drrgossip.Result, error) { return drrgossip.Min(cfg, values) },
			drrgossip.Exact(cfg, "min", values)},
		{"Average", func() (*drrgossip.Result, error) { return drrgossip.Average(cfg, values) },
			drrgossip.Exact(cfg, "average", values)},
		{"Sum", func() (*drrgossip.Result, error) { return drrgossip.Sum(cfg, values) },
			drrgossip.Exact(cfg, "sum", values)},
		{"Count", func() (*drrgossip.Result, error) { return drrgossip.Count(cfg, values) },
			drrgossip.Exact(cfg, "count", values)},
		{"Rank(50)", func() (*drrgossip.Result, error) { return drrgossip.Rank(cfg, values, 50) },
			agg.Exact(agg.Rank, values, 50)},
	}
	logn := math.Log2(n)
	loglogn := math.Log2(logn)
	for _, r := range runs {
		res, err := r.run()
		if err != nil {
			log.Fatalf("%s: %v", r.name, err)
		}
		fmt.Printf("%-9s = %12.4f  (exact %12.4f)  rounds=%3d (%4.1f·log n)  msgs/node=%5.1f (%4.1f·loglog n)\n",
			r.name, res.Value, r.exact,
			res.Rounds, float64(res.Rounds)/logn,
			float64(res.Messages)/n, float64(res.Messages)/n/loglogn)
	}

	// Quantiles come from O(log 1/tol) Rank computations.
	q, err := drrgossip.Quantile(cfg, values, 0.95, 0.1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n95th percentile ≈ %.2f (exact %.2f), via %d aggregate runs\n",
		q.Value, agg.Quantile(values, 0.95), q.Runs)
}
