// Quickstart: build one session on a simulated 4096-node network and run
// every supported aggregate against it with typed queries, printing the
// cost next to the paper's bounds.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"math"

	"drrgossip"
	"drrgossip/internal/agg"
)

func main() {
	const n = 4096

	// One Network handle: validated once, ready for any number of queries.
	net, err := drrgossip.New(drrgossip.Config{N: n, Seed: 2024})
	if err != nil {
		log.Fatal(err)
	}

	// Every node holds one value; here: uniform in [0, 100).
	values := agg.GenUniform(n, 0, 100, 7)

	fmt.Printf("DRR-gossip on %d nodes (complete topology, no failures)\n\n", n)
	queries := []drrgossip.Query{
		drrgossip.MaxOf(values),
		drrgossip.MinOf(values),
		drrgossip.AverageOf(values),
		drrgossip.SumOf(values),
		drrgossip.CountOf(values),
		drrgossip.RankOf(values, 50),
	}
	logn := math.Log2(n)
	loglogn := math.Log2(logn)
	for _, q := range queries {
		res, err := net.Run(q)
		if err != nil {
			log.Fatalf("%s: %v", q.Op, err)
		}
		exact, err := net.Exact(q)
		if err != nil {
			log.Fatalf("%s: %v", q.Op, err)
		}
		fmt.Printf("%-9s = %12.4f  (exact %12.4f)  rounds=%3d (%4.1f·log n)  msgs/node=%5.1f (%4.1f·loglog n)\n",
			q.Op, res.Value, exact,
			res.Cost.Rounds, float64(res.Cost.Rounds)/logn,
			float64(res.Cost.Messages)/n, float64(res.Cost.Messages)/n/loglogn)
	}

	// Quantiles come from O(log 1/tol) Rank computations — all against
	// the same session.
	q, err := net.Quantile(values, 0.95, 0.1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n95th percentile ≈ %.2f (exact %.2f), via %d aggregate runs (converged %v)\n",
		q.Value, agg.Quantile(values, 0.95), q.Cost.Runs, q.Converged)
}
