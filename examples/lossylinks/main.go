// Lossylinks: robustness sweep. The paper's failure model allows every
// message to be dropped independently with probability δ < 1/8; this
// example sweeps δ past that bound and shows what degrades (nothing
// catastrophically: Max stays exact, Average drifts gently, the message
// bill inflates by roughly 1/(1-2δ)).
//
//	go run ./examples/lossylinks
package main

import (
	"fmt"
	"log"

	"drrgossip"
	"drrgossip/internal/agg"
)

func main() {
	const n = 4096
	values := agg.GenUniform(n, 0, 1000, 3)

	fmt.Printf("δ sweep on %d nodes (paper admits δ < 1/8 = 0.125)\n\n", n)
	fmt.Printf("%8s  %10s  %12s  %10s  %8s  %10s\n",
		"δ", "max ok", "ave rel.err", "consensus", "rounds", "msgs/node")
	for _, delta := range []float64{0, 0.02, 0.05, 0.08, 0.125, 0.2} {
		cfg := drrgossip.Config{N: n, Seed: 1000 + uint64(delta*1000), Loss: delta}

		maxRes, err := drrgossip.Max(cfg, values)
		if err != nil {
			log.Fatal(err)
		}
		maxOK := maxRes.Value == drrgossip.Exact(cfg, "max", values)

		aveRes, err := drrgossip.Average(cfg, values)
		if err != nil {
			log.Fatal(err)
		}
		relErr := agg.RelError(aveRes.Value, drrgossip.Exact(cfg, "average", values))

		marker := ""
		if delta > 0.125 {
			marker = "  <- beyond the paper's bound"
		}
		fmt.Printf("%8.3f  %10v  %12.2e  %10v  %8d  %10.1f%s\n",
			delta, maxOK, relErr, maxRes.Consensus && aveRes.Consensus,
			maxRes.Rounds, float64(maxRes.Messages)/float64(n), marker)
	}
	fmt.Println("\nMax is exact under any admissible δ (convergecast retransmits, the")
	fmt.Println("sampling procedure repairs stragglers); Average degrades smoothly")
	fmt.Println("because lost push-sum shares remove (s, g) mass proportionally.")
}
