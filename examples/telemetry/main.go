// Telemetry: a cluster-monitoring scenario that exercises the extended
// aggregates. A datacenter of machines reports per-node request latency;
// the operator wants mean AND variance (for an SLO alarm on tail
// behaviour) in one in-network protocol run, plus an elected coordinator
// (the paper's §6 outlook: DRR as a tool for other distributed problems).
//
//	go run ./examples/telemetry
package main

import (
	"fmt"
	"log"
	"math"

	"drrgossip"
	"drrgossip/internal/drrapps"
	"drrgossip/internal/sim"
	"drrgossip/internal/xrand"
)

func main() {
	const machines = 4096
	const seed = 2718

	// Latency model: log-normal-ish — a healthy bulk around 12ms with a
	// slow tail.
	rng := xrand.New(seed)
	latency := make([]float64, machines)
	for i := range latency {
		z := rng.Float64() + rng.Float64() + rng.Float64() - 1.5 // ~normal
		latency[i] = 12 * math.Exp(0.4*z)
	}

	cfg := drrgossip.Config{N: machines, Seed: seed, Loss: 0.02}
	fmt.Printf("telemetry over %d machines (δ=0.02)\n\n", machines)

	// Mean and variance in a single protocol run (three-component
	// push-sum: Σv, Σv², weight all ride one bounded message).
	mom, err := drrgossip.Moments(cfg, latency)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("latency mean     %6.2f ms\n", mom.Mean)
	fmt.Printf("latency stddev   %6.2f ms\n", mom.Std)
	fmt.Printf("consensus        %v, %d rounds, %.1f msgs/machine\n\n",
		mom.Consensus, mom.Rounds, float64(mom.Messages)/machines)

	// SLO check: how many machines exceed mean + 2σ right now?
	slo := mom.Mean + 2*mom.Std
	over, err := drrgossip.Rank(cfg, latency, slo)
	if err != nil {
		log.Fatal(err)
	}
	hot := machines - int(math.Round(over.Value))
	fmt.Printf("machines above mean+2σ (%.1f ms): %d (%.2f%%)\n\n",
		slo, hot, 100*float64(hot)/machines)

	// Elect a coordinator for follow-up work (e.g. collecting profiles
	// from the hot machines): DRR's random ranks double as election
	// ballots — O(log n) rounds, O(n loglog n) messages.
	eng := sim.NewEngine(machines, sim.Options{Seed: seed, Loss: 0.02})
	el, err := drrapps.ElectLeader(eng, drrapps.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("elected coordinator: machine %d (consensus %v)\n", el.Leader, el.Consensus)
	fmt.Printf("election cost: %d rounds, %.1f msgs/machine\n",
		el.Stats.Rounds, float64(el.Stats.Messages)/machines)

	// And a spanning tree rooted at the coordinator for subsequent
	// structured collection.
	eng2 := sim.NewEngine(machines, sim.Options{Seed: seed + 1})
	span, err := drrapps.BuildSpanningTree(eng2, drrapps.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("spanning tree: depth %d (log2 n = %.1f), rooted at machine %d\n",
		span.Depth, math.Log2(machines), span.Leader)
}
