// Telemetry: the observability layer end to end. A datacenter of
// machines reports per-node request latency; the operator asks for the
// p99 in-network and watches the session run: a live per-phase table
// streamed from round observers, structured events mirrored to three
// sinks at once (in-memory buffer, JSON Lines file, live counters), a
// per-phase cost bill on the answer, and finally the whole session
// exported as a Chrome trace-event timeline.
//
//	go run ./examples/telemetry
//	# then open telemetry_trace.json in chrome://tracing or ui.perfetto.dev
//
// See docs/OBSERVABILITY.md for the event schema and sink API.
package main

import (
	"fmt"
	"log"
	"math"
	"os"

	"drrgossip"
	"drrgossip/internal/telemetry"
	"drrgossip/internal/xrand"
)

func main() {
	const machines = 4096
	const seed = 2718

	// Latency model: log-normal-ish — a healthy bulk around 12ms with a
	// slow tail.
	rng := xrand.New(seed)
	latency := make([]float64, machines)
	for i := range latency {
		z := rng.Float64() + rng.Float64() + rng.Float64() - 1.5 // ~normal
		latency[i] = 12 * math.Exp(0.4*z)
	}

	// Three sinks tap the same event stream: a Buffer retains every
	// event for the Chrome trace, a JSONL writer streams them to disk,
	// and Metrics folds them into live counters (the same aggregator
	// the -http endpoints serve). RoundEvery 1 asks for full per-round
	// fidelity — file sinks want every round, not a sampled stride.
	var buf telemetry.Buffer
	f, err := os.Create("telemetry_events.jsonl")
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	jsonl := telemetry.NewJSONL(f)
	metrics := telemetry.NewMetrics()

	cfg := drrgossip.Config{
		N:    machines,
		Seed: seed,
		Loss: 0.02,
		Telemetry: &telemetry.Options{
			Sink:       telemetry.Multi(&buf, jsonl, metrics),
			RoundEvery: 1,
		},
	}
	net, err := drrgossip.New(cfg)
	if err != nil {
		log.Fatal(err)
	}

	// A round observer drives the live view: fold each round into a
	// per-run×phase accumulator and print a table line whenever a run
	// finishes a phase. Observers are read-only taps — installing one
	// leaves every result and counter bit-identical.
	type phaseRow struct {
		run      int
		phase    string
		rounds   int
		messages int64
		residual float64
	}
	var cur *phaseRow
	flush := func() {
		if cur == nil {
			return
		}
		res := "      —"
		if !math.IsNaN(cur.residual) {
			res = fmt.Sprintf("%7.1e", cur.residual)
		}
		fmt.Printf("  run %2d  %-10s %6d rounds %9d msgs  residual %s\n",
			cur.run, cur.phase, cur.rounds, cur.messages, res)
		cur = nil
	}
	net.Observe(drrgossip.ObserverFunc(func(ri drrgossip.RoundInfo) {
		if cur == nil || cur.run != ri.Run || cur.phase != ri.Phase {
			flush()
			cur = &phaseRow{run: ri.Run, phase: ri.Phase, residual: math.NaN()}
		}
		cur.rounds++
		cur.messages += ri.Delta.Messages
		if !math.IsNaN(ri.Residual) {
			cur.residual = ri.Residual
		}
	}))

	fmt.Printf("p99 latency over %d machines (δ=0.02) — live phase trace:\n\n", machines)
	ans, err := net.Run(drrgossip.QuantileOf(latency, 0.99, 0))
	if err != nil {
		log.Fatal(err)
	}
	flush()

	fmt.Printf("\np99 latency ≈ %.2f ms   (converged %v, %d machines alive)\n",
		ans.Value, ans.Converged, ans.Alive)

	// The answer carries its own per-phase bill: PhaseCosts partitions
	// Cost exactly (the rows sum to the totals), attributing rounds and
	// messages to drr / aggregate / gossip / broadcast.
	fmt.Printf("\nper-phase cost attribution (sums to the %d rounds / %d msgs billed):\n",
		ans.Cost.Rounds, ans.Cost.Messages)
	for _, pc := range ans.PhaseCosts {
		fmt.Printf("  %-10s %6d rounds %9d msgs %6.1f%% of traffic\n",
			pc.Phase, pc.Rounds, pc.Messages,
			100*float64(pc.Messages)/float64(ans.Cost.Messages))
	}

	// The Metrics sink kept live counters the whole time — the same
	// numbers an -http listener would serve on /metrics mid-run.
	snap := metrics.Snapshot()
	fmt.Printf("\nlive counters (telemetry.Metrics snapshot):\n")
	fmt.Printf("  runs %d started / %d finished, %d rounds, %d messages, %d events\n",
		snap["runs_started"], snap["runs_finished"],
		snap["rounds"], snap["messages"], snap["events"])

	// Export the buffered events as a Chrome trace-event timeline: run
	// spans on one track, phase spans on another, faults as instants.
	if err := jsonl.Close(); err != nil {
		log.Fatal(err)
	}
	tf, err := os.Create("telemetry_trace.json")
	if err != nil {
		log.Fatal(err)
	}
	err = telemetry.WriteChromeTrace(tf, buf.Events())
	if cerr := tf.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nwrote telemetry_events.jsonl (%d events) and telemetry_trace.json\n", len(buf.Events()))
	fmt.Printf("open the trace in chrome://tracing or https://ui.perfetto.dev\n")
}
