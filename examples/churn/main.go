// Churn: the dynamic-membership walkthrough. The paper's model crashes
// nodes only before the protocol starts; internal/faults extends the
// testbed with a full fault timeline — mid-run crashes and rejoins,
// Poisson churn, partitions with heal, loss bursts, flaky regions —
// every plan deterministic from the seed. This example runs Average,
// Sum and Max through a catalog of scenarios and prints what survives.
//
//	go run ./examples/churn
package main

import (
	"fmt"
	"log"

	"drrgossip"
	"drrgossip/internal/agg"
)

func main() {
	const n = 2048
	values := agg.GenUniform(n, 0, 1000, 5)
	exactAve := agg.Exact(agg.Average, values, 0)
	exactSum := agg.Exact(agg.Sum, values, 0)
	exactMax := agg.Exact(agg.Max, values, 0)

	scenarios := []struct{ spec, story string }{
		{"none", "healthy baseline"},
		{"crash:0.2@0.5", "datacenter loses 20% of nodes mid-run"},
		{"rack:0.1@0.4..0.8", "one rack down for 40% of the run, then back"},
		{"churn:0.3:60", "P2P churn: 0.3n joins/leaves, 60-round downtime"},
		{"part:2@0.3..0.7", "network splits in two, heals at 70%"},
		{"loss:0.3@0.3..0.7", "loss burst: δ(t) jumps by 0.3 mid-run"},
		{"flaky:0.2:0.5@0.2..0.8", "a fifth of the fleet on a flaky uplink"},
		{"crash:0.25@0.4;rejoin@0.8", "mass crash at 40%, everyone rejoins at 80%"},
	}

	fmt.Printf("fault scenarios on %d nodes (seed-deterministic; see README for the grammar)\n\n", n)
	fmt.Printf("%-28s %7s %8s  %11s  %11s  %11s\n",
		"plan", "alive", "crashes", "ave rel.err", "sum rel.err", "max rel.err")
	for _, sc := range scenarios {
		plan, err := drrgossip.ParseFaultPlan(sc.spec)
		if err != nil {
			log.Fatal(err)
		}
		cfg := drrgossip.Config{N: n, Seed: 77, Faults: plan}
		ave, err := drrgossip.Average(cfg, values)
		if err != nil {
			log.Fatalf("%s: %v", sc.spec, err)
		}
		sum, err := drrgossip.Sum(cfg, values)
		if err != nil {
			log.Fatalf("%s: %v", sc.spec, err)
		}
		max, err := drrgossip.Max(cfg, values)
		if err != nil {
			log.Fatalf("%s: %v", sc.spec, err)
		}
		fmt.Printf("%-28s %7d %8d  %11.2e  %11.2e  %11.2e   %s\n",
			sc.spec, ave.Alive, ave.FaultCrashes,
			agg.RelError(ave.Value, exactAve),
			agg.RelError(sum.Value, exactSum),
			agg.RelError(max.Value, exactMax),
			sc.story)
	}

	fmt.Println("\nEvery run terminates and reports a finite answer: DRR trees repair")
	fmt.Println("around dead nodes (orphans promote to roots), convergecast stops")
	fmt.Println("waiting for the dead, reliable push-sum shares are restored when an")
	fmt.Println("ack times out, and a dead distinguished root is re-elected among the")
	fmt.Println("survivors. Max is the most robust aggregate — any surviving copy of")
	fmt.Println("the maximum wins — while Sum pays the most for partitions, whose")
	fmt.Println("walls stop its mass from mixing.")
}
