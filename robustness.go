// Bounded degradation: the per-query watchdog behind Config.Deadline
// and Config.RoundBudget, the Quality block every Answer carries, and
// the epoch-restart retry loop behind Config.Retry. The contract (see
// docs/ROBUSTNESS.md): a query never hangs on a wedging fault plan —
// the watchdog aborts the run at stride granularity and the query
// returns a partial Answer whose Quality says what happened — and the
// session's own limits (deadline, budget) are degradation, not errors;
// only context cancellation surfaces as an error alongside the partial
// answer.

package drrgossip

import (
	"context"
	"errors"
	"math"
	"time"

	"drrgossip/internal/faults"
	"drrgossip/internal/sim"
)

// ErrDeadlineExceeded is the abort cause of a query run stopped by
// Config.Deadline. It is reported through Quality (Reason "deadline"),
// not returned as an error: the query still yields its partial Answer.
var ErrDeadlineExceeded = errors.New("drrgossip: query deadline exceeded")

// ErrRoundBudget is the abort cause of a run stopped by
// Config.RoundBudget; reported through Quality (Reason "round-budget").
var ErrRoundBudget = errors.New("drrgossip: round budget exhausted")

// abortStrideSync and abortStrideAsync are the watchdog polling
// strides: every k synchronous rounds / async events the engine
// consults the check. A synchronous round is O(alive) work while an
// async event is O(1), hence the asymmetry; both keep the no-watchdog
// hot path untouched (no check installed) and the watchdog overhead
// well under the cost of the work between polls.
const (
	abortStrideSync  = 16
	abortStrideAsync = 1024
)

// noResidual is the Quality.Residual value of execution models that
// define no convergence residual (the synchronous exact pipelines). A
// sentinel outside the residual's [0, ∞) range rather than NaN, so
// answers stay DeepEqual-comparable.
const noResidual = -1

// watchdog is the per-query abort check installed on the engines for
// the duration of one query attempt: round/event budget, context
// cancellation, wall-clock deadline — cheapest test first.
type watchdog struct {
	ctx      context.Context
	deadline time.Time
	budget   int
}

// newWatchdog builds the query's watchdog, or nil when nothing could
// ever trip it (uncancellable context, no deadline, no budget) — the
// common case, which stays zero-overhead: no check is installed at all.
func (nw *Network) newWatchdog(ctx context.Context) *watchdog {
	w := &watchdog{ctx: ctx, budget: nw.cfg.RoundBudget}
	if nw.cfg.Deadline > 0 {
		w.deadline = time.Now().Add(nw.cfg.Deadline)
	}
	if ctx.Done() == nil && w.deadline.IsZero() && w.budget <= 0 {
		return nil
	}
	return w
}

// check is the engine-facing watchdog hook, consulted every abort
// stride with the run's progress counter (rounds or events). A non-nil
// return aborts the run.
func (w *watchdog) check(progress int) error {
	if w.budget > 0 && progress > w.budget {
		return ErrRoundBudget
	}
	if err := w.ctx.Err(); err != nil {
		return err
	}
	if !w.deadline.IsZero() && !time.Now().Before(w.deadline) {
		return ErrDeadlineExceeded
	}
	return nil
}

// isAbort reports whether err originated from a watchdog abort (or a
// pre-run context check) rather than a protocol or configuration
// failure — only abort causes produce partial answers.
func isAbort(err error) bool {
	return errors.Is(err, ErrDeadlineExceeded) || errors.Is(err, ErrRoundBudget) ||
		errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

// terminalAbort reports whether the abort cause must surface as an
// error alongside the partial answer: context cancellation is the
// caller asking to stop, while the session's own Deadline and
// RoundBudget are degradation contracts absorbed into Quality.
func terminalAbort(err error) bool {
	return err != nil && !errors.Is(err, ErrDeadlineExceeded) && !errors.Is(err, ErrRoundBudget)
}

// abortReason maps an abort cause to its Quality.Reason label.
func abortReason(err error) string {
	switch {
	case err == nil:
		return ""
	case errors.Is(err, ErrDeadlineExceeded):
		return ReasonDeadline
	case errors.Is(err, ErrRoundBudget):
		return ReasonRoundBudget
	default:
		return ReasonCancelled
	}
}

// reasonErr is abortReason's inverse, for paths that retained only the
// label (a partial answer's Quality) but need the sentinel back.
func reasonErr(reason string) error {
	switch reason {
	case ReasonDeadline:
		return ErrDeadlineExceeded
	case ReasonRoundBudget:
		return ErrRoundBudget
	default:
		return context.Canceled
	}
}

// fillQuality stamps the answer's Quality block from its own fields and
// the abort cause (nil for complete runs). residual is the model's
// closing residual (noResidual for the synchronous pipelines).
func (nw *Network) fillQuality(ans *Answer, residual float64, cause error) {
	ans.Quality = Quality{
		Partial:       cause != nil,
		Reason:        abortReason(cause),
		AliveFraction: float64(ans.Alive) / float64(nw.cfg.N),
		Converged:     ans.Converged,
		Residual:      residual,
		SurvivorBound: float64(ans.FaultCrashes) / float64(nw.cfg.N),
	}
}

// partialResult salvages what an aborted synchronous run can still
// report: the engine's accounting and membership at the abort round. No
// consensus value exists mid-protocol, so Value is NaN.
func (nw *Network) partialResult(eng *sim.Engine, b *faults.Bound) *Result {
	st := eng.Stats()
	res := &Result{
		Value:    math.NaN(),
		Rounds:   st.Rounds,
		Messages: st.Messages,
		Drops:    st.Drops,
		Alive:    eng.NumAlive(),
	}
	if b != nil {
		res.FaultEvents, res.FaultCrashes, res.FaultRevives = b.Fired(), b.Crashed(), b.Revived()
	}
	return res
}

// abortedAnswer renders an aborted single-run query as a degraded
// Answer: the bill covers the work actually done, Converged is false,
// and Quality carries the abort reason. res may be nil (the abort hit
// before any protocol run — a pre-cancelled context or an aborted
// horizon pre-run), giving a zero-cost partial answer.
func (nw *Network) abortedAnswer(op Op, res *Result, cause error) (*Answer, error) {
	ans := &Answer{Op: op, Value: math.NaN()}
	if res != nil {
		ans.Value = res.Value
		ans.Cost = Cost{Runs: 1, Rounds: res.Rounds, Messages: res.Messages, Drops: res.Drops}
		ans.Alive = res.Alive
		ans.FaultEvents, ans.FaultCrashes, ans.FaultRevives = res.FaultEvents, res.FaultCrashes, res.FaultRevives
	}
	nw.fillQuality(ans, noResidual, cause)
	if terminalAbort(cause) {
		return ans, cause
	}
	return ans, nil
}

// finishAbort closes a composite query (Quantile, Histogram) whose
// current step was aborted: the answer keeps the cost and fault
// accounting accumulated so far, drops any half-derived value, and
// reports the abort through Quality. Non-abort errors pass through
// unchanged (no answer).
func (nw *Network) finishAbort(ans *Answer, err error) (*Answer, error) {
	if !isAbort(err) {
		return nil, err
	}
	ans.Converged = false
	ans.Value = math.NaN()
	nw.fillQuality(ans, noResidual, err)
	if terminalAbort(err) {
		return ans, err
	}
	return ans, nil
}

// retryable reports whether an answer qualifies for an epoch-restart
// re-run: anything non-converged, except deadline aborts (the budget is
// spent) and cancellations (the caller asked to stop).
func retryable(ans *Answer) bool {
	switch ans.Quality.Reason {
	case ReasonDeadline, ReasonCancelled:
		return false
	}
	return !ans.Converged
}

// defaultSeedStride is the RetryPolicy.SeedStride default: the odd
// 64-bit golden-ratio constant, so successive epochs land in
// well-separated regions of the seed space.
const defaultSeedStride = 0x9E3779B97F4A7C15

// runWithRetry executes one query, then — when a RetryPolicy is set and
// the answer is retryable — re-runs it on shadow epoch sessions until
// an attempt converges or the attempts are exhausted. The returned
// answer is the last attempt's, its Cost accumulated over every attempt
// (the query paid for all of them) and Quality.Retries counting the
// restarts.
func (nw *Network) runWithRetry(ctx context.Context, q Query) (*Answer, error) {
	ans, err := nw.runQuery(ctx, q)
	pol := nw.cfg.Retry
	if pol == nil || err != nil || ans == nil || !retryable(ans) {
		return ans, err
	}
	stride := pol.SeedStride
	if stride == 0 {
		stride = defaultSeedStride
	}
	best := ans
	cost := ans.Cost
	for attempt := 1; attempt <= pol.Attempts; attempt++ {
		shadow := nw.epochSession(uint64(attempt) * stride)
		next, err := shadow.runQuery(ctx, q)
		nw.protoRuns += shadow.protoRuns
		nw.horizonRuns += shadow.horizonRuns
		nw.planBinds += shadow.planBinds
		if err != nil {
			// Cancelled (or failed) mid-retry: surface the error with the
			// best completed attempt so far.
			return best, err
		}
		cost = cost.Add(next.Cost)
		next.Cost = cost
		next.Quality.Retries = attempt
		best = next
		if !retryable(next) {
			break
		}
	}
	return best, nil
}

// epochSession replicates the session for one retry epoch: the same
// (immutable) overlay, the config re-seeded by seedOffset, fresh fault
// bindings (the new seed draws new crash sets and loss decisions under
// the same symbolic plan), and no observers or telemetry — retries are
// follow-up work of the same query, and their round streams would
// interleave confusingly with the primary session's.
func (nw *Network) epochSession(seedOffset uint64) *Network {
	cfg := nw.cfg
	cfg.Seed += seedOffset
	cfg.Retry = nil
	return &Network{cfg: cfg, ov: nw.ov, bounds: make(map[Op]*faults.Bound)}
}
