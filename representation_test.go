package drrgossip

import (
	"fmt"
	"math"
	"testing"
)

// Answers must be bit-identical whether the overlay stores its graph
// implicitly/CSR (default) or as materialized jagged slices
// (LegacySliceAdjacency), at every worker count.
func TestFacadeBitIdenticalAcrossRepresentations(t *testing.T) {
	for _, topo := range []Topology{Chord, SmallWorld, Torus} {
		for _, workers := range []int{1, 4} {
			t.Run(fmt.Sprintf("%s/w%d", topo, workers), func(t *testing.T) {
				cfg := Config{N: 512, Seed: 41, Topology: topo, Workers: workers}
				legacy := cfg
				legacy.LegacySliceAdjacency = true
				values := uniformValues(cfg.N, 42)

				res, err := Average(cfg, values)
				if err != nil {
					t.Fatal(err)
				}
				lres, err := Average(legacy, values)
				if err != nil {
					t.Fatal(err)
				}
				if res.Value != lres.Value || res.Rounds != lres.Rounds ||
					res.Messages != lres.Messages || res.Drops != lres.Drops ||
					res.Trees != lres.Trees || res.Alive != lres.Alive ||
					res.Consensus != lres.Consensus {
					t.Fatalf("Average diverges across representations:\n%+v\n%+v", res, lres)
				}
				for i := range res.PerNode {
					a, b := res.PerNode[i], lres.PerNode[i]
					if a != b && !(math.IsNaN(a) && math.IsNaN(b)) {
						t.Fatalf("PerNode[%d] differs: %v vs %v", i, a, b)
					}
				}

				q, err := Quantile(cfg, values, 0.5, 1)
				if err != nil {
					t.Fatal(err)
				}
				lq, err := Quantile(legacy, values, 0.5, 1)
				if err != nil {
					t.Fatal(err)
				}
				if *q != *lq {
					t.Fatalf("Quantile diverges across representations:\n%+v\n%+v", q, lq)
				}
			})
		}
	}
}
