package drrgossip

import (
	"math"
	"testing"
)

// The differential harness of the HMS quantile driver: on every cell of
// topologies × fault plans × φ, the HMS answer must agree with the
// bisection golden reference within 2·Tol, and on healthy sessions it
// must equal the true order statistic exactly (HMS certifies exactness;
// bisection only brackets to Tol).
func TestQuantileDifferential(t *testing.T) {
	const n = 512
	values := uniformValues(n, 91)
	topologies := []Topology{Complete, Chord, SmallWorld}
	plans := []struct {
		name    string
		faults  string
		loss    float64
		tol     float64
		healthy bool
	}{
		{name: "static", tol: 1.0, healthy: true},
		{name: "loss", loss: 0.05, tol: 1.0, healthy: true},
		{name: "crash", faults: "crash:0.2@0.5", tol: 25.0},
	}
	for _, topo := range topologies {
		for _, pl := range plans {
			t.Run(topo.String()+"/"+pl.name, func(t *testing.T) {
				cfg := Config{N: n, Seed: 92, Topology: topo, Loss: pl.loss}
				if pl.faults != "" {
					plan, err := ParseFaultPlan(pl.faults)
					if err != nil {
						t.Fatal(err)
					}
					cfg.Faults = plan
				}
				for _, phi := range []float64{0.01, 0.25, 0.5, 0.99} {
					q := QuantileOf(values, phi, pl.tol)

					bnw, err := New(cfg)
					if err != nil {
						t.Fatal(err)
					}
					bis, err := bnw.Run(q)
					if err != nil {
						t.Fatalf("phi=%v bisect: %v", phi, err)
					}
					hcfg := cfg
					hcfg.QuantileMethod = QuantileHMS
					hnw, err := New(hcfg)
					if err != nil {
						t.Fatal(err)
					}
					hms, err := hnw.Run(q)
					if err != nil {
						t.Fatalf("phi=%v hms: %v", phi, err)
					}
					if d := math.Abs(hms.Value - bis.Value); d > 2*pl.tol {
						t.Errorf("phi=%v: hms %v vs bisect %v differ by %v > 2·tol",
							phi, hms.Value, bis.Value, d)
					}
					if pl.healthy {
						want, err := ExactOf(cfg, q)
						if err != nil {
							t.Fatal(err)
						}
						if hms.Value != want {
							t.Errorf("phi=%v: healthy hms %v != exact %v",
								phi, hms.Value, want)
						}
						if !hms.Converged {
							t.Errorf("phi=%v: healthy hms did not converge", phi)
						}
						if hms.Cost.Runs >= bis.Cost.Runs {
							t.Errorf("phi=%v: hms spent %d runs, bisection %d — no win",
								phi, hms.Cost.Runs, bis.Cost.Runs)
						}
					}
				}
			})
		}
	}
}

// One pinned HMS answer per topology: the full cost signature must stay
// bit-identical across refactors (same contract as the bisection
// parity goldens — any drift here is a semantic change to the driver,
// not noise).
func TestQuantileHMSGoldens(t *testing.T) {
	const n = 512
	values := uniformValues(n, 91)
	goldens := []struct {
		topo  Topology
		value float64
		runs  int
	}{
		{Complete, 519.1457993108681, 5},
		{Chord, 519.1457993108681, 2},
		{SmallWorld, 519.1457993108681, 5},
	}
	for _, g := range goldens {
		cfg := Config{N: n, Seed: 92, Topology: g.topo, QuantileMethod: QuantileHMS}
		nw, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		ans, err := nw.Run(QuantileOf(values, 0.5, 1.0))
		if err != nil {
			t.Fatal(err)
		}
		if ans.Value != g.value || ans.Cost.Runs != g.runs {
			t.Errorf("%s: got value=%v runs=%d, want value=%v runs=%d",
				g.topo, ans.Value, ans.Cost.Runs, g.value, g.runs)
		}
	}
}

// The HMS path inherits the facade's determinism contract: answers are
// bit-identical for any Config.Workers (delivery sharding is a speed
// knob, not a semantic one).
func TestQuantileHMSWorkersBitIdentical(t *testing.T) {
	const n = 1024
	values := uniformValues(n, 93)
	run := func(workers int) *Answer {
		cfg := Config{N: n, Seed: 94, Workers: workers, QuantileMethod: QuantileHMS}
		nw, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		ans, err := nw.Run(QuantileOf(values, 0.5, 1.0))
		if err != nil {
			t.Fatal(err)
		}
		return ans
	}
	base := run(1)
	for _, w := range []int{4, 8} {
		got := run(w)
		if got.Value != base.Value || got.Converged != base.Converged {
			t.Fatalf("Workers=%d: value %v/%v vs %v/%v",
				w, got.Value, got.Converged, base.Value, base.Converged)
		}
		if got.Cost != base.Cost {
			t.Fatalf("Workers=%d: cost drifted: %+v vs %+v", w, got.Cost, base.Cost)
		}
	}
}
