package drrgossip

import (
	"errors"
	"math"
	"testing"

	"drrgossip/internal/agg"
	"drrgossip/internal/faults"
	"drrgossip/internal/sim"
)

// The acceptance bar of the fault subsystem: under a crash-at-50%-of-
// rounds plan, every facade aggregate terminates on Complete and Chord
// and reports a finite relative error against the healthy-run truth.
func TestEveryAggregateTerminatesUnderMidRunCrash(t *testing.T) {
	n := 512
	values := uniformValues(n, 41)
	plan, err := ParseFaultPlan("crash:0.2@0.5")
	if err != nil {
		t.Fatal(err)
	}
	aggregates := []struct {
		name  string
		run   func(cfg Config) (*Result, error)
		exact func(cfg Config) float64
	}{
		{"Max", func(cfg Config) (*Result, error) { return Max(cfg, values) },
			func(cfg Config) float64 { return Exact(cfg, "max", values) }},
		{"Average", func(cfg Config) (*Result, error) { return Average(cfg, values) },
			func(cfg Config) float64 { return Exact(cfg, "average", values) }},
		{"Sum", func(cfg Config) (*Result, error) { return Sum(cfg, values) },
			func(cfg Config) float64 { return Exact(cfg, "sum", values) }},
		{"Count", func(cfg Config) (*Result, error) { return Count(cfg, values) },
			func(cfg Config) float64 { return float64(n) }},
		{"Rank", func(cfg Config) (*Result, error) { return Rank(cfg, values, 500) },
			func(cfg Config) float64 { return agg.Exact(agg.Rank, values, 500) }},
	}
	for _, topo := range []Topology{Complete, Chord} {
		for _, a := range aggregates {
			t.Run(topo.String()+"/"+a.name, func(t *testing.T) {
				cfg := Config{N: n, Seed: 43, Topology: topo, Faults: plan}
				res, err := a.run(cfg)
				if err != nil {
					t.Fatalf("did not terminate cleanly: %v", err)
				}
				if math.IsNaN(res.Value) || math.IsInf(res.Value, 0) {
					t.Fatalf("non-finite value %v", res.Value)
				}
				relErr := agg.RelError(res.Value, a.exact(cfg))
				if math.IsNaN(relErr) || math.IsInf(relErr, 0) {
					t.Fatalf("non-finite relative error %v (value %v)", relErr, res.Value)
				}
				if res.FaultEvents == 0 || res.FaultCrashes == 0 {
					t.Fatalf("plan did not fire: %+v", res)
				}
				if res.Alive >= n {
					t.Fatalf("crash plan left all %d nodes alive", res.Alive)
				}
				t.Logf("value %.4g (rel err %.3g), alive %d, %d fault events",
					res.Value, relErr, res.Alive, res.FaultEvents)
			})
		}
	}
}

// A nil and an empty fault plan must reproduce the static engine
// bit-for-bit (the Chord parity goldens in facade_test.go pin the same
// property for nil against the pre-refactor numbers).
func TestEmptyFaultPlanIsBitIdentical(t *testing.T) {
	n := 512
	values := uniformValues(n, 45)
	empty, err := ParseFaultPlan("none")
	if err != nil {
		t.Fatal(err)
	}
	for _, topo := range []Topology{Complete, Chord} {
		base := Config{N: n, Seed: 47, Topology: topo, Loss: 0.05}
		with := base
		with.Faults = empty
		a, err := Average(base, values)
		if err != nil {
			t.Fatal(err)
		}
		b, err := Average(with, values)
		if err != nil {
			t.Fatal(err)
		}
		if a.Value != b.Value || a.Rounds != b.Rounds || a.Messages != b.Messages || a.Drops != b.Drops {
			t.Fatalf("%s: empty plan drifted: (%v,%d,%d,%d) vs (%v,%d,%d,%d)", topo,
				a.Value, a.Rounds, a.Messages, a.Drops, b.Value, b.Rounds, b.Messages, b.Drops)
		}
	}
}

// The paper's static CrashFrac model must be exactly expressible as a
// round-0 crash plan: identical values and message counts, pinned by
// goldens so neither path can drift. The golden numbers were captured
// from Config{N: 2048, Seed: 15, Loss: 0.1, CrashFraction: 0.2} — the
// same configuration as TestFailuresFacade.
func TestCrashFracExpressibleAsPlan(t *testing.T) {
	cfg := Config{N: 2048, Seed: 15, Loss: 0.1, CrashFraction: 0.2}
	values := uniformValues(2048, 16)

	viaCrashFrac, err := Max(cfg, values)
	if err != nil {
		t.Fatal(err)
	}
	planCfg := Config{N: 2048, Seed: 15, Loss: 0.1,
		Faults: faults.FromCrashFrac(2048, sim.Options{Seed: 15, CrashFrac: 0.2})}
	viaPlan, err := Max(planCfg, values)
	if err != nil {
		t.Fatal(err)
	}
	if viaPlan.Value != viaCrashFrac.Value || viaPlan.Rounds != viaCrashFrac.Rounds ||
		viaPlan.Messages != viaCrashFrac.Messages || viaPlan.Drops != viaCrashFrac.Drops ||
		viaPlan.Trees != viaCrashFrac.Trees || viaPlan.Alive != viaCrashFrac.Alive {
		t.Fatalf("plan path diverges from CrashFrac path:\n plan      %+v\n crashfrac %+v", viaPlan, viaCrashFrac)
	}
	// Golden pin (see comment above): any drift in either path fails here.
	const (
		goldenRounds   = 178
		goldenMessages = 62894
		goldenAlive    = 1651
	)
	if viaCrashFrac.Rounds != goldenRounds || viaCrashFrac.Messages != goldenMessages ||
		viaCrashFrac.Alive != goldenAlive {
		t.Fatalf("golden drift: rounds=%d messages=%d alive=%d, want (%d, %d, %d)",
			viaCrashFrac.Rounds, viaCrashFrac.Messages, viaCrashFrac.Alive,
			goldenRounds, goldenMessages, goldenAlive)
	}
}

// Fault-plan validation surfaces as ErrBadConfig through the facade.
func TestFaultPlanValidation(t *testing.T) {
	values := uniformValues(16, 1)
	bad := &faults.Plan{Events: []faults.Event{{Kind: faults.Crash, Nodes: []int{99}}}}
	if _, err := Max(Config{N: 16, Seed: 1, Faults: bad}, values); !errors.Is(err, ErrBadConfig) {
		t.Fatalf("out-of-range plan: %v, want ErrBadConfig", err)
	}
	if _, err := ParseFaultPlan("meteor:0.5"); !errors.Is(err, ErrBadConfig) {
		t.Fatal("ParseFaultPlan should wrap ErrBadConfig")
	}
	plan, err := ParseFaultPlan("crash:0.25@0.5;rejoin@0.9")
	if err != nil {
		t.Fatal(err)
	}
	res, err := Average(Config{N: 256, Seed: 3, Faults: plan}, uniformValues(256, 4))
	if err != nil {
		t.Fatal(err)
	}
	if res.FaultRevives == 0 {
		t.Fatalf("rejoin never fired: %+v", res)
	}
}

// Fault runs must be exactly reproducible from the seed.
func TestFaultRunDeterminism(t *testing.T) {
	plan, err := ParseFaultPlan("churn:0.3:25;loss:0.2@0.3..0.7")
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{N: 256, Seed: 51, Faults: plan}
	values := uniformValues(256, 52)
	a, err := Sum(cfg, values)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Sum(cfg, values)
	if err != nil {
		t.Fatal(err)
	}
	if a.Value != b.Value || a.Messages != b.Messages || a.Rounds != b.Rounds ||
		a.FaultEvents != b.FaultEvents || a.Alive != b.Alive {
		t.Fatalf("faulty runs differ: %+v vs %+v", a, b)
	}
}

// Partition + heal: the run must terminate and stay finite even when a
// partition is active during the gossip phase.
func TestPartitionedRunTerminates(t *testing.T) {
	plan, err := ParseFaultPlan("part:2@0.3..0.7")
	if err != nil {
		t.Fatal(err)
	}
	values := uniformValues(512, 54)
	res, err := Average(Config{N: 512, Seed: 53, Faults: plan}, values)
	if err != nil {
		t.Fatal(err)
	}
	if math.IsNaN(res.Value) || math.IsInf(res.Value, 0) {
		t.Fatalf("non-finite value %v", res.Value)
	}
	if res.Drops == 0 {
		t.Fatal("partition blocked nothing")
	}
}
