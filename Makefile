GO ?= go

.PHONY: all build test test-short race vet fmt fmt-check doc-check bench bench-smoke bench-perf bench-guard bench-scale bench-scale-full bench-async bench-quantile bench-quantile-full chaos chaos-full ci

all: ci

build:
	$(GO) build ./...

test:
	$(GO) test ./...

test-short:
	$(GO) test -short ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

fmt:
	gofmt -w .

fmt-check:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

# Documentation gate: every exported identifier in the root package,
# internal/overlay and the async subsystem must carry a doc comment
# (see cmd/godoclint).
doc-check:
	$(GO) run ./cmd/godoclint . ./internal/overlay ./internal/async ./internal/pairwise

bench:
	$(GO) test -bench . -benchtime 1x -run '^$$' ./...

# Session-amortization smoke benchmark: small n, machine-checked
# verdicts, writes BENCH_QB1.json for trajectory tracking.
bench-smoke:
	$(GO) run ./cmd/benchtab -experiment QB1 -quick -json

# Engine hot-path benchmarks (BenchmarkPerf*): runs them with -benchmem
# and writes BENCH_PERF.json (ns/op, allocs/op, msgs/node) so the perf
# trajectory has a machine-readable baseline. -count 3 lets perfjson
# keep the per-metric minimum across repetitions — contention noise on
# shared runners is one-sided, so min-of-runs stabilizes the ns/op
# ratios that the telemetry overhead budget below is checked against.
bench-perf:
	$(GO) test -run '^$$' -bench '^BenchmarkPerf' -benchmem -benchtime 30x -count 3 . | $(GO) run ./cmd/perfjson -out BENCH_PERF.json

# Regression guard: fails when allocs/op on the pinned engine benchmarks
# regresses >20% against the checked-in BENCH_PERF_BASELINE.json, or
# when the live-telemetry session exceeds its wall-clock overhead budget
# over the telemetry-off session. The overhead comes from the paired
# benchmark (off and ring sessions interleaved in one loop), the one
# wall-clock comparison that survives both machine changes and CI
# runner load drift.
bench-guard: bench-perf
	$(GO) run ./cmd/perfjson -check BENCH_PERF.json -baseline BENCH_PERF_BASELINE.json \
		-overhead "PerfTelemetry/paired:1.05"

# Scaling study (SC1): the CI smoke tier sweeps the ladder up to 10^5
# (plus the chord 10^6 memory leg with its peak-RSS budget verdict) and
# writes BENCH_SC1.json with machine-checked shape verdicts; the full
# tier climbs to 10^7 on Complete and Chord (an hour-plus,
# local/harness use).
bench-scale:
	$(GO) run ./cmd/benchtab -experiment SC1 -quick -json

bench-scale-full:
	$(GO) run ./cmd/benchtab -experiment SC1 -json

# Async baseline study (AS1): DRR vs the asynchronous pairwise-averaging
# family at n=10^4 with machine-checked verdicts; writes BENCH_AS1.json.
bench-async:
	$(GO) run ./cmd/benchtab -experiment AS1 -json

# Quantile driver race (QH1): HMS sampling vs the bisection golden
# reference up the size ladder, with agreement/shape/ratio/bit-identity
# verdicts; writes BENCH_QH1.json. The quick tier stops at 10^5; the
# full tier's headline verdict is >=5x fewer rounds at 10^6 on Complete
# (minutes, local/harness use).
bench-quantile:
	$(GO) run ./cmd/benchtab -experiment QH1 -quick -json

bench-quantile-full:
	$(GO) run ./cmd/benchtab -experiment QH1 -json

# Chaos smoke: replay both pinned corpora (seed corpus + regression
# corpus) and a CI-sized batch of generated fault-plan cases through
# the invariant battery; failures auto-shrink to one-line reproducers
# (see docs/ROBUSTNESS.md). chaos-full is the acceptance campaign the
# chaosfuzz defaults encode (regressions + 200 generated cases).
chaos:
	$(GO) run ./cmd/chaosfuzz -cases 40 \
		-corpus internal/chaos/testdata/seed_corpus.txt,internal/chaos/testdata/regressions.txt

chaos-full:
	$(GO) run ./cmd/chaosfuzz -cases 200 \
		-corpus internal/chaos/testdata/seed_corpus.txt,internal/chaos/testdata/regressions.txt

ci: build vet fmt-check doc-check test
