GO ?= go

.PHONY: all build test test-short race vet fmt fmt-check bench ci

all: ci

build:
	$(GO) build ./...

test:
	$(GO) test ./...

test-short:
	$(GO) test -short ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

fmt:
	gofmt -w .

fmt-check:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

bench:
	$(GO) test -bench . -benchtime 1x -run '^$$' ./...

ci: build vet fmt-check test
