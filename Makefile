GO ?= go

.PHONY: all build test test-short race vet fmt fmt-check bench bench-smoke ci

all: ci

build:
	$(GO) build ./...

test:
	$(GO) test ./...

test-short:
	$(GO) test -short ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

fmt:
	gofmt -w .

fmt-check:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

bench:
	$(GO) test -bench . -benchtime 1x -run '^$$' ./...

# Session-amortization smoke benchmark: small n, machine-checked
# verdicts, writes BENCH_QB1.json for trajectory tracking.
bench-smoke:
	$(GO) run ./cmd/benchtab -experiment QB1 -quick -json

ci: build vet fmt-check test
