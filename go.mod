module drrgossip

go 1.21
