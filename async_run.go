// Async-mode execution: the session facade's driver for the classical
// asynchronous pairwise-averaging family (internal/async engine,
// internal/pairwise protocol). The structure mirrors the synchronous
// path — execAsyncOnce is execOnce, bindAsync is bind — so telemetry,
// observers and fault plans behave identically across the two execution
// models; only the engine and the protocol underneath differ.

package drrgossip

import (
	"context"
	"fmt"
	"math"

	"drrgossip/internal/async"
	"drrgossip/internal/faults"
	"drrgossip/internal/graph"
	"drrgossip/internal/pairwise"
	"drrgossip/internal/sim"
)

// runAsync answers a query in Async mode. The pairwise family computes
// averages, so only OpAverage is routable; everything else reports a
// loud error rather than silently running the wrong protocol.
func (nw *Network) runAsync(ctx context.Context, q Query) (*Answer, error) {
	if q.Op != OpAverage {
		return nil, fmt.Errorf("%w: Mode Async currently computes AverageOf only (pairwise averaging); %s needs Mode Sync", ErrBadConfig, q.Op)
	}
	if err := nw.cfg.checkValues(q.Values); err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nw.abortedAnswer(OpAverage, nil, err)
	}
	if nw.cfg.Faults.Empty() {
		return nw.execAsyncOnce(nil, q.Values)
	}
	b, err := nw.bindAsync(ctx, q.Values)
	if err != nil {
		if isAbort(err) {
			return nw.abortedAnswer(OpAverage, nil, err)
		}
		return nil, err
	}
	return nw.execAsyncOnce(b, q.Values)
}

// bindAsync returns the session's Async-mode fault binding, resolving it
// on first use. Asynchronous time has no rounds, so plans with
// horizon-fraction timings bind against the fault-tick clock instead: a
// healthy pre-run measures the run's wall-clock length, and the horizon
// is that length quantized at async.TicksPerUnit ticks per time unit.
// Unlike the synchronous pipelines — whose control flow is
// value-independent — an async run's length does depend on the values
// (convergence is a property of the data), so the horizon is measured on
// the first average query's values and reused for the rest of the
// session, consistent with the session's bind-once amortization.
func (nw *Network) bindAsync(ctx context.Context, values []float64) (*faults.Bound, error) {
	if b, ok := nw.bounds[OpAverage]; ok {
		return b, nil
	}
	horizon := 0
	if nw.cfg.Faults.NeedsHorizon() {
		healthy, err := nw.execAsyncOnce(nil, values)
		if err != nil {
			return nil, fmt.Errorf("drrgossip: horizon measurement run: %w", err)
		}
		if healthy.Quality.Partial {
			// A deadline/budget abort mid-pre-run leaves no trustworthy
			// horizon; fail the binding rather than schedule events against
			// a truncated clock.
			return nil, fmt.Errorf("drrgossip: horizon measurement run aborted: %w", reasonErr(healthy.Quality.Reason))
		}
		nw.horizonRuns++
		horizon = int(math.Ceil(healthy.Cost.Clock * async.TicksPerUnit))
		if err := ctx.Err(); err != nil {
			return nil, err
		}
	}
	b, err := nw.cfg.Faults.Bind(nw.cfg.N, nw.cfg.Seed, horizon)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadConfig, err)
	}
	nw.planBinds++
	nw.bounds[OpAverage] = b
	return b, nil
}

// execAsyncOnce performs one pairwise-averaging run on a fresh async
// engine, attaching the bound fault schedule (if any), the session's
// observers and the telemetry emitter — the Async-mode counterpart of
// execOnce. Engines are rebuilt per run (they are a heap plus two stream
// arrays; there is no delivery machinery worth pooling), which keeps
// every run an independent pure function of (Config, values).
func (nw *Network) execAsyncOnce(b *faults.Bound, values []float64) (*Answer, error) {
	nw.protoRuns++
	runIdx := nw.protoRuns
	eng := async.NewEngine(nw.cfg.N, nw.cfg.asyncOptions())
	em := nw.em
	if em.Enabled() {
		em.RunStart(runIdx, OpAverage.String(), eng)
		eng.SetPhaseObserver(func(string) { em.Phase(eng) })
		eng.SetMembershipObserver(func(node int, alive bool) { em.Fault(eng, node, alive) })
	}
	wantRounds := em.WantsRounds()
	if len(nw.observers) > 0 || wantRounds {
		nw.lastRound = sim.Counters{}
		eng.SetEventObserver(func(events int) {
			if wantRounds {
				em.Round(eng)
			}
			if len(nw.observers) > 0 {
				nw.notify(runIdx, events, eng, b)
			}
		})
	}
	if nw.wd != nil {
		eng.SetAbortCheck(nw.wd.check, abortStrideAsync)
	}
	if b != nil {
		b.Attach(eng)
	}
	sel, err := pairwise.NewSelector(nw.cfg.AsyncPeer)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadConfig, err)
	}
	var g *graph.Graph
	if nw.ov != nil {
		g = nw.ov.Graph()
	}
	res, err := pairwise.Ave(eng, g, values, sel, pairwise.Options{Eps: nw.cfg.AsyncEps})
	if err != nil {
		return nil, err
	}
	em.RunEnd(eng)
	ans := &Answer{
		Op:        OpAverage,
		Value:     res.Value,
		Consensus: res.Spread == 0,
		Converged: res.Converged,
		Cost: Cost{
			Runs:     1,
			Rounds:   res.Events,
			Messages: res.Stats.Messages,
			Drops:    res.Stats.Drops,
			Clock:    res.Clock,
		},
		Exchanges: res.Exchanges,
		Alive:     eng.NumAlive(),
	}
	if b != nil {
		ans.FaultEvents = b.Fired()
		ans.FaultCrashes = b.Crashed()
		ans.FaultRevives = b.Revived()
	}
	ans.PerNode, ans.SampleIDs = nw.materializePerNode(res.PerNode)
	// A watchdog abort breaks the event loop gracefully; pairwise.Ave has
	// already closed the books on the surviving estimates, so the answer
	// above is the genuine partial state — just mark it as such.
	cause := eng.Aborted()
	if cause != nil {
		ans.Converged = false
	}
	nw.fillQuality(ans, res.Spread, cause)
	if terminalAbort(cause) {
		return ans, cause
	}
	return ans, nil
}
