// Benchmarks, one per paper artifact (see DESIGN.md §3): T1 is Table 1,
// F2-F12 are the measured theorems, A1-A3 the ablations. Each benchmark
// runs a representative configuration of the corresponding experiment and
// reports rounds and messages-per-node via b.ReportMetric, so
// `go test -bench=. -benchmem` regenerates the paper's evaluation
// headline numbers. The full sweeps with shape verdicts live in
// cmd/benchtab (go run ./cmd/benchtab -experiment all).
package drrgossip

import (
	"testing"
	"time"

	"drrgossip/internal/agg"
	"drrgossip/internal/chord"
	"drrgossip/internal/convergecast"
	"drrgossip/internal/drr"
	"drrgossip/internal/drrapps"
	core "drrgossip/internal/drrgossip"
	"drrgossip/internal/gossip"
	"drrgossip/internal/graph"
	"drrgossip/internal/karp"
	"drrgossip/internal/kashyap"
	"drrgossip/internal/kempe"
	"drrgossip/internal/localdrr"
	"drrgossip/internal/oblivious"
	"drrgossip/internal/pietro"
	"drrgossip/internal/sim"
	"drrgossip/internal/telemetry"
)

const benchN = 4096

func benchValues(n int) []float64 { return agg.GenUniform(n, 0, 1000, 42) }

func report(b *testing.B, rounds int, messages int64, n int) {
	b.Helper()
	b.ReportMetric(float64(rounds), "rounds")
	b.ReportMetric(float64(messages)/float64(n), "msgs/node")
}

// --- T1: Table 1 — the three algorithms computing Ave ------------------

func BenchmarkT1_DRRGossipAve(b *testing.B) {
	values := benchValues(benchN)
	var r *core.Result
	for i := 0; i < b.N; i++ {
		var err error
		r, err = core.Ave(sim.NewEngine(benchN, sim.Options{Seed: uint64(i)}), values, core.Options{})
		if err != nil {
			b.Fatal(err)
		}
	}
	report(b, r.Stats.Rounds, r.Stats.Messages, benchN)
}

func BenchmarkT1_KashyapAve(b *testing.B) {
	values := benchValues(benchN)
	var r *kashyap.Result
	for i := 0; i < b.N; i++ {
		var err error
		r, err = kashyap.Ave(sim.NewEngine(benchN, sim.Options{Seed: uint64(i)}), values, kashyap.Options{})
		if err != nil {
			b.Fatal(err)
		}
	}
	report(b, r.Stats.Rounds, r.Stats.Messages, benchN)
}

func BenchmarkT1_KempePushSum(b *testing.B) {
	values := benchValues(benchN)
	var r *kempe.Result
	for i := 0; i < b.N; i++ {
		var err error
		r, err = kempe.PushSum(sim.NewEngine(benchN, sim.Options{Seed: uint64(i)}), values, kempe.Options{})
		if err != nil {
			b.Fatal(err)
		}
	}
	report(b, r.Stats.Rounds, r.Stats.Messages, benchN)
}

// --- F2/F3/F4: Phase I ---------------------------------------------------

func BenchmarkF2_TreeCount(b *testing.B) {
	var trees int
	var stats sim.Counters
	for i := 0; i < b.N; i++ {
		res, err := drr.Run(sim.NewEngine(benchN, sim.Options{Seed: uint64(i)}), drr.Options{})
		if err != nil {
			b.Fatal(err)
		}
		trees = res.Forest.NumTrees()
		stats = res.Stats
	}
	b.ReportMetric(float64(trees), "trees")
	report(b, stats.Rounds, stats.Messages, benchN)
}

func BenchmarkF3_TreeSize(b *testing.B) {
	var maxSize int
	for i := 0; i < b.N; i++ {
		res, err := drr.Run(sim.NewEngine(benchN, sim.Options{Seed: uint64(i)}), drr.Options{})
		if err != nil {
			b.Fatal(err)
		}
		maxSize = res.Forest.MaxTreeSize()
	}
	b.ReportMetric(float64(maxSize), "max-tree-size")
}

func BenchmarkF4_DRRMessages(b *testing.B) {
	var probes float64
	var stats sim.Counters
	for i := 0; i < b.N; i++ {
		res, err := drr.Run(sim.NewEngine(benchN, sim.Options{Seed: uint64(i)}), drr.Options{})
		if err != nil {
			b.Fatal(err)
		}
		probes = float64(res.TotalProbes()) / float64(benchN)
		stats = res.Stats
	}
	b.ReportMetric(probes, "probes/node")
	report(b, stats.Rounds, stats.Messages, benchN)
}

// --- F5/F6/F7: Phase III -------------------------------------------------

func benchPhase12(b *testing.B, eng *sim.Engine, values []float64) (rootTo []int, covmax map[int]float64, covsum map[int]convergecast.SumCount, f interface {
	LargestRoot() int
	NumTrees() int
}, forestRes *drr.Result) {
	b.Helper()
	dres, err := drr.Run(eng, drr.Options{})
	if err != nil {
		b.Fatal(err)
	}
	covmax, _, err = convergecast.Max(eng, dres.Forest, values, convergecast.Options{})
	if err != nil {
		b.Fatal(err)
	}
	covsum, _, err = convergecast.Sum(eng, dres.Forest, values, convergecast.Options{})
	if err != nil {
		b.Fatal(err)
	}
	rootTo, _, err = convergecast.BroadcastRootAddr(eng, dres.Forest, convergecast.Options{})
	if err != nil {
		b.Fatal(err)
	}
	return rootTo, covmax, covsum, dres.Forest, dres
}

func BenchmarkF5_F6_GossipMax(b *testing.B) {
	values := benchValues(benchN)
	var frac float64
	var stats sim.Counters
	for i := 0; i < b.N; i++ {
		eng := sim.NewEngine(benchN, sim.Options{Seed: uint64(i)})
		rootTo, covmax, _, _, dres := benchPhase12(b, eng, values)
		res, err := gossip.Max(eng, dres.Forest, rootTo, covmax, gossip.Options{})
		if err != nil {
			b.Fatal(err)
		}
		want := agg.Exact(agg.Max, values, 0)
		have := 0
		for _, v := range res.AfterGossip {
			if v == want {
				have++
			}
		}
		frac = float64(have) / float64(dres.Forest.NumTrees())
		stats = res.Stats
	}
	b.ReportMetric(frac, "frac-after-gossip")
	report(b, stats.Rounds, stats.Messages, benchN)
}

func BenchmarkF7_GossipAve(b *testing.B) {
	values := benchValues(benchN)
	var relErr float64
	for i := 0; i < b.N; i++ {
		eng := sim.NewEngine(benchN, sim.Options{Seed: uint64(i)})
		rootTo, _, covsum, _, dres := benchPhase12(b, eng, values)
		z := dres.Forest.LargestRoot()
		res, err := gossip.Ave(eng, dres.Forest, rootTo, covsum, gossip.AveOptions{TrackRoot: -1})
		if err != nil {
			b.Fatal(err)
		}
		relErr = agg.RelError(res.Estimates[z], agg.Exact(agg.Average, values, 0))
	}
	b.ReportMetric(relErr, "rel-err")
}

// --- F8: end-to-end ------------------------------------------------------

func BenchmarkF8_EndToEndMax(b *testing.B) {
	values := benchValues(benchN)
	var r *core.Result
	for i := 0; i < b.N; i++ {
		var err error
		r, err = core.Max(sim.NewEngine(benchN, sim.Options{Seed: uint64(i), Loss: 0.05}), values, core.Options{})
		if err != nil {
			b.Fatal(err)
		}
	}
	report(b, r.Stats.Rounds, r.Stats.Messages, benchN)
}

// --- F9/F10: Local-DRR ---------------------------------------------------

func BenchmarkF9_LocalDRRHeight(b *testing.B) {
	g := graph.MustRandomRegular(benchN, 8, 7)
	var height int
	for i := 0; i < b.N; i++ {
		res, err := localdrr.Run(sim.NewEngine(benchN, sim.Options{Seed: uint64(i)}), g, localdrr.Options{})
		if err != nil {
			b.Fatal(err)
		}
		height = res.Forest.MaxHeight()
	}
	b.ReportMetric(float64(height), "max-height")
}

func BenchmarkF10_LocalDRRTrees(b *testing.B) {
	g := graph.Torus(64, 64)
	var trees int
	for i := 0; i < b.N; i++ {
		res, err := localdrr.Run(sim.NewEngine(g.N(), sim.Options{Seed: uint64(i)}), g, localdrr.Options{})
		if err != nil {
			b.Fatal(err)
		}
		trees = res.Forest.NumTrees()
	}
	b.ReportMetric(float64(trees), "trees")
	b.ReportMetric(g.HarmonicDegreeSum(), "harmonic-sum")
}

// --- F11: Chord ----------------------------------------------------------

func BenchmarkF11_DRRGossipOnChord(b *testing.B) {
	n := 1024
	ring := chord.MustNew(n, chord.Options{Bits: 40})
	values := benchValues(n)
	var r *core.Result
	for i := 0; i < b.N; i++ {
		var err error
		r, err = core.MaxOnChord(sim.NewEngine(n, sim.Options{Seed: uint64(i)}), ring, values, core.SparseOptions{})
		if err != nil {
			b.Fatal(err)
		}
	}
	report(b, r.Stats.Rounds, r.Stats.Messages, n)
}

func BenchmarkF11_UniformGossipOnChord(b *testing.B) {
	n := 1024
	ring := chord.MustNew(n, chord.Options{Bits: 40})
	values := benchValues(n)
	var r *kempe.Result
	for i := 0; i < b.N; i++ {
		var err error
		r, err = kempe.PushMaxOnChord(sim.NewEngine(n, sim.Options{Seed: uint64(i)}), ring, values, kempe.Options{})
		if err != nil {
			b.Fatal(err)
		}
	}
	report(b, r.Stats.Rounds, r.Stats.Messages, n)
}

// --- F12: lower bound ----------------------------------------------------

func BenchmarkF12_ObliviousKnowledge(b *testing.B) {
	var r *oblivious.Result
	for i := 0; i < b.N; i++ {
		var err error
		r, err = oblivious.Run(benchN, oblivious.Options{Protocol: oblivious.PushPull, Seed: uint64(i)})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(r.MessagesHalf)/float64(benchN), "msgs/node-to-half")
	b.ReportMetric(float64(r.RoundsAll), "rounds-to-all")
}

func BenchmarkF12_KarpRumor(b *testing.B) {
	var r *karp.Result
	for i := 0; i < b.N; i++ {
		var err error
		r, err = karp.Spread(sim.NewEngine(benchN, sim.Options{Seed: uint64(i)}), 0, karp.Options{})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(r.Transmissions)/float64(benchN), "transmissions/node")
	b.ReportMetric(float64(r.RoundsToAllInformed), "rounds")
}

// --- A1/A2/A3: ablations -------------------------------------------------

func BenchmarkA1_ProbeBudget(b *testing.B) {
	for _, tc := range []struct {
		name   string
		budget int
	}{
		{"half", drr.DefaultProbeBudget(benchN) / 2},
		{"paper", drr.DefaultProbeBudget(benchN)},
		{"double", 2 * drr.DefaultProbeBudget(benchN)},
	} {
		b.Run(tc.name, func(b *testing.B) {
			var trees int
			var stats sim.Counters
			for i := 0; i < b.N; i++ {
				res, err := drr.Run(sim.NewEngine(benchN, sim.Options{Seed: uint64(i)}),
					drr.Options{ProbeBudget: tc.budget})
				if err != nil {
					b.Fatal(err)
				}
				trees = res.Forest.NumTrees()
				stats = res.Stats
			}
			b.ReportMetric(float64(trees), "trees")
			report(b, stats.Rounds, stats.Messages, benchN)
		})
	}
}

func BenchmarkA2_LossSweep(b *testing.B) {
	values := benchValues(benchN)
	for _, tc := range []struct {
		name string
		loss float64
	}{
		{"d0", 0}, {"d06", 0.06}, {"d125", 0.125},
	} {
		b.Run(tc.name, func(b *testing.B) {
			var r *core.Result
			for i := 0; i < b.N; i++ {
				var err error
				r, err = core.Max(sim.NewEngine(benchN, sim.Options{Seed: uint64(i), Loss: tc.loss}), values, core.Options{})
				if err != nil {
					b.Fatal(err)
				}
			}
			report(b, r.Stats.Rounds, r.Stats.Messages, benchN)
		})
	}
}

func BenchmarkA3_ClusterheadHeuristic(b *testing.B) {
	values := benchValues(benchN)
	var r *pietro.Result
	for i := 0; i < b.N; i++ {
		var err error
		r, err = pietro.Max(sim.NewEngine(benchN, sim.Options{Seed: uint64(i)}), values, pietro.Options{})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(r.BootstrapStats.Messages)/float64(benchN), "bootstrap-msgs/node")
	report(b, r.Stats.Rounds, r.Stats.Messages, benchN)
}

// --- perf: pinned engine hot-path benchmarks -----------------------------
//
// The BenchmarkPerf* family is the repo's performance baseline: `make
// bench-perf` runs it with -benchmem and emits BENCH_PERF.json (ns/op,
// allocs/op, msgs/node), and `make bench-guard` fails the build when
// allocs/op regresses against the pinned BENCH_PERF_BASELINE.json. Each
// iteration performs a fixed amount of protocol work so allocs/op is
// comparable across machines.

// BenchmarkPerfEngineSendTick measures the raw delivery loop: one round
// of n direct sends plus the Tick that files them. Steady state is
// allocation-free (ring slots and inboxes recycle their backing arrays).
func BenchmarkPerfEngineSendTick(b *testing.B) {
	const n = 1024
	e := sim.NewEngine(n, sim.Options{Seed: 1})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for s := 0; s < n; s++ {
			e.Send(s, (s+1)%n, sim.Payload{X: int64(s)})
		}
		e.Tick()
	}
	b.ReportMetric(float64(e.Stats().Messages)/float64(b.N)/n, "msgs/node")
}

// BenchmarkPerfEngineSendLossy is SendTick with per-message loss hashing
// engaged (the non-zero-δ path of attempt).
func BenchmarkPerfEngineSendLossy(b *testing.B) {
	const n = 1024
	e := sim.NewEngine(n, sim.Options{Seed: 2, Loss: 0.1})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for s := 0; s < n; s++ {
			e.Send(s, (s+1)%n, sim.Payload{})
		}
		e.Tick()
	}
}

// BenchmarkPerfEngineRouted measures the routed transport (staggered
// multi-round deliveries through the ring buffer).
func BenchmarkPerfEngineRouted(b *testing.B) {
	const n = 1024
	e := sim.NewEngine(n, sim.Options{Seed: 3})
	path := []int{7, 19, 83, 211}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for s := 0; s < 64; s++ {
			e.SendRouted(s, path, sim.Payload{})
		}
		e.Tick()
	}
}

// BenchmarkPerfEngineResolveCalls measures one synchronous call round
// (the paper's phone-call primitive, the dense pipelines' hot path).
func BenchmarkPerfEngineResolveCalls(b *testing.B) {
	const n = 1024
	e := sim.NewEngine(n, sim.Options{Seed: 4})
	calls := make([]sim.Call, n)
	for i := range calls {
		calls[i] = sim.Call{Active: true, To: (i + 1) % n, Pay: sim.Payload{A: float64(i)}}
	}
	handle := func(callee, caller int, req sim.Payload) (sim.Payload, bool) {
		return sim.Payload{A: req.A + 1}, true
	}
	var sink float64
	reply := func(caller int, resp sim.Payload) { sink += resp.A }
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.ResolveCalls(calls, handle, reply)
		e.Tick()
	}
	_ = sink
}

// BenchmarkPerfEngineReset measures run-to-run reuse: Reset must cost a
// few memclears, not an engine rebuild.
func BenchmarkPerfEngineReset(b *testing.B) {
	const n = 4096
	e := sim.NewEngine(n, sim.Options{Seed: 5, Loss: 0.05})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Reset(sim.Options{Seed: uint64(i), Loss: 0.05})
	}
}

// BenchmarkPerfQuantileSession is the workload the engine reuse exists
// for: a full Quantile query (Min + Max + Count + bisection Rank steps,
// every run on the session's pooled engine).
func BenchmarkPerfQuantileSession(b *testing.B) {
	const n = 1024
	values := benchValues(n)
	var runs int
	var msgs int64
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		nw, err := New(Config{N: n, Seed: uint64(i) + 1})
		if err != nil {
			b.Fatal(err)
		}
		a, err := nw.Quantile(values, 0.9, 0.5)
		if err != nil {
			b.Fatal(err)
		}
		runs = a.Cost.Runs
		msgs = a.Cost.Messages
	}
	b.ReportMetric(float64(runs), "runs")
	b.ReportMetric(float64(msgs)/float64(n), "msgs/node")
}

// BenchmarkPerfTelemetry pins the observability overhead contract on a
// full Quantile session: `off` is the facade with no telemetry
// configured (must stay allocation-identical to the plain session — the
// disabled tap adds zero allocs), `ring` is the live-monitoring
// configuration (in-memory Ring, round events every 8 rounds — the
// stride also gates the drivers' residual scans, see
// Engine.SetResidualStride). The bench-guard checks `ring` against
// `off` with a ns/op ratio budget (-overhead: same report, same
// machine, so the comparison survives hardware changes) on top of the
// usual allocs/op pins. n is larger than PerfQuantileSession's because
// the telemetry cost is per *round*, not per message — a monitoring
// deployment amortizes the tap over real per-round work, and small n
// would mostly measure timer noise.
func BenchmarkPerfTelemetry(b *testing.B) {
	const n = 4096
	values := benchValues(n)
	run := func(b *testing.B, opts *telemetry.Options) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			nw, err := New(Config{N: n, Seed: uint64(i) + 1, Telemetry: opts})
			if err != nil {
				b.Fatal(err)
			}
			if _, err := nw.Quantile(values, 0.9, 0.5); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("off", func(b *testing.B) { run(b, nil) })
	b.Run("ring", func(b *testing.B) {
		run(b, &telemetry.Options{Sink: telemetry.NewRing(8192), RoundEvery: 8})
	})
	// Shared runners drift on the timescale of whole sub-benchmarks, so a
	// ratio of the two results above is too noisy to gate on. The paired
	// variant interleaves an off and a ring session inside every
	// iteration — both halves see the same machine conditions — and
	// reports the wall-clock ratio directly as the overhead-x metric,
	// which the bench-guard pins (<= 1.05).
	b.Run("paired", func(b *testing.B) {
		ring := &telemetry.Options{Sink: telemetry.NewRing(8192), RoundEvery: 8}
		one := func(opts *telemetry.Options, seed uint64) time.Duration {
			nw, err := New(Config{N: n, Seed: seed, Telemetry: opts})
			if err != nil {
				b.Fatal(err)
			}
			start := time.Now()
			if _, err := nw.Quantile(values, 0.9, 0.5); err != nil {
				b.Fatal(err)
			}
			return time.Since(start)
		}
		var tOff, tRing time.Duration
		for i := 0; i < b.N; i++ {
			tOff += one(nil, uint64(i)+1)
			tRing += one(ring, uint64(i)+1)
		}
		b.ReportMetric(float64(tRing)/float64(tOff), "overhead-x")
	})
}

// BenchmarkPerfRunAllBatch compares sequential and concurrent execution
// of one query batch (answers are bit-identical; see the determinism
// regression) — the wall-clock case for RunAll's opt-in parallelism.
func BenchmarkPerfRunAllBatch(b *testing.B) {
	const n = 2048
	values := benchValues(n)
	queries := []Query{
		MaxOf(values), MinOf(values), SumOf(values), CountOf(values),
		AverageOf(values), RankOf(values, 500),
	}
	// The worker count is pinned (not GOMAXPROCS) so allocs/op — which
	// includes the per-worker engine and binding clones — is
	// machine-independent and safe for the bench-guard baseline; the
	// wall-clock benefit of the fan-out still shows wherever cores exist.
	for _, tc := range []struct {
		name    string
		workers int
	}{{"sequential", 1}, {"parallel", 4}} {
		b.Run(tc.name, func(b *testing.B) {
			workers := tc.workers
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				nw, err := New(Config{N: n, Seed: uint64(i) + 1})
				if err != nil {
					b.Fatal(err)
				}
				if _, _, err := nw.RunAll(queries, BatchOptions{Parallelism: workers}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkPerfGraphNeighbors sweeps every neighbor list of an implicit
// chord graph through the caller-owned-buffer path — the inner loop of
// Local-DRR's rank exchange, and the operation the implicit
// representation recomputes instead of storing. Zero allocs/op and B/op
// are the pinned contract: on-the-fly neighbor generation must not pay
// for its memory savings with per-query garbage.
func BenchmarkPerfGraphNeighbors(b *testing.B) {
	ring := chord.MustNew(benchN, chord.Options{Seed: 1})
	g := ring.Graph()
	buf := make([]int, 0, 256)
	b.ReportAllocs()
	b.ResetTimer()
	sink := 0
	for i := 0; i < b.N; i++ {
		for u := 0; u < g.N(); u++ {
			buf = g.NeighborsInto(u, buf)
			sink += len(buf)
		}
	}
	if sink == 0 {
		b.Fatal("empty neighbor lists")
	}
}

// --- public API ----------------------------------------------------------

func BenchmarkFacadeAverage(b *testing.B) {
	values := benchValues(benchN)
	for i := 0; i < b.N; i++ {
		if _, err := Average(Config{N: benchN, Seed: uint64(i)}, values); err != nil {
			b.Fatal(err)
		}
	}
}

// --- extensions ----------------------------------------------------------

func BenchmarkExtMoments(b *testing.B) {
	values := benchValues(benchN)
	var r *core.MomentsResult
	for i := 0; i < b.N; i++ {
		var err error
		r, err = core.Moments(sim.NewEngine(benchN, sim.Options{Seed: uint64(i)}), values, core.Options{})
		if err != nil {
			b.Fatal(err)
		}
	}
	report(b, r.Stats.Rounds, r.Stats.Messages, benchN)
}

func BenchmarkExtElectLeader(b *testing.B) {
	var r *drrapps.ElectionResult
	for i := 0; i < b.N; i++ {
		var err error
		r, err = drrapps.ElectLeader(sim.NewEngine(benchN, sim.Options{Seed: uint64(i)}), drrapps.Options{})
		if err != nil {
			b.Fatal(err)
		}
	}
	report(b, r.Stats.Rounds, r.Stats.Messages, benchN)
}

func BenchmarkExtSpanningTree(b *testing.B) {
	var r *drrapps.SpanningResult
	for i := 0; i < b.N; i++ {
		var err error
		r, err = drrapps.BuildSpanningTree(sim.NewEngine(benchN, sim.Options{Seed: uint64(i)}), drrapps.Options{})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(r.Depth), "tree-depth")
	report(b, r.Stats.Rounds, r.Stats.Messages, benchN)
}
