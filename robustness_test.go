package drrgossip

import (
	"context"
	"errors"
	"math"
	"testing"
	"time"
)

// The degradation contract's acceptance bar: a query limited by
// Config.Deadline against a faulted run must come back promptly with a
// partial Answer whose Quality says what happened — not hang, and not
// fail with an error.
func TestDeadlineReturnsPartialAnswer(t *testing.T) {
	const n = 128
	values := uniformValues(n, 11)
	cfg := Config{
		N:        n,
		Seed:     5,
		Faults:   mustPlan(t, "part:2@1r"),
		Deadline: time.Nanosecond, // expires before the first watchdog poll
	}
	nw, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	var ans *Answer
	go func() {
		defer close(done)
		ans, err = nw.Run(MaxOf(values))
	}()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("deadline-limited query did not return")
	}
	if err != nil {
		t.Fatalf("deadline abort is degradation, not an error; got %v", err)
	}
	if ans == nil {
		t.Fatal("no answer")
	}
	q := ans.Quality
	if !q.Partial || q.Reason != ReasonDeadline {
		t.Fatalf("Quality = %+v, want Partial with Reason %q", q, ReasonDeadline)
	}
	if ans.Converged || q.Converged {
		t.Fatalf("aborted answer reports Converged: %+v", q)
	}
	if ans.Cost.Rounds == 0 || ans.Cost.Rounds%abortStrideSync != 0 {
		t.Fatalf("abort should land on a watchdog stride; Cost.Rounds = %d", ans.Cost.Rounds)
	}
	if !math.IsNaN(ans.Value) {
		t.Fatalf("mid-protocol abort has no consensus value; got %v", ans.Value)
	}
	if q.AliveFraction <= 0 || q.AliveFraction > 1 {
		t.Fatalf("AliveFraction = %v", q.AliveFraction)
	}
}

// RoundBudget aborts are deterministic: the same config yields the same
// partial answer (cost, membership, quality) on every run.
func TestRoundBudgetDeterministicPartial(t *testing.T) {
	const n = 96
	values := uniformValues(n, 23)
	cfg := Config{N: n, Seed: 9, Faults: mustPlan(t, "crash:0.2@2r"), RoundBudget: 5}
	run := func() *Answer {
		nw, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		ans, err := nw.Run(SumOf(values))
		if err != nil {
			t.Fatalf("budget abort is degradation, not an error; got %v", err)
		}
		return ans
	}
	a, b := run(), run()
	if a.Quality != b.Quality {
		t.Fatalf("Quality drifted across identical runs:\n %+v\n %+v", a.Quality, b.Quality)
	}
	if a.Cost != b.Cost || a.Alive != b.Alive {
		t.Fatalf("partial accounting drifted: %+v/%d vs %+v/%d", a.Cost, a.Alive, b.Cost, b.Alive)
	}
	if !a.Quality.Partial || a.Quality.Reason != ReasonRoundBudget {
		t.Fatalf("Quality = %+v, want Partial with Reason %q", a.Quality, ReasonRoundBudget)
	}
	// Budget 5, stride 16: the watchdog trips at the first poll.
	if a.Cost.Rounds != abortStrideSync {
		t.Fatalf("Cost.Rounds = %d, want %d", a.Cost.Rounds, abortStrideSync)
	}
}

// Composite queries (Quantile, Histogram) aborted mid-flight keep the
// cost of the completed steps and report the abort through Quality.
func TestCompositeAbortKeepsPartialCost(t *testing.T) {
	const n = 64
	values := uniformValues(n, 31)
	cfg := Config{N: n, Seed: 3, RoundBudget: 5}
	nw, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ans, err := nw.Run(HistogramOf(values, []float64{250, 500, 750}))
	if err != nil {
		t.Fatalf("budget abort is degradation, not an error; got %v", err)
	}
	if !ans.Quality.Partial || ans.Quality.Reason != ReasonRoundBudget {
		t.Fatalf("Quality = %+v", ans.Quality)
	}
	if ans.Cost.Runs != 1 || ans.Cost.Rounds != abortStrideSync {
		t.Fatalf("first sub-run should abort at the first poll; Cost = %+v", ans.Cost)
	}
	if !math.IsNaN(ans.Value) {
		t.Fatalf("aborted histogram should drop its value; got %v", ans.Value)
	}
}

// Mid-run cancellation (satellite: RunContext granularity): a context
// cancelled from an observer during a run aborts that run within one
// watchdog stride and surfaces the partial answer with the context
// error.
func TestMidRunCancellationReturnsPartial(t *testing.T) {
	const n = 128
	values := uniformValues(n, 41)
	nw, err := New(Config{N: n, Seed: 17})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	nw.Observe(ObserverFunc(func(ri RoundInfo) {
		if ri.Round >= 3 {
			cancel()
		}
	}))
	ans, err := nw.RunContext(ctx, MaxOf(values))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if ans == nil {
		t.Fatal("cancellation should still return the partial answer")
	}
	if !ans.Quality.Partial || ans.Quality.Reason != ReasonCancelled {
		t.Fatalf("Quality = %+v", ans.Quality)
	}
	if ans.Cost.Rounds == 0 || ans.Cost.Rounds > 2*abortStrideSync {
		t.Fatalf("abort should land within a stride of the cancel; Cost.Rounds = %d", ans.Cost.Rounds)
	}
}

// Async mode honors the same watchdog: a deadline abort breaks the
// event loop gracefully and the answer carries the partial mean with
// its closing spread as the residual.
func TestAsyncDeadlinePartial(t *testing.T) {
	const n = 64
	values := uniformValues(n, 53)
	cfg := Config{N: n, Seed: 29, Mode: Async, Deadline: time.Nanosecond}
	nw, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ans, err := nw.Run(AverageOf(values))
	if err != nil {
		t.Fatalf("deadline abort is degradation, not an error; got %v", err)
	}
	q := ans.Quality
	if !q.Partial || q.Reason != ReasonDeadline || q.Converged {
		t.Fatalf("Quality = %+v", q)
	}
	if ans.Cost.Rounds == 0 || ans.Cost.Rounds%abortStrideAsync != 0 {
		t.Fatalf("abort should land on an event stride; events = %d", ans.Cost.Rounds)
	}
	// Pairwise averaging closes the books on the live estimates, so even
	// a partial answer carries a finite mean and a finite residual.
	if math.IsNaN(ans.Value) {
		t.Fatal("async partial answer should keep the in-progress mean")
	}
	if q.Residual < 0 || math.IsNaN(q.Residual) {
		t.Fatalf("async Residual should be the closing spread; got %v", q.Residual)
	}
}

// Every completed answer carries a populated Quality block too:
// non-partial, converged, full survivor accounting, and the sync
// pipelines' noResidual sentinel.
func TestQualityPopulatedOnCompleteAnswers(t *testing.T) {
	const n = 81
	values := uniformValues(n, 61)
	nw, err := New(Config{N: n, Seed: 37, Faults: mustPlan(t, "crash:0.25@3r")})
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range []Query{MaxOf(values), QuantileOf(values, 0.5, 1), HistogramOf(values, []float64{500})} {
		ans, err := nw.Run(q)
		if err != nil {
			t.Fatalf("%s: %v", q.Op, err)
		}
		qa := ans.Quality
		if qa.Partial || qa.Reason != "" || qa.Retries != 0 {
			t.Fatalf("%s: complete answer marked partial: %+v", q.Op, qa)
		}
		if qa.Converged != ans.Converged {
			t.Fatalf("%s: Quality.Converged mirror broken: %+v vs %v", q.Op, qa, ans.Converged)
		}
		if qa.Residual != noResidual {
			t.Fatalf("%s: sync Residual = %v, want %v", q.Op, qa.Residual, noResidual)
		}
		if want := float64(ans.Alive) / float64(n); qa.AliveFraction != want {
			t.Fatalf("%s: AliveFraction = %v, want %v", q.Op, qa.AliveFraction, want)
		}
		if want := float64(ans.FaultCrashes) / float64(n); qa.SurvivorBound != want {
			t.Fatalf("%s: SurvivorBound = %v, want %v", q.Op, qa.SurvivorBound, want)
		}
	}
}

// The retry policy re-runs non-converged answers on shadow epochs: the
// final answer bills every attempt and counts the restarts, and the
// parent session's stats absorb the shadow runs.
func TestRetryPolicyEpochRestart(t *testing.T) {
	const n = 64
	values := uniformValues(n, 67)
	cfg := Config{
		N:           n,
		Seed:        43,
		RoundBudget: 5, // every epoch aborts: retries exhaust Attempts
		Retry:       &RetryPolicy{Attempts: 2},
	}
	nw, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ans, err := nw.Run(CountOf(values))
	if err != nil {
		t.Fatal(err)
	}
	if ans.Quality.Retries != 2 {
		t.Fatalf("Retries = %d, want 2", ans.Quality.Retries)
	}
	if ans.Cost.Runs != 3 || ans.Cost.Rounds != 3*abortStrideSync {
		t.Fatalf("retry cost should accumulate all attempts; Cost = %+v", ans.Cost)
	}
	if got := nw.Stats().ProtocolRuns; got != 3 {
		t.Fatalf("session should absorb shadow-run accounting; ProtocolRuns = %d", got)
	}

	// A converged first attempt never retries.
	nw2, err := New(Config{N: n, Seed: 43, Retry: &RetryPolicy{Attempts: 3}})
	if err != nil {
		t.Fatal(err)
	}
	ans2, err := nw2.Run(CountOf(values))
	if err != nil {
		t.Fatal(err)
	}
	if ans2.Quality.Retries != 0 || ans2.Cost.Runs != 1 {
		t.Fatalf("healthy query retried: %+v", ans2)
	}
	// Deadline-aborted answers are not retryable: the time budget is
	// spent, so re-running could only blow past it further.
	nw3, err := New(Config{N: n, Seed: 43, Deadline: time.Nanosecond, Retry: &RetryPolicy{Attempts: 3}})
	if err != nil {
		t.Fatal(err)
	}
	ans3, err := nw3.Run(CountOf(values))
	if err != nil {
		t.Fatal(err)
	}
	if ans3.Quality.Retries != 0 || !ans3.Quality.Partial {
		t.Fatalf("deadline abort should not retry: %+v", ans3.Quality)
	}
}

// A watchdog that never trips leaves every answer bit-identical to an
// unwatched session — installing the check must not perturb the run.
func TestWatchdogNoopIsBitIdentical(t *testing.T) {
	const n = 100
	values := uniformValues(n, 71)
	plain, err := New(Config{N: n, Seed: 51, Faults: mustPlan(t, "crash:0.2@0.4;rejoin@0.8")})
	if err != nil {
		t.Fatal(err)
	}
	watched, err := New(Config{N: n, Seed: 51, Faults: mustPlan(t, "crash:0.2@0.4;rejoin@0.8"),
		Deadline: time.Hour, RoundBudget: 1 << 30})
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range []Query{MaxOf(values), AverageOf(values), QuantileOf(values, 0.9, 1)} {
		a, err := plain.Run(q)
		if err != nil {
			t.Fatal(err)
		}
		b, err := watched.Run(q)
		if err != nil {
			t.Fatal(err)
		}
		if a.Value != b.Value || a.Cost != b.Cost || a.Alive != b.Alive || a.Quality != b.Quality {
			t.Fatalf("%s: watchdog perturbed the run:\n %+v %+v %v\n %+v %+v %v",
				q.Op, a.Cost, a.Quality, a.Value, b.Cost, b.Quality, b.Value)
		}
	}
}
