// Command godoclint is the repository's documentation gate: it fails
// (exit 1) when an exported package-level identifier in any of the given
// directories lacks a doc comment. CI runs it over the root drrgossip
// package and internal/overlay (see the Makefile's doc-check target), so
// the public API surface cannot grow undocumented.
//
// Usage:
//
//	go run ./cmd/godoclint .
//	go run ./cmd/godoclint . ./internal/overlay
//
// The check covers exported functions, methods on exported receiver
// types, type declarations, and package-level const/var declarations
// (a doc comment on a grouped declaration covers the whole group, and a
// per-spec doc or trailing line comment counts too). Test files are
// skipped. This is deliberately narrower than a style linter: it gates
// presence, not phrasing.
package main

import (
	"flag"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"strings"
)

func main() {
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: godoclint [dir ...]\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	dirs := flag.Args()
	if len(dirs) == 0 {
		dirs = []string{"."}
	}
	missing := 0
	for _, dir := range dirs {
		n, err := lintDir(dir)
		if err != nil {
			fmt.Fprintf(os.Stderr, "godoclint: %s: %v\n", dir, err)
			os.Exit(2)
		}
		missing += n
	}
	if missing > 0 {
		fmt.Fprintf(os.Stderr, "godoclint: %d exported identifier(s) without doc comments\n", missing)
		os.Exit(1)
	}
}

// lintDir parses every non-test Go file in dir and reports undocumented
// exported declarations, returning how many it found.
func lintDir(dir string) (int, error) {
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, dir, func(fi os.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, parser.ParseComments)
	if err != nil {
		return 0, err
	}
	missing := 0
	report := func(pos token.Pos, kind, name string) {
		p := fset.Position(pos)
		fmt.Printf("%s:%d: %s %s has no doc comment\n", p.Filename, p.Line, kind, name)
		missing++
	}
	for _, pkg := range pkgs {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				switch d := decl.(type) {
				case *ast.FuncDecl:
					if !d.Name.IsExported() || d.Doc != nil {
						continue
					}
					if recv, exported := receiver(d); recv != "" && !exported {
						continue // method on an unexported type
					} else if recv != "" {
						report(d.Pos(), "method", recv+"."+d.Name.Name)
					} else {
						report(d.Pos(), "func", d.Name.Name)
					}
				case *ast.GenDecl:
					lintGenDecl(d, report)
				}
			}
		}
	}
	return missing, nil
}

// receiver returns the receiver type name of a method ("" for plain
// functions) and whether that type is exported.
func receiver(d *ast.FuncDecl) (name string, exported bool) {
	if d.Recv == nil || len(d.Recv.List) == 0 {
		return "", false
	}
	t := d.Recv.List[0].Type
	for {
		switch tt := t.(type) {
		case *ast.StarExpr:
			t = tt.X
		case *ast.IndexExpr: // generic receiver
			t = tt.X
		case *ast.Ident:
			return tt.Name, tt.IsExported()
		default:
			return "", false
		}
	}
}

// lintGenDecl checks type, const and var declarations. A doc comment on
// the grouped declaration documents every spec in it; otherwise each
// exported spec needs its own doc or trailing line comment.
func lintGenDecl(d *ast.GenDecl, report func(pos token.Pos, kind, name string)) {
	if d.Tok == token.IMPORT || d.Doc != nil {
		return
	}
	for _, spec := range d.Specs {
		switch s := spec.(type) {
		case *ast.TypeSpec:
			if s.Name.IsExported() && s.Doc == nil && s.Comment == nil {
				report(s.Pos(), "type", s.Name.Name)
			}
		case *ast.ValueSpec:
			if s.Doc != nil || s.Comment != nil {
				continue
			}
			for _, name := range s.Names {
				if name.IsExported() {
					report(name.Pos(), strings.ToLower(d.Tok.String()), name.Name)
				}
			}
		}
	}
}
