// Command benchtab regenerates the paper's evaluation artifacts: Table 1
// (T1), the measured theorems (F2-F12), the overlay sweep (OV1), the
// fault-injection survivability table (FT1) and the ablations (A1-A3).
// Each experiment prints its tables and machine-checked shape verdicts;
// the process exits nonzero if any verdict fails.
//
// Usage:
//
//	go run ./cmd/benchtab -experiment all          # everything (minutes)
//	go run ./cmd/benchtab -experiment T1,F11       # a subset
//	go run ./cmd/benchtab -list                    # what exists
//	go run ./cmd/benchtab -experiment all -quick   # CI-sized sweep
//	go run ./cmd/benchtab -topology all            # overlay cost columns
//	go run ./cmd/benchtab -topology chord,torus,regular:6
//	go run ./cmd/benchtab -experiment FT1 -json    # machine-readable BENCH_FT1.json
//	go run ./cmd/benchtab -chaos -quick            # chaos fuzzing campaign (CH1)
//	go run ./cmd/benchtab -topology all -faults "crash:0.2@0.5"
//	go run ./cmd/benchtab -experiment SC1 -http 127.0.0.1:8123   # live /metrics + pprof
//
// With -http the process serves Prometheus-style metrics on /metrics,
// expvar on /debug/vars and net/http/pprof on /debug/pprof/ while the
// session-API experiments (FT1, QB1, SC1) run; see docs/OBSERVABILITY.md.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"drrgossip/internal/experiments"
	"drrgossip/internal/telemetry"
)

// jsonReport is the machine-readable form emitted by -json for
// trajectory tracking: one BENCH_<ID>.json per experiment.
type jsonReport struct {
	ID        string                `json:"id"`
	Title     string                `json:"title"`
	Passed    bool                  `json:"passed"`
	ElapsedMS int64                 `json:"elapsed_ms"`
	Seed      uint64                `json:"seed"`
	Quick     bool                  `json:"quick"`
	FaultSpec string                `json:"fault_spec,omitempty"`
	Tables    []string              `json:"tables"`
	Verdicts  []experiments.Verdict `json:"verdicts"`
}

func writeJSON(rep *experiments.Report, cfg experiments.Config, elapsed time.Duration) error {
	out := jsonReport{
		ID:        rep.ID,
		Title:     rep.Title,
		Passed:    rep.Passed(),
		ElapsedMS: elapsed.Milliseconds(),
		Seed:      cfg.Seed,
		Quick:     cfg.Quick,
		FaultSpec: cfg.FaultSpec,
		Tables:    rep.Tables,
		Verdicts:  rep.Verdicts,
	}
	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		return err
	}
	name := "BENCH_" + rep.ID + ".json"
	if err := os.WriteFile(name, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("(wrote %s)\n", name)
	return nil
}

func main() { os.Exit(run()) }

func run() int {
	var (
		expFlag  = flag.String("experiment", "all", "comma-separated experiment ids, or 'all'")
		chaosRun = flag.Bool("chaos", false, "run the chaos fuzzing campaign (alias for -experiment CH1; see docs/ROBUSTNESS.md)")
		topoFlag = flag.String("topology", "", "run the overlay cost table over these comma-separated topology specs (or 'all') instead of the experiment registry")
		list     = flag.Bool("list", false, "list experiments and exit")
		quick    = flag.Bool("quick", false, "smaller sweeps (CI-sized)")
		seed     = flag.Uint64("seed", 1, "master random seed")
		trials   = flag.Int("trials", 0, "override trials per configuration (0 = default)")
		jsonOut  = flag.Bool("json", false, "additionally write each report as machine-readable BENCH_<ID>.json")
		faults   = flag.String("faults", "", `fault plan applied to supporting experiments (e.g. "crash:0.2@0.5"; see ParseFaultPlan)`)
		progress = flag.Bool("progress", false, "stream live per-round progress from session-API experiments (FT1, QB1) to stderr")
		workers  = flag.Int("workers", 0, "fan independent replications across this many workers (0 = GOMAXPROCS, 1 = sequential); reports are bit-identical for any value")
		cpuProf  = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProf  = flag.String("memprofile", "", "write a heap profile to this file on exit")
		httpAddr = flag.String("http", "", "serve live Prometheus /metrics, expvar and pprof on this address while experiments run (e.g. 127.0.0.1:8123)")
	)
	flag.Parse()
	if *chaosRun {
		*expFlag = "CH1"
	}

	if *list {
		for _, e := range experiments.Registry() {
			fmt.Printf("%-4s %s\n", e.ID, e.Title)
		}
		return 0
	}

	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchtab: -cpuprofile: %v\n", err)
			return 2
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "benchtab: -cpuprofile: %v\n", err)
			return 2
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	if *memProf != "" {
		defer func() {
			f, err := os.Create(*memProf)
			if err != nil {
				fmt.Fprintf(os.Stderr, "benchtab: -memprofile: %v\n", err)
				return
			}
			defer f.Close()
			runtime.GC() // materialize the live heap
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "benchtab: -memprofile: %v\n", err)
			}
		}()
	}

	cfg := experiments.Config{Seed: *seed, Quick: *quick, Trials: *trials, FaultSpec: *faults, Workers: *workers}
	if *progress {
		cfg.Progress = os.Stderr
	}
	if *httpAddr != "" {
		metrics := telemetry.NewMetrics()
		srv, addr, err := telemetry.Serve(*httpAddr, metrics)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchtab: -http: %v\n", err)
			return 2
		}
		defer srv.Close()
		fmt.Fprintf(os.Stderr, "benchtab: serving /metrics, /debug/vars and /debug/pprof/ on http://%s\n", addr)
		// A coarse round stride keeps the tap cheap: the gauges only need
		// to move at scrape granularity, not every simulated round.
		cfg.Telemetry = &telemetry.Options{Sink: metrics, RoundEvery: 64}
	}

	if *topoFlag != "" {
		var specs []string
		if strings.EqualFold(*topoFlag, "all") {
			specs = experiments.DefaultOverlaySpecs()
		} else {
			for _, s := range strings.Split(*topoFlag, ",") {
				specs = append(specs, strings.TrimSpace(s))
			}
		}
		start := time.Now()
		rep, err := experiments.RunOverlays(cfg, specs)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchtab: overlay sweep failed: %v\n", err)
			return 1
		}
		elapsed := time.Since(start)
		fmt.Println(rep.String())
		fmt.Printf("(OV1 completed in %v)\n", elapsed.Round(time.Millisecond))
		if *jsonOut {
			if err := writeJSON(rep, cfg, elapsed); err != nil {
				fmt.Fprintf(os.Stderr, "benchtab: %v\n", err)
				return 1
			}
		}
		if !rep.Passed() {
			return 1
		}
		return 0
	}

	var selected []experiments.Experiment
	if strings.EqualFold(*expFlag, "all") {
		selected = experiments.Registry()
	} else {
		for _, id := range strings.Split(*expFlag, ",") {
			exp, ok := experiments.ByID(strings.TrimSpace(id))
			if !ok {
				fmt.Fprintf(os.Stderr, "benchtab: unknown experiment %q (use -list)\n", id)
				return 2
			}
			selected = append(selected, exp)
		}
	}

	failed := 0
	for _, exp := range selected {
		start := time.Now()
		rep, err := exp.Run(cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchtab: %s failed: %v\n", exp.ID, err)
			failed++
			continue
		}
		elapsed := time.Since(start)
		fmt.Println(rep.String())
		fmt.Printf("(%s completed in %v)\n\n", exp.ID, elapsed.Round(time.Millisecond))
		if *jsonOut {
			if err := writeJSON(rep, cfg, elapsed); err != nil {
				fmt.Fprintf(os.Stderr, "benchtab: %v\n", err)
				failed++
			}
		}
		if !rep.Passed() {
			failed++
		}
	}
	if failed > 0 {
		fmt.Fprintf(os.Stderr, "benchtab: %d experiment(s) had failing verdicts\n", failed)
		return 1
	}
	return 0
}
