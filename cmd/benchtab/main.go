// Command benchtab regenerates the paper's evaluation artifacts: Table 1
// (T1), the measured theorems (F2-F12) and the ablations (A1-A3). Each
// experiment prints its tables and machine-checked shape verdicts; the
// process exits nonzero if any verdict fails.
//
// Usage:
//
//	go run ./cmd/benchtab -experiment all          # everything (minutes)
//	go run ./cmd/benchtab -experiment T1,F11       # a subset
//	go run ./cmd/benchtab -list                    # what exists
//	go run ./cmd/benchtab -experiment all -quick   # CI-sized sweep
//	go run ./cmd/benchtab -topology all            # overlay cost columns
//	go run ./cmd/benchtab -topology chord,torus,regular:6
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"drrgossip/internal/experiments"
)

func main() {
	var (
		expFlag  = flag.String("experiment", "all", "comma-separated experiment ids, or 'all'")
		topoFlag = flag.String("topology", "", "run the overlay cost table over these comma-separated topology specs (or 'all') instead of the experiment registry")
		list     = flag.Bool("list", false, "list experiments and exit")
		quick    = flag.Bool("quick", false, "smaller sweeps (CI-sized)")
		seed     = flag.Uint64("seed", 1, "master random seed")
		trials   = flag.Int("trials", 0, "override trials per configuration (0 = default)")
	)
	flag.Parse()

	if *list {
		for _, e := range experiments.Registry() {
			fmt.Printf("%-4s %s\n", e.ID, e.Title)
		}
		return
	}

	if *topoFlag != "" {
		cfg := experiments.Config{Seed: *seed, Quick: *quick, Trials: *trials}
		var specs []string
		if strings.EqualFold(*topoFlag, "all") {
			specs = experiments.DefaultOverlaySpecs()
		} else {
			for _, s := range strings.Split(*topoFlag, ",") {
				specs = append(specs, strings.TrimSpace(s))
			}
		}
		start := time.Now()
		rep, err := experiments.RunOverlays(cfg, specs)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchtab: overlay sweep failed: %v\n", err)
			os.Exit(1)
		}
		fmt.Println(rep.String())
		fmt.Printf("(OV1 completed in %v)\n", time.Since(start).Round(time.Millisecond))
		if !rep.Passed() {
			os.Exit(1)
		}
		return
	}

	var selected []experiments.Experiment
	if strings.EqualFold(*expFlag, "all") {
		selected = experiments.Registry()
	} else {
		for _, id := range strings.Split(*expFlag, ",") {
			exp, ok := experiments.ByID(strings.TrimSpace(id))
			if !ok {
				fmt.Fprintf(os.Stderr, "benchtab: unknown experiment %q (use -list)\n", id)
				os.Exit(2)
			}
			selected = append(selected, exp)
		}
	}

	cfg := experiments.Config{Seed: *seed, Quick: *quick, Trials: *trials}
	failed := 0
	for _, exp := range selected {
		start := time.Now()
		rep, err := exp.Run(cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchtab: %s failed: %v\n", exp.ID, err)
			failed++
			continue
		}
		fmt.Println(rep.String())
		fmt.Printf("(%s completed in %v)\n\n", exp.ID, time.Since(start).Round(time.Millisecond))
		if !rep.Passed() {
			failed++
		}
	}
	if failed > 0 {
		fmt.Fprintf(os.Stderr, "benchtab: %d experiment(s) had failing verdicts\n", failed)
		os.Exit(1)
	}
}
