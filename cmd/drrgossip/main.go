// Command drrgossip runs aggregate computations on a simulated network
// and prints the result with its round/message bill — a quick way to see
// the protocol's complexity profile. It fronts the session API: one
// drrgossip.Network is built per invocation and every query (including
// each bisection step of a quantile and each edge of a histogram) runs
// against it.
//
// Usage:
//
//	go run ./cmd/drrgossip -n 10000 -agg average
//	go run ./cmd/drrgossip -n 4096 -agg max -loss 0.1 -crash 0.2
//	go run ./cmd/drrgossip -n 1024 -agg average -topology chord
//	go run ./cmd/drrgossip -n 1024 -agg sum -topology torus
//	go run ./cmd/drrgossip -n 1024 -agg max -topology regular:6
//	go run ./cmd/drrgossip -n 4096 -agg rank -arg 500
//	go run ./cmd/drrgossip -n 4096 -agg quantile -arg 0.99
//	go run ./cmd/drrgossip -n 4096 -agg quantile -quantile-method hms
//	go run ./cmd/drrgossip -n 4096 -agg histogram -edges 250,500,750
//	go run ./cmd/drrgossip -n 1024 -agg average -faults "crash:0.2@0.5"
//	go run ./cmd/drrgossip -n 1024 -agg sum -faults "churn:0.3:40" -progress 200
//	go run ./cmd/drrgossip -n 1000000 -agg average -topology chord -workers 8
//	go run ./cmd/drrgossip -n 4096 -agg quantile -trace trace.json   # chrome://tracing
//	go run ./cmd/drrgossip -n 4096 -agg average -events run.jsonl
//	go run ./cmd/drrgossip -n 100000 -agg quantile -http 127.0.0.1:8123
//
// -trace writes the whole session as a Chrome trace-event timeline
// (open in chrome://tracing or https://ui.perfetto.dev), -events
// streams the raw structured events as JSON Lines, and -http serves
// live /metrics, /debug/vars and /debug/pprof/ while the query runs.
// The per-phase cost table printed after every run comes from
// Answer.PhaseCosts; see docs/OBSERVABILITY.md.
package main

import (
	"flag"
	"fmt"
	"math"
	"os"
	"strconv"
	"strings"

	"drrgossip"
	"drrgossip/internal/agg"
	"drrgossip/internal/telemetry"
)

func main() {
	var (
		n        = flag.Int("n", 4096, "number of nodes")
		aggName  = flag.String("agg", "average", "aggregate: min|max|sum|count|average|rank|quantile|histogram|moments")
		arg      = flag.Float64("arg", 0.5, "rank threshold q, or quantile φ")
		edgesArg = flag.String("edges", "250,500,750", "histogram bucket edges (comma-separated, increasing)")
		seed     = flag.Uint64("seed", 1, "random seed")
		loss     = flag.Float64("loss", 0, "per-message loss probability δ")
		crash    = flag.Float64("crash", 0, "initial crash fraction")
		topology = flag.String("topology", "complete",
			"topology spec: "+strings.Join(drrgossip.TopologyNames(), "|")+" (param via name:param, e.g. regular:6)")
		faultSpec = flag.String("faults", "",
			`fault plan spec, e.g. "crash:0.2@0.5", "churn:0.3:40", "part:2@0.25..0.75;loss:0.2@0.5..0.9"`)
		quantMethod = flag.String("quantile-method", "bisect",
			"quantile driver: bisect (the golden reference) or hms (Haeupler–Mohapatra–Su gossip sampling)")
		progress = flag.Int("progress", 0, "stream a live progress line to stderr every K rounds (0 = off)")
		workers  = flag.Int("workers", 0, "in-run delivery shards for large n (0/1 = sequential; results identical for any value)")
		lo       = flag.Float64("lo", 0, "value range low")
		hi       = flag.Float64("hi", 1000, "value range high")
		trace    = flag.String("trace", "", "write the session as a Chrome trace-event timeline to this file (chrome://tracing, ui.perfetto.dev)")
		events   = flag.String("events", "", "stream structured telemetry events to this file as JSON Lines")
		httpAddr = flag.String("http", "", "serve live Prometheus /metrics, expvar and pprof on this address while the query runs")
	)
	flag.Parse()

	cfg := drrgossip.Config{N: *n, Seed: *seed, Loss: *loss, CrashFraction: *crash, Workers: *workers}
	topo, err := drrgossip.ParseTopology(*topology)
	if err != nil {
		fmt.Fprintf(os.Stderr, "drrgossip: %v\n", err)
		os.Exit(2)
	}
	cfg.Topology = topo
	if cfg.Faults, err = drrgossip.ParseFaultPlan(*faultSpec); err != nil {
		fmt.Fprintf(os.Stderr, "drrgossip: %v\n", err)
		os.Exit(2)
	}
	if cfg.QuantileMethod, err = drrgossip.ParseQuantileMethod(*quantMethod); err != nil {
		fmt.Fprintf(os.Stderr, "drrgossip: %v\n", err)
		os.Exit(2)
	}
	values := agg.GenUniform(*n, *lo, *hi, *seed)

	// Assemble the telemetry taps: an in-memory buffer for the Chrome
	// trace, a JSONL writer for -events, live metrics for -http. File
	// sinks get full per-round fidelity; metrics alone only need a
	// coarse stride.
	var traceBuf *telemetry.Buffer
	var jsonl *telemetry.JSONL
	var sinks []telemetry.Sink
	if *trace != "" {
		traceBuf = &telemetry.Buffer{}
		sinks = append(sinks, traceBuf)
	}
	if *events != "" {
		f, err := os.Create(*events)
		fail(err)
		defer f.Close()
		jsonl = telemetry.NewJSONL(f)
		sinks = append(sinks, jsonl)
	}
	if *httpAddr != "" {
		metrics := telemetry.NewMetrics()
		srv, addr, err := telemetry.Serve(*httpAddr, metrics)
		fail(err)
		defer srv.Close()
		fmt.Fprintf(os.Stderr, "drrgossip: serving /metrics, /debug/vars and /debug/pprof/ on http://%s\n", addr)
		sinks = append(sinks, metrics)
	}
	if sink := telemetry.Multi(sinks...); sink != nil {
		every := 64
		if *trace != "" || *events != "" {
			every = 1
		}
		cfg.Telemetry = &telemetry.Options{Sink: sink, RoundEvery: every}
	}

	var query drrgossip.Query
	switch strings.ToLower(*aggName) {
	case "min":
		query = drrgossip.MinOf(values)
	case "max":
		query = drrgossip.MaxOf(values)
	case "sum":
		query = drrgossip.SumOf(values)
	case "count":
		query = drrgossip.CountOf(values)
	case "average":
		query = drrgossip.AverageOf(values)
	case "rank":
		query = drrgossip.RankOf(values, *arg)
	case "quantile":
		query = drrgossip.QuantileOf(values, *arg, 0)
	case "moments":
		query = drrgossip.MomentsOf(values)
	case "histogram":
		edges, err := parseEdges(*edgesArg)
		fail(err)
		query = drrgossip.HistogramOf(values, edges)
	default:
		fmt.Fprintf(os.Stderr, "drrgossip: unknown aggregate %q\n", *aggName)
		os.Exit(2)
	}

	net, err := drrgossip.New(cfg)
	fail(err)
	if *progress > 0 {
		every := *progress
		net.Observe(drrgossip.ObserverFunc(func(ri drrgossip.RoundInfo) {
			if ri.Round%every == 0 {
				fmt.Fprintf(os.Stderr, "  run %d round %6d [%-9s] alive %d msgs %d drops %d faults %d\n",
					ri.Run, ri.Round, ri.Phase, ri.Alive, ri.Messages, ri.Drops, ri.FaultEvents)
			}
		}))
	}
	ans, err := net.Run(query)
	fail(err)

	logn := math.Log2(float64(*n))
	fmt.Printf("%s over %d nodes (%d alive, δ=%.3g, %s topology)\n",
		query.Op, *n, ans.Alive, *loss, *topology)
	switch query.Op {
	case drrgossip.OpQuantile:
		fmt.Printf("  quantile(%.3g) ≈ %.6g   (converged %v)\n", *arg, ans.Value, ans.Converged)
	case drrgossip.OpHistogram:
		fmt.Printf("  counts    %v   (edges %s)\n", ans.Counts, *edgesArg)
	case drrgossip.OpMoments:
		fmt.Printf("  mean      %.6g   variance %.6g   std %.6g\n", ans.Mean, ans.Variance, ans.Std)
	default:
		if exact, err := net.Exact(query); err == nil {
			fmt.Printf("  value     %.6g   (exact %.6g, rel.err %.3g)\n", ans.Value, exact, agg.RelError(ans.Value, exact))
		} else {
			fmt.Printf("  value     %.6g\n", ans.Value)
		}
		fmt.Printf("  consensus %v\n", ans.Consensus)
	}
	if !cfg.Faults.Empty() {
		fmt.Printf("  faults    %s: %d events applied (%d crashes, %d rejoins)\n",
			cfg.Faults, ans.FaultEvents, ans.FaultCrashes, ans.FaultRevives)
	}
	if ans.Trees > 0 {
		fmt.Printf("  trees     %d   (n/log n = %.1f)\n", ans.Trees, float64(*n)/logn)
	}
	fmt.Printf("  runs      %d   (aggregate protocol executions billed)\n", ans.Cost.Runs)
	fmt.Printf("  rounds    %d   (%.2f x log2 n)\n", ans.Cost.Rounds, float64(ans.Cost.Rounds)/logn)
	fmt.Printf("  messages  %d   (%.2f per node; %d dropped)\n",
		ans.Cost.Messages, float64(ans.Cost.Messages)/float64(*n), ans.Cost.Drops)
	if len(ans.PhaseCosts) > 0 {
		fmt.Printf("  phases    %-10s %8s %12s %8s\n", "", "rounds", "messages", "drops")
		for _, pc := range ans.PhaseCosts {
			fmt.Printf("            %-10s %8d %12d %8d\n", pc.Phase, pc.Rounds, pc.Messages, pc.Drops)
		}
	}
	st := net.Stats()
	if st.HorizonRuns > 0 || st.OverlayBuilt {
		fmt.Printf("  session   %d protocol runs (%d horizon pre-runs, %d plan binds, overlay built %v)\n",
			st.ProtocolRuns, st.HorizonRuns, st.PlanBinds, st.OverlayBuilt)
	}

	if jsonl != nil {
		fail(jsonl.Close())
		fmt.Printf("  events    wrote %s\n", *events)
	}
	if traceBuf != nil {
		f, err := os.Create(*trace)
		fail(err)
		err = telemetry.WriteChromeTrace(f, traceBuf.Events())
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		fail(err)
		fmt.Printf("  trace     wrote %s (%d events; open in chrome://tracing or ui.perfetto.dev)\n",
			*trace, len(traceBuf.Events()))
	}
}

func parseEdges(spec string) ([]float64, error) {
	parts := strings.Split(spec, ",")
	edges := make([]float64, 0, len(parts))
	for _, p := range parts {
		v, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
		if err != nil {
			return nil, fmt.Errorf("bad edge %q: %v", p, err)
		}
		edges = append(edges, v)
	}
	return edges, nil
}

func fail(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "drrgossip:", err)
		os.Exit(1)
	}
}
