// Command drrgossip runs one aggregate computation on a simulated network
// and prints the result with its round/message bill — a quick way to see
// the protocol's complexity profile.
//
// Usage:
//
//	go run ./cmd/drrgossip -n 10000 -agg average
//	go run ./cmd/drrgossip -n 4096 -agg max -loss 0.1 -crash 0.2
//	go run ./cmd/drrgossip -n 1024 -agg average -topology chord
//	go run ./cmd/drrgossip -n 1024 -agg sum -topology torus
//	go run ./cmd/drrgossip -n 1024 -agg max -topology regular:6
//	go run ./cmd/drrgossip -n 4096 -agg rank -arg 500
//	go run ./cmd/drrgossip -n 4096 -agg quantile -arg 0.99
//	go run ./cmd/drrgossip -n 1024 -agg average -faults "crash:0.2@0.5"
//	go run ./cmd/drrgossip -n 1024 -agg sum -faults "churn:0.3:40"
package main

import (
	"flag"
	"fmt"
	"math"
	"os"
	"strings"

	"drrgossip"
	"drrgossip/internal/agg"
)

func main() {
	var (
		n        = flag.Int("n", 4096, "number of nodes")
		aggName  = flag.String("agg", "average", "aggregate: min|max|sum|count|average|rank|quantile")
		arg      = flag.Float64("arg", 0.5, "rank threshold q, or quantile φ")
		seed     = flag.Uint64("seed", 1, "random seed")
		loss     = flag.Float64("loss", 0, "per-message loss probability δ")
		crash    = flag.Float64("crash", 0, "initial crash fraction")
		topology = flag.String("topology", "complete",
			"topology spec: "+strings.Join(drrgossip.TopologyNames(), "|")+" (param via name:param, e.g. regular:6)")
		faultSpec = flag.String("faults", "",
			`fault plan spec, e.g. "crash:0.2@0.5", "churn:0.3:40", "part:2@0.25..0.75;loss:0.2@0.5..0.9"`)
		lo = flag.Float64("lo", 0, "value range low")
		hi = flag.Float64("hi", 1000, "value range high")
	)
	flag.Parse()

	cfg := drrgossip.Config{N: *n, Seed: *seed, Loss: *loss, CrashFraction: *crash}
	topo, err := drrgossip.ParseTopology(*topology)
	if err != nil {
		fmt.Fprintf(os.Stderr, "drrgossip: %v\n", err)
		os.Exit(2)
	}
	cfg.Topology = topo
	if cfg.Faults, err = drrgossip.ParseFaultPlan(*faultSpec); err != nil {
		fmt.Fprintf(os.Stderr, "drrgossip: %v\n", err)
		os.Exit(2)
	}
	values := agg.GenUniform(*n, *lo, *hi, *seed)

	if strings.ToLower(*aggName) == "quantile" {
		qres, err := drrgossip.Quantile(cfg, values, *arg, 0)
		fail(err)
		fmt.Printf("quantile(%.3g) ≈ %.6g  (%d aggregate runs, %d rounds, %d messages, %.2f msgs/node)\n",
			*arg, qres.Value, qres.Runs, qres.Rounds, qres.Messages, float64(qres.Messages)/float64(*n))
		return
	}

	var res *drrgossip.Result
	var exact float64
	switch strings.ToLower(*aggName) {
	case "min":
		res, err = drrgossip.Min(cfg, values)
		exact = drrgossip.Exact(cfg, "min", values)
	case "max":
		res, err = drrgossip.Max(cfg, values)
		exact = drrgossip.Exact(cfg, "max", values)
	case "sum":
		res, err = drrgossip.Sum(cfg, values)
		exact = drrgossip.Exact(cfg, "sum", values)
	case "count":
		res, err = drrgossip.Count(cfg, values)
		exact = drrgossip.Exact(cfg, "count", values)
	case "average":
		res, err = drrgossip.Average(cfg, values)
		exact = drrgossip.Exact(cfg, "average", values)
	case "rank":
		res, err = drrgossip.Rank(cfg, values, *arg)
		if err == nil {
			exact = float64(int(rankExact(cfg, values, *arg)))
		}
	default:
		fmt.Fprintf(os.Stderr, "drrgossip: unknown aggregate %q\n", *aggName)
		os.Exit(2)
	}
	fail(err)

	logn := math.Log2(float64(*n))
	fmt.Printf("%s over %d nodes (%d alive, δ=%.3g, %s topology)\n",
		*aggName, *n, res.Alive, *loss, *topology)
	fmt.Printf("  value     %.6g   (exact %.6g, rel.err %.3g)\n", res.Value, exact, agg.RelError(res.Value, exact))
	fmt.Printf("  consensus %v\n", res.Consensus)
	if !cfg.Faults.Empty() {
		fmt.Printf("  faults    %s: %d events applied (%d crashes, %d rejoins)\n",
			cfg.Faults, res.FaultEvents, res.FaultCrashes, res.FaultRevives)
	}
	fmt.Printf("  trees     %d   (n/log n = %.1f)\n", res.Trees, float64(*n)/logn)
	fmt.Printf("  rounds    %d   (%.2f x log2 n)\n", res.Rounds, float64(res.Rounds)/logn)
	fmt.Printf("  messages  %d   (%.2f per node; %d dropped)\n", res.Messages, float64(res.Messages)/float64(*n), res.Drops)
}

func rankExact(cfg drrgossip.Config, values []float64, q float64) float64 {
	// Rank over surviving nodes: reuse the facade's crash model by
	// counting via Exact on indicator values.
	ind := agg.Indicator(values, q)
	return drrgossip.Exact(cfg, "sum", ind)
}

func fail(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "drrgossip:", err)
		os.Exit(1)
	}
}
