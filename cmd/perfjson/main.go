// Command perfjson converts `go test -bench` output into the
// machine-readable BENCH_PERF.json that tracks the engine's performance
// trajectory, and guards it against allocation regressions.
//
// Two modes:
//
//	go test -bench '^BenchmarkPerf' -benchmem . | go run ./cmd/perfjson -out BENCH_PERF.json
//	go run ./cmd/perfjson -check BENCH_PERF.json -baseline BENCH_PERF_BASELINE.json
//
// The check mode compares allocs/op and B/op of every benchmark present
// in the baseline and exits nonzero when either regresses by more than
// -max-regress (default 20%, plus a small absolute per-metric slack so
// near-zero benchmarks do not flap on harness noise). ns/op is reported
// but never guarded: wall-clock depends on the machine, allocation
// counts and bytes do not.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// Benchmark is one parsed benchmark result.
type Benchmark struct {
	Name       string             `json:"name"`
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"` // unit -> value (ns/op, allocs/op, msgs/node, ...)
}

// Report is the BENCH_PERF.json shape.
type Report struct {
	ID         string      `json:"id"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

func parseBench(line string) (Benchmark, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return Benchmark{}, false
	}
	name := strings.TrimPrefix(fields[0], "Benchmark")
	if i := strings.LastIndex(name, "-"); i > 0 { // strip the -GOMAXPROCS suffix
		name = name[:i]
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Benchmark{}, false
	}
	b := Benchmark{Name: name, Iterations: iters, Metrics: map[string]float64{}}
	// The remainder alternates value / unit.
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Benchmark{}, false
		}
		b.Metrics[fields[i+1]] = v
	}
	return b, true
}

func readReport(path string) (*Report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r Report
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &r, nil
}

func convert(out string) error {
	rep := Report{ID: "PERF"}
	sc := bufio.NewScanner(os.Stdin)
	for sc.Scan() {
		line := sc.Text()
		fmt.Println(line) // stay transparent: the human-readable output passes through
		if b, ok := parseBench(line); ok {
			rep.Benchmarks = append(rep.Benchmarks, b)
		}
	}
	if err := sc.Err(); err != nil {
		return err
	}
	if len(rep.Benchmarks) == 0 {
		return fmt.Errorf("no benchmark lines found on stdin")
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(out, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("(wrote %s: %d benchmarks)\n", out, len(rep.Benchmarks))
	return nil
}

func guard(current, baseline string, maxRegress, slack, byteSlack float64) error {
	cur, err := readReport(current)
	if err != nil {
		return err
	}
	base, err := readReport(baseline)
	if err != nil {
		return err
	}
	curBy := map[string]Benchmark{}
	for _, b := range cur.Benchmarks {
		curBy[b.Name] = b
	}
	// Guarded metrics and their absolute slacks: one allocation is ~tens
	// of bytes of header alone, so B/op gets proportionally more room.
	guarded := []struct {
		unit  string
		slack float64
	}{
		{"allocs/op", slack},
		{"B/op", byteSlack},
	}
	failures := 0
	for _, want := range base.Benchmarks {
		got, present := curBy[want.Name]
		checkedAny := false
		for _, gm := range guarded {
			baseVal, ok := want.Metrics[gm.unit]
			if !ok {
				continue
			}
			if !present {
				if !checkedAny {
					fmt.Printf("FAIL %s: pinned benchmark missing from %s\n", want.Name, current)
					failures++
				}
				checkedAny = true
				continue
			}
			checkedAny = true
			val := got.Metrics[gm.unit]
			limit := baseVal*(1+maxRegress) + gm.slack
			if val > limit {
				fmt.Printf("FAIL %s: %s %.1f exceeds baseline %.1f by more than %.0f%% (+%.0f slack)\n",
					want.Name, gm.unit, val, baseVal, maxRegress*100, gm.slack)
				failures++
			} else {
				fmt.Printf("ok   %s: %s %.1f (baseline %.1f, limit %.1f)\n",
					want.Name, gm.unit, val, baseVal, limit)
			}
		}
	}
	if failures > 0 {
		return fmt.Errorf("%d benchmark(s) regressed", failures)
	}
	return nil
}

func main() {
	var (
		out        = flag.String("out", "BENCH_PERF.json", "output path (convert mode: stdin -> JSON)")
		check      = flag.String("check", "", "guard mode: current BENCH_PERF.json to check")
		baseline   = flag.String("baseline", "BENCH_PERF_BASELINE.json", "guard mode: pinned baseline")
		maxRegress = flag.Float64("max-regress", 0.20, "guard mode: allowed fractional allocs/op and B/op regression")
		slack      = flag.Float64("slack", 16, "guard mode: absolute allocs/op slack on top of the fraction")
		byteSlack  = flag.Float64("byte-slack", 512, "guard mode: absolute B/op slack on top of the fraction")
	)
	flag.Parse()
	var err error
	if *check != "" {
		err = guard(*check, *baseline, *maxRegress, *slack, *byteSlack)
	} else {
		err = convert(*out)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "perfjson: %v\n", err)
		os.Exit(1)
	}
}
