// Command perfjson converts `go test -bench` output into the
// machine-readable BENCH_PERF.json that tracks the engine's performance
// trajectory, and guards it against allocation regressions.
//
// Two modes:
//
//	go test -bench '^BenchmarkPerf' -benchmem . | go run ./cmd/perfjson -out BENCH_PERF.json
//	go run ./cmd/perfjson -check BENCH_PERF.json -baseline BENCH_PERF_BASELINE.json
//
// The check mode compares allocs/op and B/op of every benchmark present
// in the baseline and exits nonzero when either regresses by more than
// -max-regress (default 20%, plus a small absolute per-metric slack so
// near-zero benchmarks do not flap on harness noise). ns/op is reported
// but never guarded against the baseline: wall-clock depends on the
// machine, allocation counts and bytes do not.
//
// Check mode additionally accepts -overhead constraints in two forms:
//
//   - "Name=Base:ratio" (e.g. "PerfTelemetry/ring=PerfTelemetry/off:1.05")
//     asserts that Name's ns/op is at most Base's ns/op times the ratio
//     *within the same report*.
//   - "Name:ratio" (e.g. "PerfTelemetry/paired:1.05") asserts that
//     Name's self-reported overhead-x metric is at most the ratio — for
//     paired benchmarks that interleave both configurations inside one
//     loop and report the wall-clock ratio themselves, which is immune
//     to machine-load drift between sub-benchmarks.
//
// Either way the comparison never crosses machines, so relative
// overhead budgets are safe to guard in CI where absolute wall-clock is
// not.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// Benchmark is one parsed benchmark result.
type Benchmark struct {
	Name       string             `json:"name"`
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"` // unit -> value (ns/op, allocs/op, msgs/node, ...)
}

// Report is the BENCH_PERF.json shape.
type Report struct {
	ID         string      `json:"id"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

func parseBench(line string) (Benchmark, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return Benchmark{}, false
	}
	name := strings.TrimPrefix(fields[0], "Benchmark")
	if i := strings.LastIndex(name, "-"); i > 0 { // strip the -GOMAXPROCS suffix
		name = name[:i]
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Benchmark{}, false
	}
	b := Benchmark{Name: name, Iterations: iters, Metrics: map[string]float64{}}
	// The remainder alternates value / unit.
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Benchmark{}, false
		}
		b.Metrics[fields[i+1]] = v
	}
	return b, true
}

func readReport(path string) (*Report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r Report
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &r, nil
}

func convert(out string) error {
	rep := Report{ID: "PERF"}
	// Repeated names (go test -count N) merge by per-metric minimum: bench
	// noise on shared runners is one-sided (contention only ever adds
	// time), so min-of-runs is the stable estimator — essential for the
	// -overhead ratio checks, harmless for allocation counts, which do not
	// vary across repetitions.
	index := map[string]int{}
	sc := bufio.NewScanner(os.Stdin)
	for sc.Scan() {
		line := sc.Text()
		fmt.Println(line) // stay transparent: the human-readable output passes through
		b, ok := parseBench(line)
		if !ok {
			continue
		}
		if i, seen := index[b.Name]; seen {
			prev := rep.Benchmarks[i]
			for unit, v := range b.Metrics {
				if old, ok := prev.Metrics[unit]; !ok || v < old {
					prev.Metrics[unit] = v
				}
			}
			if b.Iterations > prev.Iterations {
				prev.Iterations = b.Iterations
			}
			rep.Benchmarks[i] = prev
			continue
		}
		index[b.Name] = len(rep.Benchmarks)
		rep.Benchmarks = append(rep.Benchmarks, b)
	}
	if err := sc.Err(); err != nil {
		return err
	}
	if len(rep.Benchmarks) == 0 {
		return fmt.Errorf("no benchmark lines found on stdin")
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(out, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("(wrote %s: %d benchmarks)\n", out, len(rep.Benchmarks))
	return nil
}

// overheadSpec is one parsed -overhead constraint. With base set, name's
// ns/op must not exceed base's ns/op times ratio within the same report;
// with base empty, name's own overhead-x metric must not exceed ratio.
type overheadSpec struct {
	name  string
	base  string
	ratio float64
}

func parseOverhead(spec string) (overheadSpec, error) {
	head, ratioStr, ok := strings.Cut(spec, ":")
	if !ok {
		return overheadSpec{}, fmt.Errorf("overhead spec %q: want Name=Base:ratio or Name:ratio", spec)
	}
	ratio, err := strconv.ParseFloat(ratioStr, 64)
	if err != nil || ratio <= 0 {
		return overheadSpec{}, fmt.Errorf("overhead spec %q: bad ratio %q", spec, ratioStr)
	}
	name, base, _ := strings.Cut(head, "=")
	return overheadSpec{name: strings.TrimSpace(name), base: strings.TrimSpace(base), ratio: ratio}, nil
}

// checkOverheads asserts each -overhead constraint against the current
// report and returns the number of failures.
func checkOverheads(curBy map[string]Benchmark, specs []string) (int, error) {
	failures := 0
	for _, raw := range specs {
		spec, err := parseOverhead(raw)
		if err != nil {
			return 0, err
		}
		if spec.base == "" {
			got, ok := curBy[spec.name]
			if !ok {
				fmt.Printf("FAIL overhead %s: benchmark missing from report\n", raw)
				failures++
				continue
			}
			x, ok := got.Metrics["overhead-x"]
			if !ok {
				fmt.Printf("FAIL overhead %s: %s reports no overhead-x metric\n", raw, spec.name)
				failures++
				continue
			}
			if x > spec.ratio {
				fmt.Printf("FAIL overhead %s: measured x%.3f exceeds budget x%.2f\n", raw, x, spec.ratio)
				failures++
			} else {
				fmt.Printf("ok   overhead %s: measured x%.3f (budget x%.2f)\n", raw, x, spec.ratio)
			}
			continue
		}
		got, okN := curBy[spec.name]
		base, okB := curBy[spec.base]
		if !okN || !okB {
			fmt.Printf("FAIL overhead %s: benchmark pair missing from report (have %s=%t %s=%t)\n",
				raw, spec.name, okN, spec.base, okB)
			failures++
			continue
		}
		ns, okN := got.Metrics["ns/op"]
		baseNs, okB := base.Metrics["ns/op"]
		if !okN || !okB || baseNs <= 0 {
			fmt.Printf("FAIL overhead %s: ns/op missing or zero\n", raw)
			failures++
			continue
		}
		limit := baseNs * spec.ratio
		if ns > limit {
			fmt.Printf("FAIL overhead %s: %.0f ns/op exceeds %.0f ns/op x %.2f = %.0f\n",
				raw, ns, baseNs, spec.ratio, limit)
			failures++
		} else {
			fmt.Printf("ok   overhead %s: %.0f ns/op vs base %.0f (x%.3f, budget x%.2f)\n",
				raw, ns, baseNs, ns/baseNs, spec.ratio)
		}
	}
	return failures, nil
}

func guard(current, baseline string, maxRegress, slack, byteSlack float64, overheads []string) error {
	cur, err := readReport(current)
	if err != nil {
		return err
	}
	base, err := readReport(baseline)
	if err != nil {
		return err
	}
	curBy := map[string]Benchmark{}
	for _, b := range cur.Benchmarks {
		curBy[b.Name] = b
	}
	// Guarded metrics and their absolute slacks: one allocation is ~tens
	// of bytes of header alone, so B/op gets proportionally more room.
	guarded := []struct {
		unit  string
		slack float64
	}{
		{"allocs/op", slack},
		{"B/op", byteSlack},
	}
	failures := 0
	for _, want := range base.Benchmarks {
		got, present := curBy[want.Name]
		checkedAny := false
		for _, gm := range guarded {
			baseVal, ok := want.Metrics[gm.unit]
			if !ok {
				continue
			}
			if !present {
				if !checkedAny {
					fmt.Printf("FAIL %s: pinned benchmark missing from %s\n", want.Name, current)
					failures++
				}
				checkedAny = true
				continue
			}
			checkedAny = true
			val := got.Metrics[gm.unit]
			limit := baseVal*(1+maxRegress) + gm.slack
			if val > limit {
				fmt.Printf("FAIL %s: %s %.1f exceeds baseline %.1f by more than %.0f%% (+%.0f slack)\n",
					want.Name, gm.unit, val, baseVal, maxRegress*100, gm.slack)
				failures++
			} else {
				fmt.Printf("ok   %s: %s %.1f (baseline %.1f, limit %.1f)\n",
					want.Name, gm.unit, val, baseVal, limit)
			}
		}
	}
	overheadFails, err := checkOverheads(curBy, overheads)
	if err != nil {
		return err
	}
	failures += overheadFails
	if failures > 0 {
		return fmt.Errorf("%d benchmark(s) regressed", failures)
	}
	return nil
}

// repeatedFlag collects a repeatable string flag.
type repeatedFlag []string

func (r *repeatedFlag) String() string { return strings.Join(*r, ",") }

func (r *repeatedFlag) Set(v string) error {
	*r = append(*r, v)
	return nil
}

func main() {
	var (
		out        = flag.String("out", "BENCH_PERF.json", "output path (convert mode: stdin -> JSON)")
		check      = flag.String("check", "", "guard mode: current BENCH_PERF.json to check")
		baseline   = flag.String("baseline", "BENCH_PERF_BASELINE.json", "guard mode: pinned baseline")
		maxRegress = flag.Float64("max-regress", 0.20, "guard mode: allowed fractional allocs/op and B/op regression")
		slack      = flag.Float64("slack", 16, "guard mode: absolute allocs/op slack on top of the fraction")
		byteSlack  = flag.Float64("byte-slack", 512, "guard mode: absolute B/op slack on top of the fraction")
		overheads  repeatedFlag
	)
	flag.Var(&overheads, "overhead", `guard mode, repeatable: "Name=Base:ratio" asserts Name ns/op <= Base ns/op x ratio within the current report`)
	flag.Parse()
	var err error
	if *check != "" {
		err = guard(*check, *baseline, *maxRegress, *slack, *byteSlack, overheads)
	} else {
		err = convert(*out)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "perfjson: %v\n", err)
		os.Exit(1)
	}
}
