// Command chaosfuzz runs the chaos harness: property-based fuzzing of
// (config, fault-plan) pairs against the full query battery on both
// execution engines, with invariant checking and automatic shrinking of
// failures to minimal reproducers (see docs/ROBUSTNESS.md).
//
// Usage:
//
//	chaosfuzz [-cases N] [-seed S] [-corpus file] [-update] [-v]
//	chaosfuzz -case "n=64 topo=chord seed=11 loss=0.05 plan=crash:0.2@0.5"
//
// The default campaign replays the pinned regression corpus and then
// checks -cases freshly generated cases. Exit status is 0 when every
// case holds all invariants, 1 otherwise; each failure is printed with
// its shrunk one-line reproducer, and -update appends the reproducers
// to the corpus file so the regression is pinned.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"drrgossip"
	"drrgossip/internal/chaos"
)

func main() {
	var (
		cases   = flag.Int("cases", 200, "generated cases to check (on top of the corpus)")
		seed    = flag.Uint64("seed", 1, "campaign seed; equal seeds check identical case sequences")
		corpus  = flag.String("corpus", "internal/chaos/testdata/regressions.txt", "comma-separated corpus files to replay (empty string skips)")
		oneCase = flag.String("case", "", "check a single reproducer line instead of running a campaign")
		update  = flag.Bool("update", false, "append shrunk reproducers of new failures to the corpus file")
		verbose = flag.Bool("v", false, "print one line per checked case")
		method  = flag.String("qm", "", "force every generated case's quantile method (bisect or hms; empty lets the generator draw)")
	)
	flag.Parse()
	if err := run(*cases, *seed, *corpus, *oneCase, *update, *verbose, *method); err != nil {
		fmt.Fprintln(os.Stderr, "chaosfuzz:", err)
		os.Exit(1)
	}
}

func run(cases int, seed uint64, corpusPath, oneCase string, update, verbose bool, method string) error {
	if oneCase != "" {
		c, err := chaos.ParseCase(oneCase)
		if err != nil {
			return err
		}
		vs := chaos.CheckCase(c)
		if len(vs) == 0 {
			fmt.Printf("ok: %s\n", c)
			return nil
		}
		for _, v := range vs {
			fmt.Printf("violation: %s\n", v)
		}
		return fmt.Errorf("%d violation(s)", len(vs))
	}

	opts := chaos.Options{Cases: cases, Seed: seed}
	if method != "" {
		qm, err := drrgossip.ParseQuantileMethod(method)
		if err != nil {
			return err
		}
		opts.ForceMethod = &qm
	}
	var updatePath string
	for _, path := range strings.Split(corpusPath, ",") {
		if path = strings.TrimSpace(path); path == "" {
			continue
		}
		lines, err := chaos.LoadCorpus(path)
		if err != nil {
			return err
		}
		opts.Corpus = append(opts.Corpus, lines...)
		updatePath = path // -update pins into the last listed corpus
	}
	if verbose {
		opts.Progress = os.Stdout
	}
	rep, err := chaos.Fuzz(opts)
	if err != nil {
		return err
	}
	report(os.Stdout, rep)
	if rep.Clean() {
		return nil
	}
	if update && updatePath != "" {
		var lines []string
		for _, f := range rep.Failures {
			lines = append(lines, f.Reproducer)
		}
		if err := chaos.AppendCorpus(updatePath, lines); err != nil {
			return fmt.Errorf("updating corpus: %v", err)
		}
		fmt.Printf("pinned %d reproducer(s) into %s\n", len(lines), updatePath)
	}
	return fmt.Errorf("%d of %d cases violated invariants", len(rep.Failures), rep.Checked)
}

func report(w io.Writer, rep *chaos.Report) {
	fmt.Fprintf(w, "checked %d cases (%d healthy, %d membership-stable, %d churn): %d failure(s)\n",
		rep.Checked, rep.ByTier[0], rep.ByTier[1], rep.ByTier[2], len(rep.Failures))
	for i, f := range rep.Failures {
		fmt.Fprintf(w, "\nfailure %d:\n  case: %s\n", i+1, f.Case)
		for _, v := range f.Violations {
			fmt.Fprintf(w, "  violation: %s\n", v)
		}
		fmt.Fprintf(w, "  shrunk reproducer (%d event(s)):\n    %s\n", reproEvents(f.Minimized), f.Reproducer)
	}
}

func reproEvents(c chaos.Case) int {
	if c.Plan == nil {
		return 0
	}
	return len(c.Plan.Events)
}
