// Package drrgossip is a Go implementation of "Optimal Gossip-Based
// Aggregate Computation" (Chen & Pandurangan, SPAA 2010): the DRR-gossip
// family of protocols, which compute common aggregates (Min, Max, Sum,
// Count, Average, Rank) over an n-node network in O(log n) rounds using
// O(n log log n) messages — time-optimal and within a log log n factor of
// message-optimal.
//
// The package front-ends a discrete-event reproduction of the paper's
// synchronous random phone call model: every query runs the full
// distributed protocol (distributed random ranking, per-tree convergecast,
// root-level gossip, dissemination) on a simulated network and reports
// the computed aggregate together with the round and message bill.
//
// # Sessions and queries
//
// The API is organised around a reusable session: New(cfg) validates the
// configuration once, builds the overlay graph once and caches the fault
// plan's bindings, and the returned Network then answers any number of
// typed queries — mirroring the paper's economics, where one
// preprocessing investment amortizes across aggregate computations:
//
//	net, err := drrgossip.New(drrgossip.Config{N: 10000, Seed: 1})
//	avg, err := net.Run(drrgossip.AverageOf(values))
//	// avg.Value ≈ mean(values); avg.Cost.Rounds = Θ(log n); avg.Cost.Messages = Θ(n loglog n)
//	p99, err := net.Quantile(values, 0.99, 0.5) // ~log(range/tol) Rank runs, one session
//
// Every query answers with the same Answer shape (Value, PerNode,
// Consensus, a Cost bill); Network.RunAll executes a batch against one
// overlay/crash-set and additionally returns the aggregate bill, and
// Network.RunContext supports cancellation between protocol runs.
// Observers (Network.Observe) stream per-round progress — round, phase,
// alive count, message counters, fault events — without perturbing the
// run. The original one-shot helpers (Max, Average, Quantile, …) remain
// as thin wrappers that build a single-use session per call,
// bit-identical for the single-run aggregates (two deliberate fixes are
// documented on Histogram and Moments):
//
//	res, err := drrgossip.Average(drrgossip.Config{N: 10000, Seed: 1}, values)
//
// # Topologies
//
// Config.Topology selects the communication substrate from an overlay
// registry (internal/overlay) rather than a fixed enum. Complete (the
// zero value) is the paper's random phone call model; every other
// topology runs the Section 4 sparse pipeline — Local-DRR over the
// overlay's links, routed gossip between tree roots, dissemination down
// the trees (Theorems 13-14):
//
//	Complete         any node can call any other (dense baseline)
//	Chord            DHT ring with finger routing and rejection sampling
//	Torus            most-square rows×cols wraparound grid
//	Hypercube        log2(n)-dimensional cube (n must be a power of two)
//	RandomRegular(d) random d-regular graph (default d = 4)
//	SmallWorld       Newman–Watts ring lattice with shortcuts
//	Ring             the n-cycle (pedagogical worst case)
//	ScaleFree        Barabási–Albert preferential attachment
//
// Non-Chord overlays route through a landmark BFS tree; adding a new
// topology is one overlay.Register call plus a graph generator. Use
// ParseTopology for textual specs ("torus", "regular:6") and
// TopologyNames for the catalog. Baselines from the paper's Table 1
// (uniform gossip of Kempe et al., efficient gossip of Kashyap et al.)
// and the address-oblivious lower-bound harness (Section 5) live under
// internal/ and are exercised by the benchmark harness (cmd/benchtab)
// and the bench suite (bench_test.go).
//
// # Scale
//
// A single run scales to a million nodes: Config.Workers shards the
// engine's delivery step within the run (answers stay bit-identical
// for any worker count), and Config.SampleNodes bounds how much
// per-node state an Answer materializes (none by default; AllNodes for
// the full vector). The SC1 experiment (cmd/benchtab -experiment SC1)
// is the scaling study behind the README's "Scaling" section; see
// docs/ARCHITECTURE.md for how sharding preserves determinism and
// docs/PAPER_MAP.md for the theorem-to-code map.
package drrgossip

import (
	"errors"
	"fmt"
	"strings"
	"time"

	"drrgossip/internal/async"
	"drrgossip/internal/chord"
	core "drrgossip/internal/drrgossip"
	"drrgossip/internal/faults"
	"drrgossip/internal/overlay"
	"drrgossip/internal/pairwise"
	"drrgossip/internal/sim"
	"drrgossip/internal/telemetry"
)

// Mode selects the session's execution model.
type Mode uint8

const (
	// Sync (the zero value) is the paper's synchronous-rounds model:
	// every query runs a DRR-gossip pipeline on the round-based engine.
	Sync Mode = iota
	// Async is the classical asynchronous time model: per-node Poisson
	// clocks drive an event-heap engine (internal/async), and AverageOf
	// queries run randomized pairwise averaging (internal/pairwise) with
	// the peer-selection policy named by Config.AsyncPeer. Only
	// AverageOf is supported — the pairwise family computes averages;
	// every other operation reports an error. Costs come back with
	// Cost.Rounds = dispatched events, Cost.Clock = simulated wall-clock
	// time and the same per-transmission Messages unit as Sync (one
	// exchange = 2 messages), so DRR's message bill and the classical
	// family's are directly comparable (experiment AS1).
	Async
)

// String renders the mode ("sync", "async").
func (m Mode) String() string {
	switch m {
	case Sync:
		return "sync"
	case Async:
		return "async"
	default:
		return fmt.Sprintf("Mode(%d)", uint8(m))
	}
}

// QuantileMethod selects the protocol behind QuantileOf queries.
type QuantileMethod uint8

const (
	// QuantileBisect (the zero value) bisects the value range with one
	// exact Rank run per step — ~log2(range/tol) sequential aggregate
	// runs. It is the session facade's golden reference: slow but
	// maximally simple, and pinned bit-identical by the quantile goldens.
	QuantileBisect QuantileMethod = iota
	// QuantileHMS runs the Haeupler–Mohapatra–Su sampling protocol
	// (arXiv:1711.09258, internal/hms): one Count run, one O(log n)-round
	// gossip-sampling session with candidate-interval pruning, and a
	// handful of exact Rank probes that certify the quantile — typically
	// ~4 aggregate runs total instead of bisection's ~23, and exact
	// (not tol-approximate) on healthy sessions. Differentially tested
	// against QuantileBisect (quantile_diff_test.go, experiment QH1).
	QuantileHMS
)

// String renders the method ("bisect", "hms").
func (m QuantileMethod) String() string {
	switch m {
	case QuantileBisect:
		return "bisect"
	case QuantileHMS:
		return "hms"
	default:
		return fmt.Sprintf("QuantileMethod(%d)", uint8(m))
	}
}

// ParseQuantileMethod parses "bisect" (or "", the default) and "hms".
func ParseQuantileMethod(s string) (QuantileMethod, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "", "bisect", "bisection":
		return QuantileBisect, nil
	case "hms":
		return QuantileHMS, nil
	default:
		return 0, fmt.Errorf("%w: unknown quantile method %q (want bisect or hms)", ErrBadConfig, s)
	}
}

// Topology selects the communication substrate. The zero value is
// Complete (the paper's random phone call model); every other topology
// names an overlay family in the registry and runs the Section 4 sparse
// pipeline. Topology values are comparable: cfg.Topology == Chord works.
type Topology struct {
	name  string
	param int
}

// Predefined topologies. RandomRegular and SmallWorldK parameterise
// their families explicitly.
var (
	// Complete is the paper's main model: any node can call any other
	// (random phone call model).
	Complete = Topology{}
	// Chord runs the Section 4 sparse-network variant on a Chord overlay:
	// Local-DRR over finger links and routed gossip between tree roots.
	Chord = Topology{name: "chord"}
	// Torus is the most-square rows×cols wraparound grid on N nodes
	// (N must factor with both sides >= 3).
	Torus = Topology{name: "torus"}
	// Hypercube is the log2(N)-dimensional cube (N must be a power of 2).
	Hypercube = Topology{name: "hypercube"}
	// SmallWorld is a Newman–Watts small world (ring lattice plus random
	// shortcuts) with the default lattice half-width k = 2.
	SmallWorld = Topology{name: "smallworld"}
	// Ring is the n-cycle — the sparse pipeline's pedagogical worst case
	// (O(n) routes, ~n/3 trees).
	Ring = Topology{name: "ring"}
	// ScaleFree is a Barabási–Albert preferential-attachment graph with
	// the default attachment count m = 3.
	ScaleFree = Topology{name: "scalefree"}
)

// RandomRegular selects a random d-regular overlay (3 <= d < N, N*d
// even). RandomRegular(0) uses the registry default d = 4.
func RandomRegular(d int) Topology { return Topology{name: "regular", param: d} }

// SmallWorldK selects a Newman–Watts small world with lattice
// half-width k (degree >= 2k). SmallWorldK(0) uses the default k = 2.
func SmallWorldK(k int) Topology { return Topology{name: "smallworld", param: k} }

// ParseTopology parses a textual topology spec: "complete", or any
// registered overlay name with an optional ":param" suffix — "chord",
// "torus", "hypercube", "regular:6", "smallworld:3", "ring",
// "scalefree".
func ParseTopology(text string) (Topology, error) {
	if strings.EqualFold(strings.TrimSpace(text), "complete") {
		return Complete, nil
	}
	spec, err := overlay.ParseSpec(text)
	if err != nil {
		return Topology{}, fmt.Errorf("%w: %v", ErrBadConfig, err)
	}
	return Topology{name: spec.Name, param: spec.Param}, nil
}

// TopologyNames lists every selectable topology ("complete" plus the
// overlay registry) in sorted order.
func TopologyNames() []string {
	return append([]string{"complete"}, overlay.Names()...)
}

// String renders the topology in its ParseTopology form.
func (t Topology) String() string {
	if t.isComplete() {
		return "complete"
	}
	return t.spec().String()
}

func (t Topology) isComplete() bool { return t.name == "" || t.name == "complete" }

func (t Topology) spec() overlay.Spec { return overlay.Spec{Name: t.name, Param: t.param} }

// Config describes the simulated network.
type Config struct {
	// N is the number of nodes (>= 2).
	N int
	// Seed makes runs reproducible; equal configs and seeds give
	// identical results.
	Seed uint64
	// Loss is the per-message drop probability δ ∈ [0, 1). The paper's
	// analysis admits δ < 1/8.
	Loss float64
	// CrashFraction crashes this fraction of nodes before the protocol
	// starts (the paper's initial-crash failure model). Aggregates are
	// then computed over the surviving nodes. Not supported on sparse
	// overlays (routing repair is out of scope).
	CrashFraction float64
	// Topology selects Complete (default) or a sparse overlay.
	Topology Topology
	// ChordBits sets the Chord identifier width (0 = 40).
	ChordBits int
	// ChordHashed places Chord identifiers pseudo-randomly instead of
	// evenly (more realistic, slightly non-uniform sampling).
	ChordHashed bool
	// Faults optionally injects a dynamic fault plan — mid-run crashes
	// and rejoins, partitions, loss bursts, link blackouts, churn — built
	// with ParseFaultPlan or the internal/faults generators. Plans with
	// horizon-fraction timings (e.g. "crash:0.2@0.5", 50% through the
	// run) first measure the healthy run's length, then re-run with the
	// plan bound to it; both runs are deterministic in Seed. Nil (or an
	// empty plan) reproduces the static model bit-for-bit.
	Faults *faults.Plan
	// Telemetry optionally attaches the structured observability layer
	// (internal/telemetry): the configured Sink receives run, phase,
	// fault and (optionally, per RoundEvery) per-round events for every
	// protocol run of the session, each carrying the engine's cumulative
	// counters and the delta since the previous event. Telemetry is a
	// read-only tap — every answer stays bit-identical with any sink
	// attached — and nil (or a nil Sink) disables it entirely: the hot
	// path then installs no observers and allocates nothing extra
	// (pinned by the bench guard). See docs/OBSERVABILITY.md.
	Telemetry *telemetry.Options
	// Workers shards a single run's delivery step across this many
	// goroutines inside the engine (0 or 1 = sequential). Answers are
	// bit-identical for any value — sharding is a speed knob for large N
	// (see README, "Scaling"), not a semantic one. It is independent of
	// BatchOptions.Parallelism, which fans *whole runs* of a batch across
	// workers.
	Workers int
	// SampleNodes controls how much per-node state a query's Answer
	// materializes:
	//
	//	 0 (default)  Answer.PerNode is nil — no O(N) copy per answer,
	//	              the right default at large N;
	//	 k > 0        Answer.PerNode holds the final values of min(k, N)
	//	              nodes drawn deterministically from (Seed, N, k) —
	//	              the ids are reported in Answer.SampleIDs and are
	//	              identical for any Workers value;
	//	 AllNodes     the full N-entry PerNode slice (the historical
	//	              behaviour; the one-shot helpers default to this).
	SampleNodes int
	// LegacySliceAdjacency stores the overlay's communication graph in
	// the historical jagged [][]int layout instead of the memory-lean
	// implicit/CSR representations. Answers are bit-identical either
	// way — the knob exists for cross-representation identity checks and
	// memory studies (SC1), and costs O(edges) extra memory. No effect
	// on the Complete topology, which builds no overlay graph.
	LegacySliceAdjacency bool
	// Mode selects the execution model: Sync (default) runs the paper's
	// synchronous DRR-gossip pipelines; Async runs classical asynchronous
	// pairwise averaging on per-node Poisson clocks (AverageOf only).
	Mode Mode
	// QuantileMethod selects the protocol behind QuantileOf queries:
	// QuantileBisect (default) is the Rank-bisection golden reference,
	// QuantileHMS the sampling protocol of arXiv:1711.09258 (typically
	// ~5x fewer rounds, exact on healthy sessions). Ignored by every
	// other query; not supported in Async mode (which only runs
	// AverageOf anyway).
	QuantileMethod QuantileMethod
	// AsyncPeer names the Async-mode peer-selection policy: "uniform"
	// (or "", the default), "gge" (greedy gossip with eavesdropping —
	// sparse overlays only), or "samplegreedy". Ignored in Sync mode.
	AsyncPeer string
	// AsyncEps is the Async-mode convergence threshold: a run stops when
	// the spread (max − min) of the alive estimates is <= AsyncEps. 0
	// picks 1e-6. Ignored in Sync mode.
	AsyncEps float64
	// Deadline bounds each query's wall-clock execution time. When a
	// faulted run wedges past it, the engine watchdog aborts the run and
	// the query returns a partial Answer — Quality.Partial true, Reason
	// "deadline" — instead of hanging (see docs/ROBUSTNESS.md). 0
	// disables the bound. Wall-clock aborts are inherently
	// nondeterministic (where they land depends on machine speed); use
	// RoundBudget for a deterministic cap.
	Deadline time.Duration
	// RoundBudget caps a single protocol run's length: synchronous
	// rounds in Sync mode, dispatched clock-tick events in Async mode. A
	// run that exceeds it is aborted (at watchdog-stride granularity)
	// and the query returns a partial Answer with Quality.Reason
	// "round-budget". Deterministic: equal configs abort at the same
	// round. Composite queries apply the budget per run, not per query.
	// 0 disables the cap.
	RoundBudget int
	// Retry opts non-converged (or round-budget-aborted) queries into
	// epoch restarts: up to Attempts re-runs on a fresh protocol epoch —
	// same session, same overlay, the seed advanced per attempt — keeping
	// the first answer that completes converged. Nil disables retries.
	Retry *RetryPolicy
}

// RetryPolicy re-runs queries whose answers come back non-converged or
// partial (see Answer.Quality): each attempt is an epoch restart — the
// standing overlay is kept, the protocol epoch is re-seeded — so a
// transiently wedged query gets fresh randomness (new crash sets, new
// loss decisions under the same symbolic plan) instead of replaying the
// same doomed schedule. Deadline- and cancellation-aborted answers are
// not retried (their budget is already spent); round-budget aborts and
// non-converged completions are. Answer.Quality.Retries reports how
// many restarts an answer consumed, and its Cost accumulates over all
// attempts.
type RetryPolicy struct {
	// Attempts is the maximum number of epoch-restart re-runs after the
	// initial attempt (>= 1).
	Attempts int
	// SeedStride is the seed advance per attempt; 0 picks a large odd
	// default so every epoch draws independent randomness.
	SeedStride uint64
}

// AllNodes is the Config.SampleNodes sentinel requesting the full
// per-node vector on every Answer.
const AllNodes = -1

// Result reports one aggregate computation.
type Result struct {
	// Value is the network's consensus value for the aggregate.
	Value float64
	// PerNode is each node's final value, indexed by node id; NaN for
	// crashed nodes. When the Config sets an explicit SampleNodes: k,
	// it instead holds the k sampled values whose node ids are listed
	// in SampleIDs (the one-shot helpers default to the full vector).
	PerNode []float64
	// SampleIDs lists the node ids PerNode covers when Config.SampleNodes
	// requested a sample; nil when PerNode is the full by-id vector.
	SampleIDs []int
	// Consensus reports whether all surviving nodes agree exactly.
	Consensus bool
	// Rounds and Messages are the protocol's cost in the paper's model
	// (every transmission attempt counts one message).
	Rounds   int
	Messages int64
	// Drops counts messages lost to link failure.
	Drops int64
	// PhaseCosts attributes the cost to the protocol phases in execution
	// order; see Answer.PhaseCosts.
	PhaseCosts []PhaseCost
	// Trees is the number of DRR trees built in Phase I.
	Trees int
	// Alive is the number of nodes alive when the run ended (with an
	// active fault plan this reflects mid-run crashes and rejoins).
	Alive int
	// FaultEvents is the number of fault actions the plan applied during
	// the run (0 without a plan); FaultCrashes and FaultRevives count the
	// node transitions among them.
	FaultEvents  int
	FaultCrashes int
	FaultRevives int
}

// ErrBadConfig reports an invalid Config.
var ErrBadConfig = errors.New("drrgossip: invalid config")

// validate checks everything about the configuration that does not
// depend on a query's values; checkValues covers the rest per query.
func (c Config) validate() error {
	if c.N < 2 {
		return fmt.Errorf("%w: N must be >= 2, got %d", ErrBadConfig, c.N)
	}
	if c.Loss < 0 || c.Loss >= 1 {
		return fmt.Errorf("%w: Loss must be in [0,1)", ErrBadConfig)
	}
	if c.CrashFraction < 0 || c.CrashFraction >= 1 {
		return fmt.Errorf("%w: CrashFraction must be in [0,1)", ErrBadConfig)
	}
	if err := c.Faults.Validate(c.N); err != nil {
		return fmt.Errorf("%w: %v", ErrBadConfig, err)
	}
	if c.Workers < 0 {
		return fmt.Errorf("%w: Workers must be >= 0, got %d", ErrBadConfig, c.Workers)
	}
	if c.SampleNodes < AllNodes {
		return fmt.Errorf("%w: SampleNodes must be >= 0 or AllNodes, got %d", ErrBadConfig, c.SampleNodes)
	}
	if c.Deadline < 0 {
		return fmt.Errorf("%w: Deadline must be >= 0, got %v", ErrBadConfig, c.Deadline)
	}
	if c.RoundBudget < 0 {
		return fmt.Errorf("%w: RoundBudget must be >= 0, got %d", ErrBadConfig, c.RoundBudget)
	}
	if c.Retry != nil && c.Retry.Attempts < 1 {
		return fmt.Errorf("%w: RetryPolicy.Attempts must be >= 1, got %d", ErrBadConfig, c.Retry.Attempts)
	}
	switch c.QuantileMethod {
	case QuantileBisect, QuantileHMS:
	default:
		return fmt.Errorf("%w: unknown QuantileMethod %d (want QuantileBisect or QuantileHMS)", ErrBadConfig, int(c.QuantileMethod))
	}
	switch c.Mode {
	case Sync:
		if c.AsyncPeer != "" {
			return fmt.Errorf("%w: AsyncPeer %q set with Mode Sync", ErrBadConfig, c.AsyncPeer)
		}
	case Async:
		if _, err := pairwise.NewSelector(c.AsyncPeer); err != nil {
			return fmt.Errorf("%w: %v", ErrBadConfig, err)
		}
		if c.AsyncPeer == "gge" && c.Topology.isComplete() {
			return fmt.Errorf("%w: AsyncPeer gge needs a sparse Topology (its eavesdrop cache is O(edges))", ErrBadConfig)
		}
		if c.AsyncEps < 0 {
			return fmt.Errorf("%w: AsyncEps must be >= 0, got %v", ErrBadConfig, c.AsyncEps)
		}
	default:
		return fmt.Errorf("%w: unknown Mode %v", ErrBadConfig, c.Mode)
	}
	if c.Topology.isComplete() {
		return nil
	}
	if c.CrashFraction != 0 {
		return fmt.Errorf("%w: topology %s does not support crashes (routing repair out of scope)", ErrBadConfig, c.Topology)
	}
	if err := overlay.Check(c.Topology.spec(), c.N); err != nil {
		return fmt.Errorf("%w: %v", ErrBadConfig, err)
	}
	return nil
}

// checkValues verifies a query's input length against the network size.
func (c Config) checkValues(values []float64) error {
	if len(values) != c.N {
		return fmt.Errorf("%w: %d values for N=%d", ErrBadConfig, len(values), c.N)
	}
	return nil
}

func (c Config) simOptions() sim.Options {
	return sim.Options{Seed: c.Seed, Loss: c.Loss, CrashFrac: c.CrashFraction, Shards: c.Workers}
}

func (c Config) asyncOptions() async.Options {
	return async.Options{Seed: c.Seed, Loss: c.Loss, CrashFrac: c.CrashFraction}
}

func (c Config) engine() *sim.Engine {
	return sim.NewEngine(c.N, c.simOptions())
}

// buildOverlay constructs the configured sparse overlay. Chord honours
// the ChordBits/ChordHashed knobs; everything else builds through the
// registry, seeded by Config.Seed.
func (c Config) buildOverlay() (overlay.Overlay, error) {
	var ov overlay.Overlay
	if c.Topology.name == "chord" {
		placement := chord.Even
		if c.ChordHashed {
			placement = chord.Hashed
		}
		ring, err := chord.New(c.N, chord.Options{Bits: c.ChordBits, Placement: placement, Seed: c.Seed})
		if err != nil {
			return nil, err
		}
		ov = overlay.NewChord(ring)
	} else {
		var err error
		ov, err = overlay.Build(c.Topology.spec(), c.N, c.Seed)
		if err != nil {
			return nil, err
		}
	}
	if c.LegacySliceAdjacency {
		return overlay.Materialize(ov)
	}
	return ov, nil
}

func wrap(eng *sim.Engine, res *core.Result) *Result {
	return &Result{
		Value:      res.Value,
		PerNode:    res.PerNode,
		Consensus:  res.Consensus,
		Rounds:     res.Stats.Rounds,
		Messages:   res.Stats.Messages,
		Drops:      res.Stats.Drops,
		PhaseCosts: phaseCosts(res.Phases),
		Trees:      res.Forest.NumTrees(),
		Alive:      eng.NumAlive(),
	}
}

// phaseCosts renders a core per-phase breakdown as the facade's bill,
// in pipeline execution order. Both pipelines total their Stats from
// exactly these four counters, so the slice sums to the run's
// Rounds/Messages/Drops without adjustment.
func phaseCosts(ph core.PhaseStats) []PhaseCost {
	mk := func(name string, c sim.Counters) PhaseCost {
		return PhaseCost{Phase: name, Rounds: c.Rounds, Messages: c.Messages, Drops: c.Drops, Calls: c.Calls}
	}
	return []PhaseCost{
		mk(core.PhaseDRR, ph.DRR),
		mk(core.PhaseAggregate, ph.Aggregate),
		mk(core.PhaseGossip, ph.Gossip),
		mk(core.PhaseBroadcast, ph.Broadcast),
	}
}

// ParseFaultPlan parses a fault-plan spec string (see internal/faults:
// "crash:0.2@0.5", "churn:0.3:40", "part:2@0.25..0.75;loss:0.2@0.5..0.9",
// …) for Config.Faults. An empty spec or "none" yields the empty plan.
func ParseFaultPlan(text string) (*faults.Plan, error) {
	p, err := faults.Parse(text)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadConfig, err)
	}
	return p, nil
}

// One-shot helpers: the original pre-session entry points, kept as thin
// wrappers that build a single-use Network per call. The single-run
// aggregates (Max..Rank) are pinned bit-identical to their pre-session
// behaviour by the facade goldens, with and without fault plans; the
// two deliberate behaviour changes are called out on Histogram (open
// bucket population under a fault plan) and Moments (fault plans now
// apply). When running more than one aggregate against the same
// configuration (dashboards, Quantile/Histogram-heavy workloads),
// prefer New + the session methods, which amortize validation, overlay
// construction and fault-horizon measurement across queries.

// legacyRun executes one query through a single-use session and renders
// the answer in the pre-session Result shape. The historical contract of
// the one-shot helpers includes a fully materialized PerNode vector, so
// an unset SampleNodes defaults to AllNodes here (explicit values are
// honoured).
func legacyRun(cfg Config, q Query) (*Result, error) {
	if cfg.SampleNodes == 0 {
		cfg.SampleNodes = AllNodes
	}
	nw, err := New(cfg)
	if err != nil {
		return nil, err
	}
	a, err := nw.Run(q)
	if err != nil {
		return nil, err
	}
	return a.result(), nil
}

// Max computes the global maximum with DRR-gossip-max (Algorithm 7).
func Max(cfg Config, values []float64) (*Result, error) {
	return legacyRun(cfg, MaxOf(values))
}

// Min computes the global minimum.
func Min(cfg Config, values []float64) (*Result, error) {
	return legacyRun(cfg, MinOf(values))
}

// Average computes the global average with DRR-gossip-ave (Algorithm 8).
func Average(cfg Config, values []float64) (*Result, error) {
	return legacyRun(cfg, AverageOf(values))
}

// Sum computes the global sum (distinguished-root push-sum; on sparse
// overlays the push-sum shares travel with reliable routed transport).
func Sum(cfg Config, values []float64) (*Result, error) {
	return legacyRun(cfg, SumOf(values))
}

// Count computes the number of surviving nodes.
func Count(cfg Config, values []float64) (*Result, error) {
	return legacyRun(cfg, CountOf(values))
}

// Rank computes Rank(q) = |{alive i : values[i] <= q}|.
func Rank(cfg Config, values []float64, q float64) (*Result, error) {
	return legacyRun(cfg, RankOf(values, q))
}

// HistogramResult reports a distributed histogram computation (the
// legacy view of an OpHistogram Answer).
type HistogramResult struct {
	// Counts[i] is the number of surviving nodes with value in
	// (edges[i], edges[i+1]]; Counts[0] covers (-inf, edges[0]] and
	// Counts[len(edges)] covers (edges[len(edges)-1], +inf).
	Counts []float64
	// Runs, Rounds, Messages and Drops accumulate over the per-edge Rank
	// runs, plus the open-bucket population Count run when a fault plan
	// is active (so Runs is len(edges) without a plan, len(edges)+1
	// with one).
	Runs     int
	Rounds   int
	Messages int64
	Drops    int64
}

// Histogram computes a k+1-bucket histogram of the values with one Rank
// aggregation per bucket edge (edges must be strictly increasing) —
// bounded messages throughout, O(k log n) rounds and O(k n loglog n)
// messages total. The single-use session underneath builds the overlay
// and binds the fault plan once for all edges. With an active fault
// plan the open last bucket's population is measured by an additional
// Count run (billed in Runs) so the buckets stay consistent with the
// Rank counts under mid-run membership changes; the pre-session
// implementation read a static alive count there, which was wrong
// whenever the plan crashed or revived nodes.
func Histogram(cfg Config, values []float64, edges []float64) (*HistogramResult, error) {
	nw, err := New(cfg)
	if err != nil {
		return nil, err
	}
	a, err := nw.Histogram(values, edges)
	if err != nil {
		return nil, err
	}
	return &HistogramResult{
		Counts:   a.Counts,
		Runs:     a.Cost.Runs,
		Rounds:   a.Cost.Rounds,
		Messages: a.Cost.Messages,
		Drops:    a.Cost.Drops,
	}, nil
}

// MomentsResult reports a mean-and-variance computation (the legacy
// view of an OpMoments Answer).
type MomentsResult struct {
	// Mean and Variance are the consensus estimates (population
	// variance); Std = sqrt(max(Variance, 0)).
	Mean, Variance, Std float64
	Consensus           bool
	Rounds              int
	Messages            int64
}

// Moments computes the global mean and variance in a single protocol run
// (a three-component extension of DRR-gossip-ave; Complete topology
// only). Config.Faults now applies to Moments like to every other
// query — the pre-session implementation silently ignored the plan;
// run it without a plan for the old behaviour.
func Moments(cfg Config, values []float64) (*MomentsResult, error) {
	nw, err := New(cfg)
	if err != nil {
		return nil, err
	}
	a, err := nw.Moments(values)
	if err != nil {
		return nil, err
	}
	return &MomentsResult{
		Mean:      a.Mean,
		Variance:  a.Variance,
		Std:       a.Std,
		Consensus: a.Consensus,
		Rounds:    a.Cost.Rounds,
		Messages:  a.Cost.Messages,
	}, nil
}

// QuantileResult reports an approximate quantile computation (the
// legacy view of an OpQuantile Answer).
type QuantileResult struct {
	// Value approximates the φ-quantile within Tolerance of the value
	// range.
	Value float64
	// Runs is the number of full aggregate computations performed
	// (2 for Min/Max + Count + one Rank per bisection step).
	Runs int
	// Rounds, Messages and Drops accumulate over all runs.
	Rounds   int
	Messages int64
	Drops    int64
	// Converged is false when the bisection hit its run cap before
	// reaching the tolerance, so Value is a looser approximation.
	Converged bool
}

// Quantile approximates the φ-quantile (0 < φ <= 1) by bisection over the
// value range, spending one Rank computation per step — the paper's "Rank
// etc." reduction, with O(log(range/tol)) aggregate rounds total. The
// result is within tol of a true φ-quantile value; tol <= 0 picks
// range/2^20. The single-use session underneath builds the overlay and
// binds the fault plan once per operation kind instead of once per
// bisection step.
func Quantile(cfg Config, values []float64, phi, tol float64) (*QuantileResult, error) {
	nw, err := New(cfg)
	if err != nil {
		return nil, err
	}
	a, err := nw.Quantile(values, phi, tol)
	if err != nil {
		return nil, err
	}
	return &QuantileResult{
		Value:     a.Value,
		Runs:      a.Cost.Runs,
		Rounds:    a.Cost.Rounds,
		Messages:  a.Cost.Messages,
		Drops:     a.Cost.Drops,
		Converged: a.Converged,
	}, nil
}

// legacyKinds maps the Exact kind strings to query operations.
var legacyKinds = map[string]Op{
	"min": OpMin, "max": OpMax, "sum": OpSum, "count": OpCount, "average": OpAverage,
}

// Exact returns the reference value of an aggregate over the values that
// survive cfg's crash model — what the protocol should converge to. Kind
// is one of "min", "max", "sum", "count", "average"; it panics on other
// kinds or mismatched input.
//
// Deprecated: Exact panics on bad input. Use ExactOf (or Network.Exact)
// with a typed query instead, which returns an error and additionally
// covers "rank" and "quantile".
func Exact(cfg Config, kind string, values []float64) float64 {
	op, ok := legacyKinds[kind]
	if !ok {
		panic("drrgossip: unknown aggregate kind " + kind)
	}
	v, err := ExactOf(cfg, Query{Op: op, Values: values})
	if err != nil {
		panic(err)
	}
	return v
}
