// Package drrgossip is a Go implementation of "Optimal Gossip-Based
// Aggregate Computation" (Chen & Pandurangan, SPAA 2010): the DRR-gossip
// family of protocols, which compute common aggregates (Min, Max, Sum,
// Count, Average, Rank) over an n-node network in O(log n) rounds using
// O(n log log n) messages — time-optimal and within a log log n factor of
// message-optimal.
//
// The package front-ends a discrete-event reproduction of the paper's
// synchronous random phone call model: each call runs the full
// distributed protocol (distributed random ranking, per-tree convergecast,
// root-level gossip, dissemination) on a simulated network and reports
// the computed aggregate together with the round and message bill.
//
//	res, err := drrgossip.Average(drrgossip.Config{N: 10000, Seed: 1}, values)
//	// res.Value ≈ mean(values); res.Rounds = Θ(log n); res.Messages = Θ(n loglog n)
//
// Baselines from the paper's Table 1 (uniform gossip of Kempe et al.,
// efficient gossip of Kashyap et al.), the sparse-network variant on a
// Chord overlay (Section 4), and the address-oblivious lower-bound
// harness (Section 5) live under internal/ and are exercised by the
// benchmark harness (cmd/benchtab) and the bench suite (bench_test.go).
package drrgossip

import (
	"errors"
	"fmt"
	"math"

	"drrgossip/internal/agg"
	"drrgossip/internal/chord"
	core "drrgossip/internal/drrgossip"
	"drrgossip/internal/sim"
)

// Topology selects the communication substrate.
type Topology int

const (
	// Complete is the paper's main model: any node can call any other
	// (random phone call model).
	Complete Topology = iota
	// Chord runs the Section 4 sparse-network variant on a Chord overlay:
	// Local-DRR over finger links and routed gossip between tree roots.
	Chord
)

// Config describes the simulated network.
type Config struct {
	// N is the number of nodes (>= 2).
	N int
	// Seed makes runs reproducible; equal configs and seeds give
	// identical results.
	Seed uint64
	// Loss is the per-message drop probability δ ∈ [0, 1). The paper's
	// analysis admits δ < 1/8.
	Loss float64
	// CrashFraction crashes this fraction of nodes before the protocol
	// starts (the paper's initial-crash failure model). Aggregates are
	// then computed over the surviving nodes. Not supported on Chord.
	CrashFraction float64
	// Topology selects Complete (default) or Chord.
	Topology Topology
	// ChordBits sets the Chord identifier width (0 = 40).
	ChordBits int
	// ChordHashed places Chord identifiers pseudo-randomly instead of
	// evenly (more realistic, slightly non-uniform sampling).
	ChordHashed bool
}

// Result reports one aggregate computation.
type Result struct {
	// Value is the network's consensus value for the aggregate.
	Value float64
	// PerNode is each node's final value; NaN for crashed nodes.
	PerNode []float64
	// Consensus reports whether all surviving nodes agree exactly.
	Consensus bool
	// Rounds and Messages are the protocol's cost in the paper's model
	// (every transmission attempt counts one message).
	Rounds   int
	Messages int64
	// Drops counts messages lost to link failure.
	Drops int64
	// Trees is the number of DRR trees built in Phase I.
	Trees int
	// Alive is the number of surviving nodes the aggregate ranges over.
	Alive int
}

// ErrBadConfig reports an invalid Config.
var ErrBadConfig = errors.New("drrgossip: invalid config")

func (c Config) validate(values []float64) error {
	if c.N < 2 {
		return fmt.Errorf("%w: N must be >= 2, got %d", ErrBadConfig, c.N)
	}
	if len(values) != c.N {
		return fmt.Errorf("%w: %d values for N=%d", ErrBadConfig, len(values), c.N)
	}
	if c.Loss < 0 || c.Loss >= 1 {
		return fmt.Errorf("%w: Loss must be in [0,1)", ErrBadConfig)
	}
	if c.CrashFraction < 0 || c.CrashFraction >= 1 {
		return fmt.Errorf("%w: CrashFraction must be in [0,1)", ErrBadConfig)
	}
	if c.Topology == Chord && c.CrashFraction != 0 {
		return fmt.Errorf("%w: Chord does not support crashes (routing repair out of scope)", ErrBadConfig)
	}
	if c.Topology != Complete && c.Topology != Chord {
		return fmt.Errorf("%w: unknown topology %d", ErrBadConfig, c.Topology)
	}
	return nil
}

func (c Config) engine() *sim.Engine {
	return sim.NewEngine(c.N, sim.Options{Seed: c.Seed, Loss: c.Loss, CrashFrac: c.CrashFraction})
}

func (c Config) ring() (*chord.Ring, error) {
	placement := chord.Even
	if c.ChordHashed {
		placement = chord.Hashed
	}
	return chord.New(c.N, chord.Options{Bits: c.ChordBits, Placement: placement, Seed: c.Seed})
}

func wrap(eng *sim.Engine, res *core.Result) *Result {
	return &Result{
		Value:     res.Value,
		PerNode:   res.PerNode,
		Consensus: res.Consensus,
		Rounds:    res.Stats.Rounds,
		Messages:  res.Stats.Messages,
		Drops:     res.Stats.Drops,
		Trees:     res.Forest.NumTrees(),
		Alive:     eng.NumAlive(),
	}
}

// run dispatches one aggregate computation per the configured topology.
func (c Config) run(values []float64,
	complete func(*sim.Engine) (*core.Result, error),
	sparse func(*sim.Engine, *chord.Ring) (*core.Result, error),
) (*Result, error) {
	if err := c.validate(values); err != nil {
		return nil, err
	}
	eng := c.engine()
	if c.Topology == Complete {
		res, err := complete(eng)
		if err != nil {
			return nil, err
		}
		return wrap(eng, res), nil
	}
	ring, err := c.ring()
	if err != nil {
		return nil, err
	}
	res, err := sparse(eng, ring)
	if err != nil {
		return nil, err
	}
	return wrap(eng, res), nil
}

// Max computes the global maximum with DRR-gossip-max (Algorithm 7).
func Max(cfg Config, values []float64) (*Result, error) {
	return cfg.run(values,
		func(eng *sim.Engine) (*core.Result, error) {
			return core.Max(eng, values, core.Options{})
		},
		func(eng *sim.Engine, ring *chord.Ring) (*core.Result, error) {
			return core.MaxOnChord(eng, ring, values, core.SparseOptions{})
		})
}

// Min computes the global minimum.
func Min(cfg Config, values []float64) (*Result, error) {
	return cfg.run(values,
		func(eng *sim.Engine) (*core.Result, error) {
			return core.Min(eng, values, core.Options{})
		},
		func(eng *sim.Engine, ring *chord.Ring) (*core.Result, error) {
			neg := make([]float64, len(values))
			for i, v := range values {
				neg[i] = -v
			}
			res, err := core.MaxOnChord(eng, ring, neg, core.SparseOptions{})
			if err != nil {
				return nil, err
			}
			res.Value = -res.Value
			for i := range res.PerNode {
				res.PerNode[i] = -res.PerNode[i]
			}
			return res, nil
		})
}

// Average computes the global average with DRR-gossip-ave (Algorithm 8).
func Average(cfg Config, values []float64) (*Result, error) {
	return cfg.run(values,
		func(eng *sim.Engine) (*core.Result, error) {
			return core.Ave(eng, values, core.Options{})
		},
		func(eng *sim.Engine, ring *chord.Ring) (*core.Result, error) {
			return core.AveOnChord(eng, ring, values, core.SparseOptions{})
		})
}

// Sum computes the global sum (distinguished-root push-sum; Complete
// topology only).
func Sum(cfg Config, values []float64) (*Result, error) {
	if cfg.Topology != Complete {
		return nil, fmt.Errorf("%w: Sum is implemented on the Complete topology", ErrBadConfig)
	}
	return cfg.run(values,
		func(eng *sim.Engine) (*core.Result, error) {
			return core.Sum(eng, values, core.Options{})
		}, nil)
}

// Count computes the number of surviving nodes (Complete topology only).
func Count(cfg Config, values []float64) (*Result, error) {
	if cfg.Topology != Complete {
		return nil, fmt.Errorf("%w: Count is implemented on the Complete topology", ErrBadConfig)
	}
	return cfg.run(values,
		func(eng *sim.Engine) (*core.Result, error) {
			return core.Count(eng, values, core.Options{})
		}, nil)
}

// Rank computes Rank(q) = |{alive i : values[i] <= q}| (Complete topology
// only).
func Rank(cfg Config, values []float64, q float64) (*Result, error) {
	if cfg.Topology != Complete {
		return nil, fmt.Errorf("%w: Rank is implemented on the Complete topology", ErrBadConfig)
	}
	return cfg.run(values,
		func(eng *sim.Engine) (*core.Result, error) {
			return core.Rank(eng, values, q, core.Options{})
		}, nil)
}

// HistogramResult reports a distributed histogram computation.
type HistogramResult struct {
	// Counts[i] is the number of surviving nodes with value in
	// (edges[i], edges[i+1]]; Counts[0] covers (-inf, edges[0]] and
	// Counts[len(edges)] covers (edges[len(edges)-1], +inf).
	Counts []float64
	// Runs, Rounds and Messages accumulate over the per-edge Rank runs.
	Runs     int
	Rounds   int
	Messages int64
}

// Histogram computes a k+1-bucket histogram of the values with one Rank
// aggregation per bucket edge (edges must be strictly increasing) —
// bounded messages throughout, O(k log n) rounds and O(k n loglog n)
// messages total. Complete topology only.
func Histogram(cfg Config, values []float64, edges []float64) (*HistogramResult, error) {
	if cfg.Topology != Complete {
		return nil, fmt.Errorf("%w: Histogram is implemented on the Complete topology", ErrBadConfig)
	}
	if len(edges) == 0 {
		return nil, fmt.Errorf("%w: Histogram needs at least one edge", ErrBadConfig)
	}
	for i := 1; i < len(edges); i++ {
		if edges[i] <= edges[i-1] {
			return nil, fmt.Errorf("%w: histogram edges must be strictly increasing", ErrBadConfig)
		}
	}
	hr := &HistogramResult{Counts: make([]float64, len(edges)+1)}
	cum := make([]float64, len(edges))
	for i, edge := range edges {
		// Every per-edge run uses cfg verbatim: the engine's crash set is
		// derived from the seed, and all steps must count over the same
		// surviving population or the bucket differences become
		// inconsistent.
		res, err := Rank(cfg, values, edge)
		if err != nil {
			return nil, fmt.Errorf("histogram edge %v: %w", edge, err)
		}
		cum[i] = math.Round(res.Value)
		hr.Runs++
		hr.Rounds += res.Rounds
		hr.Messages += res.Messages
	}
	hr.Counts[0] = cum[0]
	for i := 1; i < len(edges); i++ {
		hr.Counts[i] = cum[i] - cum[i-1]
	}
	// Last (open) bucket: alive count minus everything below; take the
	// alive count from the last Rank run's engine configuration.
	alive := float64(cfg.engine().NumAlive())
	hr.Counts[len(edges)] = alive - cum[len(edges)-1]
	return hr, nil
}

// MomentsResult reports a mean-and-variance computation.
type MomentsResult struct {
	// Mean and Variance are the consensus estimates (population
	// variance); Std = sqrt(max(Variance, 0)).
	Mean, Variance, Std float64
	Consensus           bool
	Rounds              int
	Messages            int64
}

// Moments computes the global mean and variance in a single protocol run
// (a three-component extension of DRR-gossip-ave; Complete topology
// only).
func Moments(cfg Config, values []float64) (*MomentsResult, error) {
	if cfg.Topology != Complete {
		return nil, fmt.Errorf("%w: Moments is implemented on the Complete topology", ErrBadConfig)
	}
	if err := cfg.validate(values); err != nil {
		return nil, err
	}
	eng := cfg.engine()
	res, err := core.Moments(eng, values, core.Options{})
	if err != nil {
		return nil, err
	}
	return &MomentsResult{
		Mean:      res.Mean,
		Variance:  res.Variance,
		Std:       res.Std,
		Consensus: res.Consensus,
		Rounds:    res.Stats.Rounds,
		Messages:  res.Stats.Messages,
	}, nil
}

// QuantileResult reports an approximate quantile computation.
type QuantileResult struct {
	// Value approximates the φ-quantile within Tolerance of the value
	// range.
	Value float64
	// Runs is the number of full aggregate computations performed
	// (2 for Min/Max + Count + one Rank per bisection step).
	Runs int
	// Rounds and Messages accumulate over all runs.
	Rounds   int
	Messages int64
}

// Quantile approximates the φ-quantile (0 < φ <= 1) by bisection over the
// value range, spending one Rank computation per step — the paper's "Rank
// etc." reduction, with O(log(range/tol)) aggregate rounds total. The
// result is within tol of a true φ-quantile value; tol <= 0 picks
// range/2^20.
func Quantile(cfg Config, values []float64, phi, tol float64) (*QuantileResult, error) {
	if phi <= 0 || phi > 1 {
		return nil, fmt.Errorf("%w: phi must be in (0,1]", ErrBadConfig)
	}
	if cfg.Topology != Complete {
		return nil, fmt.Errorf("%w: Quantile is implemented on the Complete topology", ErrBadConfig)
	}
	qr := &QuantileResult{}
	// Every step runs with cfg verbatim so all steps see the same crash
	// set (the surviving population the quantile ranges over); repeating
	// the protocol's randomness across steps is harmless.
	step := func(kind string, f func(Config) (*Result, error)) (*Result, error) {
		res, err := f(cfg)
		if err != nil {
			return nil, fmt.Errorf("quantile %s step: %w", kind, err)
		}
		qr.Runs++
		qr.Rounds += res.Rounds
		qr.Messages += res.Messages
		return res, nil
	}
	minRes, err := step("min", func(c Config) (*Result, error) { return Min(c, values) })
	if err != nil {
		return nil, err
	}
	maxRes, err := step("max", func(c Config) (*Result, error) { return Max(c, values) })
	if err != nil {
		return nil, err
	}
	countRes, err := step("count", func(c Config) (*Result, error) { return Count(c, values) })
	if err != nil {
		return nil, err
	}
	target := math.Ceil(phi * math.Round(countRes.Value))
	lo, hi := minRes.Value, maxRes.Value
	if tol <= 0 {
		tol = (hi - lo) / (1 << 20)
	}
	if tol <= 0 { // constant values
		qr.Value = lo
		return qr, nil
	}
	for hi-lo > tol && qr.Runs < 80 {
		mid := lo + (hi-lo)/2
		rankRes, err := step("rank", func(c Config) (*Result, error) { return Rank(c, values, mid) })
		if err != nil {
			return nil, err
		}
		if math.Round(rankRes.Value) >= target {
			hi = mid
		} else {
			lo = mid
		}
	}
	qr.Value = hi
	return qr, nil
}

// Exact returns the reference value of an aggregate over the values that
// survive cfg's crash model — what the protocol should converge to. Kind
// is one of "min", "max", "sum", "count", "average"; it panics on other
// kinds (use Rank/Quantile directly).
func Exact(cfg Config, kind string, values []float64) float64 {
	eng := cfg.engine()
	alive := agg.Subset(values, eng.AliveIDs())
	switch kind {
	case "min":
		return agg.Exact(agg.Min, alive, 0)
	case "max":
		return agg.Exact(agg.Max, alive, 0)
	case "sum":
		return agg.Exact(agg.Sum, alive, 0)
	case "count":
		return agg.Exact(agg.Count, alive, 0)
	case "average":
		return agg.Exact(agg.Average, alive, 0)
	default:
		panic("drrgossip: unknown aggregate kind " + kind)
	}
}
