package drrgossip

import (
	"errors"
	"math"
	"testing"

	"drrgossip/internal/agg"
)

// bothMethods runs a subtest per quantile method so every edge case is
// pinned for the bisection reference and the HMS driver alike.
func bothMethods(t *testing.T, f func(t *testing.T, method QuantileMethod)) {
	t.Helper()
	for _, m := range []QuantileMethod{QuantileBisect, QuantileHMS} {
		t.Run(m.String(), func(t *testing.T) { f(t, m) })
	}
}

func runQuantile(t *testing.T, cfg Config, values []float64, phi, tol float64) *Answer {
	t.Helper()
	nw, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ans, err := nw.Run(QuantileOf(values, phi, tol))
	if err != nil {
		t.Fatal(err)
	}
	return ans
}

// φ = 1/n targets rank 1 — the minimum — and φ = 1 targets rank n, the
// maximum. Both are the extreme targets where HMS's interval pruning is
// most fragile (the boundary duplicate pile IS the answer).
func TestQuantileExtremePhi(t *testing.T) {
	const n = 256
	values := uniformValues(n, 81)
	bothMethods(t, func(t *testing.T, m QuantileMethod) {
		cfg := Config{N: n, Seed: 82, QuantileMethod: m}
		lo := runQuantile(t, cfg, values, 1.0/float64(n), 0.01)
		if want := agg.Exact(agg.Min, values, 0); math.Abs(lo.Value-want) > 0.02 {
			t.Errorf("phi=1/n: got %v, want min %v", lo.Value, want)
		}
		hi := runQuantile(t, cfg, values, 1.0, 0.01)
		if want := agg.Exact(agg.Max, values, 0); math.Abs(hi.Value-want) > 0.02 {
			t.Errorf("phi=1: got %v, want max %v", hi.Value, want)
		}
	})
}

// Duplicate-heavy multisets: only 5 distinct values, so almost every
// rank boundary falls inside a duplicate pile.
func TestQuantileDuplicateHeavy(t *testing.T) {
	const n = 300
	values := make([]float64, n)
	for i := range values {
		values[i] = float64(i % 5)
	}
	bothMethods(t, func(t *testing.T, m QuantileMethod) {
		cfg := Config{N: n, Seed: 83, QuantileMethod: m}
		for _, phi := range []float64{0.01, 0.2, 0.5, 0.8, 1.0} {
			ans := runQuantile(t, cfg, values, phi, 0.01)
			want := agg.Quantile(values, phi)
			if math.Abs(ans.Value-want) > 0.02 {
				t.Errorf("phi=%v: got %v, want %v", phi, ans.Value, want)
			}
		}
	})
}

// All-equal inputs: the quantile is the constant for every φ, and
// Tol <= 0 must not divide-by-zero or loop (range is zero).
func TestQuantileConstantValues(t *testing.T) {
	const n = 128
	values := make([]float64, n)
	for i := range values {
		values[i] = 42.5
	}
	bothMethods(t, func(t *testing.T, m QuantileMethod) {
		cfg := Config{N: n, Seed: 84, QuantileMethod: m}
		for _, phi := range []float64{0.01, 0.5, 1.0} {
			ans := runQuantile(t, cfg, values, phi, 0)
			if ans.Value != 42.5 {
				t.Errorf("phi=%v: got %v, want 42.5", phi, ans.Value)
			}
		}
	})
}

// Tol <= 0 asks for the default resolution: range/2^20. Both methods
// must accept it and return within that implied tolerance (HMS is
// simply exact).
func TestQuantileDefaultResolution(t *testing.T) {
	const n = 256
	values := uniformValues(n, 85)
	want := agg.Quantile(values, 0.5)
	bothMethods(t, func(t *testing.T, m QuantileMethod) {
		cfg := Config{N: n, Seed: 86, QuantileMethod: m}
		ans := runQuantile(t, cfg, values, 0.5, 0)
		if math.Abs(ans.Value-want) > 1000.0/(1<<20)+1e-9 {
			t.Errorf("tol=0: got %v, want %v within default resolution", ans.Value, want)
		}
		if !ans.Converged {
			t.Errorf("tol=0: did not converge")
		}
	})
}

// The facade rejects N < 2 outright — a single node has nobody to
// gossip with — so the smallest population a quantile can run on is 2.
func TestQuantileSmallestPopulation(t *testing.T) {
	if _, err := New(Config{N: 1}); !errors.Is(err, ErrBadConfig) {
		t.Fatalf("N=1 accepted: %v", err)
	}
	values := []float64{7, 3}
	bothMethods(t, func(t *testing.T, m QuantileMethod) {
		cfg := Config{N: 2, Seed: 87, QuantileMethod: m}
		lo := runQuantile(t, cfg, values, 0.5, 0.01)
		if math.Abs(lo.Value-3) > 0.02 {
			t.Errorf("phi=0.5 over {3,7}: got %v, want 3", lo.Value)
		}
		hi := runQuantile(t, cfg, values, 1.0, 0.01)
		if math.Abs(hi.Value-7) > 0.02 {
			t.Errorf("phi=1 over {3,7}: got %v, want 7", hi.Value)
		}
	})
}

// Out-of-range φ must be rejected with ErrBadConfig before any fault
// plan expands or any protocol runs — the regression pinned here is the
// old behavior where Quantile validated φ only after Min/Max/Count had
// already run (and RunAll had already bound fault plans).
func TestQuantilePhiValidation(t *testing.T) {
	const n = 64
	values := uniformValues(n, 88)
	bothMethods(t, func(t *testing.T, m QuantileMethod) {
		cfg := Config{N: n, Seed: 89, QuantileMethod: m}
		nw, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		for _, phi := range []float64{0, -1, 1.5, math.NaN()} {
			ans, err := nw.Run(QuantileOf(values, phi, 1.0))
			if !errors.Is(err, ErrBadConfig) {
				t.Fatalf("phi=%v: want ErrBadConfig, got %v (ans %+v)", phi, err, ans)
			}
		}
		if st := nw.Stats(); st.ProtocolRuns != 0 {
			t.Fatalf("bad phi still spent %d protocol runs", st.ProtocolRuns)
		}
	})
}

// A bad φ inside a RunAll batch must fail the whole batch up front,
// before any fault plan is bound — PlanBinds == 0 is the observable
// guarantee that validation happens pre-expansion.
func TestQuantilePhiValidationBeforeBinding(t *testing.T) {
	const n = 64
	values := uniformValues(n, 88)
	plan, err := ParseFaultPlan("crash:0.2@0.5")
	if err != nil {
		t.Fatal(err)
	}
	bothMethods(t, func(t *testing.T, m QuantileMethod) {
		cfg := Config{N: n, Seed: 89, Faults: plan, QuantileMethod: m}
		nw, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		_, _, err = nw.RunAll([]Query{
			MaxOf(values),
			QuantileOf(values, 2.0, 1.0),
		})
		if !errors.Is(err, ErrBadConfig) {
			t.Fatalf("want ErrBadConfig, got %v", err)
		}
		if st := nw.Stats(); st.PlanBinds != 0 {
			t.Fatalf("bad phi still bound %d fault plans", st.PlanBinds)
		}
		if st := nw.Stats(); st.ProtocolRuns != 0 {
			t.Fatalf("bad phi still spent %d protocol runs", st.ProtocolRuns)
		}
	})
}
