// Package metrics provides summary statistics and complexity-shape fitting
// for the experiment harness.
//
// The paper's claims are asymptotic (e.g. DRR-gossip uses O(n log log n)
// messages while uniform gossip uses O(n log n)). The experiments verify
// such claims by measuring a quantity at several network sizes and asking
// which candidate growth shape c·f(n) explains the measurements best, via
// one-parameter least squares. Absolute constants are reported but never
// asserted; only the winning shape is.
package metrics

import (
	"fmt"
	"math"
	"sort"
)

// Shape is a candidate growth function f(n) for one-parameter fits y ≈ c·f(n).
type Shape struct {
	Name string
	F    func(n float64) float64
}

// log2 returns the base-2 logarithm, the convention used throughout the
// paper (probe budgets of log n − 1, etc.).
func log2(x float64) float64 { return math.Log2(x) }

// Standard candidate shapes. Log-log terms require n ≥ 4 so that
// log2(log2 n) ≥ 1 > 0; the experiments use n ≥ 64.
var (
	ShapeConst    = Shape{"1", func(n float64) float64 { return 1 }}
	ShapeLogLogN  = Shape{"loglog n", func(n float64) float64 { return log2(log2(n)) }}
	ShapeLogN     = Shape{"log n", log2}
	ShapeLogNLogL = Shape{"log n loglog n", func(n float64) float64 { return log2(n) * log2(log2(n)) }}
	ShapeLog2N    = Shape{"log^2 n", func(n float64) float64 { l := log2(n); return l * l }}
	ShapeN        = Shape{"n", func(n float64) float64 { return n }}
	ShapeNLogLogN = Shape{"n loglog n", func(n float64) float64 { return n * log2(log2(n)) }}
	ShapeNLogN    = Shape{"n log n", func(n float64) float64 { return n * log2(n) }}
	ShapeNLog2N   = Shape{"n log^2 n", func(n float64) float64 { l := log2(n); return n * l * l }}
	ShapeN2       = Shape{"n^2", func(n float64) float64 { return n * n }}
	// ShapeNOverLogN is the Theorem 2 tree-count shape.
	ShapeNOverLogN = Shape{"n/log n", func(n float64) float64 { return n / log2(n) }}
)

// TimeShapes are the candidates used when fitting round counts.
var TimeShapes = []Shape{ShapeConst, ShapeLogLogN, ShapeLogN, ShapeLogNLogL, ShapeLog2N}

// MessageShapes are the candidates used when fitting message counts.
var MessageShapes = []Shape{ShapeN, ShapeNLogLogN, ShapeNLogN, ShapeNLog2N, ShapeN2}

// Fit is the result of fitting y ≈ C·f(n) for a single shape.
type Fit struct {
	Shape   Shape
	C       float64 // least-squares constant
	RelRMSE float64 // root mean square of (y - C·f)/y
	R2      float64 // coefficient of determination
}

func (f Fit) String() string {
	return fmt.Sprintf("%.4g * %s (relRMSE %.3f)", f.C, f.Shape.Name, f.RelRMSE)
}

// FitShape fits y ≈ C·f(n) by least squares over the given samples.
// ns and ys must have equal nonzero length and ys must be positive.
func FitShape(ns, ys []float64, s Shape) Fit {
	if len(ns) != len(ys) || len(ns) == 0 {
		panic("metrics: FitShape needs equal-length nonempty samples")
	}
	var sfy, sff float64
	for i := range ns {
		f := s.F(ns[i])
		sfy += f * ys[i]
		sff += f * f
	}
	c := sfy / sff
	var sse, sst, relSq float64
	mean := Mean(ys)
	for i := range ns {
		pred := c * s.F(ns[i])
		d := ys[i] - pred
		sse += d * d
		m := ys[i] - mean
		sst += m * m
		if ys[i] != 0 {
			r := d / ys[i]
			relSq += r * r
		}
	}
	r2 := 1.0
	if sst > 0 {
		r2 = 1 - sse/sst
	}
	return Fit{Shape: s, C: c, RelRMSE: math.Sqrt(relSq / float64(len(ns))), R2: r2}
}

// FitBest fits every candidate shape and returns the fits sorted by
// ascending relative RMSE (best first).
func FitBest(ns, ys []float64, shapes []Shape) []Fit {
	fits := make([]Fit, 0, len(shapes))
	for _, s := range shapes {
		fits = append(fits, FitShape(ns, ys, s))
	}
	sort.Slice(fits, func(i, j int) bool { return fits[i].RelRMSE < fits[j].RelRMSE })
	return fits
}

// BestShape returns the name of the best-fitting shape.
func BestShape(ns, ys []float64, shapes []Shape) string {
	return FitBest(ns, ys, shapes)[0].Shape.Name
}

// AffineFit is the result of fitting y ≈ A + C·f(n) — the form real
// measurements take when protocols add constant round/message overheads
// on top of the asymptotic term.
type AffineFit struct {
	Shape   Shape
	A, C    float64
	RelRMSE float64
	R2      float64
}

func (f AffineFit) String() string {
	return fmt.Sprintf("%.4g + %.4g * %s (relRMSE %.3f)", f.A, f.C, f.Shape.Name, f.RelRMSE)
}

// FitAffine fits y ≈ A + C·f(n) by ordinary least squares.
func FitAffine(ns, ys []float64, s Shape) AffineFit {
	if len(ns) != len(ys) || len(ns) < 2 {
		panic("metrics: FitAffine needs at least two samples")
	}
	fs := make([]float64, len(ns))
	for i, n := range ns {
		fs[i] = s.F(n)
	}
	fMean, yMean := Mean(fs), Mean(ys)
	var cov, varF float64
	for i := range fs {
		cov += (fs[i] - fMean) * (ys[i] - yMean)
		varF += (fs[i] - fMean) * (fs[i] - fMean)
	}
	c := 0.0
	if varF > 0 {
		c = cov / varF
	}
	a := yMean - c*fMean
	var sse, sst, relSq float64
	for i := range ns {
		pred := a + c*fs[i]
		d := ys[i] - pred
		sse += d * d
		m := ys[i] - yMean
		sst += m * m
		if ys[i] != 0 {
			r := d / ys[i]
			relSq += r * r
		}
	}
	r2 := 1.0
	if sst > 0 {
		r2 = 1 - sse/sst
	}
	return AffineFit{Shape: s, A: a, C: c, RelRMSE: math.Sqrt(relSq / float64(len(ns))), R2: r2}
}

// FitAffineBest fits every candidate affinely and sorts by relative RMSE.
func FitAffineBest(ns, ys []float64, shapes []Shape) []AffineFit {
	fits := make([]AffineFit, 0, len(shapes))
	for _, s := range shapes {
		fits = append(fits, FitAffine(ns, ys, s))
	}
	sort.Slice(fits, func(i, j int) bool { return fits[i].RelRMSE < fits[j].RelRMSE })
	return fits
}

// CloserShape reports whether the claimed shape explains the data about
// as well as (or better than) the alternative under affine fitting — the
// form the experiment verdicts use ("messages/n grows like loglog n, not
// log n"). A 25% residual slack keeps the comparison robust on noisy or
// nearly-flat series, where both two-parameter fits are close; a genuine
// shape mismatch over a few doublings of n exceeds the slack easily.
func CloserShape(ns, ys []float64, claimed, alt Shape) bool {
	c := FitAffine(ns, ys, claimed).RelRMSE
	a := FitAffine(ns, ys, alt).RelRMSE
	return c <= a*1.25+1e-12
}

// Mean returns the arithmetic mean of xs. It panics on empty input.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		panic("metrics: Mean of empty slice")
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Std returns the sample standard deviation of xs (0 for fewer than two
// samples).
func Std(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	s := 0.0
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return math.Sqrt(s / float64(len(xs)-1))
}

// MinMax returns the minimum and maximum of xs. It panics on empty input.
func MinMax(xs []float64) (lo, hi float64) {
	if len(xs) == 0 {
		panic("metrics: MinMax of empty slice")
	}
	lo, hi = xs[0], xs[0]
	for _, x := range xs[1:] {
		if x < lo {
			lo = x
		}
		if x > hi {
			hi = x
		}
	}
	return lo, hi
}

// Quantile returns the q-quantile (0 ≤ q ≤ 1) of xs using linear
// interpolation between order statistics. It panics on empty input.
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		panic("metrics: Quantile of empty slice")
	}
	if q < 0 || q > 1 {
		panic("metrics: quantile out of [0,1]")
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	pos := q * float64(len(s)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return s[lo]
	}
	frac := pos - float64(lo)
	return s[lo]*(1-frac) + s[hi]*frac
}

// Median returns the 0.5-quantile.
func Median(xs []float64) float64 { return Quantile(xs, 0.5) }

// Ratio pairs two measured series and returns ys[i]/xs[i] elementwise.
func Ratio(ys, xs []float64) []float64 {
	if len(ys) != len(xs) {
		panic("metrics: Ratio length mismatch")
	}
	r := make([]float64, len(ys))
	for i := range ys {
		r[i] = ys[i] / xs[i]
	}
	return r
}
