package metrics

import (
	"math"
	"testing"

	"drrgossip/internal/xrand"
)

var testSizes = []float64{64, 128, 256, 512, 1024, 2048, 4096, 8192, 16384}

// planted generates y = c*f(n)*(1+noise) and checks the fitter recovers the
// planted shape against the given competitors.
func checkPlanted(t *testing.T, c float64, planted Shape, competitors []Shape, noise float64) {
	t.Helper()
	rng := xrand.New(123)
	ys := make([]float64, len(testSizes))
	for i, n := range testSizes {
		ys[i] = c * planted.F(n) * (1 + noise*(2*rng.Float64()-1))
	}
	fits := FitBest(testSizes, ys, competitors)
	if fits[0].Shape.Name != planted.Name {
		t.Fatalf("planted %q, best fit %q (fits: %v)", planted.Name, fits[0].Shape.Name, fits)
	}
	if math.Abs(fits[0].C-c)/c > 0.2 {
		t.Fatalf("planted constant %v, recovered %v", c, fits[0].C)
	}
}

func TestFitRecoversNLogLogN(t *testing.T) {
	checkPlanted(t, 3.5, ShapeNLogLogN, MessageShapes, 0.05)
}

func TestFitRecoversNLogN(t *testing.T) {
	checkPlanted(t, 2.0, ShapeNLogN, MessageShapes, 0.05)
}

func TestFitRecoversLogN(t *testing.T) {
	checkPlanted(t, 7.0, ShapeLogN, TimeShapes, 0.05)
}

func TestFitRecoversLogNLogLogN(t *testing.T) {
	checkPlanted(t, 4.0, ShapeLogNLogL, TimeShapes, 0.03)
}

func TestFitRecoversLog2N(t *testing.T) {
	checkPlanted(t, 1.5, ShapeLog2N, TimeShapes, 0.03)
}

func TestFitExact(t *testing.T) {
	ns := []float64{100, 200, 400}
	ys := []float64{500, 1000, 2000} // y = 5n
	f := FitShape(ns, ys, ShapeN)
	if math.Abs(f.C-5) > 1e-9 {
		t.Fatalf("C = %v, want 5", f.C)
	}
	if f.RelRMSE > 1e-12 {
		t.Fatalf("RelRMSE = %v for exact fit", f.RelRMSE)
	}
	if math.Abs(f.R2-1) > 1e-12 {
		t.Fatalf("R2 = %v for exact fit", f.R2)
	}
}

func TestFitShapePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("mismatched lengths did not panic")
		}
	}()
	FitShape([]float64{1}, []float64{1, 2}, ShapeN)
}

func TestMeanStd(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if m := Mean(xs); m != 5 {
		t.Fatalf("Mean = %v, want 5", m)
	}
	if s := Std(xs); math.Abs(s-2.138089935) > 1e-6 {
		t.Fatalf("Std = %v", s)
	}
	if Std([]float64{3}) != 0 {
		t.Fatal("Std of single sample should be 0")
	}
}

func TestMinMax(t *testing.T) {
	lo, hi := MinMax([]float64{3, -1, 7, 2})
	if lo != -1 || hi != 7 {
		t.Fatalf("MinMax = %v,%v", lo, hi)
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	cases := []struct{ q, want float64 }{
		{0, 1}, {0.25, 2}, {0.5, 3}, {0.75, 4}, {1, 5},
	}
	for _, c := range cases {
		if got := Quantile(xs, c.q); math.Abs(got-c.want) > 1e-12 {
			t.Fatalf("Quantile(%v) = %v, want %v", c.q, got, c.want)
		}
	}
	// Interpolation between order statistics.
	if got := Quantile([]float64{10, 20}, 0.5); got != 15 {
		t.Fatalf("interpolated median = %v, want 15", got)
	}
	// Input must not be mutated.
	in := []float64{5, 1, 3}
	Quantile(in, 0.5)
	if in[0] != 5 || in[1] != 1 || in[2] != 3 {
		t.Fatal("Quantile mutated its input")
	}
}

func TestMedian(t *testing.T) {
	if m := Median([]float64{9, 1, 5}); m != 5 {
		t.Fatalf("Median = %v", m)
	}
}

func TestRatio(t *testing.T) {
	r := Ratio([]float64{10, 20}, []float64{2, 5})
	if r[0] != 5 || r[1] != 4 {
		t.Fatalf("Ratio = %v", r)
	}
}

func TestBestShape(t *testing.T) {
	ys := make([]float64, len(testSizes))
	for i, n := range testSizes {
		ys[i] = 2 * n * math.Log2(n)
	}
	if got := BestShape(testSizes, ys, MessageShapes); got != "n log n" {
		t.Fatalf("BestShape = %q", got)
	}
}

// Property-style check: for any positive constant, fitting the noiseless
// planted shape yields RelRMSE near zero while a strictly faster-growing
// competitor fits worse.
func TestShapeSeparation(t *testing.T) {
	pairs := []struct{ slow, fast Shape }{
		{ShapeLogLogN, ShapeLogN},
		{ShapeLogN, ShapeLog2N},
		{ShapeNLogLogN, ShapeNLogN},
		{ShapeNLogN, ShapeNLog2N},
	}
	for _, p := range pairs {
		ys := make([]float64, len(testSizes))
		for i, n := range testSizes {
			ys[i] = 2.7 * p.slow.F(n)
		}
		slowFit := FitShape(testSizes, ys, p.slow)
		fastFit := FitShape(testSizes, ys, p.fast)
		if slowFit.RelRMSE >= fastFit.RelRMSE {
			t.Fatalf("%s data: slow fit %v not better than fast fit %v",
				p.slow.Name, slowFit.RelRMSE, fastFit.RelRMSE)
		}
	}
}

func TestFitAffineExact(t *testing.T) {
	// y = 7 + 3 log n recovered exactly.
	ns := []float64{256, 1024, 4096, 16384}
	ys := make([]float64, len(ns))
	for i, n := range ns {
		ys[i] = 7 + 3*math.Log2(n)
	}
	f := FitAffine(ns, ys, ShapeLogN)
	if math.Abs(f.A-7) > 1e-9 || math.Abs(f.C-3) > 1e-9 {
		t.Fatalf("affine fit = %v", f)
	}
	if f.RelRMSE > 1e-12 {
		t.Fatalf("RelRMSE = %v for exact affine fit", f.RelRMSE)
	}
}

func TestFitAffineDiscriminatesWithIntercept(t *testing.T) {
	// y = 50 + 2 loglog n: a pure one-parameter fit against log n could
	// win on such data, but the affine fit must pick loglog n.
	ns := testSizes
	ys := make([]float64, len(ns))
	for i, n := range ns {
		ys[i] = 50 + 2*math.Log2(math.Log2(n))
	}
	best := FitAffineBest(ns, ys, TimeShapes)
	if best[0].Shape.Name != "loglog n" {
		t.Fatalf("best affine fit = %v", best[0])
	}
	if !CloserShape(ns, ys, ShapeLogLogN, ShapeLogN) {
		t.Fatal("CloserShape failed to prefer loglog n")
	}
}

func TestFitAffineBestOrdering(t *testing.T) {
	ns := testSizes
	ys := make([]float64, len(ns))
	for i, n := range ns {
		ys[i] = 100 + 0.5*n*math.Log2(n)
	}
	fits := FitAffineBest(ns, ys, MessageShapes)
	for i := 1; i < len(fits); i++ {
		if fits[i-1].RelRMSE > fits[i].RelRMSE {
			t.Fatal("FitAffineBest not sorted")
		}
	}
	if fits[0].Shape.Name != "n log n" {
		t.Fatalf("best = %v", fits[0])
	}
}

func TestShapeNOverLogN(t *testing.T) {
	if v := ShapeNOverLogN.F(1024); math.Abs(v-102.4) > 1e-9 {
		t.Fatalf("n/log n at 1024 = %v", v)
	}
}

func TestFitAffinePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("single sample accepted")
		}
	}()
	FitAffine([]float64{1}, []float64{1}, ShapeN)
}
