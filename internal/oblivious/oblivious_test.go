package oblivious

import (
	"math"
	"testing"
)

func TestPushPullCompletes(t *testing.T) {
	res, err := Run(1024, Options{Protocol: PushPull, Seed: 131})
	if err != nil {
		t.Fatal(err)
	}
	if res.RoundsAll < 0 {
		t.Fatal("push-pull never completed")
	}
	if res.RoundsHalf < 0 || res.RoundsHalf > res.RoundsAll {
		t.Fatalf("half point %d inconsistent with all point %d", res.RoundsHalf, res.RoundsAll)
	}
	if res.MessagesHalf > res.MessagesAll {
		t.Fatal("message counters inconsistent")
	}
}

func TestRoundsLogarithmic(t *testing.T) {
	for _, n := range []int{512, 4096} {
		res, err := Run(n, Options{Protocol: PushPull, Seed: 132})
		if err != nil {
			t.Fatal(err)
		}
		logn := math.Log2(float64(n))
		if float64(res.RoundsAll) > 4*logn {
			t.Fatalf("n=%d: %d rounds > 4 log n", n, res.RoundsAll)
		}
	}
}

func TestMessagesThetaNLogN(t *testing.T) {
	// The Theorem 15 criterion costs Θ(n log n) messages even for the
	// best oblivious protocol: messages per node must track log n (within
	// constants) and must GROW by ~Θ(1) per doubling of n.
	perNode := func(n int) float64 {
		res, err := Run(n, Options{Protocol: PushPull, Seed: 133})
		if err != nil {
			t.Fatal(err)
		}
		if res.RoundsHalf < 0 {
			t.Fatalf("n=%d never reached half criterion", n)
		}
		return float64(res.MessagesHalf) / float64(n)
	}
	p1 := perNode(1024)
	p2 := perNode(8192)
	logRatio := math.Log2(8192.0) / math.Log2(1024.0) // 1.3
	growth := p2 / p1
	if growth < 1.05 {
		t.Fatalf("messages/node flat (%v -> %v); expected log n growth", p1, p2)
	}
	if growth > 1.8*logRatio {
		t.Fatalf("messages/node grew %vx, far beyond log n shape", growth)
	}
	// Absolute envelope: within constants of n log n.
	if p2 < math.Log2(8192)/2 || p2 > 8*math.Log2(8192) {
		t.Fatalf("messages/node %v out of Θ(log n) envelope", p2)
	}
}

func TestPushSlowerThanPushPull(t *testing.T) {
	push, err := Run(1024, Options{Protocol: Push, Seed: 134})
	if err != nil {
		t.Fatal(err)
	}
	pp, err := Run(1024, Options{Protocol: PushPull, Seed: 134})
	if err != nil {
		t.Fatal(err)
	}
	if push.RoundsAll > 0 && pp.RoundsAll > 0 && push.RoundsAll < pp.RoundsAll {
		t.Fatalf("push (%d rounds) beat push-pull (%d rounds)", push.RoundsAll, pp.RoundsAll)
	}
}

func TestPullCompletes(t *testing.T) {
	res, err := Run(512, Options{Protocol: Pull, Seed: 135})
	if err != nil {
		t.Fatal(err)
	}
	if res.RoundsAll < 0 {
		t.Fatal("pull never completed")
	}
}

func TestUnderLoss(t *testing.T) {
	res, err := Run(1024, Options{Protocol: PushPull, Seed: 136, Loss: 0.125})
	if err != nil {
		t.Fatal(err)
	}
	if res.RoundsAll < 0 {
		t.Fatal("push-pull under loss never completed")
	}
	lossless, err := Run(1024, Options{Protocol: PushPull, Seed: 136})
	if err != nil {
		t.Fatal(err)
	}
	if res.RoundsAll < lossless.RoundsAll {
		t.Fatalf("loss accelerated completion: %d < %d", res.RoundsAll, lossless.RoundsAll)
	}
}

func TestDeterminism(t *testing.T) {
	a, err := Run(512, Options{Protocol: PushPull, Seed: 137})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(512, Options{Protocol: PushPull, Seed: 137})
	if err != nil {
		t.Fatal(err)
	}
	if a.Messages != b.Messages || a.RoundsAll != b.RoundsAll {
		t.Fatal("nondeterministic run")
	}
}

func TestValidation(t *testing.T) {
	if _, err := Run(1, Options{}); err == nil {
		t.Fatal("n=1 accepted")
	}
	if _, err := Run(10, Options{Loss: 1.0}); err == nil {
		t.Fatal("loss=1 accepted")
	}
}

func TestProtocolString(t *testing.T) {
	if Push.String() != "push" || Pull.String() != "pull" || PushPull.String() != "push-pull" {
		t.Fatal("protocol names wrong")
	}
}

func BenchmarkPushPull(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := Run(2048, Options{Protocol: PushPull, Seed: uint64(i)}); err != nil {
			b.Fatal(err)
		}
	}
}
