// Package oblivious is the experimental harness for Theorem 15: any
// address-oblivious algorithm computing an aggregate (e.g. Max) needs
// Ω(n log n) messages, regardless of round count or message size.
//
// The harness implements the theorem's adversary criterion exactly: a
// node can be sure of the maximum only once it knows every node's value,
// directly or indirectly (otherwise the adversary places the maximum at a
// node it has not heard about). Knowledge is tracked as one bitset per
// node; messages may carry the sender's entire knowledge set (the theorem
// allows arbitrarily long messages) and each transfer costs one message.
//
// Running the best address-oblivious strategies (uniform push, pull and
// push-pull, the Kempe-style protocols) against this criterion measures
// Θ(n log n) messages to make even half the nodes certain — matching the
// lower bound and exhibiting the separation from non-address-oblivious
// DRR-gossip (Θ(n log log n)) and from single-rumor spreading
// (Θ(n log log n), internal/karp): computing aggregates is strictly
// harder than rumor spreading in the address-oblivious model.
package oblivious

import (
	"fmt"
	"math"

	"drrgossip/internal/bitset"
	"drrgossip/internal/xrand"
)

// Protocol selects the address-oblivious gossip strategy.
type Protocol int

const (
	// Push: every node sends its knowledge to a random node each round.
	Push Protocol = iota
	// Pull: every node asks a random node for its knowledge each round;
	// only the response carrying knowledge is charged.
	Pull
	// PushPull: both directions of each random call carry knowledge.
	PushPull
)

// String names the protocol.
func (p Protocol) String() string {
	switch p {
	case Push:
		return "push"
	case Pull:
		return "pull"
	case PushPull:
		return "push-pull"
	default:
		return fmt.Sprintf("Protocol(%d)", int(p))
	}
}

// Options configure a knowledge-spreading run.
type Options struct {
	Protocol  Protocol
	MaxRounds int     // 0 = 8 log2 n + 40
	Loss      float64 // per-message drop probability
	Seed      uint64
}

// Result reports when the adversary criterion was met.
type Result struct {
	N        int
	Protocol Protocol
	// RoundsHalf/MessagesHalf: first round (and messages so far) at which
	// at least half the nodes knew every value — the criterion of the
	// Theorem 15 proof. -1 if never reached.
	RoundsHalf   int
	MessagesHalf int64
	// RoundsAll/MessagesAll: same for all nodes knowing every value.
	RoundsAll   int
	MessagesAll int64
	// Totals at stop.
	Rounds   int
	Messages int64
}

// Run executes the chosen protocol on n nodes until every node knows
// every value or the round budget is exhausted.
func Run(n int, opts Options) (*Result, error) {
	if n < 2 {
		return nil, fmt.Errorf("oblivious: need n >= 2, got %d", n)
	}
	if opts.Loss < 0 || opts.Loss >= 1 {
		return nil, fmt.Errorf("oblivious: loss must be in [0,1)")
	}
	maxRounds := opts.MaxRounds
	if maxRounds == 0 {
		maxRounds = 8*int(math.Ceil(math.Log2(float64(n)))) + 40
	}

	cur := make([]*bitset.Set, n)
	next := make([]*bitset.Set, n)
	rngs := make([]*xrand.Stream, n)
	for i := 0; i < n; i++ {
		cur[i] = bitset.New(n)
		cur[i].Set(i)
		next[i] = bitset.New(n)
		rngs[i] = xrand.Derive(opts.Seed, 0x0B11, uint64(i))
	}
	res := &Result{N: n, Protocol: opts.Protocol, RoundsHalf: -1, RoundsAll: -1}
	var seq uint64
	deliver := func() bool {
		seq++
		res.Messages++
		return opts.Loss == 0 || xrand.HashFloat(opts.Seed, 0x0B12, seq) >= opts.Loss
	}

	for round := 1; round <= maxRounds; round++ {
		// Synchronous semantics: all transfers read the round-start
		// knowledge (cur) and accumulate into next.
		for i := 0; i < n; i++ {
			next[i].Reset()
			next[i].UnionWith(cur[i])
		}
		for i := 0; i < n; i++ {
			partner := rngs[i].IntnOther(n, i)
			switch opts.Protocol {
			case Push:
				if deliver() {
					next[partner].UnionWith(cur[i])
				}
			case Pull:
				// The request carries no knowledge (free); the response
				// does (one message).
				if deliver() {
					next[i].UnionWith(cur[partner])
				}
			case PushPull:
				if deliver() {
					next[partner].UnionWith(cur[i])
				}
				if deliver() {
					next[i].UnionWith(cur[partner])
				}
			default:
				return nil, fmt.Errorf("oblivious: unknown protocol %d", opts.Protocol)
			}
		}
		cur, next = next, cur
		res.Rounds = round

		full := 0
		for i := 0; i < n; i++ {
			if cur[i].Full() {
				full++
			}
		}
		if res.RoundsHalf < 0 && full*2 >= n {
			res.RoundsHalf = round
			res.MessagesHalf = res.Messages
		}
		if full == n {
			res.RoundsAll = round
			res.MessagesAll = res.Messages
			break
		}
	}
	return res, nil
}
