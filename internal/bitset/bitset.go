// Package bitset implements a dense, fixed-capacity bitset.
//
// The lower-bound experiments of Theorem 15 track, for every node, the set
// of node values it has learned (directly or indirectly). With n nodes this
// needs n sets of n bits with fast union — exactly what a dense bitset is
// for.
package bitset

import "math/bits"

const wordBits = 64

// Set is a fixed-capacity bitset. The zero value is unusable; create Sets
// with New.
type Set struct {
	n     int
	words []uint64
}

// New returns a Set with capacity for n bits, all cleared.
func New(n int) *Set {
	if n < 0 {
		panic("bitset: negative size")
	}
	return &Set{n: n, words: make([]uint64, (n+wordBits-1)/wordBits)}
}

// Len returns the capacity in bits.
func (s *Set) Len() int { return s.n }

// Set sets bit i.
func (s *Set) Set(i int) {
	s.check(i)
	s.words[i/wordBits] |= 1 << uint(i%wordBits)
}

// Clear clears bit i.
func (s *Set) Clear(i int) {
	s.check(i)
	s.words[i/wordBits] &^= 1 << uint(i%wordBits)
}

// Test reports whether bit i is set.
func (s *Set) Test(i int) bool {
	s.check(i)
	return s.words[i/wordBits]&(1<<uint(i%wordBits)) != 0
}

// Count returns the number of set bits.
func (s *Set) Count() int {
	c := 0
	for _, w := range s.words {
		c += bits.OnesCount64(w)
	}
	return c
}

// Full reports whether every bit in [0, Len) is set.
func (s *Set) Full() bool { return s.Count() == s.n }

// Fill sets every bit in [0, Len). Bits beyond Len stay clear, so Count
// and Full remain exact.
func (s *Set) Fill() {
	for i := range s.words {
		s.words[i] = ^uint64(0)
	}
	if tail := s.n % wordBits; tail != 0 && len(s.words) > 0 {
		s.words[len(s.words)-1] = (uint64(1) << uint(tail)) - 1
	}
}

// UnionWith ors other into s. Both sets must have the same capacity.
func (s *Set) UnionWith(other *Set) {
	if other.n != s.n {
		panic("bitset: capacity mismatch in UnionWith")
	}
	for i, w := range other.words {
		s.words[i] |= w
	}
}

// IntersectWith ands other into s. Both sets must have the same capacity.
func (s *Set) IntersectWith(other *Set) {
	if other.n != s.n {
		panic("bitset: capacity mismatch in IntersectWith")
	}
	for i, w := range other.words {
		s.words[i] &= w
	}
}

// Equal reports whether s and other contain exactly the same bits.
func (s *Set) Equal(other *Set) bool {
	if other.n != s.n {
		return false
	}
	for i, w := range other.words {
		if s.words[i] != w {
			return false
		}
	}
	return true
}

// Clone returns an independent copy of s.
func (s *Set) Clone() *Set {
	c := New(s.n)
	copy(c.words, s.words)
	return c
}

// Reset clears every bit.
func (s *Set) Reset() {
	for i := range s.words {
		s.words[i] = 0
	}
}

// ForEach calls fn for every set bit in increasing order.
func (s *Set) ForEach(fn func(i int)) {
	for wi, w := range s.words {
		for w != 0 {
			b := bits.TrailingZeros64(w)
			fn(wi*wordBits + b)
			w &= w - 1
		}
	}
}

func (s *Set) check(i int) {
	if i < 0 || i >= s.n {
		panic("bitset: index out of range")
	}
}
