package bitset

import (
	"testing"
	"testing/quick"

	"drrgossip/internal/xrand"
)

func TestSetTestClear(t *testing.T) {
	s := New(130)
	for _, i := range []int{0, 1, 63, 64, 65, 127, 128, 129} {
		if s.Test(i) {
			t.Fatalf("bit %d set in fresh set", i)
		}
		s.Set(i)
		if !s.Test(i) {
			t.Fatalf("bit %d not set after Set", i)
		}
		s.Clear(i)
		if s.Test(i) {
			t.Fatalf("bit %d set after Clear", i)
		}
	}
}

func TestCountAndFull(t *testing.T) {
	s := New(100)
	if s.Count() != 0 {
		t.Fatalf("fresh set Count = %d", s.Count())
	}
	for i := 0; i < 100; i++ {
		s.Set(i)
		if s.Count() != i+1 {
			t.Fatalf("Count = %d after %d sets", s.Count(), i+1)
		}
	}
	if !s.Full() {
		t.Fatal("set with all bits not Full")
	}
	s.Clear(42)
	if s.Full() {
		t.Fatal("set missing a bit reported Full")
	}
}

func TestUnionWith(t *testing.T) {
	a := New(200)
	b := New(200)
	a.Set(3)
	a.Set(150)
	b.Set(7)
	b.Set(150)
	a.UnionWith(b)
	for _, i := range []int{3, 7, 150} {
		if !a.Test(i) {
			t.Fatalf("bit %d missing after union", i)
		}
	}
	if a.Count() != 3 {
		t.Fatalf("union Count = %d, want 3", a.Count())
	}
	if b.Count() != 2 {
		t.Fatal("UnionWith mutated its argument")
	}
}

func TestIntersectWith(t *testing.T) {
	a := New(70)
	b := New(70)
	a.Set(1)
	a.Set(65)
	a.Set(5)
	b.Set(65)
	b.Set(5)
	b.Set(9)
	a.IntersectWith(b)
	if a.Count() != 2 || !a.Test(5) || !a.Test(65) {
		t.Fatalf("intersection wrong: count=%d", a.Count())
	}
}

func TestCloneIndependent(t *testing.T) {
	a := New(64)
	a.Set(10)
	c := a.Clone()
	if !c.Equal(a) {
		t.Fatal("clone not equal to original")
	}
	c.Set(20)
	if a.Test(20) {
		t.Fatal("mutating clone affected original")
	}
}

func TestResetAndEqual(t *testing.T) {
	a := New(90)
	a.Set(0)
	a.Set(89)
	a.Reset()
	if a.Count() != 0 {
		t.Fatal("Reset left bits set")
	}
	if a.Equal(New(91)) {
		t.Fatal("Equal across different capacities")
	}
	if !a.Equal(New(90)) {
		t.Fatal("two empty same-capacity sets not Equal")
	}
}

func TestForEachOrder(t *testing.T) {
	s := New(300)
	want := []int{0, 5, 63, 64, 128, 299}
	for _, i := range want {
		s.Set(i)
	}
	var got []int
	s.ForEach(func(i int) { got = append(got, i) })
	if len(got) != len(want) {
		t.Fatalf("ForEach visited %d bits, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ForEach order: got %v want %v", got, want)
		}
	}
}

func TestOutOfRangePanics(t *testing.T) {
	s := New(10)
	for _, fn := range []func(){
		func() { s.Set(10) },
		func() { s.Test(-1) },
		func() { s.Clear(11) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("out-of-range access did not panic")
				}
			}()
			fn()
		}()
	}
}

// Property: union is commutative, associative and idempotent; count of the
// union is at least the max of the counts.
func TestUnionProperties(t *testing.T) {
	f := func(seedA, seedB uint32) bool {
		const n = 257
		a, b := New(n), New(n)
		sa := xrand.Derive(uint64(seedA), 1)
		sb := xrand.Derive(uint64(seedB), 2)
		for i := 0; i < 50; i++ {
			a.Set(sa.Intn(n))
			b.Set(sb.Intn(n))
		}
		ab := a.Clone()
		ab.UnionWith(b)
		ba := b.Clone()
		ba.UnionWith(a)
		if !ab.Equal(ba) {
			return false
		}
		// idempotent
		ab2 := ab.Clone()
		ab2.UnionWith(ab)
		if !ab2.Equal(ab) {
			return false
		}
		if ab.Count() < a.Count() || ab.Count() < b.Count() {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: Count equals number of distinct indices set.
func TestCountMatchesDistinct(t *testing.T) {
	f := func(seed uint32) bool {
		const n = 513
		s := New(n)
		rng := xrand.Derive(uint64(seed), 3)
		distinct := make(map[int]bool)
		for i := 0; i < 100; i++ {
			k := rng.Intn(n)
			s.Set(k)
			distinct[k] = true
		}
		return s.Count() == len(distinct)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestNewNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New(-1) did not panic")
		}
	}()
	New(-1)
}

func BenchmarkUnionWith(b *testing.B) {
	a := New(8192)
	c := New(8192)
	for i := 0; i < 8192; i += 3 {
		c.Set(i)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a.UnionWith(c)
	}
}
