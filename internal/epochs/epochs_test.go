package epochs

import (
	"errors"
	"math"
	"testing"

	"drrgossip/internal/faults"
)

func TestMonitoringLoop(t *testing.T) {
	res, err := Run(Options{N: 1024, Epochs: 5, Seed: 161, Drift: RandomWalkDrift(2)})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Epochs) != 5 {
		t.Fatalf("ran %d epochs", len(res.Epochs))
	}
	for _, e := range res.Epochs {
		if e.RelErr > 1e-6 {
			t.Fatalf("epoch %d rel err %v (lossless must be near-exact)", e.Index, e.RelErr)
		}
		if e.Alive != 1024 || e.Messages == 0 || e.Rounds == 0 {
			t.Fatalf("epoch %d accounting off: %+v", e.Index, e)
		}
	}
	if res.TotalMessages == 0 || res.TotalRounds == 0 {
		t.Fatal("totals not accumulated")
	}
}

func TestStalenessReflectsDrift(t *testing.T) {
	// With strong drift, the previous epoch's answer must be measurably
	// staler than the fresh one; with no drift, staleness ~ 0.
	driftRes, err := Run(Options{N: 512, Epochs: 6, Seed: 162, Drift: RandomWalkDrift(20)})
	if err != nil {
		t.Fatal(err)
	}
	stillRes, err := Run(Options{N: 512, Epochs: 6, Seed: 162})
	if err != nil {
		t.Fatal(err)
	}
	if driftRes.MeanStaleness() <= stillRes.MeanStaleness() {
		t.Fatalf("drift staleness %v <= no-drift staleness %v",
			driftRes.MeanStaleness(), stillRes.MeanStaleness())
	}
	if stillRes.MeanStaleness() > 1e-6 {
		t.Fatalf("no-drift staleness %v should be ~0", stillRes.MeanStaleness())
	}
}

func TestChurnBetweenEpochs(t *testing.T) {
	// Fresh crash sets per epoch: the protocol restarts from scratch, so
	// churn between epochs cannot break anything.
	res, err := Run(Options{N: 1024, Epochs: 4, Seed: 163, CrashFrac: 0.2, Loss: 0.05, Drift: RandomWalkDrift(1)})
	if err != nil {
		t.Fatal(err)
	}
	aliveSets := map[int]bool{}
	for _, e := range res.Epochs {
		if e.RelErr > 0.05 {
			t.Fatalf("epoch %d rel err %v under churn", e.Index, e.RelErr)
		}
		aliveSets[e.Alive] = true
	}
	if len(aliveSets) < 2 {
		t.Fatal("crash churn did not vary the alive set")
	}
}

func TestValidation(t *testing.T) {
	if _, err := Run(Options{N: 1, Epochs: 1}); err == nil {
		t.Fatal("N=1 accepted")
	}
	if _, err := Run(Options{N: 10, Epochs: 0}); err == nil {
		t.Fatal("Epochs=0 accepted")
	}
	if _, err := Run(Options{N: 10, Epochs: -3}); err == nil {
		t.Fatal("negative Epochs accepted")
	}
	bad := &faults.Plan{Events: []faults.Event{{Kind: faults.Crash, Nodes: []int{99}}}}
	if _, err := Run(Options{N: 10, Epochs: 1, Faults: bad}); !errors.Is(err, ErrBadOptions) {
		t.Fatal("invalid fault plan accepted")
	}
}

// CrashFrac at the boundaries: 0 crashes no one; a fraction so high the
// engine's keep-one-alive guard kicks in must still aggregate (over the
// single survivor) rather than wedge or divide by zero.
func TestCrashFracBoundaries(t *testing.T) {
	zero, err := Run(Options{N: 64, Epochs: 2, Seed: 170})
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range zero.Epochs {
		if e.Alive != 64 || e.RelErr > 1e-6 {
			t.Fatalf("CrashFrac=0 epoch %d: %+v", e.Index, e)
		}
	}
	nearTotal, err := Run(Options{N: 64, Epochs: 2, Seed: 171, CrashFrac: 0.999999})
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range nearTotal.Epochs {
		if e.Alive < 1 {
			t.Fatalf("epoch %d: no survivors", e.Index)
		}
		if math.IsNaN(e.Estimate) || e.RelErr > 1e-6 {
			t.Fatalf("epoch %d over %d survivor(s): estimate %v (rel err %v)",
				e.Index, e.Alive, e.Estimate, e.RelErr)
		}
	}
}

// Drift that leaves values constant (step 0) must behave exactly like no
// drift at all: zero staleness, identical estimates across epochs.
func TestZeroStepDriftIsConstant(t *testing.T) {
	constant, err := Run(Options{N: 256, Epochs: 4, Seed: 172, Drift: RandomWalkDrift(0)})
	if err != nil {
		t.Fatal(err)
	}
	none, err := Run(Options{N: 256, Epochs: 4, Seed: 172})
	if err != nil {
		t.Fatal(err)
	}
	for i := range constant.Epochs {
		if constant.Epochs[i].Exact != none.Epochs[i].Exact {
			t.Fatalf("epoch %d: zero-step drift changed the exact value", i)
		}
	}
	if constant.MeanStaleness() > 1e-6 {
		t.Fatalf("constant values but staleness %v", constant.MeanStaleness())
	}
}

// A fault plan applied inside every epoch: the monitoring loop keeps
// terminating, reports crashes, and stays deterministic.
func TestFaultPlanPerEpoch(t *testing.T) {
	plan, err := faults.Parse("crash:0.2@0.5")
	if err != nil {
		t.Fatal(err)
	}
	opts := Options{N: 512, Epochs: 3, Seed: 173, Drift: RandomWalkDrift(1), Faults: plan}
	res, err := Run(opts)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range res.Epochs {
		if e.Crashes == 0 || e.Alive >= 512 {
			t.Fatalf("epoch %d: plan did not fire (%+v)", e.Index, e)
		}
		if math.IsNaN(e.Estimate) || math.IsInf(e.Estimate, 0) || e.RelErr > 0.1 {
			t.Fatalf("epoch %d under faults: estimate %v rel err %v", e.Index, e.Estimate, e.RelErr)
		}
	}
	again, err := Run(opts)
	if err != nil {
		t.Fatal(err)
	}
	for i := range res.Epochs {
		if res.Epochs[i].Estimate != again.Epochs[i].Estimate ||
			res.Epochs[i].Crashes != again.Epochs[i].Crashes {
			t.Fatal("faulted monitoring loop not deterministic")
		}
	}
	// The static path must be untouched by an empty plan.
	empty, err := Run(Options{N: 256, Epochs: 2, Seed: 174, Faults: &faults.Plan{}})
	if err != nil {
		t.Fatal(err)
	}
	bare, err := Run(Options{N: 256, Epochs: 2, Seed: 174})
	if err != nil {
		t.Fatal(err)
	}
	for i := range empty.Epochs {
		if empty.Epochs[i].Estimate != bare.Epochs[i].Estimate ||
			empty.Epochs[i].Messages != bare.Epochs[i].Messages {
			t.Fatal("empty plan perturbed the monitoring loop")
		}
	}
}

func TestDeterministic(t *testing.T) {
	a, err := Run(Options{N: 256, Epochs: 3, Seed: 164, Drift: RandomWalkDrift(1)})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(Options{N: 256, Epochs: 3, Seed: 164, Drift: RandomWalkDrift(1)})
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Epochs {
		if a.Epochs[i].Estimate != b.Epochs[i].Estimate {
			t.Fatal("monitoring loop not deterministic")
		}
	}
}
