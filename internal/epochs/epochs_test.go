package epochs

import (
	"testing"
)

func TestMonitoringLoop(t *testing.T) {
	res, err := Run(Options{N: 1024, Epochs: 5, Seed: 161, Drift: RandomWalkDrift(2)})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Epochs) != 5 {
		t.Fatalf("ran %d epochs", len(res.Epochs))
	}
	for _, e := range res.Epochs {
		if e.RelErr > 1e-6 {
			t.Fatalf("epoch %d rel err %v (lossless must be near-exact)", e.Index, e.RelErr)
		}
		if e.Alive != 1024 || e.Messages == 0 || e.Rounds == 0 {
			t.Fatalf("epoch %d accounting off: %+v", e.Index, e)
		}
	}
	if res.TotalMessages == 0 || res.TotalRounds == 0 {
		t.Fatal("totals not accumulated")
	}
}

func TestStalenessReflectsDrift(t *testing.T) {
	// With strong drift, the previous epoch's answer must be measurably
	// staler than the fresh one; with no drift, staleness ~ 0.
	driftRes, err := Run(Options{N: 512, Epochs: 6, Seed: 162, Drift: RandomWalkDrift(20)})
	if err != nil {
		t.Fatal(err)
	}
	stillRes, err := Run(Options{N: 512, Epochs: 6, Seed: 162})
	if err != nil {
		t.Fatal(err)
	}
	if driftRes.MeanStaleness() <= stillRes.MeanStaleness() {
		t.Fatalf("drift staleness %v <= no-drift staleness %v",
			driftRes.MeanStaleness(), stillRes.MeanStaleness())
	}
	if stillRes.MeanStaleness() > 1e-6 {
		t.Fatalf("no-drift staleness %v should be ~0", stillRes.MeanStaleness())
	}
}

func TestChurnBetweenEpochs(t *testing.T) {
	// Fresh crash sets per epoch: the protocol restarts from scratch, so
	// churn between epochs cannot break anything.
	res, err := Run(Options{N: 1024, Epochs: 4, Seed: 163, CrashFrac: 0.2, Loss: 0.05, Drift: RandomWalkDrift(1)})
	if err != nil {
		t.Fatal(err)
	}
	aliveSets := map[int]bool{}
	for _, e := range res.Epochs {
		if e.RelErr > 0.05 {
			t.Fatalf("epoch %d rel err %v under churn", e.Index, e.RelErr)
		}
		aliveSets[e.Alive] = true
	}
	if len(aliveSets) < 2 {
		t.Fatal("crash churn did not vary the alive set")
	}
}

func TestValidation(t *testing.T) {
	if _, err := Run(Options{N: 1, Epochs: 1}); err == nil {
		t.Fatal("N=1 accepted")
	}
	if _, err := Run(Options{N: 10, Epochs: 0}); err == nil {
		t.Fatal("Epochs=0 accepted")
	}
}

func TestDeterministic(t *testing.T) {
	a, err := Run(Options{N: 256, Epochs: 3, Seed: 164, Drift: RandomWalkDrift(1)})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(Options{N: 256, Epochs: 3, Seed: 164, Drift: RandomWalkDrift(1)})
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Epochs {
		if a.Epochs[i].Estimate != b.Epochs[i].Estimate {
			t.Fatal("monitoring loop not deterministic")
		}
	}
}
