// Package epochs runs DRR-gossip as a monitoring service: the paper's
// motivating deployments (sensor fleets, P2P system statistics) do not
// aggregate once but continuously, re-running the protocol every epoch
// over drifting values and a changing crash set. This harness chains
// epochs, tracks per-epoch accuracy and cost, and reports staleness — how
// far the previous epoch's answer had drifted by the time the next one
// landed — quantifying the freshness/cost trade-off of periodic gossip
// aggregation.
//
// Each epoch is an independent protocol execution (fresh engine, fresh
// DRR forest — the paper's robustness argument: nothing persists, so
// topology churn between epochs is free), with seeds derived from the
// master seed and epoch index.
package epochs

import (
	"errors"
	"fmt"

	"drrgossip/internal/agg"
	core "drrgossip/internal/drrgossip"
	"drrgossip/internal/faults"
	"drrgossip/internal/sim"
	"drrgossip/internal/xrand"
)

// Drift evolves the value vector between epochs.
type Drift func(epoch int, values []float64, rng *xrand.Stream)

// RandomWalkDrift returns a Drift that perturbs every value by a uniform
// step in [-step, step].
func RandomWalkDrift(step float64) Drift {
	return func(epoch int, values []float64, rng *xrand.Stream) {
		for i := range values {
			values[i] += step * (2*rng.Float64() - 1)
		}
	}
}

// Options configure a monitoring run.
type Options struct {
	N      int     // nodes (>= 2)
	Epochs int     // number of epochs (>= 1)
	Seed   uint64  // master seed
	Loss   float64 // per-message loss within each epoch
	// CrashFrac crashes a freshly drawn node subset each epoch (churn).
	CrashFrac float64
	// Drift evolves values between epochs (nil = no drift).
	Drift Drift
	// Faults optionally applies a dynamic fault plan inside every epoch
	// (each epoch binds the plan afresh against its own seed and measured
	// round horizon, so the injected faults vary across epochs exactly as
	// the crash set does). Nil or empty means static epochs.
	Faults *faults.Plan
	// Pipeline tunes the per-epoch protocol.
	Pipeline core.Options
}

// Epoch records one aggregation epoch.
type Epoch struct {
	Index     int
	Estimate  float64 // the protocol's answer this epoch
	Exact     float64 // the true average over this epoch's alive nodes
	RelErr    float64
	Staleness float64 // |previous estimate - this epoch's exact| (drift cost)
	Alive     int
	Rounds    int
	Messages  int64
	// Crashes counts mid-epoch fault-plan crashes (0 without a plan).
	Crashes int
}

// Result is a full monitoring run.
type Result struct {
	Epochs []Epoch
	// TotalMessages and TotalRounds accumulate over all epochs.
	TotalMessages int64
	TotalRounds   int
}

// ErrBadOptions reports invalid options.
var ErrBadOptions = errors.New("epochs: invalid options")

// Run executes the monitoring loop, computing the Average every epoch.
func Run(opts Options) (*Result, error) {
	if opts.N < 2 {
		return nil, fmt.Errorf("%w: N must be >= 2", ErrBadOptions)
	}
	if opts.Epochs < 1 {
		return nil, fmt.Errorf("%w: Epochs must be >= 1", ErrBadOptions)
	}
	if err := opts.Faults.Validate(opts.N); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadOptions, err)
	}
	values := agg.GenUniform(opts.N, 0, 100, xrand.Hash(opts.Seed, 0xE0))
	driftRNG := xrand.Derive(opts.Seed, 0xE1)
	res := &Result{}
	prevEstimate := 0.0
	for e := 0; e < opts.Epochs; e++ {
		if e > 0 && opts.Drift != nil {
			opts.Drift(e, values, driftRNG)
		}
		epochSeed := xrand.Hash(opts.Seed, 0xE2, uint64(e))
		runEpoch := func(b *faults.Bound) (*core.Result, *sim.Engine, error) {
			eng := sim.NewEngine(opts.N, sim.Options{
				Seed:      epochSeed,
				Loss:      opts.Loss,
				CrashFrac: opts.CrashFrac,
			})
			if b != nil {
				b.Attach(eng)
			}
			run, err := core.Ave(eng, values, opts.Pipeline)
			return run, eng, err
		}
		var bound *faults.Bound
		if !opts.Faults.Empty() {
			horizon := 0
			if opts.Faults.NeedsHorizon() {
				// Measure this epoch's healthy round count so fractional
				// event timings resolve against it (deterministic, so the
				// measurement is exact).
				healthy, _, err := runEpoch(nil)
				if err != nil {
					return nil, fmt.Errorf("epochs: epoch %d horizon: %w", e, err)
				}
				horizon = healthy.Stats.Rounds
			}
			var err error
			if bound, err = opts.Faults.Bind(opts.N, epochSeed, horizon); err != nil {
				return nil, fmt.Errorf("%w: %v", ErrBadOptions, err)
			}
		}
		run, eng, err := runEpoch(bound)
		if err != nil {
			return nil, fmt.Errorf("epochs: epoch %d: %w", e, err)
		}
		exact := agg.Exact(agg.Average, agg.Subset(values, eng.AliveIDs()), 0)
		ep := Epoch{
			Index:    e,
			Estimate: run.Value,
			Exact:    exact,
			RelErr:   agg.RelError(run.Value, exact),
			Alive:    eng.NumAlive(),
			Rounds:   run.Stats.Rounds,
			Messages: run.Stats.Messages,
		}
		if bound != nil {
			ep.Crashes = bound.Crashed()
		}
		if e > 0 {
			ep.Staleness = agg.RelError(prevEstimate, exact)
		}
		prevEstimate = run.Value
		res.Epochs = append(res.Epochs, ep)
		res.TotalMessages += ep.Messages
		res.TotalRounds += ep.Rounds
	}
	return res, nil
}

// MeanRelErr returns the mean per-epoch relative error.
func (r *Result) MeanRelErr() float64 {
	s := 0.0
	for _, e := range r.Epochs {
		s += e.RelErr
	}
	return s / float64(len(r.Epochs))
}

// MeanStaleness returns the mean staleness over epochs after the first.
func (r *Result) MeanStaleness() float64 {
	if len(r.Epochs) < 2 {
		return 0
	}
	s := 0.0
	for _, e := range r.Epochs[1:] {
		s += e.Staleness
	}
	return s / float64(len(r.Epochs)-1)
}
