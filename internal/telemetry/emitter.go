package telemetry

import "drrgossip/internal/sim"

// EngineView is the engine surface the emitter samples: counters, the
// progress index (synchronous rounds, or dispatched events on the async
// engine — both expose it as Round), the phase label, live membership
// and the driver-reported convergence residual. Both sim.Engine and
// async.Engine satisfy it, so one emitter serves both execution models
// and a sink cannot tell them apart beyond the op name.
type EngineView interface {
	Stats() sim.Counters
	Round() int
	Phase() string
	NumAlive() int
	Residual() float64
}

// Emitter drives the event stream for one session: the facade calls
// RunStart/RunEnd around every protocol run and wires Phase/Round/Fault
// into the engine's observer hooks. It keeps the per-run sequence
// number and the previous-event counter snapshot, so every event's
// Delta is exact and the whole stream needs no post-processing.
//
// An Emitter reuses one Event value across emissions (sinks copy what
// they keep), so steady-state emission allocates nothing. A nil
// *Emitter is a valid "telemetry off" emitter: every method is a no-op
// and Enabled/WantsRounds report false.
type Emitter struct {
	sink       Sink
	roundEvery int

	run  int
	seq  uint64
	op   string
	prev sim.Counters
	ev   Event
}

// NewEmitter builds an emitter for opts, or nil when opts has no sink
// (telemetry disabled).
func NewEmitter(opts Options) *Emitter {
	if opts.Sink == nil {
		return nil
	}
	re := opts.RoundEvery
	if re < 0 {
		re = 0
	}
	return &Emitter{sink: opts.Sink, roundEvery: re}
}

// Enabled reports whether the emitter forwards events.
func (em *Emitter) Enabled() bool { return em != nil }

// WantsRounds reports whether per-round samples were requested — the
// facade installs an engine round observer only then (or when session
// observers need one anyway).
func (em *Emitter) WantsRounds() bool { return em != nil && em.roundEvery > 0 }

// RoundEvery returns the configured per-round sampling stride (0 = no
// round samples).
func (em *Emitter) RoundEvery() int {
	if em == nil {
		return 0
	}
	return em.roundEvery
}

// fill populates the reusable event from the engine's current state and
// advances the per-run delta baseline.
func (em *Emitter) fill(eng EngineView, kind Kind) *Event {
	cur := eng.Stats()
	em.seq++
	em.ev = Event{
		Run:      em.run,
		Seq:      em.seq,
		Round:    eng.Round(),
		Kind:     kind,
		Op:       em.op,
		Phase:    eng.Phase(),
		Alive:    eng.NumAlive(),
		Node:     -1,
		Counters: cur,
		Delta:    cur.Sub(em.prev),
		Residual: eng.Residual(),
	}
	em.prev = cur
	return &em.ev
}

// RunStart opens run number run (the session's protocol-run index) for
// operation op on eng and emits the KindRunStart event.
func (em *Emitter) RunStart(run int, op string, eng EngineView) {
	if em == nil {
		return
	}
	em.run = run
	em.seq = 0
	em.op = op
	em.prev = sim.Counters{}
	em.sink.Emit(em.fill(eng, KindRunStart))
}

// Phase emits a KindPhase event for the transition the engine just
// recorded (wired into sim.SetPhaseObserver). Its Delta bills the
// segment that just completed.
func (em *Emitter) Phase(eng EngineView) {
	if em == nil {
		return
	}
	em.sink.Emit(em.fill(eng, KindPhase))
}

// Round emits a KindRound sample when the engine's round lands on the
// configured stride (wired into the engine round observer).
func (em *Emitter) Round(eng EngineView) {
	if em == nil || em.roundEvery <= 0 || eng.Round()%em.roundEvery != 0 {
		return
	}
	em.sink.Emit(em.fill(eng, KindRound))
}

// Fault emits a KindFault event for a membership transition (wired into
// sim.SetMembershipObserver): alive=false is a crash, true a revive.
func (em *Emitter) Fault(eng EngineView, node int, alive bool) {
	if em == nil {
		return
	}
	ev := em.fill(eng, KindFault)
	ev.Node = node
	ev.Crash = !alive
	em.sink.Emit(ev)
}

// RunEnd closes the run: its Counters are the final totals and its
// Delta closes the last segment, making the run's Deltas sum exactly to
// the totals.
func (em *Emitter) RunEnd(eng EngineView) {
	if em == nil {
		return
	}
	em.sink.Emit(em.fill(eng, KindRunEnd))
}

// Forward re-emits an already-built event verbatim — the deterministic
// merge path of RunAll's parallel batches, which captures worker events
// in per-query Buffers, renumbers their runs in query order and then
// forwards them to the session sink.
func (em *Emitter) Forward(ev *Event) {
	if em == nil {
		return
	}
	em.sink.Emit(ev)
}
