package telemetry

import (
	"expvar"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/pprof"
	"runtime"
	"sync"
	"sync/atomic"
	"time"
)

// Metrics is a Sink aggregating the event stream into live counters for
// the HTTP introspection endpoints: runs started/finished, cumulative
// rounds/messages/drops (from event Deltas, so totals are exact even
// with sparse round sampling), fault events, and an alive-nodes gauge.
// All fields are atomics — Emit runs on the engine's round loop while
// HTTP handlers read concurrently.
type Metrics struct {
	start time.Time

	runsStarted  atomic.Int64
	runsFinished atomic.Int64
	rounds       atomic.Int64
	messages     atomic.Int64
	drops        atomic.Int64
	blocked      atomic.Int64
	calls        atomic.Int64
	faultEvents  atomic.Int64
	events       atomic.Int64
	alive        atomic.Int64
}

// NewMetrics returns a live metrics aggregator; its rate gauges are
// relative to the construction time.
func NewMetrics() *Metrics {
	return &Metrics{start: time.Now()}
}

// Emit folds one event into the counters.
func (m *Metrics) Emit(ev *Event) {
	m.events.Add(1)
	m.rounds.Add(int64(ev.Delta.Rounds))
	m.messages.Add(ev.Delta.Messages)
	m.drops.Add(ev.Delta.Drops)
	m.blocked.Add(ev.Delta.Blocked)
	m.calls.Add(ev.Delta.Calls)
	m.alive.Store(int64(ev.Alive))
	switch ev.Kind {
	case KindRunStart:
		m.runsStarted.Add(1)
	case KindRunEnd:
		m.runsFinished.Add(1)
	case KindFault:
		m.faultEvents.Add(1)
	}
}

// WritePrometheus renders the metrics catalog in the Prometheus text
// exposition format (see docs/OBSERVABILITY.md for the catalog).
func (m *Metrics) WritePrometheus(w io.Writer) {
	uptime := time.Since(m.start).Seconds()
	if uptime <= 0 {
		uptime = 1e-9
	}
	rounds := m.rounds.Load()
	messages := m.messages.Load()
	counter := func(name, help string, v int64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}
	gauge := func(name, help string, v float64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n%s %g\n", name, help, name, name, v)
	}
	counter("drrgossip_runs_started_total", "Protocol runs started.", m.runsStarted.Load())
	counter("drrgossip_runs_finished_total", "Protocol runs finished.", m.runsFinished.Load())
	counter("drrgossip_rounds_total", "Simulated rounds executed.", rounds)
	counter("drrgossip_messages_total", "Message transmission attempts.", messages)
	counter("drrgossip_drops_total", "Messages lost to link failure.", m.drops.Load())
	counter("drrgossip_blocked_total", "Messages killed by installed link faults.", m.blocked.Load())
	counter("drrgossip_calls_total", "Synchronous calls placed.", m.calls.Load())
	counter("drrgossip_fault_events_total", "Fault-plan membership transitions applied.", m.faultEvents.Load())
	counter("drrgossip_telemetry_events_total", "Telemetry events received by this sink.", m.events.Load())
	gauge("drrgossip_alive_nodes", "Live nodes at the last observed event.", float64(m.alive.Load()))
	gauge("drrgossip_rounds_per_second", "Lifetime simulated-round rate.", float64(rounds)/uptime)
	gauge("drrgossip_messages_per_second", "Lifetime message rate.", float64(messages)/uptime)
	gauge("drrgossip_uptime_seconds", "Seconds since the metrics sink was created.", uptime)

	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	gauge("go_heap_alloc_bytes", "Live heap bytes.", float64(ms.HeapAlloc))
	gauge("go_heap_inuse_bytes", "Heap bytes in in-use spans.", float64(ms.HeapInuse))
	gauge("go_goroutines", "Current goroutine count.", float64(runtime.NumGoroutine()))
}

// ServeHTTP serves the Prometheus text format — Metrics is mountable
// directly as the /metrics handler.
func (m *Metrics) ServeHTTP(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	m.WritePrometheus(w)
}

// Snapshot renders the counters as a plain map — the expvar view, also
// handy for embedding the sink without an HTTP listener.
func (m *Metrics) Snapshot() map[string]int64 {
	return map[string]int64{
		"runs_started":  m.runsStarted.Load(),
		"runs_finished": m.runsFinished.Load(),
		"rounds":        m.rounds.Load(),
		"messages":      m.messages.Load(),
		"drops":         m.drops.Load(),
		"blocked":       m.blocked.Load(),
		"calls":         m.calls.Load(),
		"fault_events":  m.faultEvents.Load(),
		"events":        m.events.Load(),
		"alive_nodes":   m.alive.Load(),
	}
}

// expvarMetrics is the Metrics instance the process-wide "drrgossip"
// expvar reads (the last one passed to Serve); expvar.Publish is global
// and panics on re-registration, hence the indirection + Once.
var (
	expvarMetrics atomic.Pointer[Metrics]
	expvarOnce    sync.Once
)

// Serve starts the observability listener on addr ("host:port"; ":0"
// picks a free port) and returns the server with its bound address. The
// mux exposes:
//
//	/metrics      Prometheus text format (the Metrics catalog)
//	/debug/vars   expvar (Go runtime memstats + the "drrgossip" map)
//	/debug/pprof  net/http/pprof profiles
//
// The server runs until Shutdown/Close (it dies with the process in the
// CLI use case — live introspection of long-running jobs).
func Serve(addr string, m *Metrics) (*http.Server, string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, "", err
	}
	expvarMetrics.Store(m)
	expvarOnce.Do(func() {
		expvar.Publish("drrgossip", expvar.Func(func() any {
			if cur := expvarMetrics.Load(); cur != nil {
				return cur.Snapshot()
			}
			return nil
		}))
	})
	mux := http.NewServeMux()
	mux.Handle("/metrics", m)
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	srv := &http.Server{Handler: mux}
	go srv.Serve(ln)
	return srv, ln.Addr().String(), nil
}
