// Package telemetry is the structured observability layer of the
// simulator: a low-overhead event stream threaded through internal/sim
// and the session facade (run boundaries, phase transitions, fault
// events, convergence residuals, per-round counter deltas) with
// pluggable sinks — an in-memory ring, a JSONL trace writer, a live
// metrics aggregator with a Prometheus-format HTTP endpoint, and a
// Chrome trace-event exporter that renders a whole session as a
// flame-style timeline of runs × phases.
//
// The contract mirrors the engine's observer design: telemetry is a
// read-only tap. Emitting events cannot perturb a run — every result
// and counter stays bit-identical with any sink attached — and with
// telemetry disabled the hot path pays nothing (no observer is
// installed; pinned by the bench guard).
//
// # Event stream
//
// Events are emitted per protocol run in a fixed order: one RunStart,
// then Phase / Round / Fault events as the run progresses, then one
// RunEnd. Within a run, (Round, Seq) is strictly increasing, so the
// full stream sorts by (Run, Round, Seq) — the ordering key the
// determinism tests pin across GOMAXPROCS and worker counts. Each
// event carries the engine's cumulative Counters and the Delta since
// the run's previous event, so phase costs and per-round rates need no
// recomputation downstream.
package telemetry

import (
	"bufio"
	"io"
	"math"
	"strconv"
	"sync"

	"drrgossip/internal/sim"
)

// Kind discriminates the event types of the stream.
type Kind uint8

// Event kinds, in the order they appear within a run.
const (
	// KindRunStart opens a protocol run (Round 0, zero counters).
	KindRunStart Kind = iota + 1
	// KindPhase marks a phase transition: Phase is the phase being
	// entered, Round/Counters the position at the transition, and Delta
	// the cost accumulated since the previous event — i.e. the bill of
	// the segment just completed.
	KindPhase
	// KindRound is a per-round sample (emitted every Options.RoundEvery
	// rounds; never when RoundEvery == 0).
	KindRound
	// KindFault records a membership transition applied by a fault plan:
	// Node is the affected node and Crash is true for a crash, false for
	// a revive.
	KindFault
	// KindRunEnd closes a run; its Counters are the run's final totals
	// and its Delta closes the last segment, so the Deltas of a run's
	// events always sum exactly to the final Counters.
	KindRunEnd
)

var kindNames = [...]string{
	KindRunStart: "run_start",
	KindPhase:    "phase",
	KindRound:    "round",
	KindFault:    "fault",
	KindRunEnd:   "run_end",
}

// String renders the kind's snake_case name.
func (k Kind) String() string {
	if int(k) < len(kindNames) && kindNames[k] != "" {
		return kindNames[k]
	}
	return "kind(" + strconv.Itoa(int(k)) + ")"
}

// Event is one observation of a protocol run. Events are plain values;
// the emitter reuses one Event between Emit calls, so sinks that retain
// events must copy them (Ring and Buffer do).
type Event struct {
	// Run numbers the protocol run within the session (1-based, same
	// numbering as RoundInfo.Run).
	Run int
	// Seq orders the run's events (1-based, strictly increasing).
	Seq uint64
	// Round is the engine round the event was observed at.
	Round int
	// Kind is the event type.
	Kind Kind
	// Op is the operation the run computes ("max", "rank", …).
	Op string
	// Phase is the engine's phase label at the event ("drr", "gossip",
	// …; for KindPhase, the phase being entered).
	Phase string
	// Alive is the live-node count at the event.
	Alive int
	// Node and Crash describe KindFault events (Node is -1 otherwise).
	Node  int
	Crash bool
	// Counters is the engine's cumulative accounting at the event.
	Counters sim.Counters
	// Delta is Counters minus the run's previous event's Counters: the
	// cost of the segment between the two. A run's Deltas sum exactly to
	// its final Counters.
	Delta sim.Counters
	// Residual is the driver-reported convergence residual (NaN when the
	// running protocol does not expose one; see sim.ReportResidual).
	Residual float64
}

// Sink consumes events. Emit is called from the engine's sequential
// round loop — implementations must be fast, must not call back into
// the session, and must copy the Event if they retain it (the emitter
// reuses the pointed-to Event). Sinks used together with a live HTTP
// reader (Metrics, Ring) must be internally synchronized.
type Sink interface {
	Emit(ev *Event)
}

// Options is the facade-level telemetry configuration (Config.Telemetry).
type Options struct {
	// Sink receives the event stream. Nil disables telemetry entirely —
	// the zero-alloc hot path is untouched.
	Sink Sink
	// RoundEvery emits a KindRound sample every RoundEvery rounds
	// (1 = every round). 0 emits no per-round samples: the stream then
	// carries only run/phase/fault events, whose Deltas still account
	// every counter — the right default at large n.
	RoundEvery int
}

// Ring is a fixed-capacity in-memory sink that overwrites its oldest
// events once full — bounded memory for arbitrarily long sessions. It
// is safe for concurrent Emit and Events calls (one emitter plus any
// number of readers).
type Ring struct {
	mu    sync.Mutex
	buf   []Event
	total uint64
}

// NewRing returns a ring retaining the last capacity events (min 1).
func NewRing(capacity int) *Ring {
	if capacity < 1 {
		capacity = 1
	}
	return &Ring{buf: make([]Event, capacity)}
}

// Emit stores a copy of ev, overwriting the oldest retained event when
// the ring is full. Allocation-free.
func (r *Ring) Emit(ev *Event) {
	r.mu.Lock()
	r.buf[r.total%uint64(len(r.buf))] = *ev
	r.total++
	r.mu.Unlock()
}

// Total returns the number of events emitted over the ring's lifetime
// (including overwritten ones).
func (r *Ring) Total() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.total
}

// Events returns the retained events, oldest first, as a fresh slice.
func (r *Ring) Events() []Event {
	r.mu.Lock()
	defer r.mu.Unlock()
	n := r.total
	capacity := uint64(len(r.buf))
	if n > capacity {
		out := make([]Event, capacity)
		start := n % capacity
		copy(out, r.buf[start:])
		copy(out[capacity-start:], r.buf[:start])
		return out
	}
	return append([]Event(nil), r.buf[:n]...)
}

// Buffer is an unbounded in-memory sink: it appends every event. The
// RunAll parallel path uses per-query Buffers to capture worker event
// streams for deterministic merging; tests use it to snapshot whole
// sessions. Not synchronized — single-writer, read after the run.
type Buffer struct {
	events []Event
}

// Emit appends a copy of ev.
func (b *Buffer) Emit(ev *Event) { b.events = append(b.events, *ev) }

// Events returns the captured events in emission order. The returned
// slice is the buffer's backing store; copy it before further Emits.
func (b *Buffer) Events() []Event { return b.events }

// Reset drops the captured events, keeping capacity.
func (b *Buffer) Reset() { b.events = b.events[:0] }

// multi fans events out to several sinks in order.
type multi struct{ sinks []Sink }

func (m *multi) Emit(ev *Event) {
	for _, s := range m.sinks {
		s.Emit(ev)
	}
}

// Multi combines sinks into one that forwards every event to each of
// them in order, skipping nils. With zero or one non-nil sink it
// returns that sink directly.
func Multi(sinks ...Sink) Sink {
	var live []Sink
	for _, s := range sinks {
		if s != nil {
			live = append(live, s)
		}
	}
	switch len(live) {
	case 0:
		return nil
	case 1:
		return live[0]
	default:
		return &multi{sinks: live}
	}
}

// JSONL streams events as JSON Lines — one self-describing object per
// event, append-only, greppable, loadable from any tooling. Writes are
// buffered; call Flush (or Close) when the session is done.
type JSONL struct {
	mu      sync.Mutex
	w       *bufio.Writer
	c       io.Closer
	scratch []byte
}

// NewJSONL returns a JSONL sink writing to w. If w is an io.Closer,
// Close will close it after flushing.
func NewJSONL(w io.Writer) *JSONL {
	j := &JSONL{w: bufio.NewWriter(w)}
	if c, ok := w.(io.Closer); ok {
		j.c = c
	}
	return j
}

// Emit writes ev as one JSON line.
func (j *JSONL) Emit(ev *Event) {
	j.mu.Lock()
	j.scratch = appendEventJSON(j.scratch[:0], ev)
	j.w.Write(j.scratch)
	j.w.WriteByte('\n')
	j.mu.Unlock()
}

// Flush drains the write buffer.
func (j *JSONL) Flush() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.w.Flush()
}

// Close flushes and closes the underlying writer when it is closable.
func (j *JSONL) Close() error {
	if err := j.Flush(); err != nil {
		return err
	}
	if j.c != nil {
		return j.c.Close()
	}
	return nil
}

// appendEventJSON renders ev without encoding/json: the sink sits on
// the round loop, where reflection-based marshaling would allocate per
// event. NaN residuals (no driver-reported value) serialize as null.
func appendEventJSON(b []byte, ev *Event) []byte {
	b = append(b, `{"run":`...)
	b = strconv.AppendInt(b, int64(ev.Run), 10)
	b = append(b, `,"seq":`...)
	b = strconv.AppendUint(b, ev.Seq, 10)
	b = append(b, `,"round":`...)
	b = strconv.AppendInt(b, int64(ev.Round), 10)
	b = append(b, `,"kind":"`...)
	b = append(b, ev.Kind.String()...)
	b = append(b, `","op":"`...)
	b = append(b, ev.Op...)
	b = append(b, `","phase":"`...)
	b = append(b, ev.Phase...)
	b = append(b, `","alive":`...)
	b = strconv.AppendInt(b, int64(ev.Alive), 10)
	if ev.Kind == KindFault {
		b = append(b, `,"node":`...)
		b = strconv.AppendInt(b, int64(ev.Node), 10)
		b = append(b, `,"crash":`...)
		b = strconv.AppendBool(b, ev.Crash)
	}
	b = append(b, `,"counters":`...)
	b = appendCountersJSON(b, ev.Counters)
	b = append(b, `,"delta":`...)
	b = appendCountersJSON(b, ev.Delta)
	b = append(b, `,"residual":`...)
	if math.IsNaN(ev.Residual) {
		b = append(b, "null"...)
	} else {
		b = strconv.AppendFloat(b, ev.Residual, 'g', -1, 64)
	}
	return append(b, '}')
}

func appendCountersJSON(b []byte, c sim.Counters) []byte {
	b = append(b, `{"rounds":`...)
	b = strconv.AppendInt(b, int64(c.Rounds), 10)
	b = append(b, `,"messages":`...)
	b = strconv.AppendInt(b, c.Messages, 10)
	b = append(b, `,"drops":`...)
	b = strconv.AppendInt(b, c.Drops, 10)
	b = append(b, `,"blocked":`...)
	b = strconv.AppendInt(b, c.Blocked, 10)
	b = append(b, `,"calls":`...)
	b = strconv.AppendInt(b, c.Calls, 10)
	return append(b, '}')
}
