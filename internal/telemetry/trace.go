package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
)

// traceEvent is one Chrome trace-event object (the "trace event format"
// consumed by chrome://tracing and ui.perfetto.dev).
type traceEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Ts   int64          `json:"ts"`
	Dur  int64          `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	S    string         `json:"s,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

// chromeTrace is the JSON object form of the trace file.
type chromeTrace struct {
	TraceEvents     []traceEvent `json:"traceEvents"`
	DisplayTimeUnit string       `json:"displayTimeUnit"`
}

// Timeline rows (thread ids) of the exported trace.
const (
	traceTidRuns   = 1 // one span per protocol run, named by its op
	traceTidPhases = 2 // one span per phase segment, plus fault instants
)

// WriteChromeTrace renders an event stream as Chrome trace-event JSON:
// a two-row flame-style timeline where row "runs" holds one span per
// protocol run (named by its operation) and row "phases" breaks each
// run into its drr/aggregate/gossip/broadcast segments, with fault
// events as instants. Simulated rounds map to microseconds (one round =
// 1µs) and runs are laid end to end, so a whole Quantile session — its
// ~80 bisection runs × phases — renders as one navigable timeline.
// Open the file at ui.perfetto.dev or chrome://tracing.
//
// Events must be in stream order (as captured by a Buffer or Ring from
// one session); truncated streams (a Ring that overwrote its oldest
// events) still render, starting at the first retained event.
func WriteChromeTrace(w io.Writer, events []Event) error {
	tr := chromeTrace{DisplayTimeUnit: "ms", TraceEvents: []traceEvent{
		{Name: "process_name", Ph: "M", Pid: 1, Args: map[string]any{"name": "drrgossip session"}},
		{Name: "thread_name", Ph: "M", Pid: 1, Tid: traceTidRuns, Args: map[string]any{"name": "runs"}},
		{Name: "thread_name", Ph: "M", Pid: 1, Tid: traceTidPhases, Args: map[string]any{"name": "phases"}},
	}}

	var (
		offset    int64 // global timeline position of the current run's round 0
		curRun    = -1
		runStart  int64 // first observed round of the current run
		lastRound int64
		runOp     string
		segPhase  string
		segStart  int64
		segMsgs   int64
		segDrops  int64
	)
	closeSeg := func(end int64, msgs, drops int64) {
		if segPhase == "" || end <= segStart {
			segPhase = ""
			return
		}
		tr.TraceEvents = append(tr.TraceEvents, traceEvent{
			Name: segPhase, Ph: "X", Ts: offset + segStart, Dur: end - segStart,
			Pid: 1, Tid: traceTidPhases,
			Args: map[string]any{
				"rounds":   end - segStart,
				"messages": msgs - segMsgs,
				"drops":    drops - segDrops,
			},
		})
		segPhase = ""
	}
	closeRun := func(ev *Event) {
		if curRun < 0 {
			return
		}
		closeSeg(lastRound, ev.Counters.Messages, ev.Counters.Drops)
		args := map[string]any{
			"run": curRun, "op": runOp,
			"rounds": lastRound - runStart, "messages": ev.Counters.Messages,
			"drops": ev.Counters.Drops, "alive": ev.Alive,
		}
		if !math.IsNaN(ev.Residual) {
			args["residual"] = ev.Residual
		}
		tr.TraceEvents = append(tr.TraceEvents, traceEvent{
			Name: fmt.Sprintf("%s #%d", runOp, curRun), Ph: "X",
			Ts: offset + runStart, Dur: max64(lastRound-runStart, 1),
			Pid: 1, Tid: traceTidRuns, Args: args,
		})
		offset += max64(lastRound-runStart, 1)
		curRun = -1
	}

	for i := range events {
		ev := &events[i]
		round := int64(ev.Round)
		if ev.Run != curRun {
			if curRun >= 0 {
				// Truncated stream: the previous run never closed. End it
				// at its last observed position so the timeline stays
				// monotone.
				prev := events[i-1]
				closeRun(&prev)
			}
			curRun, runOp = ev.Run, ev.Op
			runStart, segStart, segMsgs, segDrops = round, round, ev.Counters.Messages, ev.Counters.Drops
			segPhase = ev.Phase
		}
		lastRound = round
		switch ev.Kind {
		case KindPhase:
			closeSeg(round, ev.Counters.Messages, ev.Counters.Drops)
			segPhase, segStart = ev.Phase, round
			segMsgs, segDrops = ev.Counters.Messages, ev.Counters.Drops
		case KindFault:
			action := "revive"
			if ev.Crash {
				action = "crash"
			}
			tr.TraceEvents = append(tr.TraceEvents, traceEvent{
				Name: fmt.Sprintf("%s node %d", action, ev.Node), Ph: "i",
				Ts: offset + round, Pid: 1, Tid: traceTidPhases, S: "t",
				Args: map[string]any{"alive": ev.Alive},
			})
		case KindRunEnd:
			closeRun(ev)
		}
	}
	if curRun >= 0 && len(events) > 0 {
		last := events[len(events)-1]
		closeRun(&last)
	}

	enc := json.NewEncoder(w)
	return enc.Encode(tr)
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
