package telemetry

import (
	"bytes"
	"encoding/json"
	"math"
	"net/http"
	"strings"
	"testing"

	"drrgossip/internal/sim"
)

func mkEvent(run int, seq uint64, round int, kind Kind) *Event {
	return &Event{
		Run: run, Seq: seq, Round: round, Kind: kind, Op: "max",
		Phase: "gossip", Alive: 7, Node: -1,
		Counters: sim.Counters{Rounds: round, Messages: int64(10 * round), Drops: int64(round)},
		Delta:    sim.Counters{Rounds: 1, Messages: 10, Drops: 1},
		Residual: math.NaN(),
	}
}

func TestKindString(t *testing.T) {
	want := map[Kind]string{
		KindRunStart: "run_start", KindPhase: "phase", KindRound: "round",
		KindFault: "fault", KindRunEnd: "run_end", Kind(0): "kind(0)", Kind(99): "kind(99)",
	}
	for k, s := range want {
		if k.String() != s {
			t.Errorf("Kind(%d).String() = %q, want %q", k, k.String(), s)
		}
	}
}

func TestRingWraparound(t *testing.T) {
	r := NewRing(4)
	for i := 1; i <= 10; i++ {
		r.Emit(mkEvent(1, uint64(i), i, KindRound))
	}
	if r.Total() != 10 {
		t.Fatalf("Total = %d, want 10", r.Total())
	}
	evs := r.Events()
	if len(evs) != 4 {
		t.Fatalf("retained %d events, want 4", len(evs))
	}
	for i, ev := range evs {
		if want := uint64(7 + i); ev.Seq != want {
			t.Errorf("event %d: Seq = %d, want %d (oldest-first order)", i, ev.Seq, want)
		}
	}

	// Under capacity: all events, in order.
	r2 := NewRing(8)
	r2.Emit(mkEvent(1, 1, 1, KindRunStart))
	r2.Emit(mkEvent(1, 2, 2, KindRunEnd))
	if evs := r2.Events(); len(evs) != 2 || evs[0].Seq != 1 || evs[1].Seq != 2 {
		t.Fatalf("partial ring events wrong: %+v", evs)
	}
}

func TestRingCopiesEvents(t *testing.T) {
	r := NewRing(2)
	ev := mkEvent(1, 1, 1, KindRound)
	r.Emit(ev)
	ev.Seq = 999 // emitter reuse must not retro-edit the stored copy
	if got := r.Events()[0].Seq; got != 1 {
		t.Fatalf("ring stored a reference, not a copy: Seq = %d", got)
	}
}

func TestBuffer(t *testing.T) {
	var b Buffer
	b.Emit(mkEvent(1, 1, 0, KindRunStart))
	b.Emit(mkEvent(1, 2, 3, KindRunEnd))
	if len(b.Events()) != 2 {
		t.Fatalf("buffer kept %d events, want 2", len(b.Events()))
	}
	b.Reset()
	if len(b.Events()) != 0 {
		t.Fatal("Reset did not drop events")
	}
}

func TestMulti(t *testing.T) {
	var a, b Buffer
	if Multi() != nil {
		t.Error("Multi() should be nil")
	}
	if Multi(nil, nil) != nil {
		t.Error("Multi(nil, nil) should be nil")
	}
	if Multi(&a, nil) != Sink(&a) {
		t.Error("Multi with one live sink should return it directly")
	}
	m := Multi(&a, nil, &b)
	m.Emit(mkEvent(1, 1, 0, KindRunStart))
	if len(a.Events()) != 1 || len(b.Events()) != 1 {
		t.Fatalf("multi did not fan out: %d / %d", len(a.Events()), len(b.Events()))
	}
}

func TestJSONLValidAndParseable(t *testing.T) {
	var buf bytes.Buffer
	j := NewJSONL(&buf)
	j.Emit(mkEvent(1, 1, 0, KindRunStart))
	fault := mkEvent(1, 2, 5, KindFault)
	fault.Node = 3
	fault.Crash = true
	fault.Residual = 0.25
	j.Emit(fault)
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("got %d lines, want 2", len(lines))
	}
	var first map[string]any
	if err := json.Unmarshal([]byte(lines[0]), &first); err != nil {
		t.Fatalf("line 0 is not valid JSON: %v\n%s", err, lines[0])
	}
	if first["kind"] != "run_start" || first["residual"] != nil {
		t.Errorf("line 0 fields wrong: %v", first)
	}
	var second map[string]any
	if err := json.Unmarshal([]byte(lines[1]), &second); err != nil {
		t.Fatalf("line 1 is not valid JSON: %v", err)
	}
	if second["node"] != float64(3) || second["crash"] != true || second["residual"] != 0.25 {
		t.Errorf("fault fields wrong: %v", second)
	}
	if c, ok := second["counters"].(map[string]any); !ok || c["messages"] != float64(50) {
		t.Errorf("counters wrong: %v", second["counters"])
	}
}

// TestEmitterDeltasSumToTotals pins the emitter's core invariant: the
// Deltas of a run's events sum exactly to the final Counters.
func TestEmitterDeltasSumToTotals(t *testing.T) {
	eng := sim.NewEngine(64, sim.Options{Seed: 7})
	var buf Buffer
	em := NewEmitter(Options{Sink: &buf, RoundEvery: 1})
	em.RunStart(1, "test", eng)
	for r := 0; r < 5; r++ {
		for i := 0; i < 64; i++ {
			eng.Send(i, (i+1)%64, sim.Payload{})
		}
		eng.Tick()
		em.Round(eng)
	}
	eng.SetPhase("gossip")
	em.Phase(eng)
	em.RunEnd(eng)

	evs := buf.Events()
	var sum sim.Counters
	for i, ev := range evs {
		if ev.Run != 1 || ev.Seq != uint64(i+1) {
			t.Fatalf("event %d: run/seq = %d/%d", i, ev.Run, ev.Seq)
		}
		sum.Rounds += ev.Delta.Rounds
		sum.Messages += ev.Delta.Messages
		sum.Drops += ev.Delta.Drops
		sum.Blocked += ev.Delta.Blocked
		sum.Calls += ev.Delta.Calls
	}
	final := evs[len(evs)-1]
	if final.Kind != KindRunEnd || sum != final.Counters {
		t.Fatalf("delta sum %+v != final counters %+v", sum, final.Counters)
	}
	if got := eng.Stats(); final.Counters != got {
		t.Fatalf("final counters %+v != engine stats %+v", final.Counters, got)
	}
}

func TestNilEmitterIsSafe(t *testing.T) {
	var em *Emitter
	if em.Enabled() || em.WantsRounds() || em.RoundEvery() != 0 {
		t.Fatal("nil emitter must report disabled")
	}
	eng := sim.NewEngine(4, sim.Options{Seed: 1})
	em.RunStart(1, "max", eng)
	em.Phase(eng)
	em.Round(eng)
	em.Fault(eng, 0, false)
	em.RunEnd(eng)
	em.Forward(&Event{})
	if NewEmitter(Options{}) != nil {
		t.Fatal("NewEmitter without sink must return nil")
	}
}

func TestWriteChromeTrace(t *testing.T) {
	eng := sim.NewEngine(32, sim.Options{Seed: 3})
	var buf Buffer
	em := NewEmitter(Options{Sink: &buf})
	for run := 1; run <= 3; run++ {
		eng.Reset(sim.Options{Seed: 3})
		em.RunStart(run, "max", eng)
		eng.SetPhase("drr")
		em.Phase(eng)
		for r := 0; r < 4; r++ {
			eng.Send(0, 1, sim.Payload{})
			eng.Tick()
		}
		eng.SetPhase("gossip")
		em.Phase(eng)
		eng.Crash(5)
		em.Fault(eng, 5, false)
		for r := 0; r < 3; r++ {
			eng.Tick()
		}
		em.RunEnd(eng)
	}

	var out bytes.Buffer
	if err := WriteChromeTrace(&out, buf.Events()); err != nil {
		t.Fatal(err)
	}
	var tr struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			Ts   int64          `json:"ts"`
			Dur  int64          `json:"dur"`
			Tid  int            `json:"tid"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(out.Bytes(), &tr); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	if tr.DisplayTimeUnit != "ms" {
		t.Errorf("displayTimeUnit = %q", tr.DisplayTimeUnit)
	}
	var runs, phases, instants int
	lastEnd := int64(-1)
	for _, te := range tr.TraceEvents {
		switch {
		case te.Ph == "X" && te.Tid == traceTidRuns:
			runs++
			if te.Ts < lastEnd {
				t.Errorf("run span %q at ts=%d overlaps previous end %d", te.Name, te.Ts, lastEnd)
			}
			lastEnd = te.Ts + te.Dur
		case te.Ph == "X" && te.Tid == traceTidPhases:
			phases++
		case te.Ph == "i":
			instants++
		}
	}
	if runs != 3 {
		t.Errorf("run spans = %d, want 3", runs)
	}
	if phases < 6 { // at least drr+gossip per run
		t.Errorf("phase spans = %d, want >= 6", phases)
	}
	if instants != 3 {
		t.Errorf("fault instants = %d, want 3", instants)
	}
}

func TestMetricsAccumulateAndServe(t *testing.T) {
	m := NewMetrics()
	ev := mkEvent(1, 1, 0, KindRunStart)
	m.Emit(ev)
	ev.Kind = KindFault
	m.Emit(ev)
	ev.Kind = KindRunEnd
	m.Emit(ev)

	snap := m.Snapshot()
	if snap["runs_started"] != 1 || snap["runs_finished"] != 1 || snap["fault_events"] != 1 {
		t.Fatalf("run counters wrong: %v", snap)
	}
	if snap["messages"] != 30 || snap["rounds"] != 3 || snap["events"] != 3 {
		t.Fatalf("delta accumulation wrong: %v", snap)
	}
	if snap["alive_nodes"] != 7 {
		t.Fatalf("alive gauge = %d", snap["alive_nodes"])
	}

	var out bytes.Buffer
	m.WritePrometheus(&out)
	text := out.String()
	for _, want := range []string{
		"drrgossip_runs_started_total 1",
		"drrgossip_messages_total 30",
		"drrgossip_fault_events_total 1",
		"# TYPE drrgossip_rounds_total counter",
		"# TYPE drrgossip_alive_nodes gauge",
		"go_heap_alloc_bytes",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics output missing %q", want)
		}
	}

	srv, addr, err := Serve("127.0.0.1:0", m)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	for _, path := range []string{"/metrics", "/debug/vars", "/debug/pprof/"} {
		resp, err := http.Get("http://" + addr + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Errorf("GET %s: status %d", path, resp.StatusCode)
		}
		resp.Body.Close()
	}
}
