// Package agg defines the aggregate functions of the paper (Min, Max,
// Sum, Count, Average, Rank), exact reference evaluation for verifying
// protocol output, error metrics, and deterministic workload generators
// for the experiments.
package agg

import (
	"fmt"
	"math"

	"drrgossip/internal/xrand"
)

// Kind identifies an aggregate function.
type Kind int

const (
	Min Kind = iota
	Max
	Sum
	Count
	Average
	// Rank is parameterised: Rank(q) = |{i : v_i <= q}|.
	Rank
)

// String returns the aggregate name.
func (k Kind) String() string {
	switch k {
	case Min:
		return "Min"
	case Max:
		return "Max"
	case Sum:
		return "Sum"
	case Count:
		return "Count"
	case Average:
		return "Average"
	case Rank:
		return "Rank"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Kinds lists every supported aggregate.
var Kinds = []Kind{Min, Max, Sum, Count, Average, Rank}

// Exact computes the reference value of the aggregate over values. arg is
// the Rank threshold q and is ignored by the other kinds. It panics on an
// empty input (aggregates of zero nodes are undefined).
func Exact(k Kind, values []float64, arg float64) float64 {
	if len(values) == 0 {
		panic("agg: Exact over empty values")
	}
	switch k {
	case Min:
		m := values[0]
		for _, v := range values[1:] {
			if v < m {
				m = v
			}
		}
		return m
	case Max:
		m := values[0]
		for _, v := range values[1:] {
			if v > m {
				m = v
			}
		}
		return m
	case Sum:
		s := 0.0
		for _, v := range values {
			s += v
		}
		return s
	case Count:
		return float64(len(values))
	case Average:
		return Exact(Sum, values, 0) / float64(len(values))
	case Rank:
		r := 0
		for _, v := range values {
			if v <= arg {
				r++
			}
		}
		return float64(r)
	default:
		panic(fmt.Sprintf("agg: unknown kind %d", int(k)))
	}
}

// RelError returns |got-want| / max(|want|, eps): the relative error used
// by Theorem 7, falling back to absolute error near want == 0 (the paper's
// own convention for xave = 0).
func RelError(got, want float64) float64 {
	d := math.Abs(got - want)
	den := math.Abs(want)
	if den < 1e-12 {
		return d
	}
	return d / den
}

// Quantile returns the exact φ-quantile of values (0 < φ <= 1), defined as
// the smallest v in values with Rank(v) >= ceil(φ·n). Used as the
// reference for the binary-search quantile protocol.
func Quantile(values []float64, phi float64) float64 {
	if len(values) == 0 {
		panic("agg: Quantile over empty values")
	}
	if phi <= 0 || phi > 1 {
		panic("agg: Quantile needs phi in (0,1]")
	}
	target := int(math.Ceil(phi * float64(len(values))))
	// Selection by counting: exact and allocation-light for test sizes.
	best := math.Inf(1)
	for _, v := range values {
		if Exact(Rank, values, v) >= float64(target) && v < best {
			best = v
		}
	}
	return best
}

// --- Workload generators -------------------------------------------------

// GenUniform returns n values uniform in [lo, hi).
func GenUniform(n int, lo, hi float64, seed uint64) []float64 {
	rng := xrand.Derive(seed, 0xA60, 1)
	vs := make([]float64, n)
	for i := range vs {
		vs[i] = lo + (hi-lo)*rng.Float64()
	}
	return vs
}

// GenSpike returns n values that are zero except a single spike of the
// given magnitude at a pseudo-random position — the adversarial placement
// for Max/rumor experiments.
func GenSpike(n int, magnitude float64, seed uint64) []float64 {
	rng := xrand.Derive(seed, 0xA60, 2)
	vs := make([]float64, n)
	vs[rng.Intn(n)] = magnitude
	return vs
}

// GenLinear returns values v_i = i (distinct, known aggregates).
func GenLinear(n int) []float64 {
	vs := make([]float64, n)
	for i := range vs {
		vs[i] = float64(i)
	}
	return vs
}

// GenSigned returns n values uniform in [-hi, hi), exercising the paper's
// mixed-sign analysis for Gossip-ave.
func GenSigned(n int, hi float64, seed uint64) []float64 {
	rng := xrand.Derive(seed, 0xA60, 3)
	vs := make([]float64, n)
	for i := range vs {
		vs[i] = hi * (2*rng.Float64() - 1)
	}
	return vs
}

// GenZeroMean returns values whose exact average is 0 (the xave = 0 corner
// of Theorem 7): pairs (+x, -x), with a final 0 when n is odd.
func GenZeroMean(n int, hi float64, seed uint64) []float64 {
	rng := xrand.Derive(seed, 0xA60, 4)
	vs := make([]float64, n)
	for i := 0; i+1 < n; i += 2 {
		x := hi * rng.Float64()
		vs[i] = x
		vs[i+1] = -x
	}
	return vs
}

// Indicator maps values to 1 where v <= q, else 0: the Rank reduction used
// by the protocols (Rank = Sum of indicators).
func Indicator(values []float64, q float64) []float64 {
	out := make([]float64, len(values))
	for i, v := range values {
		if v <= q {
			out[i] = 1
		}
	}
	return out
}

// Subset returns the values at the given indices (used to restrict
// workloads to alive nodes).
func Subset(values []float64, idx []int) []float64 {
	out := make([]float64, len(idx))
	for i, j := range idx {
		out[i] = values[j]
	}
	return out
}
