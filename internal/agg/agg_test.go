package agg

import (
	"math"
	"testing"
	"testing/quick"
)

func TestExactBasics(t *testing.T) {
	vs := []float64{3, -1, 4, 1, 5, 9, 2, 6}
	cases := []struct {
		k    Kind
		arg  float64
		want float64
	}{
		{Min, 0, -1},
		{Max, 0, 9},
		{Sum, 0, 29},
		{Count, 0, 8},
		{Average, 0, 29.0 / 8},
		{Rank, 3, 4},  // -1,1,2,3
		{Rank, -5, 0}, // below all
		{Rank, 100, 8},
	}
	for _, c := range cases {
		if got := Exact(c.k, vs, c.arg); math.Abs(got-c.want) > 1e-12 {
			t.Fatalf("%v(arg=%v) = %v, want %v", c.k, c.arg, got, c.want)
		}
	}
}

func TestExactEmptyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Exact over empty slice did not panic")
		}
	}()
	Exact(Sum, nil, 0)
}

func TestKindString(t *testing.T) {
	names := map[Kind]string{
		Min: "Min", Max: "Max", Sum: "Sum",
		Count: "Count", Average: "Average", Rank: "Rank",
	}
	for k, want := range names {
		if k.String() != want {
			t.Fatalf("Kind %d String = %q", int(k), k.String())
		}
	}
	if Kind(99).String() != "Kind(99)" {
		t.Fatal("unknown kind formatting")
	}
}

func TestRelError(t *testing.T) {
	if e := RelError(11, 10); math.Abs(e-0.1) > 1e-12 {
		t.Fatalf("RelError = %v", e)
	}
	// Near-zero reference falls back to absolute error.
	if e := RelError(0.5, 0); e != 0.5 {
		t.Fatalf("absolute fallback = %v", e)
	}
	if e := RelError(5, 5); e != 0 {
		t.Fatalf("exact RelError = %v", e)
	}
}

func TestQuantile(t *testing.T) {
	vs := []float64{10, 20, 30, 40}
	cases := []struct {
		phi  float64
		want float64
	}{
		{0.25, 10}, {0.5, 20}, {0.75, 30}, {1.0, 40}, {0.1, 10},
	}
	for _, c := range cases {
		if got := Quantile(vs, c.phi); got != c.want {
			t.Fatalf("Quantile(%v) = %v, want %v", c.phi, got, c.want)
		}
	}
}

func TestQuantileValidation(t *testing.T) {
	for _, fn := range []func(){
		func() { Quantile(nil, 0.5) },
		func() { Quantile([]float64{1}, 0) },
		func() { Quantile([]float64{1}, 1.5) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("invalid Quantile call did not panic")
				}
			}()
			fn()
		}()
	}
}

func TestGenUniform(t *testing.T) {
	vs := GenUniform(10000, 2, 5, 42)
	if len(vs) != 10000 {
		t.Fatalf("len = %d", len(vs))
	}
	sum := 0.0
	for _, v := range vs {
		if v < 2 || v >= 5 {
			t.Fatalf("value %v out of [2,5)", v)
		}
		sum += v
	}
	if mean := sum / 10000; math.Abs(mean-3.5) > 0.05 {
		t.Fatalf("mean = %v, want ~3.5", mean)
	}
	// Deterministic for equal seeds.
	vs2 := GenUniform(10000, 2, 5, 42)
	for i := range vs {
		if vs[i] != vs2[i] {
			t.Fatal("GenUniform not deterministic")
		}
	}
}

func TestGenSpike(t *testing.T) {
	vs := GenSpike(1000, 7.5, 3)
	nonzero := 0
	for _, v := range vs {
		if v != 0 {
			nonzero++
			if v != 7.5 {
				t.Fatalf("spike value %v", v)
			}
		}
	}
	if nonzero != 1 {
		t.Fatalf("spike count = %d", nonzero)
	}
}

func TestGenLinear(t *testing.T) {
	vs := GenLinear(5)
	for i, v := range vs {
		if v != float64(i) {
			t.Fatalf("GenLinear[%d] = %v", i, v)
		}
	}
}

func TestGenZeroMean(t *testing.T) {
	for _, n := range []int{10, 11} {
		vs := GenZeroMean(n, 4, 9)
		if math.Abs(Exact(Average, vs, 0)) > 1e-12 {
			t.Fatalf("n=%d: GenZeroMean average = %v", n, Exact(Average, vs, 0))
		}
	}
}

func TestGenSignedRange(t *testing.T) {
	vs := GenSigned(5000, 3, 8)
	neg := 0
	for _, v := range vs {
		if v < -3 || v >= 3 {
			t.Fatalf("signed value %v out of range", v)
		}
		if v < 0 {
			neg++
		}
	}
	if neg < 2000 || neg > 3000 {
		t.Fatalf("sign balance off: %d negatives of 5000", neg)
	}
}

func TestIndicator(t *testing.T) {
	vs := []float64{1, 5, 3, 7}
	ind := Indicator(vs, 3)
	want := []float64{1, 0, 1, 0}
	for i := range want {
		if ind[i] != want[i] {
			t.Fatalf("Indicator = %v", ind)
		}
	}
}

func TestSubset(t *testing.T) {
	vs := []float64{10, 20, 30, 40}
	out := Subset(vs, []int{3, 0})
	if len(out) != 2 || out[0] != 40 || out[1] != 10 {
		t.Fatalf("Subset = %v", out)
	}
}

// Property: Rank(q) is monotone in q and Rank(Max) = n; Rank relates to
// Indicator by Rank = Sum(Indicator).
func TestRankProperties(t *testing.T) {
	f := func(seed uint16, sz uint8) bool {
		n := int(sz%50) + 1
		vs := GenUniform(n, -10, 10, uint64(seed))
		q1, q2 := vs[0], vs[n/2]
		if q1 > q2 {
			q1, q2 = q2, q1
		}
		if Exact(Rank, vs, q1) > Exact(Rank, vs, q2) {
			return false
		}
		if Exact(Rank, vs, Exact(Max, vs, 0)) != float64(n) {
			return false
		}
		ind := Indicator(vs, q2)
		return Exact(Sum, ind, 0) == Exact(Rank, vs, q2)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: Min <= Average <= Max, and Sum = Average * Count.
func TestAggregateConsistency(t *testing.T) {
	f := func(seed uint16, sz uint8) bool {
		n := int(sz%60) + 1
		vs := GenSigned(n, 100, uint64(seed))
		mn := Exact(Min, vs, 0)
		mx := Exact(Max, vs, 0)
		av := Exact(Average, vs, 0)
		sm := Exact(Sum, vs, 0)
		ct := Exact(Count, vs, 0)
		if mn > av+1e-9 || av > mx+1e-9 {
			return false
		}
		return math.Abs(sm-av*ct) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: Quantile(phi) has rank >= ceil(phi*n) and is a value from the
// input.
func TestQuantileProperties(t *testing.T) {
	f := func(seed uint16, sz uint8) bool {
		n := int(sz%40) + 1
		vs := GenUniform(n, 0, 1, uint64(seed))
		for _, phi := range []float64{0.1, 0.5, 0.9, 1.0} {
			q := Quantile(vs, phi)
			found := false
			for _, v := range vs {
				if v == q {
					found = true
					break
				}
			}
			if !found {
				return false
			}
			if Exact(Rank, vs, q) < math.Ceil(phi*float64(n)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
