package localdrr

import (
	"math"
	"testing"

	"drrgossip/internal/chord"
	"drrgossip/internal/graph"
	"drrgossip/internal/sim"
)

func run(t *testing.T, g *graph.Graph, opts sim.Options) *Result {
	t.Helper()
	eng := sim.NewEngine(g.N(), opts)
	res, err := Run(eng, g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestForestValidOnRing(t *testing.T) {
	res := run(t, graph.Ring(500), sim.Options{Seed: 1})
	if err := res.Forest.Validate(); err != nil {
		t.Fatal(err)
	}
	if res.Forest.NumMembers() != 500 {
		t.Fatalf("members = %d", res.Forest.NumMembers())
	}
}

func TestParentIsNeighbourWithHigherRank(t *testing.T) {
	g := graph.MustRandomRegular(400, 6, 3)
	res := run(t, g, sim.Options{Seed: 2})
	f := res.Forest
	for i := 0; i < f.N(); i++ {
		p := f.Parent(i)
		if p < 0 {
			continue
		}
		if !g.HasEdge(i, p) {
			t.Fatalf("parent %d of %d is not a neighbour", p, i)
		}
		if !(res.Ranks[p] > res.Ranks[i]) {
			t.Fatalf("rank order violated on edge (%d,%d)", i, p)
		}
	}
}

func TestLosslessParentIsHighestNeighbour(t *testing.T) {
	g := graph.Torus(10, 10)
	res := run(t, g, sim.Options{Seed: 3})
	f := res.Forest
	for i := 0; i < f.N(); i++ {
		bestNb, bestRank := -1, math.Inf(-1)
		for _, nb := range g.Neighbors(i) {
			if res.Ranks[nb] > bestRank {
				bestNb, bestRank = nb, res.Ranks[nb]
			}
		}
		if bestRank > res.Ranks[i] {
			if f.Parent(i) != bestNb {
				t.Fatalf("node %d: parent %d, want highest neighbour %d", i, f.Parent(i), bestNb)
			}
		} else if !f.IsRoot(i) {
			t.Fatalf("node %d outranks all neighbours but is not a root", i)
		}
	}
}

func TestRootsAreLocalMaxima(t *testing.T) {
	g := graph.Ring(300)
	res := run(t, g, sim.Options{Seed: 4})
	for _, r := range res.Forest.Roots() {
		for _, nb := range g.Neighbors(r) {
			if res.Ranks[nb] > res.Ranks[r] {
				t.Fatalf("root %d has higher-ranked neighbour %d", r, nb)
			}
		}
	}
}

func TestHeightTheorem11(t *testing.T) {
	// Theorem 11: max tree height O(log n) whp on arbitrary graphs.
	for _, g := range []*graph.Graph{
		graph.Ring(4096),
		graph.Torus(64, 64),
		graph.MustRandomRegular(4096, 8, 5),
		graph.Hypercube(12),
	} {
		res := run(t, g, sim.Options{Seed: 6})
		h := float64(res.Forest.MaxHeight())
		bound := 6 * math.Log2(float64(g.N()))
		if h > bound {
			t.Fatalf("%s: max height %v > 6 log n = %v", g.Name(), h, bound)
		}
	}
}

func TestTreeCountTheorem13(t *testing.T) {
	// Theorem 13: E[#trees] = Σ 1/(d_i+1); on a d-regular graph n/(d+1).
	for _, tc := range []struct {
		g *graph.Graph
	}{
		{graph.Ring(3000)},
		{graph.Torus(50, 60)},
		{graph.MustRandomRegular(3000, 9, 7)},
	} {
		res := run(t, tc.g, sim.Options{Seed: 8})
		got := float64(res.Forest.NumTrees())
		want := tc.g.HarmonicDegreeSum()
		if math.Abs(got-want) > 6*math.Sqrt(want) {
			t.Fatalf("%s: trees = %v, want ~%v", tc.g.Name(), got, want)
		}
	}
}

func TestOnChordGraph(t *testing.T) {
	r := chord.MustNew(1024, chord.Options{Bits: 30, Placement: chord.Hashed, Seed: 9})
	g := r.Graph()
	res := run(t, g, sim.Options{Seed: 10})
	if err := res.Forest.Validate(); err != nil {
		t.Fatal(err)
	}
	if h := res.Forest.MaxHeight(); float64(h) > 6*math.Log2(1024) {
		t.Fatalf("chord max height %d", h)
	}
}

func TestConstantRoundsLinearMessages(t *testing.T) {
	g := graph.MustRandomRegular(2048, 8, 11)
	res := run(t, g, sim.Options{Seed: 12})
	// 1 rank-exchange round + <= 8 connection rounds.
	if res.Stats.Rounds > 10 {
		t.Fatalf("rounds = %d", res.Stats.Rounds)
	}
	// Messages: 2|E| rank exchange + <= 2n connection handshakes.
	bound := int64(2*g.NumEdges() + 2*g.N() + 16)
	if res.Stats.Messages > bound {
		t.Fatalf("messages = %d > %d", res.Stats.Messages, bound)
	}
}

func TestUnderLossStillValid(t *testing.T) {
	g := graph.Torus(40, 40)
	eng := sim.NewEngine(g.N(), sim.Options{Seed: 13, Loss: 0.125})
	res, err := Run(eng, g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Forest.Validate(); err != nil {
		t.Fatal(err)
	}
	// Rank order must hold even when boundaries shifted due to loss.
	for i := 0; i < g.N(); i++ {
		if p := res.Forest.Parent(i); p >= 0 && !(res.Ranks[p] > res.Ranks[i]) {
			t.Fatalf("rank order violated under loss at %d", i)
		}
	}
}

func TestWithCrashes(t *testing.T) {
	g := graph.MustRandomRegular(1000, 6, 14)
	eng := sim.NewEngine(g.N(), sim.Options{Seed: 15, CrashFrac: 0.2})
	res, err := Run(eng, g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Forest.Validate(); err != nil {
		t.Fatal(err)
	}
	if res.Forest.NumMembers() != eng.NumAlive() {
		t.Fatalf("members %d != alive %d", res.Forest.NumMembers(), eng.NumAlive())
	}
}

func TestGraphSizeMismatch(t *testing.T) {
	eng := sim.NewEngine(10, sim.Options{Seed: 1})
	if _, err := Run(eng, graph.Ring(20), Options{}); err == nil {
		t.Fatal("size mismatch accepted")
	}
}

func TestDeterminism(t *testing.T) {
	g := graph.Ring(256)
	a := run(t, g, sim.Options{Seed: 16})
	b := run(t, g, sim.Options{Seed: 16})
	for i := 0; i < 256; i++ {
		if a.Forest.Parent(i) != b.Forest.Parent(i) {
			t.Fatalf("forests differ at %d", i)
		}
	}
}

func TestStarGraph(t *testing.T) {
	// On a star, every leaf with rank below the hub attaches to the hub;
	// every leaf outranking the hub becomes a singleton root (its only
	// neighbour is lower-ranked); the hub attaches to its best leaf if one
	// outranks it.
	res := run(t, graph.Star(100), sim.Options{Seed: 17})
	if err := res.Forest.Validate(); err != nil {
		t.Fatal(err)
	}
	hubRank := res.Ranks[0]
	hubParent := res.Forest.Parent(0)
	for leaf := 1; leaf < 100; leaf++ {
		switch {
		case res.Ranks[leaf] < hubRank:
			if res.Forest.Parent(leaf) != 0 {
				t.Fatalf("low leaf %d not attached to hub", leaf)
			}
		case leaf == hubParent:
			// The hub's best leaf roots the hub's tree.
			if !res.Forest.IsRoot(leaf) {
				t.Fatalf("hub parent %d is not a root", leaf)
			}
		default:
			if !res.Forest.IsRoot(leaf) || res.Forest.TreeSize(leaf) != 1 {
				t.Fatalf("high leaf %d should be a singleton root", leaf)
			}
		}
	}
}

func BenchmarkLocalDRRTorus(b *testing.B) {
	g := graph.Torus(64, 64)
	for i := 0; i < b.N; i++ {
		eng := sim.NewEngine(g.N(), sim.Options{Seed: uint64(i)})
		if _, err := Run(eng, g, Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

func TestHeavyTailBarabasiAlbert(t *testing.T) {
	// Heavy-tailed degrees: hubs almost never become roots, leaves often
	// do; Theorem 13's harmonic sum still nails the tree count and
	// Theorem 11's height bound still holds.
	g := graph.BarabasiAlbert(4096, 3, 21)
	res := run(t, g, sim.Options{Seed: 22})
	if err := res.Forest.Validate(); err != nil {
		t.Fatal(err)
	}
	want := g.HarmonicDegreeSum()
	got := float64(res.Forest.NumTrees())
	if math.Abs(got-want) > 6*math.Sqrt(want) {
		t.Fatalf("BA trees = %v, want ~%v", got, want)
	}
	if h := float64(res.Forest.MaxHeight()); h > 6*math.Log2(4096) {
		t.Fatalf("BA max height %v", h)
	}
}
