// Package localdrr implements the Local-DRR algorithm of Section 4: the
// DRR variant for sparse networks where a node exchanges rank information
// only with its immediate neighbours (and may message all of them in one
// round, the standard message-passing assumption).
//
// Every node picks a rank uniformly at random from [0,1] and connects to
// its highest-ranked neighbour; a node whose rank beats all its
// neighbours' becomes a root. Edges point up in rank, so the result is a
// forest whose trees have height O(log n) whp on any graph (Theorem 11)
// and whose expected tree count is Σ_i 1/(d_i + 1) (Theorem 13). Phase I
// costs O(1) rounds and O(|E|) messages.
//
// Under message loss a node simply ranks the neighbours it heard from
// (unheard neighbours are treated as absent); since every edge still goes
// to a strictly higher rank, the forest stays acyclic — loss only shifts
// the tree boundaries. Rank exchange may be repeated a few rounds to
// shrink the unheard set.
package localdrr

import (
	"fmt"
	"math"

	"drrgossip/internal/bitset"
	"drrgossip/internal/forest"
	"drrgossip/internal/graph"
	"drrgossip/internal/sim"
)

// Options tune Local-DRR. The zero value reproduces the paper.
type Options struct {
	// RankExchangeRounds repeats the neighbour rank broadcast to mask
	// loss. 0 means 1 round when the engine is lossless, 4 otherwise.
	RankExchangeRounds int
	// ConnectRetries bounds connection retransmissions (0 means 8).
	ConnectRetries int
}

// Result is the outcome of Local-DRR.
type Result struct {
	Forest *forest.Forest
	Ranks  []float64
	Stats  sim.Counters
	// Orphans counts nodes whose connection message was never
	// acknowledged; they fall back to roots.
	Orphans int
}

const kindRank uint8 = 0x11
const kindConnect uint8 = 0x12

// Run executes Local-DRR on the engine over graph g (g.N() == eng.N()).
func Run(eng *sim.Engine, g *graph.Graph, opts Options) (*Result, error) {
	n := eng.N()
	if g.N() != n {
		return nil, fmt.Errorf("localdrr: graph has %d nodes, engine %d", g.N(), n)
	}
	exchanges := opts.RankExchangeRounds
	if exchanges == 0 {
		if eng.Loss() == 0 {
			exchanges = 1
		} else {
			exchanges = 4
		}
	}
	retries := opts.ConnectRetries
	if retries == 0 {
		retries = 8
	}
	start := eng.Stats()

	ranks := make([]float64, n)
	sim.ParallelFor(n, func(i int) {
		if eng.Alive(i) {
			ranks[i] = eng.RNG(i).Float64()
		} else {
			ranks[i] = math.NaN()
		}
	})

	// Rank exchange: every node sends its rank to all neighbours (the
	// sparse model allows simultaneous neighbour messages in one round).
	best := make([]int, n) // highest-ranked neighbour heard from, -1 none
	bestRank := make([]float64, n)
	for i := range best {
		best[i] = -1
		bestRank[i] = math.Inf(-1)
	}
	// nbuf is this run's private neighbour buffer: parallel batch workers
	// share one overlay graph, so the graph-owned Neighbors scratch of
	// implicit/CSR representations must not be touched from here.
	nbuf := make([]int, 0, 64)
	for r := 0; r < exchanges; r++ {
		for i := 0; i < n; i++ {
			if !eng.Alive(i) {
				continue
			}
			nbuf = g.NeighborsInto(i, nbuf)
			for _, nb := range nbuf {
				eng.Send(i, nb, sim.Payload{Kind: kindRank, A: ranks[i], X: int64(i)})
			}
		}
		eng.Tick()
		sim.ParallelFor(n, func(i int) {
			if !eng.Alive(i) {
				return
			}
			for _, m := range eng.Inbox(i) {
				if m.Pay.Kind == kindRank && m.Pay.A > bestRank[i] {
					bestRank[i] = m.Pay.A
					best[i] = int(m.Pay.X)
				}
			}
		})
	}

	// Local decision: connect to the highest-ranked neighbour if it
	// outranks us, else become a root.
	parent := make([]int, n)
	for i := 0; i < n; i++ {
		switch {
		case !eng.Alive(i):
			parent[i] = forest.NotMember
		case best[i] >= 0 && bestRank[i] > ranks[i]:
			parent[i] = best[i]
		default:
			parent[i] = forest.Root
		}
	}

	// Connection handshake with ack/retransmit, as in global DRR. The ack
	// set is a dense bitset (n/8 bytes) mutated only from the sequential
	// ResolveCalls path.
	acked := bitset.New(n)
	calls := make([]sim.Call, n)
	orphans := 0
	for attempt := 0; attempt < retries; attempt++ {
		eng.Tick()
		active := false
		for i := 0; i < n; i++ {
			calls[i] = sim.Call{}
			if !eng.Alive(i) || parent[i] < 0 || acked.Test(i) {
				continue
			}
			active = true
			calls[i] = sim.Call{Active: true, To: parent[i], Pay: sim.Payload{Kind: kindConnect, X: int64(i)}}
		}
		if !active {
			break
		}
		eng.ResolveCalls(calls,
			func(callee, caller int, req sim.Payload) (sim.Payload, bool) {
				return sim.Payload{Kind: kindConnect}, true
			},
			func(caller int, resp sim.Payload) {
				acked.Set(caller)
			})
	}
	for i := 0; i < n; i++ {
		if parent[i] >= 0 && !acked.Test(i) {
			parent[i] = forest.Root
			orphans++
		}
	}
	// Dynamic membership: drop nodes that crashed during the phase and
	// promote their orphaned children (no-op in the static model).
	orphans += forest.RepairParents(parent, eng.Alive)
	f, err := forest.FromParents(parent)
	if err != nil {
		return nil, fmt.Errorf("localdrr: invalid forest: %w", err)
	}
	return &Result{
		Forest:  f,
		Ranks:   ranks,
		Stats:   eng.Stats().Sub(start),
		Orphans: orphans,
	}, nil
}
