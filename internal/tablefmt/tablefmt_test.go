package tablefmt

import (
	"strings"
	"testing"
)

func TestRenderBasics(t *testing.T) {
	tb := New("demo", "n", "rounds", "msgs")
	tb.AddRow(1024, 17, 40960)
	tb.AddRow(2048, 19, 90112)
	out := tb.String()
	for _, want := range []string{"== demo ==", "n", "rounds", "msgs", "1024", "90112"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 { // title, header, rule, 2 rows
		t.Fatalf("got %d lines:\n%s", len(lines), out)
	}
}

func TestFloatFormatting(t *testing.T) {
	tb := New("", "a", "b", "c")
	tb.AddRow(3.0, 0.12345, 0.0000123)
	out := tb.String()
	for _, want := range []string{"3", "0.123", "1.23e-05"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
}

func TestAlignment(t *testing.T) {
	tb := New("", "name", "value")
	tb.AddRow("a", 1)
	tb.AddRow("longer-name", 2)
	out := tb.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	// All data lines must start their second column at the same offset.
	idx := strings.Index(lines[0], "value")
	if idx < 0 {
		t.Fatalf("no header:\n%s", out)
	}
	for _, ln := range lines[2:] {
		if len(ln) <= idx {
			t.Fatalf("row too short for alignment: %q", ln)
		}
	}
}

func TestNotes(t *testing.T) {
	tb := New("t", "x")
	tb.AddRow(1)
	tb.AddNote("shape fit: %s", "n log n")
	if !strings.Contains(tb.String(), "note: shape fit: n log n") {
		t.Fatalf("missing note:\n%s", tb.String())
	}
}

func TestNoTitle(t *testing.T) {
	tb := New("", "x")
	tb.AddRow(5)
	if strings.Contains(tb.String(), "==") {
		t.Fatal("unexpected title marker")
	}
}
