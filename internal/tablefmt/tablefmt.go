// Package tablefmt renders fixed-width text tables for the experiment
// harness. Output is deterministic and aligned so tables can be diffed
// across runs and pasted into EXPERIMENTS.md.
package tablefmt

import (
	"fmt"
	"strings"
)

// Table accumulates rows and renders them with aligned columns.
type Table struct {
	title   string
	headers []string
	rows    [][]string
	notes   []string
}

// New returns a table with the given title and column headers.
func New(title string, headers ...string) *Table {
	return &Table{title: title, headers: headers}
}

// AddRow appends a row; cells are formatted with %v.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = formatFloat(v)
		case string:
			row[i] = v
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.rows = append(t.rows, row)
}

// AddNote appends a free-form footnote printed under the table.
func (t *Table) AddNote(format string, args ...any) {
	t.notes = append(t.notes, fmt.Sprintf(format, args...))
}

// formatFloat prints floats compactly: integers without decimals, small
// values with enough precision to be meaningful.
func formatFloat(v float64) string {
	switch {
	case v == float64(int64(v)) && v < 1e15 && v > -1e15:
		return fmt.Sprintf("%d", int64(v))
	case v != 0 && (v < 0.001 && v > -0.001):
		return fmt.Sprintf("%.2e", v)
	default:
		return fmt.Sprintf("%.3f", v)
	}
}

// String renders the table.
func (t *Table) String() string {
	widths := make([]int, len(t.headers))
	for i, h := range t.headers {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.title != "" {
		fmt.Fprintf(&b, "== %s ==\n", t.title)
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.headers)
	total := 0
	for _, w := range widths {
		total += w + 2
	}
	if total >= 2 {
		total -= 2
	}
	b.WriteString(strings.Repeat("-", total))
	b.WriteByte('\n')
	for _, row := range t.rows {
		writeRow(row)
	}
	for _, n := range t.notes {
		fmt.Fprintf(&b, "  note: %s\n", n)
	}
	return b.String()
}
