package experiments

import (
	"drrgossip/internal/agg"
	"drrgossip/internal/drrgossip"
	"drrgossip/internal/karp"
	"drrgossip/internal/metrics"
	"drrgossip/internal/oblivious"
	"drrgossip/internal/sim"
	"drrgossip/internal/tablefmt"
	"drrgossip/internal/xrand"
)

// RunF12 exhibits the Theorem 15 separation: address-oblivious aggregate
// computation costs Θ(n log n) messages (measured against the proof's
// knowledge criterion with the best oblivious protocol), while
// single-rumor spreading (Karp et al.) and non-address-oblivious
// DRR-gossip both cost Θ(n loglog n).
func RunF12(cfg Config) (*Report, error) {
	ns := cfg.sizes([]int{512, 1024, 2048, 4096, 8192})
	trials := cfg.trials(3)
	tb := tablefmt.New("Theorem 15: per-node messages to compute Max",
		"n", "oblivious(half)", "oblivious(all)", "karp rumor", "drr-gossip")
	var obl, oblAll, rumor, drrm []float64
	for _, n := range ns {
		var o, oa, ru, dg []float64
		for trial := 0; trial < trials; trial++ {
			seed := xrand.Hash(cfg.Seed, 0xFC, uint64(n), uint64(trial))

			// Address-oblivious aggregate computation: knowledge-set
			// push-pull against the adversary criterion.
			ores, err := oblivious.Run(n, oblivious.Options{Protocol: oblivious.PushPull, Seed: seed})
			if err != nil {
				return nil, err
			}
			if ores.RoundsHalf < 0 || ores.RoundsAll < 0 {
				return nil, errIncomplete(n)
			}
			o = append(o, float64(ores.MessagesHalf)/float64(n))
			oa = append(oa, float64(ores.MessagesAll)/float64(n))

			// Rumor spreading: one value to everyone.
			kres, err := karp.Spread(sim.NewEngine(n, sim.Options{Seed: seed + 1}), 0, karp.Options{})
			if err != nil {
				return nil, err
			}
			ru = append(ru, float64(kres.Transmissions)/float64(n))

			// Non-address-oblivious aggregate computation: DRR-gossip.
			values := agg.GenUniform(n, 0, 100, seed)
			dres, err := drrgossip.Max(sim.NewEngine(n, sim.Options{Seed: seed + 2}), values, drrgossip.Options{})
			if err != nil {
				return nil, err
			}
			dg = append(dg, float64(dres.Stats.Messages)/float64(n))
		}
		tb.AddRow(n, metrics.Mean(o), metrics.Mean(oa), metrics.Mean(ru), metrics.Mean(dg))
		obl = append(obl, metrics.Mean(o))
		oblAll = append(oblAll, metrics.Mean(oa))
		rumor = append(rumor, metrics.Mean(ru))
		drrm = append(drrm, metrics.Mean(dg))
	}
	nf := floats(ns)
	last := len(ns) - 1
	tb.AddNote("oblivious(half) fit: %s", metrics.FitAffineBest(nf, obl, metrics.TimeShapes)[0])
	tb.AddNote("karp fit: %s", metrics.FitAffineBest(nf, rumor, metrics.TimeShapes)[0])
	tb.AddNote("drr fit: %s", metrics.FitAffineBest(nf, drrm, metrics.TimeShapes)[0])
	verdicts := []Verdict{
		verdictf("oblivious aggregate messages grow like log n, not loglog n",
			metrics.CloserShape(nf, obl, metrics.ShapeLogN, metrics.ShapeLogLogN),
			"msgs/n %v -> %v", obl[0], obl[last]),
		verdictf("rumor spreading grows like loglog n, not log n",
			metrics.CloserShape(nf, rumor, metrics.ShapeLogLogN, metrics.ShapeLogN),
			"msgs/n %v -> %v", rumor[0], rumor[last]),
		verdictf("drr-gossip grows like loglog n, not log n",
			metrics.CloserShape(nf, drrm, metrics.ShapeLogLogN, metrics.ShapeLogN),
			"msgs/n %v -> %v", drrm[0], drrm[last]),
		verdictf("aggregation strictly harder than rumor spreading obliviously: gap widens",
			obl[last]-rumor[last] > obl[0]-rumor[0],
			"oblivious-rumor gap %v -> %v msgs/node", obl[0]-rumor[0], obl[last]-rumor[last]),
	}
	return &Report{ID: "F12", Title: "Lower-bound separation", Tables: []string{tb.String()}, Verdicts: verdicts}, nil
}

type incompleteError int

func (e incompleteError) Error() string {
	return "experiments: oblivious run never met the criterion at n=" + itoa(int(e))
}

func errIncomplete(n int) error { return incompleteError(n) }
