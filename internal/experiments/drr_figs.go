package experiments

import (
	"math"

	"drrgossip/internal/drr"
	"drrgossip/internal/metrics"
	"drrgossip/internal/sim"
	"drrgossip/internal/tablefmt"
	"drrgossip/internal/xrand"
)

// drrSweep runs Phase I across sizes and trials, collecting per-trial
// tree counts, max sizes, probes and stats.
type drrPoint struct {
	trees    []float64
	maxSize  []float64
	messages []float64
	rounds   []float64
	probes   []float64 // per-node average
}

func drrSweep(cfg Config, ns []int, trials int) (map[int]*drrPoint, error) {
	out := make(map[int]*drrPoint, len(ns))
	for _, n := range ns {
		p := &drrPoint{}
		for trial := 0; trial < trials; trial++ {
			seed := xrand.Hash(cfg.Seed, 0xF2, uint64(n), uint64(trial))
			eng := sim.NewEngine(n, sim.Options{Seed: seed})
			res, err := drr.Run(eng, drr.Options{})
			if err != nil {
				return nil, err
			}
			p.trees = append(p.trees, float64(res.Forest.NumTrees()))
			p.maxSize = append(p.maxSize, float64(res.Forest.MaxTreeSize()))
			p.messages = append(p.messages, float64(res.Stats.Messages))
			p.rounds = append(p.rounds, float64(res.Stats.Rounds))
			p.probes = append(p.probes, float64(res.TotalProbes())/float64(n))
		}
		out[n] = p
	}
	return out, nil
}

// RunF2 validates Theorem 2: the DRR forest has Θ(n/log n) trees.
func RunF2(cfg Config) (*Report, error) {
	ns := cfg.sizes([]int{1024, 2048, 4096, 8192, 16384, 32768})
	trials := cfg.trials(5)
	sweep, err := drrSweep(cfg, ns, trials)
	if err != nil {
		return nil, err
	}
	tb := tablefmt.New("Theorem 2: number of DRR trees vs n/log n",
		"n", "trees(mean)", "trees(std)", "n/log n", "ratio")
	var ratios, treesMean []float64
	for _, n := range ns {
		p := sweep[n]
		mean := metrics.Mean(p.trees)
		ref := float64(n) / math.Log2(float64(n))
		tb.AddRow(n, mean, metrics.Std(p.trees), ref, mean/ref)
		ratios = append(ratios, mean/ref)
		treesMean = append(treesMean, mean)
	}
	nf := floats(ns)
	fit := metrics.FitAffineBest(nf, treesMean, []metrics.Shape{
		metrics.ShapeNOverLogN, metrics.ShapeN, metrics.ShapeNLogLogN})
	tb.AddNote("tree-count affine fit: %s", fit[0])
	lo, hi := metrics.MinMax(ratios)
	verdicts := []Verdict{
		verdictf("trees grow like n/log n, not n",
			fit[0].Shape.Name == "n/log n",
			"best fit %s", fit[0]),
		verdictf("trees/(n/log n) stays within a constant band",
			hi/lo < 1.6 && lo > 0.2 && hi < 6,
			"ratio range [%v, %v]", lo, hi),
	}
	return &Report{ID: "F2", Title: "DRR tree count", Tables: []string{tb.String()}, Verdicts: verdicts}, nil
}

// RunF3 validates Theorem 3: every DRR tree has O(log n) nodes.
func RunF3(cfg Config) (*Report, error) {
	ns := cfg.sizes([]int{1024, 2048, 4096, 8192, 16384, 32768})
	trials := cfg.trials(5)
	sweep, err := drrSweep(cfg, ns, trials)
	if err != nil {
		return nil, err
	}
	tb := tablefmt.New("Theorem 3: largest DRR tree vs log n",
		"n", "maxsize(mean)", "maxsize(max)", "log n", "mean/log n")
	var maxRatio float64
	var meanSizes []float64
	for _, n := range ns {
		p := sweep[n]
		mean := metrics.Mean(p.maxSize)
		_, worst := metrics.MinMax(p.maxSize)
		logn := math.Log2(float64(n))
		tb.AddRow(n, mean, worst, logn, mean/logn)
		meanSizes = append(meanSizes, mean)
		if r := worst / logn; r > maxRatio {
			maxRatio = r
		}
	}
	nf := floats(ns)
	verdicts := []Verdict{
		// Theorem 3's whp constant is unspecified; empirically the
		// largest tree's size sits between 5 and ~20 times log2 n, with
		// an exponential tail (the proof bounds P(size >= c log n) by
		// b^(c log n) for b < 1).
		verdictf("worst observed tree stays within a constant times log n",
			maxRatio < 25,
			"max maxsize/log n = %v", maxRatio),
		verdictf("max tree size grows like log n, not like n",
			metrics.CloserShape(nf, meanSizes, metrics.ShapeLogN, metrics.ShapeN),
			"mean max sizes %v", meanSizes),
	}
	return &Report{ID: "F3", Title: "DRR tree size", Tables: []string{tb.String()}, Verdicts: verdicts}, nil
}

// RunF4 validates Theorem 4: Phase I costs O(n loglog n) messages and
// O(log n) rounds; expected probes per node are O(loglog n).
func RunF4(cfg Config) (*Report, error) {
	ns := cfg.sizes([]int{1024, 2048, 4096, 8192, 16384, 32768})
	trials := cfg.trials(5)
	sweep, err := drrSweep(cfg, ns, trials)
	if err != nil {
		return nil, err
	}
	tb := tablefmt.New("Theorem 4: DRR message and time complexity",
		"n", "msgs/n", "probes/node", "loglog n", "rounds", "log n")
	var msgsPerNode, probes, rounds []float64
	for _, n := range ns {
		p := sweep[n]
		m := metrics.Mean(p.messages) / float64(n)
		pr := metrics.Mean(p.probes)
		r := metrics.Mean(p.rounds)
		tb.AddRow(n, m, pr, math.Log2(math.Log2(float64(n))), r, math.Log2(float64(n)))
		msgsPerNode = append(msgsPerNode, m)
		probes = append(probes, pr)
		rounds = append(rounds, r)
	}
	nf := floats(ns)
	tb.AddNote("msgs/n affine fit: %s", metrics.FitAffineBest(nf, msgsPerNode, metrics.TimeShapes)[0])
	verdicts := []Verdict{
		verdictf("messages/n grow like loglog n, not log n",
			metrics.CloserShape(nf, msgsPerNode, metrics.ShapeLogLogN, metrics.ShapeLogN),
			"msgs/n %v -> %v", msgsPerNode[0], msgsPerNode[len(msgsPerNode)-1]),
		verdictf("probes/node grow like loglog n, not log n",
			metrics.CloserShape(nf, probes, metrics.ShapeLogLogN, metrics.ShapeLogN),
			"probes/node %v -> %v", probes[0], probes[len(probes)-1]),
		verdictf("rounds grow like log n",
			metrics.CloserShape(nf, rounds, metrics.ShapeLogN, metrics.ShapeLogLogN) &&
				metrics.CloserShape(nf, rounds, metrics.ShapeLogN, metrics.ShapeLog2N),
			"rounds %v -> %v", rounds[0], rounds[len(rounds)-1]),
	}
	return &Report{ID: "F4", Title: "DRR complexity", Tables: []string{tb.String()}, Verdicts: verdicts}, nil
}
