package experiments

import (
	"drrgossip/internal/agg"
	"drrgossip/internal/drrgossip"
	"drrgossip/internal/kashyap"
	"drrgossip/internal/kempe"
	"drrgossip/internal/metrics"
	"drrgossip/internal/sim"
	"drrgossip/internal/tablefmt"
	"drrgossip/internal/xrand"
)

// algoRun is one algorithm's measured cost for computing Ave.
type algoRun struct {
	rounds   float64
	messages float64
	relErr   float64
}

// add accumulates another run into the receiver.
func (a *algoRun) add(o algoRun) {
	a.rounds += o.rounds
	a.messages += o.messages
	a.relErr += o.relErr
}

// RunT1 reproduces Table 1: all three algorithms compute the Average at
// every size; we report rounds, messages and messages/node, then verify
// the complexity shapes the table claims.
func RunT1(cfg Config) (*Report, error) {
	ns := cfg.sizes([]int{256, 512, 1024, 2048, 4096, 8192, 16384})
	trials := cfg.trials(3)

	series := map[string][]algoRun{}
	for _, n := range ns {
		values := agg.GenUniform(n, 0, 100, xrand.Hash(cfg.Seed, uint64(n)))
		want := agg.Exact(agg.Average, values, 0)
		// Trials are independent replications: fan them across workers
		// (each on its own engines, seeded per trial) and reduce the
		// per-trial slots in trial order, so the float accumulation — and
		// with it the whole report — is bit-identical for any worker count.
		type trialOut struct {
			drr, kas, kem algoRun
			err           error
		}
		outs := make([]trialOut, trials)
		sim.ForEachRun(trials, cfg.workers(), func(trial int) {
			o := &outs[trial]
			seed := xrand.Hash(cfg.Seed, 0x71, uint64(n), uint64(trial))

			dres, err := drrgossip.Ave(sim.NewEngine(n, sim.Options{Seed: seed}), values, drrgossip.Options{})
			if err != nil {
				o.err = err
				return
			}
			o.drr = algoRun{
				rounds:   float64(dres.Stats.Rounds),
				messages: float64(dres.Stats.Messages),
				relErr:   agg.RelError(dres.Value, want),
			}

			kres, err := kashyap.Ave(sim.NewEngine(n, sim.Options{Seed: seed + 1}), values, kashyap.Options{})
			if err != nil {
				o.err = err
				return
			}
			o.kas = algoRun{
				rounds:   float64(kres.Stats.Rounds),
				messages: float64(kres.Stats.Messages),
				relErr:   agg.RelError(kres.Value, want),
			}

			mres, err := kempe.PushSum(sim.NewEngine(n, sim.Options{Seed: seed + 2}), values, kempe.Options{})
			if err != nil {
				o.err = err
				return
			}
			worst := 0.0
			for _, v := range mres.Estimates {
				if e := agg.RelError(v, want); e > worst {
					worst = e
				}
			}
			o.kem = algoRun{
				rounds:   float64(mres.Stats.Rounds),
				messages: float64(mres.Stats.Messages),
				relErr:   worst,
			}
		})
		var drrAcc, kasAcc, kemAcc algoRun
		for _, o := range outs {
			if o.err != nil {
				return nil, o.err
			}
			drrAcc.add(o.drr)
			kasAcc.add(o.kas)
			kemAcc.add(o.kem)
		}
		for name, acc := range map[string]algoRun{"drr": drrAcc, "kashyap": kasAcc, "kempe": kemAcc} {
			series[name] = append(series[name], algoRun{
				rounds:   acc.rounds / float64(trials),
				messages: acc.messages / float64(trials),
				relErr:   acc.relErr / float64(trials),
			})
		}
	}

	tb := tablefmt.New("Table 1 (measured): computing Ave, mean over trials",
		"n", "alg", "rounds", "messages", "msgs/n", "rel.err")
	for i, n := range ns {
		for _, alg := range []string{"drr", "kashyap", "kempe"} {
			r := series[alg][i]
			tb.AddRow(n, alg, r.rounds, r.messages, r.messages/float64(n), r.relErr)
		}
	}

	nf := floats(ns)
	perNode := func(alg string) []float64 {
		out := make([]float64, len(ns))
		for i := range ns {
			out[i] = series[alg][i].messages / float64(ns[i])
		}
		return out
	}
	rounds := func(alg string) []float64 {
		out := make([]float64, len(ns))
		for i := range ns {
			out[i] = series[alg][i].rounds
		}
		return out
	}

	drrMsg, kasMsg, kemMsg := perNode("drr"), perNode("kashyap"), perNode("kempe")
	drrRnd, kasRnd, kemRnd := rounds("drr"), rounds("kashyap"), rounds("kempe")
	tb.AddNote("drr msgs/n affine fit: %s", metrics.FitAffineBest(nf, drrMsg, metrics.TimeShapes)[0])
	tb.AddNote("kashyap msgs/n affine fit: %s", metrics.FitAffineBest(nf, kasMsg, metrics.TimeShapes)[0])
	tb.AddNote("kempe msgs/n affine fit: %s", metrics.FitAffineBest(nf, kemMsg, metrics.TimeShapes)[0])

	last := len(ns) - 1
	verdicts := []Verdict{
		verdictf("drr messages are n loglog n, not n log n",
			metrics.CloserShape(nf, drrMsg, metrics.ShapeLogLogN, metrics.ShapeLogN),
			"msgs/n %v -> %v over n %d -> %d", drrMsg[0], drrMsg[last], ns[0], ns[last]),
		verdictf("kashyap messages are n loglog n, not n log n",
			metrics.CloserShape(nf, kasMsg, metrics.ShapeLogLogN, metrics.ShapeLogN),
			"msgs/n %v -> %v", kasMsg[0], kasMsg[last]),
		verdictf("kempe messages are n log n, not n loglog n",
			metrics.CloserShape(nf, kemMsg, metrics.ShapeLogN, metrics.ShapeLogLogN),
			"msgs/n %v -> %v", kemMsg[0], kemMsg[last]),
		verdictf("drr time is log n, not log n loglog n",
			metrics.CloserShape(nf, drrRnd, metrics.ShapeLogN, metrics.ShapeLogNLogL),
			"rounds %v -> %v", drrRnd[0], drrRnd[last]),
		verdictf("kempe time is log n",
			metrics.CloserShape(nf, kemRnd, metrics.ShapeLogN, metrics.ShapeLogNLogL),
			"rounds %v -> %v", kemRnd[0], kemRnd[last]),
		verdictf("kashyap time is log n loglog n, not log n",
			metrics.CloserShape(nf, kasRnd, metrics.ShapeLogNLogL, metrics.ShapeLogN),
			"rounds %v -> %v", kasRnd[0], kasRnd[last]),
		verdictf("message winner at largest n: drr & kashyap beat kempe",
			drrMsg[last] < kemMsg[last] && kasMsg[last] < kemMsg[last],
			"msgs/n at n=%d: drr %v, kashyap %v, kempe %v", ns[last], drrMsg[last], kasMsg[last], kemMsg[last]),
		verdictf("time winner at largest n: drr & kempe beat kashyap",
			drrRnd[last] < kasRnd[last] && kemRnd[last] < kasRnd[last],
			"rounds at n=%d: drr %v, kempe %v, kashyap %v", ns[last], drrRnd[last], kemRnd[last], kasRnd[last]),
	}
	return &Report{ID: "T1", Title: "Table 1 reproduction", Tables: []string{tb.String()}, Verdicts: verdicts}, nil
}
