package experiments

import (
	"fmt"
	"math"
	"time"

	"drrgossip"
	"drrgossip/internal/agg"
	"drrgossip/internal/tablefmt"
)

// RunQB1 measures what the session API amortizes: a Quantile (Min + Max
// + Count + bisection Rank steps) and a Histogram (one Rank per edge)
// run against one drrgossip.Network on a sparse overlay with a
// fractional-timing fault plan — the configuration where the pre-session
// facade paid one overlay build plus one horizon-measurement pre-run
// *per internal step*. The verdicts pin the amortized accounting: one
// overlay build per session, at most one horizon pre-run and one plan
// bind per operation kind, correct answers throughout. The table (and
// its BENCH_QB1.json form) tracks the cost trajectory over time.
func RunQB1(cfg Config) (*Report, error) {
	n := 512
	if cfg.Quick {
		n = 256
	}
	values := agg.GenUniform(n, 0, 1000, cfg.Seed+0xAB)
	plan, err := drrgossip.ParseFaultPlan("crash:0.15@0.5")
	if err != nil {
		return nil, err
	}

	rep := &Report{ID: "QB1", Title: "Session amortization: batched queries reuse overlay and fault horizon"}
	tb := tablefmt.New(fmt.Sprintf("QB1: session-amortized composite queries (n=%d, chord, crash:0.15@0.5)", n),
		"query", "runs", "rounds", "msg/n", "drops", "pre-runs", "binds", "elapsed")

	net, err := drrgossip.New(drrgossip.Config{N: n, Seed: cfg.Seed + 0xB1, Topology: drrgossip.Chord,
		Faults: plan, Telemetry: cfg.Telemetry})
	if err != nil {
		return nil, err
	}
	if obs := cfg.progressObserver("QB1", 1000); obs != nil {
		net.Observe(obs)
	}

	// The last edge sits above the whole value range, so the open bucket
	// must come out (approximately) empty — the sharpest consistency check
	// on the Count-measured population under a mid-run crash.
	edges := []float64{250, 500, 750, 1000}
	start := time.Now()
	hist, err := net.Histogram(values, edges)
	if err != nil {
		return nil, fmt.Errorf("QB1 histogram: %w", err)
	}
	histStats := net.Stats()
	histElapsed := time.Since(start)
	tb.AddRow("histogram(4 edges)", float64(hist.Cost.Runs), float64(hist.Cost.Rounds),
		float64(hist.Cost.Messages)/float64(n), float64(hist.Cost.Drops),
		float64(histStats.HorizonRuns), float64(histStats.PlanBinds), histElapsed.Seconds())

	start = time.Now()
	quant, err := net.Quantile(values, 0.9, 2.0)
	if err != nil {
		return nil, fmt.Errorf("QB1 quantile: %w", err)
	}
	finalStats := net.Stats()
	quantElapsed := time.Since(start)
	tb.AddRow("quantile(0.9, tol 2)", float64(quant.Cost.Runs), float64(quant.Cost.Rounds),
		float64(quant.Cost.Messages)/float64(n), float64(quant.Cost.Drops),
		float64(finalStats.HorizonRuns-histStats.HorizonRuns),
		float64(finalStats.PlanBinds-histStats.PlanBinds), quantElapsed.Seconds())
	tb.AddNote("pre-runs/binds are the session's horizon measurements and fault-plan bindings added by each query; the pre-session facade paid one of each per internal Rank step")
	rep.Tables = append(rep.Tables, tb.String())

	total := 0.0
	for _, c := range hist.Counts {
		total += c
	}
	openBucket := hist.Counts[len(hist.Counts)-1]
	wantQ := agg.Quantile(values, 0.9)

	// The same batch through RunAll's opt-in concurrency on a fresh
	// session: answers must be bit-identical to the sequential ones (the
	// parallel runner's determinism contract).
	parNet, err := drrgossip.New(drrgossip.Config{N: n, Seed: cfg.Seed + 0xB1, Topology: drrgossip.Chord,
		Faults: plan, Telemetry: cfg.Telemetry})
	if err != nil {
		return nil, err
	}
	parAnswers, _, err := parNet.RunAll([]drrgossip.Query{
		drrgossip.HistogramOf(values, edges),
		drrgossip.QuantileOf(values, 0.9, 2.0),
	}, drrgossip.BatchOptions{Parallelism: 2})
	if err != nil {
		return nil, fmt.Errorf("QB1 parallel batch: %w", err)
	}
	parallelIdentical := parAnswers[0].Cost == hist.Cost && parAnswers[1].Cost == quant.Cost &&
		parAnswers[1].Value == quant.Value && len(parAnswers[0].Counts) == len(hist.Counts)
	if parallelIdentical {
		for i := range hist.Counts {
			if parAnswers[0].Counts[i] != hist.Counts[i] {
				parallelIdentical = false
			}
		}
	}

	// Two op kinds for the histogram: rank (shared by every edge) and the
	// count that measures the open bucket's population.
	histOnce := histStats.HorizonRuns == 2 && histStats.PlanBinds == 2 &&
		histStats.ProtocolRuns == 2+len(edges)+1
	// Quantile adds min and max on top of the rank and count bindings the
	// histogram already created: four op kinds for the whole session.
	quantAmortized := finalStats.HorizonRuns == 4 && finalStats.PlanBinds == 4
	rep.Verdicts = append(rep.Verdicts,
		verdictf("histogram binds the fault plan once per op kind (rank + count), not per edge",
			histOnce, "pre-runs %d, binds %d, protocol runs %d for %d edges",
			histStats.HorizonRuns, histStats.PlanBinds, histStats.ProtocolRuns, len(edges)),
		verdictf("quantile reuses the session's rank+count bindings (4 op kinds total, not one per step)",
			quantAmortized, "session pre-runs %d, binds %d after %d quantile runs",
			finalStats.HorizonRuns, finalStats.PlanBinds, quant.Cost.Runs),
		verdictf("histogram buckets stay consistent under the mid-run crash (non-negative, empty open bucket)",
			nonNegative(hist.Counts) && math.Abs(openBucket) < 0.5,
			"counts %v (total %.0f, final alive %d)", hist.Counts, total, hist.Alive),
		verdictf("quantile converges within tolerance and tracks the exact 0.9-quantile",
			quant.Converged && math.Abs(quant.Value-wantQ) < 25,
			"value %.4g (exact %.4g), converged %v in %d runs", quant.Value, wantQ, quant.Converged, quant.Cost.Runs),
		verdictf("RunAll with Parallelism 2 returns answers bit-identical to sequential execution",
			parallelIdentical, "parallel quantile %.6g / cost %+v vs sequential %.6g / %+v",
			parAnswers[1].Value, parAnswers[1].Cost, quant.Value, quant.Cost),
	)
	return rep, nil
}

func nonNegative(xs []float64) bool {
	for _, x := range xs {
		if x < 0 {
			return false
		}
	}
	return true
}
