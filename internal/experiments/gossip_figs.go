package experiments

import (
	"math"

	"drrgossip/internal/agg"
	"drrgossip/internal/convergecast"
	"drrgossip/internal/drr"
	"drrgossip/internal/drrgossip"
	"drrgossip/internal/forest"
	"drrgossip/internal/gossip"
	"drrgossip/internal/metrics"
	"drrgossip/internal/plot"
	"drrgossip/internal/sim"
	"drrgossip/internal/tablefmt"
	"drrgossip/internal/xrand"
)

// phase12 runs DRR + convergecast + root broadcast, the common setup of
// the Phase III experiments.
func phase12(eng *sim.Engine, values []float64) (*forest.Forest, []int, map[int]float64, map[int]convergecast.SumCount, error) {
	dres, err := drr.Run(eng, drr.Options{})
	if err != nil {
		return nil, nil, nil, nil, err
	}
	f := dres.Forest
	covmax, _, err := convergecast.Max(eng, f, values, convergecast.Options{})
	if err != nil {
		return nil, nil, nil, nil, err
	}
	covsum, _, err := convergecast.Sum(eng, f, values, convergecast.Options{})
	if err != nil {
		return nil, nil, nil, nil, err
	}
	rootTo, _, err := convergecast.BroadcastRootAddr(eng, f, convergecast.Options{})
	if err != nil {
		return nil, nil, nil, nil, err
	}
	return f, rootTo, covmax, covsum, nil
}

// RunF5 validates Theorem 5: after the gossip procedure alone, a constant
// fraction of roots holds the true Max, across the paper's δ range.
func RunF5(cfg Config) (*Report, error) {
	n := 8192
	if cfg.Quick {
		n = 2048
	}
	trials := cfg.trials(3)
	losses := []float64{0, 0.05, 0.1, 0.125}
	tb := tablefmt.New("Theorem 5: fraction of roots holding Max after the gossip procedure",
		"delta", "fraction(mean)", "fraction(min)", "roots")
	var worstMean float64 = 1
	for _, loss := range losses {
		var fracs []float64
		roots := 0
		for trial := 0; trial < trials; trial++ {
			seed := xrand.Hash(cfg.Seed, 0xF5, uint64(trial), math.Float64bits(loss))
			eng := sim.NewEngine(n, sim.Options{Seed: seed, Loss: loss})
			values := agg.GenUniform(n, 0, 1000, seed)
			f, rootTo, covmax, _, err := phase12(eng, values)
			if err != nil {
				return nil, err
			}
			res, err := gossip.Max(eng, f, rootTo, covmax, gossip.Options{})
			if err != nil {
				return nil, err
			}
			want := agg.Exact(agg.Max, values, 0)
			have := 0
			for _, v := range res.AfterGossip {
				if v == want {
					have++
				}
			}
			fracs = append(fracs, float64(have)/float64(f.NumTrees()))
			roots = f.NumTrees()
		}
		mean := metrics.Mean(fracs)
		lo, _ := metrics.MinMax(fracs)
		tb.AddRow(loss, mean, lo, roots)
		if mean < worstMean {
			worstMean = mean
		}
	}
	verdicts := []Verdict{
		verdictf("a constant fraction of roots holds Max after gossip alone",
			worstMean >= 0.5,
			"worst mean fraction across δ: %v", worstMean),
	}
	return &Report{ID: "F5", Title: "Gossip procedure coverage", Tables: []string{tb.String()}, Verdicts: verdicts}, nil
}

// RunF6 validates Theorem 6: after the sampling procedure all roots hold
// Max, whp, across sizes and the δ range.
func RunF6(cfg Config) (*Report, error) {
	ns := cfg.sizes([]int{1024, 4096, 16384})
	trials := cfg.trials(3)
	losses := []float64{0, 0.125}
	tb := tablefmt.New("Theorem 6: roots holding Max after the sampling procedure",
		"n", "delta", "success runs", "total runs")
	allPass := true
	for _, n := range ns {
		for _, loss := range losses {
			success := 0
			for trial := 0; trial < trials; trial++ {
				seed := xrand.Hash(cfg.Seed, 0xF6, uint64(n), uint64(trial), math.Float64bits(loss))
				eng := sim.NewEngine(n, sim.Options{Seed: seed, Loss: loss})
				values := agg.GenUniform(n, 0, 1000, seed)
				f, rootTo, covmax, _, err := phase12(eng, values)
				if err != nil {
					return nil, err
				}
				res, err := gossip.Max(eng, f, rootTo, covmax, gossip.Options{})
				if err != nil {
					return nil, err
				}
				want := agg.Exact(agg.Max, values, 0)
				ok := true
				for _, v := range res.Estimates {
					if v != want {
						ok = false
						break
					}
				}
				if ok {
					success++
				}
			}
			tb.AddRow(n, loss, success, trials)
			if success != trials {
				allPass = false
			}
		}
	}
	verdicts := []Verdict{
		verdictf("every run ends with all roots holding Max", allPass, "see table"),
	}
	return &Report{ID: "F6", Title: "Sampling procedure consensus", Tables: []string{tb.String()}, Verdicts: verdicts}, nil
}

// RunF7 validates Theorem 7/10 and Lemma 8: the relative error at the
// largest-tree root decays geometrically with gossip-ave rounds, as does
// the contribution potential Φ.
func RunF7(cfg Config) (*Report, error) {
	n := 4096
	if cfg.Quick {
		n = 1024
	}
	seed := xrand.Hash(cfg.Seed, 0xF7)
	eng := sim.NewEngine(n, sim.Options{Seed: seed})
	values := agg.GenUniform(n, 0, 100, seed)
	f, rootTo, _, covsum, err := phase12(eng, values)
	if err != nil {
		return nil, err
	}
	z := f.LargestRoot()
	res, err := gossip.Ave(eng, f, rootTo, covsum,
		gossip.AveOptions{TrackRoot: z, TrackPotential: true})
	if err != nil {
		return nil, err
	}
	want := agg.Exact(agg.Average, values, 0)

	tb := tablefmt.New("Theorem 7 + Lemma 8: Gossip-ave convergence at the largest root",
		"round", "rel.err at z", "potential Φ")
	checkpoints := []int{0, 1, 2, 4, 8, 12, 16, 24, 32, len(res.Trajectory) - 1}
	seen := map[int]bool{}
	for _, t := range checkpoints {
		if t < 0 || t >= len(res.Trajectory) || seen[t] {
			continue
		}
		seen[t] = true
		tb.AddRow(t+1, agg.RelError(res.Trajectory[t], want), res.Potential[t])
	}

	// Render the decay curves alongside the checkpoint table.
	errs := make([]float64, len(res.Trajectory))
	for i, v := range res.Trajectory {
		errs[i] = agg.RelError(v, want)
	}
	chart := plot.New("Gossip-ave decay", true)
	chart.Add("rel.err@z", errs)
	chart.Add("potential", res.Potential)

	endErr := agg.RelError(res.Trajectory[len(res.Trajectory)-1], want)
	m := float64(f.NumTrees())
	phi0 := m - 1
	// Median per-round decay of Φ over the first half (before numerical
	// floor effects).
	var decays []float64
	half := len(res.Potential) / 2
	for t := 1; t <= half; t++ {
		prev := res.Potential[t-1]
		if prev > 0 {
			decays = append(decays, res.Potential[t]/prev)
		}
	}
	medDecay := metrics.Median(decays)
	verdicts := []Verdict{
		verdictf("relative error at z ends below n^-1",
			endErr < 1.0/float64(n),
			"end rel.err %v", endErr),
		verdictf("potential Φ decays geometrically (Lemma 8: E ratio < 1/2... median < 0.8 measured)",
			medDecay < 0.8,
			"median per-round Φ ratio %v", medDecay),
		verdictf("Φ falls by orders of magnitude from Φ0 = m-1",
			res.Potential[half] < phi0/64,
			"Φ0 %v -> Φ[%d] %v", phi0, half, res.Potential[half]),
	}
	return &Report{ID: "F7", Title: "Gossip-ave convergence", Tables: []string{tb.String(), chart.String()}, Verdicts: verdicts}, nil
}

// RunF8 reports the end-to-end per-phase cost breakdown of DRR-gossip-max
// and DRR-gossip-ave, with correctness at every node.
func RunF8(cfg Config) (*Report, error) {
	n := 8192
	if cfg.Quick {
		n = 2048
	}
	seed := xrand.Hash(cfg.Seed, 0xF8)
	values := agg.GenUniform(n, 0, 1000, seed)
	loss := 0.05

	maxRes, err := drrgossip.Max(sim.NewEngine(n, sim.Options{Seed: seed, Loss: loss}), values, drrgossip.Options{})
	if err != nil {
		return nil, err
	}
	aveRes, err := drrgossip.Ave(sim.NewEngine(n, sim.Options{Seed: seed + 1, Loss: loss}), values, drrgossip.Options{})
	if err != nil {
		return nil, err
	}

	tb := tablefmt.New("End-to-end DRR-gossip at n="+itoa(n)+", δ=0.05: per-phase cost",
		"algorithm", "phase", "rounds", "messages")
	addPhases := func(name string, ph drrgossip.PhaseStats) {
		tb.AddRow(name, "I DRR", ph.DRR.Rounds, ph.DRR.Messages)
		tb.AddRow(name, "II convergecast+bcast", ph.Aggregate.Rounds, ph.Aggregate.Messages)
		tb.AddRow(name, "III gossip", ph.Gossip.Rounds, ph.Gossip.Messages)
		tb.AddRow(name, "final broadcast", ph.Broadcast.Rounds, ph.Broadcast.Messages)
		tb.AddRow(name, "total", ph.Total().Rounds, ph.Total().Messages)
	}
	addPhases("max", maxRes.Phases)
	addPhases("ave", aveRes.Phases)

	wantMax := agg.Exact(agg.Max, values, 0)
	wantAve := agg.Exact(agg.Average, values, 0)
	verdicts := []Verdict{
		verdictf("max correct and at consensus",
			maxRes.Value == wantMax && maxRes.Consensus,
			"value %v, want %v", maxRes.Value, wantMax),
		verdictf("ave within tolerance and at consensus",
			agg.RelError(aveRes.Value, wantAve) < 0.02 && aveRes.Consensus,
			"value %v, want %v", aveRes.Value, wantAve),
		// Phase I is the only superlinear-message phase (Θ(n loglog n) vs
		// Θ(n) for II/III — the growth itself is verified by T1/F4); here
		// we check the end-to-end totals stay within small multiples of
		// the paper's bounds at this size.
		verdictf("total messages stay within a small multiple of n loglog n",
			float64(maxRes.Stats.Messages) < 12*float64(n)*math.Log2(math.Log2(float64(n))),
			"total %d messages for n=%d", maxRes.Stats.Messages, n),
		verdictf("total rounds stay within a small multiple of log n",
			float64(maxRes.Stats.Rounds) < 20*math.Log2(float64(n)),
			"total %d rounds for n=%d", maxRes.Stats.Rounds, n),
	}
	return &Report{ID: "F8", Title: "End-to-end breakdown", Tables: []string{tb.String()}, Verdicts: verdicts}, nil
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var digits []byte
	for n > 0 {
		digits = append([]byte{byte('0' + n%10)}, digits...)
		n /= 10
	}
	return string(digits)
}
