package experiments

import (
	"fmt"
	"math"

	"drrgossip"
	"drrgossip/internal/agg"
	"drrgossip/internal/sim"
	"drrgossip/internal/tablefmt"
)

// ft1Scenarios is the fault catalog FT1 sweeps: the empty plan as the
// baseline, then churn at increasing rates, correlated mass/rack
// failure, a partition with heal, a loss burst and a flaky region.
func ft1Scenarios() []string {
	return []string{
		"none",
		"churn:0.1:50",
		"churn:0.3:50",
		"churn:0.6:50",
		"crash:0.1@0.5",
		"crash:0.3@0.5",
		"rack:0.2@0.4..0.8",
		"part:2@0.3..0.7",
		"loss:0.3@0.3..0.7",
		"flaky:0.2:0.5@0.2..0.8",
	}
}

// RunFT1 measures accuracy and message cost of the facade aggregates
// under mid-run churn, partitions and loss bursts, across the Complete
// and Chord topologies — the survivability table of the fault-injection
// subsystem. Verdicts assert that every run terminates with a finite
// value (no hangs, no panics, no NaN), that the fault-free baseline
// stays convergent, and that accuracy degrades gracefully (bounded
// relative error) rather than collapsing.
func RunFT1(cfg Config) (*Report, error) {
	n := 1024
	if cfg.Quick {
		n = 256
	}
	trials := cfg.trials(3)
	topologies := []drrgossip.Topology{drrgossip.Complete, drrgossip.Chord}

	values := agg.GenUniform(n, 0, 1000, cfg.Seed+0xF1)
	wantAve := agg.Exact(agg.Average, values, 0)
	wantSum := agg.Exact(agg.Sum, values, 0)
	wantMax := agg.Exact(agg.Max, values, 0)

	tb := tablefmt.New(fmt.Sprintf("FT1: aggregates under dynamic faults (n=%d, %d trials)", n, trials),
		"scenario", "topology", "alive", "crashes", "ave relerr", "sum relerr", "max relerr", "msg/n", "rounds")

	rep := &Report{ID: "FT1", Title: "Fault injection: aggregates under churn, partitions and loss bursts"}
	allFinite := true
	baselineOK := true
	maxRobust := true
	crashAccurate := true
	graceful := true
	var failures []string

	for _, spec := range ft1Scenarios() {
		plan, err := drrgossip.ParseFaultPlan(spec)
		if err != nil {
			return nil, fmt.Errorf("FT1 scenario %q: %w", spec, err)
		}
		for _, topo := range topologies {
			// Trials are independent sessions: fan them across workers
			// with one answer slot per trial and reduce in trial order, so
			// the table is bit-identical for any worker count. (RunAll
			// itself stays sequential inside a trial — the trial is the
			// coarser, better-load-balanced unit.)
			type trialOut struct {
				answers []*drrgossip.Answer
				bill    drrgossip.Cost
				err     error
			}
			outs := make([]trialOut, trials)
			sim.ForEachRun(trials, cfg.workers(), func(trial int) {
				o := &outs[trial]
				fc := drrgossip.Config{
					N: n, Seed: cfg.Seed + uint64(trial)*7919,
					Topology: topo, Faults: plan, Telemetry: cfg.Telemetry,
				}
				// One session per (scenario, topology, trial): the overlay
				// and the per-op fault bindings are shared by the batch, and
				// each aggregate keeps its own horizon (a crash at 50% of
				// the run means 50% of *that aggregate's* run).
				net, err := drrgossip.New(fc)
				if err != nil {
					o.err = fmt.Errorf("FT1 %s/%s: %w", spec, topo, err)
					return
				}
				if obs := cfg.progressObserver(fmt.Sprintf("FT1 %s/%s", spec, topo), 500); obs != nil {
					net.Observe(obs)
				}
				o.answers, o.bill, o.err = net.RunAll([]drrgossip.Query{
					drrgossip.AverageOf(values),
					drrgossip.SumOf(values),
					drrgossip.MaxOf(values),
				})
				if o.err != nil {
					o.err = fmt.Errorf("FT1 %s/%s: %w", spec, topo, o.err)
				}
			})
			var aveErr, sumErr, maxErr, msgs, rounds, alive, crashes float64
			for _, o := range outs {
				if o.err != nil {
					return nil, o.err
				}
				ares, sres, mres := o.answers[0], o.answers[1], o.answers[2]
				for _, a := range o.answers {
					if math.IsNaN(a.Value) || math.IsInf(a.Value, 0) {
						allFinite = false
						failures = append(failures, fmt.Sprintf("%s/%s:nonfinite", spec, topo))
					}
				}
				aveErr += agg.RelError(ares.Value, wantAve)
				sumErr += agg.RelError(sres.Value, wantSum)
				maxErr += agg.RelError(mres.Value, wantMax)
				msgs += float64(o.bill.Messages) / 3
				rounds += float64(o.bill.Rounds) / 3
				alive += float64(ares.Alive)
				crashes += float64(ares.FaultCrashes)
			}
			ft := float64(trials)
			aveErr, sumErr, maxErr = aveErr/ft, sumErr/ft, maxErr/ft
			tb.AddRow(spec, topo.String(), alive/ft, crashes/ft,
				aveErr, sumErr, maxErr, msgs/ft/float64(n), rounds/ft)

			if spec == "none" && (aveErr > 1e-5 || sumErr > 1e-5 || maxErr > 0) {
				baselineOK = false
				failures = append(failures, fmt.Sprintf("%s/%s:baseline", spec, topo))
			}
			// Max rides the trees and the gossip-max exchange, both of
			// which tolerate churn: it must stay essentially exact in
			// every scenario.
			if maxErr > 0.05 {
				maxRobust = false
				failures = append(failures, fmt.Sprintf("%s/%s:max(%.3g)", spec, topo, maxErr))
			}
			// A mass crash at the midpoint (after Phase II banked the tree
			// sums) barely perturbs the answer.
			if ev := firstEventOf(spec); ev == "crash" && (aveErr > 0.05 || sumErr > 0.05) {
				crashAccurate = false
				failures = append(failures, fmt.Sprintf("%s/%s:crash(ave %.3g, sum %.3g)", spec, topo, aveErr, sumErr))
			}
			// Graceful degradation everywhere else: a ballpark guard, not
			// a convergence claim. A partition walls the distinguished
			// root off from most of its mass for the window, so Sum
			// legitimately underestimates — but boundedly (relerr <= 1,
			// never an overshoot or a non-finite value).
			sumBound := 0.5
			if firstEventOf(spec) == "part" {
				sumBound = 1.0
			}
			if aveErr > 0.3 || sumErr > sumBound {
				graceful = false
				failures = append(failures, fmt.Sprintf("%s/%s:err(ave %.3g, sum %.3g)", spec, topo, aveErr, sumErr))
			}
		}
	}
	tb.AddNote("relerr vs the full-population exact value; alive/crashes are end-of-run means; msg/n and rounds are per-aggregate means")
	rep.Tables = append(rep.Tables, tb.String())
	detail := "all scenarios"
	if len(failures) > 0 {
		detail = fmt.Sprintf("failing: %v", failures)
	}
	rep.Verdicts = append(rep.Verdicts,
		verdictf("every aggregate terminates with a finite value under every fault scenario", allFinite, "%s", detail),
		verdictf("fault-free baseline stays convergent (relerr < 1e-5, Max exact)", baselineOK, "%s", detail),
		verdictf("Max survives every scenario (relerr <= 0.05)", maxRobust, "%s", detail),
		verdictf("mid-run mass crash keeps Ave/Sum within 5%", crashAccurate, "%s", detail),
		verdictf("accuracy degrades gracefully everywhere (ave <= 0.3; sum <= 0.5, partitioned sum underestimates boundedly)", graceful, "%s", detail),
	)
	return rep, nil
}

// firstEventOf extracts the leading event name of a scenario spec.
func firstEventOf(spec string) string {
	for i := 0; i < len(spec); i++ {
		if spec[i] == ':' || spec[i] == '@' || spec[i] == ';' {
			return spec[:i]
		}
	}
	return spec
}
