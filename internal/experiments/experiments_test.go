package experiments

import (
	"strings"
	"testing"
)

// quickCfg keeps CI fast; the harness binary runs the full sizes.
var quickCfg = Config{Seed: 7, Quick: true}

func runAndCheck(t *testing.T, id string) *Report {
	t.Helper()
	exp, ok := ByID(id)
	if !ok {
		t.Fatalf("experiment %s not registered", id)
	}
	rep, err := exp.Run(quickCfg)
	if err != nil {
		t.Fatalf("%s failed: %v", id, err)
	}
	if rep.ID != id {
		t.Fatalf("report id %q, want %q", rep.ID, id)
	}
	if len(rep.Tables) == 0 {
		t.Fatalf("%s produced no tables", id)
	}
	for _, v := range rep.Verdicts {
		if !v.Pass {
			t.Errorf("%s verdict failed: %s (%s)", id, v.Name, v.Detail)
		}
	}
	return rep
}

func TestRegistryComplete(t *testing.T) {
	want := []string{"T1", "F2", "F3", "F4", "F5", "F6", "F7", "F8", "F9", "F10", "F11", "F12", "OV1", "FT1", "QB1", "QH1", "SC1", "AS1", "CH1", "A1", "A2", "A3"}
	got := IDs()
	if len(got) != len(want) {
		t.Fatalf("registry has %d entries, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("registry[%d] = %s, want %s", i, got[i], want[i])
		}
	}
	if _, ok := ByID("t1"); !ok {
		t.Fatal("ByID not case-insensitive")
	}
	if _, ok := ByID("nope"); ok {
		t.Fatal("ByID accepted unknown id")
	}
}

func TestReportRendering(t *testing.T) {
	rep := &Report{
		ID: "X", Title: "demo",
		Tables:   []string{"table-body\n"},
		Verdicts: []Verdict{{Name: "a", Pass: true, Detail: "ok"}, {Name: "b", Pass: false, Detail: "bad"}},
	}
	s := rep.String()
	for _, want := range []string{"### X — demo", "table-body", "[PASS] a", "[FAIL] b"} {
		if !strings.Contains(s, want) {
			t.Fatalf("rendering missing %q:\n%s", want, s)
		}
	}
	if rep.Passed() {
		t.Fatal("Passed with a failing verdict")
	}
}

func TestT1(t *testing.T)  { runAndCheck(t, "T1") }
func TestF2(t *testing.T)  { runAndCheck(t, "F2") }
func TestF3(t *testing.T)  { runAndCheck(t, "F3") }
func TestF4(t *testing.T)  { runAndCheck(t, "F4") }
func TestF5(t *testing.T)  { runAndCheck(t, "F5") }
func TestF6(t *testing.T)  { runAndCheck(t, "F6") }
func TestF7(t *testing.T)  { runAndCheck(t, "F7") }
func TestF8(t *testing.T)  { runAndCheck(t, "F8") }
func TestF9(t *testing.T)  { runAndCheck(t, "F9") }
func TestF10(t *testing.T) { runAndCheck(t, "F10") }
func TestF11(t *testing.T) { runAndCheck(t, "F11") }
func TestF12(t *testing.T) { runAndCheck(t, "F12") }
func TestFT1(t *testing.T) { runAndCheck(t, "FT1") }
func TestQB1(t *testing.T) { runAndCheck(t, "QB1") }
func TestA1(t *testing.T)  { runAndCheck(t, "A1") }
func TestA2(t *testing.T)  { runAndCheck(t, "A2") }
func TestA3(t *testing.T)  { runAndCheck(t, "A3") }

// SC1 at test-sized sweeps: the fits need a few decades of n to
// discriminate shapes, so the unit test runs a shrunken size ladder and
// requires the deterministic verdicts (Ave correctness is checked inside
// runSC1; shard bit-identity must hold at any size) while logging the
// asymptotic-fit verdicts, which the CI smoke tier (benchtab -experiment
// SC1 -quick, n up to 10^5) enforces at full strength.
func TestSC1SmallSizes(t *testing.T) {
	rep, err := runSC1(quickCfg, []int{1000, 4000, 16000}, sc1Topologies, 16000)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Tables) == 0 {
		t.Fatal("SC1 produced no tables")
	}
	for _, v := range rep.Verdicts {
		if strings.Contains(v.Name, "bit-identical") || strings.Contains(v.Name, "≥5×") {
			if !v.Pass {
				t.Errorf("SC1 deterministic verdict failed: %s (%s)", v.Name, v.Detail)
			}
			continue
		}
		if !v.Pass {
			t.Logf("SC1 fit verdict at toy sizes: %s (%s)", v.Name, v.Detail)
		}
	}
}

// QH1 at test-sized ladders: the deterministic verdicts (cross-method
// agreement, fewer runs, shard bit-identity) must hold at any size; the
// asymptotic-fit and headline-ratio verdicts need decades of n and are
// only logged here — the CI quantile-smoke tier (benchtab -experiment
// QH1 -quick) enforces them at full strength.
func TestQH1SmallSizes(t *testing.T) {
	rep, err := runQH1(quickCfg, []int{256, 1024, 4096}, []int{256, 1024}, 1.0, 1024)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Tables) == 0 {
		t.Fatal("QH1 produced no tables")
	}
	for _, v := range rep.Verdicts {
		deterministic := strings.Contains(v.Name, "agree within") ||
			strings.Contains(v.Name, "fewer aggregate runs") ||
			strings.Contains(v.Name, "bit-identical")
		if deterministic {
			if !v.Pass {
				t.Errorf("QH1 deterministic verdict failed: %s (%s)", v.Name, v.Detail)
			}
			continue
		}
		if !v.Pass {
			t.Logf("QH1 fit verdict at toy sizes: %s (%s)", v.Name, v.Detail)
		}
	}
}

func TestItoa(t *testing.T) {
	for _, c := range []struct {
		n    int
		want string
	}{{0, "0"}, {7, "7"}, {4096, "4096"}} {
		if got := itoa(c.n); got != c.want {
			t.Fatalf("itoa(%d) = %q", c.n, got)
		}
	}
}
