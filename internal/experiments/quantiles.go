package experiments

import (
	"fmt"
	"math"
	"time"

	"drrgossip"
	"drrgossip/internal/agg"
	"drrgossip/internal/metrics"
	"drrgossip/internal/tablefmt"
	"drrgossip/internal/xrand"
)

// qh1Phi and qh1Tol fix the query every ladder point answers: the
// median, to a tolerance that tightens with n (tol = 1000/n over the
// [0,1000] value range) so the bisection reference's run count grows
// like log n and the asymptotic gap to the sampling driver is visible.
const qh1Phi = 0.5

func qh1Tol(n int) float64 { return 1000.0 / float64(n) }

// qh1SampleRounds extracts the rounds the HMS answer billed under its
// gossip-sampling phase — the deterministic ~2·log2(m) epoch ladder, the
// quantity the log-n shape verdict fits.
func qh1SampleRounds(ans *drrgossip.Answer) float64 {
	for _, pc := range ans.PhaseCosts {
		if pc.Phase == "sample" {
			return float64(pc.Rounds)
		}
	}
	return 0
}

// qh1Point is one (topology, n) cell measured under both drivers.
type qh1Point struct {
	topo drrgossip.Topology
	n    int
	hms  *drrgossip.Answer
	bis  *drrgossip.Answer
	// deltas against each other and against the offline order statistic
	methods float64
	exactH  float64
	exactB  float64
	elapsed time.Duration
}

// RunQH1 races the two quantile drivers — QuantileHMS (Haeupler–
// Mohapatra–Su sampling, internal/hms) against the QuantileBisect
// golden reference — up a size ladder on Complete and Chord. Both
// drivers answer the same median query on the same values and seeds,
// so every row is a differential test; the verdicts pin the agreement
// bound, the asymptotic shapes (the HMS sampling session is ~ log n
// rounds and its run count stays bounded, while bisection's run count
// grows like log n because tol shrinks with n), the headline round
// ratio at the largest Complete point, and delivery-shard bit-identity
// of the HMS driver.
func RunQH1(cfg Config) (*Report, error) {
	completeNs := []int{1000, 10000, 100000, 1000000}
	chordNs := []int{1000, 10000, 100000}
	ratioBound := 5.0
	identN := 10000
	if cfg.Quick {
		completeNs = []int{1000, 10000, 100000}
		chordNs = []int{1000, 10000}
		// At 10^5 the tolerance ladder has had less room to stretch the
		// bisection run count, so the headline ratio bound relaxes; the
		// full tier enforces >= 5x at 10^6.
		ratioBound = 3.0
	}
	return runQH1(cfg, completeNs, chordNs, ratioBound, identN)
}

func runQH1(cfg Config, completeNs, chordNs []int, ratioBound float64, identN int) (*Report, error) {
	rep := &Report{ID: "QH1", Title: "Fast quantiles: HMS sampling driver vs bisection golden reference"}

	measure := func(topo drrgossip.Topology, n int, method drrgossip.QuantileMethod, workers int) (*drrgossip.Answer, time.Duration, error) {
		values := agg.GenUniform(n, 0, 1000, xrand.Hash(cfg.Seed, 0x911, uint64(n)))
		net, err := drrgossip.New(drrgossip.Config{
			N: n, Seed: xrand.Hash(cfg.Seed, 0x912, uint64(n)), Topology: topo,
			Workers: workers, QuantileMethod: method, Telemetry: cfg.Telemetry,
		})
		if err != nil {
			return nil, 0, err
		}
		if obs := cfg.progressObserver("QH1", 1000); obs != nil {
			net.Observe(obs)
		}
		start := time.Now()
		ans, err := net.Run(drrgossip.QuantileOf(values, qh1Phi, qh1Tol(n)))
		if err != nil {
			return nil, 0, fmt.Errorf("QH1 %v n=%d %v: %w", topo, n, method, err)
		}
		return ans, time.Since(start), nil
	}

	var points []qh1Point
	for _, lad := range []struct {
		topo drrgossip.Topology
		ns   []int
	}{{drrgossip.Complete, completeNs}, {drrgossip.Chord, chordNs}} {
		for _, n := range lad.ns {
			h, hEl, err := measure(lad.topo, n, drrgossip.QuantileHMS, sc1Workers)
			if err != nil {
				return nil, err
			}
			b, bEl, err := measure(lad.topo, n, drrgossip.QuantileBisect, sc1Workers)
			if err != nil {
				return nil, err
			}
			exact := agg.Quantile(agg.GenUniform(n, 0, 1000, xrand.Hash(cfg.Seed, 0x911, uint64(n))), qh1Phi)
			points = append(points, qh1Point{
				topo: lad.topo, n: n, hms: h, bis: b,
				methods: math.Abs(h.Value - b.Value),
				exactH:  math.Abs(h.Value - exact),
				exactB:  math.Abs(b.Value - exact),
				elapsed: hEl + bEl,
			})
		}
	}

	tb := tablefmt.New(fmt.Sprintf("QH1: median to tol=1000/n, HMS vs bisection (workers=%d)", sc1Workers),
		"topo", "n", "hms runs", "bis runs", "hms rounds", "bis rounds", "ratio", "Δmethods/tol", "Δexact hms", "elapsed")
	for _, p := range points {
		tb.AddRow(fmt.Sprint(p.topo), float64(p.n),
			float64(p.hms.Cost.Runs), float64(p.bis.Cost.Runs),
			float64(p.hms.Cost.Rounds), float64(p.bis.Cost.Rounds),
			float64(p.bis.Cost.Rounds)/float64(p.hms.Cost.Rounds),
			p.methods/qh1Tol(p.n), p.exactH, p.elapsed.Seconds())
	}
	tb.AddNote("ratio = bisection rounds / HMS rounds on the same query; Δexact is |answer − offline order statistic| (0 means the HMS walk certified the exact quantile)")
	rep.Tables = append(rep.Tables, tb.String())

	agree, fewer := true, true
	var agreeDetail, fewerDetail string
	for _, p := range points {
		if !p.hms.Converged || !p.bis.Converged || p.methods > 2*qh1Tol(p.n) {
			agree = false
			agreeDetail = fmt.Sprintf("%v n=%d: |Δ|=%.3g > 2·tol=%.3g (conv %v/%v)",
				p.topo, p.n, p.methods, 2*qh1Tol(p.n), p.hms.Converged, p.bis.Converged)
		}
		if p.hms.Cost.Runs >= p.bis.Cost.Runs {
			fewer = false
			fewerDetail = fmt.Sprintf("%v n=%d: hms %d runs vs bisect %d", p.topo, p.n, p.hms.Cost.Runs, p.bis.Cost.Runs)
		}
	}
	if agree {
		agreeDetail = fmt.Sprintf("all %d ladder points within 2·tol, all converged", len(points))
	}
	if fewer {
		fewerDetail = fmt.Sprintf("hms spends fewer aggregate runs at every one of %d points", len(points))
	}

	var ns, sampleRounds, bisRuns []float64
	maxHMSRuns := 0
	var top qh1Point
	for _, p := range points {
		if p.hms.Cost.Runs > maxHMSRuns {
			maxHMSRuns = p.hms.Cost.Runs
		}
		if p.topo != drrgossip.Complete {
			continue
		}
		ns = append(ns, float64(p.n))
		sampleRounds = append(sampleRounds, qh1SampleRounds(p.hms))
		bisRuns = append(bisRuns, float64(p.bis.Cost.Runs))
		top = p
	}
	ratio := float64(top.bis.Cost.Rounds) / float64(top.hms.Cost.Rounds)

	// Shard bit-identity of the new driver: the delivery-sharded engine
	// must not perturb a single bit of the HMS answer or its cost.
	base, _, err := measure(drrgossip.Complete, identN, drrgossip.QuantileHMS, 1)
	if err != nil {
		return nil, err
	}
	identical := true
	identDetail := fmt.Sprintf("workers 1/4/8 agree at n=%d: value %.10g, cost %+v", identN, base.Value, base.Cost)
	for _, w := range []int{4, 8} {
		alt, _, err := measure(drrgossip.Complete, identN, drrgossip.QuantileHMS, w)
		if err != nil {
			return nil, err
		}
		if alt.Value != base.Value || alt.Converged != base.Converged || alt.Cost != base.Cost {
			identical = false
			identDetail = fmt.Sprintf("workers %d: value %.10g cost %+v vs workers 1: %.10g %+v",
				w, alt.Value, alt.Cost, base.Value, base.Cost)
		}
	}

	rep.Verdicts = append(rep.Verdicts,
		verdictf("HMS and bisection agree within 2·tol at every ladder point", agree, "%s", agreeDetail),
		verdictf("HMS spends fewer aggregate runs than bisection at every point", fewer, "%s", fewerDetail),
		verdictf("HMS sampling-session rounds grow like log n on Complete (not log² n)",
			metrics.CloserShape(ns, sampleRounds, metrics.ShapeLogN, metrics.ShapeLog2N),
			"sample-phase rounds %v over n %v", sampleRounds, ns),
		verdictf("bisection run count grows like log n (tol = 1000/n) while HMS runs stay bounded",
			metrics.CloserShape(ns, bisRuns, metrics.ShapeLogN, metrics.ShapeConst) && maxHMSRuns <= 10,
			"bisect runs %v over n %v; max hms runs %d", bisRuns, ns, maxHMSRuns),
		verdictf(fmt.Sprintf("HMS needs ≥%.0f× fewer rounds at n=%d on Complete", ratioBound, top.n),
			ratio >= ratioBound, "bisect %d rounds / hms %d rounds = %.2f×",
			top.bis.Cost.Rounds, top.hms.Cost.Rounds, ratio),
		verdictf("HMS answers are bit-identical across delivery shard counts", identical, "%s", identDetail),
	)
	return rep, nil
}
