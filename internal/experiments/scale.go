// SC1 — the empirical scaling study behind the paper's headline claim:
// aggregates converge in O(log n) rounds with O(n log log n) messages,
// numbers that only become interesting (and falsifiable) at large n.
// SC1 sweeps the Ave pipeline from n = 10^3 up to n = 10^7 on the
// Complete, Chord and SmallWorld topologies through the public session
// facade in scale mode (Config.Workers sharded delivery, no PerNode
// materialization), fits the observed rounds and message bills against
// the per-topology reference curves, and pins three contracts:
//
//   - sharding: the largest tractable Chord size re-run with 1, 4 and 8
//     workers must be bit-identical;
//   - representation: re-running mid-ladder Chord and SmallWorld sizes
//     with Config.LegacySliceAdjacency must reproduce the implicit/CSR
//     answers bit-for-bit;
//   - memory: the chord memory leg (n = 10^6 in both tiers) must fit a
//     fixed peak-RSS budget, and the implicit chord graph must be at
//     least 5× smaller than the materialized slice adjacency it
//     replaced.
//
// Reference curves per topology (the paper proves different bounds for
// dense and sparse networks — fitting everything against n log log n
// would be wrong):
//
//	complete    O(log n) rounds, O(n loglog n) messages (Theorems 2-7)
//	chord       O(n log n) messages (Theorem 14); polylog rounds
//	smallworld  polylog rounds and per-node messages (landmark routing;
//	            Theorem 13 makes the root count Θ(n), so the message
//	            bill carries an extra log factor over Chord)
package experiments

import (
	"fmt"
	"math"
	"os"
	"runtime"
	"runtime/debug"
	"strconv"
	"strings"
	"time"

	facade "drrgossip"
	"drrgossip/internal/agg"
	"drrgossip/internal/chord"
	"drrgossip/internal/metrics"
	"drrgossip/internal/tablefmt"
	"drrgossip/internal/xrand"
)

// sc1Workers is the delivery shard count the scale runs use. Any value
// yields bit-identical numbers (the sharding contract SC1 itself
// verifies), so the report does not depend on the host's core count.
const sc1Workers = 8

// sc1Topologies are the topologies the scaling study sweeps.
var sc1Topologies = []facade.Topology{facade.Complete, facade.Chord, facade.SmallWorld}

// sc1SmallWorldCap bounds the SmallWorld ladder: its Θ(n) root count
// (Theorem 13) makes the routed message bill ~n·log² n, so the 10^7
// point alone would dominate the whole study's runtime. The sharded CSR
// builder lifted the previous 3×10^5 storage ceiling; a million nodes is
// now the time-bounded cap. It is reported in the table — never silently
// applied — and the full ladder is carried by Complete and Chord.
const sc1SmallWorldCap = 1_000_000

// sc1MemLegN is the chord memory-leg size RunSC1 uses in both tiers:
// the n = 10^6 pipeline run whose peak RSS the fixed budget bounds (the
// CI scale-smoke assertion), and the graph-representation comparison
// behind the ≥5× verdict.
const sc1MemLegN = 1_000_000

// sc1MemBudgetMB is the peak-RSS budget for the chord memory leg at
// n = 10^6. The leg runs under a soft runtime memory limit
// (sc1MemLimit) that makes the GC bound the transient Θ(|E|) rank-burst
// heap — the live set is ~5 GB of in-flight messages, unconstrained GC
// headroom used to push peak RSS past 11 GB — and the budget allows
// ~2 GB of non-heap/overshoot slack on top of that limit. The implicit
// graph itself contributes nothing (the materialized chord adjacency it
// replaced added ~1 GB on its own).
const sc1MemBudgetMB = 10240

// sc1MemLimit is the soft Go runtime memory limit active during the
// memory leg (see sc1MemBudgetMB).
const sc1MemLimit = 8 << 30

// sc1ShardMax caps the size of the worker-sweep legs: chord at 10^7 is
// a multi-hour single run, so the sharding contract is pinned at a
// million nodes (still the scale-mode acceptance bar).
const sc1ShardMax = 1_000_000

// sc1Sizes returns the sweep sizes: the full tier tops out at ten
// million nodes (Complete and Chord only — see sc1SmallWorldCap), the
// quick (CI smoke) tier at a hundred thousand.
func sc1Sizes(cfg Config) []int {
	if cfg.Quick {
		return []int{1000, 10000, 100000}
	}
	return []int{1000, 10000, 100000, 1000000, 10000000}
}

// shapeSqrtN is the non-polylog alternative the sparse-topology verdicts
// reject: a genuinely super-polylog growth over three decades of n beats
// every polylog fit long before √n.
var shapeSqrtN = metrics.Shape{Name: "sqrt n", F: math.Sqrt}

// RunSC1 runs the scaling study at the configured tier.
func RunSC1(cfg Config) (*Report, error) {
	return runSC1(cfg, sc1Sizes(cfg), sc1Topologies, sc1MemLegN)
}

// peakRSSMB returns the process peak resident set in MiB, read from
// /proc/self/status VmHWM, falling back to the Go runtime's OS footprint
// (MemStats.Sys) where procfs is unavailable. Both are monotone process
// high-water marks, which is why the memory leg runs before the ladder:
// its reading reflects only the budgeted run.
func peakRSSMB() float64 {
	if status, err := os.ReadFile("/proc/self/status"); err == nil {
		for _, line := range strings.Split(string(status), "\n") {
			if !strings.HasPrefix(line, "VmHWM:") {
				continue
			}
			fields := strings.Fields(line)
			if len(fields) >= 2 {
				if kb, err := strconv.ParseFloat(fields[1], 64); err == nil {
					return kb / 1024
				}
			}
		}
	}
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return float64(ms.Sys) / (1 << 20)
}

// liveHeapMB returns the post-GC live heap in MiB; deltas around a
// construction measure what the built object retains.
func liveHeapMB() float64 {
	runtime.GC()
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return float64(ms.HeapAlloc) / (1 << 20)
}

// runSC1 is RunSC1 over explicit sizes and memory-leg size (the in-repo
// tests shrink both to stay fast).
func runSC1(cfg Config, sizes []int, topos []facade.Topology, memLegN int) (*Report, error) {
	rep := &Report{ID: "SC1", Title: "Scaling study: rounds, messages and memory from 10^3 to 10^7 nodes"}
	if !cfg.Quick {
		// Soft-limit the heap well under the study's budget so the 10^7
		// legs trade GC effort for headroom instead of risking the OOM
		// killer; restored on return.
		defer debug.SetMemoryLimit(debug.SetMemoryLimit(100 << 30))
	}
	tb := tablefmt.New(fmt.Sprintf("SC1: Ave at scale (workers=%d, lossless)", sc1Workers),
		"topology", "n", "rounds", "msgs", "msgs/n", "msgs/(n loglog n)", "trees", "elapsed", "graphMB", "rssMB")

	// series[topo][metric] parallels topoNs[topo]: the SmallWorld ladder
	// may be shorter than the others (sc1SmallWorldCap).
	series := make(map[string]map[string][]float64)
	topoNs := make(map[string][]float64)
	record := func(topo, metric string, v float64) {
		if series[topo] == nil {
			series[topo] = make(map[string][]float64)
		}
		series[topo][metric] = append(series[topo][metric], v)
	}

	genValues := func(n int) []float64 {
		return agg.GenUniform(n, 0, 1000, xrand.Hash(cfg.Seed, 0x5C2, uint64(n)))
	}
	// measure runs one Ave through the facade; graphMB is the live-heap
	// delta retained by the session build (overlay storage dominates it:
	// ~0 for implicit Complete/Chord, the CSR arrays for SmallWorld, the
	// full jagged adjacency under LegacySliceAdjacency).
	measure := func(topo facade.Topology, n, workers int, legacyAdj bool, values []float64) (*facade.Answer, time.Duration, float64, error) {
		fc := facade.Config{N: n, Seed: xrand.Hash(cfg.Seed, 0x5C1, uint64(n)), Topology: topo,
			Workers: workers, LegacySliceAdjacency: legacyAdj, Telemetry: cfg.Telemetry}
		h0 := liveHeapMB()
		net, err := facade.New(fc)
		if err != nil {
			return nil, 0, 0, err
		}
		graphMB := math.Max(0, liveHeapMB()-h0)
		start := time.Now()
		ans, err := net.Average(values)
		return ans, time.Since(start), graphMB, err
	}

	// Memory leg first: peak RSS is process-monotone, so the budgeted
	// chord run must happen before the (larger) ladder sizes touch the
	// high-water mark.
	memBudgetMB := max(1536, sc1MemBudgetMB*memLegN/sc1MemLegN)
	memValues := genValues(memLegN)
	prevLimit := debug.SetMemoryLimit(sc1MemLimit)
	memAns, memElapsed, _, err := measure(facade.Chord, memLegN, sc1Workers, false, memValues)
	debug.SetMemoryLimit(prevLimit)
	if err != nil {
		return nil, fmt.Errorf("SC1 memory leg chord n=%d: %w", memLegN, err)
	}
	memPeak := peakRSSMB()
	memWant := agg.Exact(agg.Average, memValues, 0)
	if agg.RelError(memAns.Value, memWant) > 1e-4 {
		return nil, fmt.Errorf("SC1 memory leg: Ave %v drifted from exact %v", memAns.Value, memWant)
	}
	memValues = nil

	// Graph-representation footprint at the same size: the implicit
	// chord graph (closed-form successor arithmetic, no stored lists)
	// versus the materialized jagged adjacency it replaced.
	ring, err := chord.New(memLegN, chord.Options{Seed: xrand.Hash(cfg.Seed, 0x5C1, uint64(memLegN))})
	if err != nil {
		return nil, fmt.Errorf("SC1 memory leg ring: %w", err)
	}
	h0 := liveHeapMB()
	ig := ring.Graph()
	var nbuf []int
	nbuf = ig.NeighborsInto(0, nbuf) // touch the lazy scratch paths
	implicitMB := math.Max(0, liveHeapMB()-h0)
	h0 = liveHeapMB()
	mg := ring.MaterializedGraph()
	legacyMB := math.Max(0, liveHeapMB()-h0)
	if len(nbuf) == 0 || mg.N() != ig.N() {
		return nil, fmt.Errorf("SC1 memory leg: degenerate graphs (deg %d)", len(nbuf))
	}
	mg, ig, ring = nil, nil, nil

	chordMax := sizes[len(sizes)-1]
	chordShardN := min(chordMax, sc1ShardMax)
	type shardLeg struct {
		ans     *facade.Answer
		elapsed time.Duration
	}
	shardLegs := map[int]shardLeg{} // workers -> chord run at chordShardN
	// answers[topo][n] keeps the ladder's runs for the representation
	// identity re-runs below.
	answers := map[string]map[int]*facade.Answer{}

	capped := false
	for _, topo := range topos {
		for _, n := range sizes {
			if topo == facade.SmallWorld && n > sc1SmallWorldCap {
				capped = true
				continue
			}
			values := genValues(n)
			ans, elapsed, graphMB, err := measure(topo, n, sc1Workers, false, values)
			if err != nil {
				return nil, fmt.Errorf("SC1 %s n=%d: %w", topo, n, err)
			}
			want := agg.Exact(agg.Average, values, 0)
			if agg.RelError(ans.Value, want) > 1e-4 {
				return nil, fmt.Errorf("SC1 %s n=%d: Ave %v drifted from exact %v", topo, n, ans.Value, want)
			}
			if topo == facade.Chord && n == chordShardN {
				shardLegs[sc1Workers] = shardLeg{ans: ans, elapsed: elapsed}
			}
			if answers[topo.String()] == nil {
				answers[topo.String()] = map[int]*facade.Answer{}
			}
			answers[topo.String()][n] = ans
			nf := float64(n)
			loglog := math.Log2(math.Log2(nf))
			tb.AddRow(topo.String(), n, float64(ans.Cost.Rounds), float64(ans.Cost.Messages),
				float64(ans.Cost.Messages)/nf, float64(ans.Cost.Messages)/(nf*loglog),
				ans.Trees, elapsed.Seconds(), graphMB, peakRSSMB())
			record(topo.String(), "rounds", float64(ans.Cost.Rounds))
			record(topo.String(), "msgs/n", float64(ans.Cost.Messages)/nf)
			topoNs[topo.String()] = append(topoNs[topo.String()], nf)
		}
	}
	tb.AddNote("elapsed and rssMB (peak RSS via VmHWM, monotone across rows) are host-dependent observability columns; graphMB is the live-heap delta retained by the session build; every other column is deterministic in the seed")
	if capped {
		tb.AddNote("smallworld capped at n=%d: its Θ(n) root count makes the routed bill ~n·log² n (the full ladder is carried by complete and chord; the old 3×10^5 storage ceiling is gone with the CSR builder)", sc1SmallWorldCap)
	}

	// Sharding contract: Chord Ave must be bit-identical for 1, 4 and 8
	// workers at the million-node scale-mode acceptance bar (the sweep
	// above already produced the workers=8 leg).
	values := genValues(chordShardN)
	for _, workers := range []int{1, 4, 8} {
		if _, done := shardLegs[workers]; done {
			continue
		}
		ans, elapsed, _, err := measure(facade.Chord, chordShardN, workers, false, values)
		if err != nil {
			return nil, fmt.Errorf("SC1 shard check workers=%d: %w", workers, err)
		}
		shardLegs[workers] = shardLeg{ans: ans, elapsed: elapsed}
	}
	ref := shardLegs[1].ans
	shardOK := true
	shardDetail := ""
	for _, workers := range []int{1, 4, 8} {
		leg := shardLegs[workers]
		shardDetail += fmt.Sprintf("w=%d: value %.9g cost %+v (%.1fs); ",
			workers, leg.ans.Value, leg.ans.Cost, leg.elapsed.Seconds())
		if !sameAnswer(leg.ans, ref) {
			shardOK = false
		}
	}

	// Representation contract: mid-ladder sizes re-run on materialized
	// jagged slices (LegacySliceAdjacency) must reproduce the
	// implicit/CSR answers bit-for-bit. Chord re-runs at the largest
	// ladder size <= 10^5, SmallWorld at <= 10^4 (the jagged rebuild is
	// the expensive part being replaced, so the identity check stays
	// cheap).
	repOK := true
	repDetail := ""
	for _, rc := range []struct {
		topo facade.Topology
		cap  int
	}{{facade.Chord, 100_000}, {facade.SmallWorld, 10_000}} {
		repN := 0
		for n := range answers[rc.topo.String()] {
			if n <= rc.cap && n > repN {
				repN = n
			}
		}
		if repN == 0 {
			continue
		}
		ans, _, graphMB, err := measure(rc.topo, repN, sc1Workers, true, genValues(repN))
		if err != nil {
			return nil, fmt.Errorf("SC1 representation check %s n=%d: %w", rc.topo, repN, err)
		}
		same := sameAnswer(ans, answers[rc.topo.String()][repN])
		repDetail += fmt.Sprintf("%s n=%d: legacy value %.9g cost %+v graphMB %.1f match=%v; ",
			rc.topo, repN, ans.Value, ans.Cost, graphMB, same)
		if !same {
			repOK = false
		}
	}

	comp, chrd, sw := series["complete"], series["chord"], series["smallworld"]
	compNs, chrdNs, swNs := topoNs["complete"], topoNs["chord"], topoNs["smallworld"]
	last := func(xs []float64) float64 { return xs[len(xs)-1] }
	tb.AddNote("complete rounds affine fit: %s", metrics.FitAffineBest(compNs, comp["rounds"], metrics.TimeShapes)[0])
	tb.AddNote("complete msgs/n affine fit: %s", metrics.FitAffineBest(compNs, comp["msgs/n"], metrics.TimeShapes)[0])
	tb.AddNote("chord msgs/n affine fit: %s", metrics.FitAffineBest(chrdNs, chrd["msgs/n"], metrics.TimeShapes)[0])
	rep.Tables = append(rep.Tables, tb.String())

	rep.Verdicts = append(rep.Verdicts,
		verdictf("complete: rounds fit c·log n at scale (the paper's O(log n) time)",
			metrics.CloserShape(compNs, comp["rounds"], metrics.ShapeLogN, metrics.ShapeLogNLogL),
			"rounds %v -> %v over n %v -> %v", comp["rounds"][0], last(comp["rounds"]), compNs[0], last(compNs)),
		verdictf("complete: messages fit c·n·loglog n, not n·log n (the headline O(n loglog n))",
			metrics.CloserShape(compNs, comp["msgs/n"], metrics.ShapeLogLogN, metrics.ShapeLogN),
			"msgs/n %v -> %v", comp["msgs/n"][0], last(comp["msgs/n"])),
		verdictf("chord: messages fit c·n·log n, not n·log² n (Theorem 14)",
			metrics.CloserShape(chrdNs, chrd["msgs/n"], metrics.ShapeLogN, metrics.ShapeLog2N),
			"msgs/n %v -> %v", chrd["msgs/n"][0], last(chrd["msgs/n"])),
		verdictf("chord+smallworld: rounds stay polylogarithmic (closer to log² n than √n)",
			metrics.CloserShape(chrdNs, chrd["rounds"], metrics.ShapeLog2N, shapeSqrtN) &&
				metrics.CloserShape(swNs, sw["rounds"], metrics.ShapeLog2N, shapeSqrtN),
			"chord %v -> %v, smallworld %v -> %v",
			chrd["rounds"][0], last(chrd["rounds"]), sw["rounds"][0], last(sw["rounds"])),
		verdictf("smallworld: per-node messages stay polylogarithmic (closer to log² n than √n)",
			metrics.CloserShape(swNs, sw["msgs/n"], metrics.ShapeLog2N, shapeSqrtN),
			"msgs/n %v -> %v", sw["msgs/n"][0], last(sw["msgs/n"])),
		verdictf(fmt.Sprintf("sharded execution is bit-identical for workers ∈ {1,4,8} at n=%d (chord)", chordShardN),
			shardOK, "%s", shardDetail),
		verdictf("legacy slice adjacency is bit-identical to implicit/CSR storage (chord + smallworld re-runs)",
			repOK, "%s", repDetail),
		verdictf(fmt.Sprintf("chord n=%d: implicit graph is ≥5× leaner than materialized slice adjacency", memLegN),
			legacyMB >= 5*math.Max(implicitMB, 0.25),
			"implicit %.2f MB vs materialized %.1f MB", implicitMB, legacyMB),
		verdictf(fmt.Sprintf("chord n=%d memory leg fits the fixed budget: peak RSS ≤ %d MB", memLegN, memBudgetMB),
			memPeak <= float64(memBudgetMB),
			"peak RSS %.0f MB after the %0.1fs pipeline run (cost %+v)", memPeak, memElapsed.Seconds(), memAns.Cost),
	)
	return rep, nil
}

// sameAnswer reports whether two runs produced bit-identical results in
// every deterministic field.
func sameAnswer(a, b *facade.Answer) bool {
	return a.Value == b.Value && a.Cost == b.Cost && a.Consensus == b.Consensus &&
		a.Trees == b.Trees && a.Alive == b.Alive
}
