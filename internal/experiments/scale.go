// SC1 — the empirical scaling study behind the paper's headline claim:
// aggregates converge in O(log n) rounds with O(n log log n) messages,
// numbers that only become interesting (and falsifiable) at large n.
// SC1 sweeps the Ave pipeline from n = 10^3 up to n = 10^6 on the
// Complete, Chord and SmallWorld topologies through the public session
// facade in scale mode (Config.Workers sharded delivery, no PerNode
// materialization), fits the observed rounds and message bills against
// the per-topology reference curves, and pins the sharding contract by
// re-running the largest Chord size with 1, 4 and 8 workers.
//
// Reference curves per topology (the paper proves different bounds for
// dense and sparse networks — fitting everything against n log log n
// would be wrong):
//
//	complete    O(log n) rounds, O(n loglog n) messages (Theorems 2-7)
//	chord       O(n log n) messages (Theorem 14); polylog rounds
//	smallworld  polylog rounds and per-node messages (landmark routing;
//	            Theorem 13 makes the root count Θ(n), so the message
//	            bill carries an extra log factor over Chord)
package experiments

import (
	"fmt"
	"math"
	"runtime"
	"time"

	facade "drrgossip"
	"drrgossip/internal/agg"
	"drrgossip/internal/metrics"
	"drrgossip/internal/tablefmt"
	"drrgossip/internal/xrand"
)

// sc1Workers is the delivery shard count the scale runs use. Any value
// yields bit-identical numbers (the sharding contract SC1 itself
// verifies), so the report does not depend on the host's core count.
const sc1Workers = 8

// sc1Topologies are the topologies the scaling study sweeps.
var sc1Topologies = []facade.Topology{facade.Complete, facade.Chord, facade.SmallWorld}

// sc1SmallWorldCap bounds the SmallWorld ladder in the full tier: its
// Θ(n) root count (Theorem 13) makes the routed message bill ~n·log² n,
// so the 10^6 point alone would dominate the whole study's runtime. The
// cap is reported in the table — never silently applied — and the full
// ladder is carried by Complete and Chord.
const sc1SmallWorldCap = 300_000

// sc1Sizes returns the sweep sizes: the full tier tops out at a million
// nodes, the quick (CI smoke) tier at a hundred thousand.
func sc1Sizes(cfg Config) []int {
	if cfg.Quick {
		return []int{1000, 10000, 100000}
	}
	return []int{1000, 10000, 100000, 1000000}
}

// shapeSqrtN is the non-polylog alternative the sparse-topology verdicts
// reject: a genuinely super-polylog growth over three decades of n beats
// every polylog fit long before √n.
var shapeSqrtN = metrics.Shape{Name: "sqrt n", F: math.Sqrt}

// RunSC1 runs the scaling study at the configured tier.
func RunSC1(cfg Config) (*Report, error) {
	return runSC1(cfg, sc1Sizes(cfg), sc1Topologies)
}

// memSysMB returns the Go runtime's OS memory footprint (MemStats.Sys)
// in MiB — a monotone high-water mark standing in for RSS. Pure
// observability (host-dependent), never part of a verdict; nothing is
// retained between runs, so the post-run live heap would read ~0.
func memSysMB() float64 {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return float64(ms.Sys) / (1 << 20)
}

// runSC1 is RunSC1 over explicit sizes (the in-repo tests shrink them).
func runSC1(cfg Config, sizes []int, topos []facade.Topology) (*Report, error) {
	rep := &Report{ID: "SC1", Title: "Scaling study: rounds and messages from 10^3 to 10^6 nodes"}
	tb := tablefmt.New(fmt.Sprintf("SC1: Ave at scale (workers=%d, lossless)", sc1Workers),
		"topology", "n", "rounds", "msgs", "msgs/n", "msgs/(n loglog n)", "trees", "elapsed", "rssMB")

	// series[topo][metric] parallels topoNs[topo]: the SmallWorld ladder
	// may be shorter than the others (sc1SmallWorldCap).
	series := make(map[string]map[string][]float64)
	topoNs := make(map[string][]float64)
	record := func(topo, metric string, v float64) {
		if series[topo] == nil {
			series[topo] = make(map[string][]float64)
		}
		series[topo][metric] = append(series[topo][metric], v)
	}

	genValues := func(n int) []float64 {
		return agg.GenUniform(n, 0, 1000, xrand.Hash(cfg.Seed, 0x5C2, uint64(n)))
	}
	measure := func(topo facade.Topology, n, workers int, values []float64) (*facade.Answer, time.Duration, error) {
		fc := facade.Config{N: n, Seed: xrand.Hash(cfg.Seed, 0x5C1, uint64(n)), Topology: topo, Workers: workers}
		net, err := facade.New(fc)
		if err != nil {
			return nil, 0, err
		}
		start := time.Now()
		ans, err := net.Average(values)
		return ans, time.Since(start), err
	}

	chordMax := sizes[len(sizes)-1]
	type shardLeg struct {
		ans     *facade.Answer
		elapsed time.Duration
	}
	shardLegs := map[int]shardLeg{} // workers -> chord run at chordMax

	capped := false
	for _, topo := range topos {
		for _, n := range sizes {
			if topo == facade.SmallWorld && n > sc1SmallWorldCap {
				capped = true
				continue
			}
			values := genValues(n)
			ans, elapsed, err := measure(topo, n, sc1Workers, values)
			if err != nil {
				return nil, fmt.Errorf("SC1 %s n=%d: %w", topo, n, err)
			}
			want := agg.Exact(agg.Average, values, 0)
			if agg.RelError(ans.Value, want) > 1e-4 {
				return nil, fmt.Errorf("SC1 %s n=%d: Ave %v drifted from exact %v", topo, n, ans.Value, want)
			}
			if topo == facade.Chord && n == chordMax {
				shardLegs[sc1Workers] = shardLeg{ans: ans, elapsed: elapsed}
			}
			nf := float64(n)
			loglog := math.Log2(math.Log2(nf))
			tb.AddRow(topo.String(), n, float64(ans.Cost.Rounds), float64(ans.Cost.Messages),
				float64(ans.Cost.Messages)/nf, float64(ans.Cost.Messages)/(nf*loglog),
				ans.Trees, elapsed.Seconds(), memSysMB())
			record(topo.String(), "rounds", float64(ans.Cost.Rounds))
			record(topo.String(), "msgs/n", float64(ans.Cost.Messages)/nf)
			topoNs[topo.String()] = append(topoNs[topo.String()], nf)
		}
	}
	tb.AddNote("elapsed and rssMB (Go runtime OS-footprint high-water, monotone across rows) are host-dependent observability columns; every other column is deterministic in the seed")
	if capped {
		tb.AddNote("smallworld capped at n=%d: its Θ(n) root count makes the routed bill ~n·log² n (the full ladder is carried by complete and chord)", sc1SmallWorldCap)
	}

	// Sharding contract at the largest size: Chord Ave must be
	// bit-identical for 1, 4 and 8 workers (the acceptance bar of the
	// scale mode — at the full tier this is the million-node run; the
	// sweep above already produced the workers=8 leg).
	values := genValues(chordMax)
	for _, workers := range []int{1, 4, 8} {
		if _, done := shardLegs[workers]; done {
			continue
		}
		ans, elapsed, err := measure(facade.Chord, chordMax, workers, values)
		if err != nil {
			return nil, fmt.Errorf("SC1 shard check workers=%d: %w", workers, err)
		}
		shardLegs[workers] = shardLeg{ans: ans, elapsed: elapsed}
	}
	ref := shardLegs[1].ans
	shardOK := true
	shardDetail := ""
	for _, workers := range []int{1, 4, 8} {
		leg := shardLegs[workers]
		shardDetail += fmt.Sprintf("w=%d: value %.9g cost %+v (%.1fs); ",
			workers, leg.ans.Value, leg.ans.Cost, leg.elapsed.Seconds())
		if leg.ans.Value != ref.Value || leg.ans.Cost != ref.Cost || leg.ans.Consensus != ref.Consensus ||
			leg.ans.Trees != ref.Trees || leg.ans.Alive != ref.Alive {
			shardOK = false
		}
	}

	comp, chrd, sw := series["complete"], series["chord"], series["smallworld"]
	compNs, chrdNs, swNs := topoNs["complete"], topoNs["chord"], topoNs["smallworld"]
	last := func(xs []float64) float64 { return xs[len(xs)-1] }
	tb.AddNote("complete rounds affine fit: %s", metrics.FitAffineBest(compNs, comp["rounds"], metrics.TimeShapes)[0])
	tb.AddNote("complete msgs/n affine fit: %s", metrics.FitAffineBest(compNs, comp["msgs/n"], metrics.TimeShapes)[0])
	tb.AddNote("chord msgs/n affine fit: %s", metrics.FitAffineBest(chrdNs, chrd["msgs/n"], metrics.TimeShapes)[0])
	rep.Tables = append(rep.Tables, tb.String())

	rep.Verdicts = append(rep.Verdicts,
		verdictf("complete: rounds fit c·log n at scale (the paper's O(log n) time)",
			metrics.CloserShape(compNs, comp["rounds"], metrics.ShapeLogN, metrics.ShapeLogNLogL),
			"rounds %v -> %v over n %v -> %v", comp["rounds"][0], last(comp["rounds"]), compNs[0], last(compNs)),
		verdictf("complete: messages fit c·n·loglog n, not n·log n (the headline O(n loglog n))",
			metrics.CloserShape(compNs, comp["msgs/n"], metrics.ShapeLogLogN, metrics.ShapeLogN),
			"msgs/n %v -> %v", comp["msgs/n"][0], last(comp["msgs/n"])),
		verdictf("chord: messages fit c·n·log n, not n·log² n (Theorem 14)",
			metrics.CloserShape(chrdNs, chrd["msgs/n"], metrics.ShapeLogN, metrics.ShapeLog2N),
			"msgs/n %v -> %v", chrd["msgs/n"][0], last(chrd["msgs/n"])),
		verdictf("chord+smallworld: rounds stay polylogarithmic (closer to log² n than √n)",
			metrics.CloserShape(chrdNs, chrd["rounds"], metrics.ShapeLog2N, shapeSqrtN) &&
				metrics.CloserShape(swNs, sw["rounds"], metrics.ShapeLog2N, shapeSqrtN),
			"chord %v -> %v, smallworld %v -> %v",
			chrd["rounds"][0], last(chrd["rounds"]), sw["rounds"][0], last(sw["rounds"])),
		verdictf("smallworld: per-node messages stay polylogarithmic (closer to log² n than √n)",
			metrics.CloserShape(swNs, sw["msgs/n"], metrics.ShapeLog2N, shapeSqrtN),
			"msgs/n %v -> %v", sw["msgs/n"][0], last(sw["msgs/n"])),
		verdictf(fmt.Sprintf("sharded execution is bit-identical for workers ∈ {1,4,8} at n=%d (chord)", chordMax),
			shardOK, "%s", shardDetail),
	)
	return rep, nil
}
