package experiments

import (
	"math"

	"drrgossip/internal/agg"
	"drrgossip/internal/drr"
	"drrgossip/internal/drrgossip"
	"drrgossip/internal/metrics"
	"drrgossip/internal/pietro"
	"drrgossip/internal/sim"
	"drrgossip/internal/tablefmt"
	"drrgossip/internal/xrand"
)

// RunA1 ablates the DRR probe budget: the paper's log n − 1 against
// smaller and larger budgets, showing the tree-count / message trade-off
// that makes log n − 1 the sweet spot.
func RunA1(cfg Config) (*Report, error) {
	n := 16384
	if cfg.Quick {
		n = 4096
	}
	trials := cfg.trials(3)
	paper := drr.DefaultProbeBudget(n)
	budgets := []struct {
		name   string
		budget int
	}{
		{"2", 2},
		{"sqrt(log n)", int(math.Ceil(math.Sqrt(math.Log2(float64(n)))))},
		{"(log n-1)/2", paper / 2},
		{"log n-1 (paper)", paper},
		{"2(log n-1)", 2 * paper},
	}
	tb := tablefmt.New("A1: DRR probe budget ablation at n="+itoa(n),
		"budget", "trees", "n/log n", "max size", "msgs/n", "rounds")
	results := map[string][2]float64{} // name -> (trees, msgs/n)
	for _, b := range budgets {
		var trees, maxSize, msgs, rounds []float64
		for trial := 0; trial < trials; trial++ {
			seed := xrand.Hash(cfg.Seed, 0xA1, uint64(b.budget), uint64(trial))
			eng := sim.NewEngine(n, sim.Options{Seed: seed})
			res, err := drr.Run(eng, drr.Options{ProbeBudget: b.budget})
			if err != nil {
				return nil, err
			}
			trees = append(trees, float64(res.Forest.NumTrees()))
			maxSize = append(maxSize, float64(res.Forest.MaxTreeSize()))
			msgs = append(msgs, float64(res.Stats.Messages)/float64(n))
			rounds = append(rounds, float64(res.Stats.Rounds))
		}
		tb.AddRow(b.name, metrics.Mean(trees), float64(n)/math.Log2(float64(n)),
			metrics.Mean(maxSize), metrics.Mean(msgs), metrics.Mean(rounds))
		results[b.name] = [2]float64{metrics.Mean(trees), metrics.Mean(msgs)}
	}
	small := results["2"]
	paperRes := results["log n-1 (paper)"]
	double := results["2(log n-1)"]
	ref := float64(n) / math.Log2(float64(n))
	verdicts := []Verdict{
		verdictf("tiny budgets leave too many roots for O(n) gossip",
			small[0] > 3*ref,
			"budget 2 leaves %v roots vs target %v", small[0], ref),
		verdictf("the paper's budget hits the Θ(n/log n) target",
			paperRes[0] < 3*ref && paperRes[0] > ref/3,
			"trees %v vs n/log n %v", paperRes[0], ref),
		verdictf("doubling the budget barely reduces roots but costs messages",
			double[0] > paperRes[0]/2 && double[1] >= paperRes[1],
			"trees %v -> %v, msgs/n %v -> %v", paperRes[0], double[0], paperRes[1], double[1]),
	}
	return &Report{ID: "A1", Title: "Probe budget ablation", Tables: []string{tb.String()}, Verdicts: verdicts}, nil
}

// RunA2 sweeps the link-loss probability δ across the paper's admissible
// range and beyond, measuring end-to-end correctness and cost inflation.
func RunA2(cfg Config) (*Report, error) {
	n := 4096
	if cfg.Quick {
		n = 1024
	}
	trials := cfg.trials(3)
	losses := []float64{0, 0.03, 0.06, 0.09, 0.125}
	tb := tablefmt.New("A2: δ sweep for DRR-gossip at n="+itoa(n),
		"delta", "max ok", "ave rel.err", "consensus", "rounds", "msgs/n")
	allMaxOK := true
	allConsensus := true
	var errAt0, errAtMax float64
	var msgsSeries []float64
	for _, loss := range losses {
		maxOK := 0
		consensus := 0
		var relErrs, rounds, msgs []float64
		for trial := 0; trial < trials; trial++ {
			seed := xrand.Hash(cfg.Seed, 0xA2, math.Float64bits(loss), uint64(trial))
			values := agg.GenUniform(n, 0, 1000, seed)

			mres, err := drrgossip.Max(sim.NewEngine(n, sim.Options{Seed: seed, Loss: loss}), values, drrgossip.Options{})
			if err != nil {
				return nil, err
			}
			if mres.Value == agg.Exact(agg.Max, values, 0) {
				maxOK++
			}
			ares, err := drrgossip.Ave(sim.NewEngine(n, sim.Options{Seed: seed + 1, Loss: loss}), values, drrgossip.Options{})
			if err != nil {
				return nil, err
			}
			relErrs = append(relErrs, agg.RelError(ares.Value, agg.Exact(agg.Average, values, 0)))
			if mres.Consensus && ares.Consensus {
				consensus++
			}
			rounds = append(rounds, float64(mres.Stats.Rounds))
			msgs = append(msgs, float64(mres.Stats.Messages)/float64(n))
		}
		meanErr := metrics.Mean(relErrs)
		tb.AddRow(loss, maxOK, meanErr, consensus, metrics.Mean(rounds), metrics.Mean(msgs))
		if maxOK != trials {
			allMaxOK = false
		}
		if consensus != trials {
			allConsensus = false
		}
		if loss == 0 {
			errAt0 = meanErr
		}
		if loss == losses[len(losses)-1] {
			errAtMax = meanErr
		}
		msgsSeries = append(msgsSeries, metrics.Mean(msgs))
	}
	verdicts := []Verdict{
		verdictf("Max exact at every δ up to 1/8", allMaxOK, "see table"),
		verdictf("consensus at every δ", allConsensus, "see table"),
		verdictf("Ave degrades gracefully: rel.err < 3% at δ=1/8",
			errAtMax < 0.03,
			"rel.err %v (δ=0) -> %v (δ=1/8)", errAt0, errAtMax),
		verdictf("message cost inflates by less than 2.5x across the sweep",
			msgsSeries[len(msgsSeries)-1] < 2.5*msgsSeries[0],
			"msgs/n %v -> %v", msgsSeries[0], msgsSeries[len(msgsSeries)-1]),
	}
	return &Report{ID: "A2", Title: "Loss sweep", Tables: []string{tb.String()}, Verdicts: verdicts}, nil
}

// RunA3 quantifies the paper's §1.2 criticism of the Di Pietro–Michiardi
// heuristic: its (unspecified) bootstrap, implemented the obvious way,
// costs Θ(n log n) messages — the full budget DRR-gossip needs in total.
func RunA3(cfg Config) (*Report, error) {
	ns := cfg.sizes([]int{1024, 2048, 4096, 8192, 16384})
	trials := cfg.trials(3)
	tb := tablefmt.New("A3: clusterhead heuristic vs DRR-gossip (Max)",
		"n", "pietro bootstrap msgs/n", "pietro total msgs/n", "drr total msgs/n")
	var boot, pietroTotal, drrTotal []float64
	for _, n := range ns {
		var b, p, d []float64
		for trial := 0; trial < trials; trial++ {
			seed := xrand.Hash(cfg.Seed, 0xA3, uint64(n), uint64(trial))
			values := agg.GenUniform(n, 0, 100, seed)

			pres, err := pietro.Max(sim.NewEngine(n, sim.Options{Seed: seed}), values, pietro.Options{})
			if err != nil {
				return nil, err
			}
			b = append(b, float64(pres.BootstrapStats.Messages)/float64(n))
			p = append(p, float64(pres.Stats.Messages)/float64(n))

			dres, err := drrgossip.Max(sim.NewEngine(n, sim.Options{Seed: seed + 1}), values, drrgossip.Options{})
			if err != nil {
				return nil, err
			}
			d = append(d, float64(dres.Stats.Messages)/float64(n))
		}
		tb.AddRow(n, metrics.Mean(b), metrics.Mean(p), metrics.Mean(d))
		boot = append(boot, metrics.Mean(b))
		pietroTotal = append(pietroTotal, metrics.Mean(p))
		drrTotal = append(drrTotal, metrics.Mean(d))
	}
	nf := floats(ns)
	last := len(ns) - 1
	tb.AddNote("bootstrap msgs/n fit: %s", metrics.FitAffineBest(nf, boot, metrics.TimeShapes)[0])
	verdicts := []Verdict{
		verdictf("the bootstrap alone grows like log n (the cost [20] left unspecified)",
			metrics.CloserShape(nf, boot, metrics.ShapeLogN, metrics.ShapeLogLogN),
			"bootstrap msgs/n %v -> %v", boot[0], boot[last]),
		verdictf("DRR-gossip total grows like loglog n",
			metrics.CloserShape(nf, drrTotal, metrics.ShapeLogLogN, metrics.ShapeLogN),
			"drr msgs/n %v -> %v", drrTotal[0], drrTotal[last]),
		verdictf("the heuristic's total exceeds DRR-gossip's at scale",
			pietroTotal[last] > drrTotal[last],
			"at n=%d: pietro %v vs drr %v msgs/n", ns[last], pietroTotal[last], drrTotal[last]),
	}
	return &Report{ID: "A3", Title: "Clusterhead heuristic", Tables: []string{tb.String()}, Verdicts: verdicts}, nil
}
