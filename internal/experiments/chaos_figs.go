package experiments

import (
	"fmt"

	"drrgossip/internal/chaos"
	"drrgossip/internal/tablefmt"
)

// RunCH1 runs the chaos harness as an evaluation artifact: a
// fixed-seed fuzzing campaign of generated (config, fault-plan) cases,
// each checked against the full invariant library on both execution
// engines (see internal/chaos and docs/ROBUSTNESS.md). The verdict is
// the robustness claim of the subsystem itself: zero invariant
// violations across the campaign, with any failure auto-shrunk to a
// one-line reproducer surfaced in the report.
func RunCH1(cfg Config) (*Report, error) {
	cases := 200
	if cfg.Quick {
		cases = 30
	}
	if cfg.Trials > 0 {
		cases = cfg.Trials
	}

	fuzzRep, err := chaos.Fuzz(chaos.Options{
		Cases:    cases,
		Seed:     cfg.Seed + 0xC4,
		Progress: cfg.Progress,
	})
	if err != nil {
		return nil, fmt.Errorf("CH1: %w", err)
	}

	tb := tablefmt.New(fmt.Sprintf("CH1: chaos fuzzing campaign (%d cases, seed %d)", fuzzRep.Checked, cfg.Seed+0xC4),
		"tier", "cases", "failures")
	failByTier := [3]int{}
	for _, f := range fuzzRep.Failures {
		failByTier[f.Case.Tier()]++
	}
	for t, name := range chaos.TierNames {
		tb.AddRow(name, fuzzRep.ByTier[t], failByTier[t])
	}
	tb.AddRow("total", fuzzRep.Checked, len(fuzzRep.Failures))

	rep := &Report{ID: "CH1", Title: "Chaos harness: invariant fuzzing over fault plans"}
	rep.Tables = append(rep.Tables, tb.String())

	if !fuzzRep.Clean() {
		ft := tablefmt.New("CH1: shrunk reproducers", "#", "reproducer", "first violation")
		for i, f := range fuzzRep.Failures {
			first := ""
			if len(f.Violations) > 0 {
				first = f.Violations[0].String()
			}
			ft.AddRow(i+1, f.Reproducer, first)
		}
		rep.Tables = append(rep.Tables, ft.String())
	}

	rep.Verdicts = append(rep.Verdicts,
		verdictf("all invariants hold", fuzzRep.Clean(),
			"%d violations in %d cases", len(fuzzRep.Failures), fuzzRep.Checked),
		verdictf("campaign covers every tier", fuzzRep.ByTier[0] > 0 && fuzzRep.ByTier[1] > 0 && fuzzRep.ByTier[2] > 0,
			"healthy %d, membership-stable %d, churn %d",
			fuzzRep.ByTier[0], fuzzRep.ByTier[1], fuzzRep.ByTier[2]),
	)
	return rep, nil
}
