// Package experiments reproduces every evaluation artifact of the paper:
// Table 1 (experiment T1), the quantitative theorems as measured figures
// (F2-F12) and three ablations (A1-A3). See DESIGN.md §3 for the full
// index mapping each experiment to the paper and to the modules involved.
//
// Each experiment returns a Report with rendered tables (pasteable into
// EXPERIMENTS.md) and machine-checked Verdicts asserting the *shape* of
// the results — who wins, by what growth factor, where crossovers fall —
// never absolute numbers.
package experiments

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"drrgossip"
	"drrgossip/internal/telemetry"
)

// Config parameterises an experiment run.
type Config struct {
	// Seed drives all randomness; equal seeds give identical reports.
	Seed uint64
	// Quick shrinks network sizes and trial counts for CI; full runs are
	// the default for the harness binary.
	Quick bool
	// Trials overrides the number of repetitions per configuration
	// (0 = experiment default).
	Trials int
	// FaultSpec optionally applies a fault plan (ParseFaultPlan grammar)
	// to experiments that support it — the overlay sweep runs every
	// aggregate under the plan and relaxes its exactness verdicts to
	// termination + bounded error. FT1 sweeps its own scenario catalog
	// and ignores this.
	FaultSpec string
	// Progress, when non-nil, receives live per-round progress lines from
	// the experiments that run through the session API (FT1, QB1), via a
	// drrgossip.Observer. Nil keeps runs silent.
	Progress io.Writer
	// Workers caps the goroutines the sweeps fan independent replications
	// across (0 = GOMAXPROCS, 1 = sequential). Reports are bit-identical
	// for any value: every replication derives all randomness from its
	// own seed and runs on its own engine, results land in slots indexed
	// by replication, and reductions happen in deterministic order.
	Workers int
	// Telemetry, when non-nil, is attached to the sessions of the
	// experiments that run through the session API (FT1, QB1, SC1) —
	// typically a *telemetry.Metrics feeding benchtab's -http endpoint.
	// Telemetry is a read-only tap; reports stay bit-identical.
	Telemetry *telemetry.Options
}

// workers resolves the fan-out width. Live progress streaming forces
// sequential execution: concurrent sessions would interleave their
// per-round lines nondeterministically.
func (c Config) workers() int {
	if c.Progress != nil {
		return 1
	}
	return c.Workers
}

// progressObserver returns a throttled observer streaming one line per
// `every` rounds to cfg.Progress, or nil when progress is off.
func (c Config) progressObserver(label string, every int) drrgossip.Observer {
	if c.Progress == nil {
		return nil
	}
	w := c.Progress
	return drrgossip.ObserverFunc(func(ri drrgossip.RoundInfo) {
		if ri.Round%every == 0 {
			fmt.Fprintf(w, "%s: run %d round %d [%s] alive %d msgs %d faults %d\n",
				label, ri.Run, ri.Round, ri.Phase, ri.Alive, ri.Messages, ri.FaultEvents)
		}
	})
}

func (c Config) trials(def int) int {
	if c.Trials > 0 {
		return c.Trials
	}
	if c.Quick && def > 2 {
		return 2
	}
	return def
}

// sizes returns the sweep sizes. Quick mode subsamples down to four
// points while keeping the full range — shape discrimination needs range,
// not density.
func (c Config) sizes(full []int) []int {
	if !c.Quick || len(full) <= 4 {
		return full
	}
	idx := []int{0, len(full) / 3, 2 * len(full) / 3, len(full) - 1}
	out := make([]int, 0, 4)
	prev := -1
	for _, i := range idx {
		if full[i] != prev {
			out = append(out, full[i])
			prev = full[i]
		}
	}
	return out
}

// Verdict is a machine-checked claim about an experiment's outcome.
type Verdict struct {
	Name   string
	Pass   bool
	Detail string
}

// Report is an experiment's rendered outcome.
type Report struct {
	ID       string
	Title    string
	Tables   []string
	Verdicts []Verdict
}

// Passed reports whether every verdict held.
func (r *Report) Passed() bool {
	for _, v := range r.Verdicts {
		if !v.Pass {
			return false
		}
	}
	return true
}

// String renders the report.
func (r *Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "### %s — %s\n\n", r.ID, r.Title)
	for _, t := range r.Tables {
		b.WriteString(t)
		b.WriteByte('\n')
	}
	for _, v := range r.Verdicts {
		mark := "PASS"
		if !v.Pass {
			mark = "FAIL"
		}
		fmt.Fprintf(&b, "[%s] %s: %s\n", mark, v.Name, v.Detail)
	}
	return b.String()
}

// Experiment is a runnable evaluation artifact.
type Experiment struct {
	ID    string
	Title string
	Run   func(cfg Config) (*Report, error)
}

// Registry lists every experiment in paper order.
func Registry() []Experiment {
	return []Experiment{
		{"T1", "Table 1: DRR-gossip vs uniform gossip vs efficient gossip", RunT1},
		{"F2", "Theorem 2: DRR tree count is Θ(n/log n)", RunF2},
		{"F3", "Theorem 3: DRR tree size is O(log n)", RunF3},
		{"F4", "Theorem 4: DRR costs O(n loglog n) messages, O(log n) rounds", RunF4},
		{"F5", "Theorem 5: gossip procedure reaches a constant fraction of roots", RunF5},
		{"F6", "Theorem 6: sampling procedure reaches all roots", RunF6},
		{"F7", "Theorems 7/10 + Lemma 8: Gossip-ave convergence and potential decay", RunF7},
		{"F8", "End-to-end DRR-gossip: per-phase breakdown and correctness", RunF8},
		{"F9", "Theorem 11: Local-DRR tree height is O(log n) on arbitrary graphs", RunF9},
		{"F10", "Theorem 13: Local-DRR tree count is Σ 1/(d_i+1)", RunF10},
		{"F11", "Theorem 14: DRR-gossip vs uniform gossip on Chord", RunF11},
		{"F12", "Theorem 15: the address-oblivious Ω(n log n) separation", RunF12},
		{"OV1", "Overlay sweep: Section 4 pipeline on pluggable topologies", RunOV1},
		{"FT1", "Fault injection: aggregates under churn, partitions and loss bursts", RunFT1},
		{"QB1", "Session amortization: batched queries reuse overlay and fault horizon", RunQB1},
		{"QH1", "Fast quantiles: HMS sampling driver vs bisection golden reference", RunQH1},
		{"SC1", "Scaling study: rounds, messages and memory from 10^3 to 10^7 nodes", RunSC1},
		{"AS1", "Async baseline: DRR vs pairwise averaging (uniform, GGE, sample-greedy)", RunAS1},
		{"CH1", "Chaos harness: invariant fuzzing over fault plans", RunCH1},
		{"A1", "Ablation: DRR probe budget", RunA1},
		{"A2", "Ablation: message-loss sweep", RunA2},
		{"A3", "Ablation: clusterhead heuristic bootstrap cost", RunA3},
	}
}

// ByID returns the experiment with the given id (case-insensitive).
func ByID(id string) (Experiment, bool) {
	for _, e := range Registry() {
		if strings.EqualFold(e.ID, id) {
			return e, true
		}
	}
	return Experiment{}, false
}

// IDs returns all experiment ids in order.
func IDs() []string {
	reg := Registry()
	ids := make([]string, len(reg))
	for i, e := range reg {
		ids[i] = e.ID
	}
	return ids
}

// verdictf builds a verdict with a formatted detail string.
func verdictf(name string, pass bool, format string, args ...any) Verdict {
	return Verdict{Name: name, Pass: pass, Detail: fmt.Sprintf(format, args...)}
}

// floats converts ints for the fitters.
func floats(xs []int) []float64 {
	out := make([]float64, len(xs))
	for i, x := range xs {
		out[i] = float64(x)
	}
	return out
}

// sortedKeys returns map keys in increasing order (deterministic tables).
func sortedKeys[M ~map[int]V, V any](m M) []int {
	ks := make([]int, 0, len(m))
	for k := range m {
		ks = append(ks, k)
	}
	sort.Ints(ks)
	return ks
}
