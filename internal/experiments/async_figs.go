// AS1 — the asynchronous baseline study: DRR-gossip's synchronous
// message bill against the classical asynchronous pairwise-averaging
// family (Mode: Async) on the same populations. The comparison is the
// positioning argument of the paper made falsifiable: pairwise averaging
// needs Θ(n log n) exchanges to reach an ε-ball on well-mixing graphs
// (Boyd et al.), every exchange bills 2 messages in the shared
// accounting unit, and DRR-gossip computes the exact average for
// O(n log log n) messages — so the async family's bill must come out
// strictly higher on the complete graph. The sweep also ranks the
// peer-selection policies (uniform vs greedy-eavesdropping vs
// sample-greedy) on sparse overlays, where the greedy policies' larger
// per-exchange progress is the whole point of their papers.
package experiments

import (
	"fmt"
	"math"
	"time"

	facade "drrgossip"
	"drrgossip/internal/agg"
	"drrgossip/internal/metrics"
	"drrgossip/internal/tablefmt"
	"drrgossip/internal/xrand"
)

// as1Eps is the convergence ball for every async run: the spread of the
// alive estimates must close to within 1e-6 absolute (values are drawn
// from [0,1), so absolute and relative ε coincide up to a constant).
const as1Eps = 1e-6

// as1N returns the comparison size: 10^4 nodes at the full tier (the
// acceptance bar), 2048 in quick mode.
func as1N(cfg Config) int {
	if cfg.Quick {
		return 2048
	}
	return 10000
}

// as1Ladder returns the uniform-on-complete scaling ladder for the
// exchanges-per-node fit.
func as1Ladder(cfg Config) []int {
	if cfg.Quick {
		return []int{256, 1024, 4096}
	}
	return []int{256, 1024, 4096, 10000}
}

// as1Run executes one async average through the facade and checks its
// value against the exact mean of the population.
func as1Run(cfg Config, topo facade.Topology, peer string, n int, values []float64) (*facade.Answer, time.Duration, error) {
	fc := facade.Config{N: n, Seed: xrand.Hash(cfg.Seed, 0xA51, uint64(n)), Topology: topo,
		Mode: facade.Async, AsyncPeer: peer, AsyncEps: as1Eps, Telemetry: cfg.Telemetry}
	net, err := facade.New(fc)
	if err != nil {
		return nil, 0, err
	}
	if obs := cfg.progressObserver("AS1 "+topo.String()+"/"+peer, 10*n); obs != nil {
		net.Observe(obs)
	}
	start := time.Now()
	ans, err := net.Average(values)
	if err != nil {
		return nil, 0, err
	}
	elapsed := time.Since(start)
	want := agg.Exact(agg.Average, values, 0)
	// A converged run sits inside the ε-ball; a capped run (slow-mixing
	// topologies) may legitimately be far out, but its mean must still be
	// intact — pairwise averaging conserves the population mean exactly.
	tol := 1e-4
	if ans.Converged {
		tol = 10 * as1Eps
	}
	if agg.RelError(ans.Value, want) > tol {
		return nil, 0, fmt.Errorf("AS1 %s/%s n=%d: mean drifted to %v (exact %v)", topo, peer, n, ans.Value, want)
	}
	return ans, elapsed, nil
}

// RunAS1 runs the asynchronous baseline study.
func RunAS1(cfg Config) (*Report, error) {
	rep := &Report{ID: "AS1", Title: "Async baseline: DRR vs pairwise averaging (uniform, GGE, sample-greedy)"}
	n := as1N(cfg)
	values := agg.GenUniform(n, 0, 1, xrand.Hash(cfg.Seed, 0xA52, uint64(n)))

	// Table 1: the head-to-head at fixed n. DRR runs the synchronous
	// pipeline; the async rows run pairwise averaging to the ε-ball (or
	// their event cap, reported honestly in the conv column).
	tb := tablefmt.New(fmt.Sprintf("AS1: messages to ε=%.0e at n=%d (async exchanges bill 2 messages each)", as1Eps, n),
		"topology", "protocol", "conv", "exchanges", "exch/n", "msgs", "msgs/n", "clock", "elapsed")

	topos := []facade.Topology{facade.Complete, facade.Chord, facade.SmallWorld, facade.Torus}
	// answers[topo][peer]; drr[topo] carries the synchronous reference row.
	answers := map[string]map[string]*facade.Answer{}
	for _, topo := range topos {
		answers[topo.String()] = map[string]*facade.Answer{}

		net, err := facade.New(facade.Config{N: n, Seed: xrand.Hash(cfg.Seed, 0xA51, uint64(n)),
			Topology: topo, Telemetry: cfg.Telemetry})
		if err != nil {
			return nil, fmt.Errorf("AS1 drr %s: %w", topo, err)
		}
		start := time.Now()
		drr, err := net.Average(values)
		if err != nil {
			return nil, fmt.Errorf("AS1 drr %s: %w", topo, err)
		}
		drrElapsed := time.Since(start)
		want := agg.Exact(agg.Average, values, 0)
		if agg.RelError(drr.Value, want) > 1e-6 {
			return nil, fmt.Errorf("AS1 drr %s: value %v drifted from exact %v", topo, drr.Value, want)
		}
		answers[topo.String()]["drr"] = drr
		tb.AddRow(topo.String(), "drr (sync)", "exact", "-", "-",
			float64(drr.Cost.Messages), float64(drr.Cost.Messages)/float64(n), "-", drrElapsed.Seconds())

		for _, peer := range []string{"uniform", "gge", "samplegreedy"} {
			if peer == "gge" && topo == facade.Complete {
				// GGE's eavesdrop cache is O(edges) — O(n²) here; the facade
				// rejects the combination, so the row is a dash, not a run.
				tb.AddRow(topo.String(), peer, "n/a", "-", "-", "-", "-", "-", "-")
				continue
			}
			ans, elapsed, err := as1Run(cfg, topo, peer, n, values)
			if err != nil {
				return nil, err
			}
			answers[topo.String()][peer] = ans
			conv := "yes"
			if !ans.Converged {
				conv = "cap"
			}
			tb.AddRow(topo.String(), peer, conv, float64(ans.Exchanges), float64(ans.Exchanges)/float64(n),
				float64(ans.Cost.Messages), float64(ans.Cost.Messages)/float64(n), ans.Cost.Clock, elapsed.Seconds())
		}
	}
	tb.AddNote("conv=cap rows hit the event cap before the ε-ball: pairwise averaging needs Θ(n²) exchanges on the 2-D torus (the geographic-gossip motivation), and uniform selection mixes too slowly on the small world; their exchange columns are a lower bound on the true cost")
	tb.AddNote("gge on complete is refused by construction: its eavesdrop cache is O(edges) = O(n²) there")
	tb.AddNote("elapsed is host-dependent; every other column is deterministic in the seed")
	rep.Tables = append(rep.Tables, tb.String())

	// Table 2: uniform-on-complete ladder — exchanges per node against
	// log n (the Θ(n log n) total of Boyd et al.).
	lt := tablefmt.New("AS1: uniform pairwise on complete, exchanges to ε vs n",
		"n", "exchanges", "exch/n", "msgs", "clock")
	ladder := as1Ladder(cfg)
	perNode := make([]float64, 0, len(ladder))
	for _, ln := range ladder {
		lv := agg.GenUniform(ln, 0, 1, xrand.Hash(cfg.Seed, 0xA52, uint64(ln)))
		ans, _, err := as1Run(cfg, facade.Complete, "uniform", ln, lv)
		if err != nil {
			return nil, err
		}
		if !ans.Converged {
			return nil, fmt.Errorf("AS1 ladder n=%d: uniform on complete failed to converge", ln)
		}
		perNode = append(perNode, float64(ans.Exchanges)/float64(ln))
		lt.AddRow(ln, float64(ans.Exchanges), float64(ans.Exchanges)/float64(ln),
			float64(ans.Cost.Messages), ans.Cost.Clock)
	}
	lt.AddNote("exch/n affine fit: %s", metrics.FitAffineBest(floats(ladder), perNode, metrics.TimeShapes)[0])
	rep.Tables = append(rep.Tables, lt.String())

	// Determinism: the async engine is strictly sequential, so repeats are
	// bit-identical structurally — pinned here end to end through the
	// facade, including a run with a different Workers value (a sync-mode
	// speed knob the async path must ignore).
	det, _, err := as1Run(cfg, facade.Complete, "uniform", n, values)
	if err != nil {
		return nil, err
	}
	detW, err := facade.New(facade.Config{N: n, Seed: xrand.Hash(cfg.Seed, 0xA51, uint64(n)),
		Mode: facade.Async, AsyncEps: as1Eps, Workers: 8})
	if err != nil {
		return nil, err
	}
	detWAns, err := detW.Average(values)
	if err != nil {
		return nil, err
	}

	comp, sw := answers["complete"], answers["smallworld"]
	uni := comp["uniform"]
	detOK := sameAsyncAnswer(det, uni) && sameAsyncAnswer(detWAns, uni)
	rep.Verdicts = append(rep.Verdicts,
		verdictf(fmt.Sprintf("uniform pairwise converges to ε=%.0e on complete at n=%d, mean exact", as1Eps, n),
			uni.Converged && agg.RelError(uni.Value, agg.Exact(agg.Average, values, 0)) <= 10*as1Eps,
			"converged=%v after %d exchanges (%d events), value %.9g", uni.Converged, uni.Exchanges, uni.Cost.Rounds, uni.Value),
		verdictf("uniform on complete: exchanges/node grows like log n, not O(1) (the Θ(n log n) total)",
			metrics.CloserShape(floats(ladder), perNode, metrics.ShapeLogN, metrics.ShapeConst),
			"exch/n %v -> %v over n %v -> %v", perNode[0], perNode[len(perNode)-1], ladder[0], ladder[len(ladder)-1]),
		verdictf("smallworld: greedy policies beat uniform selection (strictly fewer exchanges to ε)",
			sw["gge"].Exchanges < sw["uniform"].Exchanges && sw["samplegreedy"].Exchanges < sw["uniform"].Exchanges,
			"uniform %d (conv=%v), gge %d (conv=%v), samplegreedy %d (conv=%v)",
			sw["uniform"].Exchanges, sw["uniform"].Converged, sw["gge"].Exchanges, sw["gge"].Converged,
			sw["samplegreedy"].Exchanges, sw["samplegreedy"].Converged),
		verdictf("complete: DRR's synchronous bill undercuts uniform pairwise averaging (O(n loglog n) vs Θ(n log n) messages)",
			comp["drr"].Cost.Messages < uni.Cost.Messages,
			"drr %d msgs (%.1f/n) vs uniform pairwise %d msgs (%.1f/n)",
			comp["drr"].Cost.Messages, float64(comp["drr"].Cost.Messages)/float64(n),
			uni.Cost.Messages, float64(uni.Cost.Messages)/float64(n)),
		verdictf("async runs are bit-identical across repeats and Workers values",
			detOK, "repeat value %.9g cost %+v; workers=8 value %.9g", det.Value, det.Cost, detWAns.Value),
	)
	return rep, nil
}

// sameAsyncAnswer reports whether two async runs produced bit-identical
// results in every deterministic field.
func sameAsyncAnswer(a, b *facade.Answer) bool {
	return a.Value == b.Value && a.Cost == b.Cost && a.Exchanges == b.Exchanges &&
		a.Converged == b.Converged && a.Alive == b.Alive && a.Consensus == b.Consensus &&
		math.Abs(a.Cost.Clock-b.Cost.Clock) == 0
}
