package experiments

import (
	"math"

	"drrgossip/internal/agg"
	"drrgossip/internal/chord"
	"drrgossip/internal/drrgossip"
	"drrgossip/internal/graph"
	"drrgossip/internal/kempe"
	"drrgossip/internal/localdrr"
	"drrgossip/internal/metrics"
	"drrgossip/internal/sim"
	"drrgossip/internal/tablefmt"
	"drrgossip/internal/xrand"
)

// RunF9 validates Theorem 11: Local-DRR trees have height O(log n) on
// arbitrary graphs.
func RunF9(cfg Config) (*Report, error) {
	ns := cfg.sizes([]int{1024, 4096, 16384})
	trials := cfg.trials(3)
	builders := []struct {
		name  string
		build func(n int, seed uint64) *graph.Graph
	}{
		{"ring", func(n int, _ uint64) *graph.Graph { return graph.Ring(n) }},
		{"torus", func(n int, _ uint64) *graph.Graph {
			side := int(math.Round(math.Sqrt(float64(n))))
			return graph.Torus(side, side)
		}},
		{"regular(d=8)", func(n int, seed uint64) *graph.Graph { return graph.MustRandomRegular(n, 8, seed) }},
		{"ba(m=3)", func(n int, seed uint64) *graph.Graph { return graph.BarabasiAlbert(n, 3, seed) }},
		{"chord", func(n int, seed uint64) *graph.Graph {
			return chord.MustNew(n, chord.Options{Bits: 40, Placement: chord.Hashed, Seed: seed}).Graph()
		}},
	}
	tb := tablefmt.New("Theorem 11: Local-DRR max tree height vs log n",
		"graph", "n", "height(mean)", "height(max)", "log n", "mean/log n")
	heightsByGraph := map[string][]float64{}
	worstRatio := 0.0
	for _, b := range builders {
		for _, n := range ns {
			var hs []float64
			for trial := 0; trial < trials; trial++ {
				seed := xrand.Hash(cfg.Seed, 0xF9, uint64(n), uint64(trial))
				g := b.build(n, seed)
				eng := sim.NewEngine(g.N(), sim.Options{Seed: seed})
				res, err := localdrr.Run(eng, g, localdrr.Options{})
				if err != nil {
					return nil, err
				}
				hs = append(hs, float64(res.Forest.MaxHeight()))
			}
			mean := metrics.Mean(hs)
			_, worst := metrics.MinMax(hs)
			ref := math.Log2(float64(n))
			tb.AddRow(b.name, n, mean, worst, ref, mean/ref)
			heightsByGraph[b.name] = append(heightsByGraph[b.name], mean)
			if r := worst / ref; r > worstRatio {
				worstRatio = r
			}
		}
	}
	// Growth check: over a 16x increase in n, log n grows by a factor
	// ~1.4 and sqrt(n) by 4; require clearly sublinear growth on every
	// graph (the constant-times-log bound is the verdict above).
	sublinear := true
	detail := ""
	for _, b := range builders {
		hs := heightsByGraph[b.name]
		if len(hs) < 2 {
			continue
		}
		growth := hs[len(hs)-1] / math.Max(hs[0], 1)
		nGrowth := float64(ns[len(ns)-1]) / float64(ns[0])
		if growth*growth*growth > nGrowth { // growth > n^(1/3)
			sublinear = false
			detail += b.name + " "
		}
	}
	verdicts := []Verdict{
		verdictf("heights bounded by a constant times log n on every graph",
			worstRatio < 6, "worst height/log n = %v", worstRatio),
		verdictf("height growth is clearly sublinear on every graph",
			sublinear, "graphs over n^(1/3) growth: [%s]", detail),
	}
	return &Report{ID: "F9", Title: "Local-DRR heights", Tables: []string{tb.String()}, Verdicts: verdicts}, nil
}

// RunF10 validates Theorem 13: the Local-DRR tree count concentrates on
// Σ_i 1/(d_i + 1).
func RunF10(cfg Config) (*Report, error) {
	n := 8192
	if cfg.Quick {
		n = 2048
	}
	trials := cfg.trials(5)
	side := int(math.Round(math.Sqrt(float64(n))))
	builders := []struct {
		name  string
		build func(seed uint64) *graph.Graph
	}{
		{"ring", func(_ uint64) *graph.Graph { return graph.Ring(n) }},
		{"torus", func(_ uint64) *graph.Graph { return graph.Torus(side, side) }},
		{"regular(d=4)", func(seed uint64) *graph.Graph { return graph.MustRandomRegular(n, 4, seed) }},
		{"regular(d=16)", func(seed uint64) *graph.Graph { return graph.MustRandomRegular(n, 16, seed) }},
		{"gnp", func(seed uint64) *graph.Graph { return graph.ErdosRenyi(n, 8/float64(n), seed) }},
		// Heavy-tailed degrees: Theorem 13's Σ 1/(d_i+1) still predicts
		// the tree count exactly, well beyond the regular case.
		{"ba(m=4)", func(seed uint64) *graph.Graph { return graph.BarabasiAlbert(n, 4, seed) }},
	}
	tb := tablefmt.New("Theorem 13: Local-DRR tree count vs Σ 1/(d_i+1)",
		"graph", "trees(mean)", "Σ 1/(d+1)", "ratio")
	allClose := true
	for _, b := range builders {
		var trees []float64
		expect := 0.0
		for trial := 0; trial < trials; trial++ {
			seed := xrand.Hash(cfg.Seed, 0xFA, uint64(trial))
			g := b.build(seed)
			expect = g.HarmonicDegreeSum()
			eng := sim.NewEngine(g.N(), sim.Options{Seed: seed})
			res, err := localdrr.Run(eng, g, localdrr.Options{})
			if err != nil {
				return nil, err
			}
			trees = append(trees, float64(res.Forest.NumTrees()))
		}
		mean := metrics.Mean(trees)
		ratio := mean / expect
		tb.AddRow(b.name, mean, expect, ratio)
		if ratio < 0.9 || ratio > 1.1 {
			allClose = false
		}
	}
	verdicts := []Verdict{
		verdictf("tree counts within 10% of Σ 1/(d_i+1) on every graph",
			allClose, "see table"),
	}
	return &Report{ID: "F10", Title: "Local-DRR tree count", Tables: []string{tb.String()}, Verdicts: verdicts}, nil
}

// RunF11 validates Theorem 14 and the Chord corollary: on Chord,
// DRR-gossip takes O(log^2 n) time and O(n log n) messages, while uniform
// gossip takes O(log^2 n) time and O(n log^2 n) messages.
func RunF11(cfg Config) (*Report, error) {
	ns := cfg.sizes([]int{256, 512, 1024, 2048})
	trials := cfg.trials(2)
	tb := tablefmt.New("Theorem 14 (Chord): DRR-gossip vs uniform gossip",
		"n", "alg", "rounds", "msgs/n", "correct")
	var drrMsgs, kemMsgs, drrRounds, kemRounds []float64
	for _, n := range ns {
		var dm, km, dr, kr []float64
		okAll := true
		for trial := 0; trial < trials; trial++ {
			seed := xrand.Hash(cfg.Seed, 0xFB, uint64(n), uint64(trial))
			ring, err := chord.New(n, chord.Options{Bits: 40})
			if err != nil {
				return nil, err
			}
			values := agg.GenUniform(n, 0, 1000, seed)
			want := agg.Exact(agg.Max, values, 0)

			dres, err := drrgossip.MaxOnChord(sim.NewEngine(n, sim.Options{Seed: seed}), ring, values, drrgossip.SparseOptions{})
			if err != nil {
				return nil, err
			}
			dm = append(dm, float64(dres.Stats.Messages)/float64(n))
			dr = append(dr, float64(dres.Stats.Rounds))
			if dres.Value != want || !dres.Consensus {
				okAll = false
			}

			kres, err := kempe.PushMaxOnChord(sim.NewEngine(n, sim.Options{Seed: seed + 1}), ring, values, kempe.Options{})
			if err != nil {
				return nil, err
			}
			km = append(km, float64(kres.Stats.Messages)/float64(n))
			kr = append(kr, float64(kres.Stats.Rounds))
			for _, v := range kres.Estimates {
				if v != want {
					okAll = false
					break
				}
			}
		}
		tb.AddRow(n, "drr-gossip", metrics.Mean(dr), metrics.Mean(dm), okAll)
		tb.AddRow(n, "uniform", metrics.Mean(kr), metrics.Mean(km), okAll)
		drrMsgs = append(drrMsgs, metrics.Mean(dm))
		kemMsgs = append(kemMsgs, metrics.Mean(km))
		drrRounds = append(drrRounds, metrics.Mean(dr))
		kemRounds = append(kemRounds, metrics.Mean(kr))
	}
	nf := floats(ns)
	last := len(ns) - 1
	tb.AddNote("drr msgs/n fit: %s", metrics.FitAffineBest(nf, drrMsgs, metrics.TimeShapes)[0])
	tb.AddNote("uniform msgs/n fit: %s", metrics.FitAffineBest(nf, kemMsgs, metrics.TimeShapes)[0])
	verdicts := []Verdict{
		verdictf("drr-gossip messages/n grow like log n, not log^2 n",
			metrics.CloserShape(nf, drrMsgs, metrics.ShapeLogN, metrics.ShapeLog2N),
			"msgs/n %v -> %v", drrMsgs[0], drrMsgs[last]),
		verdictf("uniform gossip messages/n grow like log^2 n, not log n",
			metrics.CloserShape(nf, kemMsgs, metrics.ShapeLog2N, metrics.ShapeLogN),
			"msgs/n %v -> %v", kemMsgs[0], kemMsgs[last]),
		// The sweep range is too narrow to separate log^2 from log by
		// fitting (additive constants dominate at n <= 2048), so assert
		// the defining property instead: rounds per log n increase with n
		// (super-logarithmic), within a constant-times-log^2 envelope.
		verdictf("both algorithms' time is super-logarithmic within an O(log^2 n) envelope",
			drrRounds[last]/math.Log2(float64(ns[last])) > drrRounds[0]/math.Log2(float64(ns[0])) &&
				kemRounds[last]/math.Log2(float64(ns[last])) > kemRounds[0]/math.Log2(float64(ns[0])) &&
				drrRounds[last] < 30*math.Pow(math.Log2(float64(ns[last])), 2) &&
				kemRounds[last] < 30*math.Pow(math.Log2(float64(ns[last])), 2),
			"rounds/log n: drr %v -> %v, uniform %v -> %v",
			drrRounds[0]/math.Log2(float64(ns[0])), drrRounds[last]/math.Log2(float64(ns[last])),
			kemRounds[0]/math.Log2(float64(ns[0])), kemRounds[last]/math.Log2(float64(ns[last]))),
		verdictf("drr-gossip wins messages at every size by a growing factor",
			kemMsgs[0] > drrMsgs[0] && kemMsgs[last] > drrMsgs[last] &&
				kemMsgs[last]/drrMsgs[last] > kemMsgs[0]/drrMsgs[0],
			"uniform/drr message ratio %v -> %v", kemMsgs[0]/drrMsgs[0], kemMsgs[last]/drrMsgs[last]),
	}
	return &Report{ID: "F11", Title: "Chord comparison", Tables: []string{tb.String()}, Verdicts: verdicts}, nil
}
