package experiments

import (
	"fmt"
	"math"
	"strings"

	facade "drrgossip"
	"drrgossip/internal/agg"
	"drrgossip/internal/drrgossip"
	"drrgossip/internal/overlay"
	"drrgossip/internal/sim"
	"drrgossip/internal/tablefmt"
	"drrgossip/internal/xrand"
)

// DefaultOverlaySpecs is the topology sweep OV1 runs when benchtab is
// not given an explicit -topology list.
func DefaultOverlaySpecs() []string {
	return []string{"chord", "torus", "hypercube", "regular:4", "smallworld", "scalefree"}
}

// RunOV1 compares the full sparse pipeline (Local-DRR → routed
// root-gossip → dissemination) across the default overlay families, with
// the Complete topology as the dense baseline.
func RunOV1(cfg Config) (*Report, error) {
	return RunOverlays(cfg, DefaultOverlaySpecs())
}

// RunOverlays runs the sparse pipeline cost table over the given overlay
// specs ("complete" is allowed and runs the dense pipeline). Verdicts
// check exact Max consensus, Ave/Sum convergence at the distinguished
// root, and Theorem 13's harmonic-degree-sum tree-count prediction.
// With cfg.FaultSpec set, the sweep instead runs every overlay under the
// fault plan and relaxes its verdicts to termination + bounded error.
func RunOverlays(cfg Config, specs []string) (*Report, error) {
	if cfg.FaultSpec != "" {
		return runOverlaysFaulted(cfg, specs)
	}
	return runOverlaysHealthy(cfg, specs)
}

func runOverlaysHealthy(cfg Config, specs []string) (*Report, error) {
	n := 1024
	if cfg.Quick {
		n = 256
	}
	values := agg.GenUniform(n, 0, 1000, cfg.Seed+1)
	wantMax := agg.Exact(agg.Max, values, 0)
	wantAve := agg.Exact(agg.Average, values, 0)
	wantSum := agg.Exact(agg.Sum, values, 0)

	tb := tablefmt.New(fmt.Sprintf("Sparse pipeline across overlays (n=%d)", n),
		"topology", "edges", "Σ1/(d+1)", "trees",
		"max rnds", "max msg/n", "ave rnds", "ave msg/n", "sum msg/n")
	rep := &Report{ID: "OV1", Title: "Overlay sweep: Section 4 pipeline on pluggable topologies"}

	// Each spec's three pipeline runs are independent of every other
	// spec's: fan the sweep across workers with one result slot per spec,
	// then render rows and verdicts in spec order — the report is
	// bit-identical for any worker count.
	type specOut struct {
		mres, ares, sres *drrgossip.Result
		edges            any // "-" for complete, edge count otherwise
		harmonicVal      float64
		sparse           bool
		name             string
		err              error
	}
	outs := make([]specOut, len(specs))
	sim.ForEachRun(len(specs), cfg.workers(), func(k int) {
		o := &outs[k]
		text := specs[k]
		if strings.EqualFold(strings.TrimSpace(text), "complete") {
			o.name, o.edges = "complete", "-"
			if o.mres, o.err = drrgossip.Max(sim.NewEngine(n, sim.Options{Seed: cfg.Seed}), values, drrgossip.Options{}); o.err != nil {
				return
			}
			if o.ares, o.err = drrgossip.Ave(sim.NewEngine(n, sim.Options{Seed: cfg.Seed + 1}), values, drrgossip.Options{}); o.err != nil {
				return
			}
			o.sres, o.err = drrgossip.Sum(sim.NewEngine(n, sim.Options{Seed: cfg.Seed + 2}), values, drrgossip.Options{})
			return
		}
		spec, err := overlay.ParseSpec(text)
		if err != nil {
			o.err = err
			return
		}
		ov, err := overlay.Build(spec, n, xrand.Hash(cfg.Seed, 0x0071, uint64(n)))
		if err != nil {
			o.err = err
			return
		}
		g := ov.Graph()
		o.name, o.sparse = spec.String(), true
		o.edges = g.NumEdges()
		o.harmonicVal = g.HarmonicDegreeSum()
		if o.mres, o.err = drrgossip.MaxSparse(sim.NewEngine(n, sim.Options{Seed: cfg.Seed}), ov, values, drrgossip.SparseOptions{}); o.err != nil {
			o.err = fmt.Errorf("%s max: %w", spec, o.err)
			return
		}
		if o.ares, o.err = drrgossip.AveSparse(sim.NewEngine(n, sim.Options{Seed: cfg.Seed + 1}), ov, values, drrgossip.SparseOptions{}); o.err != nil {
			o.err = fmt.Errorf("%s ave: %w", spec, o.err)
			return
		}
		if o.sres, o.err = drrgossip.SumSparse(sim.NewEngine(n, sim.Options{Seed: cfg.Seed + 2}), ov, values, drrgossip.SparseOptions{}); o.err != nil {
			o.err = fmt.Errorf("%s sum: %w", spec, o.err)
		}
	})

	exactOK, aveOK, sumOK, treesOK := true, true, true, true
	var failures []string
	for k := range outs {
		o := &outs[k]
		if o.err != nil {
			return nil, o.err
		}
		harmonic := any("-")
		if o.sparse {
			harmonic = o.harmonicVal
		}
		tb.AddRow(o.name, o.edges, harmonic, o.mres.Forest.NumTrees(),
			o.mres.Stats.Rounds, float64(o.mres.Stats.Messages)/float64(n),
			o.ares.Stats.Rounds, float64(o.ares.Stats.Messages)/float64(n),
			float64(o.sres.Stats.Messages)/float64(n))
		if o.mres.Value != wantMax || !o.mres.Consensus {
			exactOK = false
			failures = append(failures, o.name+":max")
		}
		if agg.RelError(o.ares.Value, wantAve) > 1e-5 || (o.sparse && !o.ares.Consensus) {
			aveOK = false
			failures = append(failures, o.name+":ave")
		}
		if agg.RelError(o.sres.Value, wantSum) > 1e-5 || (o.sparse && !o.sres.Consensus) {
			sumOK = false
			failures = append(failures, o.name+":sum")
		}
		if o.sparse {
			if r := float64(o.mres.Forest.NumTrees()) / o.harmonicVal; r < 0.3 || r > 3 {
				treesOK = false
				failures = append(failures, fmt.Sprintf("%s:trees(ratio %.2f)", o.name, r))
			}
		}
	}
	tb.AddNote("msg/n = total transmission attempts per node; sparse overlays pay routed hops per virtual root-gossip edge")
	rep.Tables = append(rep.Tables, tb.String())
	failDetail := "all overlays"
	if len(failures) > 0 {
		failDetail = fmt.Sprintf("failing: %v", failures)
	}
	rep.Verdicts = append(rep.Verdicts,
		verdictf("exact Max consensus on every overlay", exactOK, "%s", failDetail),
		verdictf("Ave converges (rel err < 1e-5) on every overlay", aveOK, "%s", failDetail),
		verdictf("distinguished-root Sum converges on every overlay", sumOK, "%s", failDetail),
		verdictf("tree count tracks Σ 1/(d_i+1) (Theorem 13, factor 3)", treesOK, "%s", failDetail),
	)
	return rep, nil
}

// runOverlaysFaulted sweeps the overlays through the facade with the
// configured fault plan attached: every aggregate must terminate with a
// finite value, and Ave must stay in the ballpark.
func runOverlaysFaulted(cfg Config, specs []string) (*Report, error) {
	n := 1024
	if cfg.Quick {
		n = 256
	}
	plan, err := facade.ParseFaultPlan(cfg.FaultSpec)
	if err != nil {
		return nil, err
	}
	values := agg.GenUniform(n, 0, 1000, cfg.Seed+1)
	wantMax := agg.Exact(agg.Max, values, 0)
	wantAve := agg.Exact(agg.Average, values, 0)
	wantSum := agg.Exact(agg.Sum, values, 0)

	tb := tablefmt.New(fmt.Sprintf("Overlay sweep under faults %q (n=%d)", plan, n),
		"topology", "alive", "crashes", "max relerr", "ave relerr", "sum relerr", "msg/n", "rounds")
	rep := &Report{ID: "OV1", Title: "Overlay sweep: Section 4 pipeline under a fault plan"}
	finiteOK, ballparkOK := true, true
	var failures []string
	for _, text := range specs {
		topo, err := facade.ParseTopology(text)
		if err != nil {
			return nil, err
		}
		fc := facade.Config{N: n, Seed: cfg.Seed, Topology: topo, Faults: plan}
		mres, err := facade.Max(fc, values)
		if err != nil {
			return nil, fmt.Errorf("%s max under faults: %w", topo, err)
		}
		ares, err := facade.Average(fc, values)
		if err != nil {
			return nil, fmt.Errorf("%s ave under faults: %w", topo, err)
		}
		sres, err := facade.Sum(fc, values)
		if err != nil {
			return nil, fmt.Errorf("%s sum under faults: %w", topo, err)
		}
		maxErr := agg.RelError(mres.Value, wantMax)
		aveErr := agg.RelError(ares.Value, wantAve)
		sumErr := agg.RelError(sres.Value, wantSum)
		tb.AddRow(topo.String(), ares.Alive, ares.FaultCrashes, maxErr, aveErr, sumErr,
			float64(mres.Messages+ares.Messages+sres.Messages)/3/float64(n),
			(mres.Rounds+ares.Rounds+sres.Rounds)/3)
		for _, e := range []float64{maxErr, aveErr, sumErr} {
			if math.IsNaN(e) || math.IsInf(e, 0) {
				finiteOK = false
				failures = append(failures, topo.String()+":nonfinite")
			}
		}
		if maxErr > 0.05 || aveErr > 0.3 {
			ballparkOK = false
			failures = append(failures, fmt.Sprintf("%s:err(max %.3g, ave %.3g)", topo, maxErr, aveErr))
		}
	}
	rep.Tables = append(rep.Tables, tb.String())
	detail := "all overlays"
	if len(failures) > 0 {
		detail = fmt.Sprintf("failing: %v", failures)
	}
	rep.Verdicts = append(rep.Verdicts,
		verdictf("every overlay terminates with finite error under the plan", finiteOK, "%s", detail),
		verdictf("Max and Ave stay in the ballpark under the plan", ballparkOK, "%s", detail),
	)
	return rep, nil
}
