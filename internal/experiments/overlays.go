package experiments

import (
	"fmt"
	"math"
	"strings"

	facade "drrgossip"
	"drrgossip/internal/agg"
	"drrgossip/internal/drrgossip"
	"drrgossip/internal/overlay"
	"drrgossip/internal/sim"
	"drrgossip/internal/tablefmt"
	"drrgossip/internal/xrand"
)

// DefaultOverlaySpecs is the topology sweep OV1 runs when benchtab is
// not given an explicit -topology list.
func DefaultOverlaySpecs() []string {
	return []string{"chord", "torus", "hypercube", "regular:4", "smallworld", "scalefree"}
}

// RunOV1 compares the full sparse pipeline (Local-DRR → routed
// root-gossip → dissemination) across the default overlay families, with
// the Complete topology as the dense baseline.
func RunOV1(cfg Config) (*Report, error) {
	return RunOverlays(cfg, DefaultOverlaySpecs())
}

// RunOverlays runs the sparse pipeline cost table over the given overlay
// specs ("complete" is allowed and runs the dense pipeline). Verdicts
// check exact Max consensus, Ave/Sum convergence at the distinguished
// root, and Theorem 13's harmonic-degree-sum tree-count prediction.
// With cfg.FaultSpec set, the sweep instead runs every overlay under the
// fault plan and relaxes its verdicts to termination + bounded error.
func RunOverlays(cfg Config, specs []string) (*Report, error) {
	if cfg.FaultSpec != "" {
		return runOverlaysFaulted(cfg, specs)
	}
	return runOverlaysHealthy(cfg, specs)
}

func runOverlaysHealthy(cfg Config, specs []string) (*Report, error) {
	n := 1024
	if cfg.Quick {
		n = 256
	}
	values := agg.GenUniform(n, 0, 1000, cfg.Seed+1)
	wantMax := agg.Exact(agg.Max, values, 0)
	wantAve := agg.Exact(agg.Average, values, 0)
	wantSum := agg.Exact(agg.Sum, values, 0)

	tb := tablefmt.New(fmt.Sprintf("Sparse pipeline across overlays (n=%d)", n),
		"topology", "edges", "Σ1/(d+1)", "trees",
		"max rnds", "max msg/n", "ave rnds", "ave msg/n", "sum msg/n")
	rep := &Report{ID: "OV1", Title: "Overlay sweep: Section 4 pipeline on pluggable topologies"}

	exactOK, aveOK, sumOK, treesOK := true, true, true, true
	var failures []string
	for _, text := range specs {
		if strings.EqualFold(strings.TrimSpace(text), "complete") {
			mres, err := drrgossip.Max(sim.NewEngine(n, sim.Options{Seed: cfg.Seed}), values, drrgossip.Options{})
			if err != nil {
				return nil, err
			}
			ares, err := drrgossip.Ave(sim.NewEngine(n, sim.Options{Seed: cfg.Seed + 1}), values, drrgossip.Options{})
			if err != nil {
				return nil, err
			}
			sres, err := drrgossip.Sum(sim.NewEngine(n, sim.Options{Seed: cfg.Seed + 2}), values, drrgossip.Options{})
			if err != nil {
				return nil, err
			}
			tb.AddRow("complete", "-", "-", mres.Forest.NumTrees(),
				mres.Stats.Rounds, float64(mres.Stats.Messages)/float64(n),
				ares.Stats.Rounds, float64(ares.Stats.Messages)/float64(n),
				float64(sres.Stats.Messages)/float64(n))
			if mres.Value != wantMax || !mres.Consensus {
				exactOK = false
				failures = append(failures, "complete:max")
			}
			if agg.RelError(ares.Value, wantAve) > 1e-5 {
				aveOK = false
				failures = append(failures, "complete:ave")
			}
			if agg.RelError(sres.Value, wantSum) > 1e-5 {
				sumOK = false
				failures = append(failures, "complete:sum")
			}
			continue
		}
		spec, err := overlay.ParseSpec(text)
		if err != nil {
			return nil, err
		}
		ov, err := overlay.Build(spec, n, xrand.Hash(cfg.Seed, 0x0071, uint64(n)))
		if err != nil {
			return nil, err
		}
		g := ov.Graph()

		mres, err := drrgossip.MaxSparse(sim.NewEngine(n, sim.Options{Seed: cfg.Seed}), ov, values, drrgossip.SparseOptions{})
		if err != nil {
			return nil, fmt.Errorf("%s max: %w", spec, err)
		}
		ares, err := drrgossip.AveSparse(sim.NewEngine(n, sim.Options{Seed: cfg.Seed + 1}), ov, values, drrgossip.SparseOptions{})
		if err != nil {
			return nil, fmt.Errorf("%s ave: %w", spec, err)
		}
		sres, err := drrgossip.SumSparse(sim.NewEngine(n, sim.Options{Seed: cfg.Seed + 2}), ov, values, drrgossip.SparseOptions{})
		if err != nil {
			return nil, fmt.Errorf("%s sum: %w", spec, err)
		}
		harmonic := g.HarmonicDegreeSum()
		tb.AddRow(spec.String(), g.NumEdges(), harmonic, mres.Forest.NumTrees(),
			mres.Stats.Rounds, float64(mres.Stats.Messages)/float64(n),
			ares.Stats.Rounds, float64(ares.Stats.Messages)/float64(n),
			float64(sres.Stats.Messages)/float64(n))

		if mres.Value != wantMax || !mres.Consensus {
			exactOK = false
			failures = append(failures, spec.String()+":max")
		}
		if agg.RelError(ares.Value, wantAve) > 1e-5 || !ares.Consensus {
			aveOK = false
			failures = append(failures, spec.String()+":ave")
		}
		if agg.RelError(sres.Value, wantSum) > 1e-5 || !sres.Consensus {
			sumOK = false
			failures = append(failures, spec.String()+":sum")
		}
		if r := float64(mres.Forest.NumTrees()) / harmonic; r < 0.3 || r > 3 {
			treesOK = false
			failures = append(failures, fmt.Sprintf("%s:trees(ratio %.2f)", spec, r))
		}
	}
	tb.AddNote("msg/n = total transmission attempts per node; sparse overlays pay routed hops per virtual root-gossip edge")
	rep.Tables = append(rep.Tables, tb.String())
	failDetail := "all overlays"
	if len(failures) > 0 {
		failDetail = fmt.Sprintf("failing: %v", failures)
	}
	rep.Verdicts = append(rep.Verdicts,
		verdictf("exact Max consensus on every overlay", exactOK, "%s", failDetail),
		verdictf("Ave converges (rel err < 1e-5) on every overlay", aveOK, "%s", failDetail),
		verdictf("distinguished-root Sum converges on every overlay", sumOK, "%s", failDetail),
		verdictf("tree count tracks Σ 1/(d_i+1) (Theorem 13, factor 3)", treesOK, "%s", failDetail),
	)
	return rep, nil
}

// runOverlaysFaulted sweeps the overlays through the facade with the
// configured fault plan attached: every aggregate must terminate with a
// finite value, and Ave must stay in the ballpark.
func runOverlaysFaulted(cfg Config, specs []string) (*Report, error) {
	n := 1024
	if cfg.Quick {
		n = 256
	}
	plan, err := facade.ParseFaultPlan(cfg.FaultSpec)
	if err != nil {
		return nil, err
	}
	values := agg.GenUniform(n, 0, 1000, cfg.Seed+1)
	wantMax := agg.Exact(agg.Max, values, 0)
	wantAve := agg.Exact(agg.Average, values, 0)
	wantSum := agg.Exact(agg.Sum, values, 0)

	tb := tablefmt.New(fmt.Sprintf("Overlay sweep under faults %q (n=%d)", plan, n),
		"topology", "alive", "crashes", "max relerr", "ave relerr", "sum relerr", "msg/n", "rounds")
	rep := &Report{ID: "OV1", Title: "Overlay sweep: Section 4 pipeline under a fault plan"}
	finiteOK, ballparkOK := true, true
	var failures []string
	for _, text := range specs {
		topo, err := facade.ParseTopology(text)
		if err != nil {
			return nil, err
		}
		fc := facade.Config{N: n, Seed: cfg.Seed, Topology: topo, Faults: plan}
		mres, err := facade.Max(fc, values)
		if err != nil {
			return nil, fmt.Errorf("%s max under faults: %w", topo, err)
		}
		ares, err := facade.Average(fc, values)
		if err != nil {
			return nil, fmt.Errorf("%s ave under faults: %w", topo, err)
		}
		sres, err := facade.Sum(fc, values)
		if err != nil {
			return nil, fmt.Errorf("%s sum under faults: %w", topo, err)
		}
		maxErr := agg.RelError(mres.Value, wantMax)
		aveErr := agg.RelError(ares.Value, wantAve)
		sumErr := agg.RelError(sres.Value, wantSum)
		tb.AddRow(topo.String(), ares.Alive, ares.FaultCrashes, maxErr, aveErr, sumErr,
			float64(mres.Messages+ares.Messages+sres.Messages)/3/float64(n),
			(mres.Rounds+ares.Rounds+sres.Rounds)/3)
		for _, e := range []float64{maxErr, aveErr, sumErr} {
			if math.IsNaN(e) || math.IsInf(e, 0) {
				finiteOK = false
				failures = append(failures, topo.String()+":nonfinite")
			}
		}
		if maxErr > 0.05 || aveErr > 0.3 {
			ballparkOK = false
			failures = append(failures, fmt.Sprintf("%s:err(max %.3g, ave %.3g)", topo, maxErr, aveErr))
		}
	}
	rep.Tables = append(rep.Tables, tb.String())
	detail := "all overlays"
	if len(failures) > 0 {
		detail = fmt.Sprintf("failing: %v", failures)
	}
	rep.Verdicts = append(rep.Verdicts,
		verdictf("every overlay terminates with finite error under the plan", finiteOK, "%s", detail),
		verdictf("Max and Ave stay in the ballpark under the plan", ballparkOK, "%s", detail),
	)
	return rep, nil
}
