// Package chord implements the Chord distributed hash table overlay
// (Stoica et al., SIGCOMM 2001) as the sparse-network case study of
// Section 4 / Theorem 14 of the paper: an identifier ring with finger
// tables, greedy clockwise routing with O(log n) hops, and a routing-based
// uniform random node sampler standing in for King et al.'s "choosing a
// random peer in Chord" (see DESIGN.md §4, substitution 3).
package chord

import (
	"fmt"
	"sort"

	"drrgossip/internal/graph"
	"drrgossip/internal/xrand"
)

// Placement selects how node identifiers are laid out on the ring.
type Placement int

const (
	// Even spaces identifiers uniformly: successor(random id) is exactly
	// a uniform node, so sampling needs no rejection.
	Even Placement = iota
	// Hashed draws identifiers pseudo-randomly (the realistic DHT case);
	// the sampler then removes arc-length bias by rejection.
	Hashed
)

// Options configure ring construction.
type Options struct {
	Bits      int       // identifier space size 2^Bits; 0 means 40
	Placement Placement // Even (default) or Hashed
	Seed      uint64    // identifier seed for Hashed placement
}

// Ring is an immutable Chord overlay on nodes 0..n-1. Node indices are
// ranks on the identifier circle: node i's successor is node (i+1) mod n.
type Ring struct {
	n       int
	bits    int
	space   uint64   // 2^bits
	ids     []uint64 // sorted identifiers; ids[i] belongs to node i
	fingers [][]int  // fingers[i][k] = successor(ids[i] + 2^k), deduped
	minArc  uint64   // smallest successor arc, for rejection sampling
}

// New builds a Chord ring on n nodes (n >= 2).
func New(n int, opts Options) (*Ring, error) {
	if n < 2 {
		return nil, fmt.Errorf("chord: need n >= 2, got %d", n)
	}
	bits := opts.Bits
	if bits == 0 {
		bits = 40
	}
	if bits < 1 || bits > 62 {
		return nil, fmt.Errorf("chord: Bits must be in [1,62], got %d", bits)
	}
	space := uint64(1) << uint(bits)
	if uint64(n) > space {
		return nil, fmt.Errorf("chord: %d nodes exceed identifier space 2^%d", n, bits)
	}
	ids := make([]uint64, n)
	switch opts.Placement {
	case Even:
		step := space / uint64(n)
		for i := range ids {
			ids[i] = uint64(i) * step
		}
	case Hashed:
		rng := xrand.Derive(opts.Seed, 0xC40D, uint64(n))
		used := make(map[uint64]bool, n)
		for i := range ids {
			for {
				id := rng.Uint64n(space)
				if !used[id] {
					used[id] = true
					ids[i] = id
					break
				}
			}
		}
		sort.Slice(ids, func(a, b int) bool { return ids[a] < ids[b] })
	default:
		return nil, fmt.Errorf("chord: unknown placement %d", opts.Placement)
	}

	r := &Ring{n: n, bits: bits, space: space, ids: ids}
	r.minArc = r.arc(0)
	for i := 1; i < n; i++ {
		if a := r.arc(i); a < r.minArc {
			r.minArc = a
		}
	}

	// Finger tables: finger k of node i points to successor(ids[i]+2^k).
	r.fingers = make([][]int, n)
	for i := 0; i < n; i++ {
		seen := make(map[int]bool, bits)
		fs := make([]int, 0, bits)
		for k := 0; k < bits; k++ {
			target := (ids[i] + (uint64(1) << uint(k))) & (space - 1)
			f := r.SuccessorOf(target)
			if f != i && !seen[f] {
				seen[f] = true
				fs = append(fs, f)
			}
		}
		sort.Ints(fs)
		r.fingers[i] = fs
	}
	return r, nil
}

// MustNew is New for known-good parameters.
func MustNew(n int, opts Options) *Ring {
	r, err := New(n, opts)
	if err != nil {
		panic(err)
	}
	return r
}

// N returns the number of nodes.
func (r *Ring) N() int { return r.n }

// Bits returns the identifier width.
func (r *Ring) Bits() int { return r.bits }

// ID returns node i's identifier.
func (r *Ring) ID(i int) uint64 { return r.ids[i] }

// arc returns the identifier distance from node i's predecessor boundary:
// the length of the arc (pred(i), ids[i]] that node i owns.
func (r *Ring) arc(i int) uint64 {
	prev := r.ids[(i+r.n-1)%r.n]
	return (r.ids[i] - prev) & (r.space - 1)
}

// Arc returns the length of the identifier arc owned by node i. Exposed
// for the sampler's bias analysis in tests.
func (r *Ring) Arc(i int) uint64 { return r.arc(i) }

// SuccessorOf returns the node owning identifier id: the first node whose
// identifier is >= id in clockwise order (wrapping to node 0).
func (r *Ring) SuccessorOf(id uint64) int {
	id &= r.space - 1
	i := sort.Search(r.n, func(k int) bool { return r.ids[k] >= id })
	if i == r.n {
		return 0
	}
	return i
}

// Fingers returns node i's deduplicated finger set (sorted node indices;
// always includes the successor since 2^0 is a finger target). The caller
// must not modify it.
func (r *Ring) Fingers(i int) []int { return r.fingers[i] }

// dist returns the clockwise identifier distance from a to b.
func (r *Ring) dist(a, b uint64) uint64 { return (b - a) & (r.space - 1) }

// Route returns the greedy finger-routing hop path from node `from` to the
// node owning identifier id, excluding `from` itself. An empty path means
// `from` already owns id. Hop count is O(log n) for both placements.
func (r *Ring) Route(from int, id uint64) []int {
	id &= r.space - 1
	owner := r.SuccessorOf(id)
	if owner == from {
		return nil
	}
	var path []int
	cur := from
	for cur != owner {
		next := r.closestPreceding(cur, id)
		if next == cur {
			// No finger strictly precedes id: the successor owns it.
			next = (cur + 1) % r.n
		}
		path = append(path, next)
		cur = next
		if len(path) > 4*r.bits {
			panic("chord: routing did not converge")
		}
	}
	return path
}

// closestPreceding returns the finger of cur whose identifier is closest
// to id while remaining strictly within the clockwise interval
// (ids[cur], id); cur itself if none.
func (r *Ring) closestPreceding(cur int, id uint64) int {
	best := cur
	bestDist := r.dist(r.ids[cur], id)
	if bestDist == 0 {
		return cur
	}
	for _, f := range r.fingers[cur] {
		d := r.dist(r.ids[f], id)
		// Strictly inside (cur, id): closer to id than cur is, nonzero.
		if d < bestDist && d > 0 {
			best = f
			bestDist = d
		}
	}
	return best
}

// RouteToNode returns the hop path from node `from` to node `to`.
func (r *Ring) RouteToNode(from, to int) []int {
	if from == to {
		return nil
	}
	return r.Route(from, r.ids[to])
}

// Sample draws a near-uniform random node by routing: pick a uniform
// identifier, route to its owner, and accept with probability
// min(1, avgArc/arc(owner)), which cancels the arc-length bias up to a
// constant factor (P(node) ∝ min(arc, avgArc)). With Even placement every
// arc equals avgArc, so sampling is exactly uniform in one try. This
// stands in for King et al.'s exactly-uniform protocol while preserving
// the T = O(log n) rounds, M = O(log n) messages contract that Theorem 14
// needs (DESIGN.md §4, substitution 3). Expected tries is O(1); a budget
// of 64 tries bounds the worst case, after which the last candidate is
// accepted.
//
// It returns the accepted node, the hop path of the accepted route, and
// the total hops spent including rejected attempts (the message cost of
// the sample).
func (r *Ring) Sample(rng *xrand.Stream, from int) (node int, path []int, totalHops int) {
	avgArc := float64(r.space) / float64(r.n)
	for try := 0; ; try++ {
		id := rng.Uint64n(r.space)
		p := r.Route(from, id)
		totalHops += len(p)
		owner := r.SuccessorOf(id)
		a := float64(r.arc(owner))
		if a <= avgArc || try >= 63 || rng.Float64() < avgArc/a {
			return owner, p, totalHops
		}
	}
}

// Graph returns the undirected communication graph induced by the finger
// tables (including successor links): an edge {i, f} for every finger f of
// i. This is the topology Local-DRR runs on (Section 4); its degree is
// O(log n).
//
// The construction is slice-based (count, fill, sort, dedup) rather than
// per-node hash sets: at million-node scale a map per node costs gigabytes
// and dominates overlay build time, while the edge set itself is only
// ~2n·log n ints.
func (r *Ring) Graph() *graph.Graph {
	succ := func(i int) int { return (i + 1) % r.n }
	// Pass 1: directed-degree count so every list is allocated exactly once.
	deg := make([]int, r.n)
	for i := 0; i < r.n; i++ {
		for _, f := range r.fingers[i] {
			deg[i]++
			deg[f]++
		}
		if s := succ(i); s != i {
			deg[i]++
			deg[s]++
		}
	}
	lists := make([][]int, r.n)
	for i := range lists {
		lists[i] = make([]int, 0, deg[i])
	}
	add := func(u, v int) {
		lists[u] = append(lists[u], v)
		lists[v] = append(lists[v], u)
	}
	for i := 0; i < r.n; i++ {
		for _, f := range r.fingers[i] {
			add(i, f)
		}
		// Successor link always present even if finger dedup removed it.
		if s := succ(i); s != i {
			add(i, s)
		}
	}
	// Pass 2: sort and dedup (mutual fingers insert each edge twice).
	graph.SortDedup(lists)
	g, err := graph.FromAdjacency(fmt.Sprintf("chord(%d)", r.n), lists)
	if err != nil {
		panic(err) // construction is symmetric by design
	}
	return g
}
