// Package chord implements the Chord distributed hash table overlay
// (Stoica et al., SIGCOMM 2001) as the sparse-network case study of
// Section 4 / Theorem 14 of the paper: an identifier ring with finger
// tables, greedy clockwise routing with O(log n) hops, and a routing-based
// uniform random node sampler standing in for King et al.'s "choosing a
// random peer in Chord" (see DESIGN.md §4, substitution 3).
//
// The ring is fully implicit: finger tables are never materialized.
// Routing recomputes the O(bits) finger candidates of the current hop on
// the fly (same asymptotic hop cost, zero storage), and the communication
// graph is an implicit graph.Graph whose neighbour lists — forward
// fingers, reverse fingers and ring links — are derived from closed-form
// successor arithmetic (Even placement) or binary search over the sorted
// identifier array (Hashed placement, the only O(n) state kept).
package chord

import (
	"fmt"
	"sort"

	"drrgossip/internal/graph"
	"drrgossip/internal/xrand"
)

// Placement selects how node identifiers are laid out on the ring.
type Placement int

const (
	// Even spaces identifiers uniformly: successor(random id) is exactly
	// a uniform node, so sampling needs no rejection.
	Even Placement = iota
	// Hashed draws identifiers pseudo-randomly (the realistic DHT case);
	// the sampler then removes arc-length bias by rejection.
	Hashed
)

// Options configure ring construction.
type Options struct {
	Bits      int       // identifier space size 2^Bits; 0 means 40
	Placement Placement // Even (default) or Hashed
	Seed      uint64    // identifier seed for Hashed placement
}

// Ring is an immutable Chord overlay on nodes 0..n-1. Node indices are
// ranks on the identifier circle: node i's successor is node (i+1) mod n.
// Even placement stores no per-node state at all (identifiers are
// i·step); Hashed placement stores only the sorted identifier array.
type Ring struct {
	n      int
	bits   int
	space  uint64   // 2^bits
	step   uint64   // Even placement: ids[i] = i*step; 0 under Hashed
	ids    []uint64 // Hashed placement: sorted identifiers; nil under Even
	minArc uint64   // smallest successor arc, for rejection sampling
}

// New builds a Chord ring on n nodes (n >= 2).
func New(n int, opts Options) (*Ring, error) {
	if n < 2 {
		return nil, fmt.Errorf("chord: need n >= 2, got %d", n)
	}
	bits := opts.Bits
	if bits == 0 {
		bits = 40
	}
	if bits < 1 || bits > 62 {
		return nil, fmt.Errorf("chord: Bits must be in [1,62], got %d", bits)
	}
	space := uint64(1) << uint(bits)
	if uint64(n) > space {
		return nil, fmt.Errorf("chord: %d nodes exceed identifier space 2^%d", n, bits)
	}
	r := &Ring{n: n, bits: bits, space: space}
	switch opts.Placement {
	case Even:
		r.step = space / uint64(n)
		// Every arc is step except node 0's, which absorbs the rounding
		// remainder (space - (n-1)·step >= step), so minArc = step.
		r.minArc = r.step
	case Hashed:
		rng := xrand.Derive(opts.Seed, 0xC40D, uint64(n))
		used := make(map[uint64]bool, n)
		ids := make([]uint64, n)
		for i := range ids {
			for {
				id := rng.Uint64n(space)
				if !used[id] {
					used[id] = true
					ids[i] = id
					break
				}
			}
		}
		sort.Slice(ids, func(a, b int) bool { return ids[a] < ids[b] })
		r.ids = ids
		r.minArc = r.arc(0)
		for i := 1; i < n; i++ {
			if a := r.arc(i); a < r.minArc {
				r.minArc = a
			}
		}
	default:
		return nil, fmt.Errorf("chord: unknown placement %d", opts.Placement)
	}
	return r, nil
}

// MustNew is New for known-good parameters.
func MustNew(n int, opts Options) *Ring {
	r, err := New(n, opts)
	if err != nil {
		panic(err)
	}
	return r
}

// N returns the number of nodes.
func (r *Ring) N() int { return r.n }

// Bits returns the identifier width.
func (r *Ring) Bits() int { return r.bits }

// ID returns node i's identifier.
func (r *Ring) ID(i int) uint64 {
	if r.ids == nil {
		return uint64(i) * r.step
	}
	return r.ids[i]
}

// arc returns the identifier distance from node i's predecessor boundary:
// the length of the arc (pred(i), ids[i]] that node i owns.
func (r *Ring) arc(i int) uint64 {
	prev := r.ID((i + r.n - 1) % r.n)
	return (r.ID(i) - prev) & (r.space - 1)
}

// Arc returns the length of the identifier arc owned by node i. Exposed
// for the sampler's bias analysis in tests.
func (r *Ring) Arc(i int) uint64 { return r.arc(i) }

// SuccessorOf returns the node owning identifier id: the first node whose
// identifier is >= id in clockwise order (wrapping to node 0).
func (r *Ring) SuccessorOf(id uint64) int {
	id &= r.space - 1
	if r.ids == nil {
		// Closed form of the binary search over ids[i] = i·step: the
		// first i with i·step >= id is ceil(id/step).
		i := int((id + r.step - 1) / r.step)
		if i >= r.n {
			return 0
		}
		return i
	}
	i := sort.Search(r.n, func(k int) bool { return r.ids[k] >= id })
	if i == r.n {
		return 0
	}
	return i
}

// Fingers returns node i's deduplicated finger set (sorted node indices;
// always includes the successor since 2^0 is a finger target). The set is
// computed on demand — the ring stores no finger tables — so every call
// allocates a fresh slice the caller owns.
func (r *Ring) Fingers(i int) []int {
	fs := make([]int, 0, r.bits)
	fs = r.appendFingers(i, fs)
	sort.Ints(fs)
	// Dedup in place (several shifts can land on the same successor).
	w := 0
	for k, f := range fs {
		if k == 0 || f != fs[k-1] {
			fs[w] = f
			w++
		}
	}
	return fs[:w]
}

// appendFingers appends successor(ID(i) + 2^k) for every k, excluding i
// itself, without sorting or dedup.
func (r *Ring) appendFingers(i int, buf []int) []int {
	id := r.ID(i)
	for k := 0; k < r.bits; k++ {
		f := r.SuccessorOf((id + (uint64(1) << uint(k))) & (r.space - 1))
		if f != i {
			buf = append(buf, f)
		}
	}
	return buf
}

// dist returns the clockwise identifier distance from a to b.
func (r *Ring) dist(a, b uint64) uint64 { return (b - a) & (r.space - 1) }

// Route returns the greedy finger-routing hop path from node `from` to the
// node owning identifier id, excluding `from` itself. An empty path means
// `from` already owns id. Hop count is O(log n) for both placements.
func (r *Ring) Route(from int, id uint64) []int {
	id &= r.space - 1
	owner := r.SuccessorOf(id)
	if owner == from {
		return nil
	}
	var path []int
	cur := from
	for cur != owner {
		next := r.closestPreceding(cur, id)
		if next == cur {
			// No finger strictly precedes id: the successor owns it.
			next = (cur + 1) % r.n
		}
		path = append(path, next)
		cur = next
		if len(path) > 4*r.bits {
			panic("chord: routing did not converge")
		}
	}
	return path
}

// closestPreceding returns the finger of cur whose identifier is closest
// to id while remaining strictly within the clockwise interval
// (ids[cur], id); cur itself if none. Finger candidates are recomputed on
// the fly; duplicate shifts landing on one node re-evaluate the same
// distance, so the selected node is identical to scanning a deduplicated
// finger table.
func (r *Ring) closestPreceding(cur int, id uint64) int {
	curID := r.ID(cur)
	best := cur
	bestDist := r.dist(curID, id)
	if bestDist == 0 {
		return cur
	}
	for k := 0; k < r.bits; k++ {
		f := r.SuccessorOf((curID + (uint64(1) << uint(k))) & (r.space - 1))
		if f == cur {
			continue
		}
		d := r.dist(r.ID(f), id)
		// Strictly inside (cur, id): closer to id than cur is, nonzero.
		if d < bestDist && d > 0 {
			best = f
			bestDist = d
		}
	}
	return best
}

// RouteToNode returns the hop path from node `from` to node `to`.
func (r *Ring) RouteToNode(from, to int) []int {
	if from == to {
		return nil
	}
	return r.Route(from, r.ID(to))
}

// Sample draws a near-uniform random node by routing: pick a uniform
// identifier, route to its owner, and accept with probability
// min(1, avgArc/arc(owner)), which cancels the arc-length bias up to a
// constant factor (P(node) ∝ min(arc, avgArc)). With Even placement every
// arc equals avgArc, so sampling is exactly uniform in one try. This
// stands in for King et al.'s exactly-uniform protocol while preserving
// the T = O(log n) rounds, M = O(log n) messages contract that Theorem 14
// needs (DESIGN.md §4, substitution 3). Expected tries is O(1); a budget
// of 64 tries bounds the worst case, after which the last candidate is
// accepted.
//
// It returns the accepted node, the hop path of the accepted route, and
// the total hops spent including rejected attempts (the message cost of
// the sample).
func (r *Ring) Sample(rng *xrand.Stream, from int) (node int, path []int, totalHops int) {
	avgArc := float64(r.space) / float64(r.n)
	for try := 0; ; try++ {
		id := rng.Uint64n(r.space)
		p := r.Route(from, id)
		totalHops += len(p)
		owner := r.SuccessorOf(id)
		a := float64(r.arc(owner))
		if a <= avgArc || try >= 63 || rng.Float64() < avgArc/a {
			return owner, p, totalHops
		}
	}
}

// appendOwnersLinear appends (ascending) every node whose identifier lies
// in the linear range [a, b]; empty when a > b.
func (r *Ring) appendOwnersLinear(a, b uint64, buf []int) []int {
	if a > b {
		return buf
	}
	if r.ids == nil {
		i := int((a + r.step - 1) / r.step) // first index with i·step >= a
		j := int(b / r.step)                // last index with j·step <= b
		if j >= r.n {
			j = r.n - 1
		}
		for v := i; v <= j; v++ {
			buf = append(buf, v)
		}
		return buf
	}
	i := sort.Search(r.n, func(k int) bool { return r.ids[k] >= a })
	for ; i < r.n && r.ids[i] <= b; i++ {
		buf = append(buf, i)
	}
	return buf
}

// appendOwnersIn appends every node whose identifier lies in the
// clockwise identifier interval (lo, hi]; the interval must be nonempty
// (lo != hi).
func (r *Ring) appendOwnersIn(lo, hi uint64, buf []int) []int {
	if lo < hi {
		return r.appendOwnersLinear(lo+1, hi, buf)
	}
	buf = r.appendOwnersLinear(lo+1, r.space-1, buf)
	return r.appendOwnersLinear(0, hi, buf)
}

// appendGraphNeighbors appends node u's neighbours in the induced
// communication graph — forward fingers, reverse fingers (nodes v with u
// in their finger set), and the undirected ring links to successor and
// predecessor — sorted and deduplicated, excluding u.
//
// Reverse fingers come from an interval query instead of scanning all
// nodes: u = successor(ID(v) + 2^k) iff ID(v) + 2^k lands in u's owned
// arc (pred(u), u], i.e. ID(v) ∈ (ID(pred(u)) − 2^k, ID(u) − 2^k].
func (r *Ring) appendGraphNeighbors(u int, buf []int) []int {
	start := len(buf)
	buf = r.appendFingers(u, buf)
	uID := r.ID(u)
	predID := r.ID((u + r.n - 1) % r.n)
	mask := r.space - 1
	for k := 0; k < r.bits; k++ {
		s := uint64(1) << uint(k)
		buf = r.appendOwnersIn((predID-s)&mask, (uID-s)&mask, buf)
	}
	// Ring links: the successor edge is always present even when finger
	// dedup removed it, and symmetrically u is its predecessor's successor.
	if s := (u + 1) % r.n; s != u {
		buf = append(buf, s, (u+r.n-1)%r.n)
	}
	// Sort, dedup, drop u (the reverse-finger query can return u itself
	// when a shift maps u's own identifier back into its arc).
	row := buf[start:]
	sort.Ints(row)
	w := 0
	for _, v := range row {
		if v != u && (w == 0 || v != row[w-1]) {
			row[w] = v
			w++
		}
	}
	return buf[:start+w]
}

// Graph returns the undirected communication graph induced by the finger
// tables (including successor links): an edge {i, f} for every finger f of
// i. This is the topology Local-DRR runs on (Section 4); its degree is
// O(log n).
//
// The graph is implicit: neighbour lists are recomputed per query from
// successor arithmetic (see appendGraphNeighbors), so the graph costs no
// memory at any n. Use MaterializedGraph for the historical jagged-slice
// layout.
func (r *Ring) Graph() *graph.Graph {
	return graph.NewImplicit(fmt.Sprintf("chord(%d)", r.n), graph.ImplicitSpec{
		N:     r.n,
		Edges: -1, // counted lazily on first NumEdges call
		Fill:  func(u int, buf []int) []int { return r.appendGraphNeighbors(u, buf) },
	})
}

// MaterializedGraph returns the same communication graph as Graph in the
// historical jagged-slice representation: every neighbour list is its own
// []int. It exists for cross-representation goldens and the SC1 memory
// study; protocols should use Graph.
func (r *Ring) MaterializedGraph() *graph.Graph {
	lists := make([][]int, r.n)
	var fbuf []int
	for i := 0; i < r.n; i++ {
		fbuf = r.appendFingers(i, fbuf[:0])
		for _, f := range fbuf {
			lists[i] = append(lists[i], f)
			lists[f] = append(lists[f], i)
		}
		// Successor link always present even if finger dedup removed it.
		if s := (i + 1) % r.n; s != i {
			lists[i] = append(lists[i], s)
			lists[s] = append(lists[s], i)
		}
	}
	// Mutual fingers insert each edge twice; normalise.
	graph.SortDedup(lists)
	g, err := graph.LegacyJagged(fmt.Sprintf("chord(%d)", r.n), lists)
	if err != nil {
		panic(err) // construction is symmetric by design
	}
	return g
}
