package chord

// Cross-representation golden: the implicit communication graph
// (interval-query reverse fingers over closed-form successor arithmetic)
// must be element-identical to the materialized jagged builder, which
// reproduces the historical two-pass construction.

import (
	"fmt"
	"testing"
)

func assertGraphsEqual(t *testing.T, r *Ring) {
	t.Helper()
	imp := r.Graph()
	mat := r.MaterializedGraph()
	if imp.N() != mat.N() {
		t.Fatalf("n=%d: N differs: %d vs %d", r.N(), imp.N(), mat.N())
	}
	var buf []int
	for u := 0; u < r.N(); u++ {
		buf = imp.NeighborsInto(u, buf)
		want := mat.Neighbors(u)
		if len(buf) != len(want) {
			t.Fatalf("n=%d u=%d: degree %d vs %d (%v vs %v)",
				r.N(), u, len(buf), len(want), buf, want)
		}
		for i := range buf {
			if buf[i] != want[i] {
				t.Fatalf("n=%d u=%d: neighbours differ: %v vs %v", r.N(), u, buf, want)
			}
		}
	}
	if imp.NumEdges() != mat.NumEdges() {
		t.Fatalf("n=%d: edges %d vs %d", r.N(), imp.NumEdges(), mat.NumEdges())
	}
}

func TestImplicitGraphMatchesMaterialized(t *testing.T) {
	for _, placement := range []Placement{Even, Hashed} {
		for _, tc := range []struct{ n, bits int }{
			{2, 40}, {3, 40}, {5, 40}, {64, 40}, {1000, 40}, {4097, 40},
			// Tight identifier spaces stress wraparound intervals and
			// rounding (step does not divide space).
			{5, 3}, {64, 8}, {1000, 12}, {4097, 13},
		} {
			r := MustNew(tc.n, Options{Bits: tc.bits, Placement: placement, Seed: 0xfeed})
			t.Run(fmt.Sprintf("p%d/n%d/b%d", placement, tc.n, tc.bits), func(t *testing.T) {
				assertGraphsEqual(t, r)
			})
		}
	}
}

// The closed-form Even successor must agree with binary search over the
// explicit identifier array for every identifier in a small space.
func TestEvenSuccessorClosedForm(t *testing.T) {
	for _, n := range []int{2, 3, 5, 7, 64, 100} {
		bits := 10
		r := MustNew(n, Options{Bits: bits})
		space := uint64(1) << uint(bits)
		for id := uint64(0); id < space; id++ {
			got := r.SuccessorOf(id)
			// Reference: first node (clockwise, wrapping to 0) whose
			// identifier is >= id.
			want := 0
			for i := 0; i < n; i++ {
				if r.ID(i) >= id {
					want = i
					break
				}
			}
			if got != want {
				t.Fatalf("n=%d id=%d: SuccessorOf = %d, want %d", n, id, got, want)
			}
		}
	}
}
