package chord

import (
	"math"
	"testing"

	"drrgossip/internal/xrand"
)

func TestNewValidation(t *testing.T) {
	if _, err := New(1, Options{}); err == nil {
		t.Fatal("n=1 accepted")
	}
	if _, err := New(10, Options{Bits: 63}); err == nil {
		t.Fatal("Bits=63 accepted")
	}
}

func TestNewTooManyNodes(t *testing.T) {
	if _, err := New(10, Options{Bits: 3}); err == nil {
		t.Fatal("10 nodes in 8-id space accepted")
	}
}

func TestEvenPlacementIDs(t *testing.T) {
	r := MustNew(8, Options{Bits: 6})
	for i := 0; i < 8; i++ {
		if r.ID(i) != uint64(i*8) {
			t.Fatalf("even ID(%d) = %d", i, r.ID(i))
		}
		if r.Arc(i) != 8 {
			t.Fatalf("even Arc(%d) = %d", i, r.Arc(i))
		}
	}
}

func TestSuccessorOf(t *testing.T) {
	r := MustNew(8, Options{Bits: 6}) // ids 0,8,16,...,56
	cases := []struct {
		id   uint64
		want int
	}{
		{0, 0}, {1, 1}, {8, 1}, {9, 2}, {56, 7}, {57, 0}, {63, 0},
	}
	for _, c := range cases {
		if got := r.SuccessorOf(c.id); got != c.want {
			t.Fatalf("SuccessorOf(%d) = %d, want %d", c.id, got, c.want)
		}
	}
}

func TestRouteReachesOwner(t *testing.T) {
	for _, placement := range []Placement{Even, Hashed} {
		r := MustNew(128, Options{Bits: 20, Placement: placement, Seed: 5})
		rng := xrand.New(9)
		for trial := 0; trial < 500; trial++ {
			from := rng.Intn(128)
			id := rng.Uint64n(1 << 20)
			owner := r.SuccessorOf(id)
			path := r.Route(from, id)
			if from == owner {
				if len(path) != 0 {
					t.Fatalf("self-route has hops: %v", path)
				}
				continue
			}
			if len(path) == 0 || path[len(path)-1] != owner {
				t.Fatalf("route from %d to id %d (owner %d): path %v", from, id, owner, path)
			}
		}
	}
}

func TestRouteHopBound(t *testing.T) {
	// Greedy finger routing takes O(log n) hops.
	for _, n := range []int{64, 256, 1024} {
		r := MustNew(n, Options{Bits: 32, Placement: Hashed, Seed: 3})
		rng := xrand.New(4)
		maxHops := 0
		for trial := 0; trial < 300; trial++ {
			from := rng.Intn(n)
			path := r.Route(from, rng.Uint64n(1<<32))
			if len(path) > maxHops {
				maxHops = len(path)
			}
		}
		bound := 3 * int(math.Log2(float64(n)))
		if maxHops > bound {
			t.Fatalf("n=%d: max hops %d exceeds 3 log n = %d", n, maxHops, bound)
		}
	}
}

func TestRouteToNode(t *testing.T) {
	r := MustNew(64, Options{Bits: 16, Placement: Hashed, Seed: 8})
	rng := xrand.New(2)
	for trial := 0; trial < 200; trial++ {
		from, to := rng.Intn(64), rng.Intn(64)
		path := r.RouteToNode(from, to)
		if from == to {
			if len(path) != 0 {
				t.Fatal("self route nonempty")
			}
			continue
		}
		if len(path) == 0 || path[len(path)-1] != to {
			t.Fatalf("RouteToNode(%d,%d) = %v", from, to, path)
		}
	}
}

func TestFingersIncludeSuccessor(t *testing.T) {
	r := MustNew(50, Options{Bits: 24, Placement: Hashed, Seed: 1})
	for i := 0; i < 50; i++ {
		succ := (i + 1) % 50
		found := false
		for _, f := range r.Fingers(i) {
			if f == succ {
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("node %d fingers %v missing successor %d", i, r.Fingers(i), succ)
		}
	}
}

func TestFingerCountLogarithmic(t *testing.T) {
	r := MustNew(1024, Options{Bits: 40, Placement: Hashed, Seed: 2})
	for i := 0; i < 1024; i += 37 {
		if f := len(r.Fingers(i)); f > 40 || f < 2 {
			t.Fatalf("node %d has %d fingers", i, f)
		}
	}
}

func TestSampleUniformEven(t *testing.T) {
	const n = 64
	r := MustNew(n, Options{Bits: 20})
	rng := xrand.New(7)
	counts := make([]int, n)
	const trials = 64000
	totalHops := 0
	for i := 0; i < trials; i++ {
		node, _, hops := r.Sample(rng, i%n)
		counts[node]++
		totalHops += hops
	}
	want := float64(trials) / n
	for v, c := range counts {
		if math.Abs(float64(c)-want) > 6*math.Sqrt(want) {
			t.Fatalf("node %d sampled %d times, want ~%v", v, c, want)
		}
	}
	if avg := float64(totalHops) / trials; avg > 3*math.Log2(n) {
		t.Fatalf("average sample cost %v hops too high", avg)
	}
}

func TestSampleHashedCoverage(t *testing.T) {
	// With Hashed placement sampling is near-uniform: every node must be
	// hit, and no node more than a few times its fair share.
	const n = 64
	r := MustNew(n, Options{Bits: 30, Placement: Hashed, Seed: 11})
	rng := xrand.New(13)
	counts := make([]int, n)
	const trials = 64000
	for i := 0; i < trials; i++ {
		node, _, _ := r.Sample(rng, 0)
		counts[node]++
	}
	want := float64(trials) / n
	for v, c := range counts {
		if c == 0 {
			t.Fatalf("node %d never sampled", v)
		}
		if float64(c) > 5*want {
			t.Fatalf("node %d sampled %d times (fair share %v)", v, c, want)
		}
	}
}

func TestSamplePathMatchesNode(t *testing.T) {
	r := MustNew(32, Options{Bits: 16, Placement: Hashed, Seed: 21})
	rng := xrand.New(5)
	for i := 0; i < 200; i++ {
		from := rng.Intn(32)
		node, path, hops := r.Sample(rng, from)
		if len(path) > 0 && path[len(path)-1] != node {
			t.Fatalf("path %v does not end at sampled node %d", path, node)
		}
		if len(path) == 0 && node != from {
			t.Fatalf("empty path but node %d != from %d", node, from)
		}
		if hops < len(path) {
			t.Fatalf("total hops %d < accepted path %d", hops, len(path))
		}
	}
}

func TestGraphStructure(t *testing.T) {
	r := MustNew(256, Options{Bits: 30, Placement: Hashed, Seed: 6})
	g := r.Graph()
	if g.N() != 256 {
		t.Fatalf("graph N = %d", g.N())
	}
	if !g.Connected() {
		t.Fatal("chord graph disconnected")
	}
	// Degree is O(log n): fingers in + out.
	if d := g.MaxDegree(); d > 8*30 {
		t.Fatalf("max degree %d too large", d)
	}
	// Ring edges present.
	for i := 0; i < 256; i++ {
		if !g.HasEdge(i, (i+1)%256) {
			t.Fatalf("missing successor edge at %d", i)
		}
	}
}

func TestHashedIDsSortedDistinct(t *testing.T) {
	r := MustNew(512, Options{Bits: 34, Placement: Hashed, Seed: 77})
	for i := 1; i < 512; i++ {
		if r.ID(i) <= r.ID(i-1) {
			t.Fatalf("ids not strictly increasing at %d", i)
		}
	}
}

func TestDeterministicConstruction(t *testing.T) {
	a := MustNew(100, Options{Bits: 24, Placement: Hashed, Seed: 3})
	b := MustNew(100, Options{Bits: 24, Placement: Hashed, Seed: 3})
	for i := 0; i < 100; i++ {
		if a.ID(i) != b.ID(i) {
			t.Fatalf("ids differ at %d", i)
		}
	}
}

func BenchmarkRoute(b *testing.B) {
	r := MustNew(4096, Options{Bits: 40, Placement: Hashed, Seed: 1})
	rng := xrand.New(2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Route(rng.Intn(4096), rng.Uint64n(1<<40))
	}
}

func BenchmarkSample(b *testing.B) {
	r := MustNew(4096, Options{Bits: 40, Placement: Hashed, Seed: 1})
	rng := xrand.New(2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Sample(rng, i%4096)
	}
}

func TestRouteDistanceMonotone(t *testing.T) {
	// The defining greedy-routing invariant: every hop strictly decreases
	// the clockwise identifier distance to the target — except the final
	// hop onto the owner, whose identifier sits just past the target (the
	// distance wraps there by construction).
	r := MustNew(512, Options{Bits: 30, Placement: Hashed, Seed: 31})
	rng := xrand.New(32)
	space := uint64(1) << 30
	dist := func(a, b uint64) uint64 { return (b - a) & (space - 1) }
	for trial := 0; trial < 300; trial++ {
		from := rng.Intn(512)
		id := rng.Uint64n(space)
		path := r.Route(from, id)
		owner := r.SuccessorOf(id)
		d := dist(r.ID(from), id)
		for k, hop := range path {
			if hop == owner {
				if k != len(path)-1 {
					t.Fatalf("owner reached mid-path at hop %d of %v", k, path)
				}
				break
			}
			nd := dist(r.ID(hop), id)
			if nd >= d {
				t.Fatalf("hop %d did not progress: %d -> %d", hop, d, nd)
			}
			d = nd
		}
	}
}

func TestFingerDistanceHalving(t *testing.T) {
	// With even placement the farthest finger covers half the ring, the
	// next a quarter, etc. — the structural reason routing is O(log n).
	r := MustNew(64, Options{Bits: 12})
	for i := 0; i < 64; i++ {
		far := 0
		for _, f := range r.Fingers(i) {
			gap := (f - i + 64) % 64
			if gap > far {
				far = gap
			}
		}
		if far < 16 {
			t.Fatalf("node %d farthest finger only spans %d of 64", i, far)
		}
	}
}
