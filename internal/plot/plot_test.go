package plot

import (
	"strings"
	"testing"
)

func TestDecayCurve(t *testing.T) {
	c := New("rel err", true)
	c.Add("err", []float64{1, 0.1, 0.01, 0.001, 0.0001})
	out := c.String()
	if !strings.Contains(out, "log scale") {
		t.Fatalf("missing scale marker:\n%s", out)
	}
	lines := strings.Split(out, "\n")
	// Monotone decay: the glyph's row index must increase along x.
	prevRow := -1
	for x := 0; x < 64; x++ {
		for r := 1; r <= 16; r++ {
			if len(lines[r]) > x+1 && lines[r][x+1] == '*' {
				if r < prevRow {
					t.Fatalf("curve not rendered monotone at col %d:\n%s", x, out)
				}
				prevRow = r
			}
		}
	}
}

func TestMultiSeriesLegend(t *testing.T) {
	c := New("msgs", false)
	c.Add("drr", []float64{1, 2, 3})
	c.Add("kempe", []float64{2, 4, 8})
	out := c.String()
	if !strings.Contains(out, "*=drr") || !strings.Contains(out, "a=kempe") {
		t.Fatalf("legend missing:\n%s", out)
	}
}

func TestEmptyChart(t *testing.T) {
	c := New("y", false)
	if !strings.Contains(c.String(), "no data") {
		t.Fatal("empty chart should say so")
	}
	c.Add("nonpositive", []float64{-1, 0})
	c.LogY = true
	if !strings.Contains(c.String(), "no data") {
		t.Fatal("all-skipped log chart should say so")
	}
}

func TestConstantSeries(t *testing.T) {
	c := New("y", false)
	c.Add("flat", []float64{5, 5, 5})
	out := c.String()
	if !strings.Contains(out, "*") {
		t.Fatalf("flat series not rendered:\n%s", out)
	}
}

func TestDimensionClamping(t *testing.T) {
	c := New("y", false)
	c.Width, c.Height = 1, 1
	c.Add("x", []float64{1, 2})
	out := c.String()
	if len(out) == 0 {
		t.Fatal("clamped chart empty")
	}
}
