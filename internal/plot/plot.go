// Package plot renders small ASCII charts for the experiment reports:
// decay curves (Gossip-ave error, Lemma 8 potential) and growth curves
// (messages vs n). Output is deterministic text, suitable for
// EXPERIMENTS.md and terminal harness runs.
package plot

import (
	"fmt"
	"math"
	"strings"
)

// Lines renders series as an ASCII chart of the given size. Each series
// is drawn with its own glyph ('a' + index unless names' first runes are
// distinct). X is the sample index; Y is scaled linearly unless logY.
type Chart struct {
	Width, Height int
	LogY          bool
	YLabel        string
	series        []series
}

type series struct {
	name   string
	glyph  byte
	values []float64
}

// New returns a chart with sensible defaults (64x16).
func New(yLabel string, logY bool) *Chart {
	return &Chart{Width: 64, Height: 16, LogY: logY, YLabel: yLabel}
}

// Add appends a named series. Non-positive values are skipped in LogY
// mode.
func (c *Chart) Add(name string, values []float64) {
	glyph := byte('*')
	if len(c.series) > 0 {
		glyph = byte('a' + len(c.series) - 1)
	}
	c.series = append(c.series, series{name: name, glyph: glyph, values: values})
}

// String renders the chart; empty charts render as a note.
func (c *Chart) String() string {
	w, h := c.Width, c.Height
	if w < 8 {
		w = 8
	}
	if h < 4 {
		h = 4
	}
	maxLen := 0
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, s := range c.series {
		if len(s.values) > maxLen {
			maxLen = len(s.values)
		}
		for _, v := range s.values {
			if c.LogY && v <= 0 {
				continue
			}
			y := c.transform(v)
			if y < lo {
				lo = y
			}
			if y > hi {
				hi = y
			}
		}
	}
	if maxLen == 0 || math.IsInf(lo, 1) {
		return "(no data to plot)\n"
	}
	if hi == lo {
		hi = lo + 1
	}
	grid := make([][]byte, h)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", w))
	}
	for _, s := range c.series {
		for i, v := range s.values {
			if c.LogY && v <= 0 {
				continue
			}
			x := 0
			if maxLen > 1 {
				x = i * (w - 1) / (maxLen - 1)
			}
			frac := (c.transform(v) - lo) / (hi - lo)
			row := h - 1 - int(math.Round(frac*float64(h-1)))
			grid[row][x] = s.glyph
		}
	}
	var b strings.Builder
	top, bottom := c.untransform(hi), c.untransform(lo)
	fmt.Fprintf(&b, "%s (top %.3g, bottom %.3g%s)\n", c.YLabel, top, bottom, c.scaleName())
	for _, row := range grid {
		b.WriteString("|")
		b.Write(row)
		b.WriteString("|\n")
	}
	b.WriteString("+" + strings.Repeat("-", w) + "+\n")
	var legend []string
	for _, s := range c.series {
		legend = append(legend, fmt.Sprintf("%c=%s", s.glyph, s.name))
	}
	b.WriteString(" " + strings.Join(legend, "  ") + "\n")
	return b.String()
}

func (c *Chart) scaleName() string {
	if c.LogY {
		return ", log scale"
	}
	return ""
}

func (c *Chart) transform(v float64) float64 {
	if c.LogY {
		return math.Log10(v)
	}
	return v
}

func (c *Chart) untransform(y float64) float64 {
	if c.LogY {
		return math.Pow(10, y)
	}
	return y
}
