// Shrink hooks: the plan surgery the chaos harness (internal/chaos)
// performs while delta-debugging a failing (config, plan) pair down to a
// minimal reproducer. All operations return fresh plans with no recorded
// Spec, so their String form is the canonical re-parseable rendering of
// the surviving events.

package faults

import "math"

// Without returns a copy of the plan with event i removed. Note that
// fractional/counted node sets are selected by (seed, event index), so
// removing an event may shift the materialised sets of later events —
// callers re-verify each shrink candidate rather than assuming the
// remaining events replay identically.
func (p *Plan) Without(i int) *Plan {
	evs := make([]Event, 0, len(p.Events)-1)
	evs = append(evs, p.Events[:i]...)
	evs = append(evs, p.Events[i+1:]...)
	return &Plan{Events: evs}
}

// WithEvent returns a copy of the plan with event i replaced by ev.
func (p *Plan) WithEvent(i int, ev Event) *Plan {
	evs := append([]Event(nil), p.Events...)
	evs[i] = ev
	return &Plan{Events: evs}
}

// Simplifications returns strictly simpler one-step variants of the
// event — drop the window end, halve the affected node amount, reduce a
// partition to two groups, tame a churn process — ordered roughly most
// aggressive first. Each variant stays valid for any n the original was
// valid for; the shrinker substitutes them via WithEvent and keeps the
// ones that still reproduce a violation.
func (ev Event) Simplifications() []Event {
	var out []Event
	add := func(mutate func(*Event)) {
		e2 := ev
		e2.Nodes = append([]int(nil), ev.Nodes...)
		mutate(&e2)
		out = append(out, e2)
	}
	if !ev.End.isZero() {
		add(func(e *Event) { e.End = Timing{} })
	}
	if len(ev.Nodes) > 1 {
		add(func(e *Event) { e.Nodes = e.Nodes[:(len(e.Nodes)+1)/2] })
	}
	if ev.Count > 1 {
		add(func(e *Event) { e.Count /= 2 })
	}
	if len(ev.Nodes) == 0 && ev.Count == 0 && ev.Frac > 0.05 {
		add(func(e *Event) { e.Frac = shrinkFrac(e.Frac) })
	}
	if ev.Kind == Partition && ev.Groups > 2 {
		add(func(e *Event) { e.Groups = 2 })
	}
	if ev.Kind == ChurnKind {
		if ev.Down > 0 {
			add(func(e *Event) { e.Down = 0 })
		}
		if ev.Rate > 0.05 {
			add(func(e *Event) { e.Rate = shrinkFrac(e.Rate) })
		}
	}
	if (ev.Kind == LossBurst || ev.Kind == Flaky) && ev.Loss > 0.05 {
		add(func(e *Event) { e.Loss = shrinkFrac(e.Loss) })
	}
	return out
}

// shrinkFrac halves a fraction, quantised to 4 decimals so shrunk specs
// stay short and round-trip cleanly.
func shrinkFrac(f float64) float64 {
	return math.Round(f/2*1e4) / 1e4
}
