// Generators for common fault scenarios. Each returns a Plan; combine
// with Merge. All randomness is deferred to Bind, so generators are pure.

package faults

import "fmt"

// PoissonChurn returns a churn plan: over the whole run, an expected
// rate·n crash events arrive as a Poisson process (uniform in time),
// each killing a uniformly random node; with down > 0 every churned
// node rejoins down rounds later. Requires a horizon at Bind.
func PoissonChurn(rate float64, down int) *Plan {
	spec := fmt.Sprintf("churn:%g", rate)
	if down > 0 {
		spec = fmt.Sprintf("churn:%g:%d", rate, down)
	}
	return &Plan{
		Events: []Event{{Kind: ChurnKind, Rate: rate, Down: down}},
		Spec:   spec,
	}
}

// CrashFraction returns a plan that crashes a hashed ⌈frac·n⌉-node
// subset at the given time (correlated mass failure, e.g. a datacenter
// outage). A zero end leaves them down for the rest of the run.
func CrashFraction(frac float64, at, end Timing) *Plan {
	return &Plan{
		Events: []Event{{Kind: Crash, Frac: frac, At: at, End: end}},
		Spec:   fmt.Sprintf("crash:%g@%s%s", frac, at, window(end)),
	}
}

// RackFailure returns a correlated-failure plan: a contiguous block of
// ⌈frac·n⌉ node ids (one "rack" under adjacent placement) crashes at
// `at` and — if end is nonzero — rejoins at `end`.
func RackFailure(frac float64, at, end Timing) *Plan {
	return &Plan{
		Events: []Event{{Kind: Crash, Frac: frac, Contiguous: true, At: at, End: end}},
		Spec:   fmt.Sprintf("rack:%g@%s%s", frac, at, window(end)),
	}
}

// FlakyRegion returns a plan where every link touching a hashed
// ⌈frac·n⌉-node region suffers extra loss during [at, end).
func FlakyRegion(frac, loss float64, at, end Timing) *Plan {
	return &Plan{
		Events: []Event{{Kind: Flaky, Frac: frac, Loss: loss, At: at, End: end}},
		Spec:   fmt.Sprintf("flaky:%g:%g@%s%s", frac, loss, at, window(end)),
	}
}

// PartitionNetwork returns a plan splitting the network into `groups`
// isolated random sets during [at, end).
func PartitionNetwork(groups int, at, end Timing) *Plan {
	return &Plan{
		Events: []Event{{Kind: Partition, Groups: groups, At: at, End: end}},
		Spec:   fmt.Sprintf("part:%d@%s%s", groups, at, window(end)),
	}
}

// LossSpike returns a plan adding extra drop probability `loss` to every
// link during [at, end) — a δ(t) burst.
func LossSpike(loss float64, at, end Timing) *Plan {
	return &Plan{
		Events: []Event{{Kind: LossBurst, Loss: loss, At: at, End: end}},
		Spec:   fmt.Sprintf("loss:%g@%s%s", loss, at, window(end)),
	}
}

func window(end Timing) string {
	if end.isZero() {
		return ""
	}
	return ".." + end.String()
}
