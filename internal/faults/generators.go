// Generators for common fault scenarios. Each returns a Plan; combine
// with Merge. All randomness is deferred to Bind, so generators are
// pure. No generator records a Spec: the plan's string form is the
// canonical rendering of its events (stringify.go), which round-trips
// through Parse bit-identically — the handwritten spec labels this file
// used to synthesise could drift from the grammar (a whole-population
// "crash:1" read back as a one-node count).

package faults

// PoissonChurn returns a churn plan: over the whole run, an expected
// rate·n crash events arrive as a Poisson process (uniform in time),
// each killing a uniformly random node; with down > 0 every churned
// node rejoins down rounds later. Requires a horizon at Bind.
func PoissonChurn(rate float64, down int) *Plan {
	return &Plan{Events: []Event{{Kind: ChurnKind, Rate: rate, Down: down}}}
}

// CrashFraction returns a plan that crashes a hashed ⌈frac·n⌉-node
// subset at the given time (correlated mass failure, e.g. a datacenter
// outage). A zero end leaves them down for the rest of the run.
func CrashFraction(frac float64, at, end Timing) *Plan {
	return &Plan{Events: []Event{{Kind: Crash, Frac: frac, At: at, End: end}}}
}

// RackFailure returns a correlated-failure plan: a contiguous block of
// ⌈frac·n⌉ node ids (one "rack" under adjacent placement) crashes at
// `at` and — if end is nonzero — rejoins at `end`.
func RackFailure(frac float64, at, end Timing) *Plan {
	return &Plan{Events: []Event{{Kind: Crash, Frac: frac, Contiguous: true, At: at, End: end}}}
}

// FlakyRegion returns a plan where every link touching a hashed
// ⌈frac·n⌉-node region suffers extra loss during [at, end).
func FlakyRegion(frac, loss float64, at, end Timing) *Plan {
	return &Plan{Events: []Event{{Kind: Flaky, Frac: frac, Loss: loss, At: at, End: end}}}
}

// PartitionNetwork returns a plan splitting the network into `groups`
// isolated random sets during [at, end).
func PartitionNetwork(groups int, at, end Timing) *Plan {
	return &Plan{Events: []Event{{Kind: Partition, Groups: groups, At: at, End: end}}}
}

// LossSpike returns a plan adding extra drop probability `loss` to every
// link during [at, end) — a δ(t) burst.
func LossSpike(loss float64, at, end Timing) *Plan {
	return &Plan{Events: []Event{{Kind: LossBurst, Loss: loss, At: at, End: end}}}
}
