package faults

import (
	"errors"
	"testing"

	"drrgossip/internal/sim"
)

func TestParseRoundTrip(t *testing.T) {
	cases := []struct {
		spec   string
		events int
		kinds  []Kind
	}{
		{"crash:0.2@0.5", 1, []Kind{Crash}},
		{"crash:5@100r", 1, []Kind{Crash}},
		{"rack:0.1@0.25..0.75", 1, []Kind{Crash}},
		{"rejoin@0.8", 1, []Kind{Rejoin}},
		{"rejoin:0.5@0.8", 1, []Kind{Rejoin}},
		{"churn:0.3", 1, []Kind{ChurnKind}},
		{"churn:0.3:40", 1, []Kind{ChurnKind}},
		{"loss:0.25@0.2..0.6", 1, []Kind{LossBurst}},
		{"part:2@0.25..0.75", 1, []Kind{Partition}},
		{"flaky:0.2:0.5@0.1..0.9", 1, []Kind{Flaky}},
		{"link:3-9@10..200", 1, []Kind{LinkDown}},
		{"crash:0.2@0.5;rejoin@0.8", 2, []Kind{Crash, Rejoin}},
		{"part:2@0.25..0.5 ; loss:0.2@0.5..0.9", 2, []Kind{Partition, LossBurst}},
	}
	for _, c := range cases {
		p, err := Parse(c.spec)
		if err != nil {
			t.Fatalf("Parse(%q): %v", c.spec, err)
		}
		if len(p.Events) != c.events {
			t.Fatalf("Parse(%q): %d events, want %d", c.spec, len(p.Events), c.events)
		}
		for i, k := range c.kinds {
			if p.Events[i].Kind != k {
				t.Fatalf("Parse(%q): event %d kind %v, want %v", c.spec, i, p.Events[i].Kind, k)
			}
		}
		if p.String() != c.spec {
			t.Fatalf("String() = %q, want the original spec %q", p.String(), c.spec)
		}
	}
}

func TestParseEmptyAndErrors(t *testing.T) {
	for _, empty := range []string{"", "  ", "none", "NONE"} {
		p, err := Parse(empty)
		if err != nil || !p.Empty() {
			t.Fatalf("Parse(%q) = (%v, %v), want empty plan", empty, p, err)
		}
	}
	bad := []string{
		"meteor:0.5",          // unknown kind
		"crash",               // missing amount
		"crash:0.2@1.5",       // fraction above 1
		"crash:0.2@-3",        // negative round
		"crash:2.5",           // non-integer count
		"churn:0.3@0.5",       // churn cannot be windowed
		"churn:x",             // bad rate
		"link:5",              // missing endpoint
		"link:a-b@1..2",       // non-numeric endpoints
		"flaky:0.2@0.1..0.9",  // missing loss arg
		"loss:0.2@0.6..0.0",   // zero window end
		";;",                  // no events at all
		"part:two@0.25..0.75", // bad group count
	}
	for _, spec := range bad {
		if _, err := Parse(spec); !errors.Is(err, ErrBadPlan) {
			t.Fatalf("Parse(%q) error = %v, want ErrBadPlan", spec, err)
		}
	}
}

func TestValidateRejects(t *testing.T) {
	n := 16
	bad := []Plan{
		{Events: []Event{{Kind: Crash}}},                           // no set
		{Events: []Event{{Kind: Crash, Nodes: []int{n}}}},          // out of range
		{Events: []Event{{Kind: Crash, Frac: 1.5}}},                // frac > 1
		{Events: []Event{{Kind: LossBurst, Loss: 0}}},              // zero loss
		{Events: []Event{{Kind: LossBurst, Loss: 1}}},              // total loss
		{Events: []Event{{Kind: Partition, Groups: 1}}},            // one group
		{Events: []Event{{Kind: LinkDown, A: 3, B: 3}}},            // self link
		{Events: []Event{{Kind: ChurnKind, Rate: 0}}},              // zero rate
		{Events: []Event{{Kind: ChurnKind, Rate: 0.5, Down: -1}}},  // negative down
		{Events: []Event{{Kind: Flaky, Loss: 0.5}}},                // no region
		{Events: []Event{{Kind: Crash, Frac: 0.5, At: AtFrac(2)}}}, // time out of range
		{Events: []Event{{Kind: Crash, Frac: 0.5, At: At(-1)}}},    // negative round
		{Events: []Event{{Kind: Kind(250), Frac: 0.5}}},            // unknown kind
	}
	for i := range bad {
		if err := bad[i].Validate(n); !errors.Is(err, ErrBadPlan) {
			t.Fatalf("case %d: Validate = %v, want ErrBadPlan", i, err)
		}
	}
}

func TestBindRequiresHorizonForFractions(t *testing.T) {
	p, err := Parse("crash:0.2@0.5")
	if err != nil {
		t.Fatal(err)
	}
	if !p.NeedsHorizon() {
		t.Fatal("fractional plan should need a horizon")
	}
	if _, err := p.Bind(64, 1, 0); !errors.Is(err, ErrBadPlan) {
		t.Fatalf("Bind without horizon: %v, want ErrBadPlan", err)
	}
	if _, err := p.Bind(64, 1, 200); err != nil {
		t.Fatalf("Bind with horizon: %v", err)
	}
	abs, err := Parse("crash:0.2@100r")
	if err != nil {
		t.Fatal(err)
	}
	if abs.NeedsHorizon() {
		t.Fatal("absolute-round plan should not need a horizon")
	}
	if _, err := abs.Bind(64, 1, 0); err != nil {
		t.Fatalf("absolute Bind: %v", err)
	}
	inverted := Plan{Events: []Event{{Kind: LossBurst, Loss: 0.5, At: At(100), End: At(50)}}}
	if _, err := inverted.Bind(64, 1, 0); !errors.Is(err, ErrBadPlan) {
		t.Fatalf("inverted window: %v, want ErrBadPlan", err)
	}
}

func TestCrashAndRejoinDriveEngine(t *testing.T) {
	n := 32
	p, err := Parse("crash:0.25@10r;rejoin@20r")
	if err != nil {
		t.Fatal(err)
	}
	b, err := p.Bind(n, 7, 0)
	if err != nil {
		t.Fatal(err)
	}
	eng := sim.NewEngine(n, sim.Options{Seed: 7})
	b.Attach(eng)
	for eng.Round() < 9 {
		eng.Tick()
	}
	if eng.NumAlive() != n {
		t.Fatalf("round 9: %d alive, want %d", eng.NumAlive(), n)
	}
	eng.Tick() // round 10: crash fires
	if eng.NumAlive() != n-8 {
		t.Fatalf("round 10: %d alive, want %d", eng.NumAlive(), n-8)
	}
	if b.Crashed() != 8 {
		t.Fatalf("Crashed() = %d, want 8", b.Crashed())
	}
	for eng.Round() < 20 {
		eng.Tick()
	}
	if eng.NumAlive() != n || b.Revived() != 8 {
		t.Fatalf("round 20: %d alive (revived %d), want all back", eng.NumAlive(), b.Revived())
	}
	if b.Fired() == 0 {
		t.Fatal("no actions fired")
	}
}

// rejoin:F must revive F of the nodes actually dead at fire time (a
// fraction of the dead population, or an absolute count) — not an
// independent random subset that mostly misses the crashed set.
func TestRejoinFractionRevivesDeadNodes(t *testing.T) {
	n := 100
	run := func(spec string, seed uint64) (*Bound, *sim.Engine) {
		t.Helper()
		p, err := Parse(spec)
		if err != nil {
			t.Fatal(err)
		}
		b, err := p.Bind(n, seed, 0)
		if err != nil {
			t.Fatal(err)
		}
		eng := sim.NewEngine(n, sim.Options{Seed: seed})
		b.Attach(eng)
		for eng.Round() < 10 {
			eng.Tick()
		}
		return b, eng
	}
	// A bare rejoin brings every dead node back.
	b, eng := run("crash:0.25@5r;rejoin@10r", 13)
	if eng.NumAlive() != 100 || b.Revived() != 25 {
		t.Fatalf("bare rejoin: alive %d (revived %d), want 100 (25)", eng.NumAlive(), b.Revived())
	}
	// A fractional rejoin revives that share of the dead: 25 dead,
	// rejoin:0.2 → ceil(0.2·25) = 5 revived.
	b, eng = run("crash:0.25@5r;rejoin:0.2@10r", 13)
	if eng.NumAlive() != 80 || b.Revived() != 5 {
		t.Fatalf("rejoin:0.2: alive %d (revived %d), want 80 (5)", eng.NumAlive(), b.Revived())
	}
	// A count rejoin revives exactly that many dead nodes.
	_, eng = run("crash:0.5@5r;rejoin:10@10r", 14)
	if eng.NumAlive() != 60 {
		t.Fatalf("rejoin:10: alive %d, want 60 (50 crashed, 10 revived)", eng.NumAlive())
	}
}

// Overlapping crash windows hold a node down until every window has
// expired: the end of a churn downtime must not resurrect a node that a
// permanent crash event still covers.
func TestOverlappingCrashHoldsRefcounted(t *testing.T) {
	n := 10
	p := &Plan{Events: []Event{
		{Kind: Crash, Nodes: []int{3}, At: At(2)},             // permanent hold
		{Kind: Crash, Nodes: []int{3}, At: At(4), End: At(6)}, // windowed hold
		{Kind: Crash, Nodes: []int{7}, At: At(4), End: At(6)}, // windowed only
		{Kind: Rejoin, Nodes: []int{3}, At: At(8)},            // explicit rejoin clears holds
	}}
	b, err := p.Bind(n, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	eng := sim.NewEngine(n, sim.Options{Seed: 1})
	b.Attach(eng)
	for eng.Round() < 6 {
		eng.Tick()
	}
	// Round 6: both windows ended. Node 7 is back; node 3 is still held
	// by the permanent crash.
	if !eng.Alive(7) {
		t.Fatal("windowed-only node not revived at window end")
	}
	if eng.Alive(3) {
		t.Fatal("window end resurrected a node a permanent crash still covers")
	}
	for eng.Round() < 8 {
		eng.Tick()
	}
	if !eng.Alive(3) {
		t.Fatal("explicit rejoin did not clear the permanent hold")
	}
}

// Generator specs with integral fractional timings must survive a
// String -> Parse round trip as fractions, not absolute rounds.
func TestTimingStringRoundTrip(t *testing.T) {
	g := CrashFraction(0.2, AtFrac(1), Timing{})
	p, err := Parse(g.String())
	if err != nil {
		t.Fatalf("generated spec %q does not parse: %v", g.String(), err)
	}
	if got := p.Events[0].At; got.Frac != 1 || got.Round != 0 {
		t.Fatalf("spec %q re-parsed to timing %+v, want fraction 1", g.String(), got)
	}
	for _, tm := range []Timing{AtFrac(0.5), AtFrac(1), AtFrac(0.125), At(7), At(120)} {
		back, err := parseTiming(tm.String())
		if err != nil {
			t.Fatalf("%v: %v", tm, err)
		}
		if back != tm {
			t.Fatalf("timing %+v round-tripped to %+v via %q", tm, back, tm.String())
		}
	}
}

func TestBindDeterminism(t *testing.T) {
	p, err := Parse("churn:0.4:15;part:2@0.2..0.6;flaky:0.3:0.4@0.1..0.9")
	if err != nil {
		t.Fatal(err)
	}
	run := func() (alive int, msgs, drops int64) {
		n := 64
		b, err := p.Bind(n, 42, 300)
		if err != nil {
			t.Fatal(err)
		}
		eng := sim.NewEngine(n, sim.Options{Seed: 42, Loss: 0.05})
		b.Attach(eng)
		for r := 0; r < 300; r++ {
			for i := 0; i < n; i++ {
				if eng.Alive(i) {
					eng.Send(i, (i+1)%n, sim.Payload{})
				}
			}
			eng.Tick()
		}
		st := eng.Stats()
		return eng.NumAlive(), st.Messages, st.Drops
	}
	a1, m1, d1 := run()
	a2, m2, d2 := run()
	if a1 != a2 || m1 != m2 || d1 != d2 {
		t.Fatalf("bound runs differ: (%d,%d,%d) vs (%d,%d,%d)", a1, m1, d1, a2, m2, d2)
	}
	if d1 == 0 {
		t.Fatal("flaky+loss run recorded no drops")
	}
}

func TestPartitionSeversAndHeals(t *testing.T) {
	n := 16
	p := PartitionNetwork(2, At(5), At(10))
	b, err := p.Bind(n, 3, 0)
	if err != nil {
		t.Fatal(err)
	}
	eng := sim.NewEngine(n, sim.Options{Seed: 3})
	b.Attach(eng)
	// Find two nodes in different groups by probing the fault predicate
	// once the partition is active.
	for eng.Round() < 5 {
		eng.Tick()
	}
	blockedPair := -1
	base := eng.Stats().Blocked
	for j := 1; j < n; j++ {
		eng.Send(0, j, sim.Payload{})
		if eng.Stats().Blocked > base {
			blockedPair = j
			break
		}
		base = eng.Stats().Blocked
	}
	if blockedPair < 0 {
		t.Fatal("partition blocked no link from node 0")
	}
	for eng.Round() < 10 {
		eng.Tick()
	}
	before := eng.Stats().Blocked
	eng.Send(0, blockedPair, sim.Payload{})
	if eng.Stats().Blocked != before {
		t.Fatal("healed partition still blocks")
	}
}

func TestLinkDownBlocksBothDirections(t *testing.T) {
	n := 8
	p, err := Parse("link:2-5@1r..100r")
	if err != nil {
		t.Fatal(err)
	}
	b, err := p.Bind(n, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	eng := sim.NewEngine(n, sim.Options{Seed: 1})
	b.Attach(eng)
	eng.Tick()
	eng.Send(2, 5, sim.Payload{})
	eng.Send(5, 2, sim.Payload{})
	eng.Send(2, 3, sim.Payload{})
	if got := eng.Stats().Blocked; got != 2 {
		t.Fatalf("Blocked = %d, want 2 (both directions of 2-5)", got)
	}
	eng.Tick()
	if len(eng.Inbox(3)) != 1 || len(eng.Inbox(5)) != 0 {
		t.Fatal("healthy link blocked or severed link delivered")
	}
}

func TestLossBurstRaisesEffectiveLoss(t *testing.T) {
	n := 4
	p := LossSpike(0.5, At(1), At(1001))
	b, err := p.Bind(n, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	eng := sim.NewEngine(n, sim.Options{Seed: 1})
	b.Attach(eng)
	eng.Tick()
	for k := 0; k < 2000; k++ {
		eng.Send(0, 1, sim.Payload{})
	}
	frac := float64(eng.Stats().Drops) / 2000
	if frac < 0.4 || frac > 0.6 {
		t.Fatalf("burst drop rate %.3f, want ≈ 0.5", frac)
	}
}

func TestChurnExpansion(t *testing.T) {
	p := PoissonChurn(0.5, 10)
	n, horizon := 100, 400
	b, err := p.Bind(n, 9, horizon)
	if err != nil {
		t.Fatal(err)
	}
	rounds := b.Rounds()
	if len(rounds) == 0 {
		t.Fatal("churn expanded to nothing")
	}
	eng := sim.NewEngine(n, sim.Options{Seed: 9})
	b.Attach(eng)
	minAlive := n
	for r := 0; r < horizon; r++ {
		eng.Tick()
		if a := eng.NumAlive(); a < minAlive {
			minAlive = a
		}
	}
	// Expected 50 crash events with 10-round downtimes: membership must
	// actually dip, and with rejoins it must recover most of the way.
	if b.Crashed() < 20 || b.Crashed() > 100 {
		t.Fatalf("churn crashes = %d, want around 50", b.Crashed())
	}
	if minAlive == n {
		t.Fatal("churn never removed a node")
	}
	if eng.NumAlive() < n-15 {
		t.Fatalf("final alive %d: downtime rejoins not applied", eng.NumAlive())
	}
}

func TestFromCrashFracMatchesEngine(t *testing.T) {
	n := 256
	opts := sim.Options{Seed: 11, CrashFrac: 0.3}
	want := sim.NewEngine(n, opts)
	p := FromCrashFrac(n, opts)
	b, err := p.Bind(n, 11, 0)
	if err != nil {
		t.Fatal(err)
	}
	got := sim.NewEngine(n, sim.Options{Seed: 11})
	b.Attach(got)
	for i := 0; i < n; i++ {
		if want.Alive(i) != got.Alive(i) {
			t.Fatalf("node %d: CrashFrac alive=%v, plan alive=%v", i, want.Alive(i), got.Alive(i))
		}
	}
	if want.NumAlive() != got.NumAlive() {
		t.Fatalf("alive: %d vs %d", want.NumAlive(), got.NumAlive())
	}
	if empty := FromCrashFrac(n, sim.Options{Seed: 11}); !empty.Empty() {
		t.Fatal("zero CrashFrac should give the empty plan")
	}
}

func TestMergeAndGenerators(t *testing.T) {
	m := Merge(PoissonChurn(0.2, 0), RackFailure(0.1, AtFrac(0.5), AtFrac(0.8)),
		FlakyRegion(0.2, 0.3, AtFrac(0.1), AtFrac(0.9)), CrashFraction(0.1, AtFrac(0.3), Timing{}),
		&Plan{}, nil)
	if len(m.Events) != 4 {
		t.Fatalf("merged %d events, want 4", len(m.Events))
	}
	if err := m.Validate(64); err != nil {
		t.Fatal(err)
	}
	if !m.NeedsHorizon() {
		t.Fatal("merged plan should need a horizon")
	}
	if m.String() == "" || m.String() == "none" {
		t.Fatalf("merged String = %q", m.String())
	}
	// Spec strings produced by generators must parse back.
	for _, g := range []*Plan{
		PoissonChurn(0.2, 5), RackFailure(0.25, AtFrac(0.5), Timing{}),
		FlakyRegion(0.2, 0.3, AtFrac(0.1), AtFrac(0.9)),
		PartitionNetwork(3, AtFrac(0.2), AtFrac(0.6)),
		LossSpike(0.4, At(10), At(50)), CrashFraction(0.5, AtFrac(0.5), Timing{}),
	} {
		if _, err := Parse(g.String()); err != nil {
			t.Fatalf("generator spec %q does not re-parse: %v", g.String(), err)
		}
	}
}

func TestContiguousSelection(t *testing.T) {
	ev := Event{Kind: Crash, Frac: 0.25, Contiguous: true}
	nodes := ev.selectNodes(100, 5, 0)
	if len(nodes) != 25 {
		t.Fatalf("selected %d nodes, want 25", len(nodes))
	}
	// Contiguity modulo n: sorted ids form at most two runs.
	runs := 1
	for i := 1; i < len(nodes); i++ {
		if nodes[i] != nodes[i-1]+1 {
			runs++
		}
	}
	if runs > 2 {
		t.Fatalf("contiguous selection has %d runs: %v", runs, nodes)
	}
	hashed := Event{Kind: Crash, Frac: 0.25}
	h := hashed.selectNodes(100, 5, 0)
	if len(h) != 25 {
		t.Fatalf("hashed selected %d", len(h))
	}
	again := hashed.selectNodes(100, 5, 0)
	for i := range h {
		if h[i] != again[i] {
			t.Fatal("selection not deterministic")
		}
	}
}

func TestTimingResolve(t *testing.T) {
	if r := AtFrac(0.5).resolve(801); r != 401 && r != 400 {
		t.Fatalf("0.5 of 801 = %d", r)
	}
	if r := At(77).resolve(10); r != 77 {
		t.Fatalf("absolute round resolved to %d", r)
	}
	if !(Timing{}).isZero() || (AtFrac(0.5)).isZero() || (At(3)).isZero() {
		t.Fatal("isZero misclassifies timings")
	}
}
