package faults

import (
	"testing"

	"drrgossip/internal/sim"
)

// A Bound can drive a sequence of engines: each Attach resets the
// runtime state and replays the identical schedule, so the session
// facade can bind a plan once and reuse it across protocol runs.
func TestBoundReattachReplaysSchedule(t *testing.T) {
	const n = 64
	p, err := Parse("crash:0.25@4r..12r;loss:0.3@2r..20r")
	if err != nil {
		t.Fatal(err)
	}
	b, err := p.Bind(n, 7, 0)
	if err != nil {
		t.Fatal(err)
	}

	type snapshot struct {
		fired, crashed, revived int
		aliveMid, aliveEnd      int
		drops                   int64
	}
	run := func() snapshot {
		eng := sim.NewEngine(n, sim.Options{Seed: 7})
		b.Attach(eng)
		var s snapshot
		for r := 1; r <= 24; r++ {
			// Traffic through the loss-burst window so drops accrue.
			for i := 0; i < n; i++ {
				eng.Send(i, (i+1)%n, sim.Payload{})
			}
			eng.Tick()
			if r == 8 {
				s.aliveMid = eng.NumAlive()
			}
		}
		s.fired, s.crashed, s.revived = b.Fired(), b.Crashed(), b.Revived()
		s.aliveEnd = eng.NumAlive()
		s.drops = eng.Stats().Drops
		return s
	}

	first := run()
	if first.crashed == 0 || first.revived == 0 || first.aliveMid >= n || first.aliveEnd != n {
		t.Fatalf("plan did not exercise crash+rejoin: %+v", first)
	}
	second := run()
	if first != second {
		t.Fatalf("re-attached Bound diverged:\n first  %+v\n second %+v", first, second)
	}
}
