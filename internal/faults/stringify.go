// Canonical stringification: every Event renders in the exact textual
// grammar of parse.go, so a plan built programmatically — by a
// generator, the chaos fuzzer, or the shrinker (shrink.go) — round-trips
// through Parse bit-identically (pinned by the property tests in
// stringify_test.go). Plans that were parsed from a spec keep their
// verbatim text in Plan.String, so display output never reformats what
// the user typed; Plan.Canonical always re-renders from the events.

package faults

import (
	"fmt"
	"strconv"
	"strings"
)

// String renders the event in the Parse grammar. The rendering is
// canonical: Parse(ev.String()) reproduces the event field for field,
// with one documented priority when several amount fields are set —
// Nodes over Count over Frac, mirroring nodeCount — since the grammar
// encodes exactly one amount per event.
func (ev Event) String() string {
	var b strings.Builder
	switch ev.Kind {
	case Crash:
		if ev.Contiguous {
			b.WriteString("rack:")
		} else {
			b.WriteString("crash:")
		}
		b.WriteString(ev.amountString())
		ev.writeWindow(&b)
	case Rejoin:
		b.WriteString("rejoin")
		if s := ev.amountString(); s != "" {
			b.WriteByte(':')
			b.WriteString(s)
		}
		ev.writeWindow(&b)
	case LossBurst:
		fmt.Fprintf(&b, "loss:%g", ev.Loss)
		ev.writeWindow(&b)
	case Partition:
		fmt.Fprintf(&b, "part:%d", ev.Groups)
		ev.writeWindow(&b)
	case LinkDown:
		fmt.Fprintf(&b, "link:%d-%d", ev.A, ev.B)
		ev.writeWindow(&b)
	case Flaky:
		fmt.Fprintf(&b, "flaky:%s:%g", ev.amountString(), ev.Loss)
		ev.writeWindow(&b)
	case ChurnKind:
		fmt.Fprintf(&b, "churn:%g", ev.Rate)
		if ev.Down > 0 {
			fmt.Fprintf(&b, ":%d", ev.Down)
		}
		// Churn spans the whole run; the grammar forbids an @-window.
	default:
		b.WriteString(ev.Kind.String())
	}
	return b.String()
}

// amountString renders the event's node amount: an explicit "#"-list,
// an integer count, or a fraction (with a '.' marker so it re-parses as
// a fraction even when it is 1.0). Empty when no amount is set (the
// rejoin-everyone form).
func (ev Event) amountString() string {
	switch {
	case len(ev.Nodes) > 0:
		parts := make([]string, len(ev.Nodes))
		for i, id := range ev.Nodes {
			parts[i] = strconv.Itoa(id)
		}
		return "#" + strings.Join(parts, ",")
	case ev.Count > 0:
		return strconv.Itoa(ev.Count)
	case ev.Frac > 0:
		s := fmt.Sprintf("%g", ev.Frac)
		if !strings.ContainsAny(s, ".e") {
			s += ".0" // keep the fraction marker (Frac == 1)
		}
		return s
	default:
		return ""
	}
}

// writeWindow appends the event's "@at[..end]" time window. The start is
// always written — "@0r" round-trips the zero Timing exactly — and the
// end only when one is set (a zero End means "until the run ends" and
// the grammar expresses that by omission).
func (ev Event) writeWindow(b *strings.Builder) {
	b.WriteByte('@')
	b.WriteString(ev.At.String())
	if !ev.End.isZero() {
		b.WriteString("..")
		b.WriteString(ev.End.String())
	}
}

// Canonical renders the plan's events in the exact Parse grammar,
// ignoring any recorded Spec: Parse(p.Canonical()) reproduces p.Events
// field for field. Shrunk or mutated plans use it to emit
// copy-pasteable reproducer specs; "none" is the empty plan.
func (p *Plan) Canonical() string {
	if p.Empty() {
		return "none"
	}
	parts := make([]string, len(p.Events))
	for i, ev := range p.Events {
		parts[i] = ev.String()
	}
	return strings.Join(parts, ";")
}
