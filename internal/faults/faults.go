// Package faults is the fault-injection and dynamic-membership subsystem:
// it turns the paper's static failure model (crash-before-start, uniform
// link loss) into a testbed for time-varying networks. A Plan is a
// deterministic, seed-reproducible timeline of fault events — mid-run
// crashes and rejoins, network partitions with later heals, loss-rate
// bursts δ(t), per-link blackouts — plus generators for common scenarios
// (Poisson churn, correlated rack failure, flaky regions).
//
// A Plan is symbolic: event times may be absolute rounds or fractions of
// a run horizon, and node sets may be given as fractions of n. Bind
// resolves a plan against a concrete network size, seed and horizon,
// producing a Bound schedule that attaches to a sim.Engine via the
// engine's dynamic-membership hooks (Crash/Revive, SetLinkFault,
// SetRoundHook). Binding and execution are fully deterministic: the same
// (plan, n, seed, horizon) always crashes the same nodes at the same
// rounds, so faulty runs are exactly as reproducible as healthy ones.
//
// The paper's CrashFrac model is the degenerate plan that crashes
// sim.InitialCrashSet at round 0; see FromCrashFrac. With an empty plan
// nothing attaches and the engine is bit-for-bit the static engine.
package faults

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"strings"

	"drrgossip/internal/sim"
	"drrgossip/internal/xrand"
)

// Kind enumerates fault event kinds.
type Kind uint8

const (
	// Crash kills a node set at At (permanently, unless a later Rejoin
	// revives it).
	Crash Kind = iota
	// Rejoin revives nodes at At. An explicit Nodes list revives exactly
	// those; Frac revives that fraction of the nodes actually dead at
	// that moment and Count that many of them (in a seed-derived
	// preference order); with neither, every dead node rejoins. An
	// explicit rejoin clears any crash holds still covering the node.
	Rejoin
	// LossBurst adds extra drop probability Loss to every link during
	// [At, End).
	LossBurst
	// Partition splits the nodes into Groups isolated sets during
	// [At, End); links inside a set are unaffected.
	Partition
	// LinkDown severs the single link A-B (both directions) during
	// [At, End).
	LinkDown
	// Flaky adds extra drop probability Loss to every link touching the
	// node set during [At, End) — a flaky region or rack uplink.
	Flaky
	// ChurnKind is a symbolic Poisson churn process, expanded at Bind
	// time into individual Crash/Rejoin events across the whole horizon.
	ChurnKind
)

var kindNames = map[Kind]string{
	Crash: "crash", Rejoin: "rejoin", LossBurst: "loss",
	Partition: "part", LinkDown: "link", Flaky: "flaky", ChurnKind: "churn",
}

func (k Kind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

// Timing locates an event in time: an absolute round (Round >= 1), or a
// fraction of the run horizon (Frac in (0, 1], used when Round == 0).
// The zero Timing means round 0 — "before the first round" — when used
// as a start, and "never" when used as a window end.
type Timing struct {
	Round int
	Frac  float64
}

// At builds an absolute-round timing.
func At(round int) Timing { return Timing{Round: round} }

// AtFrac builds a horizon-fraction timing.
func AtFrac(f float64) Timing { return Timing{Frac: f} }

// isZero reports the zero timing (round 0 / open end).
func (t Timing) isZero() bool { return t.Round == 0 && t.Frac == 0 }

// needsHorizon reports whether resolving t requires a run horizon.
func (t Timing) needsHorizon() bool { return t.Round == 0 && t.Frac > 0 }

// resolve maps t to an absolute round given the horizon.
func (t Timing) resolve(horizon int) int {
	if t.Round > 0 || t.Frac == 0 {
		return t.Round
	}
	r := int(math.Round(t.Frac * float64(horizon)))
	if r < 0 {
		r = 0
	}
	return r
}

func (t Timing) String() string {
	if t.Round > 0 || t.Frac == 0 {
		return fmt.Sprintf("%dr", t.Round)
	}
	s := fmt.Sprintf("%g", t.Frac)
	if !strings.ContainsAny(s, ".e") {
		s += ".0" // keep the fraction marker so the spec re-parses as a fraction
	}
	return s
}

// Event is one symbolic entry of a fault plan. Which fields matter
// depends on Kind; Bind validates the combination.
type Event struct {
	Kind Kind
	// At is when the event takes effect; End closes the window of
	// windowed kinds (LossBurst, Partition, LinkDown, Flaky) and, for a
	// Crash, schedules an automatic rejoin of the same set. A zero End
	// leaves the fault active to the end of the run.
	At, End Timing
	// Nodes lists the affected nodes explicitly. When empty, Count (if
	// > 0) or ceil(Frac·n) nodes are selected deterministically from the
	// bind seed — a hashed subset by default, a contiguous block when
	// Contiguous is set (rack semantics).
	Nodes      []int
	Frac       float64
	Count      int
	Contiguous bool
	// Groups is the partition group count (Partition only; >= 2).
	Groups int
	// Loss is the extra per-link drop probability (LossBurst, Flaky).
	Loss float64
	// A, B are the endpoints of a LinkDown.
	A, B int
	// Rate is the ChurnKind intensity: the expected number of crash
	// events over the whole run, as a fraction of n (0.5 means n/2
	// crashes spread Poisson-uniformly over the horizon).
	Rate float64
	// Down is how many rounds a churned node stays down before it
	// rejoins (ChurnKind; 0 means it never rejoins).
	Down int
}

// Plan is a symbolic fault timeline. The zero value (and nil) is the
// empty plan: no faults, nothing attaches.
type Plan struct {
	Events []Event
	// Spec preserves the textual form the plan was parsed from, for
	// display; generators synthesise one.
	Spec string
}

// Empty reports whether the plan has no events.
func (p *Plan) Empty() bool { return p == nil || len(p.Events) == 0 }

// NeedsHorizon reports whether any event is placed by horizon fraction
// (or is a churn process), so Bind requires a positive horizon.
func (p *Plan) NeedsHorizon() bool {
	if p == nil {
		return false
	}
	for _, ev := range p.Events {
		if ev.Kind == ChurnKind || ev.At.needsHorizon() || ev.End.needsHorizon() {
			return true
		}
	}
	return false
}

// String renders the plan's spec form: the verbatim text it was parsed
// from when one is recorded, otherwise the canonical rendering of its
// events in the Parse grammar (see Canonical). Either way the result
// re-parses to the same events.
func (p *Plan) String() string {
	if p.Empty() {
		return "none"
	}
	if p.Spec != "" {
		return p.Spec
	}
	return p.Canonical()
}

// Merge concatenates plans into one.
func Merge(plans ...*Plan) *Plan {
	out := &Plan{}
	var specs []string
	for _, p := range plans {
		if p.Empty() {
			continue
		}
		out.Events = append(out.Events, p.Events...)
		specs = append(specs, p.String())
	}
	out.Spec = strings.Join(specs, ";")
	return out
}

// ErrBadPlan reports an invalid plan or binding.
var ErrBadPlan = errors.New("faults: invalid plan")

// Validate checks the plan's events against a network of n nodes.
func (p *Plan) Validate(n int) error {
	if p == nil {
		return nil
	}
	for i, ev := range p.Events {
		if err := ev.validate(n); err != nil {
			return fmt.Errorf("%w: event %d (%s): %v", ErrBadPlan, i, ev.Kind, err)
		}
	}
	return nil
}

func (ev Event) validate(n int) error {
	if ev.At.Round < 0 || ev.At.Frac < 0 || ev.At.Frac > 1 ||
		ev.End.Round < 0 || ev.End.Frac < 0 || ev.End.Frac > 1 {
		return fmt.Errorf("timing out of range (rounds >= 0, fractions in [0,1])")
	}
	for _, id := range ev.Nodes {
		if id < 0 || id >= n {
			return fmt.Errorf("node %d out of range [0,%d)", id, n)
		}
	}
	if ev.Frac < 0 || ev.Frac > 1 {
		return fmt.Errorf("node fraction %g out of [0,1]", ev.Frac)
	}
	if ev.Count < 0 || ev.Count > n {
		return fmt.Errorf("node count %d out of [0,%d]", ev.Count, n)
	}
	switch ev.Kind {
	case Crash:
		if len(ev.Nodes) == 0 && ev.Frac == 0 && ev.Count == 0 {
			return fmt.Errorf("crash needs a node set")
		}
	case Rejoin:
		// An empty set means "revive everyone dead".
	case LossBurst:
		if ev.Loss <= 0 || ev.Loss >= 1 {
			return fmt.Errorf("burst loss %g out of (0,1)", ev.Loss)
		}
	case Partition:
		if ev.Groups < 2 || ev.Groups > n {
			return fmt.Errorf("partition needs 2..n groups, got %d", ev.Groups)
		}
	case LinkDown:
		if ev.A < 0 || ev.A >= n || ev.B < 0 || ev.B >= n || ev.A == ev.B {
			return fmt.Errorf("link %d-%d invalid for n=%d", ev.A, ev.B, n)
		}
	case Flaky:
		if ev.Loss <= 0 || ev.Loss > 1 {
			return fmt.Errorf("flaky loss %g out of (0,1]", ev.Loss)
		}
		if len(ev.Nodes) == 0 && ev.Frac == 0 && ev.Count == 0 {
			return fmt.Errorf("flaky needs a node set")
		}
	case ChurnKind:
		if ev.Rate <= 0 || ev.Rate > 1 {
			return fmt.Errorf("churn rate %g out of (0,1]", ev.Rate)
		}
		if ev.Down < 0 {
			return fmt.Errorf("negative churn downtime")
		}
	default:
		return fmt.Errorf("unknown kind")
	}
	return nil
}

// nodeCount resolves the size of the event's node set.
func (ev Event) nodeCount(n int) int {
	if len(ev.Nodes) > 0 {
		return len(ev.Nodes)
	}
	if ev.Count > 0 {
		return ev.Count
	}
	k := int(math.Ceil(ev.Frac * float64(n)))
	if k > n {
		k = n
	}
	return k
}

// selectNodes materialises the event's node set deterministically from
// the bind seed and the event's index in the plan.
func (ev Event) selectNodes(n int, seed uint64, idx int) []int {
	if len(ev.Nodes) > 0 {
		out := append([]int(nil), ev.Nodes...)
		sort.Ints(out)
		return out
	}
	k := ev.nodeCount(n)
	if k == 0 {
		return nil
	}
	rng := xrand.Derive(seed, 0xFA, uint64(idx))
	if ev.Contiguous {
		start := rng.Intn(n)
		out := make([]int, k)
		for i := range out {
			out[i] = (start + i) % n
		}
		sort.Ints(out)
		return out
	}
	perm := rng.Perm(n)
	out := append([]int(nil), perm[:k]...)
	sort.Ints(out)
	return out
}

// FromCrashFrac returns the plan equivalent to the engine's static
// CrashFrac model: a single round-0 Crash of exactly the nodes
// NewEngine(n, opts) would remove. Golden tests pin that running either
// path yields identical message counts.
func FromCrashFrac(n int, opts sim.Options) *Plan {
	ids := sim.InitialCrashSet(n, opts)
	if len(ids) == 0 {
		return &Plan{}
	}
	// No recorded Spec: the canonical rendering ("crash:#…@0r") is the
	// plan's string form, so it re-parses — the old "crashfrac:%g" label
	// was display-only and broke Parse round-tripping.
	return &Plan{Events: []Event{{Kind: Crash, Nodes: ids}}}
}
