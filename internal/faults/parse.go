// Parse: the textual fault-plan spec grammar used by the CLIs.
//
//	plan  := event (';' event)*
//	event := kind (':' arg)* ('@' time ('..' time)?)
//	time  := absolute round ("120" or "120r") |
//	         fraction of the run horizon ("0.5"; must contain a '.')
//
// Kinds and their arguments (F is a node amount: a fraction when it
// carries a '.' or exponent marker — "0.2", "1.0" — an absolute count
// when it is a bare integer, or an explicit id list "#3,7,9"):
//
//	crash:F[@T[..T2]]   crash F nodes at T; with ..T2 they rejoin at T2
//	rack:F[@T[..T2]]    same, but a contiguous id block (correlated rack)
//	rejoin[:F][@T]      revive dead nodes at T: a fraction F revives that
//	                    share of the currently dead, a count F that many
//	                    of them; omitted F revives every dead node
//	churn:R[:D]         Poisson churn: expected R·n crashes over the whole
//	                    run; each node rejoins after D rounds (D absent =
//	                    never); no @-window — churn spans the run
//	loss:D@T..T2        extra per-link drop probability D during [T,T2)
//	part:G@T..T2        partition into G isolated random groups
//	flaky:F:D@T..T2     extra loss D on links touching an F-node region
//	link:A-B@T..T2      blackout the single link A-B
//
// Omitted start times default to 0.5 (mid-run) — 0.75 for rejoin — and
// an omitted ..T2 leaves the fault active until the run ends. Examples:
//
//	crash:0.2@0.5              kill 20% of nodes halfway through
//	churn:0.3:40               30%·n Poisson crashes, 40-round downtime
//	part:2@0.25..0.75;loss:0.2@0.5..0.9
//	rack:0.1@100r..400r        rack outage between rounds 100 and 400
package faults

import (
	"fmt"
	"math"
	"strconv"
	"strings"
)

// Parse parses a fault-plan spec string. An empty spec (or "none") is
// the empty plan.
func Parse(spec string) (*Plan, error) {
	text := strings.TrimSpace(spec)
	if text == "" || strings.EqualFold(text, "none") {
		return &Plan{}, nil
	}
	plan := &Plan{Spec: text}
	for _, part := range strings.Split(text, ";") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		ev, err := parseEvent(part)
		if err != nil {
			return nil, fmt.Errorf("%w: %q: %v", ErrBadPlan, part, err)
		}
		plan.Events = append(plan.Events, ev)
	}
	if len(plan.Events) == 0 {
		return nil, fmt.Errorf("%w: %q has no events", ErrBadPlan, spec)
	}
	return plan, nil
}

func parseEvent(text string) (Event, error) {
	head, timePart, hasTime := strings.Cut(text, "@")
	fields := strings.Split(head, ":")
	kind := strings.ToLower(strings.TrimSpace(fields[0]))
	args := fields[1:]

	var ev Event
	var err error
	switch kind {
	case "crash", "rack":
		ev.Kind = Crash
		ev.Contiguous = kind == "rack"
		ev.At = AtFrac(0.5)
		if len(args) != 1 {
			return ev, fmt.Errorf("want %s:F", kind)
		}
		if ev.Nodes, ev.Frac, ev.Count, err = parseNodeSet(args[0]); err != nil {
			return ev, err
		}
	case "rejoin":
		ev.Kind = Rejoin
		ev.At = AtFrac(0.75)
		switch len(args) {
		case 0: // revive everyone dead
		case 1:
			if ev.Nodes, ev.Frac, ev.Count, err = parseNodeSet(args[0]); err != nil {
				return ev, err
			}
		default:
			return ev, fmt.Errorf("want rejoin or rejoin:F")
		}
	case "churn":
		ev.Kind = ChurnKind
		if len(args) < 1 || len(args) > 2 {
			return ev, fmt.Errorf("want churn:R or churn:R:D")
		}
		if ev.Rate, err = strconv.ParseFloat(args[0], 64); err != nil {
			return ev, fmt.Errorf("bad churn rate %q", args[0])
		}
		if len(args) == 2 {
			if ev.Down, err = strconv.Atoi(args[1]); err != nil {
				return ev, fmt.Errorf("bad churn downtime %q", args[1])
			}
		}
		if hasTime {
			return ev, fmt.Errorf("churn spans the whole run; no @-window allowed")
		}
	case "loss":
		ev.Kind = LossBurst
		ev.At = AtFrac(0.5)
		if len(args) != 1 {
			return ev, fmt.Errorf("want loss:D")
		}
		if ev.Loss, err = strconv.ParseFloat(args[0], 64); err != nil {
			return ev, fmt.Errorf("bad loss %q", args[0])
		}
	case "part":
		ev.Kind = Partition
		ev.At = AtFrac(0.5)
		if len(args) != 1 {
			return ev, fmt.Errorf("want part:G")
		}
		if ev.Groups, err = strconv.Atoi(args[0]); err != nil {
			return ev, fmt.Errorf("bad group count %q", args[0])
		}
	case "flaky":
		ev.Kind = Flaky
		ev.At = AtFrac(0.5)
		if len(args) != 2 {
			return ev, fmt.Errorf("want flaky:F:D")
		}
		if ev.Nodes, ev.Frac, ev.Count, err = parseNodeSet(args[0]); err != nil {
			return ev, err
		}
		if ev.Loss, err = strconv.ParseFloat(args[1], 64); err != nil {
			return ev, fmt.Errorf("bad flaky loss %q", args[1])
		}
	case "link":
		ev.Kind = LinkDown
		ev.At = AtFrac(0.5)
		if len(args) != 1 {
			return ev, fmt.Errorf("want link:A-B")
		}
		a, b, ok := strings.Cut(args[0], "-")
		if !ok {
			return ev, fmt.Errorf("want link:A-B")
		}
		if ev.A, err = strconv.Atoi(a); err != nil {
			return ev, fmt.Errorf("bad endpoint %q", a)
		}
		if ev.B, err = strconv.Atoi(b); err != nil {
			return ev, fmt.Errorf("bad endpoint %q", b)
		}
	default:
		return ev, fmt.Errorf("unknown fault kind %q", kind)
	}

	if hasTime {
		at, end, windowed := strings.Cut(timePart, "..")
		if ev.At, err = parseTiming(at); err != nil {
			return ev, err
		}
		if windowed {
			if ev.End, err = parseTiming(end); err != nil {
				return ev, err
			}
			if ev.End.isZero() {
				return ev, fmt.Errorf("window end must be after the start")
			}
		}
	}
	return ev, nil
}

// parseNodeSet reads a node set argument: an explicit "#"-prefixed
// comma-separated id list, or an amount (see parseAmount).
func parseNodeSet(text string) (nodes []int, frac float64, count int, err error) {
	if !strings.HasPrefix(text, "#") {
		frac, count, err = parseAmount(text)
		return nil, frac, count, err
	}
	for _, field := range strings.Split(text[1:], ",") {
		id, err := strconv.Atoi(strings.TrimSpace(field))
		if err != nil || id < 0 {
			return nil, 0, 0, fmt.Errorf("bad node id %q in %q", field, text)
		}
		nodes = append(nodes, id)
	}
	if len(nodes) == 0 {
		return nil, 0, 0, fmt.Errorf("empty node list %q", text)
	}
	return nodes, 0, 0, nil
}

// parseAmount reads a node amount: a fraction in [0,1] when the text
// carries a '.' or exponent marker (so "1.0" is the whole population,
// not a count of one), otherwise an absolute integer count.
func parseAmount(text string) (frac float64, count int, err error) {
	v, err := strconv.ParseFloat(text, 64)
	if err != nil || v < 0 {
		return 0, 0, fmt.Errorf("bad node amount %q", text)
	}
	if strings.ContainsAny(text, ".eE") {
		if v > 1 {
			return 0, 0, fmt.Errorf("fractional node amount %q must be <= 1", text)
		}
		return v, 0, nil
	}
	if v != math.Trunc(v) {
		return 0, 0, fmt.Errorf("node amount %q must be a fraction <= 1 or an integer count", text)
	}
	return 0, int(v), nil
}

// parseTiming reads a time: "0.5" / "1.0" / "5e-2" (horizon fraction,
// marked by a '.' or an exponent), "120" or "120r" (absolute round).
func parseTiming(text string) (Timing, error) {
	text = strings.TrimSpace(text)
	if strings.ContainsAny(text, ".eE") {
		f, err := strconv.ParseFloat(text, 64)
		if err != nil || f < 0 || f > 1 {
			return Timing{}, fmt.Errorf("bad time fraction %q (want [0,1])", text)
		}
		return AtFrac(f), nil
	}
	r, err := strconv.Atoi(strings.TrimSuffix(text, "r"))
	if err != nil || r < 0 {
		return Timing{}, fmt.Errorf("bad round %q", text)
	}
	return At(r), nil
}
