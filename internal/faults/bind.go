// Binding: resolving a symbolic Plan against (n, seed, horizon) into a
// concrete per-round action schedule, and driving a sim.Engine with it.

package faults

import (
	"fmt"
	"math"
	"sort"

	"drrgossip/internal/sim"
	"drrgossip/internal/xrand"
)

type actionKind uint8

const (
	actCrash actionKind = iota
	actRevive
	actReviveAll
	actReviveSome
	actBurstStart
	actBurstEnd
	actPartStart
	actPartEnd
	actSever
	actRestore
	actFlakyStart
	actFlakyEnd
)

// action is one concrete state change at a known round.
type action struct {
	kind  actionKind
	id    int     // window handle (bursts, partitions, flaky regions)
	nodes []int   // crash/revive sets
	auto  bool    // actRevive: scheduled end of a crash hold (vs. a user Rejoin)
	count int     // actReviveSome: how many dead nodes to revive
	frac  float64 // actReviveSome: fraction of the dead to revive
	order []int   // actReviveSome: node preference order (a permutation)
	loss  float64 // burst/flaky extra loss
	part  []int   // per-node group id (partitions)
	link  [2]int  // severed link
}

// Host is the engine surface a Bound drives: membership control plus
// the two hook points the schedule installs itself on. Both engines
// satisfy it — sim.Engine reads the round hook's argument as its
// synchronous round index, async.Engine as a wall-clock fault tick
// (async.TicksPerUnit ticks per unit of simulated time) — so one plan
// grammar, one Bind and one action schedule serve both execution
// models; only the horizon's unit differs at Bind time.
type Host interface {
	Alive(i int) bool
	Crash(i int)
	Revive(i int)
	SetLinkFault(f sim.LinkFault)
	SetRoundHook(h func(round int))
}

// Bound is a plan resolved against a concrete (n, seed, horizon): a
// deterministic per-round schedule of engine state changes. Attach binds
// it to an engine; re-attaching to a fresh engine resets the runtime
// state and replays the identical schedule, so one binding can drive a
// sequence of runs (the session facade's amortization). A Bound drives
// one engine at a time and is not safe for concurrent engines.
type Bound struct {
	n       int
	actions map[int][]action // the immutable schedule Bind resolved

	eng       Host
	remaining map[int][]action  // this attachment's not-yet-fired rounds
	bursts    map[int]float64   // active loss bursts
	parts     map[int][]int     // active partitions: handle -> group ids
	severed   map[[2]int]int    // severed link -> refcount
	flaky     map[int]flakyArea // active flaky regions
	down      []int             // per-node crash-hold refcount: overlapping
	// crash windows must all expire before an auto-revive brings the
	// node back (a user Rejoin clears every hold instead)
	fired   int
	crashed int
	revived int

	// Order-stable composites derived from the active sets above,
	// recomputed whenever actions change them: map iteration order must
	// not leak into per-link float arithmetic, or bit-determinism breaks.
	burstKeep float64     // Π (1 - loss) over active bursts, sorted by id
	partList  [][]int     // active partitions sorted by id
	flakyList []flakyArea // active flaky regions sorted by id
}

type flakyArea struct {
	in   []bool
	loss float64
}

// Bind resolves the plan. horizon is the anticipated total number of
// rounds; it is required (> 0) when the plan places events by horizon
// fraction or contains churn processes, and ignored otherwise. seed
// drives every node-set and churn decision, so equal (plan, n, seed,
// horizon) bind to identical schedules.
func (p *Plan) Bind(n int, seed uint64, horizon int) (*Bound, error) {
	if err := p.Validate(n); err != nil {
		return nil, err
	}
	if p.NeedsHorizon() && horizon <= 0 {
		return nil, fmt.Errorf("%w: plan has fractional timings or churn but no horizon", ErrBadPlan)
	}
	b := &Bound{
		n:         n,
		actions:   make(map[int][]action),
		bursts:    make(map[int]float64),
		parts:     make(map[int][]int),
		severed:   make(map[[2]int]int),
		flaky:     make(map[int]flakyArea),
		down:      make([]int, n),
		burstKeep: 1,
	}
	if p.Empty() {
		return b, nil
	}
	for idx, ev := range p.Events {
		at := ev.At.resolve(horizon)
		end := math.MaxInt
		if !ev.End.isZero() {
			end = ev.End.resolve(horizon)
			if end < at {
				return nil, fmt.Errorf("%w: event %d (%s) ends (round %d) before it starts (round %d)",
					ErrBadPlan, idx, ev.Kind, end, at)
			}
		}
		switch ev.Kind {
		case Crash:
			nodes := ev.selectNodes(n, seed, idx)
			b.add(at, action{kind: actCrash, nodes: nodes})
			if end != math.MaxInt {
				b.add(end, action{kind: actRevive, nodes: nodes, auto: true})
			}
		case Rejoin:
			switch {
			case len(ev.Nodes) > 0:
				b.add(at, action{kind: actRevive, nodes: ev.selectNodes(n, seed, idx)})
			case ev.Frac == 0 && ev.Count == 0:
				b.add(at, action{kind: actReviveAll})
			default:
				// Revive some of the currently dead nodes: the set is
				// resolved at fire time against whoever is actually down
				// (a fraction means that share of the dead population),
				// in a seed-derived deterministic preference order.
				b.add(at, action{
					kind:  actReviveSome,
					count: ev.Count,
					frac:  ev.Frac,
					order: xrand.Derive(seed, 0xFA, uint64(idx)).Perm(n),
				})
			}
		case LossBurst:
			b.add(at, action{kind: actBurstStart, id: idx, loss: ev.Loss})
			if end != math.MaxInt {
				b.add(end, action{kind: actBurstEnd, id: idx})
			}
		case Partition:
			part := partitionGroups(n, ev.Groups, seed, idx)
			b.add(at, action{kind: actPartStart, id: idx, part: part})
			if end != math.MaxInt {
				b.add(end, action{kind: actPartEnd, id: idx})
			}
		case LinkDown:
			link := orient(ev.A, ev.B)
			b.add(at, action{kind: actSever, link: link})
			if end != math.MaxInt {
				b.add(end, action{kind: actRestore, link: link})
			}
		case Flaky:
			nodes := ev.selectNodes(n, seed, idx)
			b.add(at, action{kind: actFlakyStart, id: idx, nodes: nodes, loss: ev.Loss})
			if end != math.MaxInt {
				b.add(end, action{kind: actFlakyEnd, id: idx})
			}
		case ChurnKind:
			b.expandChurn(ev, n, seed, idx, horizon)
		}
	}
	return b, nil
}

func (b *Bound) add(round int, a action) {
	if round < 0 {
		round = 0
	}
	b.actions[round] = append(b.actions[round], a)
}

// expandChurn unrolls a Poisson churn process over [1, horizon]: crash
// events arrive with exponential gaps at rate (Rate·n)/horizon per
// round, each hitting a uniformly random node; with Down > 0 the node
// rejoins Down rounds later.
func (b *Bound) expandChurn(ev Event, n int, seed uint64, idx, horizon int) {
	rate := ev.Rate * float64(n) / float64(horizon)
	rng := xrand.Derive(seed, 0xFB, uint64(idx))
	t := 1.0
	for {
		u := rng.Float64()
		if u == 0 {
			u = 0.5
		}
		t += -math.Log(u) / rate // exponential inter-arrival gap
		round := int(math.Ceil(t))
		if round > horizon {
			return
		}
		node := rng.Intn(n)
		b.add(round, action{kind: actCrash, nodes: []int{node}})
		if ev.Down > 0 {
			b.add(round+ev.Down, action{kind: actRevive, nodes: []int{node}, auto: true})
		}
	}
}

// partitionGroups assigns every node a group id in [0, groups) from the
// bind seed: a deterministic random partition with no empty group (the
// first `groups` nodes of a random permutation anchor one group each).
func partitionGroups(n, groups int, seed uint64, idx int) []int {
	rng := xrand.Derive(seed, 0xFC, uint64(idx))
	part := make([]int, n)
	for i := range part {
		part[i] = rng.Intn(groups)
	}
	perm := rng.Perm(n)
	for g := 0; g < groups && g < n; g++ {
		part[perm[g]] = g
	}
	return part
}

func orient(a, b int) [2]int {
	if a > b {
		a, b = b, a
	}
	return [2]int{a, b}
}

// Attach installs the schedule on the engine: round-0 actions apply
// immediately (the static initial-crash special case), the rest fire
// from the engine's round hook. Attach overwrites any previously
// installed round hook or link fault on the engine, and resets the
// Bound's own runtime state (active windows, crash holds, counters), so
// the same binding replays its exact schedule on every engine it is
// attached to — equal (plan, n, seed, horizon) stay bit-deterministic
// across attachments.
//
// Shard safety: the engine invokes the round hook on its sequential
// path, before any sharded delivery work for that round starts, and the
// link-fault predicate only from the sequential send path — so a Bound
// needs no locking under sim.Options.Shards > 1 and fault application
// is bit-identical for any shard count (pinned by the facade's
// TestWorkersBitIdenticalAnswers).
func (b *Bound) Attach(eng Host) {
	b.eng = eng
	b.remaining = make(map[int][]action, len(b.actions))
	for r, acts := range b.actions {
		b.remaining[r] = acts
	}
	b.bursts = make(map[int]float64)
	b.parts = make(map[int][]int)
	b.severed = make(map[[2]int]int)
	b.flaky = make(map[int]flakyArea)
	b.down = make([]int, b.n)
	b.fired, b.crashed, b.revived = 0, 0, 0
	b.recompose()
	eng.SetLinkFault(b.linkFault)
	eng.SetRoundHook(b.onRound)
	b.onRound(0)
}

// Clone returns an unattached Bound sharing this binding's immutable
// schedule but none of its runtime state. A Bound drives one engine at a
// time; cloning lets concurrent runs (e.g. a parallel query batch) each
// attach their own replica of the same resolved plan — the schedule was
// fixed by Bind, so every clone replays the identical actions.
func (b *Bound) Clone() *Bound {
	return &Bound{
		n:         b.n,
		actions:   b.actions,
		bursts:    make(map[int]float64),
		parts:     make(map[int][]int),
		severed:   make(map[[2]int]int),
		flaky:     make(map[int]flakyArea),
		down:      make([]int, b.n),
		burstKeep: 1,
	}
}

// Fired returns the number of actions applied so far.
func (b *Bound) Fired() int { return b.fired }

// Crashed and Revived count node state transitions applied so far.
func (b *Bound) Crashed() int { return b.crashed }
func (b *Bound) Revived() int { return b.revived }

// Rounds returns the sorted rounds at which the schedule acts (useful
// for reports and tests).
func (b *Bound) Rounds() []int {
	out := make([]int, 0, len(b.actions))
	for r := range b.actions {
		out = append(out, r)
	}
	sort.Ints(out)
	return out
}

// onRound applies the actions scheduled for the given round.
func (b *Bound) onRound(round int) {
	acts, ok := b.remaining[round]
	if !ok {
		return
	}
	for _, a := range acts {
		b.fired++
		switch a.kind {
		case actCrash:
			for _, i := range a.nodes {
				b.down[i]++
				if b.eng.Alive(i) {
					b.crashed++
				}
				b.eng.Crash(i)
			}
		case actRevive:
			for _, i := range a.nodes {
				if a.auto {
					// End of one crash hold: the node comes back only
					// when no other crash window still covers it.
					if b.down[i] > 0 {
						b.down[i]--
					}
					if b.down[i] > 0 {
						continue
					}
				} else {
					b.down[i] = 0 // an explicit rejoin clears every hold
				}
				if !b.eng.Alive(i) {
					b.revived++
				}
				b.eng.Revive(i)
			}
		case actReviveAll:
			for i := 0; i < b.n; i++ {
				b.down[i] = 0
				if !b.eng.Alive(i) {
					b.revived++
					b.eng.Revive(i)
				}
			}
		case actReviveSome:
			left := a.count
			if left == 0 {
				dead := 0
				for i := 0; i < b.n; i++ {
					if !b.eng.Alive(i) {
						dead++
					}
				}
				left = int(math.Ceil(a.frac * float64(dead)))
			}
			for _, i := range a.order {
				if left == 0 {
					break
				}
				if !b.eng.Alive(i) {
					b.down[i] = 0
					b.revived++
					b.eng.Revive(i)
					left--
				}
			}
		case actBurstStart:
			b.bursts[a.id] = a.loss
		case actBurstEnd:
			delete(b.bursts, a.id)
		case actPartStart:
			b.parts[a.id] = a.part
		case actPartEnd:
			delete(b.parts, a.id)
		case actSever:
			b.severed[a.link]++
		case actRestore:
			if b.severed[a.link]--; b.severed[a.link] <= 0 {
				delete(b.severed, a.link)
			}
		case actFlakyStart:
			in := make([]bool, b.n)
			for _, i := range a.nodes {
				in[i] = true
			}
			b.flaky[a.id] = flakyArea{in: in, loss: a.loss}
		case actFlakyEnd:
			delete(b.flaky, a.id)
		}
	}
	delete(b.remaining, round)
	b.recompose()
}

// recompose rebuilds the order-stable composites from the active sets,
// iterating in sorted handle order so repeated runs multiply floats in
// the same order.
func (b *Bound) recompose() {
	b.burstKeep = 1
	for _, id := range sortedKeys(b.bursts) {
		b.burstKeep *= 1 - b.bursts[id]
	}
	b.partList = b.partList[:0]
	for _, id := range sortedKeys(b.parts) {
		b.partList = append(b.partList, b.parts[id])
	}
	b.flakyList = b.flakyList[:0]
	for _, id := range sortedKeys(b.flaky) {
		b.flakyList = append(b.flakyList, b.flaky[id])
	}
}

func sortedKeys[V any](m map[int]V) []int {
	ids := make([]int, 0, len(m))
	for id := range m {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	return ids
}

// linkFault is the engine's per-transmission predicate: 1 severs the
// link (an active partition separates the endpoints, or the link is
// blacked out), otherwise active bursts and flaky regions compound as
// independent extra loss.
func (b *Bound) linkFault(from, to int) float64 {
	for _, part := range b.partList {
		if part[from] != part[to] {
			return 1
		}
	}
	if len(b.severed) > 0 && b.severed[orient(from, to)] > 0 {
		return 1
	}
	keep := b.burstKeep
	for i := range b.flakyList {
		if fa := &b.flakyList[i]; fa.in[from] || fa.in[to] {
			keep *= 1 - fa.loss
		}
	}
	return 1 - keep
}
