package faults

import (
	"reflect"
	"testing"

	"drrgossip/internal/sim"
	"drrgossip/internal/xrand"
)

// randomTiming draws an absolute-round or horizon-fraction timing.
// start distinguishes window starts (where the zero timing is legal)
// from ends (where the grammar expresses "never" by omission).
func randomTiming(rng *xrand.Stream, start bool) Timing {
	switch rng.Intn(4) {
	case 0:
		if start {
			return Timing{} // round 0: renders as "@0r"
		}
		return At(1 + rng.Intn(2000))
	case 1:
		return At(1 + rng.Intn(2000))
	default:
		// Two-decimal fractions, the common hand-written form, plus the
		// boundary value 1.0 which needs the fraction marker.
		f := float64(1+rng.Intn(100)) / 100
		return AtFrac(f)
	}
}

// randomNodeAmount fills exactly one of Nodes/Count/Frac.
func randomNodeAmount(rng *xrand.Stream, ev *Event, n int) {
	switch rng.Intn(3) {
	case 0:
		k := 1 + rng.Intn(4)
		seen := map[int]bool{}
		for len(ev.Nodes) < k {
			id := rng.Intn(n)
			if !seen[id] {
				seen[id] = true
				ev.Nodes = append(ev.Nodes, id)
			}
		}
	case 1:
		ev.Count = 1 + rng.Intn(n/2)
	default:
		ev.Frac = float64(1+rng.Intn(100)) / 100
	}
}

// randomEvent draws one grammar-space event, valid for n nodes.
func randomEvent(rng *xrand.Stream, n int) Event {
	var ev Event
	kinds := []Kind{Crash, Rejoin, LossBurst, Partition, LinkDown, Flaky, ChurnKind}
	ev.Kind = kinds[rng.Intn(len(kinds))]
	if ev.Kind != ChurnKind {
		ev.At = randomTiming(rng, true)
		if rng.Bool(0.5) {
			ev.End = randomTiming(rng, false)
		}
	}
	switch ev.Kind {
	case Crash:
		ev.Contiguous = rng.Bool(0.5)
		randomNodeAmount(rng, &ev, n)
	case Rejoin:
		if rng.Bool(0.5) {
			randomNodeAmount(rng, &ev, n)
		}
	case LossBurst:
		ev.Loss = float64(1+rng.Intn(98)) / 100
	case Partition:
		ev.Groups = 2 + rng.Intn(6)
	case LinkDown:
		ev.A = rng.Intn(n)
		ev.B = ev.A
		for ev.B == ev.A {
			ev.B = rng.Intn(n)
		}
	case Flaky:
		randomNodeAmount(rng, &ev, n)
		ev.Loss = float64(1+rng.Intn(100)) / 100
	case ChurnKind:
		ev.Rate = float64(1+rng.Intn(100)) / 100
		if rng.Bool(0.5) {
			ev.Down = 1 + rng.Intn(200)
		}
	}
	return ev
}

// TestCanonicalRoundTrip is the stringification property test: for
// random grammar-space plans, Parse(p.Canonical()) reproduces the events
// field for field (and the re-rendered canonical string is identical).
func TestCanonicalRoundTrip(t *testing.T) {
	const n = 64
	rng := xrand.Derive(0xC0FFEE, 0x57)
	for trial := 0; trial < 1000; trial++ {
		p := &Plan{}
		for len(p.Events) < 1+rng.Intn(4) {
			p.Events = append(p.Events, randomEvent(rng, n))
		}
		if err := p.Validate(n); err != nil {
			t.Fatalf("trial %d: generator produced invalid plan %q: %v", trial, p.Canonical(), err)
		}
		spec := p.Canonical()
		got, err := Parse(spec)
		if err != nil {
			t.Fatalf("trial %d: canonical spec %q does not parse: %v", trial, spec, err)
		}
		if !reflect.DeepEqual(got.Events, p.Events) {
			t.Fatalf("trial %d: round-trip mismatch for %q:\n got  %+v\n want %+v",
				trial, spec, got.Events, p.Events)
		}
		if again := got.Canonical(); again != spec {
			t.Fatalf("trial %d: canonical not a fixed point: %q -> %q", trial, spec, again)
		}
	}
}

// TestGeneratorRoundTrip pins that every generator's String form parses
// back to the exact same events — the copy-pasteable-reproducer
// contract the chaos harness relies on.
func TestGeneratorRoundTrip(t *testing.T) {
	plans := map[string]*Plan{
		"churn":      PoissonChurn(0.2, 0),
		"churn-down": PoissonChurn(1, 40),
		"crash":      CrashFraction(0.2, AtFrac(0.5), Timing{}),
		"crash-all":  CrashFraction(1, Timing{}, Timing{}),
		"rack":       RackFailure(0.1, At(100), At(400)),
		"flaky":      FlakyRegion(0.25, 0.3, AtFrac(0.1), AtFrac(0.9)),
		"part":       PartitionNetwork(3, AtFrac(0.2), AtFrac(0.6)),
		"loss":       LossSpike(0.4, At(10), At(50)),
		"crashfrac":  FromCrashFrac(64, sim.Options{Seed: 7, CrashFrac: 0.25}),
		"merged": Merge(PoissonChurn(0.2, 5), RackFailure(0.25, AtFrac(0.5), Timing{}),
			LossSpike(0.3, AtFrac(0.4), AtFrac(0.8))),
	}
	for name, p := range plans {
		spec := p.String()
		got, err := Parse(spec)
		if err != nil {
			t.Fatalf("%s: spec %q does not parse: %v", name, spec, err)
		}
		if !reflect.DeepEqual(got.Events, p.Events) {
			t.Fatalf("%s: round-trip mismatch for %q:\n got  %+v\n want %+v",
				name, spec, got.Events, p.Events)
		}
	}
}

// TestExplicitNodeListSpecs pins the "#"-list grammar added for shrunk
// reproducers.
func TestExplicitNodeListSpecs(t *testing.T) {
	p, err := Parse("crash:#3,7,9@0r;flaky:#1:0.5@2r..9r;rejoin:#3@12r")
	if err != nil {
		t.Fatal(err)
	}
	want := []Event{
		{Kind: Crash, Nodes: []int{3, 7, 9}},
		{Kind: Flaky, Nodes: []int{1}, Loss: 0.5, At: At(2), End: At(9)},
		{Kind: Rejoin, Nodes: []int{3}, At: At(12)},
	}
	if !reflect.DeepEqual(p.Events, want) {
		t.Fatalf("parsed %+v, want %+v", p.Events, want)
	}
	if err := p.Validate(16); err != nil {
		t.Fatal(err)
	}
	for _, bad := range []string{"crash:#", "crash:#a", "crash:#-1", "rack:#1,"} {
		if _, err := Parse(bad); err == nil {
			t.Errorf("spec %q should not parse", bad)
		}
	}
}

// TestShrinkHooks exercises Without/WithEvent/Simplifications: the
// results must stay valid, canonical-renderable plans.
func TestShrinkHooks(t *testing.T) {
	p, err := Parse("crash:0.4@0.3;part:4@0.5..0.8;loss:0.6@10r..90r")
	if err != nil {
		t.Fatal(err)
	}
	q := p.Without(1)
	if len(q.Events) != 2 || q.Events[1].Kind != LossBurst {
		t.Fatalf("Without(1) = %q", q.Canonical())
	}
	if len(p.Events) != 3 {
		t.Fatal("Without mutated the original")
	}
	for i, ev := range p.Events {
		for _, simp := range ev.Simplifications() {
			r := p.WithEvent(i, simp)
			if err := r.Validate(64); err != nil {
				t.Errorf("simplification of event %d gives invalid plan %q: %v", i, r.Canonical(), err)
			}
			if _, err := Parse(r.Canonical()); err != nil {
				t.Errorf("simplified plan %q does not re-parse: %v", i, err)
			}
		}
	}
	// A partition must simplify its group count, a window its end.
	simps := p.Events[1].Simplifications()
	foundGroups, foundEnd := false, false
	for _, s := range simps {
		if s.Groups == 2 {
			foundGroups = true
		}
		if s.End.isZero() {
			foundEnd = true
		}
	}
	if !foundGroups || !foundEnd {
		t.Fatalf("partition simplifications missing expected variants: %+v", simps)
	}
}
