// Package gossip implements Phase III of DRR-gossip: the root-level
// gossip algorithms of the paper — Gossip-max (Algorithm 4), Data-spread
// (Algorithm 5) and Gossip-ave (Algorithm 6, a push-sum variant).
//
// All three run on the virtual clique G̃ = clique(V̂) of tree roots. A root
// selects a node uniformly at random from all of V and sends it a message;
// a non-root forwards the message to its own root within the same round
// (the non-address-oblivious step, 2 hops = 2 messages via sim.SendVia).
// Consequently a root is selected with probability proportional to its
// tree size — exactly the non-uniformity the paper's Theorems 5-7 analyse.
//
// Per-message loss needs no special handling here: Gossip-max tolerates it
// statistically (Theorem 5 carries the (1-ρ) factor) and is finished off
// by the sampling procedure (Theorem 6); in Gossip-ave a lost share
// removes proportional (s, g) mass, which perturbs but does not bias the
// converging ratio (Lemma 8 keeps the (1-δ) selection factor).
package gossip

import (
	"fmt"
	"math"

	"drrgossip/internal/convergecast"
	"drrgossip/internal/forest"
	"drrgossip/internal/sim"
)

const (
	kindGossipVal uint8 = 0x31
	kindInquiry   uint8 = 0x32
	kindInqReply  uint8 = 0x33
	kindAveShare  uint8 = 0x34
)

// Options tune Gossip-max and Data-spread. Zero values pick defaults
// scaled as in the paper: O(log n) gossip rounds (with the 1/(1-ρ) loss
// inflation, ρ = 2δ) and O(log n) sampling rounds.
type Options struct {
	GossipRounds int // gossip-procedure iterations (1 round each)
	SampleRounds int // sampling-procedure iterations (2 rounds each)
}

// lossInflate scales a round budget by the paper's 1/(1-ρ) factor, where
// ρ = 2δ is the per-relay link-failure probability, further divided by the
// alive fraction (shares aimed at initially-crashed relays are wasted
// rounds).
func lossInflate(base int, eng *sim.Engine) int {
	rho := 2 * eng.Loss()
	if rho >= 0.9 {
		rho = 0.9
	}
	alive := float64(eng.NumAlive()) / float64(eng.N())
	return int(math.Ceil(float64(base)/((1-rho)*alive))) + 1
}

func defaultGossipRounds(eng *sim.Engine) int {
	return lossInflate(2*ceilLog2(eng.N())+12, eng)
}

func defaultSampleRounds(eng *sim.Engine) int {
	return lossInflate(ceilLog2(eng.N())+8, eng)
}

func ceilLog2(n int) int {
	l := int(math.Ceil(math.Log2(float64(n))))
	if l < 1 {
		l = 1
	}
	return l
}

// MaxResult is the outcome of Gossip-max.
type MaxResult struct {
	// Estimates holds each root's final Max estimate (after sampling).
	Estimates map[int]float64
	// AfterGossip holds the estimates after the gossip procedure only —
	// the quantity Theorem 5 bounds (a constant fraction of roots already
	// hold the true Max).
	AfterGossip map[int]float64
	Stats       sim.Counters
}

// checkInputs validates the shared preconditions of the Phase III entry
// points.
func checkInputs(eng *sim.Engine, f *forest.Forest, rootTo []int) error {
	if f.N() != eng.N() {
		return fmt.Errorf("gossip: forest has %d nodes, engine %d", f.N(), eng.N())
	}
	if len(rootTo) != eng.N() {
		return fmt.Errorf("gossip: rootTo has %d entries, engine %d", len(rootTo), eng.N())
	}
	if f.NumTrees() == 0 {
		return fmt.Errorf("gossip: empty forest")
	}
	return nil
}

// relayTarget picks the relay node j (uniform over V minus the chooser)
// and the destination root it forwards to. A crashed or root-less relay
// still consumes the send (the message dies at the relay).
func relayTarget(eng *sim.Engine, rootTo []int, chooser int) (relay, dst int) {
	j := eng.RNG(chooser).IntnOther(eng.N(), chooser)
	dst = rootTo[j]
	if dst < 0 {
		dst = j // dead end: deliver "to the relay", which drops it
	}
	return j, dst
}

// Max runs Algorithm 4 on the roots of f. init maps every root to its
// initial value (e.g. the convergecast-max of its tree); rootTo gives
// every node's root address (from the Phase II broadcast).
func Max(eng *sim.Engine, f *forest.Forest, rootTo []int, init map[int]float64, opts Options) (*MaxResult, error) {
	if err := checkInputs(eng, f, rootTo); err != nil {
		return nil, err
	}
	start := eng.Stats()
	roots := f.Roots()
	val := make(map[int]float64, len(roots))
	for _, r := range roots {
		v, ok := init[r]
		if !ok {
			return nil, fmt.Errorf("gossip: missing init value for root %d", r)
		}
		val[r] = v
	}

	gossipRounds := opts.GossipRounds
	if gossipRounds == 0 {
		gossipRounds = defaultGossipRounds(eng)
	}
	sampleRounds := opts.SampleRounds
	if sampleRounds == 0 {
		sampleRounds = defaultSampleRounds(eng)
	}

	// Gossip procedure: push the current estimate to a random node's root.
	// Roots that crash mid-run place no further calls (their estimate
	// freezes; the rest of the clique keeps gossiping).
	for t := 0; t < gossipRounds; t++ {
		for _, r := range roots {
			if !eng.Alive(r) {
				continue
			}
			relay, dst := relayTarget(eng, rootTo, r)
			eng.SendVia(r, relay, dst, sim.Payload{Kind: kindGossipVal, A: val[r]})
		}
		eng.Tick()
		for _, r := range roots {
			for _, m := range eng.Inbox(r) {
				if m.Pay.Kind == kindGossipVal && m.Pay.A > val[r] {
					val[r] = m.Pay.A
				}
			}
		}
	}
	after := make(map[int]float64, len(val))
	for r, v := range val {
		after[r] = v
	}

	// Sampling procedure: inquire a random node's root and adopt its
	// value if larger. Each iteration takes two rounds (inquiry out,
	// reply back).
	for t := 0; t < sampleRounds; t++ {
		for _, r := range roots {
			if !eng.Alive(r) {
				continue
			}
			relay, dst := relayTarget(eng, rootTo, r)
			eng.SendVia(r, relay, dst, sim.Payload{Kind: kindInquiry, X: int64(r)})
		}
		eng.Tick()
		for _, r := range roots {
			for _, m := range eng.Inbox(r) {
				if m.Pay.Kind == kindInquiry {
					eng.Send(r, int(m.Pay.X), sim.Payload{Kind: kindInqReply, A: val[r]})
				}
			}
		}
		eng.Tick()
		for _, r := range roots {
			for _, m := range eng.Inbox(r) {
				if m.Pay.Kind == kindInqReply && m.Pay.A > val[r] {
					val[r] = m.Pay.A
				}
			}
		}
	}
	return &MaxResult{
		Estimates:   val,
		AfterGossip: after,
		Stats:       eng.Stats().Sub(start),
	}, nil
}

// Spread runs Data-spread (Algorithm 5): the source root's value is
// spread to all roots by running Gossip-max with every other root
// initialised to -Inf.
func Spread(eng *sim.Engine, f *forest.Forest, rootTo []int, source int, value float64, opts Options) (*MaxResult, error) {
	if !f.IsRoot(source) {
		return nil, fmt.Errorf("gossip: spread source %d is not a root", source)
	}
	init := make(map[int]float64, f.NumTrees())
	for _, r := range f.Roots() {
		init[r] = math.Inf(-1)
	}
	init[source] = value
	return Max(eng, f, rootTo, init, opts)
}

// AveOptions tune Gossip-ave.
type AveOptions struct {
	// Rounds is the number of push-sum iterations; 0 means the paper's
	// O(log m + log 1/ε) with ε = n^-2, loss-inflated.
	Rounds int
	// TrackRoot records the per-round estimate trajectory of this root
	// (-1 to disable): the convergence curve of Theorem 7.
	TrackRoot int
	// TrackPotential additionally maintains the contribution vectors
	// y_{t,i} of the analysis and records the potential Φ_t of Lemma 8
	// every round. Costs O(m^2) memory; enable only in experiments.
	TrackPotential bool
	// ReliableShares retransmits each share until delivered (bounded
	// retries) and restores it to the sender if it never arrives, so no
	// push-sum mass is ever destroyed — the paper's "repeated calls"
	// remedy for lossy links. The Ave aggregate does not need this
	// (losses cancel in its ratio), but the distinguished-root Sum and
	// Count variants do: their denominator starts as a single unit of
	// mass whose early loss would permanently skew the result.
	ReliableShares bool
}

// AveResult is the outcome of Gossip-ave.
type AveResult struct {
	// Estimates holds each root's final Ave estimate s/g.
	Estimates map[int]float64
	// S and G are the final push-sum components per root.
	S, G map[int]float64
	// Trajectory is the estimate of TrackRoot after each round.
	Trajectory []float64
	// Potential is Φ_t after each round when TrackPotential is set.
	Potential []float64
	Stats     sim.Counters
}

// Ave runs Algorithm 6 (push-sum over roots with tree-relay): every root
// starts with (s, g) = (local sum, tree size) from Convergecast-sum; each
// round it keeps half and pushes half to a random node's root. The ratio
// s/g at the largest-tree root converges to the global average at the
// rate of Theorem 7.
func Ave(eng *sim.Engine, f *forest.Forest, rootTo []int, init map[int]convergecast.SumCount, opts AveOptions) (*AveResult, error) {
	if err := checkInputs(eng, f, rootTo); err != nil {
		return nil, err
	}
	start := eng.Stats()
	roots := f.Roots()
	s := make(map[int]float64, len(roots))
	g := make(map[int]float64, len(roots))
	for _, r := range roots {
		sc, ok := init[r]
		if !ok {
			return nil, fmt.Errorf("gossip: missing init vector for root %d", r)
		}
		s[r] = sc.Sum
		g[r] = sc.Count
	}
	rounds := opts.Rounds
	if rounds == 0 {
		rounds = lossInflate(4*ceilLog2(eng.N())+24, eng)
	}

	// Optional contribution tracking for the Lemma 8 potential.
	var (
		rootIdx map[int]int
		y       [][]float64 // y[i][j]: root i's contribution from root j
		w       []float64   // dummy weights, w0 = 1
	)
	if opts.TrackPotential {
		rootIdx = make(map[int]int, len(roots))
		for k, r := range roots {
			rootIdx[r] = k
		}
		m := len(roots)
		y = make([][]float64, m)
		for k := range y {
			y[k] = make([]float64, m)
			y[k][k] = 1
		}
		w = make([]float64, m)
		for k := range w {
			w[k] = 1
		}
	}
	potential := func() float64 {
		m := float64(len(roots))
		phi := 0.0
		for k := range y {
			for j := range y[k] {
				d := y[k][j] - w[k]/m
				phi += d * d
			}
		}
		return phi
	}

	var trajectory, potentials []float64
	for t := 0; t < rounds; t++ {
		// Halve and push. The half leaves the sender regardless of
		// delivery (loss destroys mass, as in the analysis).
		type shipment struct {
			dst int
			vec []float64 // snapshot of the shipped contribution share
			w   float64
		}
		var shipped []shipment
		type inflight struct {
			r, dst int
			s, g   float64
		}
		var reliableSent []inflight
		for _, r := range roots {
			if !eng.Alive(r) {
				// A crashed root pushes nothing: its (s, g) mass freezes
				// in place instead of being silently halved away.
				continue
			}
			relay, dst := relayTarget(eng, rootTo, r)
			if !eng.Alive(relay) ||
				(opts.ReliableShares && (!f.IsRoot(dst) || !eng.Alive(dst))) {
				// The call to the relay is never established (crashed
				// relay), or — in reliable mode — the destination cannot
				// take the share: no live root to credit, or the root is
				// currently down (a dead-at-send destination never has
				// the message scheduled, so Drops-sniffing would wrongly
				// report it delivered). Both are possible only under
				// dynamic membership. The sender detects the failure and
				// retains its share; only the call attempt is paid for.
				// Silent link loss below does destroy mass, as in the
				// paper's (1-δ) analysis.
				eng.Send(r, relay, sim.Payload{Kind: kindAveShare})
				continue
			}
			s[r] /= 2
			g[r] /= 2
			pay := sim.Payload{Kind: kindAveShare, A: s[r], B: g[r], X: int64(r)}
			before := eng.Stats().Drops
			eng.SendVia(r, relay, dst, pay)
			delivered := eng.Stats().Drops == before
			if opts.ReliableShares {
				for try := 0; try < 8 && !delivered; try++ {
					before = eng.Stats().Drops
					eng.SendVia(r, relay, dst, pay)
					delivered = eng.Stats().Drops == before
				}
				if !delivered {
					// Every retry failed: restore the share; no mass
					// leaves the system.
					s[r] *= 2
					g[r] *= 2
				} else {
					// Track the delivery: if dst crashes before the next
					// Tick the engine discards the message, and the
					// sender's ack times out — it restores the share
					// (mid-run crashes only; a no-op in the static model).
					reliableSent = append(reliableSent, inflight{r: r, dst: dst, s: pay.A, g: pay.B})
				}
			}
			if opts.TrackPotential {
				// Mirror the halving in the contribution vectors and
				// snapshot the shipped share before any delivery this
				// round can mutate it. A reliably-restored share leaves
				// the vectors untouched.
				if !(opts.ReliableShares && !delivered) {
					k := rootIdx[r]
					for j := range y[k] {
						y[k][j] /= 2
					}
					w[k] /= 2
					if delivered && f.IsRoot(dst) {
						shipped = append(shipped, shipment{
							dst: rootIdx[dst],
							vec: append([]float64(nil), y[k]...),
							w:   w[k],
						})
					}
				}
			}
		}
		eng.Tick()
		for _, sh := range reliableSent {
			if !eng.Alive(sh.dst) {
				// Ack timeout: the destination died before delivery and
				// the engine discarded the share; put it back.
				s[sh.r] += sh.s
				g[sh.r] += sh.g
			}
		}
		for _, r := range roots {
			for _, m := range eng.Inbox(r) {
				if m.Pay.Kind == kindAveShare {
					s[r] += m.Pay.A
					g[r] += m.Pay.B
				}
			}
		}
		if eng.WantResidual() {
			eng.ReportResidual(EstimateSpread(roots, s, g))
		}
		if opts.TrackPotential {
			for _, sh := range shipped {
				for j := range y[sh.dst] {
					y[sh.dst][j] += sh.vec[j]
				}
				w[sh.dst] += sh.w
			}
			potentials = append(potentials, potential())
		}
		if opts.TrackRoot >= 0 {
			if gv := g[opts.TrackRoot]; gv != 0 {
				trajectory = append(trajectory, s[opts.TrackRoot]/gv)
			} else {
				trajectory = append(trajectory, math.NaN())
			}
		}
	}

	est := make(map[int]float64, len(roots))
	for _, r := range roots {
		if g[r] != 0 {
			est[r] = s[r] / g[r]
		} else {
			est[r] = math.NaN()
		}
	}
	return &AveResult{
		Estimates:  est,
		S:          s,
		G:          g,
		Trajectory: trajectory,
		Potential:  potentials,
		Stats:      eng.Stats().Sub(start),
	}, nil
}

// EstimateSpread is the convergence residual the gossip drivers report
// when a round observer is attached: the spread (max − min) of the
// running ratio estimate s/g across roots with nonzero mass, which
// push-sum drives to zero as shares mix. NaN when no root has mass yet.
// It only reads driver state, so reporting it cannot perturb a run; the
// roots iteration order does not affect a max/min reduction, keeping the
// value deterministic. The sparse pipeline reports the same quantity
// over its own share maps.
func EstimateSpread(roots []int, s, g map[int]float64) float64 {
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, r := range roots {
		if gv := g[r]; gv != 0 {
			est := s[r] / gv
			if est < lo {
				lo = est
			}
			if est > hi {
				hi = est
			}
		}
	}
	if hi < lo {
		return math.NaN()
	}
	return hi - lo
}
