// Triple push-sum: the Gossip-ave machinery extended to second moments,
// computing mean and variance in a single Phase III run. Each root's
// state is (s1, s2, g) = (Σ values, Σ values², weight); every round it
// keeps half and pushes half via the tree relay, exactly as Algorithm 6.
// Because all three components ride in one bounded message and are mixed
// by the same contribution vector, the ratios s1/g and s2/g converge at
// the largest-tree root z to the global first and second moments at the
// Theorem 7 rate, and Var = s2/g − (s1/g)².
package gossip

import (
	"fmt"
	"math"

	"drrgossip/internal/convergecast"
	"drrgossip/internal/forest"
	"drrgossip/internal/sim"
)

const kindMomShare uint8 = 0x35

// MomentsResult is the outcome of the triple push-sum.
type MomentsResult struct {
	// Mean and M2 are each root's estimates of the first and second
	// moments (NaN where the weight never arrived).
	Mean, M2 map[int]float64
	Stats    sim.Counters
}

// Moments runs the triple push-sum over the roots of f. init gives each
// root its tree's convergecast moments; weights start at the tree sizes,
// so the Theorem 7 guarantee applies at the largest-tree root.
func Moments(eng *sim.Engine, f *forest.Forest, rootTo []int, init map[int]convergecast.MomentsVec, opts AveOptions) (*MomentsResult, error) {
	if err := checkInputs(eng, f, rootTo); err != nil {
		return nil, err
	}
	start := eng.Stats()
	roots := f.Roots()
	s1 := make(map[int]float64, len(roots))
	s2 := make(map[int]float64, len(roots))
	g := make(map[int]float64, len(roots))
	for _, r := range roots {
		mv, ok := init[r]
		if !ok {
			return nil, fmt.Errorf("gossip: missing moments init for root %d", r)
		}
		s1[r] = mv.Sum
		s2[r] = mv.Sum2
		g[r] = mv.Count
	}
	rounds := opts.Rounds
	if rounds == 0 {
		rounds = lossInflate(4*ceilLog2(eng.N())+24, eng)
	}
	for t := 0; t < rounds; t++ {
		for _, r := range roots {
			relay, dst := relayTarget(eng, rootTo, r)
			if !eng.Alive(relay) {
				// Call never established: retain the share.
				eng.Send(r, relay, sim.Payload{Kind: kindMomShare})
				continue
			}
			s1[r] /= 2
			s2[r] /= 2
			g[r] /= 2
			pay := sim.Payload{Kind: kindMomShare, A: s1[r], B: s2[r], C: g[r], X: int64(r)}
			before := eng.Stats().Drops
			eng.SendVia(r, relay, dst, pay)
			delivered := eng.Stats().Drops == before
			if opts.ReliableShares {
				for try := 0; try < 8 && !delivered; try++ {
					before = eng.Stats().Drops
					eng.SendVia(r, relay, dst, pay)
					delivered = eng.Stats().Drops == before
				}
				if !delivered {
					s1[r] *= 2
					s2[r] *= 2
					g[r] *= 2
				}
			}
		}
		eng.Tick()
		for _, r := range roots {
			for _, m := range eng.Inbox(r) {
				if m.Pay.Kind == kindMomShare {
					s1[r] += m.Pay.A
					s2[r] += m.Pay.B
					g[r] += m.Pay.C
				}
			}
		}
	}
	mean := make(map[int]float64, len(roots))
	m2 := make(map[int]float64, len(roots))
	for _, r := range roots {
		if g[r] != 0 {
			mean[r] = s1[r] / g[r]
			m2[r] = s2[r] / g[r]
		} else {
			mean[r] = math.NaN()
			m2[r] = math.NaN()
		}
	}
	return &MomentsResult{Mean: mean, M2: m2, Stats: eng.Stats().Sub(start)}, nil
}
