package gossip

import (
	"math"
	"testing"

	"drrgossip/internal/agg"
	"drrgossip/internal/convergecast"
	"drrgossip/internal/drr"
	"drrgossip/internal/forest"
	"drrgossip/internal/sim"
)

// phase12 runs Phases I and II: DRR forest, convergecast (max and sum) and
// the root-address broadcast.
func phase12(t *testing.T, eng *sim.Engine, values []float64) (*forest.Forest, []int, map[int]float64, map[int]convergecast.SumCount) {
	t.Helper()
	dres, err := drr.Run(eng, drr.Options{})
	if err != nil {
		t.Fatal(err)
	}
	f := dres.Forest
	covmax, _, err := convergecast.Max(eng, f, values, convergecast.Options{})
	if err != nil {
		t.Fatal(err)
	}
	covsum, _, err := convergecast.Sum(eng, f, values, convergecast.Options{})
	if err != nil {
		t.Fatal(err)
	}
	rootTo, _, err := convergecast.BroadcastRootAddr(eng, f, convergecast.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return f, rootTo, covmax, covsum
}

func TestMaxAllRootsConverge(t *testing.T) {
	// Theorem 6: after the sampling procedure all roots know Max whp.
	for _, loss := range []float64{0, 0.1} {
		n := 2048
		eng := sim.NewEngine(n, sim.Options{Seed: 21, Loss: loss})
		values := agg.GenUniform(n, 0, 1000, 5)
		f, rootTo, covmax, _ := phase12(t, eng, values)
		res, err := Max(eng, f, rootTo, covmax, Options{})
		if err != nil {
			t.Fatal(err)
		}
		want := agg.Exact(agg.Max, values, 0)
		for r, v := range res.Estimates {
			if v != want {
				t.Fatalf("loss=%v: root %d has %v, want %v", loss, r, v, want)
			}
		}
	}
}

func TestMaxAfterGossipFractionTheorem5(t *testing.T) {
	// Theorem 5: already after the gossip procedure a constant fraction
	// of roots holds the true Max.
	n := 4096
	eng := sim.NewEngine(n, sim.Options{Seed: 22})
	values := agg.GenUniform(n, 0, 1000, 6)
	f, rootTo, covmax, _ := phase12(t, eng, values)
	res, err := Max(eng, f, rootTo, covmax, Options{})
	if err != nil {
		t.Fatal(err)
	}
	want := agg.Exact(agg.Max, values, 0)
	have := 0
	for _, v := range res.AfterGossip {
		if v == want {
			have++
		}
	}
	if frac := float64(have) / float64(f.NumTrees()); frac < 0.5 {
		t.Fatalf("only %v of roots hold Max after gossip procedure", frac)
	}
}

func TestMaxMessageComplexityLinear(t *testing.T) {
	// Phase III costs O(n) messages total: O(m log n) with m = O(n/log n).
	n := 8192
	eng := sim.NewEngine(n, sim.Options{Seed: 23})
	values := agg.GenUniform(n, 0, 1, 7)
	f, rootTo, covmax, _ := phase12(t, eng, values)
	res, err := Max(eng, f, rootTo, covmax, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Each gossip iteration sends <= 2m messages and each sampling
	// iteration <= 3m, so the whole phase is <= c*n with
	// c = (2*gossipRounds + 3*sampleRounds) * m/n; defaults give c ~ 12.
	if res.Stats.Messages > int64(16*n) {
		t.Fatalf("phase III used %d messages for n=%d", res.Stats.Messages, n)
	}
}

func TestSpreadReachesAllRoots(t *testing.T) {
	n := 1024
	eng := sim.NewEngine(n, sim.Options{Seed: 24, Loss: 0.05})
	values := agg.GenUniform(n, 0, 1, 8)
	f, rootTo, _, _ := phase12(t, eng, values)
	source := f.LargestRoot()
	res, err := Spread(eng, f, rootTo, source, 1234.5, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for r, v := range res.Estimates {
		if v != 1234.5 {
			t.Fatalf("root %d got %v after spread", r, v)
		}
	}
}

func TestSpreadRejectsNonRoot(t *testing.T) {
	n := 256
	eng := sim.NewEngine(n, sim.Options{Seed: 25})
	values := agg.GenUniform(n, 0, 1, 9)
	f, rootTo, _, _ := phase12(t, eng, values)
	nonRoot := -1
	for i := 0; i < n; i++ {
		if f.Member(i) && !f.IsRoot(i) {
			nonRoot = i
			break
		}
	}
	if _, err := Spread(eng, f, rootTo, nonRoot, 1, Options{}); err == nil {
		t.Fatal("non-root spread source accepted")
	}
}

func TestAveConvergesTheorem7(t *testing.T) {
	n := 2048
	eng := sim.NewEngine(n, sim.Options{Seed: 26})
	values := agg.GenUniform(n, 0, 100, 10)
	f, rootTo, _, covsum := phase12(t, eng, values)
	z := f.LargestRoot()
	res, err := Ave(eng, f, rootTo, covsum, AveOptions{TrackRoot: z})
	if err != nil {
		t.Fatal(err)
	}
	want := agg.Exact(agg.Average, values, 0)
	if e := agg.RelError(res.Estimates[z], want); e > 1e-6 {
		t.Fatalf("largest-root estimate %v, want %v (rel err %v)", res.Estimates[z], want, e)
	}
	// The trajectory must end far more accurate than it started.
	tr := res.Trajectory
	if len(tr) == 0 {
		t.Fatal("no trajectory recorded")
	}
	endErr := agg.RelError(tr[len(tr)-1], want)
	if endErr > 1e-6 {
		t.Fatalf("trajectory end error %v", endErr)
	}
}

func TestAveMassConservationLossless(t *testing.T) {
	n := 1024
	eng := sim.NewEngine(n, sim.Options{Seed: 27})
	values := agg.GenUniform(n, 0, 10, 11)
	f, rootTo, _, covsum := phase12(t, eng, values)
	res, err := Ave(eng, f, rootTo, covsum, AveOptions{TrackRoot: -1})
	if err != nil {
		t.Fatal(err)
	}
	var sTot, gTot float64
	for _, r := range f.Roots() {
		sTot += res.S[r]
		gTot += res.G[r]
	}
	if math.Abs(sTot-agg.Exact(agg.Sum, values, 0)) > 1e-6 {
		t.Fatalf("push-sum lost value mass: %v", sTot)
	}
	if math.Abs(gTot-float64(n)) > 1e-6 {
		t.Fatalf("push-sum lost weight mass: %v", gTot)
	}
}

func TestAveLargestRootOnlyGuarantee(t *testing.T) {
	// Theorem 7 guarantees convergence only at the largest-tree root
	// (selection probability is proportional to tree size, so tiny-tree
	// roots may keep their initial ratio). This is exactly why Algorithm 8
	// follows Gossip-ave with Data-spread. Check: largest root is tight,
	// and the typical (median) root is reasonable, without requiring every
	// root to converge.
	n := 2048
	eng := sim.NewEngine(n, sim.Options{Seed: 28})
	values := agg.GenSigned(n, 50, 12)
	f, rootTo, _, covsum := phase12(t, eng, values)
	z := f.LargestRoot()
	res, err := Ave(eng, f, rootTo, covsum, AveOptions{TrackRoot: -1})
	if err != nil {
		t.Fatal(err)
	}
	want := agg.Exact(agg.Average, values, 0)
	if e := math.Abs(res.Estimates[z] - want); e > 0.01 {
		t.Fatalf("largest root estimate %v, want %v", res.Estimates[z], want)
	}
	var errs []float64
	for _, v := range res.Estimates {
		errs = append(errs, math.Abs(v-want))
	}
	if med := metricsMedian(errs); med > 1.0 {
		t.Fatalf("median root error %v too large", med)
	}
}

// metricsMedian avoids importing internal/metrics into this package's
// tests for a single helper.
func metricsMedian(xs []float64) float64 {
	s := append([]float64(nil), xs...)
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
	return s[len(s)/2]
}

func TestAveUnderLossStaysClose(t *testing.T) {
	// Loss removes proportional (s,g) mass; the converged ratio remains a
	// bounded perturbation of the true average.
	n := 2048
	eng := sim.NewEngine(n, sim.Options{Seed: 29, Loss: 0.1})
	values := agg.GenUniform(n, 0, 100, 13)
	f, rootTo, _, covsum := phase12(t, eng, values)
	z := f.LargestRoot()
	res, err := Ave(eng, f, rootTo, covsum, AveOptions{TrackRoot: z})
	if err != nil {
		t.Fatal(err)
	}
	want := agg.Exact(agg.Average, values, 0)
	if e := agg.RelError(res.Estimates[z], want); e > 0.05 {
		t.Fatalf("estimate %v vs %v: rel err %v too large under loss", res.Estimates[z], want, e)
	}
}

func TestAvePotentialGeometricDecayLemma8(t *testing.T) {
	n := 1024
	eng := sim.NewEngine(n, sim.Options{Seed: 30})
	values := agg.GenUniform(n, 0, 1, 14)
	f, rootTo, _, covsum := phase12(t, eng, values)
	res, err := Ave(eng, f, rootTo, covsum, AveOptions{TrackRoot: -1, TrackPotential: true})
	if err != nil {
		t.Fatal(err)
	}
	pot := res.Potential
	if len(pot) < 10 {
		t.Fatalf("potential trace too short: %d", len(pot))
	}
	// Lemma 8: E[Φ_{t+1}] < Φ_t / 2. Check the decade-scale decay without
	// requiring per-round halving (it is an expectation).
	m := float64(f.NumTrees())
	phi0 := m - 1
	mid := pot[len(pot)/2]
	if mid > phi0/8 {
		t.Fatalf("potential decayed too slowly: start %v, mid %v", phi0, mid)
	}
	last := pot[len(pot)-1]
	if last > mid {
		t.Fatalf("potential increased late: mid %v, last %v", mid, last)
	}
}

func TestAveZeroMeanValues(t *testing.T) {
	// The paper's xave = 0 corner: measure absolute error.
	n := 1024
	eng := sim.NewEngine(n, sim.Options{Seed: 31})
	values := agg.GenZeroMean(n, 100, 15)
	f, rootTo, _, covsum := phase12(t, eng, values)
	z := f.LargestRoot()
	res, err := Ave(eng, f, rootTo, covsum, AveOptions{TrackRoot: z})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Estimates[z]) > 1e-6 {
		t.Fatalf("zero-mean estimate %v", res.Estimates[z])
	}
}

func TestMissingInitRejected(t *testing.T) {
	n := 256
	eng := sim.NewEngine(n, sim.Options{Seed: 32})
	values := agg.GenUniform(n, 0, 1, 16)
	f, rootTo, covmax, covsum := phase12(t, eng, values)
	delete(covmax, f.Roots()[0])
	if _, err := Max(eng, f, rootTo, covmax, Options{}); err == nil {
		t.Fatal("missing max init accepted")
	}
	delete(covsum, f.Roots()[0])
	if _, err := Ave(eng, f, rootTo, covsum, AveOptions{TrackRoot: -1}); err == nil {
		t.Fatal("missing ave init accepted")
	}
}

func TestInputValidation(t *testing.T) {
	eng := sim.NewEngine(8, sim.Options{Seed: 33})
	f, err := forest.FromParents([]int{forest.Root, 0, 0, 0, forest.Root, 4, 4, 4})
	if err != nil {
		t.Fatal(err)
	}
	badRootTo := make([]int, 5) // wrong length
	if _, err := Max(eng, f, badRootTo, map[int]float64{0: 1, 4: 2}, Options{}); err == nil {
		t.Fatal("bad rootTo length accepted")
	}
}

func TestWithCrashes(t *testing.T) {
	n := 2048
	eng := sim.NewEngine(n, sim.Options{Seed: 34, CrashFrac: 0.2, Loss: 0.05})
	values := agg.GenUniform(n, 0, 500, 17)
	f, rootTo, covmax, _ := phase12(t, eng, values)
	res, err := Max(eng, f, rootTo, covmax, Options{})
	if err != nil {
		t.Fatal(err)
	}
	aliveVals := agg.Subset(values, eng.AliveIDs())
	want := agg.Exact(agg.Max, aliveVals, 0)
	for r, v := range res.Estimates {
		if v != want {
			t.Fatalf("root %d has %v, want alive-max %v", r, v, want)
		}
	}
}

func BenchmarkGossipMaxPhase(b *testing.B) {
	n := 4096
	for i := 0; i < b.N; i++ {
		eng := sim.NewEngine(n, sim.Options{Seed: uint64(i)})
		dres, err := drr.Run(eng, drr.Options{})
		if err != nil {
			b.Fatal(err)
		}
		values := agg.GenUniform(n, 0, 1, uint64(i))
		covmax, _, err := convergecast.Max(eng, dres.Forest, values, convergecast.Options{})
		if err != nil {
			b.Fatal(err)
		}
		rootTo, _, err := convergecast.BroadcastRootAddr(eng, dres.Forest, convergecast.Options{})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := Max(eng, dres.Forest, rootTo, covmax, Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

func TestMomentsTriplePushSum(t *testing.T) {
	n := 1024
	eng := sim.NewEngine(n, sim.Options{Seed: 35})
	values := agg.GenUniform(n, 0, 100, 36)
	dres, err := drr.Run(eng, drr.Options{})
	if err != nil {
		t.Fatal(err)
	}
	f := dres.Forest
	cov, _, err := convergecast.Moments(eng, f, values, convergecast.Options{})
	if err != nil {
		t.Fatal(err)
	}
	rootTo, _, err := convergecast.BroadcastRootAddr(eng, f, convergecast.Options{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Moments(eng, f, rootTo, cov, AveOptions{TrackRoot: -1})
	if err != nil {
		t.Fatal(err)
	}
	z := f.LargestRoot()
	wantMean := agg.Exact(agg.Average, values, 0)
	wantM2 := 0.0
	for _, v := range values {
		wantM2 += v * v
	}
	wantM2 /= float64(n)
	if agg.RelError(res.Mean[z], wantMean) > 1e-6 {
		t.Fatalf("mean at z = %v, want %v", res.Mean[z], wantMean)
	}
	if agg.RelError(res.M2[z], wantM2) > 1e-6 {
		t.Fatalf("m2 at z = %v, want %v", res.M2[z], wantM2)
	}
}

func TestMomentsReliableSharesUnderLoss(t *testing.T) {
	n := 1024
	eng := sim.NewEngine(n, sim.Options{Seed: 37, Loss: 0.125})
	values := agg.GenUniform(n, 0, 100, 38)
	dres, err := drr.Run(eng, drr.Options{})
	if err != nil {
		t.Fatal(err)
	}
	f := dres.Forest
	cov, _, err := convergecast.Moments(eng, f, values, convergecast.Options{})
	if err != nil {
		t.Fatal(err)
	}
	rootTo, _, err := convergecast.BroadcastRootAddr(eng, f, convergecast.Options{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Moments(eng, f, rootTo, cov, AveOptions{TrackRoot: -1, ReliableShares: true})
	if err != nil {
		t.Fatal(err)
	}
	z := f.LargestRoot()
	wantMean := agg.Exact(agg.Average, values, 0)
	if agg.RelError(res.Mean[z], wantMean) > 1e-3 {
		t.Fatalf("mean at z = %v, want %v under loss", res.Mean[z], wantMean)
	}
}

func TestMomentsMissingInit(t *testing.T) {
	n := 256
	eng := sim.NewEngine(n, sim.Options{Seed: 39})
	dres, err := drr.Run(eng, drr.Options{})
	if err != nil {
		t.Fatal(err)
	}
	f := dres.Forest
	rootTo, _, err := convergecast.BroadcastRootAddr(eng, f, convergecast.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Moments(eng, f, rootTo, map[int]convergecast.MomentsVec{}, AveOptions{TrackRoot: -1}); err == nil {
		t.Fatal("missing init accepted")
	}
}
