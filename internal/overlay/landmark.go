package overlay

import (
	"fmt"

	"drrgossip/internal/graph"
	"drrgossip/internal/xrand"
)

// Landmark is the generic router that turns any connected graph into an
// Overlay: a BFS tree rooted at a central landmark node gives every pair
// of nodes a route through their lowest common ancestor, using O(n)
// state and at most 2·depth hops — the classic landmark/tree-routing
// scheme. Sampling is exactly uniform (the simulator knows the node set,
// matching the paper's assumption of a uniform-sampling primitive whose
// cost is one route).
type Landmark struct {
	g        *graph.Graph
	landmark int
	parent   []int // BFS parent toward the landmark; -1 at the landmark
	depth    []int
	maxDepth int
}

// NewLandmark builds the landmark router for g, which must be connected
// and non-empty. The landmark is the midpoint of a double-sweep
// (approximate-diameter) path, which keeps the tree depth close to
// radius(g) rather than diameter(g).
func NewLandmark(g *graph.Graph) (*Landmark, error) {
	n := g.N()
	if n == 0 {
		return nil, fmt.Errorf("overlay: empty graph %s", g.Name())
	}
	if !g.Connected() {
		return nil, fmt.Errorf("overlay: graph %s is disconnected", g.Name())
	}
	// Double sweep: farthest node u from 0, farthest node v from u; the
	// midpoint of the u–v tree path approximates the graph center.
	du, _ := bfsTree(g, 0)
	u := argmax(du)
	dv, pv := bfsTree(g, u)
	v := argmax(dv)
	mid := v
	for hop := 0; hop < dv[v]/2; hop++ {
		mid = pv[mid]
	}
	depth, parent := bfsTree(g, mid)
	l := &Landmark{g: g, landmark: mid, parent: parent, depth: depth}
	for _, d := range depth {
		if d > l.maxDepth {
			l.maxDepth = d
		}
	}
	return l, nil
}

// bfsTree returns BFS distances and parent pointers from src.
func bfsTree(g *graph.Graph, src int) (dist, parent []int) {
	n := g.N()
	dist = make([]int, n)
	parent = make([]int, n)
	for i := range dist {
		dist[i] = -1
		parent[i] = -1
	}
	dist[src] = 0
	queue := []int{src}
	var nbuf []int // own buffer: keeps graph scratch untouched
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		nbuf = g.NeighborsInto(u, nbuf)
		for _, w := range nbuf {
			if dist[w] < 0 {
				dist[w] = dist[u] + 1
				parent[w] = u
				queue = append(queue, w)
			}
		}
	}
	return dist, parent
}

func argmax(xs []int) int {
	best := 0
	for i, x := range xs {
		if x > xs[best] {
			best = i
		}
	}
	return best
}

// Name implements Overlay.
func (l *Landmark) Name() string { return l.g.Name() }

// Graph implements Overlay.
func (l *Landmark) Graph() *graph.Graph { return l.g }

// Landmark returns the tree root (exposed for tests).
func (l *Landmark) Landmark() int { return l.landmark }

// Route implements Overlay: ascend from both endpoints to their lowest
// common ancestor in the landmark tree, then descend to the target.
// Every hop is a tree edge, hence a graph edge.
func (l *Landmark) Route(from, to int) []int {
	if from == to {
		return nil
	}
	a, b := from, to
	var up, down []int // from-side ascent; to-side ascent (bottom-up)
	for l.depth[a] > l.depth[b] {
		a = l.parent[a]
		up = append(up, a)
	}
	for l.depth[b] > l.depth[a] {
		down = append(down, b)
		b = l.parent[b]
	}
	for a != b {
		a = l.parent[a]
		up = append(up, a)
		down = append(down, b)
		b = l.parent[b]
	}
	// a == b is the LCA; up already ends there (or is empty when from is
	// the LCA). Walk down the to-side in top-down order.
	for i := len(down) - 1; i >= 0; i-- {
		up = append(up, down[i])
	}
	return up
}

// Sample implements Overlay: an exactly uniform node, whose cost is the
// one route to it.
func (l *Landmark) Sample(rng *xrand.Stream, from int) (int, []int, int) {
	j := rng.Intn(l.g.N())
	path := l.Route(from, j)
	return j, path, len(path)
}

// RouteBound implements Overlay: any LCA route is at most two tree
// depths long.
func (l *Landmark) RouteBound() int { return 2*l.maxDepth + 1 }
