// Package overlay abstracts the communication substrate of the
// Section 4 sparse pipeline (Local-DRR → routed root-level gossip →
// dissemination) behind a single interface, so the pipeline runs on any
// connected graph instead of only the Chord ring it was written against.
//
// An Overlay bundles the three capabilities the sparse protocols need:
//
//   - a communication graph (Local-DRR exchanges ranks over its edges and
//     the ranking trees are subgraphs of it),
//   - a point-to-point router that turns a "virtual edge" between tree
//     roots into a hop path of real graph edges, and
//   - a random-node sampler (the paper's "choosing a random peer"
//     primitive) whose message cost the routing bill must include.
//
// Chord keeps its native finger-table router and rejection sampler
// (preserving the pre-refactor message accounting exactly); every other
// graph gets the generic landmark-tree router of this package, which
// needs only O(n) state and routes in at most 2·ecc(landmark) hops.
//
// Overlays are built by name through a registry (see registry.go), so a
// new topology is one Register call plus a graph generator.
package overlay

import (
	"drrgossip/internal/graph"
	"drrgossip/internal/xrand"
)

// Overlay is a pluggable communication substrate for the sparse
// DRR-gossip pipeline.
type Overlay interface {
	// Name identifies the overlay for reports ("chord(1024)", ...).
	Name() string

	// Graph returns the undirected communication graph the overlay is
	// built on. Local-DRR runs on its edges; the result must be the same
	// object on every call (construction happens once).
	Graph() *graph.Graph

	// Route returns the hop path from node `from` to node `to`,
	// excluding `from` and ending at `to`; nil/empty when from == to.
	// Every consecutive pair must be an edge of Graph().
	Route(from, to int) []int

	// Sample draws a (near-)uniform random node using rng, as seen from
	// node `from`. It returns the sampled node, the hop path from `from`
	// to it (empty when the sample is `from` itself), and the total
	// routing hops spent including rejected attempts — the message cost
	// of the sample, which callers must charge to the network bill.
	Sample(rng *xrand.Stream, from int) (node int, path []int, totalHops int)

	// RouteBound returns an upper bound on the length of any path that
	// Route or Sample can return. The pipeline uses it to size its
	// per-iteration drain window.
	RouteBound() int
}
