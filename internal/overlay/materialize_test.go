package overlay

import (
	"fmt"
	"testing"

	"drrgossip/internal/xrand"
)

// Materialize must preserve the graph element-for-element and the router
// hop-for-hop for every registered family.
func TestMaterializePreservesOverlay(t *testing.T) {
	for _, spec := range []Spec{
		{Name: "chord"}, {Name: "ring"}, {Name: "torus"}, {Name: "hypercube"},
		{Name: "regular"}, {Name: "smallworld"}, {Name: "scalefree"},
	} {
		for _, n := range []int{64, 1000} {
			if spec.Name == "hypercube" {
				n = 64 // power of two
			}
			t.Run(fmt.Sprintf("%s/n=%d", spec, n), func(t *testing.T) {
				ov, err := Build(spec, n, 7)
				if err != nil {
					t.Fatal(err)
				}
				mat, err := Materialize(ov)
				if err != nil {
					t.Fatal(err)
				}
				g, mg := ov.Graph(), mat.Graph()
				if g.Name() != mg.Name() || g.N() != mg.N() || g.NumEdges() != mg.NumEdges() {
					t.Fatalf("graph identity differs: %s/%d/%d vs %s/%d/%d",
						g.Name(), g.N(), g.NumEdges(), mg.Name(), mg.N(), mg.NumEdges())
				}
				var a, b []int
				for u := 0; u < n; u++ {
					a = g.NeighborsInto(u, a)
					b = mg.NeighborsInto(u, b)
					if len(a) != len(b) {
						t.Fatalf("degree differs at %d: %v vs %v", u, a, b)
					}
					for i := range a {
						if a[i] != b[i] {
							t.Fatalf("neighbours differ at %d: %v vs %v", u, a, b)
						}
					}
				}
				if ov.RouteBound() != mat.RouteBound() {
					t.Fatalf("RouteBound differs: %d vs %d", ov.RouteBound(), mat.RouteBound())
				}
				// Routes and samples must be identical (same router state).
				rng1 := xrand.Derive(3, 1)
				rng2 := xrand.Derive(3, 1)
				for trial := 0; trial < 50; trial++ {
					from := (trial * 13) % n
					to := (trial * 29) % n
					p1, p2 := ov.Route(from, to), mat.Route(from, to)
					if fmt.Sprint(p1) != fmt.Sprint(p2) {
						t.Fatalf("route %d->%d differs: %v vs %v", from, to, p1, p2)
					}
					n1, s1, h1 := ov.Sample(rng1, from)
					n2, s2, h2 := mat.Sample(rng2, from)
					if n1 != n2 || h1 != h2 || fmt.Sprint(s1) != fmt.Sprint(s2) {
						t.Fatalf("sample from %d differs: (%d,%v,%d) vs (%d,%v,%d)",
							from, n1, s1, h1, n2, s2, h2)
					}
				}
			})
		}
	}
}
