package overlay

import (
	"math"

	"drrgossip/internal/chord"
	"drrgossip/internal/graph"
	"drrgossip/internal/xrand"
)

// Chord adapts a chord.Ring to the Overlay interface, keeping the ring's
// native greedy finger routing and rejection-based random-node sampler —
// the message accounting is bit-for-bit the pre-refactor behaviour.
type Chord struct {
	ring *chord.Ring
	g    *graph.Graph
}

// NewChord wraps a Chord ring as an Overlay. The finger-table graph is
// materialised once here.
func NewChord(ring *chord.Ring) *Chord {
	return &Chord{ring: ring, g: ring.Graph()}
}

// Ring exposes the underlying ring (for Chord-specific baselines).
func (c *Chord) Ring() *chord.Ring { return c.ring }

// Name implements Overlay.
func (c *Chord) Name() string { return c.g.Name() }

// Graph implements Overlay.
func (c *Chord) Graph() *graph.Graph { return c.g }

// Route implements Overlay via greedy finger routing.
func (c *Chord) Route(from, to int) []int { return c.ring.RouteToNode(from, to) }

// Sample implements Overlay via the ring's rejection sampler (uniform
// identifier → owner, arc-bias cancelled by rejection).
func (c *Chord) Sample(rng *xrand.Stream, from int) (int, []int, int) {
	return c.ring.Sample(rng, from)
}

// RouteBound implements Overlay: a greedy Chord route halves the
// remaining identifier distance per hop, so 2·⌈log2 n⌉ bounds it.
func (c *Chord) RouteBound() int {
	return 2 * int(math.Ceil(math.Log2(float64(c.ring.N()))))
}
