package overlay

import (
	"errors"
	"fmt"
	"math/bits"
	"sort"
	"strconv"
	"strings"

	"drrgossip/internal/chord"
	"drrgossip/internal/graph"
)

// Spec names an overlay family plus an optional integer parameter
// (degree for regular graphs, lattice half-width for small worlds, …).
// The textual form is "name" or "name:param", e.g. "regular:6".
type Spec struct {
	Name  string
	Param int // 0 = family default
}

// String renders the spec in its parseable form.
func (s Spec) String() string {
	if s.Param != 0 {
		return fmt.Sprintf("%s:%d", s.Name, s.Param)
	}
	return s.Name
}

// ParseSpec parses "name" or "name:param".
func ParseSpec(text string) (Spec, error) {
	name, paramStr, hasParam := strings.Cut(strings.TrimSpace(strings.ToLower(text)), ":")
	s := Spec{Name: name}
	if hasParam {
		p, err := strconv.Atoi(paramStr)
		if err != nil {
			return Spec{}, fmt.Errorf("overlay: bad parameter in spec %q: %v", text, err)
		}
		s.Param = p
	}
	b, ok := registry[s.Name]
	if !ok {
		return Spec{}, fmt.Errorf("overlay: unknown overlay %q (have %s)", name, strings.Join(Names(), ", "))
	}
	if hasParam && !b.HasParam {
		return Spec{}, fmt.Errorf("overlay: %s takes no parameter, got %q", s.Name, text)
	}
	return s, nil
}

// Builder describes one registered overlay family.
type Builder struct {
	// HasParam marks families whose Spec.Param is meaningful; families
	// without it reject any explicit parameter.
	HasParam bool
	// DefaultParam substitutes for Spec.Param == 0.
	DefaultParam int
	// Check validates (n, param) cheaply, without construction; nil
	// means any n >= 2 works.
	Check func(n, param int) error
	// Build constructs the overlay deterministically from (n, param,
	// seed).
	Build func(n, param int, seed uint64) (Overlay, error)
}

var registry = map[string]Builder{}

// Register adds an overlay family under a lower-case name. Registering a
// duplicate name panics (families are wired up in init functions).
func Register(name string, b Builder) {
	if _, dup := registry[name]; dup {
		panic("overlay: duplicate registration of " + name)
	}
	if b.Build == nil {
		panic("overlay: Register " + name + " without Build")
	}
	registry[name] = b
}

// Names lists the registered overlay families in sorted order.
func Names() []string {
	names := make([]string, 0, len(registry))
	for name := range registry {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// Check validates a spec against a network size without building it.
func Check(s Spec, n int) error {
	b, ok := registry[s.Name]
	if !ok {
		return fmt.Errorf("overlay: unknown overlay %q", s.Name)
	}
	if n < 2 {
		return fmt.Errorf("overlay: need n >= 2, got %d", n)
	}
	if s.Param != 0 && !b.HasParam {
		return fmt.Errorf("overlay: %s takes no parameter, got %d", s.Name, s.Param)
	}
	param := s.Param
	if param == 0 {
		param = b.DefaultParam
	}
	if b.Check != nil {
		return b.Check(n, param)
	}
	return nil
}

// Build constructs the overlay named by s on n nodes. Construction is
// deterministic in (s, n, seed).
func Build(s Spec, n int, seed uint64) (Overlay, error) {
	if err := Check(s, n); err != nil {
		return nil, err
	}
	b := registry[s.Name]
	param := s.Param
	if param == 0 {
		param = b.DefaultParam
	}
	return b.Build(n, param, seed)
}

// torusShape factors n into the most square rows×cols grid with both
// sides >= 3; ok is false when no such factorisation exists.
func torusShape(n int) (rows, cols int, ok bool) {
	for r := intSqrt(n); r >= 3; r-- {
		if n%r == 0 && n/r >= 3 {
			return r, n / r, true
		}
	}
	return 0, 0, false
}

func intSqrt(n int) int {
	r := 0
	for (r+1)*(r+1) <= n {
		r++
	}
	return r
}

func init() {
	Register("chord", Builder{
		Build: func(n, _ int, seed uint64) (Overlay, error) {
			ring, err := chord.New(n, chord.Options{Seed: seed})
			if err != nil {
				return nil, err
			}
			return NewChord(ring), nil
		},
	})
	Register("ring", Builder{
		Check: func(n, _ int) error {
			if n < 3 {
				return fmt.Errorf("overlay: ring needs n >= 3, got %d", n)
			}
			return nil
		},
		Build: func(n, _ int, _ uint64) (Overlay, error) {
			return NewLandmark(graph.Ring(n))
		},
	})
	Register("torus", Builder{
		Check: func(n, _ int) error {
			if _, _, ok := torusShape(n); !ok {
				return fmt.Errorf("overlay: torus needs n with a rows×cols factorisation, rows, cols >= 3; n=%d has none", n)
			}
			return nil
		},
		Build: func(n, _ int, _ uint64) (Overlay, error) {
			rows, cols, _ := torusShape(n)
			return NewLandmark(graph.Torus(rows, cols))
		},
	})
	Register("hypercube", Builder{
		Check: func(n, _ int) error {
			if n < 2 || bits.OnesCount(uint(n)) != 1 {
				return fmt.Errorf("overlay: hypercube needs n a power of two >= 2, got %d", n)
			}
			return nil
		},
		Build: func(n, _ int, _ uint64) (Overlay, error) {
			return NewLandmark(graph.Hypercube(bits.TrailingZeros(uint(n))))
		},
	})
	Register("regular", Builder{
		HasParam:     true,
		DefaultParam: 4,
		Check: func(n, d int) error {
			if d < 3 || d >= n {
				return fmt.Errorf("overlay: regular needs degree 3 <= d < n, got d=%d n=%d", d, n)
			}
			if n*d%2 != 0 {
				return fmt.Errorf("overlay: regular needs n*d even, got n=%d d=%d", n, d)
			}
			return nil
		},
		Build: func(n, d int, seed uint64) (Overlay, error) {
			// Retry over derived seeds until the sample is connected
			// (for d >= 3 disconnection is vanishingly rare).
			for try := uint64(0); try < 64; try++ {
				g, err := graph.RandomRegular(n, d, seed+try)
				if err == nil && g.Connected() {
					return NewLandmark(g)
				}
			}
			return nil, errors.New("overlay: no connected regular graph within the retry budget")
		},
	})
	Register("smallworld", Builder{
		HasParam:     true,
		DefaultParam: 2,
		Check: func(n, k int) error {
			if k < 1 || n < 2*k+2 {
				return fmt.Errorf("overlay: smallworld needs k >= 1 and n >= 2k+2, got n=%d k=%d", n, k)
			}
			return nil
		},
		Build: func(n, k int, seed uint64) (Overlay, error) {
			return NewLandmark(graph.SmallWorld(n, k, 0.25, seed))
		},
	})
	Register("scalefree", Builder{
		HasParam:     true,
		DefaultParam: 3,
		Check: func(n, m int) error {
			if m < 1 || n <= m+1 {
				return fmt.Errorf("overlay: scalefree needs m >= 1 and n > m+1, got n=%d m=%d", n, m)
			}
			return nil
		},
		Build: func(n, m int, seed uint64) (Overlay, error) {
			return NewLandmark(graph.BarabasiAlbert(n, m, seed))
		},
	})
}
