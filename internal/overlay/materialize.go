package overlay

import (
	"fmt"

	"drrgossip/internal/chord"
	"drrgossip/internal/graph"
)

// NewChordMaterialized wraps a Chord ring as an Overlay whose
// communication graph uses the historical jagged-slice adjacency
// (ring.MaterializedGraph) instead of the implicit representation.
// Routing and sampling are the ring's own either way, so answers are
// bit-identical to NewChord — only the graph storage differs. It exists
// for cross-representation identity checks and memory studies.
func NewChordMaterialized(ring *chord.Ring) *Chord {
	return &Chord{ring: ring, g: ring.MaterializedGraph()}
}

// Materialize returns an overlay equivalent to ov whose communication
// graph is stored as jagged slices (the pre-CSR layout): same node set,
// same edges, same routes and samples, different storage. Chord overlays
// keep their ring router on a materialized finger graph; landmark
// overlays are rebuilt on a jagged copy of their graph (BFS tree
// construction is deterministic in the graph content, so routes are
// identical). Used by the facade's LegacySliceAdjacency mode and the SC1
// memory study.
func Materialize(ov Overlay) (Overlay, error) {
	switch o := ov.(type) {
	case *Chord:
		return NewChordMaterialized(o.Ring()), nil
	case *Landmark:
		g := o.Graph()
		lists := make([][]int, g.N())
		for u := range lists {
			lists[u] = g.NeighborsInto(u, nil)
		}
		jg, err := graph.LegacyJagged(g.Name(), lists)
		if err != nil {
			return nil, fmt.Errorf("overlay: materialize %s: %w", ov.Name(), err)
		}
		return NewLandmark(jg)
	default:
		return nil, fmt.Errorf("overlay: cannot materialize %T", ov)
	}
}
