package overlay

import (
	"math"
	"strings"
	"testing"

	"drrgossip/internal/chord"
	"drrgossip/internal/graph"
	"drrgossip/internal/xrand"
)

// checkRoutes verifies the Overlay routing contract on a sample of
// pairs: every hop is a graph edge, the path ends at the target,
// excludes the source, and respects RouteBound.
func checkRoutes(t *testing.T, ov Overlay) {
	t.Helper()
	g := ov.Graph()
	n := g.N()
	rng := xrand.New(99)
	for trial := 0; trial < 200; trial++ {
		from, to := rng.Intn(n), rng.Intn(n)
		path := ov.Route(from, to)
		if from == to {
			if len(path) != 0 {
				t.Fatalf("%s: Route(%d,%d) self-route returned %v", ov.Name(), from, to, path)
			}
			continue
		}
		if len(path) == 0 {
			t.Fatalf("%s: Route(%d,%d) empty", ov.Name(), from, to)
		}
		if len(path) > ov.RouteBound() {
			t.Fatalf("%s: Route(%d,%d) length %d exceeds RouteBound %d", ov.Name(), from, to, len(path), ov.RouteBound())
		}
		prev := from
		for _, hop := range path {
			if !g.HasEdge(prev, hop) {
				t.Fatalf("%s: Route(%d,%d) uses non-edge (%d,%d)", ov.Name(), from, to, prev, hop)
			}
			prev = hop
		}
		if prev != to {
			t.Fatalf("%s: Route(%d,%d) ends at %d", ov.Name(), from, to, prev)
		}
	}
}

func checkSampler(t *testing.T, ov Overlay) {
	t.Helper()
	n := ov.Graph().N()
	rng := xrand.New(7)
	seen := make(map[int]bool)
	for trial := 0; trial < 40*n; trial++ {
		node, path, totalHops := ov.Sample(rng, trial%n)
		if node < 0 || node >= n {
			t.Fatalf("%s: sampled out-of-range node %d", ov.Name(), node)
		}
		if totalHops < len(path) {
			t.Fatalf("%s: totalHops %d < path length %d", ov.Name(), totalHops, len(path))
		}
		if len(path) > 0 && path[len(path)-1] != node {
			t.Fatalf("%s: sample path ends at %d, node %d", ov.Name(), path[len(path)-1], node)
		}
		if len(path) == 0 && node != trial%n {
			t.Fatalf("%s: empty path but sampled %d from %d", ov.Name(), node, trial%n)
		}
		seen[node] = true
	}
	if len(seen) < n*9/10 {
		t.Fatalf("%s: sampler reached only %d/%d nodes", ov.Name(), len(seen), n)
	}
}

func TestLandmarkOverlays(t *testing.T) {
	graphs := []*graph.Graph{
		graph.Torus(8, 8),
		graph.Hypercube(6),
		graph.MustRandomRegular(64, 4, 3),
		graph.SmallWorld(64, 2, 0.25, 4),
		graph.Ring(31),
		graph.BarabasiAlbert(64, 3, 5),
		graph.Star(17),
	}
	for _, g := range graphs {
		ov, err := NewLandmark(g)
		if err != nil {
			t.Fatalf("%s: %v", g.Name(), err)
		}
		if ov.Graph() != g {
			t.Fatalf("%s: Graph() not the wrapped graph", g.Name())
		}
		checkRoutes(t, ov)
		checkSampler(t, ov)
	}
}

func TestLandmarkCenterBeatsWorstCase(t *testing.T) {
	// On a ring the double-sweep midpoint must keep the tree depth near
	// the radius, so RouteBound stays ~diameter rather than 2×diameter.
	g := graph.Ring(100)
	ov, err := NewLandmark(g)
	if err != nil {
		t.Fatal(err)
	}
	if ov.RouteBound() > 2*60 {
		t.Fatalf("ring RouteBound %d too large (radius is 50)", ov.RouteBound())
	}
}

func TestLandmarkRejectsDisconnected(t *testing.T) {
	adj := [][]int{{1}, {0}, {3}, {2}} // two components
	g, err := graph.FromAdjacency("twopairs", adj)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewLandmark(g); err == nil {
		t.Fatal("disconnected graph accepted")
	}
}

func TestChordAdapterMatchesRing(t *testing.T) {
	ring := chord.MustNew(128, chord.Options{Bits: 30})
	ov := NewChord(ring)
	checkRoutes(t, ov)
	checkSampler(t, ov)
	for from := 0; from < 128; from += 7 {
		for to := 0; to < 128; to += 11 {
			got := ov.Route(from, to)
			want := ring.RouteToNode(from, to)
			if len(got) != len(want) {
				t.Fatalf("Route(%d,%d) = %v, ring says %v", from, to, got, want)
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("Route(%d,%d) = %v, ring says %v", from, to, got, want)
				}
			}
		}
	}
	// The sampler must consume the RNG exactly like the ring's own.
	a, b := xrand.New(5), xrand.New(5)
	for i := 0; i < 50; i++ {
		n1, p1, h1 := ov.Sample(a, i%128)
		n2, p2, h2 := ring.Sample(b, i%128)
		if n1 != n2 || h1 != h2 || len(p1) != len(p2) {
			t.Fatalf("adapter sample (%d,%v,%d) != ring sample (%d,%v,%d)", n1, p1, h1, n2, p2, h2)
		}
	}
	if want := 2 * int(math.Ceil(math.Log2(128))); ov.RouteBound() != want {
		t.Fatalf("chord RouteBound = %d, want %d", ov.RouteBound(), want)
	}
}

func TestRegistryParseAndBuild(t *testing.T) {
	good := map[string]Spec{
		"chord":        {Name: "chord"},
		"torus":        {Name: "torus"},
		"hypercube":    {Name: "hypercube"},
		"regular:6":    {Name: "regular", Param: 6},
		"smallworld:3": {Name: "smallworld", Param: 3},
		"ring":         {Name: "ring"},
		"scalefree":    {Name: "scalefree"},
		" Torus ":      {Name: "torus"},
	}
	for text, want := range good {
		got, err := ParseSpec(text)
		if err != nil {
			t.Fatalf("ParseSpec(%q): %v", text, err)
		}
		if got != want {
			t.Fatalf("ParseSpec(%q) = %+v, want %+v", text, got, want)
		}
	}
	for _, bad := range []string{"mesh", "regular:abc", "", "torus:1:2",
		"chord:5", "torus:3", "ring:7", "hypercube:4"} { // parameterless families reject params
		if _, err := ParseSpec(bad); err == nil {
			t.Fatalf("ParseSpec(%q) accepted", bad)
		}
	}

	for _, spec := range []Spec{{Name: "chord"}, {Name: "torus"}, {Name: "hypercube"},
		{Name: "regular"}, {Name: "smallworld"}, {Name: "ring"}, {Name: "scalefree"}} {
		ov, err := Build(spec, 64, 9)
		if err != nil {
			t.Fatalf("Build(%v, 64): %v", spec, err)
		}
		if ov.Graph().N() != 64 || !ov.Graph().Connected() {
			t.Fatalf("Build(%v): bad graph %s", spec, ov.Graph().Name())
		}
		// Deterministic: same (spec, n, seed) gives an identical graph.
		ov2, err := Build(spec, 64, 9)
		if err != nil {
			t.Fatal(err)
		}
		if ov.Graph().Name() != ov2.Graph().Name() || ov.Graph().NumEdges() != ov2.Graph().NumEdges() {
			t.Fatalf("Build(%v) not deterministic", spec)
		}
	}
}

func TestRegistryCheckRejections(t *testing.T) {
	cases := []struct {
		spec Spec
		n    int
	}{
		{Spec{Name: "hypercube"}, 48},         // not a power of two
		{Spec{Name: "torus"}, 14},             // no rows,cols >= 3 factorisation
		{Spec{Name: "torus"}, 7},              // prime
		{Spec{Name: "regular", Param: 2}, 16}, // d < 3
		{Spec{Name: "regular", Param: 3}, 9},  // n*d odd
		{Spec{Name: "regular", Param: 16}, 16},
		{Spec{Name: "smallworld", Param: 4}, 8}, // n < 2k+2
		{Spec{Name: "ring"}, 2},
		{Spec{Name: "scalefree", Param: 9}, 10},
		{Spec{Name: "chord"}, 1},
		{Spec{Name: "chord", Param: 5}, 64},     // chord takes no parameter
		{Spec{Name: "hypercube", Param: 4}, 16}, // hypercube takes no parameter
		{Spec{Name: "nope"}, 64},
	}
	for _, c := range cases {
		if err := Check(c.spec, c.n); err == nil {
			t.Fatalf("Check(%v, %d) accepted", c.spec, c.n)
		}
		if _, err := Build(c.spec, c.n, 1); err == nil {
			t.Fatalf("Build(%v, %d) accepted", c.spec, c.n)
		}
	}
}

func TestNamesCatalog(t *testing.T) {
	names := Names()
	joined := strings.Join(names, ",")
	for _, want := range []string{"chord", "torus", "hypercube", "regular", "smallworld", "ring", "scalefree"} {
		if !strings.Contains(joined, want) {
			t.Fatalf("Names() = %v missing %s", names, want)
		}
	}
}
