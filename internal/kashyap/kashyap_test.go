package kashyap

import (
	"math"
	"testing"

	"drrgossip/internal/agg"
	"drrgossip/internal/sim"
)

func TestBuildForestValid(t *testing.T) {
	eng := sim.NewEngine(2048, sim.Options{Seed: 91})
	f, rootTo, stats, err := BuildForest(eng, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Validate(); err != nil {
		t.Fatal(err)
	}
	if f.NumMembers() != 2048 {
		t.Fatalf("members = %d", f.NumMembers())
	}
	for i := 0; i < 2048; i++ {
		if rootTo[i] != f.RootOf(i) {
			t.Fatalf("rootTo[%d] = %d, want %d", i, rootTo[i], f.RootOf(i))
		}
	}
	if stats.Rounds == 0 || stats.Messages == 0 {
		t.Fatal("empty build stats")
	}
}

func TestClusterSizesCapped(t *testing.T) {
	n := 4096
	eng := sim.NewEngine(n, sim.Options{Seed: 92})
	f, _, _, err := BuildForest(eng, Options{})
	if err != nil {
		t.Fatal(err)
	}
	cap := 4 * int(math.Ceil(math.Log2(float64(n))))
	for root, size := range f.TreeSizes() {
		if size > cap {
			t.Fatalf("cluster %d has size %d > cap %d", root, size, cap)
		}
	}
}

func TestClusterCountShrinks(t *testing.T) {
	// The point of the clustering: far fewer clusters than nodes.
	n := 8192
	eng := sim.NewEngine(n, sim.Options{Seed: 93})
	f, _, _, err := BuildForest(eng, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if f.NumTrees() > n/3 {
		t.Fatalf("clustering left %d roots of %d nodes", f.NumTrees(), n)
	}
}

func TestBuildTimeBudget(t *testing.T) {
	// Phase-padded schedule: rounds = phases * budget (+ slack when a
	// broadcast overruns).
	n := 4096
	eng := sim.NewEngine(n, sim.Options{Seed: 94})
	opts := Options{}
	_, _, stats, err := BuildForest(eng, opts)
	if err != nil {
		t.Fatal(err)
	}
	expect := opts.phases(n) * opts.phaseBudget(n)
	if stats.Rounds < expect {
		t.Fatalf("rounds %d below synchronous schedule %d", stats.Rounds, expect)
	}
	if stats.Rounds > 3*expect {
		t.Fatalf("rounds %d far above schedule %d", stats.Rounds, expect)
	}
}

func TestBuildMessageComplexity(t *testing.T) {
	// O(n log log n): per-node messages must be a small multiple of
	// loglog n and clearly below log n.
	n := 16384
	eng := sim.NewEngine(n, sim.Options{Seed: 95})
	_, _, stats, err := BuildForest(eng, Options{})
	if err != nil {
		t.Fatal(err)
	}
	perNode := float64(stats.Messages) / float64(n)
	loglog := math.Log2(math.Log2(float64(n)))
	if perNode > 6*loglog {
		t.Fatalf("messages per node %v > 6 loglog n = %v", perNode, 6*loglog)
	}
}

func TestMaxEndToEnd(t *testing.T) {
	n := 2048
	eng := sim.NewEngine(n, sim.Options{Seed: 96})
	values := agg.GenUniform(n, -100, 100, 1)
	res, err := Max(eng, values, Options{})
	if err != nil {
		t.Fatal(err)
	}
	want := agg.Exact(agg.Max, values, 0)
	if res.Value != want || !res.Consensus {
		t.Fatalf("Max = %v (consensus %v), want %v", res.Value, res.Consensus, want)
	}
}

func TestAveEndToEnd(t *testing.T) {
	n := 2048
	eng := sim.NewEngine(n, sim.Options{Seed: 97})
	values := agg.GenUniform(n, 0, 1000, 2)
	res, err := Ave(eng, values, Options{})
	if err != nil {
		t.Fatal(err)
	}
	want := agg.Exact(agg.Average, values, 0)
	if e := agg.RelError(res.Value, want); e > 1e-6 {
		t.Fatalf("Ave = %v, want %v (rel err %v)", res.Value, want, e)
	}
	if !res.Consensus {
		t.Fatal("no consensus")
	}
}

func TestMaxUnderLoss(t *testing.T) {
	n := 1024
	eng := sim.NewEngine(n, sim.Options{Seed: 98, Loss: 0.1})
	values := agg.GenUniform(n, 0, 500, 3)
	res, err := Max(eng, values, Options{})
	if err != nil {
		t.Fatal(err)
	}
	want := agg.Exact(agg.Max, values, 0)
	if res.Value != want {
		t.Fatalf("Max = %v, want %v under loss", res.Value, want)
	}
}

func TestWithCrashes(t *testing.T) {
	n := 2048
	eng := sim.NewEngine(n, sim.Options{Seed: 99, CrashFrac: 0.2})
	values := agg.GenUniform(n, 0, 100, 4)
	res, err := Max(eng, values, Options{})
	if err != nil {
		t.Fatal(err)
	}
	want := agg.Exact(agg.Max, agg.Subset(values, eng.AliveIDs()), 0)
	if res.Value != want {
		t.Fatalf("Max = %v, want alive-max %v", res.Value, want)
	}
}

func TestDeterminism(t *testing.T) {
	n := 512
	values := agg.GenUniform(n, 0, 1, 5)
	run := func() *Result {
		eng := sim.NewEngine(n, sim.Options{Seed: 100})
		res, err := Ave(eng, values, Options{})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if a.Value != b.Value || a.Stats != b.Stats {
		t.Fatal("nondeterministic run")
	}
}

func TestValidation(t *testing.T) {
	eng := sim.NewEngine(16, sim.Options{Seed: 101})
	if _, err := Max(eng, make([]float64, 4), Options{}); err == nil {
		t.Fatal("length mismatch accepted")
	}
}

func BenchmarkKashyapMax(b *testing.B) {
	n := 4096
	values := agg.GenUniform(n, 0, 1, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng := sim.NewEngine(n, sim.Options{Seed: uint64(i)})
		if _, err := Max(eng, values, Options{}); err != nil {
			b.Fatal(err)
		}
	}
}
