// Package kashyap implements the "efficient gossip" baseline of Kashyap,
// Deb, Naidu, Rastogi and Srinivasan (PODS 2006) — the O(n log log n)
// message, O(log n log log n) time comparator of Table 1.
//
// The original paper is a closed comparator; this is a reconstruction
// from its published contract, which the reproduced paper restates:
// randomly cluster the nodes into groups of size O(log n), then let the
// group representatives gossip (DESIGN.md §4, substitution 2).
//
// Structure: Θ(log log n) synchronous merge phases build clusters
// (trees). In each phase every cluster root flips a proposer/acceptor
// coin (Boruvka-style symmetry breaking: proposal edges go proposer ->
// acceptor, so no cycles); proposers sample a random node, learn its
// root, and ask it to adopt their tree; acceptors adopt any number of
// trees up to a size cap of Θ(log n). Each phase ends with a root-address
// broadcast and is padded to a fixed Θ(log n) round budget — the
// synchronous schedule that gives the algorithm its Θ(log n log log n)
// running time. Messages: O(#roots + n) per phase = O(n log log n) total.
// Phases II/III then reuse the same convergecast and root-gossip
// machinery as DRR-gossip, so Table 1 measures exactly the cost of the
// different Phase I constructions.
package kashyap

import (
	"errors"
	"fmt"
	"math"

	"drrgossip/internal/convergecast"
	"drrgossip/internal/forest"
	"drrgossip/internal/gossip"
	"drrgossip/internal/sim"
)

// Options tune the baseline; zero values pick contract-scaled defaults.
type Options struct {
	Phases         int // merge phases (0 = ceil(log2 log2 n), min 2)
	MergeSubRounds int // merge attempts per phase (0 = 3)
	SizeCap        int // cluster size cap (0 = 4 log2 n)
	PhaseBudget    int // rounds per phase (0 = ceil(log2 n) + 4)
	Convergecast   convergecast.Options
	Gossip         gossip.Options
	AveRounds      int
}

// Result mirrors the DRR-gossip result shape for the harness.
type Result struct {
	Value     float64
	PerNode   []float64
	Consensus bool
	Forest    *forest.Forest
	// BuildStats covers the cluster construction (this algorithm's
	// phase I); Stats covers the whole run.
	BuildStats sim.Counters
	Stats      sim.Counters
}

// ErrNoNodes is returned when no node is alive.
var ErrNoNodes = errors.New("kashyap: no alive nodes")

const (
	kindWhoIsRoot uint8 = 0x61
	kindPropose   uint8 = 0x62
)

func ceilLog2(n int) int {
	l := int(math.Ceil(math.Log2(float64(n))))
	if l < 1 {
		l = 1
	}
	return l
}

func (o Options) phases(n int) int {
	if o.Phases != 0 {
		return o.Phases
	}
	p := int(math.Ceil(math.Log2(float64(ceilLog2(n)))))
	if p < 2 {
		p = 2
	}
	return p
}

func (o Options) subRounds() int {
	if o.MergeSubRounds != 0 {
		return o.MergeSubRounds
	}
	return 3
}

func (o Options) sizeCap(n int) int {
	if o.SizeCap != 0 {
		return o.SizeCap
	}
	return 4 * ceilLog2(n)
}

func (o Options) phaseBudget(n int) int {
	if o.PhaseBudget != 0 {
		return o.PhaseBudget
	}
	return ceilLog2(n) + 4
}

// BuildForest runs the clustering phases and returns the cluster forest
// plus each node's root address.
func BuildForest(eng *sim.Engine, opts Options) (*forest.Forest, []int, sim.Counters, error) {
	n := eng.N()
	start := eng.Stats()
	parent := make([]int, n)
	rootTo := make([]int, n) // current root-address knowledge per node
	size := make([]int, n)   // cluster size, maintained at roots
	for i := 0; i < n; i++ {
		if eng.Alive(i) {
			parent[i] = forest.Root
			rootTo[i] = i
			size[i] = 1
		} else {
			parent[i] = forest.NotMember
			rootTo[i] = -1
		}
	}
	isRoot := func(i int) bool { return parent[i] == forest.Root }
	calls := make([]sim.Call, n)
	sizeCap := opts.sizeCap(n)

	for phase := 0; phase < opts.phases(n); phase++ {
		phaseStart := eng.Round()
		for sub := 0; sub < opts.subRounds(); sub++ {
			// Role flip: proposers seek adoption, acceptors adopt.
			proposer := make([]bool, n)
			learned := make([]int, n) // sampled node's root, -1 unknown
			for i := 0; i < n; i++ {
				learned[i] = -1
				if eng.Alive(i) && isRoot(i) {
					proposer[i] = eng.RNG(i).Bool(0.5)
				}
			}
			// Step 1: proposers sample a random node and ask for its root.
			eng.Tick()
			for i := 0; i < n; i++ {
				calls[i] = sim.Call{}
				if eng.Alive(i) && isRoot(i) && proposer[i] {
					u := eng.RNG(i).IntnOther(n, i)
					calls[i] = sim.Call{Active: true, To: u, Pay: sim.Payload{Kind: kindWhoIsRoot}}
				}
			}
			eng.ResolveCalls(calls,
				func(callee, caller int, req sim.Payload) (sim.Payload, bool) {
					return sim.Payload{Kind: kindWhoIsRoot, X: int64(rootTo[callee])}, true
				},
				func(caller int, resp sim.Payload) {
					learned[caller] = int(resp.X)
				})
			// Step 2: proposers ask the learned root to adopt their tree.
			eng.Tick()
			for i := 0; i < n; i++ {
				calls[i] = sim.Call{}
				if eng.Alive(i) && isRoot(i) && proposer[i] && learned[i] >= 0 && learned[i] != i {
					calls[i] = sim.Call{Active: true, To: learned[i], Pay: sim.Payload{Kind: kindPropose, X: int64(size[i])}}
				}
			}
			eng.ResolveCalls(calls,
				func(callee, caller int, req sim.Payload) (sim.Payload, bool) {
					// Adopt only while a root, an acceptor, and under cap.
					if !isRoot(callee) || proposer[callee] || size[callee]+int(req.X) > sizeCap {
						return sim.Payload{}, false
					}
					size[callee] += int(req.X)
					return sim.Payload{Kind: kindPropose}, true
				},
				func(caller int, resp sim.Payload) {
					parent[caller] = learned[caller]
				})
		}
		// Refresh root-address knowledge down the merged trees.
		f, err := forest.FromParents(parent)
		if err != nil {
			return nil, nil, eng.Stats().Sub(start), fmt.Errorf("kashyap: invalid forest: %w", err)
		}
		fresh, _, err := convergecast.BroadcastRootAddr(eng, f, opts.Convergecast)
		if err != nil {
			return nil, nil, eng.Stats().Sub(start), err
		}
		rootTo = fresh
		// Pad to the synchronous phase budget (idle rounds still tick).
		for eng.Round()-phaseStart < opts.phaseBudget(n) {
			eng.Tick()
		}
	}
	f, err := forest.FromParents(parent)
	if err != nil {
		return nil, nil, eng.Stats().Sub(start), fmt.Errorf("kashyap: invalid forest: %w", err)
	}
	return f, rootTo, eng.Stats().Sub(start), nil
}

// Max computes the global maximum with efficient gossip.
func Max(eng *sim.Engine, values []float64, opts Options) (*Result, error) {
	if len(values) != eng.N() {
		return nil, fmt.Errorf("kashyap: %d values for %d nodes", len(values), eng.N())
	}
	runStart := eng.Stats()
	f, rootTo, build, err := BuildForest(eng, opts)
	if err != nil {
		return nil, err
	}
	if f.NumTrees() == 0 {
		return nil, ErrNoNodes
	}
	covmax, _, err := convergecast.Max(eng, f, values, opts.Convergecast)
	if err != nil {
		return nil, err
	}
	gres, err := gossip.Max(eng, f, rootTo, covmax, opts.Gossip)
	if err != nil {
		return nil, err
	}
	perNode, _, err := convergecast.BroadcastValue(eng, f, gres.Estimates, opts.Convergecast)
	if err != nil {
		return nil, err
	}
	return finish(eng, f, perNode[f.LargestRoot()], perNode, build, runStart), nil
}

// Ave computes the global average with efficient gossip, following the
// same elect/push-sum/spread structure as DRR-gossip-ave.
func Ave(eng *sim.Engine, values []float64, opts Options) (*Result, error) {
	if len(values) != eng.N() {
		return nil, fmt.Errorf("kashyap: %d values for %d nodes", len(values), eng.N())
	}
	runStart := eng.Stats()
	f, rootTo, build, err := BuildForest(eng, opts)
	if err != nil {
		return nil, err
	}
	if f.NumTrees() == 0 {
		return nil, ErrNoNodes
	}
	covsum, _, err := convergecast.Sum(eng, f, values, opts.Convergecast)
	if err != nil {
		return nil, err
	}
	keys := make(map[int]float64, f.NumTrees())
	for r, sc := range covsum {
		keys[r] = float64(int(sc.Count))*(1<<24) + float64(r)
	}
	kres, err := gossip.Max(eng, f, rootTo, keys, opts.Gossip)
	if err != nil {
		return nil, err
	}
	maxKey := math.Inf(-1)
	for _, v := range kres.Estimates {
		if v > maxKey {
			maxKey = v
		}
	}
	z := int(int64(maxKey) & (1<<24 - 1))
	if !f.IsRoot(z) {
		return nil, fmt.Errorf("kashyap: elected node %d is not a root", z)
	}
	ares, err := gossip.Ave(eng, f, rootTo, covsum, gossip.AveOptions{Rounds: opts.AveRounds, TrackRoot: -1})
	if err != nil {
		return nil, err
	}
	sres, err := gossip.Spread(eng, f, rootTo, z, ares.Estimates[z], opts.Gossip)
	if err != nil {
		return nil, err
	}
	perNode, _, err := convergecast.BroadcastValue(eng, f, sres.Estimates, opts.Convergecast)
	if err != nil {
		return nil, err
	}
	return finish(eng, f, ares.Estimates[z], perNode, build, runStart), nil
}

func finish(eng *sim.Engine, f *forest.Forest, value float64, perNode []float64, build, runStart sim.Counters) *Result {
	consensus := true
	for i, v := range perNode {
		if f.Member(i) && (v != value || math.IsNaN(v)) {
			consensus = false
			break
		}
	}
	return &Result{
		Value:      value,
		PerNode:    perNode,
		Consensus:  consensus,
		Forest:     f,
		BuildStats: build,
		Stats:      eng.Stats().Sub(runStart),
	}
}
