// The invariant library: what must hold of every answer a case
// produces, graded by how much the case's fault plan can legitimately
// degrade. Soundness rules the grading — an invariant is only asserted
// where the protocol actually guarantees it, so a reported violation is
// a real bug, never fuzzing noise:
//
//   - healthy tier (no plan, no loss): answers are exact (Max/Min to
//     the bit, Count = n, push-sum results to relerr 1e-5).
//   - stable tier (plan changes no membership — loss bursts, flaky
//     regions, partitions, link cuts): Max/Min still report a value
//     from the input multiset, Average stays inside the input convex
//     hull (push-sum ratios are convex combinations as long as nobody
//     crashes), Sum/Count/Rank stay finite and non-negative.
//   - churn tier (crashes, rejoins, Poisson churn): only the universal
//     invariants below.
//
// Universal (all tiers): every query terminates inside the round-budget
// backstop; histogram counts are non-negative, sum to the measured
// population, and agree with an independently-run Rank; answers are
// bit-identical under replay and across RunAll worker counts; the async
// engine's partial means stay in the convex hull; and the Quality block
// obeys its contract (never NaN, Partial ⇔ an abort reason).

package chaos

import (
	"fmt"
	"math"

	"drrgossip"
	"drrgossip/internal/agg"
	"drrgossip/internal/faults"
)

// SyncBudget is the Config.RoundBudget backstop the synchronous battery
// runs under: two orders of magnitude above any legitimate run (a few
// hundred rounds at n=256), so tripping it means the run wedged. The
// async leg runs without it — the event engine caps itself.
const SyncBudget = 50_000

// countSlack bounds how far Sum/Count/Rank answers may overshoot their
// population under non-membership faults (heavy loss skews push-sum
// ratios in both directions before the budgeted rounds run out).
// Calibrated over 2000 generated cases; see chaos_test.go.
const countSlack = 2.0

// Violation is one invariant breach of one case.
type Violation struct {
	// Invariant names the breached invariant (stable identifier).
	Invariant string
	// Detail is the human-readable specifics.
	Detail string
}

func (v Violation) String() string { return v.Invariant + ": " + v.Detail }

// tier classifies how much the case's plan may legitimately degrade
// answers (see the package comment of this file).
type tier int

const (
	tierHealthy tier = iota // no plan, no loss: exactness holds
	tierStable              // faults but stable membership: soundness holds
	tierChurn               // membership changes: universal invariants only
)

// TierNames are the display names of the invariant tiers, indexed like
// Report.ByTier and Case.Tier.
var TierNames = [3]string{"healthy", "membership-stable", "churn"}

// Tier returns the case's invariant tier as an index into TierNames and
// Report.ByTier: 0 healthy, 1 membership-stable, 2 churn.
func (c Case) Tier() int { return int(c.tier()) }

func (c Case) tier() tier {
	if c.Plan.Empty() && c.Loss == 0 {
		return tierHealthy
	}
	if c.Plan != nil {
		for _, ev := range c.Plan.Events {
			switch ev.Kind {
			case faults.Crash, faults.Rejoin, faults.ChurnKind:
				return tierChurn
			}
		}
	}
	return tierStable
}

// battery is the query set every case runs, with the value dataset and
// its exact statistics.
type battery struct {
	values  []float64
	min     float64
	max     float64
	sum     float64
	inSet   map[uint64]bool // Float64bits of every input value
	queries []drrgossip.Query
}

// batteryEdges are the histogram edges and the rank/quantile probes —
// interior points of the GenUniform(0,1000) value range.
var batteryEdges = []float64{250, 500, 750}

const (
	batteryRankProbe   = 500.0
	batteryQuantilePhi = 0.5
	batteryQuantileTol = 25.0
)

// batteryQueryNames index the battery positionally (the checks below
// pick answers out by these offsets).
const (
	qMax = iota
	qMin
	qSum
	qCount
	qAverage
	qRank
	qHistogram
	qQuantile
)

func newBattery(c Case) *battery {
	b := &battery{values: agg.GenUniform(c.N, 0, 1000, c.Seed^0xDA7A)}
	b.min, b.max = math.Inf(1), math.Inf(-1)
	b.inSet = make(map[uint64]bool, len(b.values))
	for _, v := range b.values {
		b.sum += v
		b.min = math.Min(b.min, v)
		b.max = math.Max(b.max, v)
		b.inSet[math.Float64bits(v)] = true
	}
	b.queries = []drrgossip.Query{
		drrgossip.MaxOf(b.values),
		drrgossip.MinOf(b.values),
		drrgossip.SumOf(b.values),
		drrgossip.CountOf(b.values),
		drrgossip.AverageOf(b.values),
		drrgossip.RankOf(b.values, batteryRankProbe),
		drrgossip.HistogramOf(b.values, batteryEdges),
		drrgossip.QuantileOf(b.values, batteryQuantilePhi, batteryQuantileTol),
	}
	return b
}

// CheckCase runs the full battery on both engines and returns every
// invariant violation (nil for a clean case). The returned violations
// describe the case as given; the fuzzer shrinks failing cases before
// reporting them.
func CheckCase(c Case) []Violation {
	var vs []Violation
	fail := func(inv, format string, args ...any) {
		vs = append(vs, Violation{inv, fmt.Sprintf(format, args...)})
	}
	if c.N < 2 {
		fail("harness", "n=%d below the minimum network size", c.N)
		return vs
	}
	b := newBattery(c)

	// Synchronous battery.
	nw, err := drrgossip.New(c.config(SyncBudget))
	if err != nil {
		fail("harness", "New: %v", err)
		return vs
	}
	answers := make([]*drrgossip.Answer, len(b.queries))
	for i, q := range b.queries {
		ans, err := nw.Run(q)
		if err != nil {
			fail("termination", "%s: %v", q.Op, err)
			return vs
		}
		answers[i] = ans
		checkQuality(c, q.Op.String(), ans, fail)
	}
	checkSyncValues(c, b, answers, fail)
	checkHistogramConsistency(b, answers, fail)
	checkQuantileMethods(c, b, answers, fail)
	checkDeterminism(c, b, answers, fail)
	checkAsync(c, b, fail)
	return vs
}

// checkQuality asserts the degradation contract on one answer: the
// backstopped battery must terminate properly (a round-budget abort at
// SyncBudget means the run wedged), and the Quality block must be
// internally consistent and NaN-free.
func checkQuality(c Case, op string, ans *drrgossip.Answer, fail func(string, string, ...any)) {
	q := ans.Quality
	if q.Partial || q.Reason != "" {
		fail("termination", "%s wedged: aborted by %q after %d rounds (budget %d)",
			op, q.Reason, ans.Cost.Rounds, SyncBudget)
		return
	}
	if q.Converged != ans.Converged {
		fail("quality", "%s: Quality.Converged %v but Answer.Converged %v", op, q.Converged, ans.Converged)
	}
	if q.AliveFraction <= 0 || q.AliveFraction > 1 || math.IsNaN(q.AliveFraction) {
		fail("quality", "%s: AliveFraction %v out of (0,1]", op, q.AliveFraction)
	}
	if q.SurvivorBound < 0 || q.SurvivorBound > 1 || math.IsNaN(q.SurvivorBound) {
		fail("quality", "%s: SurvivorBound %v out of [0,1]", op, q.SurvivorBound)
	}
	if math.IsNaN(q.Residual) {
		fail("quality", "%s: Residual is NaN", op)
	}
}

// checkSyncValues asserts the tier-graded value invariants on the
// synchronous answers.
func checkSyncValues(c Case, b *battery, answers []*drrgossip.Answer, fail func(string, string, ...any)) {
	n := float64(c.N)
	maxV, minV := answers[qMax].Value, answers[qMin].Value
	sumV, countV, aveV := answers[qSum].Value, answers[qCount].Value, answers[qAverage].Value
	rankV, quantV := answers[qRank].Value, answers[qQuantile].Value

	// Universal: every single-value answer is finite (Histogram's Value
	// is NaN by contract and carries its data in Counts).
	for _, i := range []int{qMax, qMin, qSum, qCount, qAverage, qRank, qQuantile} {
		if math.IsNaN(answers[i].Value) || math.IsInf(answers[i].Value, 0) {
			fail("finite", "%s reported %v", answers[i].Op, answers[i].Value)
			return
		}
	}
	// Universal: Max/Min only ever propagate input values.
	if !b.inSet[math.Float64bits(maxV)] {
		fail("max-membership", "Max %v is not an input value", maxV)
	}
	if !b.inSet[math.Float64bits(minV)] {
		fail("min-membership", "Min %v is not an input value", minV)
	}
	// Universal: non-negative inputs keep every mass estimate
	// non-negative, and population estimates cannot run away.
	if sumV < 0 || countV <= 0 || rankV < 0 {
		fail("mass-sign", "Sum %v / Count %v / Rank %v negative on non-negative inputs", sumV, countV, rankV)
	}
	if countV > countSlack*n || rankV > countSlack*n {
		fail("population-bound", "Count %v / Rank %v exceed %gx the population %d", countV, rankV, countSlack, c.N)
	}
	if answers[qQuantile].Converged && (quantV < minV-1e-9 || quantV > maxV+1e-9) {
		fail("quantile-range", "Quantile %v outside reported [Min,Max]=[%v,%v]", quantV, minV, maxV)
	}

	switch c.tier() {
	case tierHealthy:
		// Rank cross-consistency: both quantile drivers converge on a
		// value whose true rank covers the target — bisection keeps the
		// upper bracket end (rank >= t by the loop invariant), HMS
		// certifies the exact order statistic.
		target := int(math.Ceil(batteryQuantilePhi * n))
		if got := exactRank(b.values, quantV); got < target {
			fail("quantile-rank", "healthy Quantile[%s] %v has rank %d < target %d",
				c.QuantileMethod, quantV, got, target)
		}
		exactQ := agg.Quantile(b.values, batteryQuantilePhi)
		if c.QuantileMethod == drrgossip.QuantileHMS {
			if quantV != exactQ {
				fail("exact", "healthy Quantile[hms] = %v, want exactly %v", quantV, exactQ)
			}
		} else if math.Abs(quantV-exactQ) > batteryQuantileTol {
			fail("exact", "healthy Quantile[bisect] = %v, want %v within tol %g",
				quantV, exactQ, batteryQuantileTol)
		}
		if maxV != b.max || minV != b.min {
			fail("exact", "healthy Max/Min = %v/%v, want %v/%v", maxV, minV, b.max, b.min)
		}
		if math.Round(countV) != n {
			fail("exact", "healthy Count = %v, want %d", countV, c.N)
		}
		if relerr(sumV, b.sum) > 1e-5 {
			fail("exact", "healthy Sum = %v, want %v (relerr %g)", sumV, b.sum, relerr(sumV, b.sum))
		}
		if relerr(aveV, b.sum/n) > 1e-5 {
			fail("exact", "healthy Average = %v, want %v", aveV, b.sum/n)
		}
		if math.Round(rankV) != float64(exactRank(b.values, batteryRankProbe)) {
			fail("exact", "healthy Rank(%g) = %v, want %d", batteryRankProbe, rankV, exactRank(b.values, batteryRankProbe))
		}
	case tierStable:
		// No crashes: push-sum ratios are convex combinations of the
		// inputs, so the average cannot leave the input hull.
		if aveV < b.min-1e-9 || aveV > b.max+1e-9 {
			fail("average-hull", "Average %v outside input hull [%v,%v] under membership-stable plan", aveV, b.min, b.max)
		}
	}
}

// checkQuantileMethods is the differential invariant of the quantile
// drivers: the case's method answered in the battery; here the OTHER
// method answers the same query on a fresh session, and the two must
// agree within 2x the query tolerance. Gated to the non-churn tiers —
// under membership churn each driver's step sequence replays the plan
// at different round offsets, so their surviving populations (and hence
// their quantiles) may legitimately differ.
func checkQuantileMethods(c Case, b *battery, answers []*drrgossip.Answer, fail func(string, string, ...any)) {
	if c.tier() == tierChurn {
		return
	}
	other := c
	if c.QuantileMethod == drrgossip.QuantileHMS {
		other.QuantileMethod = drrgossip.QuantileBisect
	} else {
		other.QuantileMethod = drrgossip.QuantileHMS
	}
	nw, err := drrgossip.New(other.config(SyncBudget))
	if err != nil {
		fail("harness", "cross-method New: %v", err)
		return
	}
	ans, err := nw.Run(b.queries[qQuantile])
	if err != nil {
		fail("termination", "Quantile[%s]: %v", other.QuantileMethod, err)
		return
	}
	mine := answers[qQuantile]
	if !mine.Converged || !ans.Converged {
		return // an honest non-convergence is a looser answer, not a disagreement
	}
	if d := math.Abs(ans.Value - mine.Value); d > 2*batteryQuantileTol {
		fail("quantile-methods", "Quantile[%s] %v vs Quantile[%s] %v differ by %v > 2·tol",
			c.QuantileMethod, mine.Value, other.QuantileMethod, ans.Value, d)
	}
}

// checkHistogramConsistency asserts the cross-query count invariants
// every tier guarantees: bucket counts are non-negative, they sum to
// the histogram's own population measurement, the cumulative counts
// agree with an independently-run Rank at the shared edge, and in the
// healthy tier they match the exact histogram.
func checkHistogramConsistency(b *battery, answers []*drrgossip.Answer, fail func(string, string, ...any)) {
	hist := answers[qHistogram]
	if len(hist.Counts) != len(batteryEdges)+1 {
		fail("histogram-shape", "got %d buckets, want %d", len(hist.Counts), len(batteryEdges)+1)
		return
	}
	total := 0.0
	for i, cnt := range hist.Counts {
		if cnt < -1e-6 {
			fail("histogram-negative", "bucket %d count %v", i, cnt)
		}
		total += cnt
	}
	// The battery's Count answer replays the same deterministic dynamics
	// as the histogram's own population run, so the two agree exactly.
	if countV := math.Round(answers[qCount].Value); math.Abs(total-countV) > 1e-6 {
		fail("histogram-count", "bucket counts sum to %v but Count measures %v", total, countV)
	}
	// Counts[0]+Counts[1] is the histogram's cumulative count at edge
	// 500 — the same measurement the standalone Rank(500) makes.
	if cum := hist.Counts[0] + hist.Counts[1]; math.Abs(cum-math.Round(answers[qRank].Value)) > 1e-6 {
		fail("histogram-rank", "cumulative count at %g is %v but Rank says %v",
			batteryRankProbe, cum, math.Round(answers[qRank].Value))
	}
}

// checkDeterminism replays the battery on a fresh session and again
// through RunAll's concurrent path, asserting bit-identical answers —
// the repo-wide determinism contract extended to every faulted case.
func checkDeterminism(c Case, b *battery, answers []*drrgossip.Answer, fail func(string, string, ...any)) {
	replay, err := drrgossip.New(c.config(SyncBudget))
	if err != nil {
		fail("harness", "replay New: %v", err)
		return
	}
	for i, q := range b.queries {
		again, err := replay.Run(q)
		if err != nil {
			fail("determinism-replay", "%s errored on replay only: %v", q.Op, err)
			return
		}
		if diff := answerDiff(answers[i], again); diff != "" {
			fail("determinism-replay", "%s drifted across replays: %s", q.Op, diff)
		}
	}
	parallel, err := drrgossip.New(c.config(SyncBudget))
	if err != nil {
		fail("harness", "parallel New: %v", err)
		return
	}
	par, _, err := parallel.RunAll(b.queries, drrgossip.BatchOptions{Parallelism: 4})
	if err != nil {
		fail("determinism-workers", "RunAll(workers=4) errored: %v", err)
		return
	}
	for i := range par {
		if diff := answerDiff(answers[i], par[i]); diff != "" {
			fail("determinism-workers", "%s drifted under workers=4: %s", b.queries[i].Op, diff)
		}
	}
}

// checkAsync runs the case's Average on the asynchronous engine (both
// engines see every case) and asserts the pairwise-averaging
// invariants: termination inside the engine's own event cap, estimates
// inside the input convex hull (exchanges are convex combinations even
// across crash boundaries), healthy-tier mean preservation, and replay
// determinism.
func checkAsync(c Case, b *battery, fail func(string, string, ...any)) {
	cfg := c.config(0)
	cfg.Mode = drrgossip.Async
	run := func() *drrgossip.Answer {
		nw, err := drrgossip.New(cfg)
		if err != nil {
			fail("harness", "async New: %v", err)
			return nil
		}
		ans, err := nw.Run(drrgossip.AverageOf(b.values))
		if err != nil {
			fail("termination", "async Average: %v", err)
			return nil
		}
		return ans
	}
	ans := run()
	if ans == nil {
		return
	}
	if math.IsNaN(ans.Value) || math.IsInf(ans.Value, 0) {
		fail("finite", "async Average reported %v", ans.Value)
		return
	}
	if ans.Value < b.min-1e-6 || ans.Value > b.max+1e-6 {
		fail("async-hull", "async Average %v outside input hull [%v,%v]", ans.Value, b.min, b.max)
	}
	if math.IsNaN(ans.Quality.Residual) || ans.Quality.Residual < 0 {
		fail("quality", "async Residual %v", ans.Quality.Residual)
	}
	if c.tier() == tierHealthy {
		// Mean preservation holds on every topology (each exchange is a
		// convex, sum-conserving update); convergence inside the default
		// event cap is only guaranteed on Complete — pairwise averaging
		// mixes slowly on grid-like overlays, and that slowness is a
		// measured property (AS1), not a violation.
		mean := b.sum / float64(c.N)
		if relerr(ans.Value, mean) > 1e-6 {
			fail("async-mean", "healthy async Average %v, want %v (relerr %g)", ans.Value, mean, relerr(ans.Value, mean))
		}
		if c.Topology == drrgossip.Complete && !ans.Converged {
			fail("async-convergence", "healthy async Average did not converge on Complete (spread %v after %d events)",
				ans.Quality.Residual, ans.Cost.Rounds)
		}
	}
	if again := run(); again != nil {
		if diff := answerDiff(ans, again); diff != "" {
			fail("determinism-replay", "async Average drifted across replays: %s", diff)
		}
	}
}

// answerDiff compares two answers bit-for-bit (NaN-safe) and describes
// the first divergence, or returns "" when identical.
func answerDiff(a, b *drrgossip.Answer) string {
	if math.Float64bits(a.Value) != math.Float64bits(b.Value) {
		return fmt.Sprintf("Value %v vs %v", a.Value, b.Value)
	}
	if a.Cost != b.Cost {
		return fmt.Sprintf("Cost %+v vs %+v", a.Cost, b.Cost)
	}
	if a.Alive != b.Alive || a.Converged != b.Converged || a.Consensus != b.Consensus {
		return fmt.Sprintf("state (alive %d conv %v cons %v) vs (alive %d conv %v cons %v)",
			a.Alive, a.Converged, a.Consensus, b.Alive, b.Converged, b.Consensus)
	}
	if a.FaultEvents != b.FaultEvents || a.FaultCrashes != b.FaultCrashes || a.FaultRevives != b.FaultRevives {
		return fmt.Sprintf("fault counters %d/%d/%d vs %d/%d/%d",
			a.FaultEvents, a.FaultCrashes, a.FaultRevives, b.FaultEvents, b.FaultCrashes, b.FaultRevives)
	}
	if a.Quality != b.Quality {
		return fmt.Sprintf("Quality %+v vs %+v", a.Quality, b.Quality)
	}
	if len(a.Counts) != len(b.Counts) {
		return fmt.Sprintf("Counts len %d vs %d", len(a.Counts), len(b.Counts))
	}
	for i := range a.Counts {
		if math.Float64bits(a.Counts[i]) != math.Float64bits(b.Counts[i]) {
			return fmt.Sprintf("Counts[%d] %v vs %v", i, a.Counts[i], b.Counts[i])
		}
	}
	return ""
}

// relerr is the relative error of got against want (absolute error when
// want is ~0).
func relerr(got, want float64) float64 {
	d := math.Abs(got - want)
	if math.Abs(want) < 1 {
		return d
	}
	return d / math.Abs(want)
}

// exactRank counts values <= probe — the survivor-exact Rank reference.
func exactRank(values []float64, probe float64) int {
	k := 0
	for _, v := range values {
		if v <= probe {
			k++
		}
	}
	return k
}
