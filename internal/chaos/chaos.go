// Package chaos is the property-based fault-plan fuzzer: it generates
// seed-reproducible (config, plan) cases, runs the full query battery
// on both execution engines, checks an invariant library (termination,
// value-range and mass soundness, histogram/rank cross-consistency,
// bit-exact determinism under replay and across worker counts, the
// Quality degradation contract), and delta-debugs any failing case down
// to a minimal reproducer whose one-line form is checked into a
// regression corpus (testdata/regressions.txt) and replayed by CI.
//
// Everything a case needs is encoded in one parseable line —
//
//	n=64 topo=chord seed=11 loss=0.05 plan=crash:0.2@0.5;rejoin@0.9
//
// — so a failure found by the fuzzer anywhere (CI, a long local soak)
// reproduces everywhere with `chaosfuzz -case "<line>"`.
package chaos

import (
	"fmt"
	"strconv"
	"strings"

	"drrgossip"
	"drrgossip/internal/faults"
)

// Case is one fuzz case: a complete, self-describing network
// configuration plus a symbolic fault plan. The zero Loss/nil Plan case
// is the healthy control the strictest invariants run against.
type Case struct {
	// N is the network size.
	N int
	// Topology is the overlay (Complete, Chord, Torus, ...).
	Topology drrgossip.Topology
	// Seed drives every random decision of the case: the engine streams,
	// the plan's node selections, and the input values.
	Seed uint64
	// Loss is the baseline per-message drop probability.
	Loss float64
	// QuantileMethod selects the battery's quantile driver (bisection
	// golden reference or the HMS sampling protocol); the invariant
	// library cross-checks the two on every non-churn case.
	QuantileMethod drrgossip.QuantileMethod
	// Plan is the symbolic fault plan (nil for the healthy control).
	Plan *faults.Plan
}

// String renders the case as its one-line reproducer form, parseable by
// ParseCase. The plan field comes last because its spec is the only
// field with internal structure.
func (c Case) String() string {
	plan := "none"
	if !c.Plan.Empty() {
		plan = c.Plan.String()
	}
	qm := ""
	if c.QuantileMethod != drrgossip.QuantileBisect {
		// The default method is omitted so every pre-existing corpus
		// line stays canonical.
		qm = fmt.Sprintf("qm=%s ", c.QuantileMethod)
	}
	return fmt.Sprintf("n=%d topo=%s seed=%d loss=%s %splan=%s",
		c.N, c.Topology, c.Seed, strconv.FormatFloat(c.Loss, 'g', -1, 64), qm, plan)
}

// ParseCase parses a reproducer line produced by Case.String.
func ParseCase(line string) (Case, error) {
	c := Case{}
	seen := map[string]bool{}
	for _, field := range strings.Fields(strings.TrimSpace(line)) {
		key, val, ok := strings.Cut(field, "=")
		if !ok {
			return Case{}, fmt.Errorf("chaos: malformed field %q (want key=value)", field)
		}
		if seen[key] {
			return Case{}, fmt.Errorf("chaos: duplicate field %q", key)
		}
		seen[key] = true
		var err error
		switch key {
		case "n":
			c.N, err = strconv.Atoi(val)
		case "topo":
			c.Topology, err = drrgossip.ParseTopology(val)
		case "seed":
			c.Seed, err = strconv.ParseUint(val, 10, 64)
		case "loss":
			c.Loss, err = strconv.ParseFloat(val, 64)
		case "qm":
			c.QuantileMethod, err = drrgossip.ParseQuantileMethod(val)
		case "plan":
			if val != "none" {
				c.Plan, err = faults.Parse(val)
			}
		default:
			return Case{}, fmt.Errorf("chaos: unknown field %q", key)
		}
		if err != nil {
			return Case{}, fmt.Errorf("chaos: field %q: %v", key, err)
		}
	}
	for _, req := range []string{"n", "seed"} {
		if !seen[req] {
			return Case{}, fmt.Errorf("chaos: missing field %q", req)
		}
	}
	if c.N < 2 {
		return Case{}, fmt.Errorf("chaos: n=%d out of range (need >= 2)", c.N)
	}
	if c.Loss < 0 || c.Loss >= 1 {
		return Case{}, fmt.Errorf("chaos: loss=%v out of range [0,1)", c.Loss)
	}
	return c, nil
}

// config assembles the synchronous session configuration the case's
// invariants run under. budget is the termination backstop
// (Config.RoundBudget); 0 disables it (the async leg, whose engine has
// its own event cap).
func (c Case) config(budget int) drrgossip.Config {
	return drrgossip.Config{
		N:              c.N,
		Seed:           c.Seed,
		Topology:       c.Topology,
		Loss:           c.Loss,
		QuantileMethod: c.QuantileMethod,
		Faults:         c.Plan,
		RoundBudget:    budget,
	}
}
