// The fuzzing campaign driver: generate cases, check them, shrink the
// failures, and fold everything into one report the CLI and the CH1
// experiment render.

package chaos

import (
	"fmt"
	"io"

	"drrgossip"
)

// Options parameterise a fuzzing campaign.
type Options struct {
	// Cases is the number of generated cases (default 200).
	Cases int
	// Seed keys the campaign; equal seeds generate identical case
	// sequences and therefore identical reports.
	Seed uint64
	// Corpus is a set of pinned reproducer lines (Case.String form)
	// replayed before the generated cases — the regression corpus.
	Corpus []string
	// ShrinkBudget caps the battery evaluations spent minimising each
	// failure (0 = DefaultShrinkBudget).
	ShrinkBudget int
	// ForceMethod, when non-nil, overrides every generated case's
	// quantile method — the per-method calibration campaigns pin both
	// drivers to the same case sequence. Corpus lines keep their own.
	ForceMethod *drrgossip.QuantileMethod
	// Progress, when non-nil, receives one line per checked case.
	Progress io.Writer
}

// Failure is one fuzz case that breached an invariant, with its
// delta-debugged minimal reproducer.
type Failure struct {
	// Case is the case as generated (or as pinned in the corpus).
	Case Case
	// Violations are the breaches the original case produced.
	Violations []Violation
	// Minimized is the shrunk reproducer (equal to Case when shrinking
	// could not remove anything); Reproducer is its one-line form, ready
	// to be appended to the regression corpus.
	Minimized  Case
	Reproducer string
}

// Report is a fuzzing campaign's outcome.
type Report struct {
	// Checked counts the cases run (corpus + generated); ByTier splits
	// them by invariant tier (indexed tierHealthy..tierChurn).
	Checked int
	ByTier  [3]int
	// Failures lists every case that breached an invariant.
	Failures []Failure
}

// Clean reports whether the campaign found no violations.
func (r *Report) Clean() bool { return len(r.Failures) == 0 }

// Fuzz runs a campaign: every corpus line first (a corpus failure is a
// regression), then opts.Cases generated cases, shrinking each failure
// to its minimal reproducer.
func Fuzz(opts Options) (*Report, error) {
	cases := opts.Cases
	if cases == 0 {
		cases = 200
	}
	rep := &Report{}
	run := func(c Case, label string) {
		rep.Checked++
		rep.ByTier[c.tier()]++
		vs := CheckCase(c)
		if opts.Progress != nil {
			status := "ok"
			if len(vs) > 0 {
				status = vs[0].String()
			}
			fmt.Fprintf(opts.Progress, "%s: %s: %s\n", label, c, status)
		}
		if len(vs) == 0 {
			return
		}
		min := Shrink(c, func(cand Case) bool { return len(CheckCase(cand)) > 0 }, opts.ShrinkBudget)
		rep.Failures = append(rep.Failures, Failure{
			Case:       c,
			Violations: vs,
			Minimized:  min,
			Reproducer: min.String(),
		})
	}
	for i, line := range opts.Corpus {
		c, err := ParseCase(line)
		if err != nil {
			return nil, fmt.Errorf("chaos: corpus line %d: %v", i+1, err)
		}
		run(c, fmt.Sprintf("corpus[%d]", i))
	}
	for i := 0; i < cases; i++ {
		c := Generate(opts.Seed, i)
		if opts.ForceMethod != nil {
			c.QuantileMethod = *opts.ForceMethod
		}
		run(c, fmt.Sprintf("case[%d]", i))
	}
	return rep, nil
}
