package chaos

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"drrgossip"
	"drrgossip/internal/faults"
)

// TestCaseStringRoundTrip checks that the one-line reproducer format
// survives String -> ParseCase -> String for hand-written and generated
// cases alike: a failure printed anywhere reproduces everywhere.
func TestCaseStringRoundTrip(t *testing.T) {
	lines := []string{
		"n=64 topo=complete seed=1 loss=0 plan=none",
		"n=128 topo=chord seed=42 loss=0.05 plan=crash:0.2@0.5",
		"n=100 topo=torus seed=7 loss=0.2 plan=crash:0.0291@0.9036799191157889;churn:0.0641:6",
		"n=96 topo=chord seed=11 loss=0 plan=crash:#3,7,9@2r;rejoin@0.8",
	}
	for _, line := range lines {
		c, err := ParseCase(line)
		if err != nil {
			t.Fatalf("ParseCase(%q): %v", line, err)
		}
		if got := c.String(); got != line {
			t.Errorf("round trip:\n  in:  %s\n  out: %s", line, got)
		}
	}
	for i := 0; i < 50; i++ {
		c := Generate(99, i)
		line := c.String()
		back, err := ParseCase(line)
		if err != nil {
			t.Fatalf("Generate(99,%d) line %q does not parse: %v", i, line, err)
		}
		if got := back.String(); got != line {
			t.Errorf("generated case %d not canonical:\n  first:  %s\n  second: %s", i, line, got)
		}
	}
}

func TestParseCaseRejectsMalformed(t *testing.T) {
	bad := []string{
		"",                            // empty
		"n=64",                        // missing seed
		"seed=1 topo=complete loss=0", // missing n
		"n=64 seed=1 n=64",            // duplicate field
		"n=64 seed=1 color=red",       // unknown field
		"n=sixty seed=1",              // bad int
		"n=64 seed=1 topo=mobius",     // unknown topology
		"n=64 seed=1 loss=1.5",        // loss out of range
		"n=64 seed=1 plan=crash",      // malformed plan
		"n=64 seed=1 loss",            // not k=v
		"n=0 seed=1",                  // n too small
	}
	for _, line := range bad {
		if _, err := ParseCase(line); err == nil {
			t.Errorf("ParseCase(%q): want error, got nil", line)
		}
	}
}

// TestCorpusFilesCheckClean replays every pinned case — the seed corpus
// and the regression corpus — through the full invariant battery. A
// line in either file must stay clean forever; this is the test CI's
// chaos-smoke job leans on.
func TestCorpusFilesCheckClean(t *testing.T) {
	if testing.Short() {
		t.Skip("corpus replay is seconds-long; skipped in -short")
	}
	for _, name := range []string{"seed_corpus.txt", "regressions.txt"} {
		lines, err := LoadCorpus(filepath.Join("testdata", name))
		if err != nil {
			t.Fatalf("LoadCorpus(%s): %v", name, err)
		}
		if len(lines) == 0 {
			t.Fatalf("corpus %s is empty", name)
		}
		for _, line := range lines {
			c, err := ParseCase(line)
			if err != nil {
				t.Fatalf("%s: %q: %v", name, line, err)
			}
			if vs := CheckCase(c); len(vs) > 0 {
				t.Errorf("%s: %s: %d violation(s), first: %s", name, line, len(vs), vs[0])
			}
		}
	}
}

// TestFuzzSmallCampaignClean runs a small fixed-seed generative campaign
// end to end through Fuzz, including tier accounting.
func TestFuzzSmallCampaignClean(t *testing.T) {
	if testing.Short() {
		t.Skip("generative campaign is seconds-long; skipped in -short")
	}
	var progress bytes.Buffer
	rep, err := Fuzz(Options{Cases: 25, Seed: 3, Progress: &progress})
	if err != nil {
		t.Fatalf("Fuzz: %v", err)
	}
	if !rep.Clean() {
		for _, f := range rep.Failures {
			t.Errorf("case %s: %v (reproducer: %s)", f.Case, f.Violations, f.Reproducer)
		}
	}
	if rep.Checked != 25 {
		t.Errorf("Checked = %d, want 25", rep.Checked)
	}
	if got := rep.ByTier[0] + rep.ByTier[1] + rep.ByTier[2]; got != rep.Checked {
		t.Errorf("tier counts %v sum to %d, want %d", rep.ByTier, got, rep.Checked)
	}
	if progress.Len() == 0 {
		t.Error("Progress writer saw no output")
	}
}

// TestFuzzRejectsBadCorpusLine ensures a corrupt pinned reproducer fails
// the campaign loudly instead of being skipped.
func TestFuzzRejectsBadCorpusLine(t *testing.T) {
	_, err := Fuzz(Options{Cases: 0, Corpus: []string{"n=64 seed=1 topo=mobius"}})
	if err == nil {
		t.Fatal("Fuzz with malformed corpus line: want error, got nil")
	}
}

// TestShrinkMinimizesPlan drives the delta-debugger with a synthetic
// predicate ("fails iff the plan still contains a crash event") and
// checks it strips the loss rate, the two irrelevant events, and the
// crash event's own parameters down to a minimal reproducer.
func TestShrinkMinimizesPlan(t *testing.T) {
	plan, err := faults.Parse("loss:0.5@0.2..0.6;crash:0.3@0.5;rejoin@0.9")
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	c := Case{N: 64, Topology: drrgossip.Complete, Seed: 1, Loss: 0.2, Plan: plan}
	evals := 0
	fails := func(cand Case) bool {
		evals++
		if cand.Plan == nil {
			return false
		}
		for _, ev := range cand.Plan.Events {
			if ev.Kind == faults.Crash {
				return true
			}
		}
		return false
	}
	min := Shrink(c, fails, DefaultShrinkBudget)
	if !fails(min) {
		t.Fatal("shrunk case no longer fails the predicate")
	}
	if min.Loss != 0 {
		t.Errorf("Loss = %v, want 0 (irrelevant to the predicate)", min.Loss)
	}
	if min.Plan == nil || len(min.Plan.Events) != 1 {
		t.Fatalf("plan = %v, want exactly 1 event", min.Plan)
	}
	if min.Plan.Events[0].Kind != faults.Crash {
		t.Errorf("surviving event kind = %v, want crash", min.Plan.Events[0].Kind)
	}
	if evals > DefaultShrinkBudget+2 { // +2: the final fails() calls above
		t.Errorf("shrinker used %d evaluations, budget %d", evals, DefaultShrinkBudget)
	}
	// The minimized case must round-trip as a reproducer line.
	if _, err := ParseCase(min.String()); err != nil {
		t.Errorf("minimized case %q does not parse: %v", min.String(), err)
	}
}

// TestShrinkKeepsOriginalOnVanishingFailure guards against the shrinker
// "fixing" a flaky predicate: if no candidate fails, the original case
// comes back unchanged.
func TestShrinkKeepsOriginalOnVanishingFailure(t *testing.T) {
	plan, err := faults.Parse("crash:0.3@0.5")
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	c := Case{N: 64, Topology: drrgossip.Complete, Seed: 1, Loss: 0.1, Plan: plan}
	min := Shrink(c, func(Case) bool { return false }, 50)
	if min.String() != c.String() {
		t.Errorf("Shrink rewrote a non-failing case:\n  in:  %s\n  out: %s", c, min)
	}
}

func TestParseCorpus(t *testing.T) {
	text := `
# comment
n=64 topo=complete seed=1 loss=0 plan=none

n=96 topo=chord seed=2 loss=0.1 plan=crash:0.2@0.5
`
	lines, err := ParseCorpus(text)
	if err != nil {
		t.Fatalf("ParseCorpus: %v", err)
	}
	if len(lines) != 2 {
		t.Fatalf("got %d lines, want 2: %v", len(lines), lines)
	}
	if _, err := ParseCorpus("n=64 seed=1\nnot a case\n"); err == nil {
		t.Error("ParseCorpus with invalid line: want error, got nil")
	}
}

func TestAppendCorpusDedups(t *testing.T) {
	path := filepath.Join(t.TempDir(), "corpus.txt")
	a := "n=64 topo=complete seed=1 loss=0 plan=crash:0.2@0.5"
	b := "n=96 topo=chord seed=2 loss=0.1 plan=none"
	if err := AppendCorpus(path, []string{a}); err != nil {
		t.Fatalf("AppendCorpus (create): %v", err)
	}
	if err := AppendCorpus(path, []string{a, b}); err != nil {
		t.Fatalf("AppendCorpus (append): %v", err)
	}
	lines, err := LoadCorpus(path)
	if err != nil {
		t.Fatalf("LoadCorpus: %v", err)
	}
	if len(lines) != 2 || lines[0] != a || lines[1] != b {
		t.Errorf("corpus = %v, want [%s, %s]", lines, a, b)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if n := strings.Count(string(raw), a); n != 1 {
		t.Errorf("line pinned %d times, want 1 (dedup)", n)
	}
}

// TestLoadCorpusMissingFile checks the empty-corpus fast path: a missing
// regression file is not an error, it just means no regressions yet.
func TestLoadCorpusMissingFile(t *testing.T) {
	lines, err := LoadCorpus(filepath.Join(t.TempDir(), "nope.txt"))
	if err != nil {
		t.Fatalf("LoadCorpus(missing): %v", err)
	}
	if lines != nil {
		t.Errorf("got %v, want nil", lines)
	}
}

// TestCaseQuantileMethodAxis pins the qm field of the reproducer
// format: hms renders (and round-trips) explicitly, bisect is omitted
// so every pre-existing corpus line stays canonical.
func TestCaseQuantileMethodAxis(t *testing.T) {
	line := "n=64 topo=complete seed=1 loss=0 qm=hms plan=crash:0.2@0.5"
	c, err := ParseCase(line)
	if err != nil {
		t.Fatalf("ParseCase(%q): %v", line, err)
	}
	if c.QuantileMethod != drrgossip.QuantileHMS {
		t.Fatalf("QuantileMethod = %v, want hms", c.QuantileMethod)
	}
	if got := c.String(); got != line {
		t.Errorf("round trip:\n  in:  %s\n  out: %s", line, got)
	}
	// Absent qm means the bisection default — back-compat with every
	// line pinned before the axis existed.
	old, err := ParseCase("n=64 topo=complete seed=1 loss=0 plan=none")
	if err != nil {
		t.Fatal(err)
	}
	if old.QuantileMethod != drrgossip.QuantileBisect {
		t.Fatalf("legacy line parsed as %v, want bisect", old.QuantileMethod)
	}
	if _, err := ParseCase("n=64 seed=1 qm=newton"); err == nil {
		t.Error("unknown method accepted")
	}
}

// TestGenerateCoversBothMethods checks the generator actually draws
// both quantile drivers, and that ForceMethod pins a campaign to one.
func TestGenerateCoversBothMethods(t *testing.T) {
	seen := map[drrgossip.QuantileMethod]int{}
	for i := 0; i < 60; i++ {
		seen[Generate(5, i).QuantileMethod]++
	}
	if seen[drrgossip.QuantileBisect] == 0 || seen[drrgossip.QuantileHMS] == 0 {
		t.Fatalf("generator covers only %v", seen)
	}
}

// TestShrinkDropsQuantileMethod checks the delta-debugger simplifies an
// hms case down to the bisection reference when the failure does not
// need the HMS driver.
func TestShrinkDropsQuantileMethod(t *testing.T) {
	plan, err := faults.Parse("crash:0.3@0.5")
	if err != nil {
		t.Fatal(err)
	}
	c := Case{N: 64, Topology: drrgossip.Complete, Seed: 1,
		QuantileMethod: drrgossip.QuantileHMS, Plan: plan}
	min := Shrink(c, func(cand Case) bool { return cand.Plan != nil }, 50)
	if min.QuantileMethod != drrgossip.QuantileBisect {
		t.Errorf("QuantileMethod = %v, want bisect (irrelevant to the predicate)", min.QuantileMethod)
	}
}
