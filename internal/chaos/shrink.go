// Delta-debugging of failing cases: remove plan events one at a time,
// then simplify the survivors (faults.Event.Simplifications), keeping
// every change that still reproduces a violation — classic ddmin over
// the plan's event list. Each candidate is re-verified from scratch
// (node sets are selected by event index, so surgery can shift them),
// which makes the loop expensive; the eval budget bounds it.

package chaos

import "drrgossip"

// DefaultShrinkBudget caps the invariant-battery evaluations one shrink
// may spend. Plans are at most a handful of events, so the fixpoint is
// normally reached in well under this many candidates.
const DefaultShrinkBudget = 150

// Shrink minimises a failing case under the given failure predicate,
// spending at most budget predicate evaluations (budget <= 0 uses
// DefaultShrinkBudget). The returned case still fails the predicate;
// when the budget runs dry mid-descent, the smallest failing case found
// so far is returned.
func Shrink(c Case, fails func(Case) bool, budget int) Case {
	if budget <= 0 {
		budget = DefaultShrinkBudget
	}
	evals := 0
	try := func(cand Case) bool {
		if evals >= budget {
			return false
		}
		evals++
		return fails(cand)
	}
	cur := c
	// The quantile method first: a reproducer that fails on the
	// bisection reference is simpler than one needing the HMS driver.
	if cur.QuantileMethod != drrgossip.QuantileBisect {
		cand := cur
		cand.QuantileMethod = drrgossip.QuantileBisect
		if try(cand) {
			cur = cand
		}
	}
	// Baseline loss first: a reproducer that fails without it is simpler.
	if cur.Loss != 0 {
		cand := cur
		cand.Loss = 0
		if try(cand) {
			cur = cand
		}
	}
	for changed := true; changed && evals < budget; {
		changed = false
		// Pass 1: drop whole events.
		for i := 0; cur.Plan != nil && i < len(cur.Plan.Events); i++ {
			cand := cur
			cand.Plan = cur.Plan.Without(i)
			if cand.Plan.Empty() {
				cand.Plan = nil
			}
			if try(cand) {
				cur = cand
				changed = true
				i-- // the list shifted; retry this index
			}
		}
		// Pass 2: simplify the events that must stay.
		for i := 0; cur.Plan != nil && i < len(cur.Plan.Events); i++ {
			for _, ev := range cur.Plan.Events[i].Simplifications() {
				cand := cur
				cand.Plan = cur.Plan.WithEvent(i, ev)
				if try(cand) {
					cur = cand
					changed = true
					break // re-derive simplifications of the new event next round
				}
			}
		}
	}
	return cur
}
