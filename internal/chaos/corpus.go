// Corpus files: one reproducer line per case, '#' comments and blank
// lines ignored. The checked-in regression corpus
// (testdata/regressions.txt) pins every reproducer the fuzzer has ever
// shrunk, so a fixed bug stays fixed.

package chaos

import (
	"fmt"
	"os"
	"strings"
)

// ParseCorpus extracts the reproducer lines from corpus-file text,
// dropping blank lines and '#' comments. Every surviving line must
// parse as a Case.
func ParseCorpus(text string) ([]string, error) {
	var lines []string
	for i, raw := range strings.Split(text, "\n") {
		line := strings.TrimSpace(raw)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		if _, err := ParseCase(line); err != nil {
			return nil, fmt.Errorf("line %d: %v", i+1, err)
		}
		lines = append(lines, line)
	}
	return lines, nil
}

// LoadCorpus reads a corpus file. A missing file is an empty corpus,
// not an error — new checkouts start with no regressions.
func LoadCorpus(path string) ([]string, error) {
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	lines, err := ParseCorpus(string(data))
	if err != nil {
		return nil, fmt.Errorf("%s: %v", path, err)
	}
	return lines, nil
}

// AppendCorpus appends reproducer lines to a corpus file, creating it
// (with a header) if absent and skipping lines already present.
func AppendCorpus(path string, lines []string) error {
	existing, err := LoadCorpus(path)
	if err != nil {
		return err
	}
	have := make(map[string]bool, len(existing))
	for _, l := range existing {
		have[l] = true
	}
	var add []string
	for _, l := range lines {
		if !have[l] {
			add = append(add, l)
			have[l] = true
		}
	}
	if len(add) == 0 {
		return nil
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	defer f.Close()
	if fi, err := f.Stat(); err == nil && fi.Size() == 0 {
		fmt.Fprintln(f, "# chaos regression corpus: minimal reproducers of past invariant")
		fmt.Fprintln(f, "# violations, one Case per line. Replayed by `make chaos` and CI.")
	}
	for _, l := range add {
		if _, err := fmt.Fprintln(f, l); err != nil {
			return err
		}
	}
	return nil
}
