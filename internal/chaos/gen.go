// Case generation: the fuzzer's sampling of the (config, plan) space.
// Generation is a pure function of (seed, index) — the same pair always
// yields the same case, so a whole fuzzing campaign is reproducible
// from its master seed alone.

package chaos

import (
	"drrgossip"
	"drrgossip/internal/faults"
	"drrgossip/internal/xrand"
)

// genSizes is the network-size palette. Small sizes dominate (they run
// the battery fastest, so the fuzzer covers more plans per second);
// larger sizes appear often enough to catch scale-dependent breakage.
var genSizes = []int{16, 24, 32, 48, 64, 96, 128, 192, 256}

// genTopologies is the topology palette. Complete appears twice: it is
// the paper's main model and the only one the dense pipelines run on.
var genTopologies = []drrgossip.Topology{
	drrgossip.Complete, drrgossip.Complete, drrgossip.Chord, drrgossip.Torus,
}

// Generate derives fuzz case idx of the campaign keyed by seed. Roughly
// one case in eight is a healthy control (no plan, no loss) so the
// exact-answer invariants keep running inside every campaign.
func Generate(seed uint64, idx int) Case {
	rng := xrand.Derive(seed, 0xC4A05, uint64(idx))
	c := Case{
		N:        genSizes[rng.Intn(len(genSizes))],
		Topology: genTopologies[rng.Intn(len(genTopologies))],
		Seed:     rng.Uint64(),
	}
	if rng.Bool(0.5) {
		// Half of every campaign fuzzes the HMS quantile driver; the
		// draw happens before the healthy-control cut so both methods
		// get healthy exactness coverage too.
		c.QuantileMethod = drrgossip.QuantileHMS
	}
	if rng.Bool(0.125) {
		return c // healthy control
	}
	if rng.Bool(0.5) {
		c.Loss = []float64{0.02, 0.05, 0.1, 0.2}[rng.Intn(4)]
	}
	nEvents := 1 + rng.Intn(3)
	plans := make([]*faults.Plan, 0, nEvents)
	for i := 0; i < nEvents; i++ {
		plans = append(plans, genPlan(rng))
	}
	c.Plan = faults.Merge(plans...)
	return c
}

// genTiming draws an event start time: usually a horizon fraction (the
// placement that exercises the pre-run machinery), sometimes an
// absolute round in the early protocol.
func genTiming(rng *xrand.Stream) faults.Timing {
	if rng.Bool(0.6) {
		return faults.AtFrac(0.05 + 0.9*rng.Float64())
	}
	return faults.At(1 + rng.Intn(40))
}

// genWindow draws an event window [at, end) with end after at (or zero:
// open-ended) in the same time base, as the grammar requires.
func genWindow(rng *xrand.Stream) (at, end faults.Timing) {
	at = genTiming(rng)
	if rng.Bool(0.4) {
		return at, faults.Timing{}
	}
	if at.Round > 0 {
		return at, faults.At(at.Round + 1 + rng.Intn(30))
	}
	return at, faults.AtFrac(at.Frac + (1-at.Frac)*rng.Float64())
}

// genPlan draws one single-event plan from the generator catalog with
// randomized parameters. Parameter ranges are bounded away from the
// degenerate extremes (whole-population crashes, loss 1.0 forever) that
// no invariant can say anything useful about.
func genPlan(rng *xrand.Stream) *faults.Plan {
	at, end := genWindow(rng)
	switch rng.Intn(6) {
	case 0:
		return faults.CrashFraction(0.05+0.35*rng.Float64(), at, end)
	case 1:
		return faults.RackFailure(0.05+0.25*rng.Float64(), at, end)
	case 2:
		return faults.FlakyRegion(0.1+0.4*rng.Float64(), 0.1+0.85*rng.Float64(), at, end)
	case 3:
		return faults.PartitionNetwork(2+rng.Intn(3), at, end)
	case 4:
		return faults.LossSpike(0.05+0.7*rng.Float64(), at, end)
	default:
		down := 0
		if rng.Bool(0.5) {
			down = 1 + rng.Intn(20)
		}
		return faults.PoissonChurn(0.02+0.25*rng.Float64(), down)
	}
}
