// Peer-selection policies: who a node proposes to when its clock ticks.
// Uniform is the Dimakis et al. baseline; GGE and sample-greedy exploit
// the wireless broadcast nature of the medium — every committed exchange
// is overheard by the endpoints' neighbors for free — to pick the
// neighbor with the largest value gap instead of a random one.

package pairwise

import (
	"fmt"
	"math"
	"sort"

	"drrgossip/internal/graph"
	"drrgossip/internal/xrand"
)

// Selector is a pluggable peer-selection policy. Selectors are stateful
// per run (init builds per-run caches) and must be used by one Proto at
// a time; NewSelector builds a fresh one from its registry name.
type Selector interface {
	// Name returns the policy's registry name.
	Name() string
	// init prepares the per-run state; it reports an error when the
	// policy cannot run on this graph (e.g. GGE on the complete graph).
	init(st *state) error
	// pick returns the partner node u proposes to, or -1 when u has no
	// candidate (isolated node). All randomness must come from rng.
	pick(st *state, u int, rng *xrand.Stream) int
	// committed is the wireless-broadcast tap, fired after an exchange
	// commits at u and v; eavesdropping policies refresh their caches.
	committed(st *state, u, v int)
}

// state is the per-run protocol state selectors read: the estimate
// vector and the neighbor structure. The driver is strictly sequential,
// so one scratch buffer serves every NeighborsInto query.
type state struct {
	n       int
	g       *graph.Graph // nil = complete graph
	x       []float64
	scratch []int

	// GGE eavesdrop cache (built by gge.init): one sorted flat adjacency
	// (off/nbr, CSR-style) plus heard[p] = the estimate that nbr[p]'s
	// neighbor last broadcast, indexed by directed-edge position p.
	off   []int
	nbr   []int32
	heard []float64
}

// neighbors fills the shared scratch with u's neighbor list.
func (st *state) neighbors(u int) []int {
	if cap(st.scratch) == 0 {
		st.scratch = make([]int, 0, st.g.MaxDegree())
	}
	st.scratch = st.g.NeighborsInto(u, st.scratch[:0])
	return st.scratch
}

// SelectorNames lists the registered policy names in NewSelector order.
func SelectorNames() []string { return []string{"uniform", "gge", "samplegreedy"} }

// NewSelector builds a fresh selector by name: "uniform" (or ""),
// "gge", or "samplegreedy".
func NewSelector(name string) (Selector, error) {
	switch name {
	case "", "uniform":
		return Uniform(), nil
	case "gge":
		return GGE(), nil
	case "samplegreedy":
		return SampleGreedy(0), nil
	default:
		return nil, fmt.Errorf("pairwise: unknown selector %q (have %v)", name, SelectorNames())
	}
}

// Uniform returns the baseline policy: a uniformly random neighbor (a
// uniformly random other node on the complete graph).
func Uniform() Selector { return uniform{} }

type uniform struct{}

func (uniform) Name() string               { return "uniform" }
func (uniform) init(st *state) error       { return nil }
func (uniform) committed(*state, int, int) {}

func (uniform) pick(st *state, u int, rng *xrand.Stream) int {
	if st.g == nil {
		if st.n < 2 {
			return -1
		}
		return rng.IntnOther(st.n, u)
	}
	ns := st.neighbors(u)
	if len(ns) == 0 {
		return -1
	}
	return ns[rng.Intn(len(ns))]
}

// GGE returns greedy gossip with eavesdropping (Üstebay et al.): every
// committed exchange is broadcast to the endpoints' neighbors for free
// (the wireless medium), each node caches what it last overheard from
// each neighbor, and a ticking node picks the neighbor with the largest
// |own − overheard| gap (ties to the lowest neighbor id — deterministic,
// no randomness consumed). The cache is O(2·|E|), so GGE requires a
// sparse overlay; on the complete graph that would be O(n²) state and
// init refuses.
func GGE() Selector { return &gge{} }

type gge struct{}

func (*gge) Name() string { return "gge" }

func (*gge) init(st *state) error {
	if st.g == nil {
		return fmt.Errorf("pairwise: gge needs a sparse overlay (its eavesdrop cache is O(edges); on the complete graph that is O(n²)) — use uniform or samplegreedy")
	}
	// Build a sorted flat adjacency once: sorted rows make the broadcast
	// update a binary search and the tie-break "lowest neighbor id".
	st.off = make([]int, st.n+1)
	deg := 0
	for u := 0; u < st.n; u++ {
		deg += len(st.neighbors(u))
		st.off[u+1] = deg
	}
	st.nbr = make([]int32, deg)
	st.heard = make([]float64, deg)
	for u := 0; u < st.n; u++ {
		row := st.nbr[st.off[u]:st.off[u+1]]
		for i, v := range st.neighbors(u) {
			row[i] = int32(v)
		}
		sort.Slice(row, func(i, j int) bool { return row[i] < row[j] })
		// At start every node has broadcast its initial value once.
		for i, v := range row {
			st.heard[st.off[u]+i] = st.x[v]
		}
	}
	return nil
}

func (*gge) pick(st *state, u int, _ *xrand.Stream) int {
	lo, hi := st.off[u], st.off[u+1]
	best, gap := -1, -1.0
	xu := st.x[u]
	for p := lo; p < hi; p++ {
		if g := math.Abs(xu - st.heard[p]); g > gap {
			gap, best = g, int(st.nbr[p])
		}
	}
	return best
}

func (*gge) committed(st *state, u, v int) {
	st.broadcast(u)
	st.broadcast(v)
}

// broadcast refreshes what u's neighbors overhear after u's estimate
// changed: for each neighbor t, the cache entry of edge (t, u) becomes
// u's new value. Rows are sorted, so locating u in t's row is a binary
// search — O(deg(u) · log deg(t)) per commit.
func (st *state) broadcast(u int) {
	xu := st.x[u]
	for p := st.off[u]; p < st.off[u+1]; p++ {
		t := int(st.nbr[p])
		row := st.nbr[st.off[t]:st.off[t+1]]
		i := sort.Search(len(row), func(i int) bool { return row[i] >= int32(u) })
		if i < len(row) && row[i] == int32(u) {
			st.heard[st.off[t]+i] = xu
		}
	}
}

// SampleGreedy returns the sample-greedy policy (Shin, He, Tsourdos): a
// ticking node samples s candidate neighbors (with replacement; s=0
// picks the default 3) and proposes to the sampled candidate with the
// largest value gap — greedy gain at O(s) selection cost instead of
// GGE's O(degree) scan and O(edges) cache, and therefore available on
// the complete graph too. Candidate values are read through the same
// free wireless broadcasts GGE eavesdrops on.
func SampleGreedy(s int) Selector {
	if s <= 0 {
		s = 3
	}
	return sampleGreedy{s: s}
}

type sampleGreedy struct{ s int }

func (sg sampleGreedy) Name() string            { return "samplegreedy" }
func (sampleGreedy) init(st *state) error       { return nil }
func (sampleGreedy) committed(*state, int, int) {}

func (sg sampleGreedy) pick(st *state, u int, rng *xrand.Stream) int {
	var ns []int
	if st.g != nil {
		ns = st.neighbors(u)
		if len(ns) == 0 {
			return -1
		}
	} else if st.n < 2 {
		return -1
	}
	best, gap := -1, -1.0
	xu := st.x[u]
	for i := 0; i < sg.s; i++ {
		var c int
		if st.g == nil {
			c = rng.IntnOther(st.n, u)
		} else {
			c = ns[rng.Intn(len(ns))]
		}
		if g := math.Abs(xu - st.x[c]); g > gap {
			gap, best = g, c
		}
	}
	return best
}
