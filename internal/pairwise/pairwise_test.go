package pairwise

import (
	"math"
	"testing"

	"drrgossip/internal/async"
	"drrgossip/internal/graph"
)

func lineGraph(t *testing.T, n int) *graph.Graph {
	t.Helper()
	adj := make([][]int, n)
	for i := 0; i < n; i++ {
		if i > 0 {
			adj[i] = append(adj[i], i-1)
		}
		if i < n-1 {
			adj[i] = append(adj[i], i+1)
		}
	}
	g, err := graph.FromAdjacency("line", adj)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func emptyGraph(t *testing.T, n int) *graph.Graph {
	t.Helper()
	g, err := graph.FromAdjacency("empty", make([][]int, n))
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// A single node is converged by definition: zero events, zero
// exchanges, its own value as the answer.
func TestSingleNode(t *testing.T) {
	eng := async.NewEngine(1, async.Options{Seed: 3})
	res, err := Ave(eng, nil, []float64{42}, nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged || res.Events != 0 || res.Exchanges != 0 || res.Value != 42 {
		t.Fatalf("single node: %+v", res)
	}
}

// Equal values are converged at the start for any population size.
func TestAlreadyConverged(t *testing.T) {
	const n = 32
	values := make([]float64, n)
	for i := range values {
		values[i] = 7.5
	}
	eng := async.NewEngine(n, async.Options{Seed: 5})
	res, err := Ave(eng, nil, values, nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged || res.Events != 0 || res.Value != 7.5 {
		t.Fatalf("equal values: %+v", res)
	}
}

// On the edgeless graph every node is isolated: nothing ever commits,
// the run stops at its cap, reports Converged false, and the estimates
// are exactly the inputs. Termination must be clean, not a hang.
func TestEmptyGraphTerminates(t *testing.T) {
	const n = 8
	values := []float64{1, 2, 3, 4, 5, 6, 7, 8}
	eng := async.NewEngine(n, async.Options{Seed: 7})
	res, err := Ave(eng, emptyGraph(t, n), values, nil, Options{MaxEvents: 100})
	if err != nil {
		t.Fatal(err)
	}
	if res.Converged || res.Events != 100 || res.Exchanges != 0 {
		t.Fatalf("empty graph: %+v", res)
	}
	for i, v := range res.PerNode {
		if v != values[i] {
			t.Fatalf("isolated node %d moved: %v", i, res.PerNode[i])
		}
	}
}

// Pairwise averaging conserves the population sum exactly (up to float
// rounding) through every committed exchange — including under loss,
// where the atomic handshake commits both endpoints or neither.
func TestMeanInvariantUnderLoss(t *testing.T) {
	const n = 64
	values := make([]float64, n)
	sum := 0.0
	for i := range values {
		values[i] = float64(i * i % 37)
		sum += values[i]
	}
	eng := async.NewEngine(n, async.Options{Seed: 9, Loss: 0.3})
	res, err := Ave(eng, nil, values, nil, Options{MaxEvents: 5000, Eps: 1e-9})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Drops == 0 {
		t.Fatal("loss never bit; the invariance check is vacuous")
	}
	got := 0.0
	for _, v := range res.PerNode {
		got += v
	}
	if math.Abs(got-sum) > 1e-9*sum {
		t.Fatalf("population sum drifted: %v -> %v after %d exchanges (%d drops)",
			sum, got, res.Exchanges, res.Stats.Drops)
	}
}

// Uniform on a line graph converges; every selector agrees on the mean.
func TestSelectorsAgreeOnMean(t *testing.T) {
	const n = 24
	values := make([]float64, n)
	want := 0.0
	for i := range values {
		values[i] = float64((i*13 + 5) % 17)
		want += values[i]
	}
	want /= n
	g := lineGraph(t, n)
	for _, name := range SelectorNames() {
		sel, err := NewSelector(name)
		if err != nil {
			t.Fatal(err)
		}
		eng := async.NewEngine(n, async.Options{Seed: 13})
		// A path mixes in Θ(n²) per constant-factor spread reduction — far
		// past the default cap; give the run the room the topology needs.
		res, err := Ave(eng, g, values, sel, Options{Eps: 1e-9, MaxEvents: 2_000_000})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !res.Converged {
			t.Fatalf("%s did not converge on the line: %+v", name, res)
		}
		if math.Abs(res.Value-want) > 1e-8 {
			t.Fatalf("%s: value %v, want %v", name, res.Value, want)
		}
	}
}

// GGE refuses the complete graph (its cache is O(n²) there); the other
// selectors accept it. Unknown names are rejected with the catalog.
func TestSelectorValidation(t *testing.T) {
	eng := async.NewEngine(4, async.Options{Seed: 15})
	if _, err := Ave(eng, nil, []float64{1, 2, 3, 4}, GGE(), Options{}); err == nil {
		t.Fatal("gge accepted the complete graph")
	}
	if _, err := NewSelector("nope"); err == nil {
		t.Fatal("unknown selector accepted")
	}
	for _, name := range append(SelectorNames(), "") {
		if name == "gge" {
			continue
		}
		sel, err := NewSelector(name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		eng := async.NewEngine(4, async.Options{Seed: 15})
		if _, err := Ave(eng, nil, []float64{1, 2, 3, 4}, sel, Options{}); err != nil {
			t.Fatalf("%s on complete: %v", name, err)
		}
	}
}

// The GGE eavesdrop cache must track the true estimates under the
// lossless wireless-broadcast assumption: after any run, heard[p] for
// edge (t,u) equals x[u] exactly.
func TestGGECacheConsistency(t *testing.T) {
	const n = 16
	values := make([]float64, n)
	for i := range values {
		values[i] = float64(i)
	}
	g := lineGraph(t, n)
	sel := GGE()
	p, err := NewProto(n, g, values, sel)
	if err != nil {
		t.Fatal(err)
	}
	eng := async.NewEngine(n, async.Options{Seed: 17})
	eng.Run(func(u int) {
		v, xu, ok := p.OnTick(u, eng.RNG(u))
		if !ok {
			return
		}
		if !eng.Exchange(u, v) {
			return
		}
		p.OnReply(u, v, p.OnRequest(v, xu))
	}, func() bool { return false }, 500)
	st := &p.st
	for u := 0; u < n; u++ {
		for pos := st.off[u]; pos < st.off[u+1]; pos++ {
			if got, want := st.heard[pos], st.x[st.nbr[pos]]; got != want {
				t.Fatalf("node %d heard %v from %d, actual %v", u, got, st.nbr[pos], want)
			}
		}
	}
}

// Crash mid-run: the dead node's estimate freezes (NaN in PerNode), the
// survivors converge among themselves, and the answer is the mean of
// the survivors' estimates.
func TestCrashMidRunFreezesNode(t *testing.T) {
	const n = 16
	values := make([]float64, n)
	for i := range values {
		values[i] = float64(i)
	}
	eng := async.NewEngine(n, async.Options{Seed: 19})
	crashed := false
	eng.SetEventObserver(func(events int) {
		if events == 100 && !crashed {
			crashed = true
			eng.Crash(3)
		}
	})
	res, err := Ave(eng, nil, values, nil, Options{Eps: 1e-9})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatalf("survivors did not converge: %+v", res)
	}
	if !math.IsNaN(res.PerNode[3]) {
		t.Fatalf("dead node's PerNode entry not NaN: %v", res.PerNode[3])
	}
	for i, v := range res.PerNode {
		if i == 3 {
			continue
		}
		if math.Abs(v-res.Value) > 1e-9 {
			t.Fatalf("survivor %d off consensus: %v vs %v", i, v, res.Value)
		}
	}
}
