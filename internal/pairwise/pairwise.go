// Package pairwise implements the classical randomized pairwise-averaging
// protocol family over the asynchronous engine (internal/async): when a
// node's Poisson clock ticks, it picks one partner, the two exchange
// their current estimates, and both replace them with the average. The
// family is exactly the baseline the DRR-gossip paper positions itself
// against — "Gossip Algorithms for Distributed Signal Processing"
// (Dimakis, Kar, Moura, Rabbat, Scaglione) — and the peer-selection
// policies are pluggable: uniform random neighbor, greedy eavesdropping
// (Üstebay, Oreshkin, Coates, Rabbat, "Greedy Gossip with
// Eavesdropping"), and sample-greedy (Shin, He, Tsourdos). See select.go.
//
// # Node state machine
//
// The protocol is a transport-agnostic state machine (Proto): OnTick
// proposes a partner and emits the request, OnRequest is the partner's
// inbox→outbox step (average, commit, reply), OnReply commits the
// initiator. The simulated driver (Ave) delivers the handshake through
// async.Engine.Exchange — which decides loss and billing for both legs
// up front, so a failed handshake commits neither endpoint and the
// population mean stays invariant (the reliable-handshake assumption of
// the pairwise-averaging analyses). A real-transport backend would
// deliver the same three steps over sockets; the machine cannot tell.
//
// # Cost model
//
// One committed exchange = one request + one reply = 2 messages, the
// same per-transmission accounting unit as the synchronous pipelines.
// Convergence is measured on the spread (max − min) of the alive nodes'
// estimates; the driver sweeps it every Options.CheckEvery events and
// stops at Options.Eps. Exchanges-to-ε on the complete graph grows as
// Θ(n log n) for fixed ε (Boyd, Ghosh, Prabhakar, Shah) — the curve the
// AS1 experiment fits, and the bill DRR-gossip's O(n log log n) beats.
package pairwise

import (
	"fmt"
	"math"

	"drrgossip/internal/async"
	"drrgossip/internal/graph"
	"drrgossip/internal/sim"
	"drrgossip/internal/xrand"
)

// Phase is the label the driver reports for the single protocol phase.
const Phase = "pairwise"

// Options tune one pairwise-averaging run.
type Options struct {
	// Eps is the convergence threshold: the run stops when the spread
	// (max − min over alive nodes' estimates) is <= Eps. 0 means 1e-6.
	Eps float64
	// CheckEvery is the number of events between convergence sweeps
	// (0 = n: one sweep per expected full clock rotation). Sweeps are
	// O(n) reads; the protocol itself never needs them.
	CheckEvery int
	// MaxEvents caps the event loop for runs that cannot reach Eps
	// (isolated nodes, slow-mixing graphs); the Result then reports
	// Converged == false. 0 picks 64n + 32·n·ceil(log2 n).
	MaxEvents int
}

// Result reports one pairwise-averaging run.
type Result struct {
	// Value is the mean of the alive nodes' estimates at termination —
	// the protocol's answer (all alive estimates agree to within Spread).
	Value float64
	// PerNode holds each node's final estimate (NaN for dead nodes).
	PerNode []float64
	// Converged reports whether Spread reached Eps before MaxEvents.
	Converged bool
	// Spread is the final max − min over alive estimates.
	Spread float64
	// Exchanges counts committed pairwise exchanges (each billed 2
	// messages); failed handshakes bill their messages but commit nothing.
	Exchanges int64
	// Events is the number of clock ticks dispatched.
	Events int
	// Clock is the simulated wall-clock time at termination.
	Clock float64
	// Stats is the engine's counter bill for the run.
	Stats sim.Counters
}

// Proto is the pairwise-averaging node state machine. Its three steps
// are the whole protocol; everything else (clocks, transport, billing,
// faults) lives in the engine driving it.
type Proto struct {
	st  state
	sel Selector

	// Exchanges counts committed exchanges so far.
	Exchanges int64
}

// NewProto builds the machine for n nodes holding values, over graph g
// (nil means the complete graph) with the given peer-selection policy.
func NewProto(n int, g *graph.Graph, values []float64, sel Selector) (*Proto, error) {
	if len(values) != n {
		return nil, fmt.Errorf("pairwise: %d values for n=%d", len(values), n)
	}
	if g != nil && g.N() != n {
		return nil, fmt.Errorf("pairwise: graph has %d nodes, engine %d", g.N(), n)
	}
	if sel == nil {
		sel = Uniform()
	}
	p := &Proto{sel: sel}
	p.st = state{n: n, g: g, x: append([]float64(nil), values...)}
	if err := sel.init(&p.st); err != nil {
		return nil, err
	}
	return p, nil
}

// OnTick is node u's clock action: pick a partner and emit the request
// carrying u's current estimate. ok is false when u has no candidate
// (isolated node), in which case nothing is sent.
func (p *Proto) OnTick(u int, rng *xrand.Stream) (partner int, xu float64, ok bool) {
	v := p.sel.pick(&p.st, u, rng)
	if v < 0 {
		return -1, 0, false
	}
	return v, p.st.x[u], true
}

// OnRequest is partner v's inbox→outbox step: average the received
// estimate with its own, commit, and reply with the average.
func (p *Proto) OnRequest(v int, xu float64) (avg float64) {
	avg = (xu + p.st.x[v]) / 2
	p.st.x[v] = avg
	return avg
}

// OnReply commits initiator u with the averaged estimate and closes the
// exchange: both endpoints now hold avg, and the selectors' broadcast
// tap fires (eavesdropping policies refresh what u's and v's neighbors
// overheard).
func (p *Proto) OnReply(u, v int, avg float64) {
	p.st.x[u] = avg
	p.Exchanges++
	p.sel.committed(&p.st, u, v)
}

// X returns the live per-node estimate vector (not a copy).
func (p *Proto) X() []float64 { return p.st.x }

// Spread returns max − min of the estimates over nodes where alive
// reports true (0 when fewer than two such nodes exist).
func (p *Proto) Spread(alive func(int) bool) float64 {
	lo, hi := math.Inf(1), math.Inf(-1)
	seen := 0
	for i := 0; i < p.st.n; i++ {
		if !alive(i) {
			continue
		}
		seen++
		v := p.st.x[i]
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	if seen < 2 {
		return 0
	}
	return hi - lo
}

// defaultMaxEvents is the event cap for runs that never reach Eps:
// generous against the Θ(n log n) exchanges of well-mixing graphs, a
// deliberate cutoff for slow-mixing ones (a 2-D torus needs Θ(n²)
// exchanges — the geographic-gossip motivation — and capping there is
// the honest result, reported as Converged == false).
func defaultMaxEvents(n int) int {
	lg := 1
	for 1<<lg < n {
		lg++
	}
	return 64*n + 32*n*lg
}

// Ave runs pairwise averaging on eng over graph g (nil = complete) until
// the spread of the alive estimates reaches opts.Eps or the event cap.
// All randomness comes from the engine's derived streams, so equal
// (engine options, g, values, selector) give bit-identical results.
func Ave(eng *async.Engine, g *graph.Graph, values []float64, sel Selector, opts Options) (*Result, error) {
	n := eng.N()
	p, err := NewProto(n, g, values, sel)
	if err != nil {
		return nil, err
	}
	eps := opts.Eps
	if eps == 0 {
		eps = 1e-6
	}
	check := opts.CheckEvery
	if check <= 0 {
		check = n
	}
	maxEvents := opts.MaxEvents
	if maxEvents <= 0 {
		maxEvents = defaultMaxEvents(n)
	}
	eng.SetPhase(Phase)
	spread := p.Spread(eng.Alive)
	eng.ReportResidual(spread)
	converged := spread <= eps
	sinceCheck := 0
	handler := func(u int) {
		v, xu, ok := p.OnTick(u, eng.RNG(u))
		if !ok {
			return
		}
		if !eng.Exchange(u, v) {
			return
		}
		avg := p.OnRequest(v, xu)
		p.OnReply(u, v, avg)
	}
	stop := func() bool {
		sinceCheck++
		if sinceCheck >= check {
			sinceCheck = 0
			spread = p.Spread(eng.Alive)
			eng.ReportResidual(spread)
			converged = spread <= eps
		}
		return converged
	}
	events := 0
	if !converged { // an already-tight input (single node, equal values) costs nothing
		events = eng.Run(handler, stop, maxEvents)
	}
	if !converged {
		// The cap can land between sweeps; close the books on live state.
		spread = p.Spread(eng.Alive)
		eng.ReportResidual(spread)
		converged = spread <= eps
	}
	res := &Result{
		PerNode:   p.st.x,
		Converged: converged,
		Spread:    spread,
		Exchanges: p.Exchanges,
		Events:    events,
		Clock:     eng.Now(),
		Stats:     eng.Stats(),
	}
	sum, alive := 0.0, 0
	for i := 0; i < n; i++ {
		if eng.Alive(i) {
			sum += p.st.x[i]
			alive++
		} else {
			res.PerNode[i] = math.NaN()
		}
	}
	if alive > 0 {
		res.Value = sum / float64(alive)
	} else {
		res.Value = math.NaN()
	}
	return res, nil
}
