package hms

import (
	"math"
	"sort"
)

// maxWalkProbes caps the certification walk; a walk that has not
// certified by then reports !Exact and the caller falls back to value
// bisection inside the walk's probed bracket.
const maxWalkProbes = 12

// certDensity is the minimum average samples-per-rank-unit (Total/Count)
// at which the coverage certificates may be trusted: a population value
// inside the candidate interval is missed by every batch with
// probability ~e^-density, so density >= 8 bounds the per-value miss
// probability by ~3e-4 and the walk's tests pin it to zero on every
// golden seed. Below the threshold the walk insists on the strict
// nextafter certificate instead.
const certDensity = 8

type anchor struct {
	k    int // in-interval samples at or below the probed value
	rank int // exact rank from the probe
}

// Walk drives the certification endgame: it proposes Rank-probe values
// (Next), consumes their exact results (Observe), and terminates either
// with a certified-exact quantile (Exact) or with a probed bracket for
// the caller's bisection fallback (Bracket).
//
// Certificates, for target rank t over population m:
//
//   - value cert: a probed data value c with Rank(c) == t is exactly the
//     t-th order statistic (any smaller data value d with Rank(d) >= t
//     would force Rank(c) > t).
//   - strict cert: Rank(c) >= t and Rank(nextafter(c, -Inf)) < t means c
//     is the smallest value of rank >= t — floats are discrete, so no
//     data value lies strictly between.
//   - gap cert: Rank(c) >= t, and some x < c with Rank(x) < t such that
//     no retained sample lies in (x, c). Every population value in the
//     candidate interval appears in the multiset with probability
//     1 - e^-density, so (x, c) holds no data value and c is exact.
//     Only trusted when density >= certDensity.
type Walk struct {
	sum    *Summary
	t, m   int
	probed map[float64]int

	loV, hiV     float64
	loR, hiR     int
	haveLo, have bool

	anchors []anchor
	probes  int
	strict  int // nextafter probes spent (bounded: each gains one ULP at most)

	done  bool
	exact bool
	value float64
}

// NewWalk starts a certification walk over a sampling summary.
func NewWalk(sum *Summary) *Walk {
	return &Walk{
		sum:    sum,
		t:      sum.Target,
		m:      sum.Count,
		probed: make(map[float64]int),
	}
}

// Probes reports how many probe results the walk has consumed.
func (w *Walk) Probes() int { return w.probes }

// Exact reports the certified quantile, if the walk certified one.
func (w *Walk) Exact() (float64, bool) { return w.value, w.exact }

// Bracket reports the tightest probed bracket: lo is the largest probed
// value with rank < t (loOK false when none), hi the smallest probed
// value with rank >= t (hiOK false when none). The φ-quantile lies in
// (lo, hi] whenever both ends are known.
func (w *Walk) Bracket() (lo float64, loOK bool, hi float64, hiOK bool) {
	return w.loV, w.haveLo, w.hiV, w.have
}

// Observe records one exact Rank probe result.
func (w *Walk) Observe(q float64, rank int) {
	w.probed[q] = rank
	w.probes++
	if rank >= w.t {
		if !w.have || q < w.hiV {
			w.hiV, w.hiR, w.have = q, rank, true
		}
	} else {
		if !w.haveLo || q > w.loV {
			w.loV, w.loR, w.haveLo = q, rank, true
		}
	}
	w.anchors = append(w.anchors, anchor{k: w.countLE(q), rank: rank})
}

// countLE counts retained samples at or below v.
func (w *Walk) countLE(v float64) int {
	return sort.Search(len(w.sum.In), func(i int) bool { return w.sum.In[i] > v })
}

// isSample reports whether v appears in the retained multiset.
func (w *Walk) isSample(v float64) bool {
	i := sort.SearchFloat64s(w.sum.In, v)
	return i < len(w.sum.In) && w.sum.In[i] == v
}

// predSample returns the largest retained sample strictly below v.
func (w *Walk) predSample(v float64) (float64, bool) {
	i := sort.SearchFloat64s(w.sum.In, v)
	if i == 0 {
		return 0, false
	}
	return w.sum.In[i-1], true
}

// succSample returns the smallest retained sample strictly above v.
func (w *Walk) succSample(v float64) (float64, bool) {
	i := w.countLE(v)
	if i >= len(w.sum.In) {
		return 0, false
	}
	return w.sum.In[i], true
}

// density is the average number of samples per rank unit.
func (w *Walk) density() float64 {
	return float64(w.sum.Total) / float64(w.m)
}

// bestAnchor returns the probed anchor whose rank is closest to the
// target, preferring exact probe information over the global estimate.
func (w *Walk) bestAnchor() (anchor, bool) {
	best, ok := anchor{}, false
	for _, a := range w.anchors {
		if !ok || abs(a.rank-w.t) < abs(best.rank-w.t) {
			best, ok = a, true
		}
	}
	return best, ok
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

// candidate picks the retained sample whose estimated rank is the target:
// the anchored estimate of the rank of the sample at in-interval position
// k is rank_a + (k − k_a)/density, so the target position is
// k_a + density·(t − rank_a) (Below-offset global estimate before the
// first probe).
func (w *Walk) candidate() (float64, bool) {
	d := w.density()
	if d <= 0 || len(w.sum.In) == 0 {
		return 0, false
	}
	var kTarget float64
	if a, ok := w.bestAnchor(); ok {
		kTarget = float64(a.k) + d*float64(w.t-a.rank)
	} else {
		kTarget = d*float64(w.t) - float64(w.sum.Below)
	}
	idx := int(math.Ceil(kTarget)) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(w.sum.In) {
		idx = len(w.sum.In) - 1
	}
	return w.sum.In[idx], true
}

// finish certifies v as exact and ends the walk.
func (w *Walk) finish(v float64) (float64, bool) {
	w.done, w.exact, w.value = true, true, v
	return 0, false
}

// stop ends the walk without a certificate.
func (w *Walk) stop() (float64, bool) {
	w.done = true
	return 0, false
}

// Next returns the next value to probe with an exact Rank run, or false
// when the walk has terminated (check Exact, then Bracket).
func (w *Walk) Next() (float64, bool) {
	if w.done {
		return 0, false
	}
	if len(w.sum.In) == 0 || w.sum.Total == 0 || w.m <= 0 {
		return w.stop()
	}
	if w.probes >= maxWalkProbes {
		return w.stop()
	}
	if !w.have {
		// Still hunting an upper end: probe the estimated target sample,
		// skipping values already known to sit below the target rank.
		v, ok := w.candidate()
		if !ok {
			return w.stop()
		}
		if w.haveLo && v <= w.loV {
			if v, ok = w.succSample(w.loV); !ok {
				return w.stop()
			}
		}
		for {
			if _, seen := w.probed[v]; !seen {
				return v, true
			}
			if v, ok = w.succSample(v); !ok {
				return w.stop()
			}
		}
	}
	// An upper end hiV with Rank >= t is known; certify it or tighten.
	if w.hiR == w.t && w.isSample(w.hiV) {
		return w.finish(w.hiV)
	}
	below := math.Nextafter(w.hiV, math.Inf(-1))
	if r, seen := w.probed[below]; seen && r < w.t {
		return w.finish(w.hiV) // strict cert
	}
	trusted := w.density() >= certDensity
	pred, hasPred := w.predSample(w.hiV)
	if trusted {
		switch {
		case !hasPred && w.sum.Below == 0 && math.IsInf(w.sum.Lo, -1):
			// No sample anywhere below hiV across the whole session: the
			// population holds nothing below it, so rank(nextafter) = 0 < t.
			return w.finish(w.hiV)
		case hasPred && w.haveLo && w.loV >= pred:
			return w.finish(w.hiV) // gap cert: no sample inside (loV, hiV)
		case hasPred:
			if r, seen := w.probed[pred]; seen && r < w.t {
				return w.finish(w.hiV) // gap cert on adjacent sample
			}
		}
	}
	// Tighten: probe the adjacent sample below hiV when it is still
	// informative, else fall back to the strict nextafter certificate.
	if hasPred && (!w.haveLo || pred > w.loV) {
		if _, seen := w.probed[pred]; !seen {
			return pred, true
		}
	}
	if _, seen := w.probed[below]; !seen && w.strict < 2 {
		// A nextafter probe either certifies hiV (rank < t) or moves hiV
		// down a single ULP (rank >= t) — the latter cannot make
		// progress, so at most two are ever worth spending.
		w.strict++
		return below, true
	}
	return w.stop()
}
