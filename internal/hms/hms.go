// Package hms implements the sampling core of the Haeupler–Mohapatra–Su
// quantile protocol ("Optimal Gossip Algorithms for Exact and Approximate
// Quantile Computations", arXiv:1711.09258), adapted to the DRR-gossip
// session facade.
//
// The protocol replaces the facade's Rank-bisection loop (O(log(range/tol))
// sequential aggregate runs) with two much cheaper ingredients:
//
//  1. A sampling session (Sample): every node gossip-samples one uniformly
//     random peer's value per batch — one engine round on the complete
//     graph, O(RouteBound) rounds on a sparse overlay. Nodes hold a shared
//     candidate interval (Lo, Hi] that is pruned between batch epochs: the
//     accumulated in-interval sample multiset localizes the target rank to
//     a shrinking neighborhood (with a 4σ safety margin in sample-index
//     space), so later batches discard out-of-interval values on arrival
//     and the retained multiset stays small. After O(log n) batches every
//     population value near the target has been observed many times over.
//  2. A certification walk (Walk): a handful of exact Rank probes —
//     ordinary aggregate runs through the existing Count/Rank machinery —
//     anchor the sample-based rank estimates and then certify the exact
//     φ-quantile. Because the anchored estimate of a rank distance d has
//     standard deviation ≈ sqrt(d/b) after b batches, each probe shrinks
//     the remaining uncertainty quadratically and the walk terminates in
//     ~3 probes independent of n.
//
// The driver is centralized bookkeeping over honest engine traffic: every
// sample ride a real call (billed messages, real loss, real crashed
// callees), and the per-node choice logic is trivially local (each node
// draws from its own RNG stream under a fresh derive-domain, so the
// bisection path's randomness is untouched).
package hms

import (
	"fmt"
	"math"
	"sort"

	"drrgossip/internal/overlay"
	"drrgossip/internal/sim"
	"drrgossip/internal/xrand"
)

// DeriveDomain is the xrand derive-domain of the per-node sampling
// streams. It is disjoint from the engine's internal domains (loss 0x10,
// crash 0x20, node RNG 0x30) and from every protocol driver, so adding
// HMS runs to a session cannot perturb any other run's randomness.
const DeriveDomain = 0x60

// PhaseName labels the sampling session's cost in Answer.PhaseCosts and
// in telemetry phase events.
const PhaseName = "sample"

// Payload kinds of the sparse-overlay sampling batches (dense batches
// resolve synchronously and need no inbox traffic of their own).
const (
	kindSampleReq   uint8 = 0x91
	kindSampleReply uint8 = 0x92
)

// Options tune a sampling session.
type Options struct {
	// Target is the 1-based rank t = ceil(φ·Count) the session localizes.
	Target int
	// Count is the alive population m, as measured by a Count run.
	Count int
	// Batches overrides the number of sampling batches (0 = the default
	// 2·ceil(log2 m) + 24, the O(log n) schedule of the paper).
	Batches int
}

// Summary is the outcome of a sampling session: the retained in-interval
// sample multiset plus the bookkeeping a Walk needs to turn exact Rank
// probes into a certified quantile.
type Summary struct {
	// In holds the retained samples inside (Lo, Hi], sorted ascending.
	In []float64
	// Below counts received samples that fell at or below Lo (their
	// values are discarded; only the count matters for rank arithmetic).
	Below int
	// Above counts received samples above Hi.
	Above int
	// Total counts all received samples (Below + len(In) + Above plus
	// the in-interval samples pruned away by later interval shrinks,
	// which are re-accounted into Below/Above as they drop).
	Total int
	// Lo and Hi bound the final candidate interval (Lo, Hi].
	Lo, Hi float64
	// Target and Count echo the session parameters (post-clamping).
	Target, Count int
	// Batches is the number of sampling batches executed.
	Batches int
}

// defaultBatches is the O(log n) sampling schedule: enough batches that
// every population value near the target is expected to appear ~b times
// in the multiset (miss probability e^-b per value).
func defaultBatches(m int) int {
	return 2*ceilLog2(m) + 24
}

func ceilLog2(n int) int {
	l := int(math.Ceil(math.Log2(float64(n))))
	if l < 1 {
		l = 1
	}
	return l
}

// epochSizes returns the batch counts between interval shrinks: two quick
// bootstrap epochs localize the interval while the retained multiset is
// still the whole population sample, then steady chunks densify it.
func epochSizes(batches int) []int {
	sizes := []int{2, 4, 8}
	used := 14
	for used < batches {
		c := 10
		if used+c > batches {
			c = batches - used
		}
		sizes = append(sizes, c)
		used += c
	}
	if batches < 14 {
		sizes = nil
		for used = 0; used < batches; {
			c := 2
			if used+c > batches {
				c = batches - used
			}
			sizes = append(sizes, c)
			used += c
		}
	}
	return sizes
}

// Sample runs one sampling session on the engine: Batches gossip-sampling
// batches with interval pruning between epochs. ov selects the transport:
// nil uses the complete graph's synchronous calls (one round per batch),
// non-nil routes request/reply pairs over the overlay (2·RouteBound
// rounds per batch). values[i] is node i's input.
func Sample(eng *sim.Engine, ov overlay.Overlay, values []float64, opts Options) (*Summary, error) {
	n := eng.N()
	if len(values) != n {
		return nil, fmt.Errorf("hms: %d values for %d nodes", len(values), n)
	}
	m := opts.Count
	if m <= 0 {
		m = eng.NumAlive()
	}
	if m <= 0 {
		return nil, fmt.Errorf("hms: empty population")
	}
	t := opts.Target
	if t < 1 {
		t = 1
	}
	if t > m {
		t = m
	}
	batches := opts.Batches
	if batches <= 0 {
		batches = defaultBatches(m)
	}
	eng.SetPhase(PhaseName)

	s := &Summary{
		Lo:     math.Inf(-1),
		Hi:     math.Inf(1),
		Target: t,
		Count:  m,
	}
	// Per-node sampling streams under the fresh derive-domain; persistent
	// across batches so consecutive batches draw fresh peers.
	streams := make([]xrand.Stream, n)
	for i := 0; i < n; i++ {
		streams[i] = xrand.DeriveStream(eng.Seed(), DeriveDomain, uint64(i))
	}
	// epoch holds the current epoch's in-interval arrivals; merged into
	// s.In (kept sorted) at every shrink point.
	var epoch []float64
	collect := func(v float64) {
		s.Total++
		switch {
		case v <= s.Lo:
			s.Below++
		case v > s.Hi:
			s.Above++
		default:
			epoch = append(epoch, v)
		}
	}
	runBatch := func() {
		if ov == nil {
			denseBatch(eng, values, streams, collect)
		} else {
			sparseBatch(eng, ov, values, streams, collect)
		}
	}
	for _, size := range epochSizes(batches) {
		for b := 0; b < size; b++ {
			runBatch()
			s.Batches++
		}
		sort.Float64s(epoch)
		s.In = merge(s.In, epoch)
		epoch = epoch[:0]
		s.shrink()
	}
	return s, nil
}

// denseBatch performs one complete-graph sampling batch: every alive node
// calls one uniformly random node (crashed callees silently eat the
// request, exactly like any other call) and the callee's value rides the
// synchronous reply. One engine round.
func denseBatch(eng *sim.Engine, values []float64, streams []xrand.Stream, collect func(float64)) {
	n := eng.N()
	calls := make([]sim.Call, n)
	for i := 0; i < n; i++ {
		if !eng.Alive(i) {
			continue
		}
		calls[i] = sim.Call{Active: true, To: streams[i].Intn(n)}
	}
	eng.ResolveCalls(calls,
		func(callee, caller int, req sim.Payload) (sim.Payload, bool) {
			return sim.Payload{Kind: kindSampleReply, A: values[callee]}, true
		},
		func(caller int, resp sim.Payload) {
			collect(resp.A)
		})
	eng.Tick()
}

// sparseBatch performs one overlay sampling batch: every alive node draws
// a near-uniform peer via the overlay's Sample walk (rejected hops are
// charged like every sparse driver does), routes it a request, and the
// callee routes the value back. 2·RouteBound rounds drain both legs.
func sparseBatch(eng *sim.Engine, ov overlay.Overlay, values []float64, streams []xrand.Stream, collect func(float64)) {
	n := eng.N()
	for i := 0; i < n; i++ {
		if !eng.Alive(i) {
			continue
		}
		peer, path, totalHops := ov.Sample(&streams[i], i)
		eng.Charge(int64(totalHops - len(path)))
		if peer == i || len(path) == 0 {
			// Self-sample: the value is local, no traffic needed.
			collect(values[i])
			continue
		}
		eng.SendRouted(i, path, sim.Payload{Kind: kindSampleReq, X: int64(i)})
	}
	drain := 2 * ov.RouteBound()
	if drain < 2 {
		drain = 2
	}
	for tick := 0; tick < drain; tick++ {
		eng.Tick()
		for node := 0; node < n; node++ {
			for _, msg := range eng.Inbox(node) {
				switch msg.Pay.Kind {
				case kindSampleReq:
					caller := int(msg.Pay.X)
					if route := ov.Route(node, caller); len(route) > 0 {
						eng.SendRouted(node, route, sim.Payload{Kind: kindSampleReply, A: values[node]})
					}
				case kindSampleReply:
					collect(msg.Pay.A)
				}
			}
		}
	}
}

// merge merges two sorted slices into the first.
func merge(dst, src []float64) []float64 {
	if len(src) == 0 {
		return dst
	}
	if len(dst) == 0 {
		return append(dst, src...)
	}
	out := make([]float64, 0, len(dst)+len(src))
	i, j := 0, 0
	for i < len(dst) && j < len(src) {
		if dst[i] <= src[j] {
			out = append(out, dst[i])
			i++
		} else {
			out = append(out, src[j])
			j++
		}
	}
	out = append(out, dst[i:]...)
	out = append(out, src[j:]...)
	return out
}

// Candidate returns the retained sample at the globally estimated target
// position — the best probe-free point estimate of the quantile (used as
// the sampling run's reported Value; the Walk refines it with exact
// probes).
func (s *Summary) Candidate() (float64, bool) {
	if len(s.In) == 0 || s.Total == 0 || s.Count <= 0 {
		return 0, false
	}
	k := float64(s.Total)*float64(s.Target)/float64(s.Count) - float64(s.Below)
	idx := int(math.Ceil(k)) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(s.In) {
		idx = len(s.In) - 1
	}
	return s.In[idx], true
}

// shrink prunes the candidate interval to the estimated target
// neighborhood with a 4σ margin in sample-index space: the number of
// samples at or below the target value is concentrated around
// Total·(t/m) with standard deviation sqrt(Total·p·(1−p)), so keeping
// [k*−w, k*+w] retains the target with overwhelming probability while
// discarding the bulk of the retained multiset.
func (s *Summary) shrink() {
	if len(s.In) == 0 || s.Total == 0 {
		return
	}
	p := float64(s.Target) / float64(s.Count)
	kStar := float64(s.Total)*p - float64(s.Below)
	w := 4*math.Sqrt(float64(s.Total)*p*(1-p)) + 2
	loIdx := int(math.Floor(kStar-w)) - 1 // 0-based: samples [0..loIdx] drop below
	hiIdx := int(math.Ceil(kStar+w)) - 1  // 0-based: keep through hiIdx
	if loIdx >= len(s.In) {
		loIdx = len(s.In) - 1
	}
	if loIdx >= 0 {
		newLo := s.In[loIdx]
		// Drop every sample <= newLo (duplicates of the boundary value
		// must drop with it: the interval is open at Lo).
		cut := sort.Search(len(s.In), func(i int) bool { return s.In[i] > newLo })
		if cut > loIdx+1 {
			// The boundary value's duplicate pile extends past the margin
			// index — for extreme targets (t near 1 or m) the pile IS the
			// estimated target, and cutting it would prune the quantile
			// out of the interval. Step down to the previous distinct
			// value, or skip the cut entirely.
			first := sort.Search(len(s.In), func(i int) bool { return s.In[i] >= newLo })
			if first == 0 {
				cut = 0
			} else {
				newLo = s.In[first-1]
				cut = first
			}
		}
		if cut > 0 {
			s.Below += cut
			s.In = s.In[cut:]
			hiIdx -= cut
			s.Lo = newLo
		}
	}
	if hiIdx >= 0 && hiIdx < len(s.In)-1 {
		newHi := s.In[hiIdx]
		// Keep every duplicate of the boundary value: closed at Hi.
		cut := sort.Search(len(s.In), func(i int) bool { return s.In[i] > newHi })
		s.Above += len(s.In) - cut
		s.In = s.In[:cut]
		s.Hi = newHi
	}
}
