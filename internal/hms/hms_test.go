package hms

import (
	"math"
	"sort"
	"testing"

	"drrgossip/internal/agg"
	"drrgossip/internal/chord"
	"drrgossip/internal/overlay"
	"drrgossip/internal/sim"
)

func TestEpochSizesCoverBatches(t *testing.T) {
	for _, batches := range []int{1, 2, 3, 5, 13, 14, 15, 24, 44, 64, 101} {
		sizes := epochSizes(batches)
		sum := 0
		for _, s := range sizes {
			if s <= 0 {
				t.Fatalf("batches=%d: non-positive epoch %v", batches, sizes)
			}
			sum += s
		}
		if sum != batches {
			t.Fatalf("batches=%d: epochs %v sum to %d", batches, sizes, sum)
		}
	}
}

func TestMergeSorted(t *testing.T) {
	cases := [][2][]float64{
		{{}, {}},
		{{1, 3, 5}, {}},
		{{}, {2, 4}},
		{{1, 3, 5}, {2, 3, 6}},
		{{1, 1, 1}, {1, 1}},
	}
	for _, c := range cases {
		want := append(append([]float64{}, c[0]...), c[1]...)
		sort.Float64s(want)
		got := merge(append([]float64{}, c[0]...), c[1])
		if len(got) != len(want) {
			t.Fatalf("merge(%v, %v) = %v, want %v", c[0], c[1], got, want)
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("merge(%v, %v) = %v, want %v", c[0], c[1], got, want)
			}
		}
	}
}

// TestShrinkKeepsDuplicatePile is the regression for the extreme-target
// pruning bug: when the boundary value's duplicate pile extends past the
// 4σ margin index (typical for φ near 1/m, where the minimum appears
// dozens of times in the multiset), the lower cut must step down to the
// previous distinct value instead of dropping the pile — otherwise the
// target itself is pruned out of the candidate interval.
func TestShrinkKeepsDuplicatePile(t *testing.T) {
	s := &Summary{
		Lo: math.Inf(-1), Hi: math.Inf(1),
		Target: 1, Count: 100,
	}
	// 40 copies of the minimum (the target), then a spread tail.
	for i := 0; i < 40; i++ {
		s.In = append(s.In, 12.13)
	}
	for i := 0; i < 160; i++ {
		s.In = append(s.In, 20+float64(i))
	}
	s.Total = len(s.In)
	s.shrink()
	if len(s.In) == 0 || s.In[0] != 12.13 {
		t.Fatalf("shrink pruned the duplicate pile holding the target: In[0]=%v Lo=%v Below=%d",
			first(s.In), s.Lo, s.Below)
	}
	if s.Below+len(s.In)+s.Above != s.Total {
		t.Fatalf("accounting broken: Below=%d In=%d Above=%d Total=%d",
			s.Below, len(s.In), s.Above, s.Total)
	}
}

func first(in []float64) float64 {
	if len(in) == 0 {
		return math.NaN()
	}
	return in[0]
}

// TestShrinkMaxTarget covers the mirror extreme: t == m, where the
// estimated target index sits at the top of the multiset and a naive
// lower cut at In[loIdx] could empty the interval entirely.
func TestShrinkMaxTarget(t *testing.T) {
	s := &Summary{
		Lo: math.Inf(-1), Hi: math.Inf(1),
		Target: 100, Count: 100,
	}
	for i := 0; i < 150; i++ {
		s.In = append(s.In, float64(i))
	}
	for i := 0; i < 30; i++ {
		s.In = append(s.In, 999.5) // the maximum, duplicated
	}
	s.Total = len(s.In)
	s.shrink()
	if len(s.In) == 0 || s.In[len(s.In)-1] != 999.5 {
		t.Fatalf("shrink pruned the maximum: In=%v..%v", first(s.In), s.In[len(s.In)-1])
	}
	if s.Below+len(s.In)+s.Above != s.Total {
		t.Fatalf("accounting broken: Below=%d In=%d Above=%d Total=%d",
			s.Below, len(s.In), s.Above, s.Total)
	}
}

func TestShrinkAccountingMidTarget(t *testing.T) {
	s := &Summary{
		Lo: math.Inf(-1), Hi: math.Inf(1),
		Target: 50, Count: 100,
	}
	for i := 0; i < 1000; i++ {
		s.In = append(s.In, float64(i%100))
	}
	sort.Float64s(s.In)
	s.Total = len(s.In)
	s.shrink()
	if s.Below+len(s.In)+s.Above != s.Total {
		t.Fatalf("accounting broken: Below=%d In=%d Above=%d Total=%d",
			s.Below, len(s.In), s.Above, s.Total)
	}
	if len(s.In) >= 1000 {
		t.Fatal("shrink retained the full multiset")
	}
	// The true target (rank 50 of values 0..99 each ×10 ⇒ value 4..5
	// region of the downsampled copy — here the 50th percentile of the
	// sample itself) must stay inside (Lo, Hi].
	target := s.In[0] // weakest check: interval is non-empty and ordered
	if !(target > s.Lo && target <= s.Hi) {
		t.Fatalf("retained samples outside interval: %v not in (%v, %v]", target, s.Lo, s.Hi)
	}
}

func sampleSummary(t *testing.T, n int, phi float64, seed uint64, sparse bool) (*Summary, []float64) {
	t.Helper()
	values := agg.GenUniform(n, 0, 1000, seed)
	eng := sim.NewEngine(n, sim.Options{Seed: seed})
	m := n
	target := int(math.Ceil(phi * float64(m)))
	if target < 1 {
		target = 1
	}
	var s *Summary
	var err error
	if sparse {
		ring, rerr := chord.New(n, chord.Options{Bits: 30})
		if rerr != nil {
			t.Fatal(rerr)
		}
		s, err = Sample(eng, overlay.NewChord(ring), values, Options{Target: target, Count: m})
	} else {
		s, err = Sample(eng, nil, values, Options{Target: target, Count: m})
	}
	if err != nil {
		t.Fatal(err)
	}
	return s, values
}

func exactQuantile(values []float64, target int) float64 {
	sorted := append([]float64{}, values...)
	sort.Float64s(sorted)
	return sorted[target-1]
}

func checkSummary(t *testing.T, s *Summary, values []float64, label string) {
	t.Helper()
	if !sort.Float64sAreSorted(s.In) {
		t.Fatalf("%s: retained multiset not sorted", label)
	}
	if s.Below+len(s.In)+s.Above != s.Total {
		t.Fatalf("%s: accounting broken: Below=%d In=%d Above=%d Total=%d",
			label, s.Below, len(s.In), s.Above, s.Total)
	}
	want := exactQuantile(values, s.Target)
	if !(want > s.Lo && want <= s.Hi) {
		t.Fatalf("%s: true quantile %v outside candidate interval (%v, %v]",
			label, want, s.Lo, s.Hi)
	}
	found := false
	for _, v := range s.In {
		if v == want {
			found = true
			break
		}
	}
	if !found {
		t.Fatalf("%s: true quantile %v not among %d retained samples", label, want, len(s.In))
	}
	c, ok := s.Candidate()
	if !ok {
		t.Fatalf("%s: no candidate", label)
	}
	// The probe-free candidate lands within the (narrow) final interval.
	if !(c > s.Lo && c <= s.Hi) {
		t.Fatalf("%s: candidate %v outside (%v, %v]", label, c, s.Lo, s.Hi)
	}
}

func TestSampleDenseLocalizesTarget(t *testing.T) {
	for _, phi := range []float64{0.01, 0.25, 0.5, 0.99, 1.0} {
		s, values := sampleSummary(t, 600, phi, 11, false)
		checkSummary(t, s, values, "dense")
	}
}

func TestSampleSparseLocalizesTarget(t *testing.T) {
	for _, phi := range []float64{0.01, 0.5, 1.0} {
		s, values := sampleSummary(t, 512, phi, 12, true)
		checkSummary(t, s, values, "sparse")
	}
}

func TestSampleDeterministic(t *testing.T) {
	a, _ := sampleSummary(t, 400, 0.5, 21, false)
	b, _ := sampleSummary(t, 400, 0.5, 21, false)
	if a.Total != b.Total || a.Below != b.Below || a.Lo != b.Lo || a.Hi != b.Hi ||
		len(a.In) != len(b.In) {
		t.Fatalf("same seed diverged: %+v vs %+v", a, b)
	}
	for i := range a.In {
		if a.In[i] != b.In[i] {
			t.Fatalf("retained multiset diverged at %d: %v vs %v", i, a.In[i], b.In[i])
		}
	}
}

// walkWithOracle drives a Walk against an exact rank oracle
// (rank(q) = #{v : v <= q}) and returns the certified value.
func walkWithOracle(t *testing.T, s *Summary, values []float64) (float64, int) {
	t.Helper()
	w := NewWalk(s)
	for {
		q, ok := w.Next()
		if !ok {
			break
		}
		rank := 0
		for _, v := range values {
			if v <= q {
				rank++
			}
		}
		w.Observe(q, rank)
	}
	v, exact := w.Exact()
	if !exact {
		lo, loOK, hi, hiOK := w.Bracket()
		t.Fatalf("walk did not certify after %d probes (bracket %v/%v %v/%v)",
			w.Probes(), lo, loOK, hi, hiOK)
	}
	return v, w.Probes()
}

func TestWalkCertifiesExact(t *testing.T) {
	for _, phi := range []float64{0.01, 0.25, 0.5, 0.99, 1.0} {
		s, values := sampleSummary(t, 600, phi, 31, false)
		got, probes := walkWithOracle(t, s, values)
		want := exactQuantile(values, s.Target)
		if got != want {
			t.Fatalf("phi=%v: walk certified %v, want %v", phi, got, want)
		}
		if probes > maxWalkProbes {
			t.Fatalf("phi=%v: %d probes exceeds cap", phi, probes)
		}
	}
}

func TestWalkDuplicateHeavy(t *testing.T) {
	n := 300
	values := make([]float64, n)
	for i := range values {
		values[i] = float64(i % 5)
	}
	for _, phi := range []float64{0.01, 0.2, 0.5, 0.8, 1.0} {
		eng := sim.NewEngine(n, sim.Options{Seed: 41})
		target := int(math.Ceil(phi * float64(n)))
		if target < 1 {
			target = 1
		}
		s, err := Sample(eng, nil, values, Options{Target: target, Count: n})
		if err != nil {
			t.Fatal(err)
		}
		got, _ := walkWithOracle(t, s, values)
		want := exactQuantile(values, target)
		if got != want {
			t.Fatalf("phi=%v: walk certified %v, want %v", phi, got, want)
		}
	}
}

func TestSampleValidation(t *testing.T) {
	eng := sim.NewEngine(8, sim.Options{Seed: 1})
	if _, err := Sample(eng, nil, make([]float64, 4), Options{}); err == nil {
		t.Fatal("length mismatch accepted")
	}
}
