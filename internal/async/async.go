// Package async is the deterministic event-driven counterpart of
// internal/sim: instead of synchronous rounds, every node owns a Poisson
// clock (i.i.d. exponential gaps) and acts alone when its clock ticks —
// the standard asynchronous time model of the pairwise-gossip literature
// (Boyd et al.; Dimakis et al., "Gossip Algorithms for Distributed
// Signal Processing"). The engine is a scheduler plus an accountant: it
// owns the event heap, the clocks, membership, link faults and the cost
// counters, while the protocol (e.g. internal/pairwise) is a node state
// machine the driver steps on each dispatched tick. Nothing in the
// engine knows what a protocol message means, so swapping the simulated
// transport for a real one (the cmd/gossipd direction in ROADMAP) is a
// driver swap, not an engine change.
//
// # Determinism contract
//
// Every run is a pure function of (n, Options):
//
//   - Per-node clocks are xrand streams derived from (Seed, clock
//     domain, node); the exponential gaps of node i never depend on what
//     other nodes do.
//   - The event heap's order is total — (time, node id, seq) — so
//     simultaneous timestamps dispatch in node-id order, never in map or
//     insertion order.
//   - Per-transmission loss is a stateless hash of (Seed, loss domain,
//     attempt sequence number), assigned on the single-threaded dispatch
//     path.
//   - The engine runs strictly sequentially: one event at a time, no
//     internal goroutines. Bit-identical results across GOMAXPROCS and
//     repeated runs are structural, not a property to re-verify per
//     protocol (still pinned by determinism_test.go at the facade).
//
// Crashed nodes keep ticking: a dead node's clock events still pop and
// reschedule (the dispatcher reports them as not-alive so drivers skip
// the protocol action). This keeps every node's tick sequence — and
// therefore every clock draw — independent of the fault schedule, so
// attaching a fault plan perturbs only what it should.
//
// # Fault plans and wall-clock binding
//
// internal/faults plans are round-indexed; asynchronous time has no
// rounds. The bridge is the fault tick: simulated time is quantized at
// TicksPerUnit ticks per unit of simulated time, and the engine fires
// the registered round hook once for every tick boundary crossed before
// dispatching the event that crossed it. Binding a plan against the
// horizon measured in fault ticks (see the facade) therefore resolves
// fractional timings ("crash 50% through the run") against wall-clock
// time, and the same faults.Bound machinery drives both engines.
//
// # Cost accounting
//
// Counters are sim.Counters with the async reading: Rounds counts
// dispatched clock ticks (events), Calls counts pairwise exchange
// attempts, and every transmission attempt — two legs per exchange, the
// paper's accounting unit — bills one message. One successful pairwise
// exchange therefore costs exactly 2 messages, which is what the AS1
// experiment compares against the synchronous pipelines' message bill.
package async

import (
	"math"

	"drrgossip/internal/bitset"
	"drrgossip/internal/sim"
	"drrgossip/internal/xrand"
)

// TicksPerUnit is the fault-tick quantization: how many round-hook ticks
// one unit of simulated time spans. A power of two keeps tick boundaries
// exact in float arithmetic. At the default clock rate (1 tick per node
// per unit time) one fault tick is ~n/1024 node activations, fine enough
// that fractional fault timings land within a fraction of a percent of
// their wall-clock target.
const TicksPerUnit = 1024

// Hash/derivation domains. Deliberately disjoint from internal/sim's
// (0x10..0x30): an async run with the same seed as a sync run shares its
// initial crash set (sim.InitialCrashSet) but none of its protocol or
// loss randomness.
const (
	hashDomainLoss = 0x50 // per-transmission loss decisions
	rngDomainClock = 0x51 // per-node exponential clock streams
	rngDomainNode  = 0x52 // per-node protocol streams
)

// Options configure an Engine.
type Options struct {
	// Seed drives every clock gap, loss decision and protocol stream;
	// equal (n, Options) give bit-identical runs.
	Seed uint64
	// Loss is the per-transmission drop probability δ ∈ [0,1).
	Loss float64
	// CrashFrac crashes this fraction of nodes before the run starts,
	// selecting the same nodes as a sim.Engine with the same seed
	// (sim.InitialCrashSet), so sync and async answers are comparable
	// over one surviving population.
	CrashFrac float64
	// Rate is the default Poisson clock rate per node in ticks per unit
	// of simulated time (0 means 1). Rates, when non-nil, overrides the
	// rate per node; a node with rate <= 0 never ticks (its events are
	// never scheduled — the "zero-rate" edge case).
	Rate  float64
	Rates []float64
}

// Engine is the asynchronous event-driven scheduler. It is not safe for
// concurrent use; drivers dispatch events strictly sequentially.
type Engine struct {
	n     int
	opts  Options
	now   float64
	c     sim.Counters
	alive *bitset.Set
	nAliv int

	heap   eventHeap
	clocks []xrand.Stream
	rngs   []xrand.Stream
	seq    uint64 // scheduling sequence number (heap tie-break)
	xmit   uint64 // transmission attempt sequence (loss hashing)

	linkFault sim.LinkFault
	tickHook  func(tick int)
	tick      int

	observer  func(events int)
	memberObs func(node int, alive bool)
	phaseObs  func(phase string)
	phase     string
	residual  float64

	// abortCheck is the run watchdog (SetAbortCheck): consulted every
	// abortEvery dispatched events in Run; a non-nil error stops the
	// loop and is recorded in aborted.
	abortCheck func(events int) error
	abortEvery int
	aborted    error
}

// NewEngine builds an engine for n nodes: derives the per-node clock and
// protocol streams, applies the initial crash set, and schedules every
// positive-rate node's first tick from time 0.
func NewEngine(n int, opts Options) *Engine {
	e := &Engine{
		n:        n,
		opts:     opts,
		alive:    bitset.New(n),
		nAliv:    n,
		clocks:   make([]xrand.Stream, n),
		rngs:     make([]xrand.Stream, n),
		residual: math.NaN(),
	}
	e.alive.Fill()
	for i := 0; i < n; i++ {
		e.clocks[i] = xrand.DeriveStream(opts.Seed, rngDomainClock, uint64(i))
		e.rngs[i] = xrand.DeriveStream(opts.Seed, rngDomainNode, uint64(i))
	}
	for _, i := range sim.InitialCrashSet(n, sim.Options{Seed: opts.Seed, CrashFrac: opts.CrashFrac}) {
		e.alive.Clear(i)
		e.nAliv--
	}
	e.heap.ev = make([]event, 0, n)
	for i := 0; i < n; i++ {
		e.schedule(i)
	}
	return e
}

// rate returns node i's clock rate under the Options defaulting rules.
func (e *Engine) rate(i int) float64 {
	if e.opts.Rates != nil {
		return e.opts.Rates[i]
	}
	if e.opts.Rate == 0 {
		return 1
	}
	return e.opts.Rate
}

// schedule pushes node i's next clock tick, an exponential gap after
// e.now drawn from i's own clock stream. Zero- and negative-rate nodes
// are never scheduled.
func (e *Engine) schedule(i int) {
	rate := e.rate(i)
	if rate <= 0 {
		return
	}
	// 1-Float64() is in (0,1], so the log is finite and the gap > 0:
	// time strictly advances and a node can never tick twice at once.
	gap := -math.Log(1-e.clocks[i].Float64()) / rate
	e.seq++
	e.heap.push(event{at: e.now + gap, node: int32(i), seq: e.seq})
}

// N returns the node count.
func (e *Engine) N() int { return e.n }

// Now returns the current simulated time (the timestamp of the last
// dispatched event).
func (e *Engine) Now() float64 { return e.now }

// NumAlive returns the number of currently alive nodes.
func (e *Engine) NumAlive() int { return e.nAliv }

// Alive reports whether node i is currently alive.
func (e *Engine) Alive(i int) bool { return e.alive.Test(i) }

// Crash removes node i mid-run: its protocol actions are skipped (the
// dispatcher reports its ticks as not-alive) and exchanges with it fail,
// but its clock keeps ticking so the event stream's shape is fault-
// independent. Crashing a dead node is a no-op.
func (e *Engine) Crash(i int) {
	if e.alive.Test(i) {
		e.alive.Clear(i)
		e.nAliv--
		if e.memberObs != nil {
			e.memberObs(i, false)
		}
	}
}

// Revive rejoins node i after a crash; it resumes acting on its next
// clock tick with whatever protocol state it crashed with (the
// protocol's concern, as in sim). Reviving a live node is a no-op.
func (e *Engine) Revive(i int) {
	if !e.alive.Test(i) {
		e.alive.Set(i)
		e.nAliv++
		if e.memberObs != nil {
			e.memberObs(i, true)
		}
	}
}

// RNG returns node i's protocol stream (peer-selection randomness).
// Like the clocks, it is derived from (Seed, node) only.
func (e *Engine) RNG(i int) *xrand.Stream { return &e.rngs[i] }

// Seed returns the engine's master seed.
func (e *Engine) Seed() uint64 { return e.opts.Seed }

// Stats returns the accumulated counters; see the package comment for
// their async reading (Rounds = dispatched events).
func (e *Engine) Stats() sim.Counters { return e.c }

// Round returns the number of events dispatched so far — the async
// stand-in for the synchronous round index, used by the telemetry layer
// to map round-event strides onto event counts.
func (e *Engine) Round() int { return e.c.Rounds }

// SetLinkFault installs (or, with nil, removes) the fault-plan link
// predicate, consulted on every transmission attempt exactly as in sim.
func (e *Engine) SetLinkFault(f sim.LinkFault) { e.linkFault = f }

// SetRoundHook installs the fault scheduler, invoked once per fault tick
// (TicksPerUnit ticks per unit of simulated time) on the sequential
// dispatch path, before the event that crossed the tick boundary.
// faults.Bound.Attach installs its schedule here, with rounds read as
// fault ticks.
func (e *Engine) SetRoundHook(h func(tick int)) { e.tickHook = h }

// SetEventObserver installs a read-only tap invoked after every
// dispatched event (alive or not), with the running event count.
func (e *Engine) SetEventObserver(f func(events int)) { e.observer = f }

// SetAbortCheck installs (or, with nil, removes) a run watchdog: the
// Run loop consults f every `every` dispatched events (every < 1 means
// every event) with the running event count, and a non-nil error stops
// the loop gracefully — the engine records it (see Aborted) and Run
// returns, so drivers close their books on the partial state instead of
// unwinding. Like the synchronous counterpart (sim.Engine.SetAbortCheck)
// it is control-plane only: a run the check never aborts is
// bit-identical to one without a check installed.
func (e *Engine) SetAbortCheck(f func(events int) error, every int) {
	if every < 1 {
		every = 1
	}
	e.abortCheck = f
	e.abortEvery = every
}

// Aborted returns the error the abort check stopped the last Run with,
// or nil when no abort occurred.
func (e *Engine) Aborted() error { return e.aborted }

// SetMembershipObserver installs a read-only tap on Crash/Revive
// transitions (the telemetry fault events).
func (e *Engine) SetMembershipObserver(f func(node int, alive bool)) { e.memberObs = f }

// SetPhase records the driver's current phase label and notifies the
// phase observer; Phase returns it. The pairwise drivers run a single
// "pairwise" phase.
func (e *Engine) SetPhase(p string) {
	e.phase = p
	if e.phaseObs != nil {
		e.phaseObs(p)
	}
}

// Phase returns the current phase label.
func (e *Engine) Phase() string { return e.phase }

// SetPhaseObserver installs a read-only tap on phase transitions.
func (e *Engine) SetPhaseObserver(f func(phase string)) { e.phaseObs = f }

// ReportResidual records the driver's current convergence residual (the
// pairwise drivers report the spread of the estimates across alive
// nodes); Residual returns the last report, NaN before the first.
func (e *Engine) ReportResidual(r float64) { e.residual = r }

// Residual returns the last driver-reported convergence residual.
func (e *Engine) Residual() float64 { return e.residual }

// Step dispatches the next event: pops the earliest (time, node, seq)
// tick, advances simulated time, fires every fault tick the new time
// crossed, bills the event, and schedules the node's next tick. It
// returns the ticking node and whether it is alive (drivers skip the
// protocol action of dead nodes); ok is false when no events are
// scheduled at all (every node has rate <= 0).
func (e *Engine) Step() (node int, alive, ok bool) {
	if e.heap.len() == 0 {
		return -1, false, false
	}
	ev := e.heap.pop()
	e.now = ev.at
	if e.tickHook != nil {
		// Fire every tick boundary in (previous, now]: a hook keyed at
		// tick t acts before any event at time >= t/TicksPerUnit.
		for target := int(ev.at * TicksPerUnit); e.tick < target; {
			e.tick++
			e.tickHook(e.tick)
		}
	}
	e.c.Rounds++
	node = int(ev.node)
	e.schedule(node)
	return node, e.alive.Test(node), true
}

// Run drives the event loop: it dispatches up to maxEvents events,
// invoking handler for each tick of an alive node, then the event
// observer (after the handler, so observers see the post-action state),
// then stop. It returns the number of events dispatched in this call.
// The loop ends when stop reports true, maxEvents is reached, no events
// are scheduled, or the installed abort check rejects the run (Aborted
// then reports why).
func (e *Engine) Run(handler func(node int), stop func() bool, maxEvents int) int {
	events := 0
	for events < maxEvents {
		node, alive, ok := e.Step()
		if !ok {
			break
		}
		events++
		if alive {
			handler(node)
		}
		if e.observer != nil {
			e.observer(e.c.Rounds)
		}
		if e.abortCheck != nil && e.c.Rounds%e.abortEvery == 0 {
			if err := e.abortCheck(e.c.Rounds); err != nil {
				e.aborted = err
				break
			}
		}
		if stop() {
			break
		}
	}
	return events
}

// Exchange performs the transport of one atomic pairwise exchange
// between u and v: a request leg u→v and a reply leg v→u, each billing
// one message and each subject to the installed link fault and the
// uniform loss. The exchange succeeds — and only then should the caller
// commit both nodes' state — when both legs survive and v is alive; a
// failed handshake leaves both nodes unchanged (the reliable-handshake
// assumption of the pairwise-averaging analyses, which keeps the mean
// invariant under loss). Calls counts attempts, successful or not.
func (e *Engine) Exchange(u, v int) bool {
	e.c.Calls++
	if !e.attempt(u, v) {
		return false
	}
	if !e.alive.Test(v) {
		return false
	}
	return e.attempt(v, u)
}

// attempt accounts one transmission and decides its survival: the loss
// decision hashes the attempt sequence number (assigned here, on the
// sequential dispatch path), compounded with any installed link fault
// exactly as in sim.Engine.attempt.
func (e *Engine) attempt(from, to int) bool {
	e.xmit++
	e.c.Messages++
	eff := e.opts.Loss
	if e.linkFault != nil {
		if x := e.linkFault(from, to); x > 0 {
			if x >= 1 {
				e.c.Drops++
				e.c.Blocked++
				return false
			}
			eff = 1 - (1-eff)*(1-x) // independent fault and link loss
		}
	}
	if eff > 0 && xrand.HashFloat(e.opts.Seed, hashDomainLoss, e.xmit) < eff {
		e.c.Drops++
		return false
	}
	return true
}
