// The event heap: a hand-rolled binary min-heap over clock-tick events
// with a total order, so the pop sequence — and with it every downstream
// random draw — is fully determined by the event set and never by
// insertion order or float coincidences.

package async

// event is one scheduled clock tick: node fires at simulated time at.
// seq is the engine's monotonically increasing scheduling sequence
// number, the final tie-break that makes the order total even if two
// events collide on both time and node (which cannot happen for clock
// ticks — a node has one pending tick — but keeps the heap safe for
// future event kinds).
type event struct {
	at   float64
	node int32
	seq  uint64
}

// before is the heap's total order: (time, node id, seq) lexicographic.
// Equal-time events dispatch in node-id order — the stable tie-break the
// determinism contract pins (see TestHeapTieBreak).
func (a event) before(b event) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	if a.node != b.node {
		return a.node < b.node
	}
	return a.seq < b.seq
}

// eventHeap is a binary min-heap under event.before. The zero value is
// an empty heap ready for use.
type eventHeap struct {
	ev []event
}

func (h *eventHeap) len() int { return len(h.ev) }

func (h *eventHeap) push(e event) {
	h.ev = append(h.ev, e)
	i := len(h.ev) - 1
	for i > 0 {
		p := (i - 1) / 2
		if !h.ev[i].before(h.ev[p]) {
			break
		}
		h.ev[i], h.ev[p] = h.ev[p], h.ev[i]
		i = p
	}
}

// pop removes and returns the minimum event; it must not be called on an
// empty heap.
func (h *eventHeap) pop() event {
	top := h.ev[0]
	last := len(h.ev) - 1
	h.ev[0] = h.ev[last]
	h.ev = h.ev[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		m := i
		if l < last && h.ev[l].before(h.ev[m]) {
			m = l
		}
		if r < last && h.ev[r].before(h.ev[m]) {
			m = r
		}
		if m == i {
			break
		}
		h.ev[i], h.ev[m] = h.ev[m], h.ev[i]
		i = m
	}
	return top
}
