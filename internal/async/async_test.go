package async

import (
	"math"
	"testing"

	"drrgossip/internal/faults"
	"drrgossip/internal/sim"
	"drrgossip/internal/xrand"
)

// The heap's order must be total on (time, node, seq): equal timestamps
// dispatch by node id, and a node's co-timed events (impossible under
// exponential clocks, but the heap must not care) by schedule order.
func TestHeapTieBreak(t *testing.T) {
	var h eventHeap
	in := []event{
		{at: 2.0, node: 1, seq: 5},
		{at: 1.0, node: 3, seq: 2},
		{at: 1.0, node: 0, seq: 7},
		{at: 1.0, node: 3, seq: 9},
		{at: 0.5, node: 9, seq: 1},
		{at: 1.0, node: 3, seq: 4},
	}
	for _, ev := range in {
		h.push(ev)
	}
	want := []event{
		{at: 0.5, node: 9, seq: 1},
		{at: 1.0, node: 0, seq: 7},
		{at: 1.0, node: 3, seq: 2},
		{at: 1.0, node: 3, seq: 4},
		{at: 1.0, node: 3, seq: 9},
		{at: 2.0, node: 1, seq: 5},
	}
	for i, w := range want {
		if got := h.pop(); got != w {
			t.Fatalf("pop %d: got %+v, want %+v", i, got, w)
		}
	}
	if h.len() != 0 {
		t.Fatalf("heap not drained: %d left", h.len())
	}
}

// Randomized heap order check: pops must come out sorted under before()
// for any push order, including bursts of duplicate timestamps.
func TestHeapTotalOrder(t *testing.T) {
	rng := xrand.Derive(0xA5, 0x7E57)
	var h eventHeap
	const rounds = 2000
	for i := 0; i < rounds; i++ {
		// Coarse timestamps force many exact ties.
		at := float64(rng.Intn(50)) / 8
		h.push(event{at: at, node: int32(rng.Intn(7)), seq: uint64(i)})
	}
	prev := h.pop()
	for h.len() > 0 {
		cur := h.pop()
		if cur.before(prev) {
			t.Fatalf("heap order violated: %+v popped after %+v", cur, prev)
		}
		prev = cur
	}
}

// Nodes with rate <= 0 must never tick; everyone else must keep their
// own tick stream. An engine whose every node has rate 0 dispatches
// nothing and Run terminates immediately.
func TestZeroRateNodes(t *testing.T) {
	e := NewEngine(4, Options{Seed: 11, Rates: []float64{1, 0, 2, -1}})
	seen := make(map[int]int)
	n := e.Run(func(u int) { seen[u]++ }, func() bool { return false }, 500)
	if n != 500 {
		t.Fatalf("dispatched %d events, want 500", n)
	}
	if seen[1] != 0 || seen[3] != 0 {
		t.Fatalf("zero/negative-rate nodes ticked: %v", seen)
	}
	if seen[0] == 0 || seen[2] == 0 {
		t.Fatalf("positive-rate nodes never ticked: %v", seen)
	}
	// Rate 2 ticks about twice as often as rate 1 over 500 events.
	if seen[2] < seen[0] {
		t.Fatalf("rate-2 node ticked less than rate-1 node: %v", seen)
	}

	dead := NewEngine(3, Options{Seed: 11, Rate: -1})
	if _, _, ok := dead.Step(); ok {
		t.Fatal("all-zero-rate engine dispatched an event")
	}
	if n := dead.Run(func(int) { t.Fatal("handler ran") }, func() bool { return false }, 10); n != 0 {
		t.Fatalf("all-zero-rate Run dispatched %d events", n)
	}
}

// Crashing a node must not change anyone's clock draws: the dispatched
// (time, node) sequence is identical with and without the crash, the
// dead node's ticks are reported not-alive, and a revived node resumes
// on its own next tick.
func TestCrashKeepsClockSequence(t *testing.T) {
	const n, events = 8, 400
	type tick struct {
		at   float64
		node int
	}
	run := func(crash bool) ([]tick, []bool) {
		e := NewEngine(n, Options{Seed: 21})
		ticks := make([]tick, 0, events)
		alives := make([]bool, 0, events)
		for i := 0; i < events; i++ {
			if crash && i == 50 {
				e.Crash(2)
			}
			if crash && i == 300 {
				e.Revive(2)
			}
			node, alive, ok := e.Step()
			if !ok {
				t.Fatal("ran out of events")
			}
			ticks = append(ticks, tick{at: e.Now(), node: node})
			alives = append(alives, alive)
		}
		return ticks, alives
	}
	healthyTicks, healthyAlive := run(false)
	faultyTicks, faultyAlive := run(true)
	crashedSeen, revivedSeen := false, false
	for i := range healthyTicks {
		if healthyTicks[i] != faultyTicks[i] {
			t.Fatalf("tick %d diverged: healthy %+v faulty %+v", i, healthyTicks[i], faultyTicks[i])
		}
		if !healthyAlive[i] {
			t.Fatalf("tick %d: healthy run reported a dead node", i)
		}
		if faultyTicks[i].node == 2 {
			if i >= 50 && i < 300 {
				if faultyAlive[i] {
					t.Fatalf("tick %d: crashed node reported alive", i)
				}
				crashedSeen = true
			} else if i >= 300 {
				if !faultyAlive[i] {
					t.Fatalf("tick %d: revived node reported dead", i)
				}
				revivedSeen = true
			}
		}
	}
	if !crashedSeen || !revivedSeen {
		t.Fatalf("crash window not exercised: crashed=%v revived=%v (raise events?)", crashedSeen, revivedSeen)
	}
}

// Exchange billing: every attempt is 2 messages on success, and a dead
// partner fails the handshake after the request leg (1 message).
func TestExchangeBilling(t *testing.T) {
	e := NewEngine(4, Options{Seed: 31})
	if !e.Exchange(0, 1) {
		t.Fatal("lossless exchange failed")
	}
	st := e.Stats()
	if st.Messages != 2 || st.Calls != 1 || st.Drops != 0 {
		t.Fatalf("lossless exchange billed %+v", st)
	}
	e.Crash(1)
	if e.Exchange(0, 1) {
		t.Fatal("exchange with dead partner succeeded")
	}
	st = e.Stats()
	if st.Messages != 3 || st.Calls != 2 {
		t.Fatalf("dead-partner exchange billed %+v", st)
	}
}

// Simultaneous fault ticks: a hook keyed at tick k fires exactly once,
// in order, before the event that crossed the boundary — even when one
// event crosses several boundaries at once (slow clocks, fine ticks).
func TestFaultTickMonotone(t *testing.T) {
	// Rate 1/64 per node: consecutive events are ~64 time units apart at
	// n=1, so each one crosses many TicksPerUnit boundaries.
	e := NewEngine(1, Options{Seed: 41, Rate: 1.0 / 64})
	var ticks []int
	e.SetRoundHook(func(tick int) { ticks = append(ticks, tick) })
	for i := 0; i < 3; i++ {
		if _, _, ok := e.Step(); !ok {
			t.Fatal("ran out of events")
		}
	}
	if len(ticks) == 0 {
		t.Fatal("no fault ticks fired")
	}
	for i, k := range ticks {
		if k != i+1 {
			t.Fatalf("tick sequence has gaps or repeats: %v", ticks[:i+1])
		}
	}
	if want := int(e.Now() * TicksPerUnit); ticks[len(ticks)-1] != want {
		t.Fatalf("last tick %d, want floor(now*%d) = %d", ticks[len(ticks)-1], TicksPerUnit, want)
	}
}

// Fault-plan parity: one faults.Plan spec, bound once per engine with
// the same horizon, must replay the identical crash/revive sequence on
// the synchronous engine (hook = rounds) and the asynchronous engine
// (hook = fault ticks) — the whole point of the Host interface. The
// async transition schedule is additionally pinned as a golden: the
// plan's timing arithmetic must not drift silently.
func TestFaultPlanParity(t *testing.T) {
	const n, horizon = 16, 2048
	plan, err := faults.Parse("crash:0.25@0.5;rejoin@0.75")
	if err != nil {
		t.Fatal(err)
	}

	type transition struct {
		when  int // sync: round; async: fault tick
		node  int
		alive bool
	}

	// Synchronous replay: drive a bare engine Tick by Tick.
	syncEng := sim.NewEngine(n, sim.Options{Seed: 7})
	var syncTrans []transition
	syncRound := 0
	syncEng.SetMembershipObserver(func(node int, alive bool) {
		syncTrans = append(syncTrans, transition{when: syncRound, node: node, alive: alive})
	})
	sb, err := plan.Bind(n, 7, horizon)
	if err != nil {
		t.Fatal(err)
	}
	sb.Attach(syncEng)
	for syncRound = 1; syncRound <= horizon; syncRound++ {
		syncEng.Tick()
	}

	// Asynchronous replay: same plan, same seed, same horizon read in
	// fault ticks; run past horizon/TicksPerUnit time units.
	asyncEng := NewEngine(n, Options{Seed: 7})
	var asyncTrans []transition
	asyncEng.SetMembershipObserver(func(node int, alive bool) {
		asyncTrans = append(asyncTrans, transition{when: asyncEng.tick, node: node, alive: alive})
	})
	ab, err := plan.Bind(n, 7, horizon)
	if err != nil {
		t.Fatal(err)
	}
	ab.Attach(asyncEng)
	for asyncEng.Now() < float64(horizon)/TicksPerUnit+1 {
		if _, _, ok := asyncEng.Step(); !ok {
			t.Fatal("ran out of events")
		}
	}

	if len(syncTrans) == 0 {
		t.Fatal("plan fired no transitions")
	}
	if len(asyncTrans) != len(syncTrans) {
		t.Fatalf("transition counts diverged: sync %d async %d", len(syncTrans), len(asyncTrans))
	}
	for i := range syncTrans {
		if syncTrans[i] != asyncTrans[i] {
			t.Fatalf("transition %d diverged: sync %+v async %+v", i, syncTrans[i], asyncTrans[i])
		}
	}
	if ab.Fired() != sb.Fired() || ab.Crashed() != sb.Crashed() || ab.Revived() != sb.Revived() {
		t.Fatalf("bound accounting diverged: sync fired=%d c=%d r=%d, async fired=%d c=%d r=%d",
			sb.Fired(), sb.Crashed(), sb.Revived(), ab.Fired(), ab.Crashed(), ab.Revived())
	}

	// Golden pin: crash:0.25 at the 50% mark of a 2048-tick horizon takes
	// 4 of 16 nodes down at tick 1024; rejoin@0.75 brings them back at
	// tick 1536. The node choice is the plan's selection stream on seed 7.
	want := []transition{
		{1024, 8, false}, {1024, 9, false}, {1024, 12, false}, {1024, 13, false},
		{1536, 8, true}, {1536, 9, true}, {1536, 12, true}, {1536, 13, true},
	}
	if len(asyncTrans) != len(want) {
		t.Fatalf("golden length drifted: got %d transitions %+v", len(asyncTrans), asyncTrans)
	}
	for i := range want {
		if asyncTrans[i] != want[i] {
			t.Fatalf("golden transition %d drifted: got %+v want %+v (full: %+v)",
				i, asyncTrans[i], want[i], asyncTrans)
		}
	}
}

// Loss decisions hash the transmission sequence number, so the drop
// pattern is reproducible and loss actually bites at the configured
// rate.
func TestLossDeterministic(t *testing.T) {
	run := func() (sim.Counters, int) {
		e := NewEngine(64, Options{Seed: 51, Loss: 0.3})
		okCount := 0
		for i := 0; i < 500; i++ {
			u := i % 64
			if e.Exchange(u, (u+1)%64) {
				okCount++
			}
		}
		return e.Stats(), okCount
	}
	st1, ok1 := run()
	st2, ok2 := run()
	if st1 != st2 || ok1 != ok2 {
		t.Fatalf("loss pattern not reproducible: %+v/%d vs %+v/%d", st1, ok1, st2, ok2)
	}
	if st1.Drops == 0 || ok1 == 0 || ok1 == 500 {
		t.Fatalf("loss rate implausible: %d/500 exchanges, %d drops", ok1, st1.Drops)
	}
	// At δ=0.3 per leg, an exchange commits with probability ~0.49.
	if frac := float64(ok1) / 500; math.Abs(frac-0.49) > 0.1 {
		t.Fatalf("commit fraction %.2f far from (1-δ)² = 0.49", frac)
	}
}

// The initial crash set must match the synchronous engine's for the
// same (n, Seed, CrashFrac) — sync and async answers describe the same
// surviving population.
func TestInitialCrashParity(t *testing.T) {
	const n = 128
	opts := sim.Options{Seed: 61, CrashFrac: 0.2}
	syncEng := sim.NewEngine(n, opts)
	asyncEng := NewEngine(n, Options{Seed: 61, CrashFrac: 0.2})
	if syncEng.NumAlive() != asyncEng.NumAlive() {
		t.Fatalf("alive counts diverged: sync %d async %d", syncEng.NumAlive(), asyncEng.NumAlive())
	}
	for i := 0; i < n; i++ {
		if syncEng.Alive(i) != asyncEng.Alive(i) {
			t.Fatalf("node %d: sync alive=%v async alive=%v", i, syncEng.Alive(i), asyncEng.Alive(i))
		}
	}
}
