package graph

import (
	"math"
	"testing"
	"testing/quick"
)

// checkInvariants verifies the structural properties every generator must
// guarantee: simple, symmetric, sorted adjacency.
func checkInvariants(t *testing.T, g *Graph) {
	t.Helper()
	degSum := 0
	for u := 0; u < g.N(); u++ {
		ns := g.Neighbors(u)
		degSum += len(ns)
		prev := -1
		for _, v := range ns {
			if v == u {
				t.Fatalf("%s: self-loop at %d", g.Name(), u)
			}
			if v <= prev {
				t.Fatalf("%s: unsorted/duplicate neighbours at %d", g.Name(), u)
			}
			prev = v
			if !g.HasEdge(v, u) {
				t.Fatalf("%s: asymmetric edge (%d,%d)", g.Name(), u, v)
			}
		}
	}
	if degSum != 2*g.NumEdges() {
		t.Fatalf("%s: handshake violated: degSum=%d edges=%d", g.Name(), degSum, g.NumEdges())
	}
}

func TestRing(t *testing.T) {
	g := Ring(10)
	checkInvariants(t, g)
	if d, ok := g.Regular(); !ok || d != 2 {
		t.Fatalf("ring not 2-regular: %d %v", d, ok)
	}
	if !g.Connected() {
		t.Fatal("ring disconnected")
	}
	if ecc := g.Eccentricity(0); ecc != 5 {
		t.Fatalf("ring(10) eccentricity = %d, want 5", ecc)
	}
}

func TestRingTriangle(t *testing.T) {
	g := Ring(3)
	checkInvariants(t, g)
	if g.NumEdges() != 3 {
		t.Fatalf("ring(3) edges = %d", g.NumEdges())
	}
}

func TestComplete(t *testing.T) {
	g := Complete(7)
	checkInvariants(t, g)
	if d, ok := g.Regular(); !ok || d != 6 {
		t.Fatalf("K7 not 6-regular")
	}
	if g.NumEdges() != 21 {
		t.Fatalf("K7 edges = %d", g.NumEdges())
	}
	if g.Eccentricity(3) != 1 {
		t.Fatal("K7 eccentricity != 1")
	}
}

func TestStar(t *testing.T) {
	g := Star(9)
	checkInvariants(t, g)
	if g.Degree(0) != 8 || g.Degree(1) != 1 {
		t.Fatalf("star degrees wrong: %d, %d", g.Degree(0), g.Degree(1))
	}
	if !g.Connected() {
		t.Fatal("star disconnected")
	}
	// Harmonic degree sum: 1/9 + 8 * 1/2.
	want := 1.0/9 + 4
	if got := g.HarmonicDegreeSum(); math.Abs(got-want) > 1e-12 {
		t.Fatalf("HarmonicDegreeSum = %v, want %v", got, want)
	}
}

func TestTorus(t *testing.T) {
	g := Torus(5, 8)
	checkInvariants(t, g)
	if d, ok := g.Regular(); !ok || d != 4 {
		t.Fatalf("torus not 4-regular: %d %v", d, ok)
	}
	if !g.Connected() {
		t.Fatal("torus disconnected")
	}
	if g.N() != 40 {
		t.Fatalf("torus N = %d", g.N())
	}
}

func TestHypercube(t *testing.T) {
	g := Hypercube(5)
	checkInvariants(t, g)
	if d, ok := g.Regular(); !ok || d != 5 {
		t.Fatal("hypercube(5) not 5-regular")
	}
	if g.Eccentricity(0) != 5 {
		t.Fatalf("hypercube(5) eccentricity = %d", g.Eccentricity(0))
	}
}

func TestRandomRegular(t *testing.T) {
	for _, tc := range []struct{ n, d int }{
		{50, 3}, {100, 4}, {64, 8}, {200, 16}, {33, 2},
	} {
		g, err := RandomRegular(tc.n, tc.d, 42)
		if err != nil {
			t.Fatalf("RandomRegular(%d,%d): %v", tc.n, tc.d, err)
		}
		checkInvariants(t, g)
		if d, ok := g.Regular(); !ok || d != tc.d {
			t.Fatalf("RandomRegular(%d,%d) degree %d regular=%v", tc.n, tc.d, d, ok)
		}
	}
}

func TestRandomRegularValidation(t *testing.T) {
	if _, err := RandomRegular(5, 3, 1); err == nil {
		t.Fatal("odd n*d accepted")
	}
	if _, err := RandomRegular(4, 4, 1); err == nil {
		t.Fatal("d >= n accepted")
	}
	if _, err := RandomRegular(4, 0, 1); err == nil {
		t.Fatal("d = 0 accepted")
	}
}

func TestRandomRegularDeterministic(t *testing.T) {
	a, err1 := RandomRegular(80, 6, 7)
	b, err2 := RandomRegular(80, 6, 7)
	if err1 != nil || err2 != nil {
		t.Fatal(err1, err2)
	}
	for u := 0; u < 80; u++ {
		na, nb := a.Neighbors(u), b.Neighbors(u)
		if len(na) != len(nb) {
			t.Fatalf("degree differs at %d", u)
		}
		for i := range na {
			if na[i] != nb[i] {
				t.Fatalf("adjacency differs at %d", u)
			}
		}
	}
}

func TestMustRandomRegularConnected(t *testing.T) {
	g := MustRandomRegular(300, 3, 99)
	checkInvariants(t, g)
	if !g.Connected() {
		t.Fatal("MustRandomRegular returned disconnected graph")
	}
}

func TestErdosRenyi(t *testing.T) {
	n, p := 500, 0.02
	g := ErdosRenyi(n, p, 11)
	checkInvariants(t, g)
	want := p * float64(n) * float64(n-1) / 2
	got := float64(g.NumEdges())
	if math.Abs(got-want) > 6*math.Sqrt(want) {
		t.Fatalf("G(n,p) edges = %v, want ~%v", got, want)
	}
}

func TestErdosRenyiEdgeCases(t *testing.T) {
	g0 := ErdosRenyi(10, 0, 1)
	if g0.NumEdges() != 0 {
		t.Fatal("G(n,0) has edges")
	}
	g1 := ErdosRenyi(10, 1, 1)
	if g1.NumEdges() != 45 {
		t.Fatalf("G(10,1) edges = %d, want 45", g1.NumEdges())
	}
	checkInvariants(t, g1)
}

func TestErdosRenyiDeterministic(t *testing.T) {
	a := ErdosRenyi(200, 0.05, 5)
	b := ErdosRenyi(200, 0.05, 5)
	if a.NumEdges() != b.NumEdges() {
		t.Fatal("G(n,p) not deterministic for fixed seed")
	}
}

func TestFromAdjacency(t *testing.T) {
	g, err := FromAdjacency("custom", [][]int{{2, 1}, {0}, {0}})
	if err != nil {
		t.Fatal(err)
	}
	checkInvariants(t, g)
	if g.NumEdges() != 2 {
		t.Fatalf("edges = %d", g.NumEdges())
	}
}

func TestFromAdjacencyRejectsBadInput(t *testing.T) {
	cases := [][][]int{
		{{1}, {}},        // asymmetric
		{{0}},            // self-loop
		{{1, 1}, {0, 0}}, // duplicates
		{{5}, {}},        // out of range
	}
	for i, adj := range cases {
		if _, err := FromAdjacency("bad", adj); err == nil {
			t.Fatalf("case %d accepted", i)
		}
	}
}

func TestBFSDistances(t *testing.T) {
	g := Ring(6)
	d := g.BFS(0)
	want := []int{0, 1, 2, 3, 2, 1}
	for i := range want {
		if d[i] != want[i] {
			t.Fatalf("BFS dist[%d] = %d, want %d", i, d[i], want[i])
		}
	}
}

func TestBFSDisconnected(t *testing.T) {
	g, err := FromAdjacency("two-islands", [][]int{{1}, {0}, {3}, {2}})
	if err != nil {
		t.Fatal(err)
	}
	if g.Connected() {
		t.Fatal("disconnected graph reported connected")
	}
	d := g.BFS(0)
	if d[2] != -1 || d[3] != -1 {
		t.Fatalf("unreachable distances: %v", d)
	}
}

func TestHarmonicDegreeSumRegular(t *testing.T) {
	// On a d-regular graph the sum is n/(d+1).
	g := Torus(6, 6)
	want := 36.0 / 5
	if got := g.HarmonicDegreeSum(); math.Abs(got-want) > 1e-12 {
		t.Fatalf("HarmonicDegreeSum = %v, want %v", got, want)
	}
}

// Property: all generated regular graphs satisfy invariants across seeds.
func TestRandomRegularProperty(t *testing.T) {
	f := func(seed uint16) bool {
		g, err := RandomRegular(60, 4, uint64(seed))
		if err != nil {
			return true // acceptable rare failure; other seeds cover it
		}
		if d, ok := g.Regular(); !ok || d != 4 {
			return false
		}
		for u := 0; u < g.N(); u++ {
			for _, v := range g.Neighbors(u) {
				if v == u || !g.HasEdge(v, u) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkRandomRegular(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := RandomRegular(1024, 8, uint64(i)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkErdosRenyi(b *testing.B) {
	for i := 0; i < b.N; i++ {
		ErdosRenyi(4096, 0.002, uint64(i))
	}
}

func TestBarabasiAlbert(t *testing.T) {
	g := BarabasiAlbert(1000, 3, 9)
	checkInvariants(t, g)
	if !g.Connected() {
		t.Fatal("BA graph disconnected")
	}
	// Edge count: clique on m+1 = 4 vertices plus m per later vertex.
	wantEdges := (3*4)/2 + (1000-4)*3
	if g.NumEdges() != wantEdges {
		t.Fatalf("edges = %d, want %d", g.NumEdges(), wantEdges)
	}
	if g.MinDegree() < 3 {
		t.Fatalf("min degree %d < m", g.MinDegree())
	}
	// Heavy tail: the hubs collect far more than the minimum degree.
	if g.MaxDegree() < 20 {
		t.Fatalf("max degree %d suspiciously small for BA", g.MaxDegree())
	}
}

func TestBarabasiAlbertDeterministic(t *testing.T) {
	a := BarabasiAlbert(300, 2, 5)
	b := BarabasiAlbert(300, 2, 5)
	if a.NumEdges() != b.NumEdges() || a.MaxDegree() != b.MaxDegree() {
		t.Fatal("BA not deterministic")
	}
}

func TestBarabasiAlbertValidation(t *testing.T) {
	for _, fn := range []func(){
		func() { BarabasiAlbert(3, 3, 1) },
		func() { BarabasiAlbert(10, 0, 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("invalid BA parameters accepted")
				}
			}()
			fn()
		}()
	}
}

func TestSmallWorld(t *testing.T) {
	g := SmallWorld(200, 2, 0.25, 7)
	if g.N() != 200 {
		t.Fatalf("N = %d", g.N())
	}
	if g.MinDegree() < 4 {
		t.Fatalf("lattice degree broken: min degree %d < 2k", g.MinDegree())
	}
	if !g.Connected() {
		t.Fatal("Newman–Watts graph must stay connected")
	}
	// Shortcuts exist (beta=0.25 over 200 vertices makes ~50 whp) and
	// shrink the diameter well below the lattice's n/(2k).
	lattice := SmallWorld(200, 2, 0, 7)
	if g.NumEdges() <= lattice.NumEdges() {
		t.Fatalf("no shortcuts added: %d <= %d edges", g.NumEdges(), lattice.NumEdges())
	}
	if e, el := g.Eccentricity(0), lattice.Eccentricity(0); e >= el {
		t.Fatalf("shortcuts did not shrink eccentricity: %d >= %d", e, el)
	}
}

func TestSmallWorldDeterministic(t *testing.T) {
	a := SmallWorld(128, 3, 0.3, 11)
	b := SmallWorld(128, 3, 0.3, 11)
	if a.NumEdges() != b.NumEdges() {
		t.Fatal("SmallWorld not deterministic")
	}
	for u := 0; u < 128; u++ {
		na, nb := a.Neighbors(u), b.Neighbors(u)
		if len(na) != len(nb) {
			t.Fatalf("vertex %d degree differs", u)
		}
		for i := range na {
			if na[i] != nb[i] {
				t.Fatalf("vertex %d neighbours differ", u)
			}
		}
	}
}

func TestSmallWorldValidation(t *testing.T) {
	for _, f := range []func(){
		func() { SmallWorld(5, 2, 0.1, 1) },  // n < 2k+2
		func() { SmallWorld(10, 0, 0.1, 1) }, // k < 1
		func() { SmallWorld(10, 2, 1.5, 1) }, // beta out of range
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("invalid SmallWorld accepted")
				}
			}()
			f()
		}()
	}
}
