// Package graph provides the sparse-topology substrate for Section 4 of
// the paper (Local-DRR and gossip on arbitrary graphs): deterministic
// generators for standard topologies, adjacency queries, and structural
// invariants (connectivity, regularity, the harmonic degree sum of
// Theorem 13).
//
// All graphs are simple (no self-loops, no parallel edges) and undirected,
// with sorted neighbour lists for deterministic iteration.
package graph

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"drrgossip/internal/xrand"
)

// Graph is an immutable simple undirected graph on vertices 0..n-1.
type Graph struct {
	name string
	adj  [][]int
	m    int // number of edges
}

// build validates adjacency lists and constructs a Graph.
// Each list must be sorted, self-loop-free and duplicate-free, and the
// relation must be symmetric.
func build(name string, adj [][]int) (*Graph, error) {
	n := len(adj)
	m := 0
	for u, ns := range adj {
		prev := -1
		for _, v := range ns {
			if v < 0 || v >= n {
				return nil, fmt.Errorf("graph %s: vertex %d has out-of-range neighbour %d", name, u, v)
			}
			if v == u {
				return nil, fmt.Errorf("graph %s: self-loop at %d", name, u)
			}
			if v <= prev {
				return nil, fmt.Errorf("graph %s: neighbours of %d not strictly sorted", name, u)
			}
			prev = v
			m++
		}
	}
	if m%2 != 0 {
		return nil, fmt.Errorf("graph %s: odd total degree", name)
	}
	g := &Graph{name: name, adj: adj, m: m / 2}
	// Symmetry check.
	for u, ns := range adj {
		for _, v := range ns {
			if !g.HasEdge(v, u) {
				return nil, fmt.Errorf("graph %s: edge (%d,%d) not symmetric", name, u, v)
			}
		}
	}
	return g, nil
}

// mustBuild is for generators whose construction is correct by design.
func mustBuild(name string, adj [][]int) *Graph {
	g, err := build(name, adj)
	if err != nil {
		panic(err)
	}
	return g
}

// FromAdjacency validates and wraps caller-provided adjacency lists
// (which it sorts in place).
func FromAdjacency(name string, adj [][]int) (*Graph, error) {
	for _, ns := range adj {
		sort.Ints(ns)
	}
	return build(name, adj)
}

// SortDedup sorts each adjacency list in place and removes consecutive
// duplicates, truncating the lists — the normalisation build() expects
// from slice-based generators that may append the same undirected edge
// from both endpoints (mutual Chord fingers, small-world shortcuts).
func SortDedup(adj [][]int) {
	for u, lst := range adj {
		sort.Ints(lst)
		out := lst[:0]
		prev := -1
		for _, v := range lst {
			if v != prev {
				out = append(out, v)
				prev = v
			}
		}
		adj[u] = out
	}
}

// N returns the number of vertices.
func (g *Graph) N() int { return len(g.adj) }

// NumEdges returns the number of undirected edges.
func (g *Graph) NumEdges() int { return g.m }

// Name returns the generator name (for reports).
func (g *Graph) Name() string { return g.name }

// Neighbors returns vertex u's sorted neighbour list. The caller must not
// modify it.
func (g *Graph) Neighbors(u int) []int { return g.adj[u] }

// Degree returns the degree of vertex u.
func (g *Graph) Degree(u int) int { return len(g.adj[u]) }

// HasEdge reports whether {u,v} is an edge.
func (g *Graph) HasEdge(u, v int) bool {
	ns := g.adj[u]
	i := sort.SearchInts(ns, v)
	return i < len(ns) && ns[i] == v
}

// MaxDegree returns the maximum degree (0 for the empty graph).
func (g *Graph) MaxDegree() int {
	d := 0
	for _, ns := range g.adj {
		if len(ns) > d {
			d = len(ns)
		}
	}
	return d
}

// MinDegree returns the minimum degree (0 for the empty graph).
func (g *Graph) MinDegree() int {
	if g.N() == 0 {
		return 0
	}
	d := len(g.adj[0])
	for _, ns := range g.adj[1:] {
		if len(ns) < d {
			d = len(ns)
		}
	}
	return d
}

// Regular reports whether all vertices share one degree, and that degree.
func (g *Graph) Regular() (d int, ok bool) {
	d = g.MaxDegree()
	return d, d == g.MinDegree()
}

// HarmonicDegreeSum returns Σ_i 1/(d_i + 1), the expected number of
// Local-DRR trees (Theorem 13).
func (g *Graph) HarmonicDegreeSum() float64 {
	s := 0.0
	for _, ns := range g.adj {
		s += 1 / float64(len(ns)+1)
	}
	return s
}

// BFS returns the hop distance from src to every vertex (-1 if
// unreachable).
func (g *Graph) BFS(src int) []int {
	dist := make([]int, g.N())
	for i := range dist {
		dist[i] = -1
	}
	dist[src] = 0
	queue := []int{src}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, v := range g.adj[u] {
			if dist[v] < 0 {
				dist[v] = dist[u] + 1
				queue = append(queue, v)
			}
		}
	}
	return dist
}

// Connected reports whether the graph is connected (true for n <= 1).
func (g *Graph) Connected() bool {
	if g.N() <= 1 {
		return true
	}
	for _, d := range g.BFS(0) {
		if d < 0 {
			return false
		}
	}
	return true
}

// Eccentricity returns max_v dist(src, v); it panics if the graph is
// disconnected from src.
func (g *Graph) Eccentricity(src int) int {
	e := 0
	for _, d := range g.BFS(src) {
		if d < 0 {
			panic("graph: Eccentricity on disconnected graph")
		}
		if d > e {
			e = d
		}
	}
	return e
}

// Ring returns the n-cycle (n >= 3).
func Ring(n int) *Graph {
	if n < 3 {
		panic("graph: Ring needs n >= 3")
	}
	adj := make([][]int, n)
	for i := range adj {
		a, b := (i+n-1)%n, (i+1)%n
		if a > b {
			a, b = b, a
		}
		adj[i] = []int{a, b}
	}
	return mustBuild(fmt.Sprintf("ring(%d)", n), adj)
}

// Complete returns the complete graph K_n (n >= 2).
func Complete(n int) *Graph {
	if n < 2 {
		panic("graph: Complete needs n >= 2")
	}
	adj := make([][]int, n)
	for i := range adj {
		ns := make([]int, 0, n-1)
		for j := 0; j < n; j++ {
			if j != i {
				ns = append(ns, j)
			}
		}
		adj[i] = ns
	}
	return mustBuild(fmt.Sprintf("complete(%d)", n), adj)
}

// Star returns the star graph: vertex 0 is the hub (n >= 2).
func Star(n int) *Graph {
	if n < 2 {
		panic("graph: Star needs n >= 2")
	}
	adj := make([][]int, n)
	hub := make([]int, 0, n-1)
	for i := 1; i < n; i++ {
		hub = append(hub, i)
		adj[i] = []int{0}
	}
	adj[0] = hub
	return mustBuild(fmt.Sprintf("star(%d)", n), adj)
}

// Torus returns the rows x cols wraparound grid (4-regular when both
// dimensions are >= 3).
func Torus(rows, cols int) *Graph {
	if rows < 3 || cols < 3 {
		panic("graph: Torus needs rows, cols >= 3")
	}
	n := rows * cols
	id := func(r, c int) int { return ((r+rows)%rows)*cols + (c+cols)%cols }
	adj := make([][]int, n)
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			u := id(r, c)
			set := map[int]bool{
				id(r-1, c): true, id(r+1, c): true,
				id(r, c-1): true, id(r, c+1): true,
			}
			ns := make([]int, 0, 4)
			for v := range set {
				if v != u {
					ns = append(ns, v)
				}
			}
			sort.Ints(ns)
			adj[u] = ns
		}
	}
	return mustBuild(fmt.Sprintf("torus(%dx%d)", rows, cols), adj)
}

// Hypercube returns the dim-dimensional hypercube on 2^dim vertices
// (1 <= dim <= 30).
func Hypercube(dim int) *Graph {
	if dim < 1 || dim > 30 {
		panic("graph: Hypercube dimension out of range")
	}
	n := 1 << dim
	adj := make([][]int, n)
	for u := 0; u < n; u++ {
		ns := make([]int, dim)
		for b := 0; b < dim; b++ {
			ns[b] = u ^ (1 << b)
		}
		sort.Ints(ns)
		adj[u] = ns
	}
	return mustBuild(fmt.Sprintf("hypercube(%d)", dim), adj)
}

// ErrRegularFailed is returned when the d-regular sampler cannot repair
// its matching within the attempt budget.
var ErrRegularFailed = errors.New("graph: random regular construction failed; try another seed")

// RandomRegular samples a simple d-regular graph on n vertices via the
// configuration model with edge-switching repair of self-loops and
// parallel edges. Requires 0 < d < n and n*d even.
func RandomRegular(n, d int, seed uint64) (*Graph, error) {
	if d <= 0 || d >= n {
		return nil, fmt.Errorf("graph: RandomRegular needs 0 < d < n, got n=%d d=%d", n, d)
	}
	if n*d%2 != 0 {
		return nil, fmt.Errorf("graph: RandomRegular needs n*d even, got n=%d d=%d", n, d)
	}
	rng := xrand.Derive(seed, 0x9e9, uint64(n), uint64(d))

	// Stub pairing.
	stubs := make([]int, 0, n*d)
	for v := 0; v < n; v++ {
		for k := 0; k < d; k++ {
			stubs = append(stubs, v)
		}
	}
	type edge struct{ u, v int }
	norm := func(u, v int) edge {
		if u > v {
			u, v = v, u
		}
		return edge{u, v}
	}
	edges := make([]edge, 0, n*d/2)
	seen := make(map[edge]bool, n*d/2)
	var bad []int // indices into edges of invalid pairs
	rng.Shuffle(len(stubs), func(i, j int) { stubs[i], stubs[j] = stubs[j], stubs[i] })
	for i := 0; i < len(stubs); i += 2 {
		e := norm(stubs[i], stubs[i+1])
		edges = append(edges, e)
		if e.u == e.v || seen[e] {
			bad = append(bad, len(edges)-1)
		} else {
			seen[e] = true
		}
	}

	// Repair bad pairs by 2-opt switches with random good edges.
	budget := 200*len(bad) + 10000
	for len(bad) > 0 && budget > 0 {
		budget--
		bi := bad[len(bad)-1]
		b := edges[bi]
		oi := rng.Intn(len(edges))
		o := edges[oi]
		if oi == bi {
			continue
		}
		// Propose rewiring (b.u,b.v),(o.u,o.v) -> (b.u,o.u),(b.v,o.v).
		e1 := norm(b.u, o.u)
		e2 := norm(b.v, o.v)
		if e1.u == e1.v || e2.u == e2.v || seen[e1] || seen[e2] || e1 == e2 {
			continue
		}
		// o must currently be a good (registered) edge.
		if !seen[o] {
			continue
		}
		delete(seen, o)
		if b.u != b.v && seen[b] {
			delete(seen, b)
		}
		seen[e1] = true
		seen[e2] = true
		edges[bi] = e1
		edges[oi] = e2
		bad = bad[:len(bad)-1]
	}
	if len(bad) > 0 {
		return nil, ErrRegularFailed
	}

	adj := make([][]int, n)
	for _, e := range edges {
		adj[e.u] = append(adj[e.u], e.v)
		adj[e.v] = append(adj[e.v], e.u)
	}
	for _, ns := range adj {
		sort.Ints(ns)
	}
	return build(fmt.Sprintf("regular(%d,d=%d)", n, d), adj)
}

// MustRandomRegular retries RandomRegular over derived seeds until it
// produces a connected graph; it panics only if every attempt fails
// (practically impossible for d >= 3).
func MustRandomRegular(n, d int, seed uint64) *Graph {
	for try := uint64(0); try < 64; try++ {
		g, err := RandomRegular(n, d, seed+try)
		if err == nil && g.Connected() {
			return g
		}
	}
	panic("graph: MustRandomRegular exhausted retries")
}

// adjSets accumulates undirected edges in per-vertex sets — the shared
// scaffolding for generators that sample edges and must dedupe them
// before emitting sorted adjacency lists.
type adjSets []map[int]bool

func newAdjSets(n int) adjSets {
	a := make(adjSets, n)
	for i := range a {
		a[i] = make(map[int]bool)
	}
	return a
}

func (a adjSets) add(u, v int) {
	a[u][v] = true
	a[v][u] = true
}

func (a adjSets) has(u, v int) bool { return a[u][v] }

func (a adjSets) lists() [][]int {
	lists := make([][]int, len(a))
	for u, set := range a {
		lst := make([]int, 0, len(set))
		for v := range set {
			lst = append(lst, v)
		}
		sort.Ints(lst)
		lists[u] = lst
	}
	return lists
}

// BarabasiAlbert grows a preferential-attachment graph: starting from a
// (m+1)-clique, each new vertex attaches to m distinct existing vertices
// chosen with probability proportional to their degree. The heavy-tailed
// degree distribution stresses the degree-dependent results (Theorem 13's
// Σ 1/(d_i+1), Local-DRR heights) beyond the regular topologies.
// Requires n > m >= 1.
func BarabasiAlbert(n, m int, seed uint64) *Graph {
	if m < 1 || n <= m+1 {
		panic("graph: BarabasiAlbert needs n > m+1 and m >= 1")
	}
	rng := xrand.Derive(seed, 0xBA, uint64(n), uint64(m))
	adj := newAdjSets(n)
	// Repeated-endpoint list: sampling an index uniformly samples a vertex
	// with probability proportional to its degree.
	var endpoints []int
	addEdge := func(u, v int) {
		adj.add(u, v)
		endpoints = append(endpoints, u, v)
	}
	for u := 0; u <= m; u++ {
		for v := u + 1; v <= m; v++ {
			addEdge(u, v)
		}
	}
	for u := m + 1; u < n; u++ {
		chosen := make(map[int]bool, m)
		targets := make([]int, 0, m)
		for len(targets) < m {
			v := endpoints[rng.Intn(len(endpoints))]
			if v != u && !chosen[v] {
				chosen[v] = true
				targets = append(targets, v)
			}
		}
		// Deterministic edge insertion order: the endpoint list feeds
		// later sampling, so it must not depend on map iteration.
		sort.Ints(targets)
		for _, v := range targets {
			addEdge(u, v)
		}
	}
	return mustBuild(fmt.Sprintf("ba(%d,m=%d)", n, m), adj.lists())
}

// SmallWorld samples a Newman–Watts small-world graph: the ring lattice
// C(n, k) (every vertex linked to its k nearest neighbours on each side)
// plus, per vertex, a uniform random shortcut added with probability
// beta. Unlike Watts–Strogatz rewiring, the lattice stays intact, so the
// graph is always connected; the shortcuts give the O(log n) diameter
// that makes routed root-gossip cheap. Requires k >= 1, n >= 2k+2 and
// beta in [0,1].
//
// The construction is slice-based (no per-vertex hash sets): shortcuts
// duplicating a lattice edge or an earlier shortcut are removed by a
// final sort-and-dedup, which yields the same edge set — and consumes
// the random stream identically — as the historical set-based builder,
// but stays affordable at millions of vertices.
func SmallWorld(n, k int, beta float64, seed uint64) *Graph {
	if k < 1 || n < 2*k+2 {
		panic("graph: SmallWorld needs k >= 1 and n >= 2k+2")
	}
	if beta < 0 || beta > 1 {
		panic("graph: SmallWorld needs beta in [0,1]")
	}
	rng := xrand.Derive(seed, 0x5311, uint64(n), uint64(k))
	adj := make([][]int, n)
	for u := 0; u < n; u++ {
		adj[u] = make([]int, 0, 2*k+1)
	}
	for u := 0; u < n; u++ {
		for d := 1; d <= k; d++ {
			v := (u + d) % n
			adj[u] = append(adj[u], v)
			adj[v] = append(adj[v], u)
		}
	}
	for u := 0; u < n; u++ {
		if rng.Float64() >= beta {
			continue
		}
		v := rng.IntnOther(n, u)
		adj[u] = append(adj[u], v)
		adj[v] = append(adj[v], u)
	}
	SortDedup(adj)
	return mustBuild(fmt.Sprintf("smallworld(%d,k=%d)", n, k), adj)
}

// ErdosRenyi samples G(n, p) using geometric edge skipping, which runs in
// O(n + |E|) expected time.
func ErdosRenyi(n int, p float64, seed uint64) *Graph {
	if n < 1 {
		panic("graph: ErdosRenyi needs n >= 1")
	}
	if p < 0 || p > 1 {
		panic("graph: ErdosRenyi needs p in [0,1]")
	}
	rng := xrand.Derive(seed, 0xe12, uint64(n))
	adj := make([][]int, n)
	if p > 0 {
		logq := math.Log1p(-p) // log(1-p), p<1
		// addEdge maps a linear index over the strict upper triangle (in
		// row-major order) to a pair (u,v), u<v. Indices arrive in
		// increasing order, so the row cursor advances monotonically and
		// the mapping is amortized O(1).
		curU, consumed := 0, int64(0)
		addEdge := func(idx int64) {
			for idx-consumed >= int64(n-1-curU) {
				consumed += int64(n - 1 - curU)
				curU++
			}
			u := curU
			v := u + 1 + int(idx-consumed)
			adj[u] = append(adj[u], v)
			adj[v] = append(adj[v], u)
		}
		total := int64(n) * int64(n-1) / 2
		if p >= 1 {
			for i := int64(0); i < total; i++ {
				addEdge(i)
			}
		} else {
			i := int64(-1)
			for {
				u := rng.Float64()
				skip := int64(1)
				if u > 0 {
					skip = 1 + int64(math.Floor(math.Log(u)/logq))
				}
				if skip < 1 {
					skip = 1
				}
				i += skip
				if i >= total {
					break
				}
				addEdge(i)
			}
		}
	}
	for _, ns := range adj {
		sort.Ints(ns)
	}
	return mustBuild(fmt.Sprintf("gnp(%d,p=%.4g)", n, p), adj)
}
