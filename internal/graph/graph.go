// Package graph provides the sparse-topology substrate for Section 4 of
// the paper (Local-DRR and gossip on arbitrary graphs): deterministic
// generators for standard topologies, adjacency queries, and structural
// invariants (connectivity, regularity, the harmonic degree sum of
// Theorem 13).
//
// All graphs are simple (no self-loops, no parallel edges) and undirected,
// with sorted neighbour lists for deterministic iteration.
//
// # Memory model
//
// A Graph carries exactly one of three storage representations, all
// serving the same query API with element-identical neighbour lists:
//
//   - implicit: Degree/Neighbors are computed on the fly from a closed
//     form (Ring, Complete, Star, Torus, Hypercube — and Chord via
//     chord.Ring). Zero bytes of adjacency at any n.
//   - CSR: one flat []int32 neighbour array plus int64 row offsets
//     (generated topologies that must be materialized: SmallWorld,
//     RandomRegular, BarabasiAlbert, ErdosRenyi). ~4 bytes per directed
//     edge instead of a 24-byte slice header plus 8 bytes per entry.
//   - jagged: the historical [][]int layout, kept only behind
//     LegacyJagged for cross-representation tests and memory studies.
//
// Neighbors(u) on a non-jagged graph fills an internal scratch buffer:
// the result is valid until the next Neighbors call on the same Graph
// and must be treated as read-only. Callers that hold neighbour lists
// across calls, or iterate from several goroutines, must use
// NeighborsInto with a buffer they own. Degree and HasEdge never disturb
// the Neighbors scratch (they use a second, private scratch), so the
// common pattern "ns := g.Neighbors(u); for _, v := range ns {
// g.HasEdge(v, u) }" stays valid.
package graph

import (
	"errors"
	"fmt"
	"math"
	"runtime"
	"slices"
	"sort"
	"sync"

	"drrgossip/internal/xrand"
)

// Graph is an immutable simple undirected graph on vertices 0..n-1.
//
// Query methods are safe for concurrent use only on jagged graphs;
// implicit and CSR graphs share scratch buffers across calls (see the
// package comment), so concurrent readers must go through NeighborsInto.
type Graph struct {
	name string
	n    int

	// Exactly one representation is populated.
	adj  [][]int                      // jagged (LegacyJagged only)
	off  []int64                      // CSR row offsets, len n+1
	csr  []int32                      // CSR flat neighbour array
	fill func(u int, buf []int) []int // implicit: append u's sorted neighbours
	deg  func(u int) int              // implicit: O(1) degree, may be nil

	m        int // undirected edge count; -1 = compute lazily (implicit)
	scratch  []int
	scratch2 []int
}

// ImplicitSpec describes an implicit (zero-storage) graph for
// NewImplicit.
type ImplicitSpec struct {
	// N is the vertex count.
	N int
	// Fill appends vertex u's neighbours to buf in strictly increasing
	// order, without self-loops or duplicates, and returns the extended
	// buffer. It must be pure (same output for same u) and safe for
	// concurrent calls with distinct buffers.
	Fill func(u int, buf []int) []int
	// Degree returns vertex u's degree in O(1); nil makes Degree fall
	// back to counting Fill's output.
	Degree func(u int) int
	// Edges is the undirected edge count, or -1 to compute it lazily
	// from the degrees on first NumEdges call.
	Edges int
}

// NewImplicit wraps a closed-form neighbour function as a Graph. The
// spec's Fill output is trusted (generators are correct by construction
// and covered by cross-representation goldens); it is not re-validated.
func NewImplicit(name string, spec ImplicitSpec) *Graph {
	if spec.N < 0 || spec.Fill == nil {
		panic("graph: NewImplicit needs N >= 0 and a Fill function")
	}
	return &Graph{name: name, n: spec.N, fill: spec.Fill, deg: spec.Degree, m: spec.Edges}
}

// validateLists checks that adjacency lists are in-range, strictly
// sorted (hence self-loop- and duplicate-free once combined with the
// range check), symmetric, and of even total degree; it returns the
// undirected edge count.
func validateLists(name string, adj [][]int) (int, error) {
	n := len(adj)
	hasEdge := func(u, v int) bool {
		ns := adj[u]
		i := sort.SearchInts(ns, v)
		return i < len(ns) && ns[i] == v
	}
	m := 0
	for u, ns := range adj {
		prev := -1
		for _, v := range ns {
			if v < 0 || v >= n {
				return 0, fmt.Errorf("graph %s: vertex %d has out-of-range neighbour %d", name, u, v)
			}
			if v == u {
				return 0, fmt.Errorf("graph %s: self-loop at %d", name, u)
			}
			if v <= prev {
				return 0, fmt.Errorf("graph %s: neighbours of %d not strictly sorted", name, u)
			}
			prev = v
			m++
		}
	}
	if m%2 != 0 {
		return 0, fmt.Errorf("graph %s: odd total degree", name)
	}
	for u, ns := range adj {
		for _, v := range ns {
			if !hasEdge(v, u) {
				return 0, fmt.Errorf("graph %s: edge (%d,%d) not symmetric", name, u, v)
			}
		}
	}
	return m / 2, nil
}

// packCSR converts validated adjacency lists to the CSR representation.
func packCSR(name string, n, m int, lists [][]int) *Graph {
	if n > math.MaxInt32 {
		panic("graph: CSR storage limited to 2^31-1 vertices")
	}
	off := make([]int64, n+1)
	for u, ns := range lists {
		off[u+1] = off[u] + int64(len(ns))
	}
	csr := make([]int32, off[n])
	for u, ns := range lists {
		row := csr[off[u]:off[u+1]]
		for i, v := range ns {
			row[i] = int32(v)
		}
	}
	return &Graph{name: name, n: n, off: off, csr: csr, m: m}
}

// fromLists validates adjacency lists and packs them into CSR storage.
// The caller's lists are not retained.
func fromLists(name string, lists [][]int) (*Graph, error) {
	m, err := validateLists(name, lists)
	if err != nil {
		return nil, err
	}
	return packCSR(name, len(lists), m, lists), nil
}

// mustFromLists is for generators whose construction is correct by
// design.
func mustFromLists(name string, lists [][]int) *Graph {
	g, err := fromLists(name, lists)
	if err != nil {
		panic(err)
	}
	return g
}

// FromAdjacency validates caller-provided adjacency lists and copies
// them into compact CSR storage. The caller's slices are sorted copies —
// they are neither mutated nor retained, so later caller writes cannot
// corrupt the graph (historically this wrapped and sorted the slices in
// place).
func FromAdjacency(name string, adj [][]int) (*Graph, error) {
	lists := make([][]int, len(adj))
	for u, ns := range adj {
		lists[u] = append([]int(nil), ns...)
		sort.Ints(lists[u])
	}
	return fromLists(name, lists)
}

// LegacyJagged validates adjacency lists (which must already be sorted)
// and wraps them directly in the historical jagged [][]int layout,
// sharing the caller's slices. It exists for cross-representation
// goldens and memory comparisons against the implicit/CSR storage —
// new code should use FromAdjacency.
func LegacyJagged(name string, adj [][]int) (*Graph, error) {
	m, err := validateLists(name, adj)
	if err != nil {
		return nil, err
	}
	return &Graph{name: name, n: len(adj), adj: adj, m: m}, nil
}

// SortDedup sorts each adjacency list in place and removes consecutive
// duplicates, truncating the lists — the normalisation list-based
// generators need when they append the same undirected edge from both
// endpoints (mutual Chord fingers, small-world shortcuts).
func SortDedup(adj [][]int) {
	for u, lst := range adj {
		sort.Ints(lst)
		out := lst[:0]
		prev := -1
		for _, v := range lst {
			if v != prev {
				out = append(out, v)
				prev = v
			}
		}
		adj[u] = out
	}
}

// N returns the number of vertices.
func (g *Graph) N() int { return g.n }

// NumEdges returns the number of undirected edges. On implicit graphs
// built without an edge count it sums the degrees on first call and
// caches the result (not safe to race with other queries).
func (g *Graph) NumEdges() int {
	if g.m < 0 {
		total := 0
		for u := 0; u < g.n; u++ {
			total += g.Degree(u)
		}
		g.m = total / 2
	}
	return g.m
}

// Name returns the generator name (for reports).
func (g *Graph) Name() string { return g.name }

// Neighbors returns vertex u's sorted neighbour list. The caller must
// not modify it, and on implicit/CSR graphs it is only valid until the
// next Neighbors call on g (Degree and HasEdge do not invalidate it);
// use NeighborsInto to hold lists across calls or read concurrently.
func (g *Graph) Neighbors(u int) []int {
	if g.adj != nil {
		return g.adj[u]
	}
	g.scratch = g.NeighborsInto(u, g.scratch)
	return g.scratch
}

// NeighborsInto appends vertex u's sorted neighbour list to buf[:0] and
// returns the extended buffer. It is safe for concurrent use with
// distinct buffers on every representation — the scratch-free way to
// iterate adjacency from parallel workers.
func (g *Graph) NeighborsInto(u int, buf []int) []int {
	buf = buf[:0]
	switch {
	case g.adj != nil:
		return append(buf, g.adj[u]...)
	case g.off != nil:
		for _, v := range g.csr[g.off[u]:g.off[u+1]] {
			buf = append(buf, int(v))
		}
		return buf
	default:
		return g.fill(u, buf)
	}
}

// Degree returns the degree of vertex u.
func (g *Graph) Degree(u int) int {
	switch {
	case g.adj != nil:
		return len(g.adj[u])
	case g.off != nil:
		return int(g.off[u+1] - g.off[u])
	case g.deg != nil:
		return g.deg(u)
	default:
		g.scratch2 = g.fill(u, g.scratch2[:0])
		return len(g.scratch2)
	}
}

// HasEdge reports whether {u,v} is an edge.
func (g *Graph) HasEdge(u, v int) bool {
	switch {
	case g.adj != nil:
		ns := g.adj[u]
		i := sort.SearchInts(ns, v)
		return i < len(ns) && ns[i] == v
	case g.off != nil:
		row := g.csr[g.off[u]:g.off[u+1]]
		i, ok := slices.BinarySearch(row, int32(v))
		return ok && i < len(row)
	default:
		g.scratch2 = g.fill(u, g.scratch2[:0])
		i := sort.SearchInts(g.scratch2, v)
		return i < len(g.scratch2) && g.scratch2[i] == v
	}
}

// MaxDegree returns the maximum degree (0 for the empty graph).
func (g *Graph) MaxDegree() int {
	d := 0
	for u := 0; u < g.n; u++ {
		if du := g.Degree(u); du > d {
			d = du
		}
	}
	return d
}

// MinDegree returns the minimum degree (0 for the empty graph).
func (g *Graph) MinDegree() int {
	if g.n == 0 {
		return 0
	}
	d := g.Degree(0)
	for u := 1; u < g.n; u++ {
		if du := g.Degree(u); du < d {
			d = du
		}
	}
	return d
}

// Regular reports whether all vertices share one degree, and that degree.
func (g *Graph) Regular() (d int, ok bool) {
	d = g.MaxDegree()
	return d, d == g.MinDegree()
}

// HarmonicDegreeSum returns Σ_i 1/(d_i + 1), the expected number of
// Local-DRR trees (Theorem 13).
func (g *Graph) HarmonicDegreeSum() float64 {
	s := 0.0
	for u := 0; u < g.n; u++ {
		s += 1 / float64(g.Degree(u)+1)
	}
	return s
}

// BFS returns the hop distance from src to every vertex (-1 if
// unreachable).
func (g *Graph) BFS(src int) []int {
	dist := make([]int, g.n)
	for i := range dist {
		dist[i] = -1
	}
	dist[src] = 0
	queue := []int{src}
	var nbuf []int
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		nbuf = g.NeighborsInto(u, nbuf)
		for _, v := range nbuf {
			if dist[v] < 0 {
				dist[v] = dist[u] + 1
				queue = append(queue, v)
			}
		}
	}
	return dist
}

// Connected reports whether the graph is connected (true for n <= 1).
func (g *Graph) Connected() bool {
	if g.n <= 1 {
		return true
	}
	for _, d := range g.BFS(0) {
		if d < 0 {
			return false
		}
	}
	return true
}

// Eccentricity returns max_v dist(src, v); it panics if the graph is
// disconnected from src.
func (g *Graph) Eccentricity(src int) int {
	e := 0
	for _, d := range g.BFS(src) {
		if d < 0 {
			panic("graph: Eccentricity on disconnected graph")
		}
		if d > e {
			e = d
		}
	}
	return e
}

// parallelFloor is the vertex count below which builders skip goroutine
// fan-out (a variable so construction tests can force the parallel path).
var parallelFloor = 1 << 14

// parallelFor runs body over contiguous chunks of [0, n) on up to
// GOMAXPROCS goroutines. Chunks are disjoint, so builders whose chunk
// work touches only chunk-owned state are bit-identical for any degree
// of parallelism (the same contract the simulator's sharded Tick keeps).
func parallelFor(n int, body func(lo, hi int)) {
	workers := runtime.GOMAXPROCS(0)
	if workers > 1 && n >= parallelFloor {
		chunk := (n + workers - 1) / workers
		var wg sync.WaitGroup
		for lo := 0; lo < n; lo += chunk {
			hi := min(lo+chunk, n)
			wg.Add(1)
			go func(lo, hi int) {
				defer wg.Done()
				body(lo, hi)
			}(lo, hi)
		}
		wg.Wait()
		return
	}
	body(0, n)
}

// Ring returns the n-cycle (n >= 3) as an implicit graph.
func Ring(n int) *Graph {
	if n < 3 {
		panic("graph: Ring needs n >= 3")
	}
	return NewImplicit(fmt.Sprintf("ring(%d)", n), ImplicitSpec{
		N:      n,
		Edges:  n,
		Degree: func(int) int { return 2 },
		Fill: func(u int, buf []int) []int {
			a, b := (u+n-1)%n, (u+1)%n
			if a > b {
				a, b = b, a
			}
			return append(buf, a, b)
		},
	})
}

// Complete returns the complete graph K_n (n >= 2) as an implicit graph.
func Complete(n int) *Graph {
	if n < 2 {
		panic("graph: Complete needs n >= 2")
	}
	return NewImplicit(fmt.Sprintf("complete(%d)", n), ImplicitSpec{
		N:      n,
		Edges:  n * (n - 1) / 2,
		Degree: func(int) int { return n - 1 },
		Fill: func(u int, buf []int) []int {
			for j := 0; j < n; j++ {
				if j != u {
					buf = append(buf, j)
				}
			}
			return buf
		},
	})
}

// Star returns the star graph (vertex 0 is the hub, n >= 2) as an
// implicit graph.
func Star(n int) *Graph {
	if n < 2 {
		panic("graph: Star needs n >= 2")
	}
	return NewImplicit(fmt.Sprintf("star(%d)", n), ImplicitSpec{
		N:     n,
		Edges: n - 1,
		Degree: func(u int) int {
			if u == 0 {
				return n - 1
			}
			return 1
		},
		Fill: func(u int, buf []int) []int {
			if u == 0 {
				for v := 1; v < n; v++ {
					buf = append(buf, v)
				}
				return buf
			}
			return append(buf, 0)
		},
	})
}

// Torus returns the rows x cols wraparound grid (rows, cols >= 3, hence
// 4-regular) as an implicit graph.
func Torus(rows, cols int) *Graph {
	if rows < 3 || cols < 3 {
		panic("graph: Torus needs rows, cols >= 3")
	}
	n := rows * cols
	return NewImplicit(fmt.Sprintf("torus(%dx%d)", rows, cols), ImplicitSpec{
		N:      n,
		Edges:  2 * n,
		Degree: func(int) int { return 4 },
		Fill: func(u int, buf []int) []int {
			r, c := u/cols, u%cols
			// With both sides >= 3 the four wraparound neighbours are
			// always distinct, so a fixed 4-element sort suffices.
			ns := [4]int{
				((r+rows-1)%rows)*cols + c,
				((r+1)%rows)*cols + c,
				r*cols + (c+cols-1)%cols,
				r*cols + (c+1)%cols,
			}
			slices.Sort(ns[:])
			return append(buf, ns[:]...)
		},
	})
}

// Hypercube returns the dim-dimensional hypercube on 2^dim vertices
// (1 <= dim <= 30) as an implicit graph.
func Hypercube(dim int) *Graph {
	if dim < 1 || dim > 30 {
		panic("graph: Hypercube dimension out of range")
	}
	n := 1 << dim
	return NewImplicit(fmt.Sprintf("hypercube(%d)", dim), ImplicitSpec{
		N:      n,
		Edges:  n * dim / 2,
		Degree: func(int) int { return dim },
		Fill: func(u int, buf []int) []int {
			start := len(buf)
			for b := 0; b < dim; b++ {
				buf = append(buf, u^(1<<b))
			}
			slices.Sort(buf[start:])
			return buf
		},
	})
}

// ErrRegularFailed is returned when the d-regular sampler cannot repair
// its matching within the attempt budget.
var ErrRegularFailed = errors.New("graph: random regular construction failed; try another seed")

// RandomRegular samples a simple d-regular graph on n vertices via the
// configuration model with edge-switching repair of self-loops and
// parallel edges, stored as CSR. Requires 0 < d < n and n*d even.
func RandomRegular(n, d int, seed uint64) (*Graph, error) {
	if d <= 0 || d >= n {
		return nil, fmt.Errorf("graph: RandomRegular needs 0 < d < n, got n=%d d=%d", n, d)
	}
	if n*d%2 != 0 {
		return nil, fmt.Errorf("graph: RandomRegular needs n*d even, got n=%d d=%d", n, d)
	}
	rng := xrand.Derive(seed, 0x9e9, uint64(n), uint64(d))

	// Stub pairing.
	stubs := make([]int, 0, n*d)
	for v := 0; v < n; v++ {
		for k := 0; k < d; k++ {
			stubs = append(stubs, v)
		}
	}
	type edge struct{ u, v int }
	norm := func(u, v int) edge {
		if u > v {
			u, v = v, u
		}
		return edge{u, v}
	}
	edges := make([]edge, 0, n*d/2)
	seen := make(map[edge]bool, n*d/2)
	var bad []int // indices into edges of invalid pairs
	rng.Shuffle(len(stubs), func(i, j int) { stubs[i], stubs[j] = stubs[j], stubs[i] })
	for i := 0; i < len(stubs); i += 2 {
		e := norm(stubs[i], stubs[i+1])
		edges = append(edges, e)
		if e.u == e.v || seen[e] {
			bad = append(bad, len(edges)-1)
		} else {
			seen[e] = true
		}
	}

	// Repair bad pairs by 2-opt switches with random good edges.
	budget := 200*len(bad) + 10000
	for len(bad) > 0 && budget > 0 {
		budget--
		bi := bad[len(bad)-1]
		b := edges[bi]
		oi := rng.Intn(len(edges))
		o := edges[oi]
		if oi == bi {
			continue
		}
		// Propose rewiring (b.u,b.v),(o.u,o.v) -> (b.u,o.u),(b.v,o.v).
		e1 := norm(b.u, o.u)
		e2 := norm(b.v, o.v)
		if e1.u == e1.v || e2.u == e2.v || seen[e1] || seen[e2] || e1 == e2 {
			continue
		}
		// o must currently be a good (registered) edge.
		if !seen[o] {
			continue
		}
		delete(seen, o)
		if b.u != b.v && seen[b] {
			delete(seen, b)
		}
		seen[e1] = true
		seen[e2] = true
		edges[bi] = e1
		edges[oi] = e2
		bad = bad[:len(bad)-1]
	}
	if len(bad) > 0 {
		return nil, ErrRegularFailed
	}

	adj := make([][]int, n)
	for _, e := range edges {
		adj[e.u] = append(adj[e.u], e.v)
		adj[e.v] = append(adj[e.v], e.u)
	}
	for _, ns := range adj {
		sort.Ints(ns)
	}
	return fromLists(fmt.Sprintf("regular(%d,d=%d)", n, d), adj)
}

// MustRandomRegular retries RandomRegular over derived seeds until it
// produces a connected graph; it panics only if every attempt fails
// (practically impossible for d >= 3).
func MustRandomRegular(n, d int, seed uint64) *Graph {
	for try := uint64(0); try < 64; try++ {
		g, err := RandomRegular(n, d, seed+try)
		if err == nil && g.Connected() {
			return g
		}
	}
	panic("graph: MustRandomRegular exhausted retries")
}

// adjSets accumulates undirected edges in per-vertex sets — the shared
// scaffolding for generators that sample edges and must dedupe them
// before emitting sorted adjacency lists.
type adjSets []map[int]bool

func newAdjSets(n int) adjSets {
	a := make(adjSets, n)
	for i := range a {
		a[i] = make(map[int]bool)
	}
	return a
}

func (a adjSets) add(u, v int) {
	a[u][v] = true
	a[v][u] = true
}

func (a adjSets) lists() [][]int {
	lists := make([][]int, len(a))
	for u, set := range a {
		lst := make([]int, 0, len(set))
		for v := range set {
			lst = append(lst, v)
		}
		sort.Ints(lst)
		lists[u] = lst
	}
	return lists
}

// BarabasiAlbert grows a preferential-attachment graph: starting from a
// (m+1)-clique, each new vertex attaches to m distinct existing vertices
// chosen with probability proportional to their degree. The heavy-tailed
// degree distribution stresses the degree-dependent results (Theorem 13's
// Σ 1/(d_i+1), Local-DRR heights) beyond the regular topologies.
// Requires n > m >= 1. Stored as CSR.
func BarabasiAlbert(n, m int, seed uint64) *Graph {
	if m < 1 || n <= m+1 {
		panic("graph: BarabasiAlbert needs n > m+1 and m >= 1")
	}
	rng := xrand.Derive(seed, 0xBA, uint64(n), uint64(m))
	adj := newAdjSets(n)
	// Repeated-endpoint list: sampling an index uniformly samples a vertex
	// with probability proportional to its degree.
	var endpoints []int
	addEdge := func(u, v int) {
		adj.add(u, v)
		endpoints = append(endpoints, u, v)
	}
	for u := 0; u <= m; u++ {
		for v := u + 1; v <= m; v++ {
			addEdge(u, v)
		}
	}
	for u := m + 1; u < n; u++ {
		chosen := make(map[int]bool, m)
		targets := make([]int, 0, m)
		for len(targets) < m {
			v := endpoints[rng.Intn(len(endpoints))]
			if v != u && !chosen[v] {
				chosen[v] = true
				targets = append(targets, v)
			}
		}
		// Deterministic edge insertion order: the endpoint list feeds
		// later sampling, so it must not depend on map iteration.
		sort.Ints(targets)
		for _, v := range targets {
			addEdge(u, v)
		}
	}
	return mustFromLists(fmt.Sprintf("ba(%d,m=%d)", n, m), adj.lists())
}

// SmallWorld samples a Newman–Watts small-world graph: the ring lattice
// C(n, k) (every vertex linked to its k nearest neighbours on each side)
// plus, per vertex, a uniform random shortcut added with probability
// beta. Unlike Watts–Strogatz rewiring, the lattice stays intact, so the
// graph is always connected; the shortcuts give the O(log n) diameter
// that makes routed root-gossip cheap. Requires k >= 1, n >= 2k+2 and
// beta in [0,1].
//
// Construction is sharded: every vertex draws its shortcut from its own
// derived stream (xrand.DeriveStream(seed, 0x5311, n, k, u)), so the
// decisions are independent and the build parallelises over GOMAXPROCS
// with bit-identical output at any parallelism. Rows are packed straight
// into CSR storage — no per-vertex slices — which is what lets SC1 lift
// the old 3×10^5 small-world ceiling.
func SmallWorld(n, k int, beta float64, seed uint64) *Graph {
	if k < 1 || n < 2*k+2 {
		panic("graph: SmallWorld needs k >= 1 and n >= 2k+2")
	}
	if beta < 0 || beta > 1 {
		panic("graph: SmallWorld needs beta in [0,1]")
	}
	name := fmt.Sprintf("smallworld(%d,k=%d)", n, k)

	// Phase 1 (parallel): per-vertex shortcut decisions.
	shortcut := make([]int32, n)
	parallelFor(n, func(lo, hi int) {
		for u := lo; u < hi; u++ {
			rng := xrand.DeriveStream(seed, 0x5311, uint64(n), uint64(k), uint64(u))
			if rng.Float64() < beta {
				shortcut[u] = int32(rng.IntnOther(n, u))
			} else {
				shortcut[u] = -1
			}
		}
	})

	// Phase 2 (sequential, O(n)): counting-sort the incoming shortcuts so
	// each vertex can read the shortcuts pointing at it.
	indeg := make([]int32, n)
	for _, v := range shortcut {
		if v >= 0 {
			indeg[v]++
		}
	}
	inOff := make([]int64, n+1)
	for v := 0; v < n; v++ {
		inOff[v+1] = inOff[v] + int64(indeg[v])
	}
	inArr := make([]int32, inOff[n])
	cursor := make([]int64, n)
	copy(cursor, inOff[:n])
	for u, v := range shortcut {
		if v >= 0 {
			inArr[cursor[v]] = int32(u)
			cursor[v]++
		}
	}

	// Phase 3 (sequential, O(n)): provisional row offsets with room for
	// lattice edges, the own shortcut and all incoming shortcuts.
	prov := make([]int64, n+1)
	for u := 0; u < n; u++ {
		c := int64(2*k) + int64(indeg[u])
		if shortcut[u] >= 0 {
			c++
		}
		prov[u+1] = prov[u] + c
	}

	// Phase 4 (parallel): fill each row in its provisional slot, then
	// sort and dedupe it in place (duplicates arise when a shortcut hits
	// a lattice edge or mirrors another shortcut).
	tmp := make([]int32, prov[n])
	deg := make([]int32, n)
	parallelFor(n, func(lo, hi int) {
		for u := lo; u < hi; u++ {
			row := tmp[prov[u]:prov[u]:prov[u+1]]
			for d := 1; d <= k; d++ {
				row = append(row, int32((u+d)%n), int32((u+n-d)%n))
			}
			if v := shortcut[u]; v >= 0 {
				row = append(row, v)
			}
			row = append(row, inArr[inOff[u]:inOff[u+1]]...)
			slices.Sort(row)
			w := 0
			for i, v := range row {
				if i == 0 || v != row[i-1] {
					row[w] = v
					w++
				}
			}
			deg[u] = int32(w)
		}
	})

	// Phase 5: final offsets and compaction.
	off := make([]int64, n+1)
	for u := 0; u < n; u++ {
		off[u+1] = off[u] + int64(deg[u])
	}
	csr := make([]int32, off[n])
	parallelFor(n, func(lo, hi int) {
		for u := lo; u < hi; u++ {
			copy(csr[off[u]:off[u+1]], tmp[prov[u]:prov[u]+int64(deg[u])])
		}
	})
	return &Graph{name: name, n: n, off: off, csr: csr, m: int(off[n] / 2)}
}

// ErdosRenyi samples G(n, p) using geometric edge skipping, which runs in
// O(n + |E|) expected time. Stored as CSR.
func ErdosRenyi(n int, p float64, seed uint64) *Graph {
	if n < 1 {
		panic("graph: ErdosRenyi needs n >= 1")
	}
	if p < 0 || p > 1 {
		panic("graph: ErdosRenyi needs p in [0,1]")
	}
	rng := xrand.Derive(seed, 0xe12, uint64(n))
	adj := make([][]int, n)
	if p > 0 {
		logq := math.Log1p(-p) // log(1-p), p<1
		// addEdge maps a linear index over the strict upper triangle (in
		// row-major order) to a pair (u,v), u<v. Indices arrive in
		// increasing order, so the row cursor advances monotonically and
		// the mapping is amortized O(1).
		curU, consumed := 0, int64(0)
		addEdge := func(idx int64) {
			for idx-consumed >= int64(n-1-curU) {
				consumed += int64(n - 1 - curU)
				curU++
			}
			u := curU
			v := u + 1 + int(idx-consumed)
			adj[u] = append(adj[u], v)
			adj[v] = append(adj[v], u)
		}
		total := int64(n) * int64(n-1) / 2
		if p >= 1 {
			for i := int64(0); i < total; i++ {
				addEdge(i)
			}
		} else {
			i := int64(-1)
			for {
				u := rng.Float64()
				skip := int64(1)
				if u > 0 {
					skip = 1 + int64(math.Floor(math.Log(u)/logq))
				}
				if skip < 1 {
					skip = 1
				}
				i += skip
				if i >= total {
					break
				}
				addEdge(i)
			}
		}
	}
	for _, ns := range adj {
		sort.Ints(ns)
	}
	return mustFromLists(fmt.Sprintf("gnp(%d,p=%.4g)", n, p), adj)
}
