package graph

// Cross-representation goldens: the implicit and CSR storage must return
// neighbour lists element-identical to the historical jagged-slice
// builders, replicated here verbatim as references.

import (
	"fmt"
	"sort"
	"testing"

	"drrgossip/internal/xrand"
)

// legacyLists materializes g's adjacency through the public API.
func legacyLists(g *Graph) [][]int {
	lists := make([][]int, g.N())
	for u := range lists {
		lists[u] = g.NeighborsInto(u, nil)
	}
	return lists
}

// assertSameAdjacency compares g's every query against reference lists.
func assertSameAdjacency(t *testing.T, g *Graph, want [][]int) {
	t.Helper()
	if g.N() != len(want) {
		t.Fatalf("%s: N = %d, want %d", g.Name(), g.N(), len(want))
	}
	edges := 0
	var buf []int
	for u := range want {
		edges += len(want[u])
		ns := g.Neighbors(u)
		if !equalInts(ns, want[u]) {
			t.Fatalf("%s: Neighbors(%d) = %v, want %v", g.Name(), u, ns, want[u])
		}
		buf = g.NeighborsInto(u, buf)
		if !equalInts(buf, want[u]) {
			t.Fatalf("%s: NeighborsInto(%d) = %v, want %v", g.Name(), u, buf, want[u])
		}
		if g.Degree(u) != len(want[u]) {
			t.Fatalf("%s: Degree(%d) = %d, want %d", g.Name(), u, g.Degree(u), len(want[u]))
		}
		// Probe a bounded sample of edges: a full per-edge sweep is
		// O(n·fill) per vertex on implicit dense graphs.
		for i, v := range want[u] {
			if i >= 4 && i < len(want[u])-1 {
				continue
			}
			if !g.HasEdge(u, v) {
				t.Fatalf("%s: HasEdge(%d,%d) = false", g.Name(), u, v)
			}
		}
		if g.HasEdge(u, u) {
			t.Fatalf("%s: HasEdge(%d,%d) = true", g.Name(), u, u)
		}
	}
	if g.NumEdges() != edges/2 {
		t.Fatalf("%s: NumEdges = %d, want %d", g.Name(), g.NumEdges(), edges/2)
	}
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Reference builders: the pre-refactor materialized constructions.

func refRing(n int) [][]int {
	adj := make([][]int, n)
	for i := range adj {
		a, b := (i+n-1)%n, (i+1)%n
		if a > b {
			a, b = b, a
		}
		adj[i] = []int{a, b}
	}
	return adj
}

func refComplete(n int) [][]int {
	adj := make([][]int, n)
	for i := range adj {
		ns := make([]int, 0, n-1)
		for j := 0; j < n; j++ {
			if j != i {
				ns = append(ns, j)
			}
		}
		adj[i] = ns
	}
	return adj
}

func refStar(n int) [][]int {
	adj := make([][]int, n)
	hub := make([]int, 0, n-1)
	for i := 1; i < n; i++ {
		hub = append(hub, i)
		adj[i] = []int{0}
	}
	adj[0] = hub
	return adj
}

func refTorus(rows, cols int) [][]int {
	n := rows * cols
	id := func(r, c int) int { return ((r+rows)%rows)*cols + (c+cols)%cols }
	adj := make([][]int, n)
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			u := id(r, c)
			set := map[int]bool{
				id(r-1, c): true, id(r+1, c): true,
				id(r, c-1): true, id(r, c+1): true,
			}
			ns := make([]int, 0, 4)
			for v := range set {
				if v != u {
					ns = append(ns, v)
				}
			}
			sort.Ints(ns)
			adj[u] = ns
		}
	}
	return adj
}

func refHypercube(dim int) [][]int {
	n := 1 << dim
	adj := make([][]int, n)
	for u := 0; u < n; u++ {
		ns := make([]int, dim)
		for b := 0; b < dim; b++ {
			ns[b] = u ^ (1 << b)
		}
		sort.Ints(ns)
		adj[u] = ns
	}
	return adj
}

// refSmallWorld is the jagged-slice small-world builder over the same
// per-vertex derived streams the CSR builder consumes.
func refSmallWorld(n, k int, beta float64, seed uint64) [][]int {
	adj := make([][]int, n)
	for u := 0; u < n; u++ {
		for d := 1; d <= k; d++ {
			v := (u + d) % n
			adj[u] = append(adj[u], v)
			adj[v] = append(adj[v], u)
		}
	}
	for u := 0; u < n; u++ {
		rng := xrand.DeriveStream(seed, 0x5311, uint64(n), uint64(k), uint64(u))
		if rng.Float64() < beta {
			v := rng.IntnOther(n, u)
			adj[u] = append(adj[u], v)
			adj[v] = append(adj[v], u)
		}
	}
	SortDedup(adj)
	return adj
}

// The implicit representations must match the materialized references at
// every acceptance-bar size (64, 1000, 4097; nearest valid size where a
// family constrains n).
func TestImplicitMatchesReference(t *testing.T) {
	for _, n := range []int{64, 1000, 4097} {
		t.Run(fmt.Sprintf("n=%d", n), func(t *testing.T) {
			assertSameAdjacency(t, Ring(n), refRing(n))
			assertSameAdjacency(t, Complete(n), refComplete(n))
			assertSameAdjacency(t, Star(n), refStar(n))
		})
	}
	for _, rc := range [][2]int{{8, 8}, {25, 40}, {17, 241}} {
		assertSameAdjacency(t, Torus(rc[0], rc[1]), refTorus(rc[0], rc[1]))
	}
	for _, dim := range []int{6, 10, 12} {
		assertSameAdjacency(t, Hypercube(dim), refHypercube(dim))
	}
}

func TestSmallWorldCSRMatchesReference(t *testing.T) {
	for _, tc := range []struct {
		n, k int
		beta float64
		seed uint64
	}{
		{64, 2, 0.25, 7}, {1000, 2, 0.25, 7}, {4097, 3, 0.4, 11},
		{64, 1, 1, 3}, {1000, 2, 0, 3},
	} {
		g := SmallWorld(tc.n, tc.k, tc.beta, tc.seed)
		assertSameAdjacency(t, g, refSmallWorld(tc.n, tc.k, tc.beta, tc.seed))
	}
}

// Sharded construction must be bit-identical to the sequential path:
// force fan-out by dropping the floor below n.
func TestSmallWorldParallelDeterministic(t *testing.T) {
	oldFloor := parallelFloor
	defer func() { parallelFloor = oldFloor }()
	n, k, beta := 5000, 2, 0.3
	parallelFloor = 1 << 30 // sequential
	seqLists := legacyLists(SmallWorld(n, k, beta, 9))
	parallelFloor = 1 // every build fans out
	assertSameAdjacency(t, SmallWorld(n, k, beta, 9), seqLists)
}

// CSR generators must round-trip through the jagged representation.
func TestCSRMatchesJaggedCopy(t *testing.T) {
	for _, g := range []*Graph{
		MustRandomRegular(1000, 4, 7),
		BarabasiAlbert(1000, 3, 9),
		ErdosRenyi(500, 0.02, 11),
	} {
		jg, err := LegacyJagged(g.Name(), legacyLists(g))
		if err != nil {
			t.Fatalf("%s: %v", g.Name(), err)
		}
		assertSameAdjacency(t, jg, legacyLists(g))
		if jg.NumEdges() != g.NumEdges() {
			t.Fatalf("%s: edge count differs across representations", g.Name())
		}
	}
}

// FromAdjacency must copy: caller mutations after construction cannot
// reach the graph (the historical implementation wrapped the slices).
func TestFromAdjacencyCopiesInput(t *testing.T) {
	adj := [][]int{{2, 1}, {0}, {0}}
	g, err := FromAdjacency("custom", adj)
	if err != nil {
		t.Fatal(err)
	}
	if !equalInts(g.Neighbors(0), []int{1, 2}) {
		t.Fatalf("Neighbors(0) = %v before mutation", g.Neighbors(0))
	}
	// Caller scribbles over its slices; the graph must be unaffected.
	adj[0][0] = 99
	adj[0][1] = -5
	adj[1][0] = 77
	if got := g.Neighbors(0); !equalInts(got, []int{1, 2}) {
		t.Fatalf("Neighbors(0) = %v after caller mutation, want [1 2]", got)
	}
	if got := g.Neighbors(1); !equalInts(got, []int{0}) {
		t.Fatalf("Neighbors(1) = %v after caller mutation, want [0]", got)
	}
	if !g.HasEdge(0, 2) || g.HasEdge(0, 99) {
		t.Fatal("edge set changed after caller mutation")
	}
	// And the input order must be preserved for the caller (sorted copies,
	// not sorted in place): rebuild from a deliberately unsorted list.
	raw := [][]int{{1, 0}, {}}
	if _, err := FromAdjacency("asym", raw); err == nil {
		t.Fatal("asymmetric input accepted")
	}
	if raw[0][0] != 1 || raw[0][1] != 0 {
		t.Fatalf("FromAdjacency sorted the caller's slice in place: %v", raw[0])
	}
}

// The Neighbors scratch contract: the returned list stays valid across
// Degree and HasEdge calls (they use a second scratch), and NeighborsInto
// never touches either scratch.
func TestScratchOwnership(t *testing.T) {
	g := Ring(100) // implicit
	ns := g.Neighbors(10)
	_ = g.Degree(50)
	_ = g.HasEdge(50, 51)
	if !equalInts(ns, []int{9, 11}) {
		t.Fatalf("Neighbors(10) corrupted by Degree/HasEdge: %v", ns)
	}
	own := g.NeighborsInto(20, nil)
	if !equalInts(ns, []int{9, 11}) || !equalInts(own, []int{19, 21}) {
		t.Fatalf("NeighborsInto disturbed scratch: %v %v", ns, own)
	}
}
