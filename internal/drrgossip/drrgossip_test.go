package drrgossip

import (
	"math"
	"testing"
	"testing/quick"

	"drrgossip/internal/agg"
	"drrgossip/internal/sim"
)

func TestMaxEndToEnd(t *testing.T) {
	n := 2048
	eng := sim.NewEngine(n, sim.Options{Seed: 41})
	values := agg.GenUniform(n, -100, 100, 1)
	res, err := Max(eng, values, Options{})
	if err != nil {
		t.Fatal(err)
	}
	want := agg.Exact(agg.Max, values, 0)
	if res.Value != want {
		t.Fatalf("Max = %v, want %v", res.Value, want)
	}
	if !res.Consensus {
		t.Fatal("no consensus")
	}
	for i, v := range res.PerNode {
		if res.Forest.Member(i) && v != want {
			t.Fatalf("node %d has %v", i, v)
		}
	}
}

func TestMinEndToEnd(t *testing.T) {
	n := 1024
	eng := sim.NewEngine(n, sim.Options{Seed: 42})
	values := agg.GenSigned(n, 50, 2)
	res, err := Min(eng, values, Options{})
	if err != nil {
		t.Fatal(err)
	}
	want := agg.Exact(agg.Min, values, 0)
	if res.Value != want || !res.Consensus {
		t.Fatalf("Min = %v (consensus %v), want %v", res.Value, res.Consensus, want)
	}
}

func TestAveEndToEnd(t *testing.T) {
	n := 2048
	eng := sim.NewEngine(n, sim.Options{Seed: 43})
	values := agg.GenUniform(n, 0, 1000, 3)
	res, err := Ave(eng, values, Options{})
	if err != nil {
		t.Fatal(err)
	}
	want := agg.Exact(agg.Average, values, 0)
	if e := agg.RelError(res.Value, want); e > 1e-6 {
		t.Fatalf("Ave = %v, want %v (rel err %v)", res.Value, want, e)
	}
	if !res.Consensus {
		t.Fatal("no consensus")
	}
}

func TestSumEndToEnd(t *testing.T) {
	n := 1024
	eng := sim.NewEngine(n, sim.Options{Seed: 44})
	values := agg.GenUniform(n, -5, 5, 4)
	res, err := Sum(eng, values, Options{})
	if err != nil {
		t.Fatal(err)
	}
	want := agg.Exact(agg.Sum, values, 0)
	if e := agg.RelError(res.Value, want); e > 1e-6 {
		t.Fatalf("Sum = %v, want %v (rel err %v)", res.Value, want, e)
	}
}

func TestCountEndToEnd(t *testing.T) {
	n := 1024
	eng := sim.NewEngine(n, sim.Options{Seed: 45})
	values := agg.GenUniform(n, 0, 1, 5)
	res, err := Count(eng, values, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if e := agg.RelError(res.Value, float64(n)); e > 1e-6 {
		t.Fatalf("Count = %v, want %d", res.Value, n)
	}
}

func TestCountWithCrashes(t *testing.T) {
	n := 2048
	eng := sim.NewEngine(n, sim.Options{Seed: 46, CrashFrac: 0.3})
	values := agg.GenUniform(n, 0, 1, 6)
	res, err := Count(eng, values, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if e := agg.RelError(res.Value, float64(eng.NumAlive())); e > 1e-6 {
		t.Fatalf("Count = %v, want alive %d", res.Value, eng.NumAlive())
	}
}

func TestRankEndToEnd(t *testing.T) {
	n := 1024
	eng := sim.NewEngine(n, sim.Options{Seed: 47})
	values := agg.GenUniform(n, 0, 100, 7)
	q := 42.0
	res, err := Rank(eng, values, q, Options{})
	if err != nil {
		t.Fatal(err)
	}
	want := agg.Exact(agg.Rank, values, q)
	if e := agg.RelError(res.Value, want); e > 1e-6 {
		t.Fatalf("Rank(%v) = %v, want %v", q, res.Value, want)
	}
}

func TestMaxUnderLossAndCrashes(t *testing.T) {
	n := 2048
	eng := sim.NewEngine(n, sim.Options{Seed: 48, Loss: 0.125, CrashFrac: 0.1})
	values := agg.GenUniform(n, 0, 10000, 8)
	res, err := Max(eng, values, Options{})
	if err != nil {
		t.Fatal(err)
	}
	want := agg.Exact(agg.Max, agg.Subset(values, eng.AliveIDs()), 0)
	if res.Value != want {
		t.Fatalf("Max = %v, want %v", res.Value, want)
	}
	if !res.Consensus {
		t.Fatal("no consensus under loss")
	}
	for i, v := range res.PerNode {
		if !res.Forest.Member(i) {
			if !math.IsNaN(v) {
				t.Fatalf("crashed node %d has value %v", i, v)
			}
		}
	}
}

func TestAveUnderLoss(t *testing.T) {
	n := 2048
	eng := sim.NewEngine(n, sim.Options{Seed: 49, Loss: 0.1})
	values := agg.GenUniform(n, 0, 100, 9)
	res, err := Ave(eng, values, Options{})
	if err != nil {
		t.Fatal(err)
	}
	want := agg.Exact(agg.Average, values, 0)
	if e := agg.RelError(res.Value, want); e > 0.05 {
		t.Fatalf("Ave = %v, want %v under loss (rel err %v)", res.Value, want, e)
	}
	if !res.Consensus {
		t.Fatal("no consensus under loss")
	}
}

func TestTimeComplexityLogarithmic(t *testing.T) {
	// End-to-end rounds must grow like log n: compare n and n^2.
	rounds := func(n int) float64 {
		eng := sim.NewEngine(n, sim.Options{Seed: 50})
		values := agg.GenUniform(n, 0, 1, 10)
		res, err := Max(eng, values, Options{})
		if err != nil {
			t.Fatal(err)
		}
		return float64(res.Stats.Rounds)
	}
	r1 := rounds(256)
	r2 := rounds(256 * 256)
	// log(n^2) = 2 log n: allow [1.2, 3.5] to absorb additive constants.
	ratio := r2 / r1
	if ratio < 1.2 || ratio > 3.5 {
		t.Fatalf("rounds(65536)/rounds(256) = %v, inconsistent with O(log n)", ratio)
	}
}

func TestMessageComplexityNLogLogN(t *testing.T) {
	// Messages per node must grow like log log n (DRR-dominated), far
	// slower than log n: doubling n several times should barely move it.
	perNode := func(n int) float64 {
		eng := sim.NewEngine(n, sim.Options{Seed: 51})
		values := agg.GenUniform(n, 0, 1, 11)
		res, err := Max(eng, values, Options{})
		if err != nil {
			t.Fatal(err)
		}
		return float64(res.Stats.Messages) / float64(n)
	}
	m1 := perNode(1024)
	m2 := perNode(16384)
	// log log grows by log(14)/log(10) = 1.14x; log n would grow 1.4x.
	if m2/m1 > 1.35 {
		t.Fatalf("messages/node grew %vx from n=1k to n=16k; too fast for n loglog n", m2/m1)
	}
}

func TestPhaseStatsConsistent(t *testing.T) {
	n := 512
	eng := sim.NewEngine(n, sim.Options{Seed: 52})
	values := agg.GenUniform(n, 0, 1, 12)
	res, err := Ave(eng, values, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats != res.Phases.Total() {
		t.Fatalf("Stats %+v != phase total %+v", res.Stats, res.Phases.Total())
	}
	if res.Stats.Messages != eng.Stats().Messages {
		t.Fatalf("accounted %d of %d engine messages", res.Stats.Messages, eng.Stats().Messages)
	}
	if res.Phases.DRR.Messages == 0 || res.Phases.Gossip.Messages == 0 {
		t.Fatal("empty phase counters")
	}
}

func TestValueLengthValidation(t *testing.T) {
	eng := sim.NewEngine(16, sim.Options{Seed: 53})
	if _, err := Max(eng, make([]float64, 8), Options{}); err == nil {
		t.Fatal("length mismatch accepted")
	}
	if _, err := Ave(eng, make([]float64, 8), Options{}); err == nil {
		t.Fatal("length mismatch accepted")
	}
}

func TestDeterminism(t *testing.T) {
	n := 512
	values := agg.GenUniform(n, 0, 1, 13)
	run := func() *Result {
		eng := sim.NewEngine(n, sim.Options{Seed: 54})
		res, err := Ave(eng, values, Options{})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if a.Value != b.Value || a.Stats != b.Stats {
		t.Fatalf("nondeterministic: %v/%+v vs %v/%+v", a.Value, a.Stats, b.Value, b.Stats)
	}
}

func TestTinyNetworks(t *testing.T) {
	for _, n := range []int{2, 3, 5, 8} {
		eng := sim.NewEngine(n, sim.Options{Seed: 55})
		values := agg.GenLinear(n)
		res, err := Max(eng, values, Options{})
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if res.Value != float64(n-1) {
			t.Fatalf("n=%d: Max = %v", n, res.Value)
		}
	}
}

// Property: across seeds and aggregate kinds, DRR-gossip matches the
// exact aggregate within push-sum tolerance.
func TestAllAggregatesProperty(t *testing.T) {
	f := func(seed uint16) bool {
		n := 256
		values := agg.GenSigned(n, 100, uint64(seed))
		eng := func() *sim.Engine {
			return sim.NewEngine(n, sim.Options{Seed: uint64(seed) + 1000})
		}
		if r, err := Max(eng(), values, Options{}); err != nil || r.Value != agg.Exact(agg.Max, values, 0) {
			return false
		}
		if r, err := Min(eng(), values, Options{}); err != nil || r.Value != agg.Exact(agg.Min, values, 0) {
			return false
		}
		if r, err := Ave(eng(), values, Options{}); err != nil ||
			agg.RelError(r.Value, agg.Exact(agg.Average, values, 0)) > 1e-4 {
			return false
		}
		if r, err := Count(eng(), values, Options{}); err != nil ||
			agg.RelError(r.Value, float64(n)) > 1e-4 {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkDRRGossipMax(b *testing.B) {
	n := 4096
	values := agg.GenUniform(n, 0, 1, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng := sim.NewEngine(n, sim.Options{Seed: uint64(i)})
		if _, err := Max(eng, values, Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDRRGossipAve(b *testing.B) {
	n := 4096
	values := agg.GenUniform(n, 0, 1, 2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng := sim.NewEngine(n, sim.Options{Seed: uint64(i)})
		if _, err := Ave(eng, values, Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

func TestCountUnderLossAndCrashes(t *testing.T) {
	// Regression: the distinguished-root denominator must survive link
	// loss (reliable shares); without them a single early lost share
	// skews Count by tens of percent.
	n := 8192
	eng := sim.NewEngine(n, sim.Options{Seed: 56, Loss: 0.1, CrashFrac: 0.08})
	values := agg.GenUniform(n, 0, 1, 14)
	res, err := Count(eng, values, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if e := agg.RelError(res.Value, float64(eng.NumAlive())); e > 0.01 {
		t.Fatalf("Count = %v, want %d (rel err %v)", res.Value, eng.NumAlive(), e)
	}
}

func TestSumUnderLoss(t *testing.T) {
	n := 4096
	eng := sim.NewEngine(n, sim.Options{Seed: 57, Loss: 0.125})
	values := agg.GenUniform(n, -5, 5, 15)
	res, err := Sum(eng, values, Options{})
	if err != nil {
		t.Fatal(err)
	}
	want := agg.Exact(agg.Sum, values, 0)
	if e := agg.RelError(res.Value, want); e > 0.01 {
		t.Fatalf("Sum = %v, want %v (rel err %v)", res.Value, want, e)
	}
}

func TestRankUnderLoss(t *testing.T) {
	n := 4096
	eng := sim.NewEngine(n, sim.Options{Seed: 58, Loss: 0.1})
	values := agg.GenUniform(n, 0, 100, 16)
	res, err := Rank(eng, values, 42, Options{})
	if err != nil {
		t.Fatal(err)
	}
	want := agg.Exact(agg.Rank, values, 42)
	if e := agg.RelError(res.Value, want); e > 0.01 {
		t.Fatalf("Rank = %v, want %v", res.Value, want)
	}
}
