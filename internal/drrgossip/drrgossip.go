// Package drrgossip composes the three phases of the paper into the
// complete DRR-gossip algorithms: DRR-gossip-max (Algorithm 7),
// DRR-gossip-ave (Algorithm 8) and the derived aggregates (Min, Sum,
// Count, Rank) obtained by the paper's "suitable modifications".
//
// Complexity (Theorems 2-7): O(log n) rounds and O(n log log n) messages,
// the message bill dominated by Phase I; Phases II and III cost O(n)
// messages each.
//
// Sum and Count use the distinguished-root form of push-sum: Gossip-max
// on (tree size, root id) keys elects the largest-tree root z (as in
// Algorithm 8), and Gossip-ave runs with weight g0 = 1 at z and 0
// elsewhere, so every ratio converges to Σ s0 / 1 — the global sum (with
// s0 = tree sums) or the live node count (with s0 = tree sizes).
package drrgossip

import (
	"errors"
	"fmt"
	"math"

	"drrgossip/internal/agg"
	"drrgossip/internal/convergecast"
	"drrgossip/internal/drr"
	"drrgossip/internal/forest"
	"drrgossip/internal/gossip"
	"drrgossip/internal/sim"
)

// Options tune the composite pipelines; zero values reproduce the paper.
type Options struct {
	DRR          drr.Options
	Convergecast convergecast.Options
	Gossip       gossip.Options
	AveRounds    int // Gossip-ave iterations (0 = default)
}

// Phase labels the pipelines record on the engine (sim.SetPhase) as they
// progress, so per-round observers can attribute time to the paper's
// phases. Observability only — no protocol logic reads them.
const (
	PhaseDRR       = "drr"       // Phase I: (Local-)DRR forest building
	PhaseAggregate = "aggregate" // Phase II: convergecast + root-address broadcast
	PhaseGossip    = "gossip"    // Phase III: root-level gossip (max/ave/spread)
	PhaseBroadcast = "broadcast" // final dissemination down the trees
)

// PhaseStats breaks the run's cost into the paper's phases.
type PhaseStats struct {
	DRR       sim.Counters // Phase I
	Aggregate sim.Counters // Phase II: convergecast(s) + root-address broadcast
	Gossip    sim.Counters // Phase III: gossip-max (+ gossip-ave + data-spread)
	Broadcast sim.Counters // final dissemination down the trees
}

// Total sums the phase counters.
func (p PhaseStats) Total() sim.Counters {
	t := p.DRR
	for _, c := range []sim.Counters{p.Aggregate, p.Gossip, p.Broadcast} {
		t.Rounds += c.Rounds
		t.Messages += c.Messages
		t.Drops += c.Drops
		t.Calls += c.Calls
	}
	return t
}

// Result is the outcome of a DRR-gossip run.
type Result struct {
	// Value is the aggregate at the distinguished root (the consensus
	// value whp).
	Value float64
	// PerNode is every node's final value (NaN for crashed nodes).
	PerNode []float64
	// Consensus reports whether all alive nodes ended with the same value.
	Consensus bool
	Forest    *forest.Forest
	Phases    PhaseStats
	Stats     sim.Counters
}

// ErrNoNodes is returned when the engine has no alive nodes to aggregate.
var ErrNoNodes = errors.New("drrgossip: no alive nodes")

// largestKey encodes (tree size, root id) into an exactly-representable
// float64 so Gossip-max can elect a unique largest-tree root. Sizes and
// ids stay below 2^24, so size*2^24 + id < 2^48 < 2^53.
func largestKey(size, root int) float64 {
	return float64(size)*(1<<24) + float64(root)
}

func decodeKeyRoot(key float64) int {
	return int(int64(key) & (1<<24 - 1))
}

// Max runs DRR-gossip-max (Algorithm 7).
func Max(eng *sim.Engine, values []float64, opts Options) (*Result, error) {
	return maxPipeline(eng, values, opts, false)
}

// Min runs the Min variant of Algorithm 7 (Gossip-max on negated values).
func Min(eng *sim.Engine, values []float64, opts Options) (*Result, error) {
	return maxPipeline(eng, values, opts, true)
}

func maxPipeline(eng *sim.Engine, values []float64, opts Options, negate bool) (*Result, error) {
	if len(values) != eng.N() {
		return nil, fmt.Errorf("drrgossip: %d values for %d nodes", len(values), eng.N())
	}
	work := values
	if negate {
		work = make([]float64, len(values))
		for i, v := range values {
			work[i] = -v
		}
	}
	var ph PhaseStats

	// Phase I: DRR.
	eng.SetPhase(PhaseDRR)
	dres, err := drr.Run(eng, opts.DRR)
	if err != nil {
		return nil, err
	}
	f := dres.Forest
	ph.DRR = dres.Stats
	if f.NumTrees() == 0 {
		return nil, ErrNoNodes
	}

	// Phase II: convergecast-max + root-address broadcast.
	eng.SetPhase(PhaseAggregate)
	covmax, c1, err := convergecast.Max(eng, f, work, opts.Convergecast)
	if err != nil {
		return nil, err
	}
	rootTo, c2, err := convergecast.BroadcastRootAddr(eng, f, opts.Convergecast)
	if err != nil {
		return nil, err
	}
	ph.Aggregate = addCounters(c1, c2)

	// Phase III: gossip-max among roots.
	eng.SetPhase(PhaseGossip)
	gres, err := gossip.Max(eng, f, rootTo, covmax, opts.Gossip)
	if err != nil {
		return nil, err
	}
	ph.Gossip = gres.Stats

	// Final dissemination down the trees.
	eng.SetPhase(PhaseBroadcast)
	perNode, c3, err := convergecast.BroadcastValue(eng, f, gres.Estimates, opts.Convergecast)
	if err != nil {
		return nil, err
	}
	ph.Broadcast = c3

	value := bestEffortValue(eng, f, perNode[f.LargestRoot()], gres.Estimates)
	if negate {
		for i := range perNode {
			perNode[i] = -perNode[i]
		}
		value = -value
	}
	return finish(eng, f, value, perNode, ph), nil
}

// bestEffortValue picks the run's reported value. In a healthy run the
// preferred value (the largest root's disseminated result) is finite and
// wins; when mid-run crashes leave it NaN, the first finite estimate of
// a live root stands in (any dead root's frozen estimate as a last
// resort), so faulty runs report a degraded answer instead of NaN.
func bestEffortValue(eng *sim.Engine, f *forest.Forest, preferred float64, est map[int]float64) float64 {
	if !math.IsNaN(preferred) && !math.IsInf(preferred, 0) {
		return preferred
	}
	for _, pass := range [2]bool{true, false} { // live roots first; sorted order
		for _, r := range f.Roots() {
			if eng.Alive(r) != pass {
				continue
			}
			if v, ok := est[r]; ok && !math.IsNaN(v) && !math.IsInf(v, 0) {
				return v
			}
		}
	}
	return preferred
}

// Ave runs DRR-gossip-ave (Algorithm 8).
func Ave(eng *sim.Engine, values []float64, opts Options) (*Result, error) {
	return avePipeline(eng, values, opts, pushAve)
}

// Sum computes the global sum with the distinguished-root push-sum.
func Sum(eng *sim.Engine, values []float64, opts Options) (*Result, error) {
	return avePipeline(eng, values, opts, pushSum)
}

// Count computes the number of alive nodes (the Count aggregate).
func Count(eng *sim.Engine, values []float64, opts Options) (*Result, error) {
	return avePipeline(eng, values, opts, pushCount)
}

// Rank computes Rank(q) = |{i alive : v_i <= q}| by summing indicator
// values (the paper's Rank reduction).
func Rank(eng *sim.Engine, values []float64, q float64, opts Options) (*Result, error) {
	return Sum(eng, agg.Indicator(values, q), opts)
}

// pushMode selects how the Gossip-ave initial vectors are built from the
// per-tree convergecast results, given the elected largest root z.
type pushMode int

const (
	pushAve pushMode = iota
	pushSum
	pushCount
)

// electRoot resolves the distinguished root from the won election key.
// In a healthy run the decoded winner is a live root and is returned
// as-is. When mid-run crashes killed it (its tree's mass would be
// unreachable), the election falls back to the live root with the
// largest own key — deterministically, since Roots() is sorted — so the
// push-sum denominator is placed where it can still circulate.
func electRoot(eng *sim.Engine, f *forest.Forest, maxKey float64, keys map[int]float64) (int, error) {
	z := decodeKeyRoot(maxKey)
	if f.IsRoot(z) && eng.Alive(z) {
		return z, nil
	}
	best, bestKey := -1, math.Inf(-1)
	for _, r := range f.Roots() {
		if eng.Alive(r) && keys[r] > bestKey {
			best, bestKey = r, keys[r]
		}
	}
	if best >= 0 {
		return best, nil
	}
	if f.IsRoot(z) {
		return z, nil // every root is dead; keep the elected one
	}
	return -1, fmt.Errorf("drrgossip: elected node %d is not a root", z)
}

func buildInit(mode pushMode, covsum map[int]convergecast.SumCount, z int) map[int]convergecast.SumCount {
	init := make(map[int]convergecast.SumCount, len(covsum))
	for r, sc := range covsum {
		switch mode {
		case pushAve:
			// (tree sum, tree size): ratios converge to Σsums/Σsizes.
			init[r] = sc
		case pushSum:
			// (tree sum, [r==z]): ratios converge to Σsums/1.
			g := 0.0
			if r == z {
				g = 1
			}
			init[r] = convergecast.SumCount{Sum: sc.Sum, Count: g}
		case pushCount:
			// (tree size, [r==z]): ratios converge to Σsizes/1 = n_alive.
			g := 0.0
			if r == z {
				g = 1
			}
			init[r] = convergecast.SumCount{Sum: sc.Count, Count: g}
		}
	}
	return init
}

func avePipeline(eng *sim.Engine, values []float64, opts Options, mode pushMode) (*Result, error) {
	if len(values) != eng.N() {
		return nil, fmt.Errorf("drrgossip: %d values for %d nodes", len(values), eng.N())
	}
	var ph PhaseStats

	// Phase I: DRR.
	eng.SetPhase(PhaseDRR)
	dres, err := drr.Run(eng, opts.DRR)
	if err != nil {
		return nil, err
	}
	f := dres.Forest
	ph.DRR = dres.Stats
	if f.NumTrees() == 0 {
		return nil, ErrNoNodes
	}

	// Phase II: convergecast-sum + root-address broadcast.
	eng.SetPhase(PhaseAggregate)
	covsum, c1, err := convergecast.Sum(eng, f, values, opts.Convergecast)
	if err != nil {
		return nil, err
	}
	rootTo, c2, err := convergecast.BroadcastRootAddr(eng, f, opts.Convergecast)
	if err != nil {
		return nil, err
	}
	ph.Aggregate = addCounters(c1, c2)

	// Phase III(a): Gossip-max on (tree size, root id) keys elects the
	// largest-tree root z; every root learns the winning key, hence z.
	eng.SetPhase(PhaseGossip)
	keys := make(map[int]float64, f.NumTrees())
	for r, sc := range covsum {
		keys[r] = largestKey(int(sc.Count), r)
	}
	kres, err := gossip.Max(eng, f, rootTo, keys, opts.Gossip)
	if err != nil {
		return nil, err
	}
	// In the protocol each root compares the winning key against its own
	// to decide whether it is z. The winner's own estimate is always >=
	// its own key, so the maximum estimate is exactly the true winning
	// key.
	maxKey := math.Inf(-1)
	for _, v := range kres.Estimates {
		if v > maxKey {
			maxKey = v
		}
	}
	z, err := electRoot(eng, f, maxKey, keys)
	if err != nil {
		return nil, err
	}

	// Phase III(b): Gossip-ave; the guarantee (Theorem 7) holds at z.
	// Sum and Count run with reliable (acknowledged) shares: their
	// distinguished-root denominator is a single unit of mass whose loss
	// cannot be averaged away, unlike the Ave ratio where losses cancel.
	ares, err := gossip.Ave(eng, f, rootTo, buildInit(mode, covsum, z),
		gossip.AveOptions{
			Rounds:         opts.AveRounds,
			TrackRoot:      -1,
			ReliableShares: mode != pushAve,
		})
	if err != nil {
		return nil, err
	}

	// Phase III(c): Data-spread of z's estimate to all roots. Under
	// mid-run crashes z's estimate can be NaN (or z freshly dead); the
	// spread then carries the best surviving estimate instead.
	value := bestEffortValue(eng, f, ares.Estimates[z], ares.Estimates)
	sres, err := gossip.Spread(eng, f, rootTo, z, value, opts.Gossip)
	if err != nil {
		return nil, err
	}
	ph.Gossip = addCounters(addCounters(kres.Stats, ares.Stats), sres.Stats)

	// Final dissemination down the trees.
	eng.SetPhase(PhaseBroadcast)
	perNode, c3, err := convergecast.BroadcastValue(eng, f, sres.Estimates, opts.Convergecast)
	if err != nil {
		return nil, err
	}
	ph.Broadcast = c3
	return finish(eng, f, value, perNode, ph), nil
}

func finish(eng *sim.Engine, f *forest.Forest, value float64, perNode []float64, ph PhaseStats) *Result {
	// Consensus ranges over the nodes still alive at the end of the run:
	// a node that crashed mid-protocol no longer holds (or needs) the
	// answer. In the static model every member is alive, so this is the
	// original all-members check.
	consensus := true
	for i, v := range perNode {
		if !f.Member(i) || !eng.Alive(i) {
			continue
		}
		if v != value || math.IsNaN(v) {
			consensus = false
			break
		}
	}
	return &Result{
		Value:     value,
		PerNode:   perNode,
		Consensus: consensus,
		Forest:    f,
		Phases:    ph,
		Stats:     ph.Total(),
	}
}

func addCounters(a, b sim.Counters) sim.Counters {
	return sim.Counters{
		Rounds:   a.Rounds + b.Rounds,
		Messages: a.Messages + b.Messages,
		Drops:    a.Drops + b.Drops,
		Calls:    a.Calls + b.Calls,
	}
}
