package drrgossip

import (
	"math"
	"testing"

	"drrgossip/internal/agg"
	"drrgossip/internal/sim"
)

// exactMoments computes the reference population mean and variance.
func exactMoments(values []float64) (mean, variance float64) {
	mean = agg.Exact(agg.Average, values, 0)
	s2 := 0.0
	for _, v := range values {
		s2 += v * v
	}
	return mean, s2/float64(len(values)) - mean*mean
}

func TestMomentsEndToEnd(t *testing.T) {
	n := 2048
	eng := sim.NewEngine(n, sim.Options{Seed: 141})
	values := agg.GenUniform(n, 0, 100, 1)
	res, err := Moments(eng, values, Options{})
	if err != nil {
		t.Fatal(err)
	}
	wantMean, wantVar := exactMoments(values)
	if agg.RelError(res.Mean, wantMean) > 1e-6 {
		t.Fatalf("Mean = %v, want %v", res.Mean, wantMean)
	}
	if agg.RelError(res.Variance, wantVar) > 1e-6 {
		t.Fatalf("Variance = %v, want %v", res.Variance, wantVar)
	}
	if math.Abs(res.Std-math.Sqrt(wantVar)) > 1e-3 {
		t.Fatalf("Std = %v", res.Std)
	}
	if !res.Consensus {
		t.Fatal("no consensus")
	}
}

func TestMomentsConstantValues(t *testing.T) {
	n := 512
	eng := sim.NewEngine(n, sim.Options{Seed: 142})
	values := make([]float64, n)
	for i := range values {
		values[i] = 7.5
	}
	res, err := Moments(eng, values, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if agg.RelError(res.Mean, 7.5) > 1e-9 {
		t.Fatalf("Mean = %v", res.Mean)
	}
	// Variance of constants is 0; allow tiny float cancellation noise.
	if math.Abs(res.Variance) > 1e-6 {
		t.Fatalf("Variance = %v, want 0", res.Variance)
	}
}

func TestMomentsUnderLossAndCrashes(t *testing.T) {
	n := 2048
	eng := sim.NewEngine(n, sim.Options{Seed: 143, Loss: 0.05, CrashFrac: 0.1})
	values := agg.GenUniform(n, 0, 50, 2)
	res, err := Moments(eng, values, Options{})
	if err != nil {
		t.Fatal(err)
	}
	alive := agg.Subset(values, eng.AliveIDs())
	wantMean, wantVar := exactMoments(alive)
	if agg.RelError(res.Mean, wantMean) > 0.05 {
		t.Fatalf("Mean = %v, want %v", res.Mean, wantMean)
	}
	if agg.RelError(res.Variance, wantVar) > 0.1 {
		t.Fatalf("Variance = %v, want %v", res.Variance, wantVar)
	}
	if !res.Consensus {
		t.Fatal("no consensus")
	}
	for i, v := range res.PerNodeMean {
		if !res.Consensus {
			break
		}
		if eng.Alive(i) && v != res.Mean {
			t.Fatalf("node %d mean %v != consensus %v", i, v, res.Mean)
		}
	}
}

func TestMomentsSignedValues(t *testing.T) {
	n := 1024
	eng := sim.NewEngine(n, sim.Options{Seed: 144})
	values := agg.GenSigned(n, 20, 3)
	res, err := Moments(eng, values, Options{})
	if err != nil {
		t.Fatal(err)
	}
	wantMean, wantVar := exactMoments(values)
	if math.Abs(res.Mean-wantMean) > 1e-6 {
		t.Fatalf("Mean = %v, want %v", res.Mean, wantMean)
	}
	if agg.RelError(res.Variance, wantVar) > 1e-6 {
		t.Fatalf("Variance = %v, want %v", res.Variance, wantVar)
	}
}

func TestMomentsValidation(t *testing.T) {
	eng := sim.NewEngine(16, sim.Options{Seed: 145})
	if _, err := Moments(eng, make([]float64, 4), Options{}); err == nil {
		t.Fatal("length mismatch accepted")
	}
}

func TestMomentsCostProfile(t *testing.T) {
	// Moments must not cost asymptotically more than Ave: same phases
	// plus one extra spread.
	n := 4096
	values := agg.GenUniform(n, 0, 1, 4)
	mres, err := Moments(sim.NewEngine(n, sim.Options{Seed: 146}), values, Options{})
	if err != nil {
		t.Fatal(err)
	}
	ares, err := Ave(sim.NewEngine(n, sim.Options{Seed: 146}), values, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if mres.Stats.Messages > 2*ares.Stats.Messages {
		t.Fatalf("Moments cost %d messages vs Ave %d", mres.Stats.Messages, ares.Stats.Messages)
	}
}

func BenchmarkMoments(b *testing.B) {
	n := 4096
	values := agg.GenUniform(n, 0, 1, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Moments(sim.NewEngine(n, sim.Options{Seed: uint64(i)}), values, Options{}); err != nil {
			b.Fatal(err)
		}
	}
}
