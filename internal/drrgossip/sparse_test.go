package drrgossip

import (
	"math"
	"testing"

	"drrgossip/internal/agg"
	"drrgossip/internal/chord"
	"drrgossip/internal/sim"
)

func evenRing(t testing.TB, n int) *chord.Ring {
	t.Helper()
	r, err := chord.New(n, chord.Options{Bits: 30})
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestMaxOnChordEndToEnd(t *testing.T) {
	n := 1024
	ring := evenRing(t, n)
	eng := sim.NewEngine(n, sim.Options{Seed: 61})
	values := agg.GenUniform(n, 0, 1000, 1)
	res, err := MaxOnChord(eng, ring, values, SparseOptions{})
	if err != nil {
		t.Fatal(err)
	}
	want := agg.Exact(agg.Max, values, 0)
	if res.Value != want || !res.Consensus {
		t.Fatalf("Max = %v (consensus %v), want %v", res.Value, res.Consensus, want)
	}
}

func TestMaxOnChordHashedPlacement(t *testing.T) {
	n := 512
	ring, err := chord.New(n, chord.Options{Bits: 30, Placement: chord.Hashed, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	eng := sim.NewEngine(n, sim.Options{Seed: 62})
	values := agg.GenUniform(n, 0, 100, 2)
	res, err := MaxOnChord(eng, ring, values, SparseOptions{})
	if err != nil {
		t.Fatal(err)
	}
	want := agg.Exact(agg.Max, values, 0)
	if res.Value != want || !res.Consensus {
		t.Fatalf("Max = %v (consensus %v), want %v", res.Value, res.Consensus, want)
	}
}

func TestAveOnChordEndToEnd(t *testing.T) {
	n := 1024
	ring := evenRing(t, n)
	eng := sim.NewEngine(n, sim.Options{Seed: 63})
	values := agg.GenUniform(n, 0, 100, 3)
	res, err := AveOnChord(eng, ring, values, SparseOptions{})
	if err != nil {
		t.Fatal(err)
	}
	want := agg.Exact(agg.Average, values, 0)
	if e := agg.RelError(res.Value, want); e > 1e-5 {
		t.Fatalf("Ave = %v, want %v (rel err %v)", res.Value, want, e)
	}
	if !res.Consensus {
		t.Fatal("no consensus")
	}
}

func TestChordComplexityTheorem14(t *testing.T) {
	// Time O(log^2 n), messages O(n log n): both should hold with modest
	// constants.
	n := 1024
	ring := evenRing(t, n)
	eng := sim.NewEngine(n, sim.Options{Seed: 64})
	values := agg.GenUniform(n, 0, 1, 4)
	res, err := MaxOnChord(eng, ring, values, SparseOptions{})
	if err != nil {
		t.Fatal(err)
	}
	logn := math.Log2(float64(n))
	if got := float64(res.Stats.Rounds); got > 30*logn*logn {
		t.Fatalf("rounds %v exceed 30 log^2 n = %v", got, 30*logn*logn)
	}
	if got := float64(res.Stats.Messages); got > 40*float64(n)*logn {
		t.Fatalf("messages %v exceed 40 n log n = %v", got, 40*float64(n)*logn)
	}
}

func TestChordUnderLoss(t *testing.T) {
	n := 512
	ring := evenRing(t, n)
	eng := sim.NewEngine(n, sim.Options{Seed: 65, Loss: 0.05})
	values := agg.GenUniform(n, 0, 1000, 5)
	res, err := MaxOnChord(eng, ring, values, SparseOptions{})
	if err != nil {
		t.Fatal(err)
	}
	want := agg.Exact(agg.Max, values, 0)
	if res.Value != want {
		t.Fatalf("Max = %v, want %v under loss", res.Value, want)
	}
}

func TestChordRejectsCrashes(t *testing.T) {
	n := 256
	ring := evenRing(t, n)
	eng := sim.NewEngine(n, sim.Options{Seed: 66, CrashFrac: 0.2})
	values := agg.GenUniform(n, 0, 1, 6)
	if _, err := MaxOnChord(eng, ring, values, SparseOptions{}); err != ErrCrashedChord {
		t.Fatalf("crashed chord accepted: %v", err)
	}
}

func TestChordSizeMismatch(t *testing.T) {
	ring := evenRing(t, 128)
	eng := sim.NewEngine(64, sim.Options{Seed: 67})
	if _, err := MaxOnChord(eng, ring, make([]float64, 64), SparseOptions{}); err == nil {
		t.Fatal("ring/engine size mismatch accepted")
	}
}

func TestClimbPath(t *testing.T) {
	n := 256
	ring := evenRing(t, n)
	eng := sim.NewEngine(n, sim.Options{Seed: 68})
	values := agg.GenUniform(n, 0, 1, 7)
	res, err := MaxOnChord(eng, ring, values, SparseOptions{})
	if err != nil {
		t.Fatal(err)
	}
	f := res.Forest
	for i := 0; i < n; i++ {
		p := climbPath(f, i)
		if f.IsRoot(i) {
			if len(p) != 0 {
				t.Fatalf("root %d has climb path %v", i, p)
			}
			continue
		}
		if len(p) != f.Depth(i) {
			t.Fatalf("node %d climb length %d, depth %d", i, len(p), f.Depth(i))
		}
		if p[len(p)-1] != f.RootOf(i) {
			t.Fatalf("node %d climb ends at %d, root %d", i, p[len(p)-1], f.RootOf(i))
		}
	}
}

func BenchmarkMaxOnChord(b *testing.B) {
	n := 1024
	ring := evenRing(b, n)
	values := agg.GenUniform(n, 0, 1, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng := sim.NewEngine(n, sim.Options{Seed: uint64(i)})
		if _, err := MaxOnChord(eng, ring, values, SparseOptions{}); err != nil {
			b.Fatal(err)
		}
	}
}
