package drrgossip

import (
	"math"
	"testing"

	"drrgossip/internal/agg"
	"drrgossip/internal/chord"
	"drrgossip/internal/overlay"
	"drrgossip/internal/sim"
)

func evenRing(t testing.TB, n int) *chord.Ring {
	t.Helper()
	r, err := chord.New(n, chord.Options{Bits: 30})
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestMaxOnChordEndToEnd(t *testing.T) {
	n := 1024
	ring := evenRing(t, n)
	eng := sim.NewEngine(n, sim.Options{Seed: 61})
	values := agg.GenUniform(n, 0, 1000, 1)
	res, err := MaxOnChord(eng, ring, values, SparseOptions{})
	if err != nil {
		t.Fatal(err)
	}
	want := agg.Exact(agg.Max, values, 0)
	if res.Value != want || !res.Consensus {
		t.Fatalf("Max = %v (consensus %v), want %v", res.Value, res.Consensus, want)
	}
}

func TestMaxOnChordHashedPlacement(t *testing.T) {
	n := 512
	ring, err := chord.New(n, chord.Options{Bits: 30, Placement: chord.Hashed, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	eng := sim.NewEngine(n, sim.Options{Seed: 62})
	values := agg.GenUniform(n, 0, 100, 2)
	res, err := MaxOnChord(eng, ring, values, SparseOptions{})
	if err != nil {
		t.Fatal(err)
	}
	want := agg.Exact(agg.Max, values, 0)
	if res.Value != want || !res.Consensus {
		t.Fatalf("Max = %v (consensus %v), want %v", res.Value, res.Consensus, want)
	}
}

func TestAveOnChordEndToEnd(t *testing.T) {
	n := 1024
	ring := evenRing(t, n)
	eng := sim.NewEngine(n, sim.Options{Seed: 63})
	values := agg.GenUniform(n, 0, 100, 3)
	res, err := AveOnChord(eng, ring, values, SparseOptions{})
	if err != nil {
		t.Fatal(err)
	}
	want := agg.Exact(agg.Average, values, 0)
	if e := agg.RelError(res.Value, want); e > 1e-5 {
		t.Fatalf("Ave = %v, want %v (rel err %v)", res.Value, want, e)
	}
	if !res.Consensus {
		t.Fatal("no consensus")
	}
}

func TestChordComplexityTheorem14(t *testing.T) {
	// Time O(log^2 n), messages O(n log n): both should hold with modest
	// constants.
	n := 1024
	ring := evenRing(t, n)
	eng := sim.NewEngine(n, sim.Options{Seed: 64})
	values := agg.GenUniform(n, 0, 1, 4)
	res, err := MaxOnChord(eng, ring, values, SparseOptions{})
	if err != nil {
		t.Fatal(err)
	}
	logn := math.Log2(float64(n))
	if got := float64(res.Stats.Rounds); got > 30*logn*logn {
		t.Fatalf("rounds %v exceed 30 log^2 n = %v", got, 30*logn*logn)
	}
	if got := float64(res.Stats.Messages); got > 40*float64(n)*logn {
		t.Fatalf("messages %v exceed 40 n log n = %v", got, 40*float64(n)*logn)
	}
}

func TestChordUnderLoss(t *testing.T) {
	n := 512
	ring := evenRing(t, n)
	eng := sim.NewEngine(n, sim.Options{Seed: 65, Loss: 0.05})
	values := agg.GenUniform(n, 0, 1000, 5)
	res, err := MaxOnChord(eng, ring, values, SparseOptions{})
	if err != nil {
		t.Fatal(err)
	}
	want := agg.Exact(agg.Max, values, 0)
	if res.Value != want {
		t.Fatalf("Max = %v, want %v under loss", res.Value, want)
	}
}

func TestChordRejectsCrashes(t *testing.T) {
	n := 256
	ring := evenRing(t, n)
	eng := sim.NewEngine(n, sim.Options{Seed: 66, CrashFrac: 0.2})
	values := agg.GenUniform(n, 0, 1, 6)
	if _, err := MaxOnChord(eng, ring, values, SparseOptions{}); err != ErrCrashedChord {
		t.Fatalf("crashed chord accepted: %v", err)
	}
}

func TestChordSizeMismatch(t *testing.T) {
	ring := evenRing(t, 128)
	eng := sim.NewEngine(64, sim.Options{Seed: 67})
	if _, err := MaxOnChord(eng, ring, make([]float64, 64), SparseOptions{}); err == nil {
		t.Fatal("ring/engine size mismatch accepted")
	}
}

func TestClimbPath(t *testing.T) {
	n := 256
	ring := evenRing(t, n)
	eng := sim.NewEngine(n, sim.Options{Seed: 68})
	values := agg.GenUniform(n, 0, 1, 7)
	res, err := MaxOnChord(eng, ring, values, SparseOptions{})
	if err != nil {
		t.Fatal(err)
	}
	f := res.Forest
	for i := 0; i < n; i++ {
		p := climbPath(f, i)
		if f.IsRoot(i) {
			if len(p) != 0 {
				t.Fatalf("root %d has climb path %v", i, p)
			}
			continue
		}
		if len(p) != f.Depth(i) {
			t.Fatalf("node %d climb length %d, depth %d", i, len(p), f.Depth(i))
		}
		if p[len(p)-1] != f.RootOf(i) {
			t.Fatalf("node %d climb ends at %d, root %d", i, p[len(p)-1], f.RootOf(i))
		}
	}
}

func BenchmarkMaxOnChord(b *testing.B) {
	n := 1024
	ring := evenRing(b, n)
	values := agg.GenUniform(n, 0, 1, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng := sim.NewEngine(n, sim.Options{Seed: uint64(i)})
		if _, err := MaxOnChord(eng, ring, values, SparseOptions{}); err != nil {
			b.Fatal(err)
		}
	}
}

// testOverlays builds one overlay per registered sparse family sized for
// fast end-to-end runs.
func testOverlays(t testing.TB, n int, seed uint64) []overlay.Overlay {
	t.Helper()
	ovs := make([]overlay.Overlay, 0, 4)
	for _, spec := range []overlay.Spec{
		{Name: "chord"},
		{Name: "torus"},
		{Name: "regular", Param: 4},
		{Name: "hypercube"},
		{Name: "smallworld"},
	} {
		ov, err := overlay.Build(spec, n, seed)
		if err != nil {
			t.Fatalf("build %v: %v", spec, err)
		}
		ovs = append(ovs, ov)
	}
	return ovs
}

func TestSparsePipelineAcrossOverlays(t *testing.T) {
	n := 256
	values := agg.GenUniform(n, -500, 500, 9)
	wantMax := agg.Exact(agg.Max, values, 0)
	wantAve := agg.Exact(agg.Average, values, 0)
	wantSum := agg.Exact(agg.Sum, values, 0)
	for _, ov := range testOverlays(t, n, 3) {
		ov := ov
		t.Run(ov.Name(), func(t *testing.T) {
			mres, err := MaxSparse(sim.NewEngine(n, sim.Options{Seed: 101}), ov, values, SparseOptions{})
			if err != nil {
				t.Fatal(err)
			}
			if mres.Value != wantMax || !mres.Consensus {
				t.Fatalf("Max = %v (consensus %v), want %v", mres.Value, mres.Consensus, wantMax)
			}
			nres, err := MinSparse(sim.NewEngine(n, sim.Options{Seed: 102}), ov, values, SparseOptions{})
			if err != nil {
				t.Fatal(err)
			}
			if want := agg.Exact(agg.Min, values, 0); nres.Value != want || !nres.Consensus {
				t.Fatalf("Min = %v, want %v", nres.Value, want)
			}
			ares, err := AveSparse(sim.NewEngine(n, sim.Options{Seed: 103}), ov, values, SparseOptions{})
			if err != nil {
				t.Fatal(err)
			}
			if e := agg.RelError(ares.Value, wantAve); e > 1e-5 || !ares.Consensus {
				t.Fatalf("Ave = %v (rel err %v, consensus %v)", ares.Value, e, ares.Consensus)
			}
			sres, err := SumSparse(sim.NewEngine(n, sim.Options{Seed: 104}), ov, values, SparseOptions{})
			if err != nil {
				t.Fatal(err)
			}
			if e := agg.RelError(sres.Value, wantSum); e > 1e-5 || !sres.Consensus {
				t.Fatalf("Sum = %v (rel err %v, consensus %v)", sres.Value, e, sres.Consensus)
			}
			cres, err := CountSparse(sim.NewEngine(n, sim.Options{Seed: 105}), ov, values, SparseOptions{})
			if err != nil {
				t.Fatal(err)
			}
			if e := agg.RelError(cres.Value, float64(n)); e > 1e-5 || !cres.Consensus {
				t.Fatalf("Count = %v (rel err %v)", cres.Value, e)
			}
		})
	}
}

func TestRankSparse(t *testing.T) {
	n := 256
	ov, err := overlay.Build(overlay.Spec{Name: "torus"}, n, 5)
	if err != nil {
		t.Fatal(err)
	}
	values := agg.GenUniform(n, 0, 1000, 10)
	q := 400.0
	res, err := RankSparse(sim.NewEngine(n, sim.Options{Seed: 106}), ov, values, q, SparseOptions{})
	if err != nil {
		t.Fatal(err)
	}
	want := agg.Exact(agg.Rank, values, q)
	if agg.RelError(res.Value, want) > 1e-6 {
		t.Fatalf("Rank = %v, want %v", res.Value, want)
	}
}

func TestSumSparseUnderLoss(t *testing.T) {
	// Reliable routed shares must keep the distinguished-root Sum
	// accurate even with per-message loss.
	n := 256
	ov, err := overlay.Build(overlay.Spec{Name: "hypercube"}, n, 0)
	if err != nil {
		t.Fatal(err)
	}
	values := agg.GenUniform(n, 0, 100, 11)
	res, err := SumSparse(sim.NewEngine(n, sim.Options{Seed: 107, Loss: 0.05}), ov, values, SparseOptions{})
	if err != nil {
		t.Fatal(err)
	}
	want := agg.Exact(agg.Sum, values, 0)
	if e := agg.RelError(res.Value, want); e > 1e-3 {
		t.Fatalf("lossy Sum = %v, want %v (rel err %v)", res.Value, want, e)
	}
}

func TestSparseRejectsCrashedEngine(t *testing.T) {
	n := 128
	ov, err := overlay.Build(overlay.Spec{Name: "hypercube"}, n, 0)
	if err != nil {
		t.Fatal(err)
	}
	eng := sim.NewEngine(n, sim.Options{Seed: 108, CrashFrac: 0.2})
	if _, err := MaxSparse(eng, ov, make([]float64, n), SparseOptions{}); err != ErrCrashedOverlay {
		t.Fatalf("crashed engine accepted: %v", err)
	}
}

func TestSparseSizeMismatchOverlay(t *testing.T) {
	ov, err := overlay.Build(overlay.Spec{Name: "torus"}, 144, 0)
	if err != nil {
		t.Fatal(err)
	}
	eng := sim.NewEngine(64, sim.Options{Seed: 109})
	if _, err := MaxSparse(eng, ov, make([]float64, 64), SparseOptions{}); err == nil {
		t.Fatal("overlay/engine size mismatch accepted")
	}
}
