// Sparse-network DRR-gossip (Section 4 / Theorem 14): Local-DRR builds the
// forest over the overlay's links, convergecast and broadcast run on tree
// edges (which are graph edges), and Phase III gossips between roots via
// the overlay's routing protocol — on Chord, T = O(log n) rounds and
// M = O(log n) messages per random-node sample, giving O(log^2 n) time and
// O(n log n) messages overall, against O(log^2 n) time and O(n log^2 n)
// messages for uniform gossip (see internal/kempe).
package drrgossip

import (
	"errors"
	"fmt"
	"math"

	"drrgossip/internal/chord"
	"drrgossip/internal/convergecast"
	"drrgossip/internal/forest"
	"drrgossip/internal/localdrr"
	"drrgossip/internal/sim"
)

// SparseOptions tune the Chord pipelines; zero values pick defaults.
type SparseOptions struct {
	LocalDRR     localdrr.Options
	Convergecast convergecast.Options
	GossipIters  int // gossip-procedure iterations (0 = 2 log n + 12)
	SampleIters  int // sampling-procedure iterations (0 = log n + 8)
	AveIters     int // push-sum iterations (0 = 4 log n + 24)
}

// ErrCrashedChord is returned when the engine has crashed nodes: Chord
// routing repair (successor-list maintenance under churn) is outside this
// reproduction's scope, matching the paper, which analyses sparse
// topologies without the crash model.
var ErrCrashedChord = errors.New("drrgossip: chord pipelines require all nodes alive")

const (
	kindSparseVal   uint8 = 0x41
	kindSparseInq   uint8 = 0x42
	kindSparseReply uint8 = 0x43
	kindSparseShare uint8 = 0x44
)

// climbPath returns the tree path from node j up to its root (excluding
// j itself); empty when j is a root.
func climbPath(f *forest.Forest, j int) []int {
	var path []int
	for cur := j; !f.IsRoot(cur); {
		cur = f.Parent(cur)
		path = append(path, cur)
	}
	return path
}

// shipToRandomRoot routes a payload from root r to the root of a
// near-uniform random node: Chord-route to the sampled node, then climb
// its ranking tree. Returns false when the sample landed on r itself.
func shipToRandomRoot(eng *sim.Engine, ring *chord.Ring, f *forest.Forest, r int, pay sim.Payload) bool {
	j, path, totalHops := ring.Sample(eng.RNG(r), r)
	if extra := totalHops - len(path); extra > 0 {
		eng.Charge(int64(extra)) // rejected routing attempts are traffic too
	}
	full := append(append([]int(nil), path...), climbPath(f, j)...)
	if len(full) == 0 {
		return false // sampled own root; nothing to transmit
	}
	eng.SendRouted(r, full, pay)
	return true
}

// drainTicks advances the engine `ticks` rounds, invoking scan on every
// root's inbox after each round (routed messages arrive at staggered
// times).
func drainTicks(eng *sim.Engine, roots []int, ticks int, scan func(r int, m sim.Message)) {
	for k := 0; k < ticks; k++ {
		eng.Tick()
		for _, r := range roots {
			for _, m := range eng.Inbox(r) {
				scan(r, m)
			}
		}
	}
}

// ticksPerIteration bounds the rounds a routed gossip exchange needs:
// a Chord route (<= ~2 log n hops) plus a tree climb (<= max height).
func ticksPerIteration(eng *sim.Engine, f *forest.Forest) int {
	logn := int(math.Ceil(math.Log2(float64(eng.N()))))
	return 2*logn + f.MaxHeight() + 2
}

func (o SparseOptions) gossipIters(n int) int {
	if o.GossipIters != 0 {
		return o.GossipIters
	}
	return 2*int(math.Ceil(math.Log2(float64(n)))) + 12
}

func (o SparseOptions) sampleIters(n int) int {
	if o.SampleIters != 0 {
		return o.SampleIters
	}
	return int(math.Ceil(math.Log2(float64(n)))) + 8
}

func (o SparseOptions) aveIters(n int) int {
	if o.AveIters != 0 {
		return o.AveIters
	}
	return 4*int(math.Ceil(math.Log2(float64(n)))) + 24
}

// sparsePhase12 runs Local-DRR and Phase II over the Chord overlay.
func sparsePhase12(eng *sim.Engine, ring *chord.Ring, opts SparseOptions) (*forest.Forest, []int, *PhaseStats, error) {
	if eng.NumAlive() != eng.N() {
		return nil, nil, nil, ErrCrashedChord
	}
	if ring.N() != eng.N() {
		return nil, nil, nil, fmt.Errorf("drrgossip: ring has %d nodes, engine %d", ring.N(), eng.N())
	}
	var ph PhaseStats
	ldres, err := localdrr.Run(eng, ring.Graph(), opts.LocalDRR)
	if err != nil {
		return nil, nil, nil, err
	}
	ph.DRR = ldres.Stats
	rootTo, c, err := convergecast.BroadcastRootAddr(eng, ldres.Forest, opts.Convergecast)
	if err != nil {
		return nil, nil, nil, err
	}
	ph.Aggregate = c
	return ldres.Forest, rootTo, &ph, nil
}

// chordGossipMax runs the Gossip-max gossip+sampling procedures over
// routed Chord transport and returns per-root estimates.
func chordGossipMax(eng *sim.Engine, ring *chord.Ring, f *forest.Forest, init map[int]float64, opts SparseOptions) (map[int]float64, error) {
	roots := f.Roots()
	val := make(map[int]float64, len(roots))
	for _, r := range roots {
		v, ok := init[r]
		if !ok {
			return nil, fmt.Errorf("drrgossip: missing init for root %d", r)
		}
		val[r] = v
	}
	ticks := ticksPerIteration(eng, f)
	n := eng.N()

	for t := 0; t < opts.gossipIters(n); t++ {
		for _, r := range roots {
			shipToRandomRoot(eng, ring, f, r, sim.Payload{Kind: kindSparseVal, A: val[r]})
		}
		drainTicks(eng, roots, ticks, func(r int, m sim.Message) {
			if m.Pay.Kind == kindSparseVal && m.Pay.A > val[r] {
				val[r] = m.Pay.A
			}
		})
	}
	for t := 0; t < opts.sampleIters(n); t++ {
		var inquiries []sim.Message
		for _, r := range roots {
			shipToRandomRoot(eng, ring, f, r, sim.Payload{Kind: kindSparseInq, X: int64(r)})
		}
		drainTicks(eng, roots, ticks, func(r int, m sim.Message) {
			if m.Pay.Kind == kindSparseInq {
				inquiries = append(inquiries, sim.Message{From: int(m.Pay.X), To: r})
			}
		})
		for _, inq := range inquiries {
			responder, inquirer := inq.To, inq.From
			path := ring.RouteToNode(responder, inquirer)
			if len(path) == 0 {
				continue
			}
			eng.SendRouted(responder, path, sim.Payload{Kind: kindSparseReply, A: val[responder]})
		}
		drainTicks(eng, roots, ticks, func(r int, m sim.Message) {
			if m.Pay.Kind == kindSparseReply && m.Pay.A > val[r] {
				val[r] = m.Pay.A
			}
		})
	}
	return val, nil
}

// chordGossipAve runs push-sum over roots with routed transport.
func chordGossipAve(eng *sim.Engine, ring *chord.Ring, f *forest.Forest, init map[int]convergecast.SumCount, opts SparseOptions) (map[int]float64, error) {
	roots := f.Roots()
	s := make(map[int]float64, len(roots))
	g := make(map[int]float64, len(roots))
	for _, r := range roots {
		sc, ok := init[r]
		if !ok {
			return nil, fmt.Errorf("drrgossip: missing init for root %d", r)
		}
		s[r], g[r] = sc.Sum, sc.Count
	}
	ticks := ticksPerIteration(eng, f)
	for t := 0; t < opts.aveIters(eng.N()); t++ {
		for _, r := range roots {
			halfS, halfG := s[r]/2, g[r]/2
			pay := sim.Payload{Kind: kindSparseShare, A: halfS, B: halfG}
			// Commit the halving only if the share actually leaves
			// (sampling one's own root keeps the mass in place).
			sBefore, gBefore := s[r], g[r]
			s[r], g[r] = halfS, halfG
			if !shipToRandomRoot(eng, ring, f, r, pay) {
				s[r], g[r] = sBefore, gBefore
			}
		}
		drainTicks(eng, roots, ticks, func(r int, m sim.Message) {
			if m.Pay.Kind == kindSparseShare {
				s[r] += m.Pay.A
				g[r] += m.Pay.B
			}
		})
	}
	est := make(map[int]float64, len(roots))
	for _, r := range roots {
		if g[r] != 0 {
			est[r] = s[r] / g[r]
		} else {
			est[r] = math.NaN()
		}
	}
	return est, nil
}

// MaxOnChord runs DRR-gossip-max over a Chord overlay (Theorem 14).
func MaxOnChord(eng *sim.Engine, ring *chord.Ring, values []float64, opts SparseOptions) (*Result, error) {
	if len(values) != eng.N() {
		return nil, fmt.Errorf("drrgossip: %d values for %d nodes", len(values), eng.N())
	}
	f, _, ph, err := sparsePhase12(eng, ring, opts)
	if err != nil {
		return nil, err
	}
	covmax, c, err := convergecast.Max(eng, f, values, opts.Convergecast)
	if err != nil {
		return nil, err
	}
	ph.Aggregate = addCounters(ph.Aggregate, c)

	before := eng.Stats()
	est, err := chordGossipMax(eng, ring, f, covmax, opts)
	if err != nil {
		return nil, err
	}
	ph.Gossip = eng.Stats().Sub(before)

	perNode, c3, err := convergecast.BroadcastValue(eng, f, est, opts.Convergecast)
	if err != nil {
		return nil, err
	}
	ph.Broadcast = c3
	return finish(eng, f, perNode[f.LargestRoot()], perNode, *ph), nil
}

// AveOnChord runs DRR-gossip-ave over a Chord overlay: Gossip-max on tree
// sizes elects the largest root, push-sum converges there, Data-spread
// distributes the answer, and the trees broadcast it to every node.
func AveOnChord(eng *sim.Engine, ring *chord.Ring, values []float64, opts SparseOptions) (*Result, error) {
	if len(values) != eng.N() {
		return nil, fmt.Errorf("drrgossip: %d values for %d nodes", len(values), eng.N())
	}
	f, _, ph, err := sparsePhase12(eng, ring, opts)
	if err != nil {
		return nil, err
	}
	covsum, c, err := convergecast.Sum(eng, f, values, opts.Convergecast)
	if err != nil {
		return nil, err
	}
	ph.Aggregate = addCounters(ph.Aggregate, c)

	before := eng.Stats()
	keys := make(map[int]float64, f.NumTrees())
	for r, sc := range covsum {
		keys[r] = largestKey(int(sc.Count), r)
	}
	kest, err := chordGossipMax(eng, ring, f, keys, opts)
	if err != nil {
		return nil, err
	}
	maxKey := math.Inf(-1)
	for _, v := range kest {
		if v > maxKey {
			maxKey = v
		}
	}
	z := decodeKeyRoot(maxKey)
	if !f.IsRoot(z) {
		return nil, fmt.Errorf("drrgossip: elected node %d is not a root", z)
	}

	est, err := chordGossipAve(eng, ring, f, buildInit(pushAve, covsum, z), opts)
	if err != nil {
		return nil, err
	}

	spreadInit := make(map[int]float64, f.NumTrees())
	for _, r := range f.Roots() {
		spreadInit[r] = math.Inf(-1)
	}
	spreadInit[z] = est[z]
	sest, err := chordGossipMax(eng, ring, f, spreadInit, opts)
	if err != nil {
		return nil, err
	}
	ph.Gossip = eng.Stats().Sub(before)

	perNode, c3, err := convergecast.BroadcastValue(eng, f, sest, opts.Convergecast)
	if err != nil {
		return nil, err
	}
	ph.Broadcast = c3
	return finish(eng, f, est[z], perNode, *ph), nil
}
