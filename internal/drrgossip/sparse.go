// Sparse-network DRR-gossip (Section 4 / Theorems 13-14): Local-DRR
// builds the forest over the overlay's links, convergecast and broadcast
// run on tree edges (which are graph edges), and Phase III gossips
// between roots via the overlay's routing protocol. The pipeline is
// generic over overlay.Overlay — Chord keeps its finger router and
// rejection sampler (T = O(log n) rounds, M = O(log n) messages per
// random-node sample, giving O(log^2 n) time and O(n log n) messages
// overall, Theorem 14), while arbitrary connected graphs route through
// the landmark tree of internal/overlay with per-sample cost bounded by
// twice the tree depth. Theorem 13 bounds the expected root count by the
// harmonic degree sum Σ 1/(d_i+1) on any graph.
package drrgossip

import (
	"errors"
	"fmt"
	"math"

	"drrgossip/internal/agg"
	"drrgossip/internal/chord"
	"drrgossip/internal/convergecast"
	"drrgossip/internal/forest"
	"drrgossip/internal/gossip"
	"drrgossip/internal/localdrr"
	"drrgossip/internal/overlay"
	"drrgossip/internal/sim"
)

// SparseOptions tune the sparse pipelines; zero values pick defaults.
type SparseOptions struct {
	LocalDRR     localdrr.Options
	Convergecast convergecast.Options
	GossipIters  int // gossip-procedure iterations (0 = 2 log n + 12)
	SampleIters  int // sampling-procedure iterations (0 = log n + 8)
	AveIters     int // push-sum iterations (0 = 4 log n + 24)
}

// ErrCrashedOverlay is returned when the engine has crashed nodes:
// overlay routing repair (e.g. Chord successor-list maintenance under
// churn) is outside this reproduction's scope, matching the paper, which
// analyses sparse topologies without the crash model.
var ErrCrashedOverlay = errors.New("drrgossip: sparse pipelines require all nodes alive")

// ErrCrashedChord is the historical name of ErrCrashedOverlay.
var ErrCrashedChord = ErrCrashedOverlay

const (
	kindSparseVal   uint8 = 0x41
	kindSparseInq   uint8 = 0x42
	kindSparseReply uint8 = 0x43
	kindSparseShare uint8 = 0x44
)

// climbPath returns the tree path from node j up to its root (excluding
// j itself); empty when j is a root.
func climbPath(f *forest.Forest, j int) []int {
	var path []int
	for cur := j; !f.IsRoot(cur); {
		cur = f.Parent(cur)
		path = append(path, cur)
	}
	return path
}

// sampleRootPath draws a near-uniform random node as seen from root r
// and returns the hop path to that node's root: overlay-route to the
// sampled node, then climb its ranking tree. The routing cost of
// rejected sampling attempts is charged to the engine. An empty path
// means the sample landed on r itself — or, under dynamic membership,
// on a node that has crashed out of the forest: the route is still paid
// for, but there is no tree to climb and callers keep their mass.
func sampleRootPath(eng *sim.Engine, ov overlay.Overlay, f *forest.Forest, r int) []int {
	j, path, totalHops := ov.Sample(eng.RNG(r), r)
	if extra := totalHops - len(path); extra > 0 {
		eng.Charge(int64(extra)) // rejected routing attempts are traffic too
	}
	if !f.Member(j) {
		eng.Charge(int64(len(path))) // the route to the dead end is traffic too
		return nil
	}
	return append(append([]int(nil), path...), climbPath(f, j)...)
}

// shipToRandomRoot routes a payload from root r to the root of a
// near-uniform random node. Returns false when the sample landed on r
// itself.
func shipToRandomRoot(eng *sim.Engine, ov overlay.Overlay, f *forest.Forest, r int, pay sim.Payload) bool {
	full := sampleRootPath(eng, ov, f, r)
	if len(full) == 0 {
		return false // sampled own root; nothing to transmit
	}
	eng.SendRouted(r, full, pay)
	return true
}

// drainTicks advances the engine `ticks` rounds, invoking scan on every
// root's inbox after each round (routed messages arrive at staggered
// times).
func drainTicks(eng *sim.Engine, roots []int, ticks int, scan func(r int, m sim.Message)) {
	for k := 0; k < ticks; k++ {
		eng.Tick()
		for _, r := range roots {
			for _, m := range eng.Inbox(r) {
				scan(r, m)
			}
		}
	}
}

// ticksPerIteration bounds the rounds a routed gossip exchange needs:
// an overlay route (<= RouteBound hops) plus a tree climb (<= max
// height).
func ticksPerIteration(ov overlay.Overlay, f *forest.Forest) int {
	return ov.RouteBound() + f.MaxHeight() + 2
}

func (o SparseOptions) gossipIters(n int) int {
	if o.GossipIters != 0 {
		return o.GossipIters
	}
	return 2*int(math.Ceil(math.Log2(float64(n)))) + 12
}

func (o SparseOptions) sampleIters(n int) int {
	if o.SampleIters != 0 {
		return o.SampleIters
	}
	return int(math.Ceil(math.Log2(float64(n)))) + 8
}

func (o SparseOptions) aveIters(n int) int {
	if o.AveIters != 0 {
		return o.AveIters
	}
	return 4*int(math.Ceil(math.Log2(float64(n)))) + 24
}

// sparsePhase12 runs Local-DRR and Phase II over the overlay.
func sparsePhase12(eng *sim.Engine, ov overlay.Overlay, opts SparseOptions) (*forest.Forest, []int, *PhaseStats, error) {
	if eng.NumAlive() != eng.N() {
		return nil, nil, nil, ErrCrashedOverlay
	}
	if ov.Graph().N() != eng.N() {
		return nil, nil, nil, fmt.Errorf("drrgossip: overlay %s has %d nodes, engine %d", ov.Name(), ov.Graph().N(), eng.N())
	}
	var ph PhaseStats
	eng.SetPhase(PhaseDRR)
	ldres, err := localdrr.Run(eng, ov.Graph(), opts.LocalDRR)
	if err != nil {
		return nil, nil, nil, err
	}
	ph.DRR = ldres.Stats
	eng.SetPhase(PhaseAggregate)
	rootTo, c, err := convergecast.BroadcastRootAddr(eng, ldres.Forest, opts.Convergecast)
	if err != nil {
		return nil, nil, nil, err
	}
	ph.Aggregate = c
	return ldres.Forest, rootTo, &ph, nil
}

// sparseGossipMax runs the Gossip-max gossip+sampling procedures over
// routed overlay transport and returns per-root estimates.
func sparseGossipMax(eng *sim.Engine, ov overlay.Overlay, f *forest.Forest, init map[int]float64, opts SparseOptions) (map[int]float64, error) {
	roots := f.Roots()
	val := make(map[int]float64, len(roots))
	for _, r := range roots {
		v, ok := init[r]
		if !ok {
			return nil, fmt.Errorf("drrgossip: missing init for root %d", r)
		}
		val[r] = v
	}
	ticks := ticksPerIteration(ov, f)
	n := eng.N()

	for t := 0; t < opts.gossipIters(n); t++ {
		for _, r := range roots {
			if !eng.Alive(r) {
				continue // crashed roots place no calls
			}
			shipToRandomRoot(eng, ov, f, r, sim.Payload{Kind: kindSparseVal, A: val[r]})
		}
		drainTicks(eng, roots, ticks, func(r int, m sim.Message) {
			if m.Pay.Kind == kindSparseVal && m.Pay.A > val[r] {
				val[r] = m.Pay.A
			}
		})
	}
	for t := 0; t < opts.sampleIters(n); t++ {
		var inquiries []sim.Message
		for _, r := range roots {
			if !eng.Alive(r) {
				continue
			}
			shipToRandomRoot(eng, ov, f, r, sim.Payload{Kind: kindSparseInq, X: int64(r)})
		}
		drainTicks(eng, roots, ticks, func(r int, m sim.Message) {
			if m.Pay.Kind == kindSparseInq {
				inquiries = append(inquiries, sim.Message{From: int(m.Pay.X), To: r})
			}
		})
		for _, inq := range inquiries {
			responder, inquirer := inq.To, inq.From
			path := ov.Route(responder, inquirer)
			if len(path) == 0 {
				continue
			}
			eng.SendRouted(responder, path, sim.Payload{Kind: kindSparseReply, A: val[responder]})
		}
		drainTicks(eng, roots, ticks, func(r int, m sim.Message) {
			if m.Pay.Kind == kindSparseReply && m.Pay.A > val[r] {
				val[r] = m.Pay.A
			}
		})
	}
	return val, nil
}

// sparseGossipAve runs push-sum over roots with routed transport. With
// reliable set, shares travel with link-layer retransmission and are
// restored to the sender when undeliverable, so no push-sum mass is ever
// destroyed — required by the distinguished-root Sum/Count variants,
// whose denominator is a single unit of mass (see gossip.AveOptions).
func sparseGossipAve(eng *sim.Engine, ov overlay.Overlay, f *forest.Forest, init map[int]convergecast.SumCount, opts SparseOptions, reliable bool) (map[int]float64, error) {
	roots := f.Roots()
	s := make(map[int]float64, len(roots))
	g := make(map[int]float64, len(roots))
	for _, r := range roots {
		sc, ok := init[r]
		if !ok {
			return nil, fmt.Errorf("drrgossip: missing init for root %d", r)
		}
		s[r], g[r] = sc.Sum, sc.Count
	}
	ticks := ticksPerIteration(ov, f)
	// In reliable mode, shares are tracked until their delivery round:
	// if the destination root crashes while they are in flight, the
	// engine discards them and the sender's ack times out — the share is
	// restored, so mid-run crashes cannot bleed push-sum mass (a no-op
	// in the static model).
	type inflight struct {
		r, dst, due int
		s, g        float64
	}
	var pendingShares []inflight
	for t := 0; t < opts.aveIters(eng.N()); t++ {
		for _, r := range roots {
			if !eng.Alive(r) {
				continue // a crashed root's (s, g) mass freezes in place
			}
			full := sampleRootPath(eng, ov, f, r)
			if len(full) == 0 {
				continue // sampled own root (or a dead end); mass stays
			}
			halfS, halfG := s[r]/2, g[r]/2
			pay := sim.Payload{Kind: kindSparseShare, A: halfS, B: halfG}
			s[r], g[r] = halfS, halfG
			if reliable {
				if !eng.SendRoutedReliable(r, full, pay, 0) {
					s[r], g[r] = s[r]*2, g[r]*2 // undeliverable: restore
				} else {
					pendingShares = append(pendingShares, inflight{
						r: r, dst: full[len(full)-1],
						due: eng.Round() + len(full), s: halfS, g: halfG,
					})
				}
			} else {
				eng.SendRouted(r, full, pay)
			}
		}
		for k := 0; k < ticks; k++ {
			eng.Tick()
			if len(pendingShares) > 0 {
				kept := pendingShares[:0]
				for _, sh := range pendingShares {
					switch {
					case sh.due > eng.Round():
						kept = append(kept, sh) // still in flight
					case !eng.Alive(sh.dst):
						s[sh.r] += sh.s // ack timeout: restore
						g[sh.r] += sh.g
					}
				}
				pendingShares = kept
			}
			for _, r := range roots {
				for _, m := range eng.Inbox(r) {
					if m.Pay.Kind == kindSparseShare {
						s[r] += m.Pay.A
						g[r] += m.Pay.B
					}
				}
			}
			if eng.WantResidual() {
				eng.ReportResidual(gossip.EstimateSpread(roots, s, g))
			}
		}
	}
	est := make(map[int]float64, len(roots))
	for _, r := range roots {
		if g[r] != 0 {
			est[r] = s[r] / g[r]
		} else {
			est[r] = math.NaN()
		}
	}
	return est, nil
}

// MaxSparse runs DRR-gossip-max over any overlay (Theorem 14 pipeline).
func MaxSparse(eng *sim.Engine, ov overlay.Overlay, values []float64, opts SparseOptions) (*Result, error) {
	if len(values) != eng.N() {
		return nil, fmt.Errorf("drrgossip: %d values for %d nodes", len(values), eng.N())
	}
	f, _, ph, err := sparsePhase12(eng, ov, opts)
	if err != nil {
		return nil, err
	}
	covmax, c, err := convergecast.Max(eng, f, values, opts.Convergecast)
	if err != nil {
		return nil, err
	}
	ph.Aggregate = addCounters(ph.Aggregate, c)

	before := eng.Stats()
	eng.SetPhase(PhaseGossip)
	est, err := sparseGossipMax(eng, ov, f, covmax, opts)
	if err != nil {
		return nil, err
	}
	ph.Gossip = eng.Stats().Sub(before)

	eng.SetPhase(PhaseBroadcast)
	perNode, c3, err := convergecast.BroadcastValue(eng, f, est, opts.Convergecast)
	if err != nil {
		return nil, err
	}
	ph.Broadcast = c3
	value := bestEffortValue(eng, f, perNode[f.LargestRoot()], est)
	return finish(eng, f, value, perNode, *ph), nil
}

// MinSparse runs the Min variant (Gossip-max on negated values).
func MinSparse(eng *sim.Engine, ov overlay.Overlay, values []float64, opts SparseOptions) (*Result, error) {
	neg := make([]float64, len(values))
	for i, v := range values {
		neg[i] = -v
	}
	res, err := MaxSparse(eng, ov, neg, opts)
	if err != nil {
		return nil, err
	}
	res.Value = -res.Value
	for i := range res.PerNode {
		res.PerNode[i] = -res.PerNode[i]
	}
	return res, nil
}

// AveSparse runs DRR-gossip-ave over any overlay: Gossip-max on tree
// sizes elects the largest root, push-sum converges there, Data-spread
// distributes the answer, and the trees broadcast it to every node.
func AveSparse(eng *sim.Engine, ov overlay.Overlay, values []float64, opts SparseOptions) (*Result, error) {
	return avePipelineSparse(eng, ov, values, opts, pushAve)
}

// SumSparse computes the global sum over any overlay with the
// distinguished-root push-sum (reliable routed shares).
func SumSparse(eng *sim.Engine, ov overlay.Overlay, values []float64, opts SparseOptions) (*Result, error) {
	return avePipelineSparse(eng, ov, values, opts, pushSum)
}

// CountSparse computes the number of nodes over any overlay.
func CountSparse(eng *sim.Engine, ov overlay.Overlay, values []float64, opts SparseOptions) (*Result, error) {
	return avePipelineSparse(eng, ov, values, opts, pushCount)
}

// RankSparse computes Rank(q) = |{i : v_i <= q}| over any overlay by
// summing indicator values.
func RankSparse(eng *sim.Engine, ov overlay.Overlay, values []float64, q float64, opts SparseOptions) (*Result, error) {
	return SumSparse(eng, ov, agg.Indicator(values, q), opts)
}

func avePipelineSparse(eng *sim.Engine, ov overlay.Overlay, values []float64, opts SparseOptions, mode pushMode) (*Result, error) {
	if len(values) != eng.N() {
		return nil, fmt.Errorf("drrgossip: %d values for %d nodes", len(values), eng.N())
	}
	f, _, ph, err := sparsePhase12(eng, ov, opts)
	if err != nil {
		return nil, err
	}
	covsum, c, err := convergecast.Sum(eng, f, values, opts.Convergecast)
	if err != nil {
		return nil, err
	}
	ph.Aggregate = addCounters(ph.Aggregate, c)

	before := eng.Stats()
	eng.SetPhase(PhaseGossip)
	keys := make(map[int]float64, f.NumTrees())
	for r, sc := range covsum {
		keys[r] = largestKey(int(sc.Count), r)
	}
	kest, err := sparseGossipMax(eng, ov, f, keys, opts)
	if err != nil {
		return nil, err
	}
	maxKey := math.Inf(-1)
	for _, v := range kest {
		if v > maxKey {
			maxKey = v
		}
	}
	z, err := electRoot(eng, f, maxKey, keys)
	if err != nil {
		return nil, err
	}

	// Sum and Count ship their shares reliably: their distinguished-root
	// denominator is a single unit of mass whose loss cannot be averaged
	// away, unlike the Ave ratio where losses cancel.
	est, err := sparseGossipAve(eng, ov, f, buildInit(mode, covsum, z), opts, mode != pushAve)
	if err != nil {
		return nil, err
	}

	// Data-spread of z's estimate; under mid-run crashes fall back to the
	// best surviving estimate (see bestEffortValue).
	value := bestEffortValue(eng, f, est[z], est)
	spreadInit := make(map[int]float64, f.NumTrees())
	for _, r := range f.Roots() {
		spreadInit[r] = math.Inf(-1)
	}
	spreadInit[z] = value
	sest, err := sparseGossipMax(eng, ov, f, spreadInit, opts)
	if err != nil {
		return nil, err
	}
	ph.Gossip = eng.Stats().Sub(before)

	eng.SetPhase(PhaseBroadcast)
	perNode, c3, err := convergecast.BroadcastValue(eng, f, sest, opts.Convergecast)
	if err != nil {
		return nil, err
	}
	ph.Broadcast = c3
	return finish(eng, f, value, perNode, *ph), nil
}

// MaxOnChord runs DRR-gossip-max over a Chord overlay. It is the
// historical Chord-specific entry point, now a thin wrapper over
// MaxSparse.
func MaxOnChord(eng *sim.Engine, ring *chord.Ring, values []float64, opts SparseOptions) (*Result, error) {
	return MaxSparse(eng, overlay.NewChord(ring), values, opts)
}

// AveOnChord runs DRR-gossip-ave over a Chord overlay (wrapper over
// AveSparse).
func AveOnChord(eng *sim.Engine, ring *chord.Ring, values []float64, opts SparseOptions) (*Result, error) {
	return AveSparse(eng, overlay.NewChord(ring), values, opts)
}
