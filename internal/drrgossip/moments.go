// DRR-gossip-moments: mean and variance in one protocol run — the
// paper's "other aggregates … by a suitable modification" instantiated
// for second moments. The pipeline is Algorithm 8 with the pair
// (s, g) widened to the triple (Σv, Σv², g); message sizes stay bounded.
package drrgossip

import (
	"fmt"
	"math"

	"drrgossip/internal/convergecast"
	"drrgossip/internal/drr"
	"drrgossip/internal/gossip"
	"drrgossip/internal/sim"
)

// MomentsResult reports a DRR-gossip-moments run.
type MomentsResult struct {
	// Mean and Variance are the consensus estimates (population
	// variance, i.e. E[v²] − E[v]²).
	Mean, Variance float64
	// Std is sqrt(max(Variance, 0)).
	Std float64
	// PerNodeMean / PerNodeVariance are the disseminated per-node values
	// (NaN for crashed nodes).
	PerNodeMean, PerNodeVariance []float64
	Consensus                    bool
	// Phases attributes the run's cost to its pipeline stages via
	// telescoping engine-counter snapshots, so the four phase deltas sum
	// to Stats exactly, field by field.
	Phases PhaseStats
	Stats  sim.Counters
}

// Moments computes the global mean and variance with a single DRR-gossip
// pipeline: DRR forest, three-component convergecast, largest-root
// election, triple push-sum, then two data-spreads (mean, variance) and
// the final tree broadcast.
func Moments(eng *sim.Engine, values []float64, opts Options) (*MomentsResult, error) {
	if len(values) != eng.N() {
		return nil, errValues(len(values), eng.N())
	}
	runStart := eng.Stats()

	eng.SetPhase(PhaseDRR)
	dres, err := drr.Run(eng, opts.DRR)
	if err != nil {
		return nil, err
	}
	f := dres.Forest
	if f.NumTrees() == 0 {
		return nil, ErrNoNodes
	}
	afterDRR := eng.Stats()
	eng.SetPhase(PhaseAggregate)
	cov, _, err := convergecast.Moments(eng, f, values, opts.Convergecast)
	if err != nil {
		return nil, err
	}
	rootTo, _, err := convergecast.BroadcastRootAddr(eng, f, opts.Convergecast)
	if err != nil {
		return nil, err
	}

	// Elect the largest-tree root via Gossip-max on (size, id) keys.
	keys := make(map[int]float64, f.NumTrees())
	for r, mv := range cov {
		keys[r] = largestKey(int(mv.Count), r)
	}
	afterAgg := eng.Stats()
	eng.SetPhase(PhaseGossip)
	kres, err := gossip.Max(eng, f, rootTo, keys, opts.Gossip)
	if err != nil {
		return nil, err
	}
	maxKey := math.Inf(-1)
	for _, v := range kres.Estimates {
		if v > maxKey {
			maxKey = v
		}
	}
	z := decodeKeyRoot(maxKey)

	mres, err := gossip.Moments(eng, f, rootTo, cov,
		gossip.AveOptions{Rounds: opts.AveRounds, TrackRoot: -1})
	if err != nil {
		return nil, err
	}
	mean := mres.Mean[z]
	variance := mres.M2[z] - mean*mean

	// Spread both values from z and broadcast them down the trees.
	sMean, err := gossip.Spread(eng, f, rootTo, z, mean, opts.Gossip)
	if err != nil {
		return nil, err
	}
	sVar, err := gossip.Spread(eng, f, rootTo, z, variance, opts.Gossip)
	if err != nil {
		return nil, err
	}
	afterGossip := eng.Stats()
	eng.SetPhase(PhaseBroadcast)
	perMean, _, err := convergecast.BroadcastValue(eng, f, sMean.Estimates, opts.Convergecast)
	if err != nil {
		return nil, err
	}
	perVar, _, err := convergecast.BroadcastValue(eng, f, sVar.Estimates, opts.Convergecast)
	if err != nil {
		return nil, err
	}

	consensus := true
	for i := range perMean {
		if !f.Member(i) {
			continue
		}
		if perMean[i] != mean || perVar[i] != variance {
			consensus = false
			break
		}
	}
	end := eng.Stats()
	return &MomentsResult{
		Mean:            mean,
		Variance:        variance,
		Std:             math.Sqrt(math.Max(variance, 0)),
		PerNodeMean:     perMean,
		PerNodeVariance: perVar,
		Consensus:       consensus,
		Phases: PhaseStats{
			DRR:       afterDRR.Sub(runStart),
			Aggregate: afterAgg.Sub(afterDRR),
			Gossip:    afterGossip.Sub(afterAgg),
			Broadcast: end.Sub(afterGossip),
		},
		Stats: end.Sub(runStart),
	}, nil
}

func errValues(got, want int) error {
	return fmt.Errorf("drrgossip: %d values for %d nodes", got, want)
}
