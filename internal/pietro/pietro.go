// Package pietro implements the clusterhead heuristic of Di Pietro and
// Michiardi (PODC 2008 brief announcement), which the reproduced paper
// discusses in §1.2: bootstrap the network into clusters, aggregate at
// clusterheads, gossip among clusterheads à la Kempe, then disseminate.
//
// The announcement leaves the bootstrap phase unspecified ("it is not
// clear how to efficiently implement the bootstrap phase") and claims,
// without proof, O(n log log n) messages overall. This reconstruction
// implements the obvious bootstrap — every node independently becomes a
// clusterhead with probability 1/log n, and every other node probes
// random nodes until it finds a head — and the A3 experiment measures
// what that costs: Θ(n log n) messages, i.e. the bootstrap alone already
// spends the budget DRR-gossip needs in total. That is exactly the
// paper's criticism, made quantitative.
package pietro

import (
	"errors"
	"fmt"
	"math"

	"drrgossip/internal/convergecast"
	"drrgossip/internal/forest"
	"drrgossip/internal/gossip"
	"drrgossip/internal/sim"
)

// Options tune the heuristic; zero values follow the announcement's
// parameters.
type Options struct {
	// HeadProb is the clusterhead self-selection probability
	// (0 = 1/log2 n).
	HeadProb float64
	// ProbeCap bounds per-node head-search probes (0 = 4 log2 n); nodes
	// that never find a head become singleton heads.
	ProbeCap     int
	Convergecast convergecast.Options
	Gossip       gossip.Options
	AveRounds    int
}

// Result mirrors the other pipelines' result shape.
type Result struct {
	Value     float64
	PerNode   []float64
	Consensus bool
	Forest    *forest.Forest
	// BootstrapStats isolates the cost of the unspecified bootstrap
	// phase — the quantity experiment A3 reports.
	BootstrapStats sim.Counters
	Stats          sim.Counters
}

// ErrNoNodes is returned when no node is alive.
var ErrNoNodes = errors.New("pietro: no alive nodes")

const kindFindHead uint8 = 0x81

func (o Options) headProb(n int) float64 {
	if o.HeadProb != 0 {
		return o.HeadProb
	}
	return 1 / math.Log2(float64(n))
}

func (o Options) probeCap(n int) int {
	if o.ProbeCap != 0 {
		return o.ProbeCap
	}
	return 4 * int(math.Ceil(math.Log2(float64(n))))
}

// Bootstrap builds the clusterhead star forest: heads self-select, other
// nodes probe random nodes (one call per round) until they hit a head.
func Bootstrap(eng *sim.Engine, opts Options) (*forest.Forest, sim.Counters, error) {
	n := eng.N()
	start := eng.Stats()
	p := opts.headProb(n)
	head := make([]bool, n)
	parent := make([]int, n)
	for i := 0; i < n; i++ {
		if !eng.Alive(i) {
			parent[i] = forest.NotMember
			continue
		}
		head[i] = eng.RNG(i).Bool(p)
		if head[i] {
			parent[i] = forest.Root
		} else {
			parent[i] = -3 // searching
		}
	}
	calls := make([]sim.Call, n)
	for probe := 0; probe < opts.probeCap(n); probe++ {
		eng.Tick()
		searching := false
		for i := 0; i < n; i++ {
			calls[i] = sim.Call{}
			if !eng.Alive(i) || parent[i] != -3 {
				continue
			}
			searching = true
			calls[i] = sim.Call{Active: true, To: eng.RNG(i).IntnOther(n, i), Pay: sim.Payload{Kind: kindFindHead}}
		}
		if !searching {
			break
		}
		eng.ResolveCalls(calls,
			func(callee, caller int, req sim.Payload) (sim.Payload, bool) {
				// Only heads answer affirmatively; an answer doubles as
				// the join acknowledgement.
				if !head[callee] {
					return sim.Payload{}, false
				}
				return sim.Payload{Kind: kindFindHead}, true
			},
			func(caller int, resp sim.Payload) {
				if parent[caller] == -3 {
					parent[caller] = calls[caller].To
				}
			})
	}
	orphaned := 0
	for i := 0; i < n; i++ {
		if parent[i] == -3 {
			// Probe budget exhausted: become a singleton head.
			parent[i] = forest.Root
			head[i] = true
			orphaned++
		}
	}
	f, err := forest.FromParents(parent)
	if err != nil {
		return nil, eng.Stats().Sub(start), fmt.Errorf("pietro: invalid forest: %w", err)
	}
	return f, eng.Stats().Sub(start), nil
}

// Max computes the global maximum with the clusterhead heuristic.
func Max(eng *sim.Engine, values []float64, opts Options) (*Result, error) {
	if len(values) != eng.N() {
		return nil, fmt.Errorf("pietro: %d values for %d nodes", len(values), eng.N())
	}
	runStart := eng.Stats()
	f, boot, err := Bootstrap(eng, opts)
	if err != nil {
		return nil, err
	}
	if f.NumTrees() == 0 {
		return nil, ErrNoNodes
	}
	covmax, _, err := convergecast.Max(eng, f, values, opts.Convergecast)
	if err != nil {
		return nil, err
	}
	rootTo, _, err := convergecast.BroadcastRootAddr(eng, f, opts.Convergecast)
	if err != nil {
		return nil, err
	}
	gres, err := gossip.Max(eng, f, rootTo, covmax, opts.Gossip)
	if err != nil {
		return nil, err
	}
	perNode, _, err := convergecast.BroadcastValue(eng, f, gres.Estimates, opts.Convergecast)
	if err != nil {
		return nil, err
	}
	return finish(eng, f, perNode[f.LargestRoot()], perNode, boot, runStart), nil
}

// Ave computes the global average with the clusterhead heuristic, using
// the same elect/push-sum/spread structure as the other pipelines.
func Ave(eng *sim.Engine, values []float64, opts Options) (*Result, error) {
	if len(values) != eng.N() {
		return nil, fmt.Errorf("pietro: %d values for %d nodes", len(values), eng.N())
	}
	runStart := eng.Stats()
	f, boot, err := Bootstrap(eng, opts)
	if err != nil {
		return nil, err
	}
	if f.NumTrees() == 0 {
		return nil, ErrNoNodes
	}
	covsum, _, err := convergecast.Sum(eng, f, values, opts.Convergecast)
	if err != nil {
		return nil, err
	}
	rootTo, _, err := convergecast.BroadcastRootAddr(eng, f, opts.Convergecast)
	if err != nil {
		return nil, err
	}
	keys := make(map[int]float64, f.NumTrees())
	for r, sc := range covsum {
		keys[r] = float64(int(sc.Count))*(1<<24) + float64(r)
	}
	kres, err := gossip.Max(eng, f, rootTo, keys, opts.Gossip)
	if err != nil {
		return nil, err
	}
	maxKey := math.Inf(-1)
	for _, v := range kres.Estimates {
		if v > maxKey {
			maxKey = v
		}
	}
	z := int(int64(maxKey) & (1<<24 - 1))
	if !f.IsRoot(z) {
		return nil, fmt.Errorf("pietro: elected node %d is not a root", z)
	}
	ares, err := gossip.Ave(eng, f, rootTo, covsum, gossip.AveOptions{Rounds: opts.AveRounds, TrackRoot: -1})
	if err != nil {
		return nil, err
	}
	sres, err := gossip.Spread(eng, f, rootTo, z, ares.Estimates[z], opts.Gossip)
	if err != nil {
		return nil, err
	}
	perNode, _, err := convergecast.BroadcastValue(eng, f, sres.Estimates, opts.Convergecast)
	if err != nil {
		return nil, err
	}
	return finish(eng, f, ares.Estimates[z], perNode, boot, runStart), nil
}

func finish(eng *sim.Engine, f *forest.Forest, value float64, perNode []float64, boot, runStart sim.Counters) *Result {
	consensus := true
	for i, v := range perNode {
		if f.Member(i) && (v != value || math.IsNaN(v)) {
			consensus = false
			break
		}
	}
	return &Result{
		Value:          value,
		PerNode:        perNode,
		Consensus:      consensus,
		Forest:         f,
		BootstrapStats: boot,
		Stats:          eng.Stats().Sub(runStart),
	}
}
