package pietro

import (
	"math"
	"testing"

	"drrgossip/internal/agg"
	"drrgossip/internal/sim"
)

func TestBootstrapBuildsStars(t *testing.T) {
	n := 2048
	eng := sim.NewEngine(n, sim.Options{Seed: 121})
	f, stats, err := Bootstrap(eng, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Validate(); err != nil {
		t.Fatal(err)
	}
	if f.MaxHeight() > 1 {
		t.Fatalf("clusters are stars; height = %d", f.MaxHeight())
	}
	if f.NumMembers() != n {
		t.Fatalf("members = %d", f.NumMembers())
	}
	if stats.Messages == 0 {
		t.Fatal("no bootstrap traffic")
	}
}

func TestBootstrapCostIsNLogN(t *testing.T) {
	// The A3 point: the obvious bootstrap costs Θ(n log n) messages —
	// expected probes per non-head are 1/p = log n.
	n := 8192
	eng := sim.NewEngine(n, sim.Options{Seed: 122})
	_, stats, err := Bootstrap(eng, Options{})
	if err != nil {
		t.Fatal(err)
	}
	perNode := float64(stats.Messages) / float64(n)
	logn := math.Log2(float64(n))
	// Each successful probe costs ~2 messages (query + answer); failures 1.
	if perNode < logn/2 {
		t.Fatalf("bootstrap suspiciously cheap: %v messages/node", perNode)
	}
	if perNode > 4*logn {
		t.Fatalf("bootstrap too expensive: %v messages/node", perNode)
	}
}

func TestHeadCountNearNOverLogN(t *testing.T) {
	n := 8192
	eng := sim.NewEngine(n, sim.Options{Seed: 123})
	f, _, err := Bootstrap(eng, Options{})
	if err != nil {
		t.Fatal(err)
	}
	want := float64(n) / math.Log2(float64(n))
	got := float64(f.NumTrees())
	if got < want/3 || got > 3*want {
		t.Fatalf("heads = %v, want ~n/log n = %v", got, want)
	}
}

func TestMaxEndToEnd(t *testing.T) {
	n := 1024
	eng := sim.NewEngine(n, sim.Options{Seed: 124})
	values := agg.GenUniform(n, -50, 50, 1)
	res, err := Max(eng, values, Options{})
	if err != nil {
		t.Fatal(err)
	}
	want := agg.Exact(agg.Max, values, 0)
	if res.Value != want || !res.Consensus {
		t.Fatalf("Max = %v (consensus %v), want %v", res.Value, res.Consensus, want)
	}
}

func TestAveEndToEnd(t *testing.T) {
	n := 1024
	eng := sim.NewEngine(n, sim.Options{Seed: 125})
	values := agg.GenUniform(n, 0, 100, 2)
	res, err := Ave(eng, values, Options{})
	if err != nil {
		t.Fatal(err)
	}
	want := agg.Exact(agg.Average, values, 0)
	if e := agg.RelError(res.Value, want); e > 1e-6 {
		t.Fatalf("Ave = %v, want %v", res.Value, want)
	}
}

func TestUnderLossAndCrashes(t *testing.T) {
	n := 1024
	eng := sim.NewEngine(n, sim.Options{Seed: 126, Loss: 0.1, CrashFrac: 0.1})
	values := agg.GenUniform(n, 0, 1000, 3)
	res, err := Max(eng, values, Options{})
	if err != nil {
		t.Fatal(err)
	}
	want := agg.Exact(agg.Max, agg.Subset(values, eng.AliveIDs()), 0)
	if res.Value != want {
		t.Fatalf("Max = %v, want %v", res.Value, want)
	}
}

func TestBootstrapShareGrows(t *testing.T) {
	// The bootstrap costs Θ(n log n) while the rest is Θ(n): its share of
	// the total must be substantial and growing with n.
	share := func(n int) float64 {
		eng := sim.NewEngine(n, sim.Options{Seed: 127})
		values := agg.GenUniform(n, 0, 1, 4)
		res, err := Max(eng, values, Options{})
		if err != nil {
			t.Fatal(err)
		}
		return float64(res.BootstrapStats.Messages) / float64(res.Stats.Messages)
	}
	s1 := share(1024)
	s2 := share(16384)
	if s2 < 0.3 {
		t.Fatalf("bootstrap share %v at n=16k too small", s2)
	}
	if s2 <= s1-0.02 {
		t.Fatalf("bootstrap share shrank with n: %v -> %v", s1, s2)
	}
}

func TestValidation(t *testing.T) {
	eng := sim.NewEngine(16, sim.Options{Seed: 128})
	if _, err := Max(eng, make([]float64, 3), Options{}); err == nil {
		t.Fatal("length mismatch accepted")
	}
}

func BenchmarkPietroMax(b *testing.B) {
	n := 4096
	values := agg.GenUniform(n, 0, 1, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng := sim.NewEngine(n, sim.Options{Seed: uint64(i)})
		if _, err := Max(eng, values, Options{}); err != nil {
			b.Fatal(err)
		}
	}
}
