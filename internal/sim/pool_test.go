package sim

// Queue-pool behavior: drained ring slots recycle their backing arrays
// through a shared pool bounded by poolBudget, steady-state traffic runs
// allocation-free out of the pool, and burst capacity beyond the budget
// is released to the GC instead of retained forever.

import "testing"

// The retained pool capacity must never exceed the budget, even after
// burst rounds far larger than steady state, and must stay consistent
// with the parked arrays.
func TestPoolBudgetBoundsRetention(t *testing.T) {
	n := 64
	e := NewEngine(n, Options{Seed: 1})
	if e.poolBudget != 8192 {
		t.Fatalf("poolBudget = %d, want floor 8192", e.poolBudget)
	}
	burst := func(size int) {
		for i := 0; i < size; i++ {
			e.Send(i%n, (i+1)%n, Payload{})
		}
		e.Tick()
	}
	checkPool := func(when string) {
		t.Helper()
		total := 0
		for _, q := range e.pool {
			if len(q) != 0 {
				t.Fatalf("%s: pooled array with live length %d", when, len(q))
			}
			total += cap(q)
		}
		if total != e.poolCap {
			t.Fatalf("%s: poolCap = %d, parked capacity = %d", when, e.poolCap, total)
		}
		if e.poolCap > e.poolBudget {
			t.Fatalf("%s: poolCap %d exceeds budget %d", when, e.poolCap, e.poolBudget)
		}
	}
	// Steady rounds, then a burst several times the budget, then more
	// steady rounds: the burst array must not be parked.
	for round := 0; round < 5; round++ {
		burst(n)
		checkPool("steady")
	}
	burst(5 * e.poolBudget)
	checkPool("after burst")
	if e.poolCap >= 5*e.poolBudget {
		t.Fatal("burst backing array was retained despite exceeding the budget")
	}
	for round := 0; round < 5; round++ {
		burst(n)
		checkPool("steady after burst")
	}
	// The pool survives Reset (engine reuse is when recycling pays off).
	before := e.poolCap
	e.Reset(Options{Seed: 1})
	checkPool("after Reset")
	if e.poolCap < before {
		t.Fatalf("Reset shrank the pool: %d -> %d", before, e.poolCap)
	}
}

// Steady-state scheduling — including routed sends that spread deliveries
// over future ring slots — must run out of recycled queues without
// allocating.
func TestPoolSteadyStateAllocationFree(t *testing.T) {
	n := 128
	e := NewEngine(n, Options{Seed: 2})
	path := []int{1, 2, 3, 4, 5, 6, 7}
	run := func() {
		for round := 0; round < 20; round++ {
			for i := 0; i < n; i++ {
				e.Send(i, (i+1)%n, Payload{})
			}
			e.SendRouted(0, path, Payload{})
			e.Tick()
		}
		for i := 0; i < len(path)+1; i++ {
			e.Tick() // drain routed tail
		}
	}
	run() // warm up: grow queues once
	allocs := testing.AllocsPerRun(10, run)
	if allocs > 0 {
		t.Fatalf("steady-state scheduling allocates %v objects per cycle", allocs)
	}
}

// Pooled reuse cannot change results: a reused engine must reproduce a
// fresh engine's counters bit-for-bit after heavy mixed traffic.
func TestPoolReuseBitIdentical(t *testing.T) {
	n := 96
	opts := Options{Seed: 3, Loss: 0.1}
	drive := func(e *Engine) Counters {
		for round := 0; round < 40; round++ {
			for i := 0; i < n; i++ {
				e.Send(i, e.RNG(i).IntnOther(n, i), Payload{})
			}
			e.SendRouted(round%n, []int{(round + 1) % n, (round + 2) % n, (round + 3) % n}, Payload{})
			e.Tick()
		}
		return e.Stats()
	}
	fresh := drive(NewEngine(n, opts))
	e := NewEngine(n, opts)
	drive(e)
	e.Reset(opts)
	if got := drive(e); got != fresh {
		t.Fatalf("reused engine diverged:\n fresh  %+v\n reused %+v", fresh, got)
	}
}
