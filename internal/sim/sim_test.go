package sim

import (
	"sync/atomic"
	"testing"
	"testing/quick"
	"unsafe"
)

func TestSendDeliversNextTick(t *testing.T) {
	e := NewEngine(4, Options{Seed: 1})
	e.Send(0, 2, Payload{Kind: 7, A: 3.5})
	if got := len(e.Inbox(2)); got != 0 {
		t.Fatalf("message visible before Tick: %d", got)
	}
	e.Tick()
	in := e.Inbox(2)
	if len(in) != 1 || in[0].From != 0 || in[0].Pay.Kind != 7 || in[0].Pay.A != 3.5 {
		t.Fatalf("bad delivery: %+v", in)
	}
	e.Tick()
	if len(e.Inbox(2)) != 0 {
		t.Fatal("message redelivered on second Tick")
	}
	if e.Stats().Messages != 1 {
		t.Fatalf("Messages = %d, want 1", e.Stats().Messages)
	}
}

func TestSendViaCostsTwoMessages(t *testing.T) {
	e := NewEngine(5, Options{Seed: 2})
	e.SendVia(0, 3, 4, Payload{X: 9})
	if e.Stats().Messages != 2 {
		t.Fatalf("Messages = %d, want 2", e.Stats().Messages)
	}
	e.Tick()
	in := e.Inbox(4)
	if len(in) != 1 || in[0].Pay.X != 9 {
		t.Fatalf("relay delivery failed: %+v", in)
	}
	if len(e.Inbox(3)) != 0 {
		t.Fatal("relay node should not keep the message")
	}
}

func TestSendViaSelfRelay(t *testing.T) {
	e := NewEngine(3, Options{Seed: 3})
	e.SendVia(0, 2, 2, Payload{})
	if e.Stats().Messages != 1 {
		t.Fatalf("Messages = %d, want 1 when relay==dst", e.Stats().Messages)
	}
	e.Tick()
	if len(e.Inbox(2)) != 1 {
		t.Fatal("self-relay message not delivered")
	}
}

func TestSendRoutedTiming(t *testing.T) {
	e := NewEngine(6, Options{Seed: 4})
	path := []int{1, 2, 3}
	e.SendRouted(0, path, Payload{Y: 11})
	if e.Stats().Messages != 3 {
		t.Fatalf("Messages = %d, want 3", e.Stats().Messages)
	}
	for r := 0; r < 2; r++ {
		e.Tick()
		if len(e.Inbox(3)) != 0 {
			t.Fatalf("routed message arrived early at round %d", e.Round())
		}
	}
	e.Tick()
	in := e.Inbox(3)
	if len(in) != 1 || in[0].Pay.Y != 11 || in[0].From != 0 {
		t.Fatalf("routed delivery wrong: %+v", in)
	}
	if !e.PendingEmpty() {
		t.Fatal("pending queue not drained")
	}
}

func TestLossZeroNeverDrops(t *testing.T) {
	e := NewEngine(10, Options{Seed: 5, Loss: 0})
	for i := 0; i < 1000; i++ {
		e.Send(0, 1, Payload{})
	}
	if e.Stats().Drops != 0 {
		t.Fatalf("Drops = %d with Loss=0", e.Stats().Drops)
	}
	e.Tick()
	if len(e.Inbox(1)) != 1000 {
		t.Fatalf("delivered %d/1000", len(e.Inbox(1)))
	}
}

func TestLossRateApproximate(t *testing.T) {
	e := NewEngine(2, Options{Seed: 6, Loss: 0.25})
	const n = 20000
	for i := 0; i < n; i++ {
		e.Send(0, 1, Payload{})
	}
	drops := float64(e.Stats().Drops)
	if drops < 0.2*n || drops > 0.3*n {
		t.Fatalf("drop rate %v, want ~0.25", drops/n)
	}
}

func TestLossDeterministic(t *testing.T) {
	run := func() (int64, int) {
		e := NewEngine(2, Options{Seed: 7, Loss: 0.5})
		for i := 0; i < 500; i++ {
			e.Send(0, 1, Payload{})
		}
		e.Tick()
		return e.Stats().Drops, len(e.Inbox(1))
	}
	d1, g1 := run()
	d2, g2 := run()
	if d1 != d2 || g1 != g2 {
		t.Fatalf("loss not deterministic: (%d,%d) vs (%d,%d)", d1, g1, d2, g2)
	}
}

func TestResolveCalls(t *testing.T) {
	e := NewEngine(4, Options{Seed: 8})
	calls := make([]Call, 4)
	calls[1] = Call{Active: true, To: 3, Pay: Payload{A: 5}}
	calls[2] = Call{Active: true, To: 3, Pay: Payload{A: 6}}
	var handled []int
	var replies []float64
	e.ResolveCalls(calls,
		func(callee, caller int, req Payload) (Payload, bool) {
			if callee != 3 {
				t.Fatalf("unexpected callee %d", callee)
			}
			handled = append(handled, caller)
			return Payload{A: req.A * 10}, true
		},
		func(caller int, resp Payload) {
			replies = append(replies, resp.A)
		})
	if len(handled) != 2 || handled[0] != 1 || handled[1] != 2 {
		t.Fatalf("handled order %v", handled)
	}
	if len(replies) != 2 || replies[0] != 50 || replies[1] != 60 {
		t.Fatalf("replies %v", replies)
	}
	if e.Stats().Calls != 2 || e.Stats().Messages != 4 {
		t.Fatalf("stats %+v", e.Stats())
	}
}

func TestResolveCallsNoReply(t *testing.T) {
	e := NewEngine(2, Options{Seed: 9})
	calls := []Call{{Active: true, To: 1}, {}}
	e.ResolveCalls(calls,
		func(callee, caller int, req Payload) (Payload, bool) { return Payload{}, false },
		func(caller int, resp Payload) { t.Fatal("unexpected reply") })
	if e.Stats().Messages != 1 {
		t.Fatalf("Messages = %d, want 1 for unanswered call", e.Stats().Messages)
	}
}

func TestCrashFraction(t *testing.T) {
	e := NewEngine(10000, Options{Seed: 10, CrashFrac: 0.2})
	alive := e.NumAlive()
	if alive < 7500 || alive > 8500 {
		t.Fatalf("alive = %d with CrashFrac 0.2", alive)
	}
	if got := len(e.AliveIDs()); got != alive {
		t.Fatalf("AliveIDs len %d != NumAlive %d", got, alive)
	}
	// Crashed nodes never receive.
	var dead int
	for i := 0; i < e.N(); i++ {
		if !e.Alive(i) {
			dead = i
			break
		}
	}
	e.Send(0, dead, Payload{})
	e.Tick()
	if len(e.Inbox(dead)) != 0 {
		t.Fatal("crashed node received a message")
	}
	if e.Stats().Messages != 1 {
		t.Fatal("send to crashed node must still count as a message")
	}
}

func TestCrashedSenderSilent(t *testing.T) {
	e := NewEngine(100, Options{Seed: 11, CrashFrac: 0.5})
	var dead int
	for i := 0; i < e.N(); i++ {
		if !e.Alive(i) {
			dead = i
			break
		}
	}
	e.Send(dead, 0, Payload{})
	e.SendVia(dead, 1, 2, Payload{})
	e.SendRouted(dead, []int{1, 2}, Payload{})
	if e.Stats().Messages != 0 {
		t.Fatal("crashed sender generated traffic")
	}
}

func TestCrashSetDeterministic(t *testing.T) {
	a := NewEngine(1000, Options{Seed: 12, CrashFrac: 0.3})
	b := NewEngine(1000, Options{Seed: 12, CrashFrac: 0.3})
	for i := 0; i < 1000; i++ {
		if a.Alive(i) != b.Alive(i) {
			t.Fatalf("crash set differs at node %d", i)
		}
	}
}

func TestAllCrashedKeepsOne(t *testing.T) {
	e := NewEngine(5, Options{Seed: 13, CrashFrac: 0.9999999})
	if e.NumAlive() < 1 {
		t.Fatal("engine must keep at least one node alive")
	}
}

func TestRNGPerNodeIndependentAndStable(t *testing.T) {
	e1 := NewEngine(4, Options{Seed: 14})
	e2 := NewEngine(4, Options{Seed: 14})
	if e1.RNG(2).Uint64() != e2.RNG(2).Uint64() {
		t.Fatal("per-node RNG not seed-stable")
	}
	if e1.RNG(0).Uint64() == e1.RNG(1).Uint64() {
		t.Fatal("distinct nodes share RNG output")
	}
	// Same stream on repeated calls.
	r := e1.RNG(3)
	if r != e1.RNG(3) {
		t.Fatal("RNG(i) must return a stable stream")
	}
}

func TestCountersSub(t *testing.T) {
	a := Counters{Rounds: 10, Messages: 100, Drops: 5, Calls: 20}
	b := Counters{Rounds: 4, Messages: 30, Drops: 1, Calls: 8}
	d := a.Sub(b)
	if d.Rounds != 6 || d.Messages != 70 || d.Drops != 4 || d.Calls != 12 {
		t.Fatalf("Sub = %+v", d)
	}
}

func TestParallelForCoversAll(t *testing.T) {
	f := func(n uint16) bool {
		m := int(n%2000) + 1
		var count atomic.Int64
		seen := make([]atomic.Bool, m)
		ParallelFor(m, func(i int) {
			if seen[i].Swap(true) {
				t.Errorf("index %d visited twice", i)
			}
			count.Add(1)
		})
		return int(count.Load()) == m
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestEngineValidation(t *testing.T) {
	for _, fn := range []func(){
		func() { NewEngine(0, Options{}) },
		func() { NewEngine(3, Options{Loss: 1.0}) },
		func() { NewEngine(3, Options{Loss: -0.1}) },
		func() {
			e := NewEngine(3, Options{})
			e.ResolveCalls(make([]Call, 2), nil, nil)
		},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("invalid configuration did not panic")
				}
			}()
			fn()
		}()
	}
}

func TestRoutedLossStopsForwarding(t *testing.T) {
	// With very high loss almost all routed sends die mid-path; the ones
	// that die must not be delivered and must count only traversed hops.
	e := NewEngine(4, Options{Seed: 15, Loss: 0.9})
	for i := 0; i < 200; i++ {
		e.SendRouted(0, []int{1, 2, 3}, Payload{})
	}
	delivered := 0
	for r := 0; r < 5; r++ {
		e.Tick()
		delivered += len(e.Inbox(3))
	}
	msgs := e.Stats().Messages
	if msgs >= 600 {
		t.Fatalf("all hops counted (%d) despite loss", msgs)
	}
	// P(survive 3 hops) = 0.001: expect ~0.2 deliveries in 200 tries.
	if delivered > 10 {
		t.Fatalf("delivered %d routed messages at loss 0.9", delivered)
	}
}

func BenchmarkSendTick(b *testing.B) {
	e := NewEngine(1024, Options{Seed: 1})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Send(i%1024, (i+1)%1024, Payload{})
		if i%1024 == 1023 {
			e.Tick()
		}
	}
}

func BenchmarkParallelFor(b *testing.B) {
	var sink atomic.Int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ParallelFor(4096, func(j int) {
			if j == 0 {
				sink.Add(1)
			}
		})
	}
}

func TestCharge(t *testing.T) {
	e := NewEngine(2, Options{Seed: 20})
	e.Charge(5)
	if e.Stats().Messages != 5 {
		t.Fatalf("Charge not accounted: %d", e.Stats().Messages)
	}
	if e.Stats().Drops != 0 {
		t.Fatal("Charge must not count drops")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("negative Charge did not panic")
		}
	}()
	e.Charge(-1)
}

func TestPayloadRoundTripsAllFields(t *testing.T) {
	e := NewEngine(2, Options{Seed: 21})
	in := Payload{Kind: 9, A: 1.5, B: -2.5, C: 3.25, X: -7, Y: 11}
	e.Send(0, 1, in)
	e.Tick()
	got := e.Inbox(1)
	if len(got) != 1 || got[0].Pay != in {
		t.Fatalf("payload mangled: %+v", got)
	}
}

func TestInterleavedRoutedAndDirect(t *testing.T) {
	// A routed message (3 hops) and direct messages sent on consecutive
	// rounds must arrive at their own schedules without interference.
	e := NewEngine(5, Options{Seed: 22})
	e.SendRouted(0, []int{1, 2, 4}, Payload{X: 100})
	e.Send(0, 4, Payload{X: 200})
	e.Tick() // round 1: direct arrives
	in := e.Inbox(4)
	if len(in) != 1 || in[0].Pay.X != 200 {
		t.Fatalf("round 1 inbox: %+v", in)
	}
	e.Send(3, 4, Payload{X: 300})
	e.Tick() // round 2: second direct arrives
	in = e.Inbox(4)
	if len(in) != 1 || in[0].Pay.X != 300 {
		t.Fatalf("round 2 inbox: %+v", in)
	}
	e.Tick() // round 3: routed arrives
	in = e.Inbox(4)
	if len(in) != 1 || in[0].Pay.X != 100 {
		t.Fatalf("round 3 inbox: %+v", in)
	}
}

func TestManySendersOneReceiverOrdering(t *testing.T) {
	// Delivery order within a round follows send order (deterministic).
	e := NewEngine(8, Options{Seed: 23})
	for i := 1; i < 8; i++ {
		e.Send(i, 0, Payload{X: int64(i)})
	}
	e.Tick()
	in := e.Inbox(0)
	if len(in) != 7 {
		t.Fatalf("delivered %d of 7", len(in))
	}
	for k, m := range in {
		if m.Pay.X != int64(k+1) {
			t.Fatalf("delivery order broken at %d: %+v", k, in)
		}
	}
}

func TestCallToSelfCounts(t *testing.T) {
	// Protocols avoid self-calls, but the engine must handle them
	// gracefully if one occurs.
	e := NewEngine(2, Options{Seed: 24})
	calls := []Call{{Active: true, To: 0, Pay: Payload{A: 1}}, {}}
	got := 0.0
	e.ResolveCalls(calls,
		func(callee, caller int, req Payload) (Payload, bool) {
			return Payload{A: req.A * 2}, true
		},
		func(caller int, resp Payload) { got = resp.A })
	if got != 2 {
		t.Fatalf("self-call reply = %v", got)
	}
	if e.Stats().Messages != 2 {
		t.Fatalf("self-call messages = %d", e.Stats().Messages)
	}
}

func TestSendViaToCrashedRelay(t *testing.T) {
	e := NewEngine(100, Options{Seed: 25, CrashFrac: 0.5})
	var dead, alive int = -1, -1
	for i := 1; i < 100; i++ {
		if !e.Alive(i) && dead < 0 {
			dead = i
		}
		if e.Alive(i) && alive < 0 {
			alive = i
		}
	}
	var src int = -1
	for i := 0; i < 100; i++ {
		if e.Alive(i) {
			src = i
			break
		}
	}
	before := e.Stats().Messages
	e.SendVia(src, dead, alive, Payload{})
	// First hop counted, second not attempted (relay dead).
	if e.Stats().Messages != before+1 {
		t.Fatalf("messages = %d, want %d", e.Stats().Messages, before+1)
	}
	e.Tick()
	if len(e.Inbox(alive)) != 0 {
		t.Fatal("message survived a dead relay")
	}
}

func TestPayloadStaysBounded(t *testing.T) {
	// §2 of the paper bounds message length to O(log n + log s) bits; the
	// simulator enforces it structurally with a fixed-size payload. Guard
	// against accidental growth (5 words of content + kind, padded).
	if sz := unsafe.Sizeof(Payload{}); sz > 48 {
		t.Fatalf("Payload grew to %d bytes; the bounded-message discipline caps it at 48", sz)
	}
}

func TestSendRoutedEmptyPath(t *testing.T) {
	e := NewEngine(4, Options{Seed: 41})
	e.SendRouted(0, nil, Payload{})
	e.SendRouted(0, []int{}, Payload{})
	if e.Stats().Messages != 0 {
		t.Fatalf("empty-path SendRouted cost %d messages, want 0", e.Stats().Messages)
	}
	e.Tick()
	for i := 0; i < 4; i++ {
		if len(e.Inbox(i)) != 0 {
			t.Fatalf("empty-path SendRouted delivered to %d", i)
		}
	}
}

func TestSendRoutedDeadRelayAccounting(t *testing.T) {
	// A crashed mid-path relay consumes the hops up to and including the
	// attempt that reaches it; the remaining hops are never transmitted
	// and nothing is delivered.
	e := NewEngine(100, Options{Seed: 42, CrashFrac: 0.3})
	var dead int
	for i := 1; i < e.N(); i++ {
		if !e.Alive(i) {
			dead = i
			break
		}
	}
	var alive []int
	for i := 0; i < e.N() && len(alive) < 4; i++ {
		if e.Alive(i) && i != dead {
			alive = append(alive, i)
		}
	}
	path := []int{alive[1], dead, alive[2], alive[3]}
	e.SendRouted(alive[0], path, Payload{})
	if got := e.Stats().Messages; got != 2 {
		t.Fatalf("dead-relay SendRouted cost %d messages, want 2 (alive hop + dead hop)", got)
	}
	if e.Stats().Drops != 0 {
		t.Fatal("dead relay must not count as a link drop")
	}
	for r := 0; r < len(path)+1; r++ {
		e.Tick()
		if len(e.Inbox(alive[3])) != 0 {
			t.Fatal("message past a dead relay was delivered")
		}
	}
}

func TestSendRoutedLossAccounting(t *testing.T) {
	// Under certain loss every hop attempt is paid for until the first
	// drop; summed over many paths, messages - drops = successful hops.
	e := NewEngine(8, Options{Seed: 43, Loss: 0.5})
	const trials = 200
	for i := 0; i < trials; i++ {
		e.SendRouted(0, []int{1, 2, 3}, Payload{})
	}
	st := e.Stats()
	if st.Drops == 0 || st.Drops == st.Messages {
		t.Fatalf("expected a mix of drops and successes, got %+v", st)
	}
	if st.Messages > 3*trials || st.Messages < trials {
		t.Fatalf("messages %d out of range for %d 3-hop sends", st.Messages, trials)
	}
}

func TestSendViaRelayEqualsDstLossAccounting(t *testing.T) {
	// relay == dst degenerates to a single hop: exactly one attempt is
	// paid per send, so drops can never exceed sends.
	e := NewEngine(3, Options{Seed: 44, Loss: 0.4})
	const trials = 300
	for i := 0; i < trials; i++ {
		e.SendVia(0, 2, 2, Payload{})
	}
	st := e.Stats()
	if st.Messages != trials {
		t.Fatalf("relay==dst sends cost %d messages, want %d (one hop each)", st.Messages, trials)
	}
	if st.Drops == 0 || st.Drops >= st.Messages {
		t.Fatalf("loss accounting off: %+v", st)
	}
	delivered := 0
	e.Tick()
	delivered += len(e.Inbox(2))
	if int64(delivered) != st.Messages-st.Drops {
		t.Fatalf("delivered %d, want messages-drops = %d", delivered, st.Messages-st.Drops)
	}
}

func TestSendViaDeadRelayConsumesMessage(t *testing.T) {
	e := NewEngine(100, Options{Seed: 45, CrashFrac: 0.3})
	var dead int
	for i := 2; i < e.N(); i++ {
		if !e.Alive(i) {
			dead = i
			break
		}
	}
	var src, dst int = -1, -1
	for i := 0; i < e.N(); i++ {
		if e.Alive(i) {
			if src < 0 {
				src = i
			} else if dst < 0 && i != src {
				dst = i
			}
		}
	}
	e.SendVia(src, dead, dst, Payload{})
	if e.Stats().Messages != 1 {
		t.Fatalf("dead relay cost %d messages, want 1 (second hop never sent)", e.Stats().Messages)
	}
	e.Tick()
	if len(e.Inbox(dst)) != 0 {
		t.Fatal("message via dead relay delivered")
	}
}

func TestSendRoutedReliableNoLossMatchesSendRouted(t *testing.T) {
	e := NewEngine(5, Options{Seed: 46})
	if !e.SendRoutedReliable(0, []int{1, 2, 3}, Payload{X: 5}, 0) {
		t.Fatal("lossless reliable send failed")
	}
	if e.Stats().Messages != 3 {
		t.Fatalf("lossless reliable send cost %d, want 3", e.Stats().Messages)
	}
	e.Tick()
	e.Tick()
	e.Tick()
	in := e.Inbox(3)
	if len(in) != 1 || in[0].Pay.X != 5 || in[0].From != 0 {
		t.Fatalf("reliable delivery wrong: %+v", in)
	}
}

func TestSendRoutedReliableRetransmitsThroughLoss(t *testing.T) {
	e := NewEngine(5, Options{Seed: 47, Loss: 0.4})
	const trials = 100
	delivered := 0
	for i := 0; i < trials; i++ {
		if e.SendRoutedReliable(0, []int{1, 2}, Payload{}, 0) {
			delivered++
		}
		e.Tick()
		e.Tick()
	}
	if delivered < trials*9/10 {
		t.Fatalf("reliable sends delivered %d/%d at δ=0.4", delivered, trials)
	}
	st := e.Stats()
	if st.Messages <= 2*trials {
		t.Fatalf("retransmissions unpaid: %d messages for %d 2-hop sends", st.Messages, trials)
	}
}

func TestSendRoutedReliableDeadRelayFails(t *testing.T) {
	e := NewEngine(100, Options{Seed: 48, CrashFrac: 0.2})
	var dead int
	for i := 2; i < e.N(); i++ {
		if !e.Alive(i) {
			dead = i
			break
		}
	}
	var src, hop1, dst int = -1, -1, -1
	for i := 0; i < e.N(); i++ {
		if e.Alive(i) && i != dead {
			switch {
			case src < 0:
				src = i
			case hop1 < 0:
				hop1 = i
			case dst < 0:
				dst = i
			}
		}
	}
	if e.SendRoutedReliable(src, []int{hop1, dead, dst}, Payload{}, 4) {
		t.Fatal("reliable send through dead relay claims delivery")
	}
	// Empty path is a no-op.
	if e.SendRoutedReliable(src, nil, Payload{}, 4) {
		t.Fatal("empty-path reliable send claims delivery")
	}
}
