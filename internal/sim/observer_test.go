package sim

import (
	"math"
	"testing"
)

// The round observer is a read-only tap: it fires once per Tick with the
// new round number, sees the round fully formed (hook applied, messages
// delivered), and never makes the engine Faulty.
func TestRoundObserver(t *testing.T) {
	e := NewEngine(4, Options{Seed: 1})
	var rounds []int
	var alives []int
	e.SetRoundObserver(func(round int) {
		rounds = append(rounds, round)
		alives = append(alives, e.NumAlive())
	})
	if e.Faulty() {
		t.Fatal("observer must not make the engine faulty")
	}
	e.SetRoundHook(func(round int) {
		if round == 2 {
			e.Crash(3)
		}
	})
	for i := 0; i < 3; i++ {
		e.Tick()
	}
	if len(rounds) != 3 || rounds[0] != 1 || rounds[2] != 3 {
		t.Fatalf("observer rounds = %v", rounds)
	}
	// The hook crashes node 3 at the top of round 2; the observer runs at
	// the end of the same Tick and must already see it.
	if alives[0] != 4 || alives[1] != 3 || alives[2] != 3 {
		t.Fatalf("observer alive counts = %v", alives)
	}
	e.SetRoundObserver(nil)
	e.Tick()
	if len(rounds) != 3 {
		t.Fatal("removed observer still fired")
	}
}

// SetPhase is plain observability state.
func TestPhaseLabel(t *testing.T) {
	e := NewEngine(2, Options{Seed: 1})
	if e.Phase() != "" {
		t.Fatalf("fresh engine phase %q", e.Phase())
	}
	e.SetPhase("gossip")
	if e.Phase() != "gossip" {
		t.Fatalf("phase = %q", e.Phase())
	}
}

// The phase observer fires on label changes only, and never makes the
// engine faulty.
func TestPhaseObserver(t *testing.T) {
	e := NewEngine(2, Options{Seed: 1})
	var seen []string
	e.SetPhaseObserver(func(p string) { seen = append(seen, p) })
	if e.Faulty() {
		t.Fatal("phase observer must not make the engine faulty")
	}
	e.SetPhase("drr")
	e.SetPhase("drr") // same label: no event
	e.SetPhase("gossip")
	if len(seen) != 2 || seen[0] != "drr" || seen[1] != "gossip" {
		t.Fatalf("phase observer saw %v", seen)
	}
	e.SetPhaseObserver(nil)
	e.SetPhase("broadcast")
	if len(seen) != 2 {
		t.Fatal("removed phase observer still fired")
	}
}

// The membership observer fires on actual transitions only: crashing a
// dead node or reviving a live one stays silent.
func TestMembershipObserver(t *testing.T) {
	e := NewEngine(4, Options{Seed: 1})
	type tr struct {
		node  int
		alive bool
	}
	var seen []tr
	e.SetMembershipObserver(func(node int, alive bool) { seen = append(seen, tr{node, alive}) })
	if e.Faulty() {
		t.Fatal("membership observer must not make the engine faulty")
	}
	e.Crash(2)
	e.Crash(2) // already dead: no event
	e.Revive(2)
	e.Revive(2) // already alive: no event
	want := []tr{{2, false}, {2, true}}
	if len(seen) != len(want) || seen[0] != want[0] || seen[1] != want[1] {
		t.Fatalf("membership observer saw %v, want %v", seen, want)
	}
}

// Residual is driver-reported observability state, NaN by default.
func TestResidual(t *testing.T) {
	e := NewEngine(2, Options{Seed: 1})
	if !math.IsNaN(e.Residual()) {
		t.Fatalf("fresh engine residual = %v, want NaN", e.Residual())
	}
	if e.Observed() {
		t.Fatal("fresh engine must not report Observed")
	}
	e.SetRoundObserver(func(int) {})
	if !e.Observed() {
		t.Fatal("engine with round observer must report Observed")
	}
	e.ReportResidual(0.5)
	if e.Residual() != 0.5 {
		t.Fatalf("residual = %v", e.Residual())
	}
}

// WantResidual is due only on rounds the stride will surface, and only
// while a round observer is installed.
func TestResidualStride(t *testing.T) {
	e := NewEngine(2, Options{Seed: 1})
	if e.WantResidual() {
		t.Fatal("unobserved engine must not want residuals")
	}
	e.SetRoundObserver(func(int) {})
	if !e.WantResidual() {
		t.Fatal("default stride must want a residual every round")
	}
	e.SetResidualStride(3)
	var due []int
	for r := 1; r <= 6; r++ {
		if e.WantResidual() {
			due = append(due, r) // upcoming round r
		}
		e.Tick()
	}
	if len(due) != 2 || due[0] != 3 || due[1] != 6 {
		t.Fatalf("due rounds = %v, want [3 6]", due)
	}
	e.SetResidualStride(0) // < 1 clamps to every round
	if !e.WantResidual() {
		t.Fatal("stride 0 must clamp to 1")
	}
}

// Regression for the pooled-engine contract: Reset must clear every
// piece of observability state — phase label, phase/membership/round
// observers, and the reported residual — so that a pooled engine cannot
// leak a previous run's telemetry into the next one.
func TestResetClearsObservabilityState(t *testing.T) {
	e := NewEngine(4, Options{Seed: 1})
	fired := 0
	e.SetPhase("gossip")
	e.SetPhaseObserver(func(string) { fired++ })
	e.SetMembershipObserver(func(int, bool) { fired++ })
	e.SetRoundObserver(func(int) { fired++ })
	e.ReportResidual(0.125)
	e.SetResidualStride(7)

	e.Reset(Options{Seed: 1})
	if e.Phase() != "" {
		t.Fatalf("Reset left phase %q", e.Phase())
	}
	if !math.IsNaN(e.Residual()) {
		t.Fatalf("Reset left residual %v", e.Residual())
	}
	if e.Observed() {
		t.Fatal("Reset left a round observer installed")
	}
	e.SetRoundObserver(func(int) {})
	if !e.WantResidual() {
		t.Fatal("Reset left a residual stride != 1")
	}
	e.SetRoundObserver(nil)
	e.SetPhase("drr")
	e.Crash(1)
	e.Tick()
	if fired != 0 {
		t.Fatalf("stale observers fired %d times after Reset", fired)
	}
}
