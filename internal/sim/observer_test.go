package sim

import "testing"

// The round observer is a read-only tap: it fires once per Tick with the
// new round number, sees the round fully formed (hook applied, messages
// delivered), and never makes the engine Faulty.
func TestRoundObserver(t *testing.T) {
	e := NewEngine(4, Options{Seed: 1})
	var rounds []int
	var alives []int
	e.SetRoundObserver(func(round int) {
		rounds = append(rounds, round)
		alives = append(alives, e.NumAlive())
	})
	if e.Faulty() {
		t.Fatal("observer must not make the engine faulty")
	}
	e.SetRoundHook(func(round int) {
		if round == 2 {
			e.Crash(3)
		}
	})
	for i := 0; i < 3; i++ {
		e.Tick()
	}
	if len(rounds) != 3 || rounds[0] != 1 || rounds[2] != 3 {
		t.Fatalf("observer rounds = %v", rounds)
	}
	// The hook crashes node 3 at the top of round 2; the observer runs at
	// the end of the same Tick and must already see it.
	if alives[0] != 4 || alives[1] != 3 || alives[2] != 3 {
		t.Fatalf("observer alive counts = %v", alives)
	}
	e.SetRoundObserver(nil)
	e.Tick()
	if len(rounds) != 3 {
		t.Fatal("removed observer still fired")
	}
}

// SetPhase is plain observability state.
func TestPhaseLabel(t *testing.T) {
	e := NewEngine(2, Options{Seed: 1})
	if e.Phase() != "" {
		t.Fatalf("fresh engine phase %q", e.Phase())
	}
	e.SetPhase("gossip")
	if e.Phase() != "gossip" {
		t.Fatalf("phase = %q", e.Phase())
	}
}
