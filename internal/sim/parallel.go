// Deterministic parallel run execution: the engine is single-threaded by
// design (per-run determinism comes from a sequential send path), so the
// unit of parallelism is the *run* — independent replications, each on
// its own Engine, fanned across workers. Because every run derives all of
// its randomness from its own seed and touches no shared state, the
// fan-out is deterministic by construction: results land in slots indexed
// by run, and the reduction order is the caller's, not the scheduler's.

package sim

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// ForEachRun executes fn(run) for every run in [0, runs) across up to
// `workers` goroutines (workers <= 0 means GOMAXPROCS; the count is
// clamped to runs). It is the seed-sharded counterpart of ParallelFor:
// ParallelFor parallelizes the pure per-node step inside one engine
// round, ForEachRun parallelizes whole independent runs, each of which
// must build (or Reset) its own Engine from its own seed.
//
// Determinism contract: fn must not share mutable state across runs —
// each run's engine, RNG streams and result slot belong to that run
// alone. Under that contract the outcome is bit-identical for any worker
// count, including 1: write results to out[run] inside fn and reduce them
// in run order after ForEachRun returns (float accumulation is not
// commutative in the bits, so the reduction must not happen inside fn).
func ForEachRun(runs, workers int, fn func(run int)) {
	if runs <= 0 {
		return
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > runs {
		workers = runs
	}
	if workers <= 1 {
		for r := 0; r < runs; r++ {
			fn(r)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				r := int(next.Add(1)) - 1
				if r >= runs {
					return
				}
				fn(r)
			}
		}()
	}
	wg.Wait()
}
