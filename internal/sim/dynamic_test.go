package sim

import "testing"

// Tests for the dynamic-membership extensions: mid-run Crash/Revive,
// delivery-time filtering, link faults and the round hook.

func TestCrashAndReviveMidRun(t *testing.T) {
	e := NewEngine(8, Options{Seed: 1})
	if e.NumAlive() != 8 {
		t.Fatalf("NumAlive = %d", e.NumAlive())
	}
	e.Crash(3)
	e.Crash(3) // idempotent
	if e.NumAlive() != 7 || e.Alive(3) {
		t.Fatalf("after Crash: alive=%d, Alive(3)=%v", e.NumAlive(), e.Alive(3))
	}
	if ids := e.AliveIDs(); len(ids) != 7 {
		t.Fatalf("AliveIDs = %v", ids)
	}
	e.Revive(3)
	e.Revive(3) // idempotent
	if e.NumAlive() != 8 || !e.Alive(3) {
		t.Fatalf("after Revive: alive=%d, Alive(3)=%v", e.NumAlive(), e.Alive(3))
	}
}

func TestCrashDiscardsInFlightMessages(t *testing.T) {
	e := NewEngine(4, Options{Seed: 2})
	e.Send(0, 1, Payload{X: 42})
	e.Send(0, 2, Payload{X: 43})
	e.Crash(1) // after send, before delivery
	e.Tick()
	if len(e.Inbox(1)) != 0 {
		t.Fatal("crashed node received an in-flight message")
	}
	if len(e.Inbox(2)) != 1 {
		t.Fatal("healthy delivery disturbed")
	}
	// A crashed sender stays silent; a crashed recipient receives nothing
	// even though the attempt is paid.
	before := e.Stats().Messages
	e.Send(1, 2, Payload{})
	if e.Stats().Messages != before {
		t.Fatal("crashed sender paid for a message")
	}
	e.Send(2, 1, Payload{})
	if e.Stats().Messages != before+1 {
		t.Fatal("send to crashed node not accounted")
	}
	e.Tick()
	if len(e.Inbox(1)) != 0 {
		t.Fatal("crashed node received")
	}
}

func TestReviveStartsWithEmptyInbox(t *testing.T) {
	e := NewEngine(4, Options{Seed: 3})
	e.Send(0, 1, Payload{})
	e.Crash(1)
	e.Tick() // message discarded here
	e.Revive(1)
	e.Tick()
	if len(e.Inbox(1)) != 0 {
		t.Fatal("revived node resurrected a discarded message")
	}
	e.Send(0, 1, Payload{})
	e.Tick()
	if len(e.Inbox(1)) != 1 {
		t.Fatal("revived node cannot receive")
	}
}

func TestLinkFaultSeversAndCounts(t *testing.T) {
	e := NewEngine(4, Options{Seed: 4})
	e.SetLinkFault(func(from, to int) float64 {
		if from == 0 && to == 1 {
			return 1
		}
		return 0
	})
	if !e.Faulty() {
		t.Fatal("Faulty() false with a link fault installed")
	}
	e.Send(0, 1, Payload{})
	e.Send(0, 2, Payload{})
	e.Send(1, 0, Payload{}) // reverse direction not severed by this predicate
	st := e.Stats()
	if st.Messages != 3 || st.Blocked != 1 || st.Drops != 1 {
		t.Fatalf("counters %+v, want 3 messages, 1 blocked, 1 drop", st)
	}
	e.Tick()
	if len(e.Inbox(1)) != 0 || len(e.Inbox(2)) != 1 || len(e.Inbox(0)) != 1 {
		t.Fatal("severed link delivered or healthy link blocked")
	}
	e.SetLinkFault(nil)
	if e.Faulty() {
		t.Fatal("Faulty() true after clearing hooks")
	}
	e.Send(0, 1, Payload{})
	e.Tick()
	if len(e.Inbox(1)) != 1 {
		t.Fatal("cleared link fault still blocks")
	}
}

func TestLinkFaultPartialLossCompounds(t *testing.T) {
	// A 0.5 extra link loss on a lossless engine must drop about half.
	e := NewEngine(2, Options{Seed: 5})
	e.SetLinkFault(func(from, to int) float64 { return 0.5 })
	const trials = 4000
	for i := 0; i < trials; i++ {
		e.Send(0, 1, Payload{})
	}
	frac := float64(e.Stats().Drops) / trials
	if frac < 0.45 || frac > 0.55 {
		t.Fatalf("extra-loss drop rate %.3f, want ≈ 0.5", frac)
	}
	if e.Stats().Blocked != 0 {
		t.Fatal("partial loss wrongly counted as blocked")
	}
}

func TestRoundHookRunsBeforeDelivery(t *testing.T) {
	e := NewEngine(4, Options{Seed: 6})
	var rounds []int
	e.SetRoundHook(func(r int) {
		rounds = append(rounds, r)
		if r == 1 {
			e.Crash(1)
		}
	})
	if !e.Faulty() {
		t.Fatal("Faulty() false with a round hook installed")
	}
	e.Send(0, 1, Payload{})
	e.Tick() // hook crashes node 1 at round 1, before delivery
	if len(e.Inbox(1)) != 0 {
		t.Fatal("hook-crashed node still got its round-1 delivery")
	}
	e.Tick()
	if len(rounds) != 2 || rounds[0] != 1 || rounds[1] != 2 {
		t.Fatalf("hook rounds %v", rounds)
	}
}

func TestInitialCrashSetMatchesEngine(t *testing.T) {
	opts := Options{Seed: 7, CrashFrac: 0.3}
	e := NewEngine(200, opts)
	set := InitialCrashSet(200, opts)
	dead := map[int]bool{}
	for _, id := range set {
		dead[id] = true
	}
	for i := 0; i < 200; i++ {
		if e.Alive(i) == dead[i] {
			t.Fatalf("node %d: engine alive=%v, set dead=%v", i, e.Alive(i), dead[i])
		}
	}
	if got := InitialCrashSet(200, Options{Seed: 7}); got != nil {
		t.Fatalf("zero CrashFrac set = %v", got)
	}
	// The all-crashed guard: NewEngine keeps node 0, so the set must too.
	all := InitialCrashSet(5, Options{Seed: 8, CrashFrac: 1})
	for _, id := range all {
		if id == 0 {
			t.Fatal("InitialCrashSet with CrashFrac=1 includes the kept node 0")
		}
	}
	if len(all) != 4 {
		t.Fatalf("CrashFrac=1 set = %v", all)
	}
}

func TestCountersSubIncludesBlocked(t *testing.T) {
	a := Counters{Rounds: 5, Messages: 10, Drops: 4, Blocked: 2, Calls: 3}
	b := Counters{Rounds: 2, Messages: 4, Drops: 1, Blocked: 1, Calls: 1}
	d := a.Sub(b)
	if d.Blocked != 1 || d.Drops != 3 || d.Messages != 6 {
		t.Fatalf("Sub = %+v", d)
	}
}
