package sim

import (
	"fmt"
	"testing"

	"drrgossip/internal/xrand"
)

// trafficRun drives one engine through a fixed, seed-derived traffic
// pattern — direct, relayed, routed and reliable-routed sends, message
// loss, and mid-run crashes and revives — and returns a trace of
// everything observable: every inbox of every round, plus the final
// counters. The pattern depends only on the test stream, never on the
// engine's shard count.
func trafficRun(t *testing.T, n, shards int) (trace string, c Counters) {
	t.Helper()
	e := NewEngine(n, Options{Seed: 11, Loss: 0.05, Shards: shards})
	rng := xrand.Derive(99, 0x7e57)
	out := ""
	for round := 0; round < 60; round++ {
		// Membership churn between rounds (identical for every engine).
		if round%7 == 3 {
			e.Crash(rng.Intn(n))
		}
		if round%11 == 5 {
			e.Revive(rng.Intn(n))
		}
		for k := 0; k < 40; k++ {
			from := rng.Intn(n)
			to := rng.IntnOther(n, from)
			switch k % 4 {
			case 0:
				e.Send(from, to, Payload{Kind: 1, X: int64(k)})
			case 1:
				e.SendVia(from, rng.Intn(n), to, Payload{Kind: 2, X: int64(k)})
			case 2:
				path := []int{rng.Intn(n), rng.Intn(n), to}
				e.SendRouted(from, path, Payload{Kind: 3, X: int64(k)})
			default:
				e.SendRoutedReliable(from, []int{to}, Payload{Kind: 4, X: int64(k)}, 3)
			}
		}
		e.Tick()
		for i := 0; i < n; i++ {
			for _, m := range e.Inbox(i) {
				out += fmt.Sprintf("%d:%d<-%d/%d/%d;", round, i, m.From, m.Pay.Kind, m.Pay.X)
			}
		}
	}
	// Drain the routed tail so in-flight accounting is covered too.
	for !e.PendingEmpty() {
		e.Tick()
		for i := 0; i < n; i++ {
			for _, m := range e.Inbox(i) {
				out += fmt.Sprintf("T:%d<-%d/%d/%d;", i, m.From, m.Pay.Kind, m.Pay.X)
			}
		}
	}
	return out, e.Stats()
}

// The sharded-delivery contract: for any shard count, every inbox of
// every round — and every counter — is bit-identical to sequential
// delivery. This is the within-run analogue of ForEachRun's across-run
// determinism contract. The floor that lets small rounds skip the
// goroutine fan-out is forced to 0 so every sharded Tick actually
// exercises the concurrent path (the -race CI tier covers it too).
func TestShardedDeliveryBitIdentical(t *testing.T) {
	const n = 200
	wantTrace, wantStats := trafficRun(t, n, 1)
	oldFloor := parallelTickFloor
	parallelTickFloor = 0
	defer func() { parallelTickFloor = oldFloor }()
	for _, shards := range []int{0, 2, 3, 8, 64, n, 10 * n} {
		gotTrace, gotStats := trafficRun(t, n, shards)
		if gotStats != wantStats {
			t.Fatalf("shards=%d: counters drifted: %+v vs %+v", shards, gotStats, wantStats)
		}
		if gotTrace != wantTrace {
			t.Fatalf("shards=%d: delivery trace drifted from sequential", shards)
		}
	}
	// And once at the default floor, which routes these small rounds
	// through the sequential fallback — same result by construction.
	parallelTickFloor = oldFloor
	gotTrace, gotStats := trafficRun(t, n, 8)
	if gotTrace != wantTrace || gotStats != wantStats {
		t.Fatal("sequential small-round fallback drifted from sequential delivery")
	}
}

// Reset must re-partition the delivery queues when the shard count
// changes, reproducing a fresh engine bit-for-bit either way.
func TestResetAcrossShardCounts(t *testing.T) {
	const n = 128
	fresh, freshStats := trafficRun(t, n, 4)
	e := NewEngine(n, Options{Seed: 11, Loss: 0.05, Shards: 1})
	// Dirty the engine, then Reset into the sharded configuration.
	for i := 0; i < n; i++ {
		e.Send(i, (i+1)%n, Payload{Kind: 9})
	}
	e.Tick()
	e.Reset(Options{Seed: 11, Loss: 0.05, Shards: 4})
	if e.Shards() != 4 {
		t.Fatalf("Shards() = %d after Reset, want 4", e.Shards())
	}
	// Re-run the same traffic on the reused engine by hand: reuse
	// trafficRun's logic through a second fresh engine comparison.
	rng := xrand.Derive(99, 0x7e57)
	out := ""
	for round := 0; round < 60; round++ {
		if round%7 == 3 {
			e.Crash(rng.Intn(n))
		}
		if round%11 == 5 {
			e.Revive(rng.Intn(n))
		}
		for k := 0; k < 40; k++ {
			from := rng.Intn(n)
			to := rng.IntnOther(n, from)
			switch k % 4 {
			case 0:
				e.Send(from, to, Payload{Kind: 1, X: int64(k)})
			case 1:
				e.SendVia(from, rng.Intn(n), to, Payload{Kind: 2, X: int64(k)})
			case 2:
				path := []int{rng.Intn(n), rng.Intn(n), to}
				e.SendRouted(from, path, Payload{Kind: 3, X: int64(k)})
			default:
				e.SendRoutedReliable(from, []int{to}, Payload{Kind: 4, X: int64(k)}, 3)
			}
		}
		e.Tick()
		for i := 0; i < n; i++ {
			for _, m := range e.Inbox(i) {
				out += fmt.Sprintf("%d:%d<-%d/%d/%d;", round, i, m.From, m.Pay.Kind, m.Pay.X)
			}
		}
	}
	for !e.PendingEmpty() {
		e.Tick()
		for i := 0; i < n; i++ {
			for _, m := range e.Inbox(i) {
				out += fmt.Sprintf("T:%d<-%d/%d/%d;", i, m.From, m.Pay.Kind, m.Pay.X)
			}
		}
	}
	if out != fresh || e.Stats() != freshStats {
		t.Fatal("Reset across shard counts is not bit-identical to a fresh sharded engine")
	}
}

// Shard counts are clamped to [1, min(n, maxShards)].
func TestShardClamping(t *testing.T) {
	if e := NewEngine(5, Options{Shards: 99}); e.Shards() != 5 {
		t.Fatalf("Shards() = %d, want clamp to n=5", e.Shards())
	}
	if e := NewEngine(100000, Options{Shards: 100000}); e.Shards() != maxShards {
		t.Fatalf("Shards() = %d, want ceiling %d", e.Shards(), maxShards)
	}
	if e := NewEngine(8, Options{Shards: -3}); e.Shards() != 1 {
		t.Fatalf("Shards() = %d, want 1", e.Shards())
	}
}

// Bitset regression: the alive set's semantics under Crash/Revive must
// be exactly the pre-bitset []bool behaviour — idempotent transitions,
// NumAlive accounting, a sorted (and cache-invalidated) AliveIDs view,
// and delivery-time discarding of messages to dead nodes.
func TestAliveBitsetSemanticsUnderCrashRevive(t *testing.T) {
	const n = 70 // crosses a 64-bit word boundary
	e := NewEngine(n, Options{Seed: 3})
	if e.NumAlive() != n || !e.Alive(0) || !e.Alive(n-1) {
		t.Fatalf("fresh engine: NumAlive=%d", e.NumAlive())
	}
	e.Crash(63)
	e.Crash(64)
	e.Crash(64) // idempotent
	if e.NumAlive() != n-2 || e.Alive(63) || e.Alive(64) {
		t.Fatalf("after crashes: NumAlive=%d alive63=%v alive64=%v", e.NumAlive(), e.Alive(63), e.Alive(64))
	}
	ids := e.AliveIDs()
	if len(ids) != n-2 {
		t.Fatalf("AliveIDs len %d, want %d", len(ids), n-2)
	}
	for k := 1; k < len(ids); k++ {
		if ids[k] <= ids[k-1] {
			t.Fatal("AliveIDs not strictly increasing")
		}
	}
	for _, id := range ids {
		if id == 63 || id == 64 {
			t.Fatal("AliveIDs contains a crashed node")
		}
	}
	// Cache invalidation on Revive.
	e.Revive(64)
	e.Revive(64) // idempotent
	if e.NumAlive() != n-1 {
		t.Fatalf("after revive: NumAlive=%d", e.NumAlive())
	}
	found := false
	for _, id := range e.AliveIDs() {
		if id == 64 {
			found = true
		}
	}
	if !found {
		t.Fatal("AliveIDs cache not invalidated by Revive")
	}
	// A message in flight to a node that crashes before delivery is
	// discarded (but was paid for).
	e.Send(0, 10, Payload{Kind: 1})
	e.Crash(10)
	before := e.Stats().Messages
	e.Tick()
	if len(e.Inbox(10)) != 0 {
		t.Fatal("crashed node received a message")
	}
	if e.Stats().Messages != before {
		t.Fatal("Tick changed the message counter")
	}
	// Reset restores the full population.
	e.Reset(Options{Seed: 3})
	if e.NumAlive() != n || !e.Alive(10) || !e.Alive(63) {
		t.Fatalf("Reset did not restore the alive set: NumAlive=%d", e.NumAlive())
	}
	// The static crash model keeps at least one node alive even at
	// extreme CrashFrac, via InitialCrashSet's keep-one rule.
	e.Reset(Options{Seed: 5, CrashFrac: 0.999999})
	if e.NumAlive() < 1 {
		t.Fatal("keep-one-alive rule violated")
	}
	if ids := InitialCrashSet(n, Options{Seed: 5, CrashFrac: 0.999999}); len(ids) != n-e.NumAlive() {
		t.Fatalf("InitialCrashSet inconsistent with Reset: %d crashed, %d alive", len(ids), e.NumAlive())
	}
}
