// Package sim implements the synchronous network model of the paper
// (Section 2): n nodes with unique addresses communicate in discrete
// rounds under the random phone call model. In one round a node may place
// one call (an in-round, bidirectional exchange) or send bounded-size
// messages; links are lossy (each transmission independently fails with
// probability δ); a fraction of nodes may crash before the protocol starts
// but not during it.
//
// The engine does bookkeeping only — protocols (DRR, convergecast, gossip,
// and the baselines) live in their own packages and drive the engine round
// by round. Every transmission attempt, including relay hops, acks and
// retransmissions, is counted as one message, which is the quantity the
// paper's message-complexity results bound.
//
// # Dynamic membership and link faults
//
// The paper's failure model is static: Options.CrashFrac removes nodes
// before round 1 and the surviving population is fixed for the whole run.
// The engine generalises this to a dynamic model driven from outside
// (see internal/faults): Crash and Revive change membership between
// rounds, SetLinkFault installs a per-link extra drop probability
// (1 severs the link — partitions and blackouts; values in (0,1) model
// loss bursts and flaky regions), and SetRoundHook lets a fault scheduler
// run at the top of every Tick, before that round's deliveries. Messages
// in flight to a node that crashes are discarded at delivery time. The
// static model is the special case in which none of these hooks are used:
// with no hook and no link fault installed, the engine's behaviour —
// every counter, every loss decision — is bit-for-bit identical to the
// pre-dynamic engine, and an initial-crash set is exactly expressible as
// a round-0 batch of Crash calls on the ids of InitialCrashSet.
//
// # Determinism
//
// Runs are reproducible from Options.Seed alone. Per-node random streams
// are derived from (seed, node) so that goroutine-parallel stepping (see
// ParallelFor) cannot perturb results, and per-message loss is a
// stateless hash of (seed, message sequence number), with sequence
// numbers assigned in deterministic node order. Fault hooks preserve
// this: they run at deterministic points (round boundaries) and the
// link-fault predicate is consulted only from the engine's sequential
// send path.
//
// # Sharded delivery (scale mode)
//
// With Options.Shards > 1 the engine partitions the node id space into
// contiguous shards and parallelises Tick's delivery step across them:
// every in-flight message is queued, at send time, on the delivery-round
// slot of the shard owning its destination, and at Tick each shard's
// worker clears the shard's previously filled inboxes and files its own
// queue — an ordered merge, since a shard queue preserves the engine's
// sequential send order restricted to that shard, and each inbox belongs
// to exactly one shard. No worker touches another shard's state and the
// counters are folded sequentially, so results are bit-identical to
// sequential execution for any shard count (pinned by shard_test.go).
// Inboxes are cleared lazily (only those filled at the previous Tick),
// which keeps Tick O(messages delivered) instead of O(n) — the change
// that makes million-node runs affordable.
package sim

import (
	"math"
	"runtime"
	"sync"
	"sync/atomic"

	"drrgossip/internal/bitset"
	"drrgossip/internal/xrand"
)

// Payload is the fixed-size message body. The paper limits message length
// to O(log n + log s); using a fixed small struct enforces that protocols
// cannot smuggle unbounded state (the lower-bound harness in
// internal/oblivious deliberately models the unbounded regime and does not
// use this package's messages).
type Payload struct {
	Kind    uint8   // protocol-defined discriminator
	A, B, C float64 // numeric fields (value, weight, second moment, …)
	X, Y    int64   // integer fields (ids, counts, …)
}

// Message is a payload in flight or delivered.
type Message struct {
	From, To int
	Pay      Payload
}

// Call describes the single call a node may place in a round.
type Call struct {
	Active bool
	To     int
	Pay    Payload
}

// Options configure an Engine.
type Options struct {
	Seed      uint64  // master seed; equal seeds give identical runs
	Loss      float64 // per-message drop probability δ ∈ [0,1)
	CrashFrac float64 // fraction of nodes crashed before the protocol starts
	// Shards is the number of delivery shards Tick fans message filing
	// across (<= 1 means sequential delivery; values are clamped to the
	// node count and an internal ceiling). Results are bit-identical for
	// any value — sharding is a within-run speed knob, not a semantic one.
	Shards int
}

// Counters aggregates the engine's accounting.
type Counters struct {
	Rounds   int   // rounds elapsed (Tick calls)
	Messages int64 // transmission attempts (lossy or not)
	Drops    int64 // attempts lost to link failure (incl. blocked links)
	Blocked  int64 // subset of Drops killed by an installed link fault
	Calls    int64 // calls placed (each call costs >=1 message)
}

// Sub returns c - prev, useful for per-phase accounting.
func (c Counters) Sub(prev Counters) Counters {
	return Counters{
		Rounds:   c.Rounds - prev.Rounds,
		Messages: c.Messages - prev.Messages,
		Drops:    c.Drops - prev.Drops,
		Blocked:  c.Blocked - prev.Blocked,
		Calls:    c.Calls - prev.Calls,
	}
}

const (
	hashDomainLoss  = 0x10 // per-message loss decisions
	hashDomainCrash = 0x20 // initial crash selection
	rngDomainNode   = 0x30 // per-node protocol streams
)

// LinkFault gives the extra, fault-induced drop probability of a
// transmission from -> to: 0 is a healthy link, 1 a severed one
// (partition or blackout), values in between model loss bursts. It is
// consulted on every transmission attempt while installed.
type LinkFault func(from, to int) float64

// Engine is the synchronous round simulator. It is not safe for concurrent
// use; within a round, protocols may parallelize their pure per-node
// computation with ParallelFor and then perform all Engine calls
// sequentially in node order.
//
// The hot path is allocation-free: in-flight messages live in a ring
// buffer of per-round, per-shard delivery slots whose backing arrays are
// recycled across rounds, per-node RNG streams are stored by value and
// reseeded in place, the alive set is a dense bitset with a cached
// sorted-ID view, and only the inboxes actually filled at the previous
// Tick are cleared. An Engine can be reused for a new run with Reset,
// which reproduces NewEngine's state bit-for-bit without reallocating.
type Engine struct {
	n     int
	opts  Options
	c     Counters
	alive *bitset.Set // current membership (bit i = node i alive)
	nAliv int

	// aliveIDs caches the sorted alive-node list; Crash and Revive mark
	// it dirty instead of callers rebuilding it every round.
	aliveIDs   []int
	aliveDirty bool

	inbox [][]Message // per-node messages delivered at the last Tick

	// ring holds in-flight messages keyed by delivery round and
	// destination shard: ring[r&ringMask][shardOf(to)] is the queue for
	// absolute round r. A drained queue's backing array is detached from
	// its slot and recycled through the shared pool below, so
	// steady-state scheduling allocates nothing; the ring grows (power of
	// two) when a routed send's horizon exceeds it.
	ring     [][][]Message
	ringMask int
	inflight int // messages scheduled and not yet delivered or discarded

	// pool recycles drained queue backing arrays across ring slots and
	// shards (LIFO). Before pooling, every slot×shard queue kept its own
	// high-water capacity forever, so routed sends spreading bursts over
	// 2·log n future slots retained the sum of per-slot peaks; the pool
	// bounds total retained queue capacity by poolBudget — arrays that
	// would exceed it are dropped for the GC instead of parked.
	pool       [][]Message
	poolCap    int // total capacity currently parked in pool
	poolBudget int // retention cap, in messages (64 B each)

	// shards/shardSize partition the node id space for Tick's delivery
	// step; touched[s] lists the shard-s inboxes filled at the last Tick
	// (the only ones that need clearing at the next one).
	shards    int
	shardSize int
	touched   [][]int

	seq uint64 // message sequence for loss hashing

	// rngs holds the per-node streams by value, reseeded lazily in place.
	// rngSet deliberately stays a []bool rather than a bitset: RNG is
	// called from ParallelFor workers, and concurrent first-use writes to
	// distinct bool slots are safe where read-modify-write of a shared
	// bitset word would race.
	rngs   []xrand.Stream
	rngSet []bool

	linkFault LinkFault       // nil = all links healthy
	roundHook func(round int) // runs at the top of every Tick
	observer  func(round int) // read-only per-round tap, runs at the end of Tick
	phase     string          // protocol-reported phase label (observability only)

	// Observability taps (read-only, like observer): phaseObs fires on
	// SetPhase label changes, memberObs on Crash/Revive transitions, and
	// residual holds the driver-reported convergence residual (NaN when
	// the running protocol reports none). residualStride is how often the
	// residual is actually read (every k-th round); drivers gate the
	// O(roots) spread computation on WantResidual so coarse consumers do
	// not pay per-tick scans.
	phaseObs       func(phase string)
	memberObs      func(node int, alive bool)
	residual       float64
	residualStride int

	// abortCheck is the run watchdog (SetAbortCheck): consulted every
	// abortEvery rounds at the top of Tick; a non-nil error aborts the
	// run by panicking with *AbortError.
	abortCheck func(round int) error
	abortEvery int
}

// AbortError is the panic value Tick raises when the installed abort
// check rejects the run (see SetAbortCheck). Protocol drivers own their
// round loops, so a mid-run abort unwinds them by panic; the facade
// recovers it at the run boundary and turns the wrapped cause into a
// partial answer. Err is the abort cause (a context error or a facade
// budget sentinel).
type AbortError struct{ Err error }

// Error implements error.
func (e *AbortError) Error() string { return "sim: run aborted: " + e.Err.Error() }

// Unwrap returns the abort cause.
func (e *AbortError) Unwrap() error { return e.Err }

// initialRingSize is the delivery ring's starting slot count (power of
// two). Direct and relayed sends only ever look one round ahead; routed
// sends reach round+len(path), which grows the ring on demand.
const initialRingSize = 16

// NewEngine creates an engine for n nodes. n must be at least 1.
func NewEngine(n int, opts Options) *Engine {
	if n < 1 {
		panic("sim: need at least one node")
	}
	e := &Engine{
		n:        n,
		alive:    bitset.New(n),
		aliveIDs: make([]int, 0, n),
		inbox:    make([][]Message, n),
		ring:     make([][][]Message, initialRingSize),
		ringMask: initialRingSize - 1,
		rngs:     make([]xrand.Stream, n),
		rngSet:   make([]bool, n),
		// Enough pooled capacity for several steady-state rounds of
		// O(n) traffic; burst rounds (e.g. an O(|E|) rank exchange) may
		// exceed it and are then freed rather than retained.
		poolBudget: max(8192, 4*n),
	}
	e.Reset(opts)
	return e
}

// maxShards caps the delivery shard count: each ring slot keeps one
// queue per shard, so unboundedly many shards would waste memory without
// adding parallelism any real machine can use.
const maxShards = 256

// normShards clamps a configured shard count to [1, min(n, maxShards)].
func normShards(shards, n int) int {
	if shards < 1 {
		return 1
	}
	if shards > n {
		shards = n
	}
	if shards > maxShards {
		shards = maxShards
	}
	return shards
}

// Reset reinitializes the engine in place to the state NewEngine(e.N(),
// opts) would produce — counters zeroed, alive set rebuilt from opts'
// static crash model, message sequence and RNG streams reseeded, hooks
// and in-flight messages cleared — while keeping every buffer it has
// already grown. A Reset engine is bit-for-bit equivalent to a fresh one:
// equal (n, opts) produce identical counters, loss decisions and results
// whether the engine is new or reused, which is what lets a session run
// many protocol executions on one allocation. Changing opts.Shards
// between Resets re-partitions the delivery queues (and only then
// reallocates them); it cannot change any result.
func (e *Engine) Reset(opts Options) {
	if opts.Loss < 0 || opts.Loss >= 1 {
		panic("sim: Loss must be in [0,1)")
	}
	e.opts = opts
	e.c = Counters{}
	e.seq = 0
	e.alive.Fill()
	e.nAliv = e.n
	// InitialCrashSet is the single source of truth for the static crash
	// model (including the keep-one-alive rule), so a round-0 crash plan
	// over the same set is equivalent by construction.
	for _, i := range InitialCrashSet(e.n, opts) {
		e.alive.Clear(i)
		e.nAliv--
	}
	e.aliveDirty = true
	for i := range e.inbox {
		e.inbox[i] = e.inbox[i][:0]
	}
	// Drained or abandoned queues go back to the pool (the pool itself
	// survives Reset — reusing an engine is exactly when recycled
	// capacity pays off).
	for slot := range e.ring {
		for sh := range e.ring[slot] {
			if q := e.ring[slot][sh]; q != nil {
				e.ring[slot][sh] = nil
				e.recycle(q)
			}
		}
	}
	if s := normShards(opts.Shards, e.n); s != e.shards {
		e.shards = s
		e.shardSize = (e.n + s - 1) / s
		for slot := range e.ring {
			e.ring[slot] = make([][]Message, s)
		}
		e.touched = make([][]int, s)
	} else {
		for sh := range e.touched {
			e.touched[sh] = e.touched[sh][:0]
		}
	}
	e.inflight = 0
	for i := range e.rngSet {
		e.rngSet[i] = false
	}
	e.linkFault = nil
	e.roundHook = nil
	e.observer = nil
	e.phase = ""
	e.phaseObs = nil
	e.memberObs = nil
	e.residual = math.NaN()
	e.residualStride = 1
	e.abortCheck = nil
	e.abortEvery = 0
}

// N returns the number of nodes (alive or crashed).
func (e *Engine) N() int { return e.n }

// NumAlive returns the number of non-crashed nodes.
func (e *Engine) NumAlive() int { return e.nAliv }

// Shards returns the effective delivery shard count (>= 1).
func (e *Engine) Shards() int { return e.shards }

// Alive reports whether node i is currently alive. In the static model
// this is fixed at construction (initial crashes); with dynamic
// membership it changes over the run via Crash and Revive, so per-round
// protocol logic must not cache it.
func (e *Engine) Alive(i int) bool { return e.alive.Test(i) }

// AliveIDs returns the ids of currently alive nodes in increasing order.
// The returned slice is owned by the engine and valid until the next
// Crash or Revive; callers must not modify it. (Protocols consult it
// every round under fault plans, so it is cached rather than rebuilt.)
func (e *Engine) AliveIDs() []int {
	if e.aliveDirty {
		e.aliveIDs = e.aliveIDs[:0]
		e.alive.ForEach(func(i int) {
			e.aliveIDs = append(e.aliveIDs, i)
		})
		e.aliveDirty = false
	}
	return e.aliveIDs
}

// RNG returns node i's private random stream. Streams are independent
// across nodes, so parallel per-node stepping is deterministic.
func (e *Engine) RNG(i int) *xrand.Stream {
	if !e.rngSet[i] {
		e.rngs[i] = xrand.DeriveStream(e.opts.Seed, rngDomainNode, uint64(i))
		e.rngSet[i] = true
	}
	return &e.rngs[i]
}

// Crash removes node i from the network mid-run: it stops sending,
// receiving and answering calls, and messages already in flight to it are
// discarded at delivery time. Crashing a dead node is a no-op.
func (e *Engine) Crash(i int) {
	if e.alive.Test(i) {
		e.alive.Clear(i)
		e.nAliv--
		e.aliveDirty = true
		if e.memberObs != nil {
			e.memberObs(i, false)
		}
	}
}

// Revive rejoins node i after a crash. The node comes back with an empty
// inbox; any protocol state it re-enters with is the protocol's concern.
// Reviving a live node is a no-op.
func (e *Engine) Revive(i int) {
	if !e.alive.Test(i) {
		e.alive.Set(i)
		e.nAliv++
		e.aliveDirty = true
		if e.memberObs != nil {
			e.memberObs(i, true)
		}
	}
}

// SetLinkFault installs (or, with nil, removes) the per-link fault
// predicate. With none installed the engine behaves exactly like the
// static model.
func (e *Engine) SetLinkFault(f LinkFault) { e.linkFault = f }

// SetRoundHook installs (or, with nil, removes) a hook invoked at the top
// of every Tick with the new round number, before that round's messages
// are delivered — the attachment point for fault schedulers: a node
// crashed by the hook at round r never sees its round-r deliveries. The
// hook always runs on the engine's sequential path, before any sharded
// delivery work starts, so fault application is shard-safe by
// construction.
func (e *Engine) SetRoundHook(h func(round int)) { e.roundHook = h }

// SetRoundObserver installs (or, with nil, removes) a read-only tap
// invoked at the end of every Tick with the round just formed — after
// the round hook has applied any fault actions and the round's messages
// have been filed into inboxes. Observers exist for progress streaming
// and metrics: they are deliberately separate from SetRoundHook so that
// installing one does not flip Faulty() (which would change protocol
// degradation behaviour) and cannot perturb the run.
func (e *Engine) SetRoundObserver(f func(round int)) { e.observer = f }

// SetPhase records the protocol phase label ("drr", "gossip", …) the
// run is currently in. It is pure observability — protocols update it as
// they move through their pipeline so round observers can report where
// the time goes; the engine itself never reads it. Setting the label it
// already carries is a no-op (the phase observer fires on changes only).
func (e *Engine) SetPhase(p string) {
	if p == e.phase {
		return
	}
	e.phase = p
	if e.phaseObs != nil {
		e.phaseObs(p)
	}
}

// Phase returns the label last recorded with SetPhase ("" before the
// first phase).
func (e *Engine) Phase() string { return e.phase }

// SetPhaseObserver installs (or, with nil, removes) a read-only tap
// fired from SetPhase whenever the phase label changes, with the label
// being entered. Like SetRoundObserver it cannot perturb the run and
// does not flip Faulty().
func (e *Engine) SetPhaseObserver(f func(phase string)) { e.phaseObs = f }

// SetMembershipObserver installs (or, with nil, removes) a read-only tap
// fired from Crash and Revive on actual membership transitions (crashing
// a dead node or reviving a live one stays silent), with the node id and
// its new liveness. Like SetRoundObserver it cannot perturb the run and
// does not flip Faulty().
func (e *Engine) SetMembershipObserver(f func(node int, alive bool)) { e.memberObs = f }

// ReportResidual records the driver's current convergence residual (for
// the gossip drivers: the spread of the running ratio estimate across
// roots). Pure observability: protocols report it only when an observer
// is installed (see Observed), so the static hot path never computes it.
func (e *Engine) ReportResidual(r float64) { e.residual = r }

// Residual returns the last driver-reported convergence residual, or NaN
// when the running protocol has not reported one.
func (e *Engine) Residual() float64 { return e.residual }

// Observed reports whether a round observer is installed. Protocol
// drivers gate optional observability work (residual computation) on it
// so that unobserved runs pay nothing.
func (e *Engine) Observed() bool { return e.observer != nil }

// SetResidualStride declares how often the reported residual is actually
// read: every k-th round (the facade derives k from its telemetry
// round-event stride). WantResidual is then due only on rounds a reader
// will surface, so coarse monitoring does not pay a per-tick O(roots)
// spread scan in the gossip drivers. k < 1 means every round. Reset
// restores the default of 1.
func (e *Engine) SetResidualStride(k int) {
	if k < 1 {
		k = 1
	}
	e.residualStride = k
}

// WantResidual reports whether a driver should compute and report its
// convergence residual before the upcoming Tick: a round observer must
// be installed and the upcoming round must land on the residual stride,
// so the freshly reported value is exactly what that round's readers
// see.
func (e *Engine) WantResidual() bool {
	return e.observer != nil && (e.c.Rounds+1)%e.residualStride == 0
}

// Faulty reports whether a fault regime is installed (a round hook or a
// link fault). Protocols use it to degrade gracefully — returning
// partial results where the static model would fail fast. A round
// observer alone does not make the engine faulty.
func (e *Engine) Faulty() bool { return e.roundHook != nil || e.linkFault != nil }

// SetAbortCheck installs (or, with nil, removes) a run watchdog: f is
// consulted at the top of every `every`-th Tick with the new round
// number (every < 1 means every round), and a non-nil error aborts the
// run by panicking with *AbortError wrapping it — the only way to stop
// protocol drivers, which own their round loops, mid-run. The check
// runs on the engine's sequential path before the round's fault hook
// and deliveries, and is deliberately separate from the fault hooks so
// installing one does not flip Faulty(). It is control-plane only: a
// run the check never aborts is bit-identical to one without a check
// installed. Reset removes it.
func (e *Engine) SetAbortCheck(f func(round int) error, every int) {
	if every < 1 {
		every = 1
	}
	e.abortCheck = f
	e.abortEvery = every
}

// InitialCrashSet returns the node ids NewEngine(n, opts) crashes
// before round 1 — NewEngine itself builds its alive set from this, so
// fault plans reproduce the static crash model exactly with round-0
// crash events over the same set.
func InitialCrashSet(n int, opts Options) []int {
	if opts.CrashFrac <= 0 {
		return nil
	}
	var ids []int
	for i := 0; i < n; i++ {
		if xrand.HashFloat(opts.Seed, hashDomainCrash, uint64(i)) < opts.CrashFrac {
			ids = append(ids, i)
		}
	}
	if len(ids) == n {
		ids = ids[1:] // NewEngine keeps node 0 alive when all would crash
	}
	return ids
}

// Seed returns the engine's master seed.
func (e *Engine) Seed() uint64 { return e.opts.Seed }

// Loss returns the configured per-message drop probability δ.
func (e *Engine) Loss() float64 { return e.opts.Loss }

// Stats returns a snapshot of the accounting counters.
func (e *Engine) Stats() Counters { return e.c }

// Round returns the current round number (0 before the first Tick).
func (e *Engine) Round() int { return e.c.Rounds }

// attempt accounts one transmission and reports whether it survived link
// loss, any installed link fault, and the destination being alive. A
// message to a crashed node is counted (it was sent) but never delivered.
// The loss decision hashes the message sequence number exactly as in the
// static model, so runs without an installed link fault are bit-for-bit
// identical to the pre-dynamic engine.
func (e *Engine) attempt(from, to int) bool {
	e.seq++
	e.c.Messages++
	if e.linkFault == nil {
		// Fast path (the static model with healthy links): no fault
		// predicate to consult, and with Loss == 0 no hash either. The
		// sequence number still advances exactly as in the slow path, so
		// installing a fault mid-run cannot shift later loss decisions.
		if e.opts.Loss == 0 {
			return e.alive.Test(to)
		}
		if xrand.HashFloat(e.opts.Seed, hashDomainLoss, e.seq) < e.opts.Loss {
			e.c.Drops++
			return false
		}
		return e.alive.Test(to)
	}
	eff := e.opts.Loss
	if x := e.linkFault(from, to); x > 0 {
		if x >= 1 {
			e.c.Drops++
			e.c.Blocked++
			return false
		}
		eff = 1 - (1-eff)*(1-x) // independent fault and link loss
	}
	if eff > 0 &&
		xrand.HashFloat(e.opts.Seed, hashDomainLoss, e.seq) < eff {
		e.c.Drops++
		return false
	}
	return e.alive.Test(to)
}

// Charge accounts k extra message transmissions without delivering
// anything. Protocols use it for control traffic they simulate outside
// the payload plane (e.g. the rejected routing attempts of the Chord
// random-node sampler, whose cost Theorem 14's M budget must include).
func (e *Engine) Charge(k int64) {
	if k < 0 {
		panic("sim: negative Charge")
	}
	e.c.Messages += k
}

// deliverShard performs one shard's Tick work: clear the shard inboxes
// filled at the previous round, then file this round's shard queue in
// send order. It touches only shard-local state (the shard's inboxes,
// touched list and queue), so shards can run concurrently without
// synchronisation; the alive bitset is read-only during delivery (the
// round hook has already run).
func (e *Engine) deliverShard(slot, sh int) {
	tl := e.touched[sh]
	for _, i := range tl {
		e.inbox[i] = e.inbox[i][:0]
	}
	tl = tl[:0]
	for _, m := range e.ring[slot][sh] {
		if e.alive.Test(m.To) {
			if len(e.inbox[m.To]) == 0 {
				tl = append(tl, m.To)
			}
			e.inbox[m.To] = append(e.inbox[m.To], m)
		}
	}
	e.touched[sh] = tl
}

// parallelTickFloor is the per-round work (queued messages plus inboxes
// to clear) below which Tick files deliveries sequentially even when
// shards > 1: near-empty rounds are common in the routed sparse
// pipelines, and goroutine fan-out would cost more than it saves. The
// cutover is computed from deterministic engine state, and the
// sequential path iterates shards in the same order with the same
// per-shard logic, so the choice cannot change any result. A variable
// (not a const) so the sharding contract tests can force the concurrent
// path at small n.
var parallelTickFloor = 2048

// Tick advances to the next round: the round hook (if any) runs first,
// then messages sent previously (and routed messages whose hop count has
// elapsed) become visible in the recipients' inboxes. Messages addressed
// to a node that has crashed since they were sent are discarded.
//
// With Options.Shards > 1 the delivery step fans across one worker per
// shard (see the package comment); the result is bit-identical to
// sequential delivery for any shard count.
func (e *Engine) Tick() {
	e.c.Rounds++
	if e.abortCheck != nil && e.c.Rounds%e.abortEvery == 0 {
		if err := e.abortCheck(e.c.Rounds); err != nil {
			panic(&AbortError{Err: err})
		}
	}
	if e.roundHook != nil {
		e.roundHook(e.c.Rounds)
	}
	slot := e.c.Rounds & e.ringMask
	if e.shards == 1 {
		e.deliverShard(slot, 0)
	} else {
		work := 0
		for sh := 0; sh < e.shards; sh++ {
			work += len(e.ring[slot][sh]) + len(e.touched[sh])
		}
		if work < parallelTickFloor {
			for sh := 0; sh < e.shards; sh++ {
				e.deliverShard(slot, sh)
			}
		} else {
			var wg sync.WaitGroup
			wg.Add(e.shards)
			for sh := 0; sh < e.shards; sh++ {
				go func(sh int) {
					defer wg.Done()
					e.deliverShard(slot, sh)
				}(sh)
			}
			wg.Wait()
		}
	}
	for sh := range e.ring[slot] {
		if msgs := e.ring[slot][sh]; msgs != nil {
			e.inflight -= len(msgs)
			e.ring[slot][sh] = nil
			e.recycle(msgs) // back to the shared pool (or the GC)
		}
	}
	if e.observer != nil {
		e.observer(e.c.Rounds)
	}
}

// Inbox returns the messages delivered to node i at the last Tick. The
// returned slice is valid until the next Tick.
func (e *Engine) Inbox(i int) []Message { return e.inbox[i] }

// PendingEmpty reports whether any message is still in flight.
func (e *Engine) PendingEmpty() bool { return e.inflight == 0 }

// recycle parks a drained queue's backing array in the pool for reuse by
// any slot×shard queue, unless retaining it would push the pool past its
// capacity budget — burst arrays (an O(|E|) rank exchange at 10^7 nodes)
// are dropped for the GC instead of ballooning the resident set. Pool
// traffic happens only on the engine's sequential path (Tick's drain
// loop, Reset, scheduleAt), never from delivery workers.
func (e *Engine) recycle(q []Message) {
	if c := cap(q); c > 0 && e.poolCap+c <= e.poolBudget {
		e.pool = append(e.pool, q[:0])
		e.poolCap += c
	}
}

// popQueue takes the most recently recycled backing array, or nil when
// the pool is empty (append will then allocate).
func (e *Engine) popQueue() []Message {
	if len(e.pool) == 0 {
		return nil
	}
	q := e.pool[len(e.pool)-1]
	e.pool = e.pool[:len(e.pool)-1]
	e.poolCap -= cap(q)
	return q
}

// scheduleAt enqueues a delivery for the given absolute round (which is
// always in the future: sends schedule at e.c.Rounds+k, k >= 1, so a
// slot holds messages for exactly one round at a time). Queuing by the
// destination's shard at send time is what keeps Tick's per-shard filing
// an ordered merge of the sequential send order.
func (e *Engine) scheduleAt(round int, m Message) {
	if round-e.c.Rounds >= len(e.ring) {
		e.growRing(round - e.c.Rounds + 1)
	}
	slot := round & e.ringMask
	sh := m.To / e.shardSize
	q := e.ring[slot][sh]
	if q == nil {
		q = e.popQueue()
	}
	e.ring[slot][sh] = append(q, m)
	e.inflight++
}

// growRing widens the delivery ring to at least `need` slots (next power
// of two), re-filing the occupied slots at their new positions. Per-shard
// queues move wholesale (drained slots are nil; their capacity lives in
// the pool), so nothing in flight or recycled is lost.
func (e *Engine) growRing(need int) {
	size := len(e.ring)
	for size < need {
		size <<= 1
	}
	ring := make([][][]Message, size)
	mask := size - 1
	// Old slot s holds messages due at the unique round r in
	// (Rounds, Rounds+oldSize] with r ≡ s (mod oldSize).
	base := e.c.Rounds + 1
	for s, queues := range e.ring {
		r := base + ((s - base) & e.ringMask)
		ring[r&mask] = queues
	}
	for s := range ring {
		if ring[s] == nil {
			ring[s] = make([][]Message, e.shards)
		}
	}
	e.ring = ring
	e.ringMask = mask
}

// Send transmits one message from -> to; if it survives, it is delivered
// at the next Tick. Cost: 1 message.
func (e *Engine) Send(from, to int, p Payload) {
	if !e.alive.Test(from) {
		return
	}
	if e.attempt(from, to) {
		e.scheduleAt(e.c.Rounds+1, Message{From: from, To: to, Pay: p})
	}
}

// SendVia transmits from -> relay -> dst within one round step, modeling
// Phase III's non-address-oblivious relay: a root sends to a random node,
// which forwards the message to dst (its own root) in the same round
// ("to traverse through an edge of G̃, a message needs at most two hops of
// G"). Cost: 2 messages (1 if the first hop is lost); delivery at the next
// Tick. When relay == dst the message needs a single hop.
func (e *Engine) SendVia(from, relay, dst int, p Payload) {
	if !e.alive.Test(from) {
		return
	}
	if relay == dst {
		e.Send(from, dst, p)
		return
	}
	if !e.attempt(from, relay) {
		return
	}
	if e.attempt(relay, dst) {
		e.scheduleAt(e.c.Rounds+1, Message{From: from, To: dst, Pay: p})
	}
}

// SendRouted transmits along an explicit hop path (excluding the sender):
// one hop per round, one message per hop, each hop independently lossy.
// The payload reaches the final path element after len(path) rounds. Used
// for sparse overlays (Chord) where a "gossip edge" is a routed path.
func (e *Engine) SendRouted(from int, path []int, p Payload) {
	if !e.alive.Test(from) || len(path) == 0 {
		return
	}
	prev := from
	for _, hop := range path {
		if !e.attempt(prev, hop) {
			return
		}
		prev = hop
	}
	e.scheduleAt(e.c.Rounds+len(path), Message{From: from, To: path[len(path)-1], Pay: p})
}

// SendRoutedReliable is SendRouted with link-layer retransmission: each
// hop is retried until an attempt survives loss, up to retries attempts
// per hop (retries <= 0 means 8). Every attempt is paid for, so the
// expected cost per hop is 1/(1-δ) messages — the paper's "repeated
// calls" remedy, which protocols whose push-sum mass must never be
// destroyed (the distinguished-root Sum and Count) use for their routed
// shares. It reports whether the payload was scheduled; on success it is
// delivered after len(path) rounds, exactly like SendRouted. A crashed
// relay exhausts its hop budget (retransmission cannot revive a node),
// so callers can restore unsent mass when it returns false.
func (e *Engine) SendRoutedReliable(from int, path []int, p Payload, retries int) bool {
	if !e.alive.Test(from) || len(path) == 0 {
		return false
	}
	if retries <= 0 {
		retries = 8
	}
	prev := from
	for _, hop := range path {
		ok := false
		for t := 0; t < retries && !ok; t++ {
			ok = e.attempt(prev, hop)
		}
		if !ok {
			return false
		}
		prev = hop
	}
	e.scheduleAt(e.c.Rounds+len(path), Message{From: from, To: path[len(path)-1], Pay: p})
	return true
}

// ResolveCalls performs one synchronous call round. calls[i] describes the
// call node i places (Active=false for none). For every call whose request
// survives, handle is invoked on the callee and may return a response,
// which (if it survives the return leg) is passed to onReply on the caller
// — all within the current round, matching the paper's "once a call is
// established, information can be exchanged in both directions".
//
// Callers are processed in increasing node order, so handlers observing
// state mutated by earlier calls in the same round see a deterministic
// order. Cost: 1 message per placed call, +1 per non-nil response.
func (e *Engine) ResolveCalls(
	calls []Call,
	handle func(callee, caller int, req Payload) (Payload, bool),
	onReply func(caller int, resp Payload),
) {
	if len(calls) != e.n {
		panic("sim: ResolveCalls needs one Call slot per node")
	}
	for from := 0; from < e.n; from++ {
		c := calls[from]
		if !c.Active || !e.alive.Test(from) {
			continue
		}
		e.c.Calls++
		if !e.attempt(from, c.To) {
			continue // request lost, link faulted, or callee dead
		}
		resp, ok := handle(c.To, from, c.Pay)
		if !ok {
			continue
		}
		if e.attempt(c.To, from) && onReply != nil {
			onReply(from, resp)
		}
	}
}

// ParallelFor runs fn(i) for every i in [0, n) using up to GOMAXPROCS
// goroutines. fn must be safe to run concurrently for distinct i (the
// protocols satisfy this by only touching node-local state and per-node
// RNG streams). It is the bulk-synchronous building block for per-round
// node stepping.
func ParallelFor(n int, fn func(i int)) {
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	if workers <= 1 || n < 256 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	const chunk = 128
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				start := int(next.Add(chunk)) - chunk
				if start >= n {
					return
				}
				end := start + chunk
				if end > n {
					end = n
				}
				for i := start; i < end; i++ {
					fn(i)
				}
			}
		}()
	}
	wg.Wait()
}
